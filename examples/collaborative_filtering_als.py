#!/usr/bin/env python
"""Collaborative filtering with distributed ALS (paper Section VI-E).

Builds a synthetic ratings matrix from a hidden low-rank model, observes a
sparse random sample of it, and factorizes the observations with the
batched-CG ALS whose query vectors are FusedMM calls.  The driver is
built on the session-handle API: each engine plans its resident
distributions once (values + indicator pattern, plus the lazily-built
transposed siblings for the FusedMMB phases) and runs all
``20 x outer_iters`` FusedMM calls against them.  Compares the 1.5D
dense-shifting engine against the 1.5D sparse-shifting engine — the
paper's Figure 9 pairing.

Run:  python examples/collaborative_filtering_als.py
"""

import numpy as np

from repro.apps.als import DistributedALS
from repro.runtime.cost import CORI_KNL
from repro.sparse.coo import CooMatrix
from repro.sparse.generate import erdos_renyi
from repro.types import Elision, Phase


def make_ratings(n_users=3000, n_items=2000, rank=12, obs_per_user=20, seed=0):
    """Hidden low-rank preference model observed at random entries."""
    rng = np.random.default_rng(seed)
    U = rng.standard_normal((n_users, rank))
    V = rng.standard_normal((n_items, rank))
    pattern = erdos_renyi(n_users, n_items, obs_per_user, seed=seed + 1)
    ratings = np.einsum("ij,ij->i", U[pattern.rows], V[pattern.cols])
    ratings += 0.05 * rng.standard_normal(len(ratings))  # observation noise
    return CooMatrix(pattern.rows, pattern.cols, ratings, (n_users, n_items), dedupe=False)


def main() -> None:
    rank, p, c = 12, 8, 2
    C = make_ratings()
    print(f"observations: {C.nnz:,} ratings of a {C.nrows}x{C.ncols} matrix\n")

    for algorithm, elision in (
        ("1.5d-dense-shift", Elision.LOCAL_KERNEL_FUSION),
        ("1.5d-sparse-shift", Elision.REPLICATION_REUSE),
    ):
        als = DistributedALS(
            p=p, c=c, algorithm=algorithm, elision=elision, lam=0.05, cg_iters=10
        )
        result = als.run(C, rank, outer_iters=3, seed=7)
        rep = result.report
        print(f"== {algorithm} / {elision.value} on p={p}, c={c} ==")
        print("  loss per sweep:", " -> ".join(f"{x:.1f}" for x in result.loss_history))
        pred = np.einsum("ij,ij->i", result.A[C.rows], result.B[C.cols])
        rmse = float(np.sqrt(np.mean((pred - C.vals) ** 2)))
        print(f"  training RMSE: {rmse:.4f}")
        fused_comm = rep.modeled_comm_seconds(CORI_KNL, Phase.REPLICATION) + \
            rep.modeled_comm_seconds(CORI_KNL, Phase.PROPAGATION)
        print(f"  modeled kernel comm (all CG FusedMM/SpMM calls, "
              f"S distributed once): {fused_comm*1e3:8.3f} ms\n")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Multi-head GAT forward pass on a power-law graph (paper Section VI-E).

Attention scores are a generalized SDDMM, edge softmax runs as fiber/layer
reductions, and neighbourhood aggregation is an SpMM — so one GAT layer is
a FusedMM workload split by a softmax.  This example runs the distributed
forward pass with and without replication reuse, validates both against a
serial reference, and shows the communication saved by reuse.

Run:  python examples/graph_attention_inference.py
"""

import numpy as np

from repro.apps.gat import DistributedGAT, gat_forward_reference
from repro.runtime.cost import CORI_KNL
from repro.sparse.generate import rmat
from repro.types import Elision, Phase


def main() -> None:
    scale, r_in, r_head, heads, p, c = 11, 32, 8, 4, 8, 2
    graph = rmat(scale, edge_factor=8, seed=3, values="ones")
    n = graph.nrows
    X = np.random.default_rng(0).standard_normal((n, r_in))
    print(f"graph: {n:,} nodes, {graph.nnz:,} edges; "
          f"{heads} heads x r_head={r_head}; p={p}, c={c}\n")

    reference = None
    for elision in (Elision.NONE, Elision.REPLICATION_REUSE):
        gat = DistributedGAT(
            p=p, c=c, n_heads=heads, r_in=r_in, r_head=r_head,
            elision=elision, seed=42,
        )
        result = gat.forward(graph, X)
        if reference is None:
            reference = gat_forward_reference(graph, X, gat.heads)
        assert np.allclose(result.output, reference), "distributed == serial"

        rep = result.report
        repl = rep.phase_words(Phase.REPLICATION)
        prop = rep.phase_words(Phase.PROPAGATION)
        softmax = rep.phase_words(Phase.OTHER)
        total = rep.modeled_total_seconds(CORI_KNL)
        print(f"== elision = {elision.value} ==")
        print(f"  output: {result.output.shape}  (heads concatenated)")
        print(f"  words/rank  replication={repl:,}  propagation={prop:,}  "
              f"softmax reductions={softmax:,}")
        print(f"  modeled layer time (cori-knl): {total*1e3:.3f} ms\n")

    print("note: local kernel fusion is rejected for GATs — the edge softmax")
    print("must complete between the SDDMM and the SpMM (paper Section VI-E).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Choosing the right algorithm: the phi = nnz/(n r) regimes (Figure 6).

Sweeps the sparse-matrix density at fixed r and shows (a) the Table III
model's predicted winner, (b) the measured winner from real distributed
executions, and (c) the paper's decision rule — sparse-shifting below
phi = 1/3, dense-shifting above.

Run:  python examples/algorithm_selection.py
"""

import numpy as np

from repro.harness.weak_scaling import run_variant
from repro.model.optimal import predict_best_algorithm
from repro.runtime.cost import MachineParams
from repro.sparse.generate import erdos_renyi
from repro.types import Elision

CONTENDERS = (
    ("1.5d-dense-shift", Elision.LOCAL_KERNEL_FUSION),
    ("1.5d-sparse-shift", Elision.REPLICATION_REUSE),
    ("2.5d-dense-replicate", Elision.REPLICATION_REUSE),
    ("2.5d-sparse-replicate", Elision.NONE),
)

#: bandwidth-dominated machine so the boundary sits at the paper's phi=1/3
MACHINE = MachineParams(alpha=2e-7, beta=1e-9, gamma=5e-11, name="beta-heavy")


def main() -> None:
    m, r, p = 4096, 64, 16
    rng = np.random.default_rng(0)
    A = rng.standard_normal((m, r))
    B = rng.standard_normal((m, r))
    keys = [f"{a}/{e.value}" for a, e in CONTENDERS]

    print(f"m=n={m}, r={r}, p={p}; boundary phi = 1/3 "
          f"(the paper's '3 nnz(S)/r = 1' line)\n")
    print(f"{'nnz/row':>8} {'phi':>7} {'rule':>7}  {'predicted':<40} {'measured':<40}")
    for k in (2, 4, 8, 16, 32, 64, 128):
        S = erdos_renyi(m, m, k, seed=1)
        phi = S.nnz / (m * r)
        predicted = predict_best_algorithm(m, r, S.nnz, p, MACHINE, keys=keys, max_c=8)
        measured = min(
            (run_variant(a, e, S, A, B, p, machine=MACHINE, max_c=8)
             for a, e in CONTENDERS),
            key=lambda v: v.modeled_seconds,
        )
        rule = "sparse" if phi < 1 / 3 else "dense"
        print(f"{k:>8} {phi:>7.3f} {rule:>7}  {predicted:<40} {measured.label:<40}")

    print("\nAs in the paper: 1.5D sparse-shifting wins at low phi, 1.5D")
    print("dense-shifting at high phi, and a 1.5D variant is always best.")


if __name__ == "__main__":
    main()

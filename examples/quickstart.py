#!/usr/bin/env python
"""Quickstart: distributed SDDMM / SpMM / FusedMM in a few lines.

Generates an Erdős–Rényi sparse matrix with tall-skinny dense operands,
runs the paper's kernels on 8 virtual ranks with each algorithm family,
and prints the measured communication together with modeled times on a
Cori-like machine.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro

def main() -> None:
    n, r, p = 4096, 64, 8
    print(f"problem: {n}x{n} sparse, 8 nnz/row, r={r}, p={p} virtual ranks\n")

    S = repro.erdos_renyi(n, n, nnz_per_row=8, seed=0)
    rng = np.random.default_rng(1)
    A = rng.standard_normal((n, r))
    B = rng.standard_normal((n, r))
    phi = repro.phi_ratio(S.nnz, n, r)
    print(f"phi = nnz/(n*r) = {phi:.4f}  (low phi favours sparse-shifting)\n")

    # --- one-call kernels --------------------------------------------------
    R, _ = repro.sddmm(S, A, B, p=p, algorithm="1.5d-dense-shift")
    AB, _ = repro.spmm_a(S, B, p=p, algorithm="1.5d-dense-shift")
    print(f"SDDMM output nnz:  {R.nnz}")
    print(f"SpMMA output:      {AB.shape}\n")

    # --- FusedMM with every algorithm x elision ----------------------------
    print(f"{'algorithm/elision':<46}{'c':>3} {'words/rank':>11} {'modeled':>10}")
    combos = [
        ("1.5d-dense-shift", "none"),
        ("1.5d-dense-shift", "replication-reuse"),
        ("1.5d-dense-shift", "local-kernel-fusion"),
        ("1.5d-sparse-shift", "replication-reuse"),
        ("2.5d-dense-replicate", "replication-reuse"),
        ("2.5d-sparse-replicate", "none"),
    ]
    reference = None
    for algorithm, elision in combos:
        out, report = repro.fusedmm_a(
            S, A, B, p=p, algorithm=algorithm, elision=elision
        )
        if reference is None:
            reference = out
        assert np.allclose(out, reference), "all variants compute the same result"
        t = report.modeled_total_seconds(repro.CORI_KNL)
        label = f"{algorithm}/{elision}"
        print(f"{label:<46}{'':>3} {report.comm_words:>11,} {t*1e3:>8.3f}ms")

    # --- session handle: plan once, run many kernels ------------------------
    with repro.plan(S, r, p=p, algorithm="1.5d-dense-shift",
                    elision="local-kernel-fusion") as sess:
        print(f"\n{sess!r}")
        for _ in range(5):                     # iterative workload: S is
            out, report = sess.fusedmm_a(A, B)  # distributed exactly once
    print(f"5 session FusedMM calls, accumulated words/rank: {report.comm_words:,}")

    # --- automatic selection ------------------------------------------------
    out, report = repro.fusedmm_a(S, A, B, p=p, algorithm="auto", elision="replication-reuse")
    print("\nalgorithm='auto' picked the cheapest family for this phi;")
    print(report.summary())


if __name__ == "__main__":
    main()

"""Experiment harness: the parameter sweeps behind every paper figure.

Each harness function runs *real* distributed executions on the thread
runtime (measuring exact traffic and local-kernel time) and reports
modeled times on a target machine, which is how this reproduction
extrapolates the paper's 256-node results.  Benchmarks under
``benchmarks/`` call these with laptop-sized parameters and print tables
shaped like the paper's figures.
"""

from repro.harness.reporting import format_table, print_series
from repro.harness.strong_scaling import strong_scaling_experiment
from repro.harness.sweeps import best_algorithm_map, replication_factor_sweep
from repro.harness.weak_scaling import (
    FIG4_VARIANTS,
    VariantResult,
    run_variant,
    weak_scaling_experiment,
    weak_scaling_problem,
)

__all__ = [
    "format_table",
    "print_series",
    "VariantResult",
    "FIG4_VARIANTS",
    "run_variant",
    "weak_scaling_experiment",
    "weak_scaling_problem",
    "strong_scaling_experiment",
    "best_algorithm_map",
    "replication_factor_sweep",
]

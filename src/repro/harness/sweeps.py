"""Parameter sweeps: best-algorithm map (Figure 6) and optimal
replication factors (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.harness.weak_scaling import run_variant, weak_scaling_problem
from repro.model.optimal import optimal_c_continuous, predict_best_algorithm
from repro.runtime.cost import CORI_KNL, MachineParams
from repro.sparse.generate import erdos_renyi
from repro.types import Elision

#: The contenders of Figure 6 (the four eliding variants + 2.5D sparse).
FIG6_VARIANTS: Tuple[Tuple[str, Elision], ...] = (
    ("1.5d-dense-shift", Elision.LOCAL_KERNEL_FUSION),
    ("1.5d-dense-shift", Elision.REPLICATION_REUSE),
    ("1.5d-sparse-shift", Elision.REPLICATION_REUSE),
    ("2.5d-dense-replicate", Elision.REPLICATION_REUSE),
    ("2.5d-sparse-replicate", Elision.NONE),
)


@dataclass
class BestAlgorithmCell:
    r: int
    nnz_per_row: float
    predicted: str
    observed: str
    phi: float


def best_algorithm_map(
    p: int,
    m: int,
    r_values: Sequence[int],
    nnz_per_row_values: Sequence[float],
    machine: MachineParams = CORI_KNL,
    variants: Sequence[Tuple[str, Elision]] = FIG6_VARIANTS,
    max_c: Optional[int] = 8,
    seed: int = 0,
) -> List[BestAlgorithmCell]:
    """Figure 6: predicted vs observed fastest algorithm over (r, nnz/row).

    "Observed" runs every variant for real and picks the one with the
    lowest modeled time on measured traffic; "predicted" evaluates the
    Table III formulas.
    """
    rng = np.random.default_rng(seed)
    cells: List[BestAlgorithmCell] = []
    keys = [f"{a}/{e.value}" for (a, e) in variants]
    for k in nnz_per_row_values:
        S = erdos_renyi(m, m, k, seed=seed)
        for r in r_values:
            A = rng.standard_normal((m, r))
            B = rng.standard_normal((m, r))
            predicted = predict_best_algorithm(
                m, r, S.nnz, p, machine, keys=keys, max_c=max_c
            )
            observed = min(
                (
                    run_variant(a, e, S, A, B, p, machine=machine, max_c=max_c)
                    for (a, e) in variants
                ),
                key=lambda v: v.modeled_seconds,
            )
            cells.append(
                BestAlgorithmCell(
                    r=r,
                    nnz_per_row=k,
                    predicted=predicted,
                    observed=observed.label,
                    phi=S.nnz / (m * r),
                )
            )
    return cells


@dataclass
class ReplicationFactorRow:
    variant: str
    p: int
    predicted_c: float
    observed_c: int


def replication_factor_sweep(
    p_list: Sequence[int],
    r: int = 32,
    base_log2: int = 10,
    base_nnz_row: int = 8,
    machine: MachineParams = CORI_KNL,
    max_c: Optional[int] = None,
    seed: int = 0,
) -> List[ReplicationFactorRow]:
    """Figure 7: predicted vs observed optimal c for the three 1.5D
    dense-shifting variants under weak scaling setup 1."""
    rng = np.random.default_rng(seed)
    rows: List[ReplicationFactorRow] = []
    variants = [
        ("1.5d-dense-shift", Elision.NONE),
        ("1.5d-dense-shift", Elision.REPLICATION_REUSE),
        ("1.5d-dense-shift", Elision.LOCAL_KERNEL_FUSION),
    ]
    for p in p_list:
        S = weak_scaling_problem(1, p, base_log2, base_nnz_row, seed=seed)
        n = S.ncols
        phi = S.nnz / (n * r)
        A = rng.standard_normal((n, r))
        B = rng.standard_normal((n, r))
        for (a, e) in variants:
            res = run_variant(a, e, S, A, B, p, machine=machine, max_c=max_c)
            rows.append(
                ReplicationFactorRow(
                    variant=f"{a}/{e.value}",
                    p=p,
                    predicted_c=optimal_c_continuous(f"{a}/{e.value}", p, phi),
                    observed_c=res.best_c,
                )
            )
    return rows

"""Strong-scaling experiments on real-world matrix stand-ins (Figure 8).

A fixed matrix is run at increasing processor counts; every algorithm
variant reports its best-over-c modeled time for ``calls`` FusedMM
invocations, alongside the PETSc-like baseline timed on ``2 * calls``
back-to-back SpMM calls (the paper's surrogate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.petsc_like import petsc_like_spmm
from repro.harness.weak_scaling import FIG4_VARIANTS, VariantResult, run_variant
from repro.runtime.cost import CORI_KNL, MachineParams
from repro.runtime.profile import RankProfile, RunReport
from repro.sparse.coo import CooMatrix
from repro.types import Elision


@dataclass
class StrongScalingResult:
    matrix: str
    p: int
    variants: List[VariantResult]
    petsc_seconds: Optional[float]

    def best_variant(self) -> VariantResult:
        return min(self.variants, key=lambda v: v.modeled_seconds)


def petsc_baseline_seconds(
    S: CooMatrix,
    B: np.ndarray,
    p: int,
    machine: MachineParams,
    calls: int,
    use_measured_compute: bool = False,
) -> float:
    """``2 * calls`` PETSc-like SpMM invocations, modeled on ``machine``."""
    profiles = [RankProfile() for _ in range(p)]
    for _ in range(2 * calls):
        _, report = petsc_like_spmm(S, B, p, profiles=profiles)
    report = RunReport(per_rank=profiles, label=f"petsc x{2*calls}")
    return report.modeled_total_seconds(machine, measured_compute=use_measured_compute)


def strong_scaling_experiment(
    matrices: Dict[str, CooMatrix],
    p_list: Sequence[int],
    r: int = 32,
    variants: Sequence[Tuple[str, Elision]] = FIG4_VARIANTS,
    machine: MachineParams = CORI_KNL,
    calls: int = 1,
    max_c: Optional[int] = 16,
    include_petsc: bool = True,
    seed: int = 0,
) -> List[StrongScalingResult]:
    """Figure 8: per matrix x node count, all variants + PETSc baseline."""
    rng = np.random.default_rng(seed)
    out: List[StrongScalingResult] = []
    for name, S in matrices.items():
        A = rng.standard_normal((S.nrows, r))
        B = rng.standard_normal((S.ncols, r))
        for p in p_list:
            vres = [
                run_variant(a, e, S, A, B, p, machine=machine, calls=calls, max_c=max_c)
                for (a, e) in variants
                if not (a.startswith("2.5d") and not _has_25d_grid(a, p))
            ]
            petsc = (
                petsc_baseline_seconds(S, B, p, machine, calls)
                if include_petsc
                else None
            )
            out.append(
                StrongScalingResult(
                    matrix=name, p=p, variants=vres, petsc_seconds=petsc
                )
            )
    return out


def _has_25d_grid(algorithm: str, p: int) -> bool:
    from repro.algorithms.registry import feasible_replication_factors

    return bool(feasible_replication_factors(algorithm, p))

"""Weak-scaling experiments (paper Figures 4, 5 and 7).

Two problem-growth regimes, scaled down from the paper's Cori runs:

* **Setup 1** — doubling node counts double the sparse matrix side length
  at constant nonzeros/row and constant r: ``phi`` stays constant while
  communication per 1.5D rank grows like ``sqrt(p)`` (2.5D: ``cbrt(p)``).
* **Setup 2** — quadrupling node counts double both the side length and
  the nonzeros per row: ``phi`` doubles step to step, so the sparse-
  shifting algorithm decays while the dense-shifting one stays flat.

Every FusedMM variant is executed for real at each feasible replication
factor (optionally capped, as the paper caps c at 8); the reported time is
the alpha-beta model on the *measured* traffic plus the gamma model on the
measured FLOPs, at the best replication factor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.fused import run_fusedmm
from repro.algorithms.registry import feasible_replication_factors, make_algorithm
from repro.runtime.cost import CORI_KNL, MachineParams
from repro.sparse.coo import CooMatrix
from repro.sparse.generate import erdos_renyi
from repro.types import Elision, FusedVariant, Phase

#: The eight series of the paper's Figure 4.
FIG4_VARIANTS: Tuple[Tuple[str, Elision], ...] = (
    ("1.5d-dense-shift", Elision.NONE),
    ("1.5d-dense-shift", Elision.REPLICATION_REUSE),
    ("1.5d-dense-shift", Elision.LOCAL_KERNEL_FUSION),
    ("1.5d-sparse-shift", Elision.NONE),
    ("1.5d-sparse-shift", Elision.REPLICATION_REUSE),
    ("2.5d-sparse-replicate", Elision.NONE),
    ("2.5d-dense-replicate", Elision.REPLICATION_REUSE),
    ("2.5d-dense-replicate", Elision.NONE),
)


@dataclass
class VariantResult:
    """Best-over-c result of one algorithm variant at one scale."""

    algorithm: str
    elision: Elision
    p: int
    best_c: int
    modeled_seconds: float
    replication_seconds: float
    propagation_seconds: float
    computation_seconds: float
    words: int
    messages: int
    measured_compute_seconds: float
    per_c: Dict[int, float]

    @property
    def label(self) -> str:
        return f"{self.algorithm}/{self.elision.value}"


def weak_scaling_problem(
    setup: int, p: int, base_log2: int = 11, base_nnz_row: int = 8, seed: int = 0
) -> CooMatrix:
    """The Erdős–Rényi workload for ``p`` ranks under the given setup.

    Setup 1: side ``2**base_log2 * p``, ``base_nnz_row`` nonzeros/row.
    Setup 2: side ``2**base_log2 * sqrt(p)``, ``base_nnz_row*sqrt(p)``/row
    (``p`` should be a perfect square, as in the paper's quadrupling).
    """
    if setup == 1:
        n = (1 << base_log2) * p
        k = base_nnz_row
    elif setup == 2:
        s = math.isqrt(p)
        n = (1 << base_log2) * s
        k = base_nnz_row * s
    else:
        raise ValueError(f"setup must be 1 or 2, got {setup}")
    return erdos_renyi(n, n, k, seed=seed)


def run_variant(
    algorithm: str,
    elision: Elision,
    S: CooMatrix,
    A: np.ndarray,
    B: np.ndarray,
    p: int,
    machine: MachineParams = CORI_KNL,
    calls: int = 1,
    max_c: Optional[int] = 8,
    variant: FusedVariant = FusedVariant.FUSED_B,
    use_measured_compute: bool = False,
) -> VariantResult:
    """Execute one FusedMM variant at every feasible c; keep the best."""
    n = S.ncols
    r = A.shape[1]
    feasible = [
        c
        for c in feasible_replication_factors(algorithm, p)
        if (max_c is None or c <= max_c)
        and not (algorithm == "1.5d-sparse-shift" and p // c > r)
    ]
    if not feasible:
        feasible = [max(feasible_replication_factors(algorithm, p))]
    per_c: Dict[int, float] = {}
    best = None
    for c in feasible:
        alg = make_algorithm(algorithm, p, c)
        res = run_fusedmm(alg, S, A, B, variant=variant, elision=elision, calls=calls)
        rep = res.report
        t = rep.modeled_total_seconds(machine, measured_compute=use_measured_compute)
        per_c[c] = t
        if best is None or t < best[1]:
            best = (c, t, rep)
    c, t, rep = best
    return VariantResult(
        algorithm=algorithm,
        elision=elision,
        p=p,
        best_c=c,
        modeled_seconds=t,
        replication_seconds=rep.modeled_comm_seconds(machine, Phase.REPLICATION),
        propagation_seconds=rep.modeled_comm_seconds(machine, Phase.PROPAGATION),
        computation_seconds=(
            rep.compute_seconds
            if use_measured_compute
            else rep.modeled_compute_seconds(machine)
        ),
        words=rep.comm_words,
        messages=rep.comm_messages,
        measured_compute_seconds=rep.compute_seconds,
        per_c=per_c,
    )


def weak_scaling_experiment(
    setup: int,
    p_list: Sequence[int],
    r: int = 32,
    base_log2: int = 11,
    base_nnz_row: int = 8,
    variants: Sequence[Tuple[str, Elision]] = FIG4_VARIANTS,
    machine: MachineParams = CORI_KNL,
    calls: int = 1,
    max_c: Optional[int] = 8,
    seed: int = 0,
) -> List[VariantResult]:
    """Run every variant at every node count of a weak-scaling sweep."""
    results: List[VariantResult] = []
    rng = np.random.default_rng(seed)
    for p in p_list:
        S = weak_scaling_problem(setup, p, base_log2, base_nnz_row, seed=seed)
        n = S.ncols
        A = rng.standard_normal((n, r))
        B = rng.standard_normal((n, r))
        for (alg_name, elision) in variants:
            feasible = feasible_replication_factors(alg_name, p)
            if alg_name.startswith("2.5d") and not feasible:
                continue
            results.append(
                run_variant(
                    alg_name, elision, S, A, B, p,
                    machine=machine, calls=calls, max_c=max_c,
                )
            )
    return results

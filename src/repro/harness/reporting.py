"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence], widths=None) -> str:
    """Monospace table with right-aligned numeric columns."""
    rows = [list(map(_fmt, row)) for row in rows]
    if widths is None:
        widths = [
            max(len(str(h)), *(len(r[i]) for r in rows)) if rows else len(str(h))
            for i, h in enumerate(headers)
        ]
    head = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(v.rjust(w) for v, w in zip(r, widths)) for r in rows)
    return "\n".join([head, sep, body]) if rows else "\n".join([head, sep])


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.001:
            return f"{v:.3e}"
        return f"{v:.4g}"
    return str(v)


def print_series(title: str, series: Dict[str, List[float]], xs: List) -> str:
    """One row per series, one column per x value (figure-style output)."""
    headers = ["series"] + [str(x) for x in xs]
    rows = [[name] + list(vals) for name, vals in series.items()]
    return f"{title}\n" + format_table(headers, rows)

"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------

``info``
    Print the algorithm registry, supported elisions and feasible
    replication factors for a processor count.
``predict``
    Evaluate the Table III/IV model for a problem: best replication
    factor and modeled FusedMM time per algorithm, plus the winner.
``run``
    Execute a distributed FusedMM on a generated workload and report
    measured traffic and modeled time.
``serve-bench``
    Drive the micro-batched serving front-end (:mod:`repro.serve`) with
    R-MAT power-law traffic: closed-loop batched vs unbatched amortized
    per-request latency, optional open-loop Poisson arrivals, p50/p95/p99
    + throughput; optionally writes the stats JSON.
``mpi-smoke``
    The ``mpirun`` entry point for the MPI execution backend: under
    ``mpirun -n p python -m repro.cli mpi-smoke`` every process runs each
    algorithm family (each supported comm mode, plus an overlap-on case)
    twice — once on the in-process thread backend as the reference, once
    on ``backend="mpi"`` — and asserts the outputs are **bitwise**
    identical.  Self-contained by design (the reference is deterministic,
    so every process computes it locally); this is what the CI mpi lane
    runs.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.algorithms.registry import (
        ALGORITHMS,
        feasible_replication_factors,
        supported_elisions,
    )

    print(f"{'algorithm':<24} {'elisions':<42} feasible c at p={args.p}")
    for name in sorted(ALGORITHMS):
        els = ", ".join(e.value for e in supported_elisions(name))
        feas = feasible_replication_factors(name, args.p)
        print(f"{name:<24} {els:<42} {list(feas)}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.model.optimal import predicted_times
    from repro.runtime.cost import CORI_KNL

    nnz = int(args.n * args.nnz_per_row)
    phi = nnz / (args.n * args.r)
    print(
        f"n={args.n:,}  r={args.r}  nnz/row={args.nnz_per_row}  "
        f"p={args.p}  phi={phi:.4f}\n"
    )
    times = predicted_times(args.n, args.r, nnz, args.p, CORI_KNL, max_c=args.max_c)
    print(f"{'variant':<42} {'c*':>4} {'modeled FusedMM':>16}")
    for key, (c, t) in sorted(times.items(), key=lambda kv: kv[1][1]):
        print(f"{key:<42} {c:>4} {t*1e3:>13.3f} ms")
    winner = min(times.items(), key=lambda kv: kv[1][1])[0]
    print(f"\npredicted winner: {winner}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    import time

    import repro

    S = repro.erdos_renyi(args.n, args.n, args.nnz_per_row, seed=args.seed)
    rng = np.random.default_rng(args.seed + 1)
    A = rng.standard_normal((args.n, args.r))
    B = rng.standard_normal((args.n, args.r))

    # plan/distribute once, then run --calls FusedMM invocations against
    # the resident session (the dense operands rebind per call; the sparse
    # operand and its comm plans never move again)
    trace = "on" if args.trace_out else "off"
    t0 = time.perf_counter()
    with repro.plan(
        S, args.r, p=args.p, c=args.c, algorithm=args.algorithm,
        elision=args.elision, comm=args.comm, overlap=args.overlap,
        trace=trace, deadline_ms=args.deadline_ms, retries=args.retries,
        backend=args.backend, kernels=args.kernels,
    ) as sess:
        plan_seconds = time.perf_counter() - t0
        print(repr(sess))
        call_seconds = []
        for _ in range(max(args.calls, 1)):
            t1 = time.perf_counter()
            out, report = sess.fusedmm_a(A, B)
            call_seconds.append(time.perf_counter() - t1)

        print(report.summary())
        modeled = report.with_model(repro.CORI_KNL)
        # both bounds, side by side with the measured overlap split: the
        # optimistic perfect-overlap model no longer silently replaces the
        # synchronous total
        print(
            f"\nmodeled time on cori-knl for {args.calls} call(s): "
            f"{modeled.synchronous_seconds*1e3:.3f} ms synchronous, "
            f"{modeled.overlap_bound_seconds*1e3:.3f} ms optimistic-overlap "
            f"bound ({modeled.modeled_hideable_seconds*1e3:.3f} ms hideable)"
        )
        print(
            f"measured overlap: mode={sess.overlap_mode} "
            f"hidden={modeled.measured_hidden_seconds*1e3:.3f} ms "
            f"exposed={modeled.measured_exposed_seconds*1e3:.3f} ms "
            f"efficiency={modeled.overlap_efficiency:.1%} of the bound"
        )
        print(f"comm mode: {report.comm_mode or args.comm} (requested: {args.comm})")
        # only the pooled (sparse-family) paths measure peak buffers
        if report.peak_buffer_bytes:
            print(f"peak panel buffers: {report.peak_buffer_bytes} bytes/rank")
        print(
            f"plan (knob resolution): {plan_seconds*1e3:.3f} ms; driver time/call: "
            f"first {call_seconds[0]*1e3:.3f} ms (includes the one-time "
            f"distribution), amortized "
            f"{sum(call_seconds)/len(call_seconds)*1e3:.3f} ms "
            f"over {len(call_seconds)} call(s)"
        )
        if args.trace_out:
            sess.export_trace(args.trace_out)
            print(f"\nChrome trace written to {args.trace_out} "
                  f"(load in https://ui.perfetto.dev)")
            print(sess.timeline().summary())
        print(f"output shape: {out.shape}")
    return 0


def _cmd_mpi_smoke(args: argparse.Namespace) -> int:
    import repro
    from repro.algorithms.registry import (
        ALGORITHMS,
        feasible_replication_factors,
        supported_elisions,
        supports_sparse_comm,
    )
    from repro.runtime.backend import resolve_backend
    from repro.types import Elision

    resolve_backend("mpi")  # typed install hint before any MPI call
    from repro.runtime.backend_mpi import mpi_world_rank, mpi_world_size

    p = mpi_world_size()
    rank = mpi_world_rank()
    root = rank == 0

    n, r = args.n, args.r
    S = repro.erdos_renyi(n, n, args.nnz_per_row, seed=args.seed)
    rng = np.random.default_rng(args.seed + 1)
    A = rng.standard_normal((n, r))
    B = rng.standard_normal((n, r))

    def run_case(name, elision, comm, overlap, backend):
        # two calls per session: the second exercises the resident
        # distribution, skip-rebind tracking and repeated pool dispatch
        with repro.plan(
            S, r, p=p, algorithm=name, elision=elision, comm=comm,
            overlap=overlap, backend=backend,
        ) as sess:
            for _ in range(max(args.calls, 1)):
                out, _ = sess.fusedmm_a(A, B)
        return out

    families = (
        args.families.split(",") if args.families else sorted(ALGORITHMS)
    )
    checked, failures = 0, []
    for name in families:
        if not feasible_replication_factors(name, p):
            if root:
                print(f"SKIP {name}: no feasible replication factor at p={p}")
            continue
        els = supported_elisions(name)
        elision = Elision.NONE if Elision.NONE in els else els[0]
        comm_modes = ["dense"]
        if supports_sparse_comm(name):
            comm_modes.append("sparse")
        for comm in comm_modes:
            for overlap in ("off", "on"):
                ref = run_case(name, elision, comm, overlap, "threads")
                out = run_case(name, elision, comm, overlap, "mpi")
                ok = np.array_equal(ref, out)
                checked += 1
                if not ok:
                    failures.append((name, comm, overlap))
                if root:
                    verdict = "OK " if ok else "FAIL"
                    print(
                        f"{verdict} {name:<24} comm={comm:<6} "
                        f"overlap={overlap:<3} thread-vs-mpi bitwise"
                    )
    if failures:
        if root:
            print(f"\n{len(failures)}/{checked} case(s) diverged: {failures}")
        return 1
    if root:
        print(
            f"\nall {checked} case(s) bitwise-identical across backends "
            f"(p={p}, n={n}, r={r}, calls={args.calls})"
        )
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import json

    from repro.serve.bench import bench_serve

    record = bench_serve(
        n_users=args.n_users,
        n_items=args.n_items,
        d=args.d,
        p=args.p,
        batch_width=args.batch_width,
        n_requests=args.requests,
        seed=args.seed,
        open_loop_rate_rps=args.open_loop_rps,
        workloads=tuple(args.workloads.split(",")),
    )
    for name in ("als", "gat"):
        if name not in record:
            continue
        entry = record[name]
        b, u = entry["batched"], entry["unbatched"]
        print(
            f"{name}: batched {b['amortized_ms_per_request']:.3f} ms/req "
            f"(p50 {b['latency_ms']['p50']:.2f} / p99 "
            f"{b['latency_ms']['p99']:.2f} ms, {b['throughput_rps']:.1f} "
            f"req/s, mean batch {b['batch_size_mean']:.1f})"
        )
        print(
            f"{'':>{len(name)}}  unbatched {u['amortized_ms_per_request']:.3f} "
            f"ms/req ({u['throughput_rps']:.1f} req/s) -> amortized speedup "
            f"{entry['amortized_speedup']:.2f}x, throughput "
            f"{entry['throughput_ratio']:.2f}x"
        )
        if "open_loop" in entry:
            o = entry["open_loop"]
            print(
                f"{'':>{len(name)}}  open-loop @{o['offered_rps']:.0f} req/s: "
                f"p50 {o['latency_ms']['p50']:.2f} / p99 "
                f"{o['latency_ms']['p99']:.2f} ms, served "
                f"{o['throughput_rps']:.1f} req/s"
            )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(record, fh, indent=2, sort_keys=True)
        print(f"stats JSON written to {args.out}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed-memory sparse kernels (IPDPS'22 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser(
        "info", help="registry, elisions, feasible replication factors"
    )
    p_info.add_argument("--p", type=int, default=16)
    p_info.set_defaults(func=_cmd_info)

    p_pred = sub.add_parser("predict", help="Table III/IV model for a problem")
    p_pred.add_argument("--n", type=int, default=1 << 20)
    p_pred.add_argument("--r", type=int, default=128)
    p_pred.add_argument("--nnz-per-row", type=float, default=16.0)
    p_pred.add_argument("--p", type=int, default=256)
    p_pred.add_argument("--max-c", type=int, default=16)
    p_pred.set_defaults(func=_cmd_predict)

    p_run = sub.add_parser("run", help="execute a distributed FusedMM")
    p_run.add_argument("--n", type=int, default=4096)
    p_run.add_argument("--r", type=int, default=64)
    p_run.add_argument("--nnz-per-row", type=float, default=8.0)
    p_run.add_argument("--p", type=int, default=8)
    p_run.add_argument("--c", type=int, default=None)
    p_run.add_argument("--algorithm", default="auto")
    p_run.add_argument("--elision", default="replication-reuse")
    p_run.add_argument(
        "--comm", default="dense", choices=["dense", "sparse", "auto"],
        help="communication layer: dense ring collectives, need-list "
        "sparse collectives, or model-driven choice",
    )
    p_run.add_argument(
        "--overlap", default="auto", choices=["off", "on", "auto"],
        help="communication/compute software pipeline in the rank kernels: "
        "post shifts/exchanges behind the local kernels (bitwise-identical "
        "outputs); auto consults the cost model's overlapped-time term",
    )
    p_run.add_argument("--calls", type=int, default=1)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="per-call watchdog horizon: a rank blocked past this raises "
        "SpmdTimeout with a per-rank blocked-state dump instead of hanging",
    )
    p_run.add_argument(
        "--retries", type=int, default=0,
        help="re-execute a call that died of a runtime fault up to N times "
        "(never re-plans); aggressive knobs degrade to the conservative "
        "path before surfacing the error",
    )
    p_run.add_argument(
        "--backend", default="threads", choices=["threads", "mpi"],
        help="execution backend: simulated thread ranks (default) or "
        "mpirun-resident processes (launch the whole command under "
        "`mpirun -n p`, with --p equal to the MPI world size)",
    )
    p_run.add_argument(
        "--kernels", default="numpy", choices=["numpy", "numba", "auto"],
        help="local-kernel backend: vectorized numpy/scipy (default), "
        "numba-JIT prange kernels (requires numba; warmed at plan time), "
        "or the fastest backend by measured per-host calibration",
    )
    p_run.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="enable span tracing (trace='on') and write a Chrome "
        "trace-event JSON loadable in Perfetto; also prints the derived "
        "per-rank occupancy / overlap-window analysis",
    )
    p_run.set_defaults(func=_cmd_run)

    p_mpi = sub.add_parser(
        "mpi-smoke",
        help="bitwise thread-vs-mpi equivalence check (run under mpirun)",
    )
    p_mpi.add_argument("--n", type=int, default=256)
    p_mpi.add_argument("--r", type=int, default=16)
    p_mpi.add_argument("--nnz-per-row", type=float, default=4.0)
    p_mpi.add_argument("--calls", type=int, default=2)
    p_mpi.add_argument("--seed", type=int, default=0)
    p_mpi.add_argument(
        "--families", default=None,
        help="comma-separated algorithm subset (default: full registry)",
    )
    p_mpi.set_defaults(func=_cmd_mpi_smoke)

    p_serve = sub.add_parser(
        "serve-bench",
        help="micro-batched serving bench: batched vs unbatched, R-MAT traffic",
    )
    p_serve.add_argument("--n-users", type=int, default=256)
    p_serve.add_argument("--n-items", type=int, default=192)
    p_serve.add_argument("--d", type=int, default=16, help="latent dim")
    p_serve.add_argument("--p", type=int, default=4)
    p_serve.add_argument("--batch-width", type=int, default=16)
    p_serve.add_argument("--requests", type=int, default=64)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument(
        "--open-loop-rps", type=float, default=None, metavar="RPS",
        help="also run open-loop Poisson arrivals at this offered rate",
    )
    p_serve.add_argument(
        "--workloads", default="als,gat",
        help="comma-separated subset of als,gat",
    )
    p_serve.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the full stats record as JSON",
    )
    p_serve.set_defaults(func=_cmd_serve_bench)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""repro — Distributed-Memory Sparse Kernels for Machine Learning.

A complete reproduction of Bharadwaj, Buluç & Demmel, *Distributed-Memory
Sparse Kernels for Machine Learning* (IPDPS 2022): communication-avoiding
1.5D and 2.5D algorithms for SDDMM, SpMM and the fused SDDMM+SpMM pair
(FusedMM), with the two communication-eliding strategies (replication
reuse and local kernel fusion), the alpha-beta-gamma cost model behind the
paper's Tables III-IV, a PETSc-like baseline, and the ALS / GAT
applications of the paper's evaluation.  Beyond the paper, a sparse-aware
communication subsystem (:mod:`repro.comm_sparse`, ``comm="sparse"``)
moves only the dense rows each rank's resident nonzeros touch.

Quick start — plan once, run many kernels on the resident distribution::

    import numpy as np, repro

    S = repro.erdos_renyi(4096, 4096, nnz_per_row=8, seed=0)
    A = np.random.default_rng(1).standard_normal((4096, 64))
    B = np.random.default_rng(2).standard_normal((4096, 64))

    with repro.plan(S, r=64, p=8, algorithm="auto",
                    elision="replication-reuse") as sess:
        for _ in range(5):
            out, report = sess.fusedmm_a(A, B)
    print(report.summary())

One-shot wrappers (``repro.fusedmm_a(S, A, B, p=8, ...)`` etc.) keep the
original single-call signatures.
"""

from repro.api import Server, fusedmm_a, fusedmm_b, plan, sddmm, spmm_a, spmm_b
from repro.comm_sparse import CommPlan, PeerExchange
from repro.errors import (
    FaultInjected,
    ServeOverload,
    SessionBusyError,
    SpmdTimeout,
)
from repro.runtime.cost import CORI_KNL, GENERIC_CLUSTER, MachineParams
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.runtime.profile import RunReport
from repro.runtime.trace import TimelineStats, Tracer, export_chrome_trace
from repro.session import Session
from repro.sparse.coo import CooMatrix, SparseBlock
from repro.sparse.generate import (
    REALWORLD_PROFILES,
    erdos_renyi,
    random_permutation,
    realworld_standin,
    rmat,
)
from repro.sparse.stats import matrix_stats, phi_ratio
from repro.types import (
    ALGORITHM_FAMILIES,
    CommMode,
    Elision,
    FusedVariant,
    Mode,
    Phase,
)

__version__ = "1.0.0"

__all__ = [
    "plan",
    "Session",
    "Server",
    "ServeOverload",
    "SessionBusyError",
    "fusedmm_a",
    "fusedmm_b",
    "sddmm",
    "spmm_a",
    "spmm_b",
    "CooMatrix",
    "SparseBlock",
    "erdos_renyi",
    "rmat",
    "random_permutation",
    "realworld_standin",
    "REALWORLD_PROFILES",
    "matrix_stats",
    "phi_ratio",
    "MachineParams",
    "CORI_KNL",
    "GENERIC_CLUSTER",
    "Mode",
    "CommMode",
    "CommPlan",
    "PeerExchange",
    "Elision",
    "FusedVariant",
    "Phase",
    "ALGORITHM_FAMILIES",
    "RunReport",
    "FaultPlan",
    "FaultSpec",
    "FaultInjected",
    "SpmdTimeout",
    "Tracer",
    "TimelineStats",
    "export_chrome_trace",
    "__version__",
]

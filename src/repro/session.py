"""Session-handle API: plan/distribute once, run many kernels.

The paper's workloads are iterative — ALS runs 20 FusedMM invocations per
sweep (§VI-E), GAT training re-invokes the same kernels every epoch — so
the expensive driver work (knob resolution, layout planning, COO
partitioning of S, need-list :class:`~repro.comm_sparse.plan.CommPlan`
construction, packed-index remapping) must be paid **once**, not per
call.  :func:`plan` resolves every knob (algorithm family, replication
factor ``c``, communication mode, elision strategy) against the
Table III/IV model; the returned :class:`Session` builds each resident
distribution exactly once — on the first kernel call that needs it — and
then runs any number of kernels against it:

    >>> import numpy as np, repro
    >>> S = repro.erdos_renyi(4096, 4096, nnz_per_row=8, seed=0)
    >>> A = np.random.default_rng(1).standard_normal((4096, 64))
    >>> B = np.random.default_rng(2).standard_normal((4096, 64))
    >>> with repro.plan(S, r=64, p=8, algorithm="auto", comm="auto") as sess:
    ...     for _ in range(5):                      # e.g. one CG sweep
    ...         out, report = sess.fusedmm_a(A, B)  # S never re-shipped

    Only the *dense* operands are scattered per call (they change every
    iteration); the sparse operand, its comm plans and its packed indexes
    are distributed exactly once per orientation.  Per-call cost reports
    accumulate on the session until :meth:`Session.reset_profile`.

Fused variants whose native procedure lives on the opposite side
(paper Section IV-B: e.g. FusedMMA under replication reuse) transparently
use a *transposed sibling distribution* — built lazily on first use and
then resident, exactly the paper's "storing two copies of the sparse
matrix, one transposed".

For sparsity patterns whose *values* change between calls while the
structure is fixed (GAT attention weights, SDDMM outputs),
:meth:`Session.update_values` rebinds the resident values in place — no
repartitioning, and the structure-keyed comm-plan caches stay valid.

The legacy one-shot functions in :mod:`repro.api` are thin wrappers that
build a throwaway session per call.
"""

from __future__ import annotations

import copy
import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.algorithms.base import KEEP
from repro.algorithms.fused import _native_method, resolve_orientation
from repro.algorithms.registry import (
    feasible_replication_factors,
    make_algorithm,
    supported_elisions,
    supports_sparse_comm,
)
from repro.errors import (
    CommError,
    FaultInjected,
    ReproError,
    SessionBusyError,
    SpmdAbort,
    SpmdTimeout,
)
from repro.kernels.registry import (
    KernelChoice,
    resolve_kernel_backend,
    validate_kernel_backend_name,
)
from repro.model.costs import PAPER_COST_ROWS, overlap_gain_seconds, row_key
from repro.model.optimal import (
    best_feasible_c,
    choose_comm_mode,
    predict_best_algorithm,
)
from repro.runtime.backend import ensure_backend_available, validate_backend_name
from repro.runtime.buffers import BufferLeaseError
from repro.runtime.cost import CORI_KNL, MachineParams
from repro.runtime.profile import RankProfile, RunReport
from repro.runtime.spmd import WorkerPool, make_worker_pool, run_spmd
from repro.runtime.trace import TimelineStats, Tracer, export_chrome_trace
from repro.sparse.coo import CooMatrix
from repro.types import CommMode, Elision, FusedVariant, Mode, Phase

ElisionLike = Union[str, Elision]
CommLike = Union[str, CommMode]

#: valid values of the ``overlap`` knob
OVERLAP_MODES = ("off", "on", "auto")

#: valid values of the ``trace`` knob (span tracing is strictly opt-in —
#: no "auto": the untraced hot path must stay untaxed by default)
TRACE_MODES = ("off", "on")

#: phases whose counters are communication (mirrors RunReport._COMM_PHASES)
_COMM_PHASES = RunReport._COMM_PHASES


def _as_coo(S) -> CooMatrix:
    if isinstance(S, CooMatrix):
        return S
    return CooMatrix.from_scipy(S)


def _as_elision(e: ElisionLike) -> Elision:
    return e if isinstance(e, Elision) else Elision(e)


def _resolve_comm(
    comm: CommLike,
    algorithm: str,
    S: CooMatrix,
    r: int,
    p: int,
    c: int,
    elision: Elision,
    machine: MachineParams,
    compute_gamma: Optional[float] = None,
) -> CommMode:
    """Resolve the requested communication mode against the algorithm.

    ``"auto"`` consults the extended alpha-beta model
    (:func:`repro.model.optimal.choose_comm_mode`), charging the compute
    term at the *measured* per-host rate when the kernel calibration
    supplied one (``kernels="auto"``); an explicit ``"sparse"`` on a
    family without need-list support is an error rather than a silent
    fallback.
    """
    mode = comm if isinstance(comm, CommMode) else CommMode(comm)
    if mode == CommMode.AUTO:
        picked = choose_comm_mode(
            algorithm, S.ncols, r, S.nnz, p, c, machine, elision=elision,
            compute_gamma=compute_gamma,
        )
        return CommMode(picked)
    if mode == CommMode.SPARSE and not supports_sparse_comm(algorithm):
        raise ReproError(
            f"{algorithm} has no sparse-communication path; "
            f"use comm='dense' or comm='auto'"
        )
    return mode


def _resolve_kernels(kernels: str, exec_backend: str) -> KernelChoice:
    """Resolve the ``kernels`` knob against the execution backend.

    Guard ordering follows the execution-backend rule: an unknown name
    raises the typed :class:`~repro.errors.UnknownKernelBackendError`
    first; the thread-backend-only guard fires next, *before* the
    availability check, so the guidance is the same whether or not numba
    is installed; only then does ``kernels="numba"`` probe availability
    and ``kernels="auto"`` run (or load) the per-host calibration.  The
    thread-only restriction is honest, not cosmetic: ``backend="mpi"``
    ranks are separate processes whose profiles this driver cannot attach
    a backend object to, so a silently-ignored knob would report numba
    while running numpy.
    """
    name = validate_kernel_backend_name(kernels)
    if name != "numpy" and validate_backend_name(exec_backend) != "threads":
        raise ReproError(
            "compiled kernel backends are thread-backend-only: "
            f"kernels={name!r} cannot be attached to backend="
            f"{exec_backend!r} ranks (separate processes own their "
            "profiles); use backend='threads' or the default "
            "kernels='numpy'"
        )
    return resolve_kernel_backend(name)


def _resolve_overlap(
    overlap: str,
    algorithm: str,
    elision: Elision,
    S: CooMatrix,
    r: int,
    p: int,
    c: int,
    comm_mode: CommMode,
    machine: MachineParams,
    compute_gamma: Optional[float] = None,
) -> str:
    """Resolve the ``overlap`` knob to ``"on"`` or ``"off"``.

    ``"auto"`` turns the software pipeline on exactly when the
    overlapped-time term of the cost model
    (:func:`repro.model.costs.overlap_gain_seconds`) predicts a positive
    saving — i.e. whenever the run has both propagation traffic and local
    computation to hide it behind.  Single-rank runs and empty operands
    stay synchronous (there is nothing to hide).  The decision models the
    *target machine* (one set of cores per rank, like every other model
    knob), not the simulating host: on an oversubscribed host the
    pipeline still measures its hidden/exposed split correctly but cannot
    convert it into wall-time, so pass ``overlap="off"`` explicitly when
    benchmarking wall-clock on such a machine.
    """
    if overlap not in OVERLAP_MODES:
        raise ReproError(
            f"overlap must be one of {OVERLAP_MODES}, got {overlap!r}"
        )
    if overlap != "auto":
        return overlap
    if p <= 1 or S.nnz == 0:
        return "off"
    phi = S.nnz / (float(S.ncols) * r)
    key = row_key(algorithm, elision)
    try:
        gain = overlap_gain_seconds(
            key, S.ncols, r, p, c, phi, machine,
            sparse_comm=(comm_mode == CommMode.SPARSE),
            compute_gamma=compute_gamma,
        )
    except ReproError:
        # rows the closed-form table does not print (e.g. single-kernel
        # use): the pipeline costs nothing when there is real compute, so
        # default it on for any multi-rank run
        return "on"
    return "on" if gain > 0.0 else "off"


def _resolve(
    algorithm: str,
    p: int,
    c: Optional[int],
    S: CooMatrix,
    r: int,
    elision: Elision,
    machine: MachineParams,
    comm: CommLike = CommMode.DENSE,
) -> Tuple[str, int]:
    """Resolve 'auto' algorithm and/or automatic replication factor.

    An explicit ``comm="sparse"`` restricts the ``"auto"`` algorithm
    search to the sparse-comm-capable families, so the two auto knobs
    never contradict each other.
    """
    phi = S.nnz / (float(S.ncols) * r)
    if algorithm == "auto":
        keys = PAPER_COST_ROWS
        if (comm if isinstance(comm, CommMode) else CommMode(comm)) == CommMode.SPARSE:
            keys = tuple(
                k for k in PAPER_COST_ROWS if supports_sparse_comm(k.split("/", 1)[0])
            )
        key = predict_best_algorithm(S.ncols, r, S.nnz, p, machine, keys=keys)
        algorithm = key.split("/", 1)[0]
    if c is None:
        key = f"{algorithm}/{elision.value}"
        try:
            c, _ = best_feasible_c(key, S.ncols, r, p, phi, machine)
        except ReproError:
            c = 1
    feas = feasible_replication_factors(algorithm, p)
    if c not in feas:
        raise ReproError(
            f"replication factor c={c} infeasible for {algorithm} on p={p}; "
            f"feasible: {feas}"
        )
    return algorithm, c


@dataclass
class _Orientation:
    """One resident distribution of the sparse operand.

    ``transpose=False`` is the operands' own orientation; ``True`` is the
    transposed sibling used by fused variants whose native procedure lives
    on the opposite side (the paper's transposition trick).

    ``contexts[rank]`` is the rank's resident algorithm context (grid
    subcommunicators, buffer pool) — built by the worker-pool ranks on the
    orientation's first kernel call and reused by every later call, so
    ``make_context`` (with its communicator splits) runs exactly once per
    orientation, not once per kernel call.
    """

    S_eff: CooMatrix
    plan: object
    locals_: List
    sparse_plans: Optional[list]
    contexts: List = None


class SessionFuture:
    """Handle for a kernel call pipelined with :meth:`Session.fusedmm_a_async`.

    :meth:`result` blocks until the SPMD run finished, gathers the output
    from the resident blocks, and returns ``(output, RunReport)`` (plus
    the reassembled SDDMM intermediate when requested) — exactly what the
    synchronous kernel method would have returned.  The session finalizes
    a future automatically before any later call touches the resident
    state, so outputs are never clobbered by the next call's dense
    scatter; ``result()`` then simply returns the cached outcome.  Errors
    from the SPMD run surface here (and, if unconsumed, at the next
    session call).
    """

    __slots__ = (
        "_session",
        "_pool_future",
        "_collect",
        "_done",
        "_error",
        "_value",
        "_metrics_label",
        "_metrics_t0",
    )

    def __init__(self, session: "Session", pool_future, collect: Callable) -> None:
        self._session = session
        self._pool_future = pool_future
        self._collect = collect
        self._done = False
        self._error: Optional[BaseException] = None
        self._value = None
        # per-call metrics bookkeeping, settled by the session at finalize
        self._metrics_label: Optional[str] = None
        self._metrics_t0: float = 0.0

    @property
    def done(self) -> bool:
        return self._done

    def result(self):
        self._session._finalize(self)
        if self._error is not None:
            raise self._error
        return self._value

    def _finalize_now(self) -> None:
        """Wait the SPMD run and collect while the resident blocks still
        hold this call's output.  Called by the session, exactly once."""
        if self._done:
            return
        self._done = True
        try:
            self._pool_future.wait()
            self._value = self._collect()
        except BaseException as exc:  # noqa: BLE001 - stored and re-raised
            self._error = exc
            raise
        finally:
            # drop closure/pool references: consumed futures must pin no
            # per-call staging state or rank_fn closures
            self._collect = None
            self._pool_future = None


class Session:
    """Resident distributed state for repeated kernel calls.

    Build via :func:`plan` (or :meth:`for_algorithm` when an algorithm
    instance is already in hand).  All knobs are resolved at construction;
    every kernel method scatters only its dense operands, runs the SPMD
    kernel on the resident sparse distribution, gathers the output and
    returns ``(output, RunReport)``.  Reports accumulate across calls
    until :meth:`reset_profile`.

    The session owns a persistent :class:`~repro.runtime.spmd.WorkerPool`
    for its lifetime: ``p`` resident rank threads spawn on the first
    kernel call and every later call dispatches to the warm ranks, whose
    per-orientation algorithm contexts (grid subcommunicators, buffer
    pools) are built exactly once (see :attr:`context_builds`).

    Supports the context-manager protocol: leaving the ``with`` block
    joins the worker pool, releases the per-rank panel-buffer pools and
    drops the resident distributions.
    """

    def __init__(
        self,
        S,
        r: int,
        p: int = 4,
        c: Optional[int] = None,
        algorithm: str = "auto",
        elision: ElisionLike = Elision.NONE,
        comm: CommLike = CommMode.DENSE,
        machine: MachineParams = CORI_KNL,
        eager: bool = False,
        persistent: bool = True,
        overlap: str = "auto",
        trace: str = "off",
        deadline_ms: Optional[float] = None,
        retries: int = 0,
        faults=None,
        backend: str = "threads",
        kernels: str = "numpy",
    ) -> None:
        S = _as_coo(S)
        el = _as_elision(elision)
        r = int(r)
        if r <= 0:
            raise ReproError(f"r must be positive, got {r}")
        # resolve the kernel backend before the comm mode: kernels="auto"
        # yields a *measured* compute rate that feeds the comm decision
        kern = _resolve_kernels(kernels, backend)
        algorithm, c = _resolve(algorithm, p, c, S, r, el, machine, comm)
        if el not in supported_elisions(algorithm):
            raise ReproError(
                f"{algorithm} supports "
                f"{[e.value for e in supported_elisions(algorithm)]}, not {el.value}"
            )
        comm_mode = _resolve_comm(
            comm, algorithm, S, r, p, c, el, machine,
            compute_gamma=kern.compute_gamma,
        )
        self._init_resolved(
            S, r, make_algorithm(algorithm, p, c), el, comm_mode, machine, eager,
            persistent, overlap, trace, deadline_ms, retries, faults, backend,
            kern,
        )

    @classmethod
    def for_algorithm(
        cls,
        alg,
        S,
        r: int,
        elision: ElisionLike = Elision.NONE,
        comm: CommLike = CommMode.DENSE,
        machine: MachineParams = CORI_KNL,
        persistent: bool = True,
        overlap: str = "off",
        trace: str = "off",
        deadline_ms: Optional[float] = None,
        retries: int = 0,
        faults=None,
        backend: str = "threads",
        kernels: str = "numpy",
    ) -> "Session":
        """A session over an existing algorithm instance (no knob
        resolution; ``comm`` must already be dense or sparse).  This is
        the driver layer under :func:`repro.algorithms.fused.run_fusedmm`
        and the harness sweeps — both default to the synchronous loops, so
        baseline measurements stay baseline."""
        comm_mode = comm if isinstance(comm, CommMode) else CommMode(comm)
        if comm_mode == CommMode.AUTO:
            raise ReproError("Session.for_algorithm needs a resolved comm mode")
        sess = cls.__new__(cls)
        sess._init_resolved(
            _as_coo(S), int(r), alg, _as_elision(elision), comm_mode, machine,
            eager=False, persistent=persistent, overlap=overlap, trace=trace,
            deadline_ms=deadline_ms, retries=retries, faults=faults,
            backend=backend, kern=_resolve_kernels(kernels, backend),
        )
        return sess

    def _init_resolved(
        self,
        S: CooMatrix,
        r: int,
        alg,
        elision: Elision,
        comm_mode: CommMode,
        machine: MachineParams,
        eager: bool,
        persistent: bool = True,
        overlap: str = "off",
        trace: str = "off",
        deadline_ms: Optional[float] = None,
        retries: int = 0,
        faults=None,
        backend: str = "threads",
        kern: Optional[KernelChoice] = None,
    ) -> None:
        self.S = S
        self.m, self.n = S.shape
        self.r = r
        self._alg = alg
        self.algorithm = alg.name
        self.p, self.c = alg.p, alg.c
        self.elision = elision
        self.comm_mode = comm_mode
        self.machine = machine
        self.phi = S.nnz / (float(S.ncols) * r)
        self.persistent = bool(persistent)
        if kern is None:
            kern = KernelChoice("numpy", None, None)
        #: resolved kernel-backend name ("numpy" / "numba"), observable on
        #: reports and per-call metrics
        self.kernels = kern.name
        self._kernel_backend = kern.backend
        self._compute_gamma = kern.compute_gamma
        if self._kernel_backend is not None:
            # plan-time JIT warmup: first-call latency must not be
            # poisoned by compilation
            self._kernel_backend.warmup()
        self.overlap_mode = _resolve_overlap(
            overlap, self.algorithm, elision, S, r, self.p, self.c, comm_mode,
            machine, compute_gamma=self._compute_gamma,
        )
        # the rank kernels read the flag off their context, which
        # snapshots it from the algorithm instance (owned by this session)
        alg.overlap = self.overlap_mode == "on"
        if trace not in TRACE_MODES:
            raise ReproError(f"trace must be one of {TRACE_MODES}, got {trace!r}")
        self.trace_mode = trace
        # -- robustness knobs (all off by default: zero hot-path cost) --
        if deadline_ms is not None and deadline_ms <= 0:
            raise ReproError(f"deadline_ms must be positive, got {deadline_ms}")
        retries = int(retries)
        if retries < 0:
            raise ReproError(f"retries must be non-negative, got {retries}")
        #: execution backend: ranks as threads ("threads", the default) or
        #: as mpirun-resident processes ("mpi"); see ARCHITECTURE.md
        self.backend = validate_backend_name(backend)
        if self.backend != "threads":
            # thread-only features are guarded with typed errors *before*
            # the availability check, so the guidance is the same whether
            # or not mpi4py is installed
            if faults is not None:
                raise ReproError(
                    "fault injection is thread-backend-only: a FaultPlan "
                    "cannot be armed on backend='mpi' (no sibling-abort "
                    "recovery across processes); chaos-test with "
                    "backend='threads'"
                )
            if retries:
                raise ReproError(
                    "retries are thread-backend-only: backend='mpi' has no "
                    "cross-process recovery, so a failed call surfaces its "
                    "error (or aborts the job on a deadline expiry) "
                    "instead of re-executing"
                )
            if not persistent:
                raise ReproError(
                    "backend='mpi' requires persistent=True: ranks are "
                    "mpirun-resident processes, so there is nothing to "
                    "spawn per call (the thread backend keeps "
                    "persistent=False as its spawn-per-call baseline mode)"
                )
            ensure_backend_available(self.backend)
        #: per-call watchdog horizon (ms); expiry raises SpmdTimeout with
        #: a per-rank blocked-state dump instead of hanging the driver
        self.deadline_ms = deadline_ms
        #: runtime-fault re-executions before degradation is considered
        self.retries = retries
        self._faults = faults  # FaultPlan armed on the session's world
        #: calls that succeeded only on a re-execution / degraded re-run
        self.retried_calls = 0
        self.degraded_calls = 0
        #: resident-distribution builds — the counter the "retry never
        #: re-plans" guarantee is asserted on (stays at one per
        #: orientation no matter how many retries ran)
        self.plan_builds = 0
        self._orients: Dict[bool, _Orientation] = {}
        self._profiles = self._new_profiles()
        self._ncalls = 0  # kernel calls in the current accumulation window
        # per-call structured metrics (always on): one record per kernel
        # call, computed as deltas of rank-summed counters between calls
        self._metrics: List[Dict[str, Any]] = []
        self._last_snapshot = self._counter_snapshot()
        self._closed = False
        self._pool: Optional[WorkerPool] = None
        self._ctx_lock = threading.Lock()
        self._context_builds: Dict[bool, int] = {}
        # dense-operand dirty tracking (skip-rebind): per orientation and
        # side, a private snapshot of the last scattered operand; None
        # when the side holds an output or a kernel overwrote its blocks.
        # ``_bind_miss`` counts consecutive snapshot-compare misses — a
        # side that changes on every call stops being tracked (no compare,
        # no snapshot upkeep) until a kernel dirties it again.
        self._dense_state: Dict[bool, Dict[str, Optional[np.ndarray]]] = {}
        self._bind_miss: Dict[bool, Dict[str, int]] = {}
        #: actual dense scatters / skipped rebinds per plan side ("a"/"b")
        #: — the counters the skip-rebind guarantee is asserted on
        self.dense_bind_counts: Dict[str, int] = {"a": 0, "b": 0}
        self.dense_bind_skips: Dict[str, int] = {"a": 0, "b": 0}
        # cross-call pipeline: the one in-flight async kernel call
        self._inflight: Optional[SessionFuture] = None
        # sessions are single-caller by design: every public entry point
        # try-acquires this gate and raises SessionBusyError on genuine
        # concurrency (reentrant, so kernel methods may compose freely on
        # the owning thread)
        self._call_gate = threading.RLock()
        if eager:
            self._orientation(False)

    @contextmanager
    def _exclusive(self):
        """Serialize driver-side entry points; typed error on concurrency.

        The gate is a *try*-acquire: a second thread calling into the
        session while a call is in progress gets a
        :class:`~repro.errors.SessionBusyError` immediately instead of
        silently interleaving with the first caller's bind/launch/collect
        sequence (which would corrupt the resident dense blocks and the
        skip-rebind snapshots).  The lock is reentrant, so kernel methods
        may compose on the owning thread (``fusedmm_a`` → ``report``).
        """
        if not self._call_gate.acquire(blocking=False):
            raise SessionBusyError(
                "session is already executing a call on another thread; "
                "sessions are single-caller — serialize callers (e.g. "
                "behind repro.serve.Server) or use one session per thread"
            )
        try:
            yield
        finally:
            self._call_gate.release()

    def set_deadline(self, deadline_ms: Optional[float]) -> None:
        """Update the per-call watchdog horizon for subsequent calls.

        ``None`` disarms the watchdog.  Serving front-ends use this to
        propagate per-request deadline budgets onto each batch's session
        call; the resident worker pool picks the new horizon up on its
        next dispatched item (the in-flight item keeps the horizon it was
        dispatched with).
        """
        with self._exclusive():
            if deadline_ms is not None and deadline_ms <= 0:
                raise ReproError(
                    f"deadline_ms must be positive, got {deadline_ms}"
                )
            self.deadline_ms = deadline_ms
            if self._pool is not None:
                self._pool.deadline_ms = deadline_ms

    def _new_profiles(self) -> List[RankProfile]:
        """Fresh per-rank profiles, with tracers attached when tracing."""
        profiles = [RankProfile() for _ in range(self.p)]
        if self._kernel_backend is not None:
            for prof in profiles:
                prof.kernels = self._kernel_backend
        if self.trace_mode == "on":
            for rank, prof in enumerate(profiles):
                prof.tracer = Tracer(rank=rank)
        return profiles

    def _counter_snapshot(self) -> Dict[str, float]:
        """Rank-*summed* counter totals for per-call metric deltas.

        Sums (unlike the report's per-rank maxima) are additive across
        calls, so the difference of two snapshots is exactly what the
        calls in between cost — even when the busiest rank changes."""
        words = msgs = flops = 0
        exposed = hidden = compute = 0.0
        for prof in self._profiles:
            for ph in _COMM_PHASES:
                ctr = prof.counters[ph]
                words += ctr.words_received
                msgs += ctr.messages_received
                exposed += ctr.seconds
                hidden += ctr.hidden_seconds
            compute += prof.counters[Phase.COMPUTATION].seconds
            flops += prof.total().flops
        return {
            "comm_words": float(words),
            "comm_messages": float(msgs),
            "flops": float(flops),
            "exposed_comm_s": exposed,
            "hidden_comm_s": hidden,
            "compute_s": compute,
        }

    def _record_call(
        self, label: str, t0: float, outcome: str = "ok", retries: int = 0
    ) -> None:
        """Append one structured metrics record for a finished call.

        ``outcome`` is one of ``"ok"`` / ``"retried"`` / ``"degraded"`` /
        ``"timeout"`` / ``"failed"``; failed calls are recorded too (their
        counters cover whatever ran before the fault), so chaos runs leave
        an auditable per-call trail.
        """
        wall_ms = (time.perf_counter() - t0) * 1e3
        snap = self._counter_snapshot()
        prev = self._last_snapshot
        self._last_snapshot = snap
        self._metrics.append(
            {
                "call": len(self._metrics),
                "label": label,
                "outcome": outcome,
                "retries": retries,
                "algorithm": self.algorithm,
                "comm_mode": self.comm_mode.value,
                "kernels": self.kernels,
                "overlap": self.overlap_mode,
                "trace": self.trace_mode,
                "nranks": self.p,
                "wall_ms": wall_ms,
                "comm_words": int(snap["comm_words"] - prev["comm_words"]),
                "comm_messages": int(
                    snap["comm_messages"] - prev["comm_messages"]
                ),
                "flops": int(snap["flops"] - prev["flops"]),
                "compute_ms": (snap["compute_s"] - prev["compute_s"]) * 1e3,
                "exposed_comm_ms": (
                    snap["exposed_comm_s"] - prev["exposed_comm_s"]
                )
                * 1e3,
                "hidden_comm_ms": (snap["hidden_comm_s"] - prev["hidden_comm_s"])
                * 1e3,
                "peak_buffer_bytes": max(
                    (p.peak_buffer_bytes for p in self._profiles), default=0
                ),
            }
        )

    # ------------------------------------------------------------------
    # resident state
    # ------------------------------------------------------------------

    @property
    def _suffix(self) -> str:
        return "/sparse-comm" if self.comm_mode == CommMode.SPARSE else ""

    def _orientation(self, transpose: bool) -> _Orientation:
        """The resident distribution for one orientation (built once)."""
        ori = self._orients.get(transpose)
        if ori is None:
            self.plan_builds += 1
            S_eff = self.S.transposed() if transpose else self.S
            plan = self._alg.plan(S_eff.nrows, S_eff.ncols, self.r)
            locals_ = self._alg.distribute_sparse(plan, S_eff)
            sparse_plans = (
                self._alg.build_comm_plans(plan, S_eff)
                if self.comm_mode == CommMode.SPARSE
                else None
            )
            ori = _Orientation(
                S_eff=S_eff, plan=plan, locals_=locals_, sparse_plans=sparse_plans,
                contexts=[None] * self.p,
            )
            self._orients[transpose] = ori
        return ori

    def update_values(self, vals: np.ndarray) -> None:
        """Rebind the resident sparse *values* (structure unchanged).

        ``vals`` follows the planned matrix's nonzero ordering.  All
        resident orientations are updated in place; comm plans and packed
        indexes (structure-keyed) stay valid.
        """
        with self._exclusive():
            self._check_open()
            self._wait_inflight()
            vals = np.asarray(vals, dtype=np.float64)
            if vals.shape != (self.S.nnz,):
                raise ReproError(
                    f"update_values expects {self.S.nnz} values, "
                    f"got shape {vals.shape}"
                )
            self.S = self.S.with_values(vals)
            for transpose, ori in self._orients.items():
                ori.S_eff = self.S.transposed() if transpose else self.S
                self._alg.update_values(ori.plan, ori.locals_, ori.S_eff.vals)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ReproError("session is closed; build a new one with repro.plan(...)")

    def _check_same_s(self, S) -> None:
        """Per-call ``S`` is only accepted when it *is* the planned matrix."""
        if S is None:
            return
        S = _as_coo(S)
        if S is self.S:
            return
        if not self.S.same_structure(S):
            raise ReproError(
                "session was planned for a different sparse matrix (structure "
                "differs); re-plan with repro.plan(S, ...) to distribute a new S"
            )
        if not np.array_equal(S.vals, self.S.vals):
            raise ReproError(
                "sparse matrix has the planned structure but different values; "
                "use Session.update_values(vals) to rebind values in place"
            )

    def _check_dense(self, X, name: str, nrows: int) -> np.ndarray:
        X = np.asarray(X)
        if X.ndim != 2 or X.shape != (nrows, self.r):
            raise ReproError(
                f"operand shapes inconsistent: {name} has shape "
                f"{getattr(X, 'shape', None)}, session was planned for "
                f"({nrows}, {self.r}); dense operands may change values but "
                f"not shape between calls"
            )
        return X

    # ------------------------------------------------------------------
    # SPMD launch
    # ------------------------------------------------------------------

    @property
    def alg(self):
        """The resolved algorithm instance (for rank-side app procedures)."""
        return self._alg

    @property
    def context_builds(self) -> Dict[bool, int]:
        """``make_context`` invocations per orientation (over all ranks).

        With the resident worker pool this stays at ``p`` per orientation
        no matter how many kernel calls run — the counter the pool's
        amortization guarantee is asserted on.
        """
        return dict(self._context_builds)

    def _ensure_pool(self) -> WorkerPool:
        if self._pool is None:
            self._pool = make_worker_pool(
                self.backend,
                self.p,
                name=f"sess-{self.algorithm}",
                faults=self._faults,
                deadline_ms=self.deadline_ms,
            )
        return self._pool

    def _note_context_build(self, transpose: bool) -> None:
        with self._ctx_lock:
            self._context_builds[transpose] = self._context_builds.get(transpose, 0) + 1

    # ------------------------------------------------------------------
    # cross-call pipeline plumbing
    # ------------------------------------------------------------------

    def _finalize(self, future: SessionFuture) -> None:
        """Settle a pipelined call: wait its SPMD run and collect its
        output before anything else touches the resident blocks.

        Takes the call gate: ``SessionFuture.result()`` is a public entry
        point, so settling a future from a second thread while the owning
        thread is mid-call is concurrent driving and raises
        :class:`~repro.errors.SessionBusyError` like any other call.
        """
        with self._exclusive():
            self._finalize_locked(future)

    def _finalize_locked(self, future: SessionFuture) -> None:
        if future is self._inflight:
            self._inflight = None
        try:
            future._finalize_now()
        except Exception as exc:
            # a failed item may have interrupted a collective context
            # build; drop all resident contexts so the next call rebuilds
            # them consistently on the recovered pool (the realigned split
            # counters guarantee fresh communicator ids)
            self._drop_contexts()
            if future._metrics_label is not None:
                self._record_call(
                    future._metrics_label,
                    future._metrics_t0,
                    outcome=self._failure_outcome(exc),
                )
                future._metrics_label = None
            raise
        if future._metrics_label is not None:
            # settle the async call's metrics record exactly once, now
            # that its counters stopped moving
            self._record_call(future._metrics_label, future._metrics_t0)
            future._metrics_label = None

    def _wait_inflight(self) -> None:
        if self._inflight is not None:
            self._finalize(self._inflight)

    def _drop_contexts(self) -> None:
        """Failure recovery: force full rebuilds on the next call.

        Clears the resident contexts *and* the dense-operand snapshots — a
        failed item may have overwritten resident blocks mid-kernel (or
        died before a staged bind was promoted), so no side may claim to
        still hold its last-bound operand.
        """
        for o in self._orients.values():
            o.contexts = [None] * self.p
        self._dense_state.clear()
        self._bind_miss.clear()

    # ------------------------------------------------------------------
    # dense-operand binding: dirty tracking + skip-rebind
    # ------------------------------------------------------------------

    def _resolve_bind(self, transpose: bool, side: str, X):
        """Decide whether one dense side actually needs scattering.

        An input side is *skipped* (returns :data:`KEEP`) exactly when its
        resident blocks still hold this operand: the previous bind
        scattered a bitwise-equal array (checked against a private
        snapshot, so in-place caller mutations are detected) and no kernel
        since then overwrote the side.  Output sides (``X is None``) are
        always re-zeroed.  This is what lets ALS scatter its fixed factor
        once per half-sweep instead of once per CG call.

        The tracking pays one full-array compare plus a snapshot copy per
        bind; a side whose operand misses :data:`_BIND_MISS_LIMIT` times
        in a row evidently changes every call, so its tracking is retired
        (plain scatters, zero upkeep) until a kernel dirties the side.
        """
        state = self._dense_state.setdefault(transpose, {"a": None, "b": None})
        misses = self._bind_miss.setdefault(transpose, {"a": 0, "b": 0})
        if X is None:
            state[side] = None
            return None
        snap = state[side]
        if snap is not None and snap.shape == X.shape:
            if np.array_equal(snap, X):
                misses[side] = 0
                self.dense_bind_skips[side] += 1
                return KEEP
            misses[side] += 1
            if misses[side] >= self._BIND_MISS_LIMIT:
                state[side] = None  # retire tracking: this side never repeats
            else:
                np.copyto(snap, X)  # reuse the snapshot buffer, no realloc
        elif misses[side] < self._BIND_MISS_LIMIT:
            state[side] = np.array(X, dtype=np.float64, copy=True)
        self.dense_bind_counts[side] += 1
        return X

    #: consecutive snapshot-compare misses before a side's tracking retires
    _BIND_MISS_LIMIT = 3

    def _mark_dense_dirty(self, transpose: bool, sides: str) -> None:
        """Invalidate snapshots for the sides a kernel overwrote
        (``sides`` is a string of plan-side letters, e.g. ``"a"``/``"ab"``).
        A dirty event also re-arms retired tracking — the workload's bind
        pattern evidently changed."""
        state = self._dense_state.get(transpose)
        if state is not None:
            for side in sides:
                state[side] = None
        misses = self._bind_miss.get(transpose)
        if misses is not None:
            for side in sides:
                misses[side] = 0

    def _bind_operands(self, ori: _Orientation, transpose: bool, A, B) -> None:
        """Scatter the dense operands, skipping bitwise-unchanged sides."""
        A_arg = self._resolve_bind(transpose, "a", A)
        B_arg = self._resolve_bind(transpose, "b", B)
        if A_arg is KEEP and B_arg is KEEP:
            return
        self._alg.bind_dense(ori.plan, ori.locals_, A_arg, B_arg)

    def _stage_operands(self, ori: _Orientation, transpose: bool, A, B):
        """Compute the dense scatter into *staged* shallow copies of the
        rank locals, without touching the resident blocks.

        This is the pipelined half of ``bind``: it runs while the previous
        call's SPMD ranks are still computing (they only ever read/rebind
        the real locals' dense fields, which staging never writes), and
        :meth:`_promote_staged` later swaps the freshly sliced blocks in
        with ``p`` pointer assignments once the pool drains.
        """
        A_arg = self._resolve_bind(transpose, "a", A)
        B_arg = self._resolve_bind(transpose, "b", B)
        if A_arg is KEEP and B_arg is KEEP:
            return None
        staged = [copy.copy(loc) for loc in ori.locals_]
        self._alg.bind_dense(ori.plan, staged, A_arg, B_arg)
        return staged, A_arg is not KEEP, B_arg is not KEEP

    def _promote_staged(self, ori: _Orientation, staging) -> None:
        if staging is None:
            return
        staged, bind_a, bind_b = staging
        for loc, st in zip(ori.locals_, staged):
            if bind_a:
                loc.A = st.A
            if bind_b:
                loc.B = st.B

    # ------------------------------------------------------------------
    # SPMD dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, ori: _Orientation, call, label: str, degraded: bool = False):
        """Send one rank procedure to the worker pool (without waiting).

        Returns a :class:`~repro.runtime.spmd.PoolFuture`; the
        non-persistent (spawn-per-call) mode runs synchronously and
        returns ``None``.  ``degraded=True`` forces the dense
        communication path even on a sparse-comm session (the graceful
        degradation re-run — see :meth:`_execute`).
        """
        alg = self._alg
        transpose = ori is self._orients.get(True)

        def invoke(ctx, comm):
            if ori.sparse_plans is None or degraded:
                call(ctx, ori.plan, ori.locals_[comm.rank])
            else:
                call(
                    ctx, ori.plan, ori.locals_[comm.rank],
                    sparse_plan=ori.sparse_plans[comm.rank],
                )

        if not self.persistent:
            # spawn-per-call comparison/debug mode: fresh threads, fresh
            # world and fresh contexts on every kernel call (pre-pool
            # behavior, kept for the benchmarks' baseline measurements)
            def cold_body(comm):
                ctx = alg.make_context(comm)
                self._note_context_build(transpose)
                invoke(ctx, comm)

            run_spmd(
                self.p, cold_body, profiles=self._profiles, label=label,
                deadline_ms=self.deadline_ms, faults=self._faults,
            )
            return None

        pool = self._ensure_pool()

        if pool.spans_processes:
            # replicated-driver mode (backend="mpi"): only the local
            # rank's body runs in this process and only its entry of
            # ori.locals_ mutates, so the body returns that local and the
            # pool's result allgather doubles as the cross-process locals
            # sync — remote entries are patched before any driver-side
            # collect reads them.  The pool executes eagerly (settled
            # future), so waiting here adds no blocking.
            def process_body(comm):
                if ori.contexts[comm.rank] is None:
                    self._note_context_build(transpose)
                ctx = alg.ensure_context(comm, ori.contexts)
                invoke(ctx, comm)
                return ori.locals_[comm.rank]

            future = pool.run_async(
                process_body, profiles=self._profiles, label=label
            )
            results, _ = future.wait()
            for rr, loc in enumerate(results):
                if rr != pool.local_rank and loc is not None:
                    ori.locals_[rr] = loc
            return future

        def body(comm):
            if ori.contexts[comm.rank] is None:
                self._note_context_build(transpose)
            ctx = alg.ensure_context(comm, ori.contexts)
            invoke(ctx, comm)

        return pool.run_async(body, profiles=self._profiles, label=label)

    def _launch(
        self, ori: _Orientation, call, label: str, degraded: bool = False
    ) -> None:
        """Synchronous dispatch: run ``call`` on every rank and wait.

        The dispatch itself is inside the failure guard: a single-rank
        pool runs the body inline (and the spawn-per-call mode runs it
        synchronously), so its exceptions surface here, not at wait time,
        and must drop contexts/snapshots all the same.
        """
        try:
            future = self._dispatch(ori, call, label, degraded=degraded)
            if future is not None:
                future.wait()
        except Exception:
            self._drop_contexts()
            raise

    # ------------------------------------------------------------------
    # retry + graceful degradation
    # ------------------------------------------------------------------

    #: root-cause classes that justify a re-execution: runtime-shaped
    #: failures (expired deadlines, transport errors, leases wedged by an
    #: abort, injected faults, sibling-abort unwinds).  Deterministic user
    #: errors (a ValueError out of an edge_op, a shape mismatch) are NOT
    #: here — re-running them would fail identically, so they surface
    #: unchanged on the first attempt.
    _RETRYABLE_ERRORS = (
        SpmdTimeout,
        CommError,
        BufferLeaseError,
        FaultInjected,
        SpmdAbort,
    )

    def _retryable(self, exc: BaseException) -> bool:
        """Is ``exc`` (or its chained root cause) a runtime fault?"""
        return isinstance(exc, self._RETRYABLE_ERRORS) or isinstance(
            exc.__cause__, self._RETRYABLE_ERRORS
        )

    @staticmethod
    def _failure_outcome(exc: BaseException) -> str:
        if isinstance(exc, SpmdTimeout) or isinstance(exc.__cause__, SpmdTimeout):
            return "timeout"
        return "failed"

    def _execute(
        self, ori: _Orientation, transpose: bool, A, B, call, label: str
    ) -> Tuple[str, int]:
        """Bind + launch with retry and graceful degradation.

        Each attempt re-binds the dense operands from scratch — a failed
        kernel may have half-overwritten resident blocks, and the
        ``_launch`` failure path already dropped the contexts and the
        skip-rebind snapshots, so every re-execution starts from the same
        bitwise state as a clean call (the resident *sparse* distribution
        and its comm plans are reused as-is: retries never re-plan, which
        :attr:`plan_builds` asserts).

        After ``retries`` runtime-fault failures, sessions running with
        aggressive knobs (``overlap="on"`` / ``comm="sparse"``) make one
        final *degraded* attempt on the conservative path — synchronous
        loops, dense ring collectives — before surfacing the **first**
        error.  Returns ``(outcome, retries_used)``.
        """
        first_error: Optional[BaseException] = None
        for attempt in range(self.retries + 1):
            try:
                self._bind_operands(ori, transpose, A, B)
                self._launch(ori, call, label)
                if attempt == 0:
                    return "ok", 0
                self.retried_calls += 1
                return "retried", attempt
            except Exception as exc:  # noqa: BLE001 - classified below
                if not self._retryable(exc):
                    raise
                if first_error is None:
                    first_error = exc
        assert first_error is not None
        alg = self._alg
        if ori.sparse_plans is not None or alg.overlap:
            # graceful degradation: one conservative re-run.  The overlap
            # flag is flipped on the algorithm instance (contexts were
            # dropped by the failed launch, so the rebuild/refresh
            # snapshots the conservative value) and restored afterwards;
            # the dense comm path is forced by the degraded dispatch.
            saved_overlap = alg.overlap
            alg.overlap = False
            try:
                self._bind_operands(ori, transpose, A, B)
                self._launch(ori, call, label, degraded=True)
            except Exception:  # noqa: BLE001 - degraded run failed too
                raise first_error
            finally:
                alg.overlap = saved_overlap
                # the degraded run's contexts snapshot overlap=False; drop
                # them so the next call rebuilds with the session's knobs
                self._drop_contexts()
            self.degraded_calls += 1
            return "degraded", self.retries
        raise first_error

    def _run_mode(self, mode: Mode, A, B, **kernel_kwargs) -> _Orientation:
        t0 = time.perf_counter()
        self._wait_inflight()
        ori = self._orientation(False)

        def call(ctx, plan, local, **kw):
            self._alg.rank_kernel(ctx, plan, local, mode, **kernel_kwargs, **kw)

        label = f"{self.algorithm}/{mode.value}{self._suffix}"
        try:
            outcome, nretries = self._execute(ori, False, A, B, call, label)
        except Exception as exc:  # noqa: BLE001 - recorded, then re-raised
            self._record_call(label, t0, outcome=self._failure_outcome(exc))
            raise
        self._ncalls += 1
        self._record_call(label, t0, outcome=outcome, retries=nretries)
        if mode == Mode.SPMM_A:
            self._mark_dense_dirty(False, "a")
        elif mode == Mode.SPMM_B:
            self._mark_dense_dirty(False, "b")
        return ori

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------

    def sddmm(
        self, A: np.ndarray, B: np.ndarray, S=None, use_values: bool = True,
        edge_op=None,
    ) -> Tuple[CooMatrix, RunReport]:
        """``SDDMM(A, B, S) = S * (A @ B.T)`` on the resident S.

        ``use_values=False`` computes pattern-only dots; ``edge_op``
        replaces the dot products with a custom per-edge function (both
        on the families whose kernels support them, e.g. the 1.5D
        dense-shifting family used by the GAT app).
        """
        with self._exclusive():
            self._check_open()
            self._check_same_s(S)
            A = self._check_dense(A, "A", self.m)
            B = self._check_dense(B, "B", self.n)
            kw = self._sddmm_kwargs(use_values, edge_op)
            ori = self._run_mode(Mode.SDDMM, A, B, **kw)
            out = self._alg.collect_sddmm(ori.plan, ori.locals_, ori.S_eff)
            return out, self.report(self._window_label(Mode.SDDMM.value))

    @staticmethod
    def _sddmm_kwargs(use_values: bool, edge_op) -> Dict[str, Any]:
        kw: Dict[str, Any] = {}
        if not use_values:
            kw["use_values"] = False
        if edge_op is not None:
            kw["edge_op"] = edge_op
        return kw

    def spmm_a(self, B: np.ndarray, S=None) -> Tuple[np.ndarray, RunReport]:
        """``SpMMA(S, B) = S @ B`` on the resident S."""
        with self._exclusive():
            self._check_open()
            self._check_same_s(S)
            B = self._check_dense(B, "B", self.n)
            ori = self._run_mode(Mode.SPMM_A, None, B)
            out = self._alg.collect_dense_a(ori.plan, ori.locals_)
            return out, self.report(self._window_label(Mode.SPMM_A.value))

    def spmm_b(self, A: np.ndarray, S=None) -> Tuple[np.ndarray, RunReport]:
        """``SpMMB(S, A) = S.T @ A`` on the resident S."""
        with self._exclusive():
            self._check_open()
            self._check_same_s(S)
            A = self._check_dense(A, "A", self.m)
            ori = self._run_mode(Mode.SPMM_B, A, None)
            out = self._alg.collect_dense_b(ori.plan, ori.locals_)
            return out, self.report(self._window_label(Mode.SPMM_B.value))

    def spmm_a_async(self, B: np.ndarray, S=None) -> SessionFuture:
        """Pipelined :meth:`spmm_a`: returns a :class:`SessionFuture`.

        Same double-buffering contract as :meth:`fusedmm_a_async`: the
        dense scatter of this call is staged while the previous call's
        SPMD run is still in flight.  This is the serving fleet's dispatch
        primitive — the next micro-batch panel binds while the current
        one runs.  ``result()`` returns exactly what :meth:`spmm_a` would.
        """
        with self._exclusive():
            self._check_open()
            self._check_same_s(S)
            B = self._check_dense(B, "B", self.n)

            def collect(ori):
                out = self._alg.collect_dense_a(ori.plan, ori.locals_)
                return out, self.report(self._window_label(Mode.SPMM_A.value))

            return self._run_mode_async(Mode.SPMM_A, None, B, collect)

    def sddmm_async(
        self, A: np.ndarray, B: np.ndarray, S=None, use_values: bool = True,
        edge_op=None,
    ) -> SessionFuture:
        """Pipelined :meth:`sddmm` (see :meth:`spmm_a_async`); the serving
        path for GAT edge scoring batches."""
        with self._exclusive():
            self._check_open()
            self._check_same_s(S)
            A = self._check_dense(A, "A", self.m)
            B = self._check_dense(B, "B", self.n)
            kw = self._sddmm_kwargs(use_values, edge_op)

            def collect(ori):
                out = self._alg.collect_sddmm(ori.plan, ori.locals_, ori.S_eff)
                return out, self.report(self._window_label(Mode.SDDMM.value))

            return self._run_mode_async(Mode.SDDMM, A, B, collect, **kw)

    def _run_mode_async(
        self, mode: Mode, A, B, collect: Callable, **kernel_kwargs
    ) -> SessionFuture:
        """Async single-mode run: the :meth:`_run_mode` pipeline with the
        dispatch left in flight (mirrors :meth:`_run_fused_async`)."""
        t0 = time.perf_counter()
        ori = self._orientation(False)
        label = f"{self.algorithm}/{mode.value}{self._suffix}"

        if not self.persistent:
            ori = self._run_mode(mode, A, B, **kernel_kwargs)
            future = SessionFuture(self, None, None)
            future._done = True
            future._value = collect(ori)
            return future

        def call(ctx, plan, local, **kw):
            self._alg.rank_kernel(ctx, plan, local, mode, **kernel_kwargs, **kw)

        staging = self._stage_operands(ori, False, A, B)
        self._wait_inflight()  # drains the pool; raises call k's error
        self._promote_staged(ori, staging)
        try:
            pool_future = self._dispatch(ori, call, label)
        except Exception:
            self._drop_contexts()
            raise
        self._ncalls += 1
        if mode == Mode.SPMM_A:
            self._mark_dense_dirty(False, "a")
        elif mode == Mode.SPMM_B:
            self._mark_dense_dirty(False, "b")

        future = SessionFuture(self, pool_future, lambda: collect(ori))
        future._metrics_label = label
        future._metrics_t0 = t0
        self._inflight = future
        return future

    def fusedmm_a(
        self, A: np.ndarray, B: np.ndarray, S=None, collect_sddmm: bool = False
    ):
        """``FusedMMA(S, A, B) = SpMMA(SDDMM(A, B, S), B)``.

        Returns ``(output, report)``; with ``collect_sddmm=True``,
        ``(output, sddmm_intermediate, report)``.
        """
        with self._exclusive():
            out, sddmm_out, rep = self._run_fused(
                FusedVariant.FUSED_A, A, B, collect_sddmm, S
            )
        if collect_sddmm:
            return out, sddmm_out, rep
        return out, rep

    def fusedmm_b(
        self, A: np.ndarray, B: np.ndarray, S=None, collect_sddmm: bool = False
    ):
        """``FusedMMB(S, A, B) = SpMMB(SDDMM(A, B, S), A)`` (see
        :meth:`fusedmm_a` for the return convention)."""
        with self._exclusive():
            out, sddmm_out, rep = self._run_fused(
                FusedVariant.FUSED_B, A, B, collect_sddmm, S
            )
        if collect_sddmm:
            return out, sddmm_out, rep
        return out, rep

    def _fused_parts(self, variant: FusedVariant, A, B, S):
        """Shared validation/resolution for the fused entry points."""
        self._check_open()
        self._check_same_s(S)
        A = self._check_dense(A, "A", self.m)
        B = self._check_dense(B, "B", self.n)
        transpose, native = resolve_orientation(self._alg, variant, self.elision)
        method = _native_method(self._alg, self.elision, native)
        A_eff, B_eff = (B, A) if transpose else (A, B)
        label = f"{self.algorithm}/{self.elision.value}{self._suffix}"
        return transpose, native, method, A_eff, B_eff, label

    def _collect_fused(
        self, ori: _Orientation, transpose: bool, native: str,
        collect_sddmm: bool, label: str,
    ):
        alg = self._alg
        if native == "a":
            out = alg.collect_dense_a(ori.plan, ori.locals_)
        else:
            out = alg.collect_dense_b(ori.plan, ori.locals_)
        sddmm_out = None
        if collect_sddmm:
            sddmm_out = alg.collect_sddmm(ori.plan, ori.locals_, ori.S_eff)
            if transpose:
                sddmm_out = sddmm_out.transposed()
        return out, sddmm_out, self.report(f"{label}/x{self._ncalls}")

    def fusedmm_a_async(
        self, A: np.ndarray, B: np.ndarray, S=None, collect_sddmm: bool = False
    ) -> SessionFuture:
        """Pipelined :meth:`fusedmm_a`: returns a :class:`SessionFuture`.

        Submitting call ``k+1`` while call ``k`` is still running overlaps
        the driver-side dense scatter of ``k+1`` (computed against staged
        blocks) with ``k``'s SPMD run — the cross-call half of the overlap
        pipeline::

            futures = [sess.fusedmm_a_async(A, Bs[i]) for i in range(5)]
            outs = [f.result()[0] for f in futures]

        ``result()`` returns exactly what :meth:`fusedmm_a` would have.
        """
        with self._exclusive():
            return self._run_fused_async(
                FusedVariant.FUSED_A, A, B, collect_sddmm, S
            )

    def fusedmm_b_async(
        self, A: np.ndarray, B: np.ndarray, S=None, collect_sddmm: bool = False
    ) -> SessionFuture:
        """Pipelined :meth:`fusedmm_b` (see :meth:`fusedmm_a_async`)."""
        with self._exclusive():
            return self._run_fused_async(
                FusedVariant.FUSED_B, A, B, collect_sddmm, S
            )

    def _run_fused(
        self,
        variant: FusedVariant,
        A: np.ndarray,
        B: np.ndarray,
        collect_sddmm: bool,
        S=None,
        collect: bool = True,
    ) -> Tuple[Optional[np.ndarray], Optional[CooMatrix], RunReport]:
        t0 = time.perf_counter()
        self._wait_inflight()
        transpose, native, method, A_eff, B_eff, label = self._fused_parts(
            variant, A, B, S
        )
        ori = self._orientation(transpose)
        try:
            outcome, nretries = self._execute(
                ori, transpose, A_eff, B_eff, method, label
            )
        except Exception as exc:  # noqa: BLE001 - recorded, then re-raised
            self._record_call(label, t0, outcome=self._failure_outcome(exc))
            raise
        self._ncalls += 1
        self._record_call(label, t0, outcome=outcome, retries=nretries)
        self._mark_dense_dirty(transpose, native)

        if not collect:
            return None, None, self.report(f"{label}/x{self._ncalls}")
        return self._collect_fused(ori, transpose, native, collect_sddmm, label)

    def _run_fused_async(
        self,
        variant: FusedVariant,
        A: np.ndarray,
        B: np.ndarray,
        collect_sddmm: bool,
        S=None,
    ) -> SessionFuture:
        """Pipelined fused call: stage the dense scatter of *this* call
        while the previous call's SPMD run is still in flight, then swap
        the staged blocks in and dispatch to the pool's second slot.

        Requires the persistent worker pool (``persistent=False`` falls
        back to a synchronous run wrapped in a completed future).
        """
        t0 = time.perf_counter()
        transpose, native, method, A_eff, B_eff, label = self._fused_parts(
            variant, A, B, S
        )
        ori = self._orientation(transpose)

        if not self.persistent:
            out, sddmm_out, rep = self._run_fused(variant, A, B, collect_sddmm, S)
            future = SessionFuture(self, None, None)
            future._done = True
            future._value = (
                (out, sddmm_out, rep) if collect_sddmm else (out, rep)
            )
            return future

        # the dense scatter of call k+1, computed against staged locals
        # while call k runs — the driver-side half of the overlap pipeline
        staging = self._stage_operands(ori, transpose, A_eff, B_eff)
        self._wait_inflight()  # drains the pool; raises call k's error
        self._promote_staged(ori, staging)
        try:
            pool_future = self._dispatch(ori, method, label)
        except Exception:
            # single-rank pools run the body inline: an immediate failure
            # must invalidate contexts and snapshots like a waited one
            self._drop_contexts()
            raise
        self._ncalls += 1
        self._mark_dense_dirty(transpose, native)

        def collect():
            parts = self._collect_fused(
                ori, transpose, native, collect_sddmm, label
            )
            return parts if collect_sddmm else (parts[0], parts[2])

        future = SessionFuture(self, pool_future, collect)
        future._metrics_label = label
        future._metrics_t0 = t0
        self._inflight = future
        return future

    # ------------------------------------------------------------------
    # rank-side dispatch (apps: rank-resident CG loops, edge softmax)
    # ------------------------------------------------------------------

    def fused_rank_method(self, variant: FusedVariant):
        """Resolve a fused variant to its rank-side native procedure.

        Returns ``(transpose, native, method)``: run ``method(ctx, plan,
        local, ...)`` against the ``transpose`` orientation; the moving
        (native-output) operand occupies the ``local`` slot named by
        ``native`` (``"a"`` or ``"b"``) and the other slot holds the
        fixed operand.  This is the hook apps use to keep iterative
        solvers (ALS's batched CG) entirely rank-side on the warm pool.
        """
        transpose, native = resolve_orientation(self._alg, variant, self.elision)
        return transpose, native, _native_method(self._alg, self.elision, native)

    def bind(self, A, B, transpose: bool = False) -> _Orientation:
        """(Re)bind the dense operands of one resident orientation.

        ``A``/``B`` follow the *orientation's* plan shape — for the
        transposed sibling the caller passes already-swapped operands,
        exactly as the fused dispatch does.  ``None`` zeroes an
        output-only slot.  Returns the orientation handle, whose
        ``plan``/``locals_`` the caller may pass to the algorithm's
        ``collect_*`` methods after :meth:`run_rank`.
        """
        with self._exclusive():
            self._check_open()
            self._wait_inflight()
            ori = self._orientation(transpose)
            if A is not None:
                A = self._check_dense(A, "A", ori.plan.m)
            if B is not None:
                B = self._check_dense(B, "B", ori.plan.n)
            self._bind_operands(ori, transpose, A, B)
            return ori

    def run_rank(
        self, proc, transpose: bool = False, label: str = "rank-step"
    ) -> _Orientation:
        """Dispatch a custom rank-side procedure to the warm worker pool.

        ``proc(ctx, plan, local)`` (plus ``sparse_plan=`` on sparse-comm
        sessions) runs on every resident rank against the orientation's
        resident sparse state and whatever dense blocks :meth:`bind` (or a
        previous kernel) left in place.  Communication inside ``proc``
        uses the resident context's subcommunicators and is accounted to
        the session's report — this is how the apps put their
        once-driver-side reductions (CG row dots, edge softmax) back into
        the measured OTHER phase.
        """
        t0 = time.perf_counter()
        with self._exclusive():
            self._check_open()
            self._wait_inflight()
            ori = self._orientation(transpose)
            try:
                # no retry here: custom rank procedures (the apps' CG loops,
                # edge softmax) mutate rank-resident state as they go, so a
                # re-execution would not start from the pre-call state —
                # fail fast and let the app re-drive from its own checkpoint
                self._launch(ori, proc, label)
            except Exception as exc:  # noqa: BLE001 - recorded, then re-raised
                self._record_call(label, t0, outcome=self._failure_outcome(exc))
                raise
            self._ncalls += 1
            self._record_call(label, t0)
            # a custom rank procedure may overwrite either resident dense side
            self._mark_dense_dirty(transpose, "ab")
            return ori

    # ------------------------------------------------------------------
    # profiling / lifecycle
    # ------------------------------------------------------------------

    def _window_label(self, kernel: str) -> str:
        """Label naming the last kernel and the window's call count — the
        counters cover *all* calls in the window, not just the last one."""
        return f"{self.algorithm}/{kernel}{self._suffix}/x{self._ncalls}"

    def report(self, label: Optional[str] = None) -> RunReport:
        """The accumulated cost report over every call since the last
        :meth:`reset_profile` (live view: later calls keep adding).

        A still-pipelined async call is finalized first — the per-rank
        profiles are single-writer by design, so the report never reads
        counters a running call is concurrently mutating.
        """
        with self._exclusive():
            self._wait_inflight()
        return RunReport(
            per_rank=self._profiles,
            label=label or f"session/{self.algorithm}{self._suffix}/x{self._ncalls}",
            comm_mode=self.comm_mode.value,
            kernel_backend=self.kernels,
        )

    def reset_profile(self) -> None:
        """Start a fresh accumulation window (resident state untouched).

        Clears the counters, the per-call metrics records and — when
        tracing — every rank's span buffer."""
        with self._exclusive():
            self._wait_inflight()
            self._profiles = self._new_profiles()
            self._ncalls = 0
            self._metrics = []
            self._last_snapshot = self._counter_snapshot()

    # -- observability: per-call metrics, spans, timeline ----------------

    def metrics(self) -> List[Dict[str, Any]]:
        """Per-call structured metrics records (always on, one per kernel
        call since the last :meth:`reset_profile`).

        Each record is a JSON-ready dict: wall ms of the call, the delta
        of rank-summed communication words/messages, FLOPs, compute /
        exposed-comm / hidden-comm ms, the current peak panel-buffer
        bytes, and the call ``outcome`` (``"ok"``, ``"retried"``,
        ``"degraded"``, ``"timeout"`` or ``"failed"``) together with the
        number of ``retries`` it took.  Failed calls are recorded too.
        A still-pipelined async call is finalized first so its record
        exists by the time this returns.
        """
        with self._exclusive():
            self._wait_inflight()
            return list(self._metrics)

    def metrics_jsonl(self) -> str:
        """The :meth:`metrics` records as JSON-lines (one record per line)."""
        return "\n".join(json.dumps(rec) for rec in self.metrics())

    def tracers(self) -> List[Tracer]:
        """The per-rank tracers (empty list when ``trace="off"``)."""
        self._wait_inflight()
        return [p.tracer for p in self._profiles if p.tracer is not None]

    def timeline(self) -> TimelineStats:
        """Occupancy analysis of the traced window (requires ``trace="on"``)."""
        tracers = self.tracers()
        if not tracers:
            raise ReproError(
                "session has no tracers — plan with trace='on' to record spans"
            )
        return TimelineStats.from_tracers(tracers)

    def export_trace(self, path: Optional[str] = None, label: str = "") -> Dict:
        """Chrome trace-event JSON of the traced window (see
        :func:`repro.runtime.trace.export_chrome_trace`); requires
        ``trace="on"``.  Returns the document; writes it to ``path`` too
        when given.
        """
        self._wait_inflight()
        return export_chrome_trace(
            self._profiles,
            path=path,
            label=label or f"{self.algorithm}{self._suffix}/x{self._ncalls}",
        )

    def close(self) -> None:
        """Drain and join the worker pool, release buffer pools, and drop
        the resident distributions.

        Any still-pipelined call is finalized first (its future stays
        consumable; a failure it carried surfaces at ``result()``, not
        here).  The pool join is counter-asserted (every rank thread must
        terminate), so sessions cannot leak threads.  Idempotent;
        subsequent kernel calls raise :class:`ReproError`.

        Unlike kernel calls, ``close`` *blocks* on the call gate instead
        of raising :class:`SessionBusyError` — teardown from ``__exit__``
        or a fleet drain must wait for an in-progress call, not race it.
        """
        with self._call_gate:
            if not self._closed:
                try:
                    self._wait_inflight()
                except Exception:
                    pass  # stored on the future; close must not fail on it
                if self._pool is not None:
                    self._pool.close()
                    self._pool = None
                self._alg.release_buffers()
                self._orients.clear()
                self._dense_state.clear()
                self._closed = True

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return (
            f"Session({self.algorithm!r}, p={self.p}, c={self.c}, "
            f"elision={self.elision.value!r}, comm={self.comm_mode.value!r}, "
            f"overlap={self.overlap_mode!r}, backend={self.backend!r}, "
            f"kernels={self.kernels!r}, "
            f"shape=({self.m}, {self.n}), r={self.r}, phi={self.phi:.4g}, "
            f"resident_orientations="
            f"{sorted('T' if t else 'S' for t in self._orients)}, "
            f"{'closed' if self._closed else 'open'})"
        )


def plan(
    S,
    r: int,
    p: int = 4,
    c: Optional[int] = None,
    algorithm: str = "auto",
    elision: ElisionLike = Elision.NONE,
    comm: CommLike = CommMode.DENSE,
    machine: MachineParams = CORI_KNL,
    eager: bool = False,
    persistent: bool = True,
    overlap: str = "auto",
    trace: str = "off",
    deadline_ms: Optional[float] = None,
    retries: int = 0,
    faults=None,
    backend: str = "threads",
    kernels: str = "numpy",
) -> Session:
    """Resolve all knobs once and capture S; returns a :class:`Session`.

    Parameters mirror the one-shot kernels: ``algorithm="auto"`` picks the
    Table III/IV winner for ``phi = nnz/(n r)``; ``c=None`` picks the
    model-optimal feasible replication factor; ``comm="auto"`` lets the
    extended alpha-beta model choose dense ring collectives versus
    need-list neighborhood collectives.  ``elision`` selects the FusedMM
    strategy used by :meth:`Session.fusedmm_a` / :meth:`Session.fusedmm_b`.

    Each resident distribution (forward, and the transposed sibling for
    opposite-native fused variants) is built exactly once, on the first
    kernel call that needs it — so a session never distributes an
    orientation it does not use.  ``eager=True`` front-loads the forward
    distribution to construction time instead (warmup for serving paths
    that will run forward kernels).

    ``persistent=True`` (the default) gives the session a resident
    :class:`~repro.runtime.spmd.WorkerPool`: ``p`` rank threads spawn on
    the first kernel call and stay warm — with their communicators, grid
    contexts and panel-buffer pools — until :meth:`Session.close`, so
    steady-state calls pay no thread spawn, no communicator splits and no
    context rebuild.  ``persistent=False`` restores spawn-per-call
    launching (the benchmarks use it as their baseline).

    ``overlap`` selects the communication/compute software pipeline inside
    the rank kernels: ``"on"`` posts every propagation shift / packed
    exchange behind the local kernel (bitwise-identical outputs, hidden
    transfer time measured on the report as
    :attr:`~repro.runtime.profile.RunReport.hidden_comm_seconds` /
    :attr:`~repro.runtime.profile.RunReport.overlap_efficiency`),
    ``"off"`` keeps the historical synchronous loops, and ``"auto"`` (the
    default) consults the cost model's overlapped-time term and enables
    the pipeline whenever it predicts a positive saving — default-on
    where profitable.

    ``trace="on"`` attaches a per-rank
    :class:`~repro.runtime.trace.Tracer` to every profile: tracked phases,
    communication waits, pool dispatch and local kernels record begin/end
    spans, and in-flight exchanges record post→complete windows.  Export
    with :meth:`Session.export_trace` (Chrome trace-event JSON, loadable
    in Perfetto) and analyze with :meth:`Session.timeline` (per-rank
    occupancy and the overlap-window occupancy).  The default ``"off"``
    records nothing and costs nothing on the hot path.

    ``deadline_ms`` arms a per-call watchdog: a rank whose blocking
    receive outlives the horizon raises
    :class:`~repro.errors.SpmdTimeout` carrying a per-rank blocked-state
    dump (who waits on whom, which tag, which phase), so mismatched
    collectives and lost messages fail in bounded time instead of hanging.
    ``retries=N`` re-executes a call that died of a *runtime* fault (not a
    deterministic user error) up to N times against the resident
    distribution — never re-planning — and, when the knobs were
    aggressive (``overlap="on"``/``comm="sparse"``), falls back to one
    conservative re-run (synchronous loops, dense collectives) before
    surfacing the first error; outputs after retry or degradation are
    bitwise-identical to a clean run.  ``faults`` arms a deterministic
    :class:`~repro.runtime.faults.FaultPlan` (chaos testing).  All three
    default to off and cost nothing when off.

    ``backend`` selects the execution substrate (see ``ARCHITECTURE.md``):
    ``"threads"`` (the default) simulates the ranks as threads in this
    process and needs nothing; ``"mpi"`` makes each rank an
    mpirun-resident process over mpi4py — run the *same* driver script
    under ``mpirun -n p`` and plan with matching ``p``.  Outputs are
    bitwise-identical across backends (the collective algorithms are
    shared; only the transport differs).  Unknown names raise
    :class:`~repro.errors.UnknownBackendError`; ``"mpi"`` without mpi4py
    raises :class:`~repro.errors.BackendUnavailableError` with the
    install hint.  Fault injection, ``retries`` and ``persistent=False``
    are thread-only and raise typed errors when combined with
    ``backend="mpi"``.

    ``kernels`` selects the *local-kernel* backend (independent of the
    execution backend): ``"numpy"`` (the default) keeps the vectorized
    NumPy/SciPy paths; ``"numba"`` dispatches the six hot kernels to the
    JIT-compiled ``prange``-parallel implementations of
    :mod:`repro.kernels.backend_numba` (warmed up here at plan time, so
    the first call pays no compilation); ``"auto"`` runs — or loads from
    the per-host cache — a microbenchmark calibration
    (:mod:`repro.model.calibrate`), picks the fastest *measured* backend
    among those installed, and feeds its measured seconds-per-FLOP into
    the ``comm="auto"`` / ``overlap="auto"`` model decisions as the
    compute term.  Unknown names raise
    :class:`~repro.errors.UnknownKernelBackendError`; ``"numba"`` without
    numba raises :class:`~repro.errors.KernelBackendUnavailableError`
    with the install hint.  Compiled backends are thread-backend-only
    (mpi ranks are separate processes) and raise a typed error with
    ``backend="mpi"``.  The resolved choice is observable as
    ``Session.kernels``, in every per-call metrics record (``"kernels"``)
    and on reports (``RunReport.kernel_backend``).
    """
    return Session(
        S, r, p=p, c=c, algorithm=algorithm, elision=elision, comm=comm,
        machine=machine, eager=eager, persistent=persistent, overlap=overlap,
        trace=trace, deadline_ms=deadline_ms, retries=retries, faults=faults,
        backend=backend, kernels=kernels,
    )

"""Per-rank cost accounting: wall time, traffic and FLOPs per phase.

The paper reports three cost phases for its FusedMM algorithms (Figure 5 /
Figure 9): *replication* (fiber-axis all-gathers and reduce-scatters),
*propagation* (cyclic shifts within a grid layer) and *computation* (local
kernels).  Every distributed algorithm in this library wraps its work in
``with profile.track(Phase.X):`` blocks; the communicator attributes message
and word counts to whichever phase is active on the calling rank.

Two complementary views hang off the same tracked regions: **counters**
(this module) accumulate per-phase totals — seconds, words, messages,
FLOPs, the hidden/exposed overlap split — while **spans** (an optional
:class:`~repro.runtime.trace.Tracer` attached to the profile when the
``trace="on"`` knob is set) record each region's begin/end timestamps for
timeline export and occupancy analysis.  Counters are always on and feed
:class:`RunReport`; spans are off by default and cost nothing when off.

Counting convention (matches the paper's analysis): one *word* is one matrix
element or one index, i.e. 8 bytes.  A COO nonzero in flight therefore costs
3 words (row, column, value); a dense block of ``k`` elements costs ``k``
words.  Collective costs follow from the ring implementations in
:mod:`repro.runtime.comm`, which realize the textbook (Chan et al.) costs
the paper assumes: an all-gather over ``c`` ranks of a length-``W`` result
delivers ``(c-1)/c * W`` words to each rank in ``c-1`` messages.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import astuple, dataclass, field
from typing import Dict, Iterable, Iterator, Optional

from repro.types import Phase


@dataclass
class PhaseCounters:
    """Accumulated cost of a single phase on a single rank.

    ``seconds`` is wall time spent *inside* the phase's tracked blocks —
    for communication phases under the overlap pipeline that is the
    **exposed** time (blocking waits).  ``hidden_seconds`` is transfer
    time that completed while the rank was computing (a nonblocking
    exchange was in flight behind a local kernel); it is accounted by the
    waitable handles in :mod:`repro.runtime.comm` and never overlaps with
    ``seconds``.
    """

    seconds: float = 0.0
    words_sent: int = 0
    words_received: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    flops: int = 0
    hidden_seconds: float = 0.0

    def merge(self, other: "PhaseCounters") -> None:
        self.seconds += other.seconds
        self.words_sent += other.words_sent
        self.words_received += other.words_received
        self.messages_sent += other.messages_sent
        self.messages_received += other.messages_received
        self.flops += other.flops
        self.hidden_seconds += other.hidden_seconds


class RankProfile:
    """Mutable cost log owned by one SPMD rank.

    Not thread safe by design: each rank owns exactly one profile and only
    that rank's thread writes to it.
    """

    def __init__(self) -> None:
        self.phase: Phase = Phase.OTHER
        self.counters: Dict[Phase, PhaseCounters] = {p: PhaseCounters() for p in Phase}
        #: high-water mark of resident panel-buffer bytes (gather panels,
        #: partial-output accumulators) reported by the rank's BufferPool
        self.peak_buffer_bytes: int = 0
        #: optional :class:`repro.runtime.trace.Tracer`; ``None`` (tracing
        #: off) keeps every instrumentation site a single attribute check
        self.tracer = None
        #: optional :class:`repro.runtime.faults.RankFaults` view bound to
        #: this rank by the worker pool; ``None`` (faults off) keeps the
        #: hook sites on the same zero-cost disabled path as the tracer
        self.faults = None
        #: optional compiled kernel backend (e.g.
        #: :class:`repro.kernels.backend_numba.NumbaKernels`) attached by
        #: the session when ``kernels != "numpy"``; ``None`` keeps every
        #: local kernel on its inline numpy path at one attribute read
        self.kernels = None

    @contextmanager
    def track(self, phase: Phase) -> Iterator[None]:
        """Attribute wall time and traffic inside the block to ``phase``.

        Phase entry is a fault-injection site: an armed ``crash`` or
        ``straggler`` trigger naming this phase fires here.
        """
        if self.faults is not None:
            self.faults.on_phase(phase.value)
        previous = self.phase
        self.phase = phase
        start = time.perf_counter()
        try:
            yield
        finally:
            end = time.perf_counter()
            self.counters[phase].seconds += end - start
            self.phase = previous
            if self.tracer is not None:
                self.tracer.span(phase.value, "phase", start, end)

    # -- hooks used by the communicator and the local kernels ------------

    def on_send(self, words: int) -> None:
        ctr = self.counters[self.phase]
        ctr.words_sent += words
        ctr.messages_sent += 1

    def on_recv(self, words: int) -> None:
        ctr = self.counters[self.phase]
        ctr.words_received += words
        ctr.messages_received += 1

    def add_flops(self, flops: int) -> None:
        self.counters[self.phase].flops += flops

    def on_hidden(self, seconds: float) -> None:
        """Record transfer time hidden behind computation (overlap)."""
        if seconds > 0.0:
            self.counters[self.phase].hidden_seconds += seconds

    def note_buffer_bytes(self, resident_bytes: int) -> None:
        """Record the current resident panel-buffer footprint; keeps the max."""
        if resident_bytes > self.peak_buffer_bytes:
            self.peak_buffer_bytes = int(resident_bytes)

    # -- cross-process sync (mpi backend) ---------------------------------

    def counter_state(self):
        """Picklable snapshot of the accumulated counters.

        Process backends ship this across rank boundaries (tracers and
        fault views are deliberately excluded — they are local-process
        objects), so every replicated driver holds identical per-rank
        totals after a call.  Restore with :meth:`set_counter_state`.
        """
        return (
            {ph.value: astuple(ctr) for ph, ctr in self.counters.items()},
            self.peak_buffer_bytes,
        )

    def set_counter_state(self, state) -> None:
        """Overwrite the counters with a :meth:`counter_state` snapshot
        taken by this rank's authoritative process."""
        phase_state, peak = state
        for ph in Phase:
            values = phase_state.get(ph.value)
            if values is not None:
                self.counters[ph] = PhaseCounters(*values)
        self.peak_buffer_bytes = int(peak)

    # -- convenience ------------------------------------------------------

    def total(self) -> PhaseCounters:
        out = PhaseCounters()
        for ctr in self.counters.values():
            out.merge(ctr)
        return out


@dataclass
class RunReport:
    """Aggregated cost report for one distributed run.

    ``per_rank`` holds the individual :class:`RankProfile` objects.  The
    reduction methods implement the paper's convention: *communication cost*
    is the maximum over ranks of time spent sending and receiving, so all
    maxima here are per-rank maxima, not sums.
    """

    per_rank: list = field(default_factory=list)
    label: str = ""
    #: the resolved communication mode of the run ("dense" / "sparse"),
    #: so ``comm="auto"`` decisions are observable from the report
    comm_mode: str = ""
    #: the resolved kernel backend the local kernels ran on ("numpy" /
    #: "numba"), so ``kernels="auto"`` decisions are observable too
    kernel_backend: str = ""

    # -- raw reductions ---------------------------------------------------

    def max_over_ranks(self, phase: Phase, attr: str) -> float:
        """Maximum of one counter attribute over all ranks for ``phase``."""
        if not self.per_rank:
            return 0.0
        return max(getattr(p.counters[phase], attr) for p in self.per_rank)

    def phase_words(self, phase: Phase) -> int:
        """Max words *received* by any rank during ``phase``."""
        return int(self.max_over_ranks(phase, "words_received"))

    def phase_messages(self, phase: Phase) -> int:
        return int(self.max_over_ranks(phase, "messages_received"))

    def phase_seconds(self, phase: Phase) -> float:
        return self.max_over_ranks(phase, "seconds")

    def phase_flops(self, phase: Phase) -> int:
        return int(self.max_over_ranks(phase, "flops"))

    @property
    def comm_words(self) -> int:
        """Max per-rank words received over all communication phases."""
        if not self.per_rank:
            return 0
        return int(
            max(
                p.counters[Phase.REPLICATION].words_received
                + p.counters[Phase.PROPAGATION].words_received
                + p.counters[Phase.OTHER].words_received
                for p in self.per_rank
            )
        )

    @property
    def comm_messages(self) -> int:
        if not self.per_rank:
            return 0
        return int(
            max(
                p.counters[Phase.REPLICATION].messages_received
                + p.counters[Phase.PROPAGATION].messages_received
                + p.counters[Phase.OTHER].messages_received
                for p in self.per_rank
            )
        )

    @property
    def peak_buffer_bytes(self) -> int:
        """Max per-rank panel-buffer high-water mark (memory footprint)."""
        if not self.per_rank:
            return 0
        return int(max(p.peak_buffer_bytes for p in self.per_rank))

    @property
    def compute_seconds(self) -> float:
        return self.phase_seconds(Phase.COMPUTATION)

    # -- exposed/hidden communication split (overlap pipeline) ------------

    _COMM_PHASES = (Phase.REPLICATION, Phase.PROPAGATION, Phase.OTHER)

    @property
    def exposed_comm_seconds(self) -> float:
        """Max per-rank wall time spent *blocked* on communication.

        Under ``overlap="off"`` this is the whole communication time; under
        the overlap pipeline it is what the pipeline failed to hide.
        """
        if not self.per_rank:
            return 0.0
        return max(
            sum(p.counters[ph].seconds for ph in self._COMM_PHASES)
            for p in self.per_rank
        )

    @property
    def hidden_comm_seconds(self) -> float:
        """Max per-rank transfer time that completed behind local compute."""
        if not self.per_rank:
            return 0.0
        return max(
            sum(p.counters[ph].hidden_seconds for ph in self._COMM_PHASES)
            for p in self.per_rank
        )

    @property
    def overlap_efficiency(self) -> float:
        """Fraction of the perfectly-hideable communication actually hidden.

        The optimistic overlap model bounds the saving by
        ``min(comm, compute)`` (communication cannot hide more than the
        computation running beside it); this property measures how much of
        that bound the executed pipeline captured:
        ``hidden / min(exposed + hidden, compute)``, clipped to [0, 1].
        Zero for synchronous runs (nothing was hidden).

        This is a *per-rank concurrency* measure — the fraction of each
        exchange's post-to-completion lifetime that ran behind the rank's
        own kernels — matching the per-rank convention of every other
        report metric.  Turning hidden per-rank time into end-to-end
        speedup additionally requires hardware parallelism: a simulator
        host time-slicing all ranks on one core can capture the full
        bound here while total wall time, pinned by serialized compute,
        does not improve.
        """
        hidden = self.hidden_comm_seconds
        if hidden <= 0.0:
            return 0.0
        comm = self.exposed_comm_seconds + hidden
        bound = min(comm, self.compute_seconds)
        if bound <= 0.0:
            return 0.0
        return min(1.0, hidden / bound)

    @property
    def flops(self) -> int:
        if not self.per_rank:
            return 0
        return int(max(p.total().flops for p in self.per_rank))

    # -- modeled times -----------------------------------------------------

    def modeled_comm_seconds(self, machine, phase: Optional[Phase] = None) -> float:
        """alpha-beta time of the communication measured in this run.

        ``machine`` is a :class:`repro.runtime.cost.MachineParams`.  With
        ``phase=None`` all communication phases are included.
        """
        phases: Iterable[Phase]
        if phase is None:
            phases = (Phase.REPLICATION, Phase.PROPAGATION, Phase.OTHER)
        else:
            phases = (phase,)

        def rank_time(p: RankProfile) -> float:
            t = 0.0
            for ph in phases:
                ctr = p.counters[ph]
                t += machine.alpha * ctr.messages_received
                t += machine.beta * ctr.words_received
            return t

        return max(rank_time(p) for p in self.per_rank)

    def modeled_compute_seconds(self, machine) -> float:
        """gamma time of the FLOPs measured in this run."""
        return max(p.total().flops for p in self.per_rank) * machine.gamma

    def modeled_total_seconds(
        self, machine, measured_compute: bool = False, overlap: bool = False
    ) -> float:
        """Total modeled runtime: communication (alpha-beta) + computation.

        With ``measured_compute=True``, wall-clock local-kernel time from
        this process is used instead of ``gamma * flops``.

        ``overlap=True`` models the paper's future-work optimization of
        overlapping the *propagation* phase with local computation (e.g.
        via one-sided MPI / RDMA): the propagation and computation terms
        contribute ``max`` instead of sum, while replication collectives
        remain synchronous.  This is an optimistic bound — perfect overlap
        with no interference.
        """
        compute = (
            self.compute_seconds
            if measured_compute
            else self.modeled_compute_seconds(machine)
        )
        if not overlap:
            return self.modeled_comm_seconds(machine) + compute
        repl = self.modeled_comm_seconds(machine, Phase.REPLICATION)
        other = self.modeled_comm_seconds(machine, Phase.OTHER)
        prop = self.modeled_comm_seconds(machine, Phase.PROPAGATION)
        return repl + other + max(prop, compute)

    def with_model(self, machine, measured_compute: bool = False) -> "ModeledTimes":
        """Model view of this run: synchronous total, optimistic overlap
        bound, *and* the measured exposed/hidden communication split.

        Historically ``modeled_total_seconds(overlap=True)`` silently
        *replaced* the synchronous total with the optimistic perfect-overlap
        bound; this view reports both, next to what the executed pipeline
        actually achieved, so "modeled if we overlapped" and "measured how
        much we overlapped" can no longer be conflated.
        """
        return ModeledTimes(
            synchronous_seconds=self.modeled_total_seconds(
                machine, measured_compute=measured_compute
            ),
            overlap_bound_seconds=self.modeled_total_seconds(
                machine, measured_compute=measured_compute, overlap=True
            ),
            measured_exposed_seconds=self.exposed_comm_seconds,
            measured_hidden_seconds=self.hidden_comm_seconds,
            overlap_efficiency=self.overlap_efficiency,
        )

    # -- structured export -------------------------------------------------

    def to_dict(self, per_rank: bool = False) -> Dict[str, object]:
        """Structured metrics record: one JSON-ready dict per run.

        This is the schema benchmarks and serving consumers share instead
        of hand-rolled field sets.  All reductions follow the paper's
        per-rank-maximum convention; ``per_rank=True`` additionally
        inlines the raw per-rank counter tables.
        """
        out: Dict[str, object] = {
            "label": self.label,
            "comm_mode": self.comm_mode,
            "kernel_backend": self.kernel_backend,
            "nranks": len(self.per_rank),
            "phases": {
                ph.value: {
                    "seconds": self.phase_seconds(ph),
                    "words": self.phase_words(ph),
                    "messages": self.phase_messages(ph),
                    "flops": self.phase_flops(ph),
                    "hidden_seconds": self.max_over_ranks(ph, "hidden_seconds"),
                }
                for ph in Phase
            },
            "comm_words": self.comm_words,
            "comm_messages": self.comm_messages,
            "compute_seconds": self.compute_seconds,
            "exposed_comm_seconds": self.exposed_comm_seconds,
            "hidden_comm_seconds": self.hidden_comm_seconds,
            "overlap_efficiency": self.overlap_efficiency,
            "peak_buffer_bytes": self.peak_buffer_bytes,
            "flops": self.flops,
        }
        if per_rank:
            out["per_rank"] = [
                {
                    "rank": r,
                    "peak_buffer_bytes": p.peak_buffer_bytes,
                    "phases": {
                        ph.value: {
                            "seconds": p.counters[ph].seconds,
                            "words_sent": p.counters[ph].words_sent,
                            "words_received": p.counters[ph].words_received,
                            "messages_sent": p.counters[ph].messages_sent,
                            "messages_received": p.counters[ph].messages_received,
                            "flops": p.counters[ph].flops,
                            "hidden_seconds": p.counters[ph].hidden_seconds,
                        }
                        for ph in Phase
                    },
                }
                for r, p in enumerate(self.per_rank)
            ]
        return out

    def to_json(self, per_rank: bool = False, indent: Optional[int] = None) -> str:
        """:meth:`to_dict` serialized with :func:`json.dumps`."""
        return json.dumps(self.to_dict(per_rank=per_rank), indent=indent)

    # -- merging (for multi-call benchmarks, e.g. "5 FusedMM calls") ------

    def merged_with(self, other: "RunReport") -> "RunReport":
        if len(self.per_rank) != len(other.per_rank):
            raise ValueError("cannot merge reports with different rank counts")
        merged = RunReport(
            per_rank=[RankProfile() for _ in self.per_rank],
            label=self.label,
            # keep the mode only when both reports agree; a dense+sparse
            # merge has no single honest answer, so report none
            comm_mode=self.comm_mode if self.comm_mode == other.comm_mode else "",
            kernel_backend=(
                self.kernel_backend
                if self.kernel_backend == other.kernel_backend
                else ""
            ),
        )
        for dst, a, b in zip(merged.per_rank, self.per_rank, other.per_rank):
            for ph in Phase:
                dst.counters[ph].merge(a.counters[ph])
                dst.counters[ph].merge(b.counters[ph])
            dst.peak_buffer_bytes = max(a.peak_buffer_bytes, b.peak_buffer_bytes)
        return merged

    def summary(self) -> str:
        """Human-readable per-phase summary table."""
        lines = [f"RunReport({self.label or 'unnamed'})"]
        for ph in Phase:
            lines.append(
                f"  {ph.value:<12} time={self.phase_seconds(ph):9.4f}s"
                f" words={self.phase_words(ph):>12d}"
                f" msgs={self.phase_messages(ph):>6d}"
                f" flops={self.phase_flops(ph):>14d}"
            )
        if self.comm_mode:
            lines.append(f"  comm mode    {self.comm_mode}")
        if self.kernel_backend:
            lines.append(f"  kernels      {self.kernel_backend}")
        if self.hidden_comm_seconds > 0.0:
            lines.append(
                f"  overlap      hidden={self.hidden_comm_seconds:.4f}s"
                f" exposed={self.exposed_comm_seconds:.4f}s"
                f" efficiency={self.overlap_efficiency:.1%}"
            )
        if self.peak_buffer_bytes:
            lines.append(f"  peak buffers {self.peak_buffer_bytes} bytes/rank")
        return "\n".join(lines)


@dataclass(frozen=True)
class ModeledTimes:
    """Modeled totals of a run next to its measured overlap split.

    ``synchronous_seconds`` is the plain alpha-beta + gamma total;
    ``overlap_bound_seconds`` is the optimistic perfect-overlap bound
    (propagation and computation contribute ``max`` instead of sum);
    the ``measured_*`` fields are what the executed pipeline achieved.
    """

    synchronous_seconds: float
    overlap_bound_seconds: float
    measured_exposed_seconds: float
    measured_hidden_seconds: float
    overlap_efficiency: float

    @property
    def modeled_hideable_seconds(self) -> float:
        """What perfect overlap would save on the modeled machine."""
        return self.synchronous_seconds - self.overlap_bound_seconds

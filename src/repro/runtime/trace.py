"""Per-rank span tracing: Chrome trace-event export and timeline analysis.

The counters in :mod:`repro.runtime.profile` answer *how much* time and
traffic each paper phase cost; they cannot answer *when* — whether a
nonblocking exchange was actually in flight while the local kernel ran, or
whether a rank sat idle in the pool queue.  This module adds the missing
time axis:

* :class:`Tracer` — a per-rank ring buffer of timestamped events.  Each
  SPMD rank owns at most one tracer (attached to its
  :class:`~repro.runtime.profile.RankProfile`); when tracing is off the
  attribute is ``None`` and every instrumentation site is a single
  ``is not None`` check, so the untraced hot path stays untaxed.
* :func:`export_chrome_trace` — serializes tracers to Chrome trace-event
  JSON (one "thread" per rank) loadable in Perfetto / ``chrome://tracing``.
* :class:`TimelineStats` — derived occupancy analysis: per-rank
  idle/compute/exposed-communication split and the **overlap-window
  occupancy** (the fraction of kernel time with a transfer actually in
  flight), the number that explains an overlap pipeline's end-to-end
  speedup — or the lack of it.

Event model: three kinds of tuple events, ``(kind, name, cat, t0, t1)``
with ``perf_counter`` timestamps.

``"span"``
    A closed begin/end interval on the rank's own timeline (phase blocks,
    kernels, queue waits, blocking receives).  Spans are recorded at their
    *end*, so within one tracer they appear in end-time order and properly
    nested spans can be reconstructed by a tail scan (see
    :meth:`RankTimeline.from_events`).
``"async"``
    A post→complete window of an in-flight nonblocking exchange.  These
    overlap the rank's spans by design — that overlap is the thing being
    measured — and are exported as Chrome *async* events.
``"inst"``
    A zero-duration marker (sends, buffer acquisitions); ``t1`` is unused.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.types import Phase

Event = Tuple[str, str, str, float, float]

#: default ring-buffer capacity (events per rank); old events are dropped
#: first so a trace always covers the *end* of a run
DEFAULT_CAPACITY = 1 << 16


class Tracer:
    """Low-overhead per-rank event recorder.

    Events live in a bounded :class:`~collections.deque`; once full, the
    oldest events are evicted and counted in :attr:`dropped`.  Recording is
    two timestamp reads plus one tuple append — cheap enough to leave on
    around every tracked region — and the *disabled* path costs nothing at
    all because call sites guard on ``profile.tracer is not None``.

    Not thread safe by design, mirroring :class:`RankProfile`: each rank's
    thread owns its tracer exclusively.
    """

    __slots__ = ("rank", "events", "dropped", "_capacity")

    def __init__(self, rank: int = 0, capacity: int = DEFAULT_CAPACITY) -> None:
        self.rank = rank
        self._capacity = int(capacity)
        self.events: "deque[Event]" = deque(maxlen=self._capacity)
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.events)

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    # -- recording ---------------------------------------------------------

    def _append(self, event: Event) -> None:
        if len(self.events) == self._capacity:
            self.dropped += 1
        self.events.append(event)

    def span(self, name: str, cat: str, t0: float, t1: float) -> None:
        """Record a closed interval on this rank's timeline."""
        self._append(("span", name, cat, t0, t1))

    def async_span(self, name: str, cat: str, t0: float, t1: float) -> None:
        """Record an in-flight window (post→complete of an exchange)."""
        self._append(("async", name, cat, t0, t1))

    def instant(self, name: str, cat: str, ts: Optional[float] = None) -> None:
        """Record a zero-duration marker."""
        if ts is None:
            ts = time.perf_counter()
        self._append(("inst", name, cat, ts, ts))

    @contextmanager
    def region(self, name: str, cat: str = "region") -> Iterator[None]:
        """Context manager recording the enclosed block as a span."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.span(name, cat, t0, time.perf_counter())

    # -- introspection -----------------------------------------------------

    def latest(self, cat: Optional[str] = None) -> Optional[str]:
        """Name of the most recently recorded event (newest first,
        optionally restricted to one category).

        Spans are recorded at their *end*, so for a rank that is blocked
        mid-phase this names the last thing it finished — the
        blocked-state dumps pair it with the profile's still-open phase
        to localize a hang.  Cross-thread reads are safe for this
        diagnostic use (a deque append is atomic under the GIL).
        """
        for kind, name, ecat, _t0, _t1 in reversed(self.events):
            if cat is None or ecat == cat:
                return name
        return None


def _coerce_tracers(source: Any) -> List[Tracer]:
    """Accept a RunReport, a profile/tracer sequence, or a single Tracer."""
    if isinstance(source, Tracer):
        return [source]
    per_rank = getattr(source, "per_rank", None)
    if per_rank is not None:
        source = per_rank
    if not isinstance(source, (list, tuple)):
        raise ReproError(
            "expected a RunReport, a sequence of RankProfile/Tracer, or a Tracer"
        )
    tracers: List[Tracer] = []
    for item in source:
        if isinstance(item, Tracer):
            tracers.append(item)
        else:
            tr = getattr(item, "tracer", None)
            if tr is not None:
                tracers.append(tr)
    return tracers


def export_chrome_trace(
    source: Any, path: Optional[str] = None, label: str = ""
) -> Dict[str, Any]:
    """Serialize traced ranks to a Chrome trace-event JSON document.

    ``source`` is a :class:`~repro.runtime.profile.RunReport` (with traced
    profiles), a sequence of profiles or tracers, or a single tracer.
    Returns the document as a dict; with ``path`` it is also written to
    disk, ready for Perfetto (https://ui.perfetto.dev) or
    ``chrome://tracing``.

    Layout: every rank becomes a thread (``pid`` 0, ``tid`` = rank) with a
    ``thread_name`` metadata record.  Spans become complete events
    (``ph: "X"``), in-flight exchange windows become async begin/end pairs
    (``ph: "b"``/``"e"``) so Perfetto draws them on separate async tracks
    overlapping the rank's own spans, and markers become instant events.
    Timestamps are microseconds relative to the earliest recorded event.
    """
    tracers = _coerce_tracers(source)
    if not tracers:
        raise ReproError(
            "no tracers to export — run with trace='on' (the trace knob on "
            "repro.plan / the Session / the one-shot API)"
        )

    t_zero = min(
        (ev[3] for tr in tracers for ev in tr.events),
        default=0.0,
    )

    def us(ts: float) -> float:
        return round((ts - t_zero) * 1e6, 3)

    events: List[Dict[str, Any]] = []
    next_async_id = 1
    for tr in tracers:
        tid = tr.rank
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": tid,
                "args": {"name": f"rank {tid}"},
            }
        )
        for kind, name, cat, t0, t1 in tr.events:
            if kind == "span":
                events.append(
                    {
                        "ph": "X",
                        "name": name,
                        "cat": cat,
                        "pid": 0,
                        "tid": tid,
                        "ts": us(t0),
                        "dur": round(max(0.0, t1 - t0) * 1e6, 3),
                    }
                )
            elif kind == "async":
                aid = f"0x{next_async_id:x}"
                next_async_id += 1
                base = {"cat": cat, "pid": 0, "tid": tid, "id": aid}
                events.append({"ph": "b", "name": name, "ts": us(t0), **base})
                events.append({"ph": "e", "name": name, "ts": us(t1), **base})
            else:  # "inst"
                events.append(
                    {
                        "ph": "i",
                        "name": name,
                        "cat": cat,
                        "pid": 0,
                        "tid": tid,
                        "ts": us(t0),
                        "s": "t",
                    }
                )

    doc: Dict[str, Any] = {"traceEvents": events, "displayTimeUnit": "ms"}
    if label:
        doc["otherData"] = {"label": label}
    dropped = sum(tr.dropped for tr in tracers)
    if dropped:
        doc.setdefault("otherData", {})["dropped_events"] = dropped
    if path is not None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
    return doc


# ---------------------------------------------------------------------------
# derived timeline analysis
# ---------------------------------------------------------------------------


def _union(intervals: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Union of intervals as a sorted list of disjoint intervals."""
    out: List[Tuple[float, float]] = []
    for lo, hi in sorted(i for i in intervals if i[1] > i[0]):
        if out and lo <= out[-1][1]:
            if hi > out[-1][1]:
                out[-1] = (out[-1][0], hi)
        else:
            out.append((lo, hi))
    return out


def _measure(intervals: List[Tuple[float, float]]) -> float:
    return sum(hi - lo for lo, hi in intervals)


def _intersect(
    a: List[Tuple[float, float]], b: List[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """Intersection of two disjoint-sorted interval lists."""
    out: List[Tuple[float, float]] = []
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            out.append((lo, hi))
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return out


_COMM_PHASE_NAMES = (
    Phase.REPLICATION.value,
    Phase.PROPAGATION.value,
    Phase.OTHER.value,
)


@dataclass
class RankTimeline:
    """Occupancy decomposition of one rank's traced timeline.

    ``span_seconds`` is the first-to-last extent of the rank's recorded
    events.  The per-category seconds are *self time* of the phase spans
    (a nested computation span does not double-count against the enclosing
    replication span), so ``compute + exposed_comm + other + idle``
    equals ``span_seconds`` up to events outside any phase.
    """

    rank: int
    span_seconds: float
    compute_seconds: float
    exposed_comm_seconds: float
    other_seconds: float
    idle_seconds: float
    #: fraction of kernel (COMPUTATION-span) time with >= 1 transfer in flight
    overlap_window_occupancy: float
    #: absolute kernel-window time covered by in-flight transfers
    overlap_covered_seconds: float
    kernel_seconds: float

    @classmethod
    def from_events(cls, rank: int, events: Sequence[Event]) -> "RankTimeline":
        if not events:
            return cls(rank, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

        # Phase spans are recorded at their *end* and are properly nested,
        # so a span's children (if any) are the contiguous tail of the
        # already-seen spans it contains: any earlier pending span that is
        # not contained ended before this one started and can never be a
        # child of a later span either.  One tail scan per span therefore
        # yields exact self times.
        self_time: Dict[str, float] = {}
        pending: List[Tuple[float, float, float]] = []  # (t0, t1, child_time)
        phase_raw: Dict[str, List[Tuple[float, float]]] = {}
        async_windows: List[Tuple[float, float]] = []
        t_min = min(ev[3] for ev in events)
        t_max = max(max(ev[3], ev[4]) for ev in events)

        for kind, name, cat, t0, t1 in events:
            if kind == "async":
                # only transfer windows count toward overlap occupancy;
                # buffer-lease windows overlap kernels by design
                if cat == "comm":
                    async_windows.append((t0, t1))
                continue
            if kind != "span" or cat != "phase":
                continue
            phase_raw.setdefault(name, []).append((t0, t1))
            child = 0.0
            while pending and pending[-1][0] >= t0:
                c0, c1, _ = pending.pop()
                child += c1 - c0
            self_time[name] = self_time.get(name, 0.0) + (t1 - t0) - child
            pending.append((t0, t1, child))

        span_seconds = t_max - t_min
        compute = self_time.get(Phase.COMPUTATION.value, 0.0)
        exposed = sum(self_time.get(n, 0.0) for n in _COMM_PHASE_NAMES)
        other = sum(
            v
            for n, v in self_time.items()
            if n != Phase.COMPUTATION.value and n not in _COMM_PHASE_NAMES
        )
        idle = max(0.0, span_seconds - compute - exposed - other)

        kernel_windows = _union(phase_raw.get(Phase.COMPUTATION.value, []))
        kernel_seconds = _measure(kernel_windows)
        covered = _measure(_intersect(_union(async_windows), kernel_windows))
        occupancy = covered / kernel_seconds if kernel_seconds > 0.0 else 0.0

        return cls(
            rank=rank,
            span_seconds=span_seconds,
            compute_seconds=compute,
            exposed_comm_seconds=exposed,
            other_seconds=other,
            idle_seconds=idle,
            overlap_window_occupancy=occupancy,
            overlap_covered_seconds=covered,
            kernel_seconds=kernel_seconds,
        )


@dataclass
class TimelineStats:
    """Occupancy analysis over all traced ranks of a run.

    :attr:`overlap_window_occupancy` is the headline number: over all
    ranks, the fraction of local-kernel wall time during which at least
    one nonblocking exchange was in flight on the same rank.  An overlap
    pipeline can only buy end-to-end time inside that window — a high
    ``hidden_comm_seconds`` with a *low* window occupancy means transfers
    completed in bursts between kernels rather than behind them (the
    GIL'd thread backend's signature), which is exactly what the flat
    ``overlap_speedup`` benchmark numbers look like from the outside.
    """

    per_rank: List[RankTimeline]

    @classmethod
    def from_tracers(cls, tracers: Sequence[Tracer]) -> "TimelineStats":
        return cls(
            per_rank=[RankTimeline.from_events(tr.rank, tr.events) for tr in tracers]
        )

    @classmethod
    def from_report(cls, report: Any) -> "TimelineStats":
        tracers = _coerce_tracers(report)
        if not tracers:
            raise ReproError("report has no traced ranks — run with trace='on'")
        return cls.from_tracers(tracers)

    @property
    def overlap_window_occupancy(self) -> float:
        kernel = sum(r.kernel_seconds for r in self.per_rank)
        if kernel <= 0.0:
            return 0.0
        return sum(r.overlap_covered_seconds for r in self.per_rank) / kernel

    @property
    def idle_fraction(self) -> float:
        span = sum(r.span_seconds for r in self.per_rank)
        if span <= 0.0:
            return 0.0
        return sum(r.idle_seconds for r in self.per_rank) / span

    @property
    def compute_fraction(self) -> float:
        span = sum(r.span_seconds for r in self.per_rank)
        if span <= 0.0:
            return 0.0
        return sum(r.compute_seconds for r in self.per_rank) / span

    @property
    def exposed_comm_fraction(self) -> float:
        span = sum(r.span_seconds for r in self.per_rank)
        if span <= 0.0:
            return 0.0
        return sum(r.exposed_comm_seconds for r in self.per_rank) / span

    def to_dict(self) -> Dict[str, Any]:
        return {
            "overlap_window_occupancy": self.overlap_window_occupancy,
            "compute_fraction": self.compute_fraction,
            "exposed_comm_fraction": self.exposed_comm_fraction,
            "idle_fraction": self.idle_fraction,
            "per_rank": [
                {
                    "rank": r.rank,
                    "span_seconds": r.span_seconds,
                    "compute_seconds": r.compute_seconds,
                    "exposed_comm_seconds": r.exposed_comm_seconds,
                    "other_seconds": r.other_seconds,
                    "idle_seconds": r.idle_seconds,
                    "kernel_seconds": r.kernel_seconds,
                    "overlap_covered_seconds": r.overlap_covered_seconds,
                    "overlap_window_occupancy": r.overlap_window_occupancy,
                }
                for r in self.per_rank
            ],
        }

    def summary(self) -> str:
        lines = [
            "TimelineStats"
            f" overlap_window_occupancy={self.overlap_window_occupancy:.1%}"
            f" compute={self.compute_fraction:.1%}"
            f" exposed_comm={self.exposed_comm_fraction:.1%}"
            f" idle={self.idle_fraction:.1%}"
        ]
        for r in self.per_rank:
            lines.append(
                f"  rank {r.rank}: span={r.span_seconds:.4f}s"
                f" compute={r.compute_seconds:.4f}s"
                f" exposed={r.exposed_comm_seconds:.4f}s"
                f" idle={r.idle_seconds:.4f}s"
                f" overlap_window={r.overlap_window_occupancy:.1%}"
            )
        return "\n".join(lines)

"""SPMD runtime substrate.

This package stands in for the MPI + interconnect environment of the paper
(Cori, a Cray XC40).  Ranks run over a pluggable
:class:`~repro.runtime.backend.Transport`: with the default
``backend="threads"`` each virtual MPI rank is a Python thread with
private buffers, and with ``backend="mpi"`` each rank is a real process
under ``mpirun`` (:mod:`repro.runtime.backend_mpi`, requires mpi4py).
Either way every byte that moves between ranks goes through an explicit
message-passing :class:`~repro.runtime.comm.Communicator`, so the
distributed-memory semantics (who owns what, what must be communicated)
are exercised exactly as they would be on a real cluster — and the two
backends produce bitwise-identical outputs, because they share all
collective algorithms above the transport seam.

Network time is accounted with the same :math:`\\alpha`-:math:`\\beta`-
:math:`\\gamma` model the paper uses for its analysis, driven by the
*measured* message counts and word counts of each run (see
:mod:`repro.runtime.cost`).
"""

from repro.runtime.backend import (
    BACKENDS,
    Transport,
    World,
    mpi_available,
    resolve_backend,
    validate_backend_name,
)
from repro.runtime.comm import Communicator
from repro.runtime.cost import MachineParams, CORI_KNL, GENERIC_CLUSTER
from repro.runtime.grid import Grid15D, Grid25D
from repro.runtime.profile import RankProfile, RunReport
from repro.runtime.spmd import make_worker_pool, run_spmd

__all__ = [
    "BACKENDS",
    "Transport",
    "World",
    "mpi_available",
    "resolve_backend",
    "validate_backend_name",
    "Communicator",
    "MachineParams",
    "CORI_KNL",
    "GENERIC_CLUSTER",
    "Grid15D",
    "Grid25D",
    "RankProfile",
    "RunReport",
    "make_worker_pool",
    "run_spmd",
]

"""SPMD runtime substrate.

This package stands in for the MPI + interconnect environment of the paper
(Cori, a Cray XC40).  Each virtual MPI rank is a Python thread with private
buffers; every byte that moves between ranks goes through an explicit
message-passing :class:`~repro.runtime.comm.Communicator`, so the
distributed-memory semantics (who owns what, what must be communicated) are
exercised exactly as they would be on a real cluster.

Network time is accounted with the same :math:`\\alpha`-:math:`\\beta`-
:math:`\\gamma` model the paper uses for its analysis, driven by the
*measured* message counts and word counts of each run (see
:mod:`repro.runtime.cost`).
"""

from repro.runtime.backend import World
from repro.runtime.comm import Communicator
from repro.runtime.cost import MachineParams, CORI_KNL, GENERIC_CLUSTER
from repro.runtime.grid import Grid15D, Grid25D
from repro.runtime.profile import RankProfile, RunReport
from repro.runtime.spmd import run_spmd

__all__ = [
    "World",
    "Communicator",
    "MachineParams",
    "CORI_KNL",
    "GENERIC_CLUSTER",
    "Grid15D",
    "Grid25D",
    "RankProfile",
    "RunReport",
    "run_spmd",
]

"""Deterministic fault injection for the SPMD runtime.

A :class:`FaultPlan` is a list of :class:`FaultSpec` triggers threaded
into the transport (:class:`~repro.runtime.backend.World`), the
communicator send path, the phase tracker
(:meth:`~repro.runtime.profile.RankProfile.track`), the named algorithm
regions (:func:`repro.algorithms.base.region`) and the
:class:`~repro.runtime.buffers.BufferPool`.  Every hook follows the
tracer's zero-cost idiom: the plan is ``None`` by default and each site
pays exactly one ``is not None`` check when faults are off.

Supported fault classes (``FaultSpec.action``):

``drop`` / ``delay`` / ``dup``
    Message faults, matched at the *sending* rank by ``(rank, tag, call
    index)``.  ``drop`` accounts the send but never delivers (the
    receiver hangs until a sibling aborts or a ``deadline_ms`` watchdog
    converts the hang into :class:`~repro.errors.SpmdTimeout`);
    ``delay`` sleeps ``delay_s`` before delivering; ``dup`` delivers the
    payload twice (a duplicated wire message).
``crash``
    Raise :class:`~repro.errors.InjectedCrash` on a chosen rank when it
    enters a named phase (``site`` matches the
    :class:`~repro.types.Phase` value) or named algorithm region.
``straggler``
    Sleep ``delay_s`` at a named phase/region on a chosen rank — the
    rank keeps running, its siblings see a stalled peer.
``exhaust``
    Raise :class:`~repro.errors.InjectedExhaustion` from a
    ``BufferPool`` acquisition (simulated allocation failure), matched
    by buffer label.

Determinism: triggers match by per-``(spec, rank)`` call counters, not
wall time, so the same plan on the same program fires at the same
operation every run.  Each spec arms after ``index`` matching events and
fires at most ``times`` times (default once — so a session-level retry
of the same call runs clean); ``times=None`` keeps a fault *sticky*,
which is how the degradation path (retry with conservative knobs that
avoid the faulted tag/region entirely) is exercised.

:meth:`FaultPlan.chaos` derives one deterministic fault from an integer
seed — the CI chaos lane sweeps a fixed seed matrix through it.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import InjectedCrash, InjectedExhaustion, ReproError

#: message-plane actions (matched in Communicator.send)
_MESSAGE_ACTIONS = ("drop", "delay", "dup")
#: site-plane actions (matched at phase entry / named regions / buffers)
_SITE_ACTIONS = ("crash", "straggler", "exhaust")


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic trigger.

    ``rank=None`` matches every rank; ``tag=None`` (message actions) /
    ``site=None`` (site actions) matches every tag / phase / region /
    buffer label.  ``index`` skips that many matching events before the
    fault arms; ``times`` bounds how often it fires (``None`` = sticky).
    """

    action: str
    rank: Optional[int] = None
    tag: Optional[int] = None
    site: Optional[str] = None
    index: int = 0
    times: Optional[int] = 1
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in _MESSAGE_ACTIONS + _SITE_ACTIONS:
            raise ReproError(
                f"unknown fault action {self.action!r}; options: "
                f"{_MESSAGE_ACTIONS + _SITE_ACTIONS}"
            )
        if self.index < 0:
            raise ReproError(f"fault index must be >= 0, got {self.index}")
        if self.times is not None and self.times < 1:
            raise ReproError(f"fault times must be >= 1 or None, got {self.times}")

    def matches_message(self, rank: int, tag: int) -> bool:
        return (
            self.action in _MESSAGE_ACTIONS
            and (self.rank is None or self.rank == rank)
            and (self.tag is None or self.tag == tag)
        )

    def matches_site(self, rank: int, kind: str, name: str) -> bool:
        if self.action not in _SITE_ACTIONS:
            return False
        if self.rank is not None and self.rank != rank:
            return False
        if self.action == "exhaust":
            if kind != "buffer":
                return False
        elif kind == "buffer":
            return False
        return self.site is None or self.site == name


class RankFaults:
    """A :class:`FaultPlan` view bound to one rank.

    Attached to the rank's :class:`~repro.runtime.profile.RankProfile`
    (``profile.faults``) by the worker pool, so rank-agnostic hook sites
    — phase tracking, buffer pools — fire rank-scoped faults without
    knowing their rank.
    """

    __slots__ = ("_plan", "_rank")

    def __init__(self, plan: "FaultPlan", rank: int) -> None:
        self._plan = plan
        self._rank = rank

    def on_phase(self, name: str) -> None:
        self._plan.on_site(self._rank, "phase", name)

    def on_region(self, name: str) -> None:
        self._plan.on_site(self._rank, "region", name)

    def on_buffer(self, label: str) -> None:
        self._plan.on_site(self._rank, "buffer", label)


class FaultPlan:
    """A deterministic, seeded set of fault triggers (see module doc).

    Thread safe: per-``(spec, rank)`` match counters and fired counts
    are updated under one lock — the lock is only ever taken when a plan
    is threaded in, so fault-off runs pay nothing.
    """

    def __init__(self, specs: List[FaultSpec], seed: Optional[int] = None) -> None:
        self.specs = list(specs)
        self.seed = seed
        self._lock = threading.Lock()
        self._matches: Dict[Tuple[int, int], int] = {}
        self._fired: Dict[int, int] = {}
        #: chronological log of fired faults: (rank, action, detail)
        self.fired_log: List[Tuple[int, str, str]] = []

    # -- construction helpers ------------------------------------------

    @classmethod
    def drop_message(cls, tag=None, rank=None, index=0, times=1) -> "FaultPlan":
        """Drop the ``index``-th matching send (receiver never sees it)."""
        return cls([FaultSpec("drop", rank=rank, tag=tag, index=index, times=times)])

    @classmethod
    def delay_message(
        cls, delay_s: float, tag=None, rank=None, index=0, times=1
    ) -> "FaultPlan":
        """Sleep ``delay_s`` before delivering a matching send."""
        return cls(
            [
                FaultSpec(
                    "delay", rank=rank, tag=tag, index=index, times=times,
                    delay_s=delay_s,
                )
            ]
        )

    @classmethod
    def duplicate_message(cls, tag=None, rank=None, index=0, times=1) -> "FaultPlan":
        """Deliver a matching send twice (duplicated wire message)."""
        return cls([FaultSpec("dup", rank=rank, tag=tag, index=index, times=times)])

    @classmethod
    def crash_at(cls, site=None, rank=None, index=0, times=1) -> "FaultPlan":
        """Raise :class:`InjectedCrash` entering a named phase/region."""
        return cls([FaultSpec("crash", rank=rank, site=site, index=index, times=times)])

    @classmethod
    def straggler(
        cls, delay_s: float, site=None, rank=None, index=0, times=1
    ) -> "FaultPlan":
        """Sleep ``delay_s`` entering a named phase/region (stalled peer)."""
        return cls(
            [
                FaultSpec(
                    "straggler", rank=rank, site=site, index=index, times=times,
                    delay_s=delay_s,
                )
            ]
        )

    @classmethod
    def exhaust_buffers(cls, label=None, rank=None, index=0, times=1) -> "FaultPlan":
        """Fail a matching :class:`BufferPool` acquisition."""
        return cls(
            [FaultSpec("exhaust", rank=rank, site=label, index=index, times=times)]
        )

    #: fault classes the CI chaos matrix sweeps (dup is covered by the
    #: transport-level unit tests; it corrupts FIFO channels by design)
    CHAOS_ACTIONS = ("crash", "drop", "straggler")

    @classmethod
    def chaos(
        cls,
        seed: int,
        nranks: int,
        actions: Tuple[str, ...] = CHAOS_ACTIONS,
        index_range: int = 3,
    ) -> "FaultPlan":
        """One deterministic fault derived from ``seed``.

        Picks an action, a target rank and a small call index with
        ``random.Random(seed)`` — the same seed always produces the same
        fault.  ``crash``/``straggler`` target the computation phase (all
        four algorithm families enter it); ``drop`` matches any tag, so
        it lands on whatever the targeted rank sends next.
        """
        rng = random.Random(seed)
        action = actions[rng.randrange(len(actions))]
        rank = rng.randrange(nranks)
        index = rng.randrange(index_range)
        if action == "drop":
            spec = FaultSpec("drop", rank=rank, index=index)
        elif action == "crash":
            spec = FaultSpec("crash", rank=rank, site="computation", index=index)
        elif action == "straggler":
            spec = FaultSpec(
                "straggler", rank=rank, site="computation", index=index,
                delay_s=0.05,
            )
        else:
            spec = FaultSpec(action, rank=rank, index=index)
        return cls([spec], seed=seed)

    def extended(self, other: "FaultPlan") -> "FaultPlan":
        """A new plan firing both plans' specs (counters start fresh)."""
        return FaultPlan(self.specs + other.specs, seed=self.seed)

    # -- rank binding --------------------------------------------------

    def rank_view(self, rank: int) -> RankFaults:
        return RankFaults(self, rank)

    # -- trigger machinery ---------------------------------------------

    def _arm(self, spec_id: int, spec: FaultSpec, rank: int) -> bool:
        """Count one matching event; True when the fault fires for it."""
        key = (spec_id, rank)
        with self._lock:
            seen = self._matches.get(key, 0)
            self._matches[key] = seen + 1
            if seen < spec.index:
                return False
            if spec.times is not None and self._fired.get(spec_id, 0) >= spec.times:
                return False
            self._fired[spec_id] = self._fired.get(spec_id, 0) + 1
            return True

    def _log(self, rank: int, action: str, detail: str) -> None:
        with self._lock:
            self.fired_log.append((rank, action, detail))

    def on_send(self, rank: int, tag: int) -> Optional[FaultSpec]:
        """Message-plane hook: the armed spec for this send, if any.

        The caller (``Communicator.send``) applies the action; returning
        the spec keeps the transport free of per-action branching here.
        """
        for i, spec in enumerate(self.specs):
            if spec.matches_message(rank, tag) and self._arm(i, spec, rank):
                self._log(rank, spec.action, f"tag={tag}")
                return spec
        return None

    def on_site(self, rank: int, kind: str, name: str) -> None:
        """Site-plane hook: crash/straggle/exhaust at a named site."""
        for i, spec in enumerate(self.specs):
            if spec.matches_site(rank, kind, name) and self._arm(i, spec, rank):
                self._log(rank, spec.action, f"{kind}={name}")
                if spec.action == "crash":
                    raise InjectedCrash(
                        f"injected crash on rank {rank} at {kind} {name!r}"
                    )
                if spec.action == "exhaust":
                    raise InjectedExhaustion(
                        f"injected buffer-pool exhaustion on rank {rank} "
                        f"acquiring {name!r}"
                    )
                time.sleep(spec.delay_s)  # straggler

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"{s.action}(rank={s.rank}, tag={s.tag}, site={s.site}, "
            f"index={s.index}, times={s.times})"
            for s in self.specs
        )
        return f"FaultPlan([{parts}], seed={self.seed})"

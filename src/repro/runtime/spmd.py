"""SPMD launcher: run a per-rank function on ``p`` virtual ranks.

This plays the role of ``mpiexec -n p``: it creates a
:class:`~repro.runtime.backend.World`, gives every rank its own
:class:`~repro.runtime.comm.Communicator` and
:class:`~repro.runtime.profile.RankProfile`, and runs the rank bodies on
threads (NumPy releases the GIL inside kernels, so local computation runs
genuinely in parallel, mirroring the paper's hybrid MPI+OpenMP model).

If any rank raises, the world is aborted so sibling ranks blocked on
receives unwind promptly, and the first error is re-raised in the caller.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SpmdAbort
from repro.runtime.backend import World
from repro.runtime.comm import Communicator
from repro.runtime.profile import RankProfile, RunReport

RankFn = Callable[[Communicator], Any]


def run_spmd(
    nranks: int,
    rank_fn: RankFn,
    profiles: Optional[List[RankProfile]] = None,
    label: str = "",
) -> Tuple[List[Any], RunReport]:
    """Execute ``rank_fn(comm)`` on ``nranks`` ranks and collect results.

    Parameters
    ----------
    nranks:
        Number of virtual ranks (the paper's ``p``).
    rank_fn:
        The SPMD body.  It receives a communicator whose ``rank`` and
        ``size`` identify the calling rank; per-rank input data is usually
        captured in a closure and indexed by ``comm.rank``.
    profiles:
        Optional pre-existing per-rank profiles, so several SPMD launches
        (e.g. the paper's "5 FusedMM calls") accumulate into one report.

    Returns
    -------
    (results, report):
        ``results[r]`` is rank ``r``'s return value; ``report`` aggregates
        the per-rank cost profiles.
    """
    if profiles is None:
        profiles = [RankProfile() for _ in range(nranks)]
    if len(profiles) != nranks:
        raise ValueError("profiles must have one entry per rank")

    world = World(nranks)
    results: List[Any] = [None] * nranks

    if nranks == 1:
        comm = Communicator.world_comm(world, 0, profiles[0])
        results[0] = rank_fn(comm)
        return results, RunReport(per_rank=profiles, label=label)

    errors: List[Tuple[int, BaseException]] = []
    errors_lock = threading.Lock()

    def runner(r: int) -> None:
        comm = Communicator.world_comm(world, r, profiles[r])
        try:
            results[r] = rank_fn(comm)
        except SpmdAbort:
            pass  # a sibling failed first; its error is reported instead
        except BaseException as exc:  # noqa: BLE001 - must not hang siblings
            with errors_lock:
                errors.append((r, exc))
            world.abort()

    threads = [
        threading.Thread(target=runner, args=(r,), name=f"spmd-rank-{r}", daemon=True)
        for r in range(nranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if errors:
        rank, exc = min(errors, key=lambda e: e[0])
        raise RuntimeError(f"SPMD rank {rank} failed: {exc!r}") from exc
    return results, RunReport(per_rank=profiles, label=label)

"""SPMD launchers: the thread worker pool and the backend-generic factory.

This layer plays the role of ``mpiexec -n p`` for the default
``backend="threads"``: :class:`WorkerPool` creates a
:class:`~repro.runtime.backend.World`, gives every rank its own
:class:`~repro.runtime.comm.Communicator` and
:class:`~repro.runtime.profile.RankProfile`, and runs the rank bodies on
threads (NumPy releases the GIL inside kernels, so local computation runs
genuinely in parallel, mirroring the paper's hybrid MPI+OpenMP model).
Under ``backend="mpi"`` the launcher role is played by ``mpirun`` itself
and the pool becomes the rank-resident
:class:`~repro.runtime.backend_mpi.MpiWorkerPool`; the
:func:`make_worker_pool` factory is the seam sessions construct through,
and the :attr:`WorkerPool.spans_processes` flag is how callers learn
whether rank-local mutations need cross-process synchronization.

Launch shapes on the thread backend:

* :class:`WorkerPool` — one resident :class:`World` plus ``p`` long-lived
  rank threads blocked on per-rank dispatch queues.  Repeated
  :meth:`WorkerPool.run` calls reuse the warm threads, the persistent
  per-rank communicators and (through them) any subcommunicators /
  contexts a previous item built — the paper's iterative workloads (ALS
  sweeps, GAT epochs) amortize all of that across calls, exactly like the
  persistent sparse-communication setup of SpComm3D.
* :func:`run_spmd` — the historical one-shot launcher, now a thin
  spawn-once wrapper over a throwaway pool (of either backend).

Failure handling on the thread pool: if any rank raises, the world is
aborted so sibling ranks blocked on receives unwind promptly
(:class:`SpmdAbort`), the first error is re-raised in the caller, and the
world is reset afterwards so the resident ranks stay usable for the next
work item.  The MPI pool has no cross-process recovery — see
:mod:`repro.runtime.backend_mpi` for its (stricter) semantics.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

from repro.errors import ReproError, SpmdAbort, SpmdTimeout
from repro.runtime.backend import World, validate_backend_name
from repro.runtime.comm import Communicator
from repro.runtime.profile import RankProfile, RunReport

RankFn = Callable[[Communicator], Any]


def _chained(error: BaseException, cause: BaseException) -> BaseException:
    """Attach ``cause`` as the explicit chain of ``error``.

    Driver-side wrappers (head failures *and* poisoned pipeline futures)
    all chain the originating rank exception, so the root-cause traceback
    — including the failing rank's own frames — survives into the caller
    instead of being flattened into a ``repr`` string.
    """
    error.__cause__ = cause
    return error


def _format_dump(dump) -> str:
    """Render a blocked-state dump as indented report lines (or '')."""
    if not dump:
        return ""
    lines = ["", "blocked ranks at expiry:"]
    for entry in dump:
        span = entry.get("last_span")
        lines.append(
            f"  rank {entry['rank']}: waiting {entry['waited_s']:.3f}s for "
            f"comm rank {entry['waiting_for_comm_rank']} "
            f"(tag {entry['tag']}, comm {entry['comm_id']}), "
            f"phase={entry['phase']}"
            + (f", last span={span!r}" if span else "")
        )
    return "\n".join(lines)


class _Latch:
    """Count-down latch: the driver waits until all ranks finished an item."""

    def __init__(self, n: int) -> None:
        self._n = n
        self._cond = threading.Condition()

    def count_down(self) -> None:
        with self._cond:
            self._n -= 1
            if self._n <= 0:
                self._cond.notify_all()

    def wait(self) -> None:
        with self._cond:
            while self._n > 0:
                self._cond.wait()


class _WorkItem:
    """One dispatched SPMD body plus its completion/error state."""

    __slots__ = (
        "fn",
        "profiles",
        "results",
        "errors",
        "errors_lock",
        "latch",
        "label",
        "post_ts",
    )

    def __init__(
        self, fn: RankFn, profiles: List[RankProfile], nranks: int, label: str = ""
    ) -> None:
        self.fn = fn
        self.profiles = profiles
        self.results: List[Any] = [None] * nranks
        self.errors: List[Tuple[int, BaseException]] = []
        self.errors_lock = threading.Lock()
        self.latch = _Latch(nranks)
        self.label = label
        self.post_ts = time.perf_counter()


class PoolFuture:
    """Handle for a work item dispatched with :meth:`WorkerPool.run_async`.

    :meth:`wait` blocks until the item (and, for correct failure recovery,
    every item dispatched before it) has finished, then returns
    ``(results, report)`` or raises.  If an *earlier* pipelined item
    failed, the pool recovers once and every later in-flight future —
    whose ranks unwound through the aborted world — raises a poisoned
    error naming the original failure; results of aborted items are never
    returned.  Waiting is idempotent: repeated calls return the cached
    outcome (or re-raise the cached error).
    """

    __slots__ = ("_pool", "_item", "_label", "_done", "_error", "_results", "_report")

    def __init__(self, pool: "WorkerPool", item: _WorkItem, label: str) -> None:
        self._pool = pool
        self._item = item
        self._label = label
        self._done = False
        self._error: Optional[BaseException] = None
        self._results: Optional[List[Any]] = None
        self._report: Optional[RunReport] = None

    @property
    def done(self) -> bool:
        """True once the outcome (success or failure) is settled."""
        return self._done

    def wait(self) -> Tuple[List[Any], RunReport]:
        if not self._done:
            self._pool._finish(self)
        if self._error is not None:
            raise self._error
        assert self._results is not None and self._report is not None
        return self._results, self._report

    def _settle_ok(self) -> None:
        # outcome fields are published BEFORE the done flag: wait() reads
        # _done without the pool lock, so a concurrent waiter that sees it
        # set must already see the settled results/error.  The work item
        # (and with it the rank_fn closure) is dropped on settlement —
        # the same GC discipline as the worker loop's `del item` — so a
        # caller retaining consumed futures pins no per-call closures.
        self._results = self._item.results
        self._report = RunReport(per_rank=self._item.profiles, label=self._label)
        self._item = None
        self._done = True

    def _settle_error(self, error: BaseException) -> None:
        self._error = error
        self._item = None
        self._done = True


class WorkerPool:
    """Persistent SPMD worker pool: one world, ``p`` resident rank threads.

    Construction spawns the threads (blocked on their dispatch queues) and
    one :class:`Communicator` per rank that persists across work items —
    so communicator splits, grid contexts and buffer pools built by one
    item remain valid for the next.  ``nranks == 1`` runs items inline on
    the driver thread (no thread is spawned), matching the historical
    single-rank fast path.

    Discipline: one driver thread dispatches items sequentially
    (:meth:`run` serializes itself); rank bodies follow normal SPMD
    discipline on the persistent communicators (every rank performs the
    same collective/split sequence).

    Failure semantics match :func:`run_spmd`: the first raising rank
    aborts the world, siblings unwind via :class:`SpmdAbort`, and the
    driver re-raises ``RuntimeError``.  Afterwards the pool *recovers* —
    the abort flag is cleared, undelivered messages are dropped and the
    per-rank split counters are realigned — so the pool stays usable.
    """

    #: all ranks live in this process — rank-local mutations are globally
    #: visible, so sessions skip the cross-process locals sync
    spans_processes = False

    def __init__(
        self,
        nranks: int,
        name: str = "spmd-pool",
        faults=None,
        deadline_ms: Optional[float] = None,
    ) -> None:
        if nranks < 1:
            raise ValueError(f"worker pool needs at least one rank, got {nranks}")
        self.nranks = nranks
        self.name = name
        #: default per-item deadline (:meth:`run`/:meth:`run_async` may
        #: override per call); ``None`` disables the watchdog
        self.deadline_ms = deadline_ms
        self.world = World(nranks, faults=faults)
        # one rank-bound fault view per rank, attached to each item's
        # profile at dispatch so rank-agnostic sites (phase tracking,
        # buffer pools) can fire rank-scoped faults
        self._rank_faults = (
            [faults.rank_view(r) for r in range(nranks)]
            if faults is not None
            else None
        )
        self._comms = [
            Communicator.world_comm(self.world, r) for r in range(nranks)
        ]
        self._queues: List[queue.SimpleQueue] = [
            queue.SimpleQueue() for _ in range(nranks)
        ]
        self._run_lock = threading.Lock()
        self._pending: Deque[PoolFuture] = deque()  # dispatched, not yet settled
        self._closed = False
        self._threads: List[threading.Thread] = []
        if nranks > 1:
            self._threads = [
                threading.Thread(
                    target=self._worker,
                    args=(r,),
                    name=f"{name}-rank-{r}",
                    daemon=True,
                )
                for r in range(nranks)
            ]
            for t in self._threads:
                t.start()

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------

    def _worker(self, r: int) -> None:
        comm = self._comms[r]
        while True:
            item = self._queues[r].get()
            if item is None:  # shutdown sentinel
                return
            profile = item.profiles[r]
            if self._rank_faults is not None:
                profile.faults = self._rank_faults[r]
            comm.profile = profile
            self.world.active_profiles[r] = profile
            tracer = profile.tracer
            if tracer is not None:
                run_start = time.perf_counter()
                tracer.span(
                    f"queue-wait {item.label}".rstrip(), "pool", item.post_ts, run_start
                )
            try:
                item.results[r] = item.fn(comm)
            except SpmdAbort:
                pass  # a sibling failed first; its error is reported instead
            except BaseException as exc:  # noqa: BLE001 - must not hang siblings
                with item.errors_lock:
                    item.errors.append((r, exc))
                self.world.abort()
            finally:
                if tracer is not None:
                    tracer.span(
                        f"run {item.label}".rstrip(), "pool", run_start,
                        time.perf_counter(),
                    )
                # Drop the item reference *before* blocking on the next
                # get(): the worker's frame is a GC root, and the item's
                # rank_fn closure typically references the owning session
                # — holding it would keep an abandoned session (and this
                # pool's threads) alive forever, defeating __del__.
                latch = item.latch
                del item, profile, tracer
                latch.count_down()
                del latch

    # ------------------------------------------------------------------
    # driver side
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def comm(self, rank: int) -> Communicator:
        """The persistent communicator of ``rank`` (for introspection)."""
        return self._comms[rank]

    #: in-flight pipeline depth: one running item plus one queued behind it
    #: (the session's cross-call double buffer — the dense scatter of call
    #: k+1 is staged while call k runs; deeper queues would only add
    #: poisoning surface without more driver-side overlap to win)
    MAX_INFLIGHT = 2

    def run(
        self,
        rank_fn: RankFn,
        profiles: Optional[List[RankProfile]] = None,
        label: str = "",
        deadline_ms: Optional[float] = None,
    ) -> Tuple[List[Any], RunReport]:
        """Dispatch ``rank_fn(comm)`` to every resident rank and wait.

        Same contract as :func:`run_spmd`: returns ``(results, report)``,
        re-raises the lowest-rank error as ``RuntimeError`` after all
        ranks finished unwinding — except deadline expiries, which
        re-raise as :class:`~repro.errors.SpmdTimeout` carrying the
        per-rank blocked-state dump.  ``deadline_ms`` overrides the
        pool's default watchdog horizon for this item.
        """
        return self.run_async(
            rank_fn, profiles=profiles, label=label, deadline_ms=deadline_ms
        ).wait()

    def run_async(
        self,
        rank_fn: RankFn,
        profiles: Optional[List[RankProfile]] = None,
        label: str = "",
        deadline_ms: Optional[float] = None,
    ) -> PoolFuture:
        """Dispatch ``rank_fn(comm)`` without waiting: the second slot.

        The per-rank FIFO queues pipeline the item behind whatever is
        currently running, so the driver is free to overlap its own work
        (staging the next call's dense scatter, collecting the previous
        output) with the in-flight SPMD run.  At most :data:`MAX_INFLIGHT`
        items may be unsettled at once; dispatching beyond that first
        waits out the oldest.  On a single-rank pool the item runs inline
        immediately (no threads exist) and errors propagate raw, matching
        the historical fast path.
        """
        if self._closed:
            raise ReproError("worker pool is closed; dispatch is not possible")
        if profiles is None:
            profiles = [RankProfile() for _ in range(self.nranks)]
        if len(profiles) != self.nranks:
            raise ValueError("profiles must have one entry per rank")
        if deadline_ms is None:
            deadline_ms = self.deadline_ms

        if self.nranks == 1:
            with self._run_lock:
                comm = self._comms[0]
                comm.profile = profiles[0]
                if self._rank_faults is not None:
                    profiles[0].faults = self._rank_faults[0]
                self.world.active_profiles[0] = profiles[0]
                item = _WorkItem(rank_fn, profiles, 1, label)
                future = PoolFuture(self, item, label)
                tracer = profiles[0].tracer
                if tracer is not None:
                    with tracer.region(f"run {label}".rstrip(), "pool"):
                        item.results[0] = rank_fn(comm)  # errors propagate raw
                else:
                    item.results[0] = rank_fn(comm)  # errors propagate raw
                future._settle_ok()
                return future

        while True:
            with self._run_lock:
                if len(self._pending) < self.MAX_INFLIGHT:
                    item = _WorkItem(rank_fn, profiles, self.nranks, label)
                    future = PoolFuture(self, item, label)
                    if deadline_ms is not None:
                        # one horizon for everything in flight: a later
                        # pipelined item can only extend it (ranks check
                        # the world's single deadline inside blocked
                        # receives); it is cleared when the pipe drains
                        horizon = time.perf_counter() + deadline_ms / 1e3
                        cur = self.world.deadline
                        self.world.deadline = (
                            horizon if cur is None else max(cur, horizon)
                        )
                    self._pending.append(future)
                    for q in self._queues:
                        q.put(item)
                    return future
                oldest = self._pending[0]
            # settle the oldest outside the dispatch lock, then retry;
            # its error (if any) surfaces at *its* wait(), not here
            try:
                oldest.wait()
            except Exception:
                pass

    def _finish(self, future: PoolFuture) -> None:
        """Settle ``future`` (and every item dispatched before it).

        Ranks process their queues in FIFO order, so when ``future``'s
        latch has counted down, every earlier item's latch has too —
        settlement simply walks the pending deque in dispatch order.  On
        the first failed item, every *later* in-flight item is drained and
        poisoned as well (its ranks ran against the aborted world, so its
        results are not trustworthy), and the world is recovered exactly
        once, after every dispatched rank body has finished unwinding.
        """
        item = future._item
        if item is not None:  # None: settled concurrently (under the lock)
            item.latch.wait()
        with self._run_lock:
            if future._done:  # settled by a concurrent waiter
                return
            while self._pending and not future._done:
                head = self._pending[0]
                head._item.latch.wait()  # done already; FIFO guarantees it
                if head._item.errors:
                    # drain everything dispatched behind the failure, then
                    # recover the world exactly once
                    for f in self._pending:
                        f._item.latch.wait()
                    rank, exc = min(head._item.errors, key=lambda e: e[0])
                    if isinstance(exc, SpmdTimeout):
                        # deadline expiries stay typed, carrying the
                        # blocked-state dump taken at the moment the
                        # watchdog fired
                        error = _chained(
                            SpmdTimeout(
                                f"SPMD rank {rank} timed out: {exc}"
                                + _format_dump(exc.dump),
                                dump=exc.dump,
                            ),
                            exc,
                        )
                    else:
                        error = _chained(
                            RuntimeError(f"SPMD rank {rank} failed: {exc!r}"), exc
                        )
                    head._settle_error(error)
                    for f in list(self._pending)[1:]:
                        poisoned = _chained(
                            RuntimeError(
                                f"SPMD item {f._label or 'unnamed'!r} aborted: "
                                f"an earlier pipelined item failed "
                                f"(rank {rank}: {exc!r})"
                            ),
                            exc,
                        )
                        f._settle_error(poisoned)
                    self._pending.clear()
                    self._recover()
                else:
                    head._settle_ok()
                    self._pending.popleft()
            if not self._pending:
                self.world.deadline = None  # the pipe drained; disarm

    def _recover(self) -> None:
        """Return the pool to a clean state after a failed item.

        Every rank has already finished the item (the latch was waited
        on), so no thread is blocked in the transport: clear the abort
        flag, drop undelivered messages, and realign the per-rank split
        counters to their maximum so the next collective split sequence
        derives consistent, never-before-used communicator ids even when
        ranks failed at different depths of a split sequence.
        """
        self.world.reset()
        top = max(c._split_counter for c in self._comms)
        for c in self._comms:
            c._split_counter = top

    def close(self, timeout: float = 30.0) -> None:
        """Drain the queues, join every rank thread, and seal the pool.

        Idempotent.  ``timeout`` bounds the per-thread join.  Raises
        :class:`ReproError` if a thread fails to join (e.g. a rank body
        deadlocked in a mismatched collective); the message names each
        stuck rank together with the receive it is blocked on, its open
        phase, and its last completed trace span, and the pool is *not*
        marked closed, so a retry attempts the join again instead of
        silently leaking the threads.
        """
        if self._closed:
            return
        for q in self._queues:
            q.put(None)
        for t in self._threads:
            t.join(timeout=timeout)
        alive = [t for t in self._threads if t.is_alive()]
        if alive:
            raise ReproError(
                f"worker threads failed to join after {timeout:g}s: "
                + "; ".join(self._describe_stuck(t) for t in alive)
            )
        self._threads = []
        self._closed = True

    def _describe_stuck(self, thread: threading.Thread) -> str:
        """One-line diagnosis of a rank thread that refused to join."""
        try:
            rank = int(thread.name.rsplit("-", 1)[1])
        except (IndexError, ValueError):  # pragma: no cover - name is ours
            return thread.name
        desc = f"rank {rank}"
        blocked = self.world.blocked.get(rank)
        if blocked is not None:
            (comm_id, src, tag), since = blocked
            desc += (
                f" blocked {time.perf_counter() - since:.3f}s on a receive "
                f"from comm rank {src} (tag {tag}, comm {comm_id})"
            )
        else:
            desc += " not blocked in the transport (busy or wedged in a kernel)"
        profile = self.world.active_profiles.get(rank)
        if profile is not None:
            desc += f", phase={profile.phase.value}"
            tracer = profile.tracer
            if tracer is not None:
                span = tracer.latest()
                if span:
                    desc += f", last span={span!r}"
        return desc

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return f"WorkerPool(nranks={self.nranks}, {state})"


def make_worker_pool(
    backend: str,
    nranks: int,
    name: str = "spmd-pool",
    faults=None,
    deadline_ms: Optional[float] = None,
):
    """Construct the worker pool for a (validated or raw) backend name.

    This is the factory sessions build through: ``"threads"`` returns a
    :class:`WorkerPool`, ``"mpi"`` lazily imports
    :mod:`repro.runtime.backend_mpi` and returns an
    :class:`~repro.runtime.backend_mpi.MpiWorkerPool` (raising the typed
    :class:`~repro.errors.BackendUnavailableError` when mpi4py is
    missing).  Unknown names raise
    :class:`~repro.errors.UnknownBackendError`.
    """
    backend = validate_backend_name(backend)
    if backend == "mpi":
        from repro.runtime.backend_mpi import MpiWorkerPool

        return MpiWorkerPool(
            nranks, name=name, faults=faults, deadline_ms=deadline_ms
        )
    return WorkerPool(nranks, name=name, faults=faults, deadline_ms=deadline_ms)


def run_spmd(
    nranks: int,
    rank_fn: RankFn,
    profiles: Optional[List[RankProfile]] = None,
    label: str = "",
    deadline_ms: Optional[float] = None,
    faults=None,
    backend: str = "threads",
) -> Tuple[List[Any], RunReport]:
    """Execute ``rank_fn(comm)`` on ``nranks`` fresh ranks and collect results.

    This is the one-shot launcher: a throwaway :class:`WorkerPool` is
    spawned, the single item runs, and the pool is joined before
    returning.  Iterative callers should hold a :class:`WorkerPool` (the
    session API does) so the spawn cost is paid once, not per call.

    Parameters
    ----------
    nranks:
        Number of virtual ranks (the paper's ``p``).
    rank_fn:
        The SPMD body.  It receives a communicator whose ``rank`` and
        ``size`` identify the calling rank; per-rank input data is usually
        captured in a closure and indexed by ``comm.rank``.
    profiles:
        Optional pre-existing per-rank profiles, so several SPMD launches
        (e.g. the paper's "5 FusedMM calls") accumulate into one report.
    deadline_ms:
        Optional watchdog horizon for the launch; expiry raises
        :class:`~repro.errors.SpmdTimeout` with a blocked-state dump.
    faults:
        Optional :class:`~repro.runtime.faults.FaultPlan` armed on the
        throwaway world (thread backend only).
    backend:
        Execution backend (``"threads"``, the default, or ``"mpi"``).
        Under ``"mpi"`` the body runs for the calling process's resident
        rank and results are allgathered, so every replicated driver
        returns the full results list — see
        :mod:`repro.runtime.backend_mpi`.

    Returns
    -------
    (results, report):
        ``results[r]`` is rank ``r``'s return value; ``report`` aggregates
        the per-rank cost profiles.
    """
    if profiles is not None and len(profiles) != nranks:
        raise ValueError("profiles must have one entry per rank")
    pool = make_worker_pool(
        backend, nranks, name="spmd", faults=faults, deadline_ms=deadline_ms
    )
    try:
        return pool.run(rank_fn, profiles=profiles, label=label)
    finally:
        pool.close()

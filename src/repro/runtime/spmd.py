"""SPMD launchers: spawn-per-call and a persistent worker pool.

This plays the role of ``mpiexec -n p``: it creates a
:class:`~repro.runtime.backend.World`, gives every rank its own
:class:`~repro.runtime.comm.Communicator` and
:class:`~repro.runtime.profile.RankProfile`, and runs the rank bodies on
threads (NumPy releases the GIL inside kernels, so local computation runs
genuinely in parallel, mirroring the paper's hybrid MPI+OpenMP model).

Two launch shapes are offered:

* :class:`WorkerPool` — one resident :class:`World` plus ``p`` long-lived
  rank threads blocked on per-rank dispatch queues.  Repeated
  :meth:`WorkerPool.run` calls reuse the warm threads, the persistent
  per-rank communicators and (through them) any subcommunicators /
  contexts a previous item built — the paper's iterative workloads (ALS
  sweeps, GAT epochs) amortize all of that across calls, exactly like the
  persistent sparse-communication setup of SpComm3D.
* :func:`run_spmd` — the historical one-shot launcher, now a thin
  spawn-once wrapper over a throwaway pool.

Failure handling is shared: if any rank raises, the world is aborted so
sibling ranks blocked on receives unwind promptly (:class:`SpmdAbort`),
the first error is re-raised in the caller, and — for the pool — the
world is reset afterwards so the resident ranks stay usable for the next
work item.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import ReproError, SpmdAbort
from repro.runtime.backend import World
from repro.runtime.comm import Communicator
from repro.runtime.profile import RankProfile, RunReport

RankFn = Callable[[Communicator], Any]


class _Latch:
    """Count-down latch: the driver waits until all ranks finished an item."""

    def __init__(self, n: int) -> None:
        self._n = n
        self._cond = threading.Condition()

    def count_down(self) -> None:
        with self._cond:
            self._n -= 1
            if self._n <= 0:
                self._cond.notify_all()

    def wait(self) -> None:
        with self._cond:
            while self._n > 0:
                self._cond.wait()


class _WorkItem:
    """One dispatched SPMD body plus its completion/error state."""

    __slots__ = ("fn", "profiles", "results", "errors", "errors_lock", "latch")

    def __init__(self, fn: RankFn, profiles: List[RankProfile], nranks: int) -> None:
        self.fn = fn
        self.profiles = profiles
        self.results: List[Any] = [None] * nranks
        self.errors: List[Tuple[int, BaseException]] = []
        self.errors_lock = threading.Lock()
        self.latch = _Latch(nranks)


class WorkerPool:
    """Persistent SPMD worker pool: one world, ``p`` resident rank threads.

    Construction spawns the threads (blocked on their dispatch queues) and
    one :class:`Communicator` per rank that persists across work items —
    so communicator splits, grid contexts and buffer pools built by one
    item remain valid for the next.  ``nranks == 1`` runs items inline on
    the driver thread (no thread is spawned), matching the historical
    single-rank fast path.

    Discipline: one driver thread dispatches items sequentially
    (:meth:`run` serializes itself); rank bodies follow normal SPMD
    discipline on the persistent communicators (every rank performs the
    same collective/split sequence).

    Failure semantics match :func:`run_spmd`: the first raising rank
    aborts the world, siblings unwind via :class:`SpmdAbort`, and the
    driver re-raises ``RuntimeError``.  Afterwards the pool *recovers* —
    the abort flag is cleared, undelivered messages are dropped and the
    per-rank split counters are realigned — so the pool stays usable.
    """

    def __init__(self, nranks: int, name: str = "spmd-pool") -> None:
        if nranks < 1:
            raise ValueError(f"worker pool needs at least one rank, got {nranks}")
        self.nranks = nranks
        self.name = name
        self.world = World(nranks)
        self._comms = [
            Communicator.world_comm(self.world, r) for r in range(nranks)
        ]
        self._queues: List[queue.SimpleQueue] = [
            queue.SimpleQueue() for _ in range(nranks)
        ]
        self._run_lock = threading.Lock()
        self._closed = False
        self._threads: List[threading.Thread] = []
        if nranks > 1:
            self._threads = [
                threading.Thread(
                    target=self._worker,
                    args=(r,),
                    name=f"{name}-rank-{r}",
                    daemon=True,
                )
                for r in range(nranks)
            ]
            for t in self._threads:
                t.start()

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------

    def _worker(self, r: int) -> None:
        comm = self._comms[r]
        while True:
            item = self._queues[r].get()
            if item is None:  # shutdown sentinel
                return
            comm.profile = item.profiles[r]
            try:
                item.results[r] = item.fn(comm)
            except SpmdAbort:
                pass  # a sibling failed first; its error is reported instead
            except BaseException as exc:  # noqa: BLE001 - must not hang siblings
                with item.errors_lock:
                    item.errors.append((r, exc))
                self.world.abort()
            finally:
                # Drop the item reference *before* blocking on the next
                # get(): the worker's frame is a GC root, and the item's
                # rank_fn closure typically references the owning session
                # — holding it would keep an abandoned session (and this
                # pool's threads) alive forever, defeating __del__.
                latch = item.latch
                del item
                latch.count_down()
                del latch

    # ------------------------------------------------------------------
    # driver side
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def comm(self, rank: int) -> Communicator:
        """The persistent communicator of ``rank`` (for introspection)."""
        return self._comms[rank]

    def run(
        self,
        rank_fn: RankFn,
        profiles: Optional[List[RankProfile]] = None,
        label: str = "",
    ) -> Tuple[List[Any], RunReport]:
        """Dispatch ``rank_fn(comm)`` to every resident rank and wait.

        Same contract as :func:`run_spmd`: returns ``(results, report)``,
        re-raises the lowest-rank error as ``RuntimeError`` after all
        ranks finished unwinding.
        """
        if self._closed:
            raise ReproError("worker pool is closed; dispatch is not possible")
        if profiles is None:
            profiles = [RankProfile() for _ in range(self.nranks)]
        if len(profiles) != self.nranks:
            raise ValueError("profiles must have one entry per rank")

        with self._run_lock:
            if self.nranks == 1:
                comm = self._comms[0]
                comm.profile = profiles[0]
                result = rank_fn(comm)  # errors propagate raw, as before
                return [result], RunReport(per_rank=profiles, label=label)

            item = _WorkItem(rank_fn, profiles, self.nranks)
            for q in self._queues:
                q.put(item)
            item.latch.wait()
            if item.errors:
                self._recover()
                rank, exc = min(item.errors, key=lambda e: e[0])
                raise RuntimeError(f"SPMD rank {rank} failed: {exc!r}") from exc
            return item.results, RunReport(per_rank=profiles, label=label)

    def _recover(self) -> None:
        """Return the pool to a clean state after a failed item.

        Every rank has already finished the item (the latch was waited
        on), so no thread is blocked in the transport: clear the abort
        flag, drop undelivered messages, and realign the per-rank split
        counters to their maximum so the next collective split sequence
        derives consistent, never-before-used communicator ids even when
        ranks failed at different depths of a split sequence.
        """
        self.world.reset()
        top = max(c._split_counter for c in self._comms)
        for c in self._comms:
            c._split_counter = top

    def close(self) -> None:
        """Drain the queues, join every rank thread, and seal the pool.

        Idempotent.  Raises :class:`ReproError` if a thread fails to
        join (e.g. a rank body deadlocked in a mismatched collective), in
        which case the pool is *not* marked closed, so a retry attempts
        the join again instead of silently leaking the threads.
        """
        if self._closed:
            return
        for q in self._queues:
            q.put(None)
        for t in self._threads:
            t.join(timeout=30.0)
        alive = [t.name for t in self._threads if t.is_alive()]
        if alive:
            raise ReproError(f"worker threads failed to join: {alive}")
        self._threads = []
        self._closed = True

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return f"WorkerPool(nranks={self.nranks}, {state})"


def run_spmd(
    nranks: int,
    rank_fn: RankFn,
    profiles: Optional[List[RankProfile]] = None,
    label: str = "",
) -> Tuple[List[Any], RunReport]:
    """Execute ``rank_fn(comm)`` on ``nranks`` fresh ranks and collect results.

    This is the one-shot launcher: a throwaway :class:`WorkerPool` is
    spawned, the single item runs, and the pool is joined before
    returning.  Iterative callers should hold a :class:`WorkerPool` (the
    session API does) so the spawn cost is paid once, not per call.

    Parameters
    ----------
    nranks:
        Number of virtual ranks (the paper's ``p``).
    rank_fn:
        The SPMD body.  It receives a communicator whose ``rank`` and
        ``size`` identify the calling rank; per-rank input data is usually
        captured in a closure and indexed by ``comm.rank``.
    profiles:
        Optional pre-existing per-rank profiles, so several SPMD launches
        (e.g. the paper's "5 FusedMM calls") accumulate into one report.

    Returns
    -------
    (results, report):
        ``results[r]`` is rank ``r``'s return value; ``report`` aggregates
        the per-rank cost profiles.
    """
    if profiles is not None and len(profiles) != nranks:
        raise ValueError("profiles must have one entry per rank")
    pool = WorkerPool(nranks, name="spmd")
    try:
        return pool.run(rank_fn, profiles=profiles, label=label)
    finally:
        pool.close()

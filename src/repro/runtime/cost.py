"""Machine parameters for the alpha-beta-gamma cost model.

The paper analyzes every algorithm in the alpha-beta-gamma model: ``alpha``
is per-message latency, ``beta`` is inverse bandwidth (seconds per 8-byte
word) and ``gamma`` is seconds per FLOP of local computation.  Runs on the
thread-backed runtime measure *exact* message and word counts; combining
them with a :class:`MachineParams` yields the modeled time on a target
machine, which is how this reproduction extrapolates to the paper's 256-node
scale.

Presets
-------

``CORI_KNL``
    Cori's Aries interconnect with Dragonfly topology: ~1-2 us MPI latency
    and ~8 GB/s effective per-node injection bandwidth; KNL sparse-kernel
    throughput is memory-bandwidth bound (the paper's kernels run from
    MCDRAM), modeled at 20 GFLOP/s effective.

``GENERIC_CLUSTER``
    A contemporary commodity cluster (EDR InfiniBand-like).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineParams:
    """alpha-beta-gamma parameters of a target machine.

    Attributes
    ----------
    alpha:
        Per-message latency in seconds.
    beta:
        Inverse bandwidth in seconds per 8-byte word.
    gamma:
        Seconds per floating-point operation for the local kernels
        (an *effective* rate for bandwidth-bound sparse kernels, not peak).
    name:
        Human-readable identifier used in reports.
    """

    alpha: float
    beta: float
    gamma: float
    name: str = "custom"

    def words_per_second(self) -> float:
        return 1.0 / self.beta

    def flops_per_second(self) -> float:
        return 1.0 / self.gamma

    def time(self, words: float, messages: float, flops: float = 0.0) -> float:
        """alpha-beta(-gamma) time of a (words, messages, flops) budget.

        The single evaluation point of the cost model — measured traffic
        (:class:`~repro.runtime.profile.RunReport`), closed-form rows
        (:mod:`repro.model.costs`) and the sparse-comm predictions all
        reduce to this expression.
        """
        return self.alpha * messages + self.beta * words + self.gamma * flops

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}(alpha={self.alpha:.2e}s, "
            f"beta={self.beta:.2e}s/word, gamma={self.gamma:.2e}s/flop)"
        )


#: Cori Cray XC40 (Xeon Phi KNL, Aries/Dragonfly), the paper's testbed.
CORI_KNL = MachineParams(alpha=2.0e-6, beta=1.0e-9, gamma=5.0e-11, name="cori-knl")

#: A generic commodity cluster.
GENERIC_CLUSTER = MachineParams(
    alpha=1.5e-6, beta=8.0e-10, gamma=2.0e-11, name="generic"
)

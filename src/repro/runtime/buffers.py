"""Per-rank reusable panel buffers with peak-footprint accounting.

The distributed kernels acquire their large transient panels — gathered
dense strips, partial-output accumulators, circulating pieces — from a
:class:`BufferPool` instead of calling ``np.zeros``/``np.empty`` in the
hot path.  Buffers are keyed by a caller-chosen label and reused across
phases and across repeated kernel invocations (the paper's "5 FusedMM
calls"), so steady-state runs perform no panel allocation at all; a
label's slot is reallocated only when the requested shape changes.

The pool doubles as the memory-footprint probe: every acquisition reports
the pool's total resident bytes to the owning rank's
:class:`~repro.runtime.profile.RankProfile`, whose ``peak_buffer_bytes``
high-water mark is what the benchmarks and the packed-buffer regression
tests assert on.  The metric counts the *locally allocated* panels —
gather targets, partial-output accumulators, circulating-piece seeds —
which all flow through the pool on both communication paths, so peaks
are compared like for like: a full-height ``m x sw`` gather panel versus
its ``len(union) x sw`` packed replacement.  Arrays materialized by the
message layer itself (ring-shift receives re-bind the circulating
reference to a fresh recv copy each phase) are transient per-message
storage and are deliberately outside the metric on every mode.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Set, Tuple

import numpy as np

from repro.errors import ReproError
from repro.runtime.profile import RankProfile


class BufferLeaseError(ReproError):
    """A pool buffer was acquired while still leased to an in-flight
    exchange (the double-buffer no-aliasing invariant was violated)."""


class BufferPool:
    """Label-keyed ndarray slots owned by a single rank.

    Not thread safe by design (like :class:`RankProfile`): each SPMD rank
    owns exactly one pool and only that rank's thread touches it.
    Acquired buffers stay valid until the same label is acquired again
    with a different shape, which matches the kernels' usage: one buffer
    per logical role per kernel invocation.
    """

    def __init__(self, profile: Optional[RankProfile] = None) -> None:
        self._slots: Dict[str, np.ndarray] = {}
        self._profile = profile
        self._source = None  # live profile provider (e.g. a Communicator)
        self._in_flight: Set[int] = set()  # ids of guarded (leased) buffers
        self._guard_ts: Dict[int, float] = {}  # guard timestamps (traced runs)

    @property
    def profile(self) -> Optional[RankProfile]:
        """The profile footprints are reported to.

        Either a directly assigned :class:`RankProfile` or, after
        :meth:`follow`, whatever profile the followed communicator
        currently carries — so pools inside resident contexts keep
        reporting into the session's *current* accumulation window even
        after ``reset_profile`` swapped the profile objects.
        """
        if self._source is not None:
            return self._source.profile
        return self._profile

    @profile.setter
    def profile(self, profile: Optional[RankProfile]) -> None:
        self._profile = profile
        self._source = None

    def follow(self, source) -> None:
        """Report footprints to ``source.profile`` (read live per use)."""
        self._source = source

    def _acquire(self, label: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        profile = self.profile
        if profile is not None and profile.faults is not None:
            # fault-injection site: an armed ``exhaust`` trigger fails
            # this acquisition like an allocation failure would
            profile.faults.on_buffer(label)
        buf = self._slots.get(label)
        if buf is not None and id(buf) in self._in_flight:
            raise BufferLeaseError(
                f"buffer slot {label!r} is leased to an in-flight exchange; "
                f"wait the exchange (or lease the sibling slot) before reuse"
            )
        if buf is None or buf.shape != tuple(shape) or buf.dtype != np.dtype(dtype):
            buf = np.empty(shape, dtype=dtype)
            self._slots[label] = buf
        if profile is not None:
            profile.note_buffer_bytes(self.total_bytes)
            if profile.tracer is not None:
                profile.tracer.instant(f"acquire {label}", "buffer")
        return buf

    def empty(self, label: str, shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """An uninitialized buffer — for panels the caller fully overwrites
        (gathers whose need lists provably cover every row)."""
        return self._acquire(label, shape, dtype)

    def zeros(self, label: str, shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """A zeroed buffer — for accumulators.  Reuses the slot's memory,
        paying only the fill (no allocation / page-fault churn)."""
        buf = self._acquire(label, shape, dtype)
        buf.fill(0.0)
        return buf

    def take_like(self, label: str, template: np.ndarray) -> np.ndarray:
        """An uninitialized buffer shaped/typed like ``template``, with the
        template's contents copied in (pooled replacement for ``.copy()``)."""
        buf = self._acquire(label, template.shape, template.dtype)
        np.copyto(buf, template)
        return buf

    # -- double-buffer leases (overlap pipeline) --------------------------

    def lease(
        self, label: str, shape: Tuple[int, ...], dtype=np.float64
    ) -> np.ndarray:
        """Acquire a panel from a *pair* of rotating slots under ``label``.

        The overlap pipeline posts an exchange into one panel while the
        local kernel computes on another; a lease hands back whichever of
        the two sibling slots (``label@0`` / ``label@1``) is not currently
        :meth:`guard`-ed, so the in-flight panel and the compute panel can
        never alias.  When nothing is in flight the first slot is reused
        every time (steady-state footprint identical to a plain
        :meth:`empty` acquisition); leasing while *both* siblings are in
        flight raises :class:`BufferLeaseError`.  The buffer is returned
        uninitialized.
        """
        last_err: Optional[BufferLeaseError] = None
        for k in (0, 1):
            try:
                return self._acquire(f"{label}@{k}", shape, dtype)
            except BufferLeaseError as err:
                last_err = err
        raise BufferLeaseError(
            f"both double-buffer slots of {label!r} are leased to in-flight "
            f"exchanges; wait one before leasing again"
        ) from last_err

    def lease_zeros(
        self, label: str, shape: Tuple[int, ...], dtype=np.float64
    ) -> np.ndarray:
        """:meth:`lease`, zero-filled (accumulator panels)."""
        buf = self.lease(label, shape, dtype)
        buf.fill(0.0)
        return buf

    def guard(self, buf: np.ndarray) -> np.ndarray:
        """Mark ``buf`` as the target of an in-flight exchange.

        Until :meth:`release`, any pool acquisition that would hand the
        same storage back raises :class:`BufferLeaseError`.  Returns the
        buffer for fluent use.
        """
        self._in_flight.add(id(buf))
        profile = self.profile
        if profile is not None and profile.tracer is not None:
            self._guard_ts[id(buf)] = time.perf_counter()
        return buf

    def release(self, buf: np.ndarray) -> None:
        """Clear the in-flight mark set by :meth:`guard` (idempotent)."""
        self._in_flight.discard(id(buf))
        t0 = self._guard_ts.pop(id(buf), None)
        if t0 is not None:
            profile = self.profile
            if profile is not None and profile.tracer is not None:
                profile.tracer.async_span(
                    "panel-lease", "buffer", t0, time.perf_counter()
                )

    def release_all(self) -> None:
        """Drop every in-flight mark.

        Called at work-item boundaries (context build / refresh): no
        exchange ever spans two SPMD dispatches, so any surviving guard
        belongs to an exchange an abort unwound mid-wait — without this,
        one aborted dual-gather would pin its panel slots forever and
        eventually wedge the recovered session in
        :class:`BufferLeaseError`.
        """
        self._in_flight.clear()
        self._guard_ts.clear()

    @property
    def total_bytes(self) -> int:
        """Bytes currently resident across all slots."""
        return sum(b.nbytes for b in self._slots.values())

    def clear(self) -> None:
        self._slots.clear()
        self._in_flight.clear()
        self._guard_ts.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BufferPool(slots={len(self._slots)}, bytes={self.total_bytes})"

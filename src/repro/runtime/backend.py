"""Thread-backed message transport.

A :class:`World` is the shared substrate connecting ``p`` virtual ranks.
Each rank owns a :class:`Mailbox`; a *send* deep-copies the payload into the
destination mailbox (preserving distributed-memory semantics: no rank ever
aliases another rank's buffers), and a *recv* blocks until a matching
message arrives.

Message matching uses ``(communicator id, source rank, tag)`` keys with FIFO
ordering per key, which is exactly MPI's non-overtaking guarantee for
point-to-point messages on a single (comm, src, dst, tag) channel.

Failure handling: if any rank raises, :func:`repro.runtime.spmd.run_spmd`
flips the world's abort flag and wakes all sleepers, so sibling ranks raise
:class:`~repro.errors.SpmdAbort` instead of blocking forever on a receive.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict, deque
from typing import Any, Deque, Dict, Tuple

from repro.errors import SpmdAbort

#: (communicator id tuple, source_rank, tag)
MsgKey = Tuple[Tuple[int, ...], int, int]


class Mailbox:
    """Inbox of a single rank: per-(comm, src, tag) FIFO queues.

    Entries carry their arrival timestamp (``time.perf_counter``), so a
    receiver that deferred its wait behind local computation can tell how
    much of the transfer completed while it was busy — the measured
    *hidden* communication time of the overlap pipeline.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._queues: Dict[MsgKey, Deque[Tuple[Any, float]]] = defaultdict(deque)

    def put(self, key: MsgKey, payload: Any) -> None:
        with self._cond:
            self._queues[key].append((payload, time.perf_counter()))
            self._cond.notify_all()

    def get(
        self, key: MsgKey, abort: threading.Event, timeout: float = 0.05
    ) -> Tuple[Any, float]:
        """Block until a message with ``key`` is available (or abort).

        Returns ``(payload, arrival_timestamp)``.
        """
        with self._cond:
            while True:
                q = self._queues.get(key)
                if q:
                    return q.popleft()
                if abort.is_set():
                    raise SpmdAbort("SPMD world aborted while waiting for a message")
                self._cond.wait(timeout=timeout)

    def wake(self) -> None:
        """Wake all waiters (used when aborting the world)."""
        with self._cond:
            self._cond.notify_all()

    def reset(self) -> None:
        """Drop all undelivered messages (post-abort pool recovery)."""
        with self._cond:
            self._queues.clear()
            self._cond.notify_all()


class World:
    """Shared transport for ``nranks`` virtual ranks.

    Also allocates communicator ids: ``COMM_WORLD`` is id 0; communicator
    splits derive new ids deterministically (every member of the parent
    communicator performs the same sequence of splits, so all members
    compute identical child ids without central coordination).
    """

    def __init__(self, nranks: int) -> None:
        if nranks < 1:
            raise ValueError(f"world needs at least one rank, got {nranks}")
        self.nranks = nranks
        self.mailboxes = [Mailbox() for _ in range(nranks)]
        self.abort_event = threading.Event()

    def deliver(self, dest: int, key: MsgKey, payload: Any) -> None:
        if self.abort_event.is_set():
            raise SpmdAbort("SPMD world aborted while sending a message")
        self.mailboxes[dest].put(key, payload)

    def collect(self, rank: int, key: MsgKey) -> Tuple[Any, float]:
        """Blocking receive; returns ``(payload, arrival_timestamp)``."""
        return self.mailboxes[rank].get(key, self.abort_event)

    def abort(self) -> None:
        self.abort_event.set()
        for mb in self.mailboxes:
            mb.wake()

    def reset(self) -> None:
        """Return an aborted world to a usable state.

        Clears the abort flag and drops every undelivered message, so a
        persistent :class:`~repro.runtime.spmd.WorkerPool` can keep its
        resident ranks after one work item failed.  Only call once every
        rank has finished the failed item (no thread may be blocked inside
        :meth:`collect` when the queues are cleared).
        """
        self.abort_event.clear()
        for mb in self.mailboxes:
            mb.reset()

"""Pluggable message transports: the backend seam plus the thread World.

Everything above this module — :class:`~repro.runtime.comm.Communicator`,
the ring and need-list collectives, the worker pools, sessions — talks to
the network through the :class:`Transport` interface defined here: a
*send* is :meth:`Transport.deliver`, a *recv* is
:meth:`Transport.collect`, and matching uses ``(communicator id, source
rank, tag)`` keys (:data:`MsgKey`) with FIFO ordering per key — exactly
MPI's non-overtaking guarantee for point-to-point messages on a single
(comm, src, dst, tag) channel.  Two implementations exist:

* :class:`World` (``backend="threads"``, the default) — all ranks are
  threads in one process; each rank owns a :class:`Mailbox` and a send
  deep-copies the payload into the destination mailbox, preserving
  distributed-memory semantics (no rank ever aliases another rank's
  buffers).
* :class:`~repro.runtime.backend_mpi.MpiTransport` (``backend="mpi"``) —
  each rank is a real process under ``mpirun``; sends ride
  ``MPI_Isend`` with the match key embedded in the message, receives
  drain and demultiplex into per-key local queues.

The contract both must honor (see ``ARCHITECTURE.md`` for the full
normative text): per-key FIFO delivery, arrival timestamps on every
collected message (feeding the overlap pipeline's hidden-communication
accounting), payload isolation (a delivered object never aliases the
sender's buffers), abort propagation (:class:`~repro.errors.SpmdAbort`
out of blocked calls once :meth:`Transport.abort` ran) and deadline
enforcement (:class:`~repro.errors.SpmdTimeout` carrying a blocked-state
dump when a collect outlives :attr:`Transport.deadline`).

Backend names are resolved here too (:func:`validate_backend_name`,
:func:`ensure_backend_available`, :func:`resolve_backend`) so every entry
point — :func:`repro.plan`, the one-shot wrappers, the CLI, the
benchmarks — fails the same way: a typed
:class:`~repro.errors.UnknownBackendError` for a name outside
:data:`BACKENDS`, a typed :class:`~repro.errors.BackendUnavailableError`
with an install hint when ``mpi4py`` is missing.
"""

from __future__ import annotations

import importlib.util
import threading
import time
from abc import ABC, abstractmethod
from collections import defaultdict, deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.errors import (
    BackendUnavailableError,
    SpmdAbort,
    SpmdTimeout,
    UnknownBackendError,
)

#: (communicator id tuple, source_rank, tag)
MsgKey = Tuple[Tuple[int, ...], int, int]

#: registered execution backends, in default-preference order
BACKENDS = ("threads", "mpi")


def validate_backend_name(backend: str) -> str:
    """Canonicalize a backend name or raise a typed error.

    Accepts the names in :data:`BACKENDS` (case-insensitively); anything
    else raises :class:`~repro.errors.UnknownBackendError` naming the
    registered backends.  Availability is *not* checked here — see
    :func:`ensure_backend_available` — so callers can validate knobs
    before deciding whether the backend must actually run.
    """
    name = str(backend).strip().lower()
    if name not in BACKENDS:
        raise UnknownBackendError(
            f"unknown execution backend {backend!r}; "
            f"registered backends: {', '.join(BACKENDS)}"
        )
    return name


def mpi_available() -> bool:
    """True when :mod:`mpi4py` is importable (without importing it)."""
    return importlib.util.find_spec("mpi4py") is not None


def ensure_backend_available(backend: str) -> None:
    """Raise :class:`~repro.errors.BackendUnavailableError` if ``backend``
    (already validated) cannot run in this environment."""
    if backend == "mpi" and not mpi_available():
        raise BackendUnavailableError(
            "backend='mpi' needs mpi4py, which is not installed. "
            "Install an MPI implementation plus the bindings — e.g. "
            "`apt-get install mpich && pip install mpi4py` — and launch "
            "with `mpirun -n <p> python ...`; or use the default "
            "backend='threads', which needs nothing."
        )


def resolve_backend(backend: str) -> str:
    """Validate *and* availability-check a backend name (fail fast)."""
    name = validate_backend_name(backend)
    ensure_backend_available(name)
    return name


class Transport(ABC):
    """Abstract rank-to-rank message substrate (the backend interface).

    Implementations connect ``nranks`` SPMD ranks and must provide the
    attribute surface the communicator layer reads:

    ``nranks``
        World size.
    ``abort_event``
        A :class:`threading.Event`-like flag; once set, blocked and new
        transport calls raise :class:`~repro.errors.SpmdAbort`.
    ``faults``
        Optional :class:`~repro.runtime.faults.FaultPlan` consulted by
        the communicator's send/recv hook sites (``None`` disables the
        fault plane; process backends keep it ``None``).
    ``deadline``
        Optional ``time.perf_counter`` horizon: a :meth:`collect` still
        empty past it raises :class:`~repro.errors.SpmdTimeout`.
    ``blocked`` / ``active_profiles``
        Diagnostic registries feeding :meth:`describe_blocked` (each
        written only by the local rank(s) of this process).
    """

    nranks: int
    faults: Any
    deadline: Optional[float]
    blocked: Dict[int, Tuple[MsgKey, float]]
    active_profiles: Dict[int, Any]

    @abstractmethod
    def deliver(self, dest: int, key: MsgKey, payload: Any) -> None:
        """Asynchronously send ``payload`` to world rank ``dest``.

        Must not block on the receiver; must raise
        :class:`~repro.errors.SpmdAbort` once the transport is aborted.
        The receiver must never observe an object aliasing the sender's
        buffers (copy, or serialize across a process boundary).
        """

    @abstractmethod
    def collect(self, rank: int, key: MsgKey) -> Tuple[Any, float]:
        """Blocking receive for world rank ``rank``.

        Returns ``(payload, arrival_timestamp)`` where the timestamp is
        the local ``time.perf_counter`` at which the message became
        available (not when the caller asked) — the overlap pipeline
        subtracts it from the wait window to measure hidden transfer
        time.  Messages with equal ``key`` arrive in send order
        (non-overtaking).  Raises :class:`~repro.errors.SpmdAbort` on
        abort and :class:`~repro.errors.SpmdTimeout` (with a
        :meth:`describe_blocked` dump attached) past ``deadline``.
        """

    @abstractmethod
    def abort(self) -> None:
        """Flip the abort flag and wake every blocked :meth:`collect`."""

    @abstractmethod
    def reset(self) -> None:
        """Return an aborted transport to a usable state (drop undelivered
        messages, clear the abort flag and deadline).  Only called once no
        rank is blocked inside :meth:`collect`."""

    def describe_blocked(self) -> List[Dict[str, Any]]:
        """Per-rank blocked-state snapshot (diagnostic, racy by design).

        One dict per currently blocked *local* rank: the message key it
        waits on, how long it has waited, the phase its profile has open,
        and the most recent completed trace span (when tracing).  Under a
        process backend this only sees the calling process's rank; the
        thread backend sees all ranks.
        """
        now = time.perf_counter()
        dump: List[Dict[str, Any]] = []
        for r in sorted(self.blocked):
            entry = self.blocked.get(r)
            if entry is None:
                continue
            (comm_id, src, tag), since = entry
            state: Dict[str, Any] = {
                "rank": r,
                "waiting_for_comm_rank": src,
                "tag": tag,
                "comm_id": comm_id,
                "waited_s": now - since,
            }
            prof = self.active_profiles.get(r)
            if prof is not None:
                phase = getattr(prof, "phase", None)
                state["phase"] = getattr(phase, "value", None)
                tracer = getattr(prof, "tracer", None)
                if tracer is not None:
                    state["last_span"] = tracer.latest()
            dump.append(state)
        return dump


class Mailbox:
    """Inbox of a single rank: per-(comm, src, tag) FIFO queues.

    Entries carry their arrival timestamp (``time.perf_counter``), so a
    receiver that deferred its wait behind local computation can tell how
    much of the transfer completed while it was busy — the measured
    *hidden* communication time of the overlap pipeline.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._queues: Dict[MsgKey, Deque[Tuple[Any, float]]] = defaultdict(deque)

    def put(self, key: MsgKey, payload: Any) -> None:
        with self._cond:
            self._queues[key].append((payload, time.perf_counter()))
            self._cond.notify_all()

    def get(
        self,
        key: MsgKey,
        abort: threading.Event,
        timeout: float = 0.05,
        deadline: Optional[float] = None,
    ) -> Tuple[Any, float]:
        """Block until a message with ``key`` is available (or abort).

        Returns ``(payload, arrival_timestamp)``.  With a ``deadline``
        (``time.perf_counter`` horizon), an empty wait past it raises
        :class:`~repro.errors.SpmdTimeout` — the watchdog that turns a
        mismatched collective into a typed error within one poll period
        of the deadline instead of a silent hang.
        """
        with self._cond:
            while True:
                q = self._queues.get(key)
                if q:
                    return q.popleft()
                if abort.is_set():
                    raise SpmdAbort("SPMD world aborted while waiting for a message")
                if deadline is not None and time.perf_counter() >= deadline:
                    comm_id, src, tag = key
                    raise SpmdTimeout(
                        f"deadline expired waiting for a message from comm rank "
                        f"{src} (tag {tag}, comm {comm_id})"
                    )
                self._cond.wait(timeout=timeout)

    def wake(self) -> None:
        """Wake all waiters (used when aborting the world)."""
        with self._cond:
            self._cond.notify_all()

    def reset(self) -> None:
        """Drop all undelivered messages (post-abort pool recovery)."""
        with self._cond:
            self._queues.clear()
            self._cond.notify_all()


class World(Transport):
    """Thread-backed :class:`Transport`: ``nranks`` virtual ranks in one
    process, one :class:`Mailbox` per rank (``backend="threads"``).

    Communicator ids are allocated by the communicator layer: ``COMM_WORLD``
    is id 0; communicator splits derive new ids deterministically (every
    member of the parent communicator performs the same sequence of
    splits, so all members compute identical child ids without central
    coordination).
    """

    def __init__(self, nranks: int, faults=None) -> None:
        if nranks < 1:
            raise ValueError(f"world needs at least one rank, got {nranks}")
        self.nranks = nranks
        self.mailboxes = [Mailbox() for _ in range(nranks)]
        self.abort_event = threading.Event()
        #: optional :class:`~repro.runtime.faults.FaultPlan`; ``None``
        #: keeps every hook site on its zero-cost disabled path
        self.faults = faults
        #: ``time.perf_counter`` horizon enforced in :meth:`collect`
        #: while work is in flight (set by the worker pool per item)
        self.deadline: Optional[float] = None
        #: live blocked-state registry: rank -> (key, wait_start_ts) while
        #: that rank is inside :meth:`collect` (diagnostics only — each
        #: entry is written by its own rank's thread)
        self.blocked: Dict[int, Tuple[MsgKey, float]] = {}
        #: rank -> the RankProfile of the item it is currently running
        #: (registered by the worker pool; feeds the blocked-state dump)
        self.active_profiles: Dict[int, Any] = {}

    def deliver(self, dest: int, key: MsgKey, payload: Any) -> None:
        if self.abort_event.is_set():
            raise SpmdAbort("SPMD world aborted while sending a message")
        self.mailboxes[dest].put(key, payload)

    def collect(self, rank: int, key: MsgKey) -> Tuple[Any, float]:
        """Blocking receive; returns ``(payload, arrival_timestamp)``.

        Registers the caller in the blocked-state registry for the wait's
        duration; on deadline expiry the raised
        :class:`~repro.errors.SpmdTimeout` is enriched with a dump of
        *every* rank still blocked at that moment (taken before the abort
        wakes them, so the dump shows the true stuck configuration).
        """
        self.blocked[rank] = (key, time.perf_counter())
        try:
            return self.mailboxes[rank].get(
                key, self.abort_event, deadline=self.deadline
            )
        except SpmdTimeout as exc:
            exc.dump = self.describe_blocked()
            raise
        finally:
            self.blocked.pop(rank, None)

    def abort(self) -> None:
        self.abort_event.set()
        for mb in self.mailboxes:
            mb.wake()

    def reset(self) -> None:
        """Return an aborted world to a usable state.

        Clears the abort flag and drops every undelivered message, so a
        persistent :class:`~repro.runtime.spmd.WorkerPool` can keep its
        resident ranks after one work item failed.  Only call once every
        rank has finished the failed item (no thread may be blocked inside
        :meth:`collect` when the queues are cleared).
        """
        self.abort_event.clear()
        self.deadline = None
        self.blocked.clear()
        for mb in self.mailboxes:
            mb.reset()

"""Thread-backed message transport.

A :class:`World` is the shared substrate connecting ``p`` virtual ranks.
Each rank owns a :class:`Mailbox`; a *send* deep-copies the payload into the
destination mailbox (preserving distributed-memory semantics: no rank ever
aliases another rank's buffers), and a *recv* blocks until a matching
message arrives.

Message matching uses ``(communicator id, source rank, tag)`` keys with FIFO
ordering per key, which is exactly MPI's non-overtaking guarantee for
point-to-point messages on a single (comm, src, dst, tag) channel.

Failure handling: if any rank raises, :func:`repro.runtime.spmd.run_spmd`
flips the world's abort flag and wakes all sleepers, so sibling ranks raise
:class:`~repro.errors.SpmdAbort` instead of blocking forever on a receive.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict, deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.errors import SpmdAbort, SpmdTimeout

#: (communicator id tuple, source_rank, tag)
MsgKey = Tuple[Tuple[int, ...], int, int]


class Mailbox:
    """Inbox of a single rank: per-(comm, src, tag) FIFO queues.

    Entries carry their arrival timestamp (``time.perf_counter``), so a
    receiver that deferred its wait behind local computation can tell how
    much of the transfer completed while it was busy — the measured
    *hidden* communication time of the overlap pipeline.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._queues: Dict[MsgKey, Deque[Tuple[Any, float]]] = defaultdict(deque)

    def put(self, key: MsgKey, payload: Any) -> None:
        with self._cond:
            self._queues[key].append((payload, time.perf_counter()))
            self._cond.notify_all()

    def get(
        self,
        key: MsgKey,
        abort: threading.Event,
        timeout: float = 0.05,
        deadline: Optional[float] = None,
    ) -> Tuple[Any, float]:
        """Block until a message with ``key`` is available (or abort).

        Returns ``(payload, arrival_timestamp)``.  With a ``deadline``
        (``time.perf_counter`` horizon), an empty wait past it raises
        :class:`~repro.errors.SpmdTimeout` — the watchdog that turns a
        mismatched collective into a typed error within one poll period
        of the deadline instead of a silent hang.
        """
        with self._cond:
            while True:
                q = self._queues.get(key)
                if q:
                    return q.popleft()
                if abort.is_set():
                    raise SpmdAbort("SPMD world aborted while waiting for a message")
                if deadline is not None and time.perf_counter() >= deadline:
                    comm_id, src, tag = key
                    raise SpmdTimeout(
                        f"deadline expired waiting for a message from comm rank "
                        f"{src} (tag {tag}, comm {comm_id})"
                    )
                self._cond.wait(timeout=timeout)

    def wake(self) -> None:
        """Wake all waiters (used when aborting the world)."""
        with self._cond:
            self._cond.notify_all()

    def reset(self) -> None:
        """Drop all undelivered messages (post-abort pool recovery)."""
        with self._cond:
            self._queues.clear()
            self._cond.notify_all()


class World:
    """Shared transport for ``nranks`` virtual ranks.

    Also allocates communicator ids: ``COMM_WORLD`` is id 0; communicator
    splits derive new ids deterministically (every member of the parent
    communicator performs the same sequence of splits, so all members
    compute identical child ids without central coordination).
    """

    def __init__(self, nranks: int, faults=None) -> None:
        if nranks < 1:
            raise ValueError(f"world needs at least one rank, got {nranks}")
        self.nranks = nranks
        self.mailboxes = [Mailbox() for _ in range(nranks)]
        self.abort_event = threading.Event()
        #: optional :class:`~repro.runtime.faults.FaultPlan`; ``None``
        #: keeps every hook site on its zero-cost disabled path
        self.faults = faults
        #: ``time.perf_counter`` horizon enforced in :meth:`collect`
        #: while work is in flight (set by the worker pool per item)
        self.deadline: Optional[float] = None
        #: live blocked-state registry: rank -> (key, wait_start_ts) while
        #: that rank is inside :meth:`collect` (diagnostics only — each
        #: entry is written by its own rank's thread)
        self.blocked: Dict[int, Tuple[MsgKey, float]] = {}
        #: rank -> the RankProfile of the item it is currently running
        #: (registered by the worker pool; feeds the blocked-state dump)
        self.active_profiles: Dict[int, Any] = {}

    def deliver(self, dest: int, key: MsgKey, payload: Any) -> None:
        if self.abort_event.is_set():
            raise SpmdAbort("SPMD world aborted while sending a message")
        self.mailboxes[dest].put(key, payload)

    def collect(self, rank: int, key: MsgKey) -> Tuple[Any, float]:
        """Blocking receive; returns ``(payload, arrival_timestamp)``.

        Registers the caller in the blocked-state registry for the wait's
        duration; on deadline expiry the raised
        :class:`~repro.errors.SpmdTimeout` is enriched with a dump of
        *every* rank still blocked at that moment (taken before the abort
        wakes them, so the dump shows the true stuck configuration).
        """
        self.blocked[rank] = (key, time.perf_counter())
        try:
            return self.mailboxes[rank].get(
                key, self.abort_event, deadline=self.deadline
            )
        except SpmdTimeout as exc:
            exc.dump = self.describe_blocked()
            raise
        finally:
            self.blocked.pop(rank, None)

    def describe_blocked(self) -> List[Dict[str, Any]]:
        """Per-rank blocked-state snapshot (diagnostic, racy by design).

        One dict per currently blocked rank: the message key it waits on,
        how long it has waited, the phase its profile has open, and the
        most recent completed trace span (when tracing).
        """
        now = time.perf_counter()
        dump: List[Dict[str, Any]] = []
        for r in sorted(self.blocked):
            entry = self.blocked.get(r)
            if entry is None:
                continue
            (comm_id, src, tag), since = entry
            state: Dict[str, Any] = {
                "rank": r,
                "waiting_for_comm_rank": src,
                "tag": tag,
                "comm_id": comm_id,
                "waited_s": now - since,
            }
            prof = self.active_profiles.get(r)
            if prof is not None:
                phase = getattr(prof, "phase", None)
                state["phase"] = getattr(phase, "value", None)
                tracer = getattr(prof, "tracer", None)
                if tracer is not None:
                    state["last_span"] = tracer.latest()
            dump.append(state)
        return dump

    def abort(self) -> None:
        self.abort_event.set()
        for mb in self.mailboxes:
            mb.wake()

    def reset(self) -> None:
        """Return an aborted world to a usable state.

        Clears the abort flag and drops every undelivered message, so a
        persistent :class:`~repro.runtime.spmd.WorkerPool` can keep its
        resident ranks after one work item failed.  Only call once every
        rank has finished the failed item (no thread may be blocked inside
        :meth:`collect` when the queues are cleared).
        """
        self.abort_event.clear()
        self.deadline = None
        self.blocked.clear()
        for mb in self.mailboxes:
            mb.reset()

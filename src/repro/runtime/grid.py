"""Processor grids for the 1.5D and 2.5D algorithms.

The paper's 1.5D algorithms run on a ``(p/c) x c`` grid and its 2.5D
algorithms on a ``sqrt(p/c) x sqrt(p/c) x c`` grid, where ``c`` is the
replication factor.  A *layer* is a maximal subgrid with a fixed replica
coordinate (the concurrent 1D / 2D algorithm of the paper's description);
the *fiber* is the axis along which all-gathers and reduce-scatters
replicate inputs or reduce outputs.

Grid objects are pure index arithmetic (picklable, shareable across ranks);
:meth:`make_comms` is called *inside* an SPMD rank to split the world
communicator into the layer/fiber subcommunicators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import GridError
from repro.runtime.comm import Communicator


def _check_replication(p: int, c: int) -> None:
    if p < 1 or c < 1:
        raise GridError(f"need p >= 1 and c >= 1, got p={p}, c={c}")
    if p % c != 0:
        raise GridError(f"replication factor c={c} must divide p={p}")


@dataclass(frozen=True)
class Grid15D:
    """``(p/c) x c`` grid: rank ``(u, v)`` with layer index v, layer rank u.

    Rank numbering is row-major over ``(u, v)``: ``rank = u * c + v``.
    The *layer* communicator connects the ``p/c`` ranks sharing ``v``
    (cyclic shifts happen here); the *fiber* communicator connects the
    ``c`` ranks sharing ``u`` (all-gather / reduce-scatter happen here).
    """

    p: int
    c: int

    def __post_init__(self) -> None:
        _check_replication(self.p, self.c)

    @property
    def layer_size(self) -> int:
        """Ranks per layer, the paper's ``p/c``."""
        return self.p // self.c

    def coords(self, rank: int) -> Tuple[int, int]:
        if not 0 <= rank < self.p:
            raise GridError(f"rank {rank} out of range for p={self.p}")
        return divmod(rank, self.c)

    def rank_of(self, u: int, v: int) -> int:
        if not (0 <= u < self.layer_size and 0 <= v < self.c):
            raise GridError(f"coords ({u},{v}) out of range")
        return u * self.c + v

    def make_comms(self, comm: Communicator) -> Tuple[Communicator, Communicator]:
        """Split into ``(layer_comm, fiber_comm)`` for the calling rank."""
        if comm.size != self.p:
            raise GridError(f"communicator size {comm.size} != grid p={self.p}")
        u, v = self.coords(comm.rank)
        layer = comm.split(color=v, key=u)
        fiber = comm.split(color=u, key=v)
        return layer, fiber


@dataclass(frozen=True)
class Grid25D:
    """``q x q x c`` grid with ``q = sqrt(p/c)``: rank ``(x, y, z)``.

    Rank numbering: ``rank = (x * q + y) * c + z``.  Within a layer
    (fixed ``z``) the 2.5D algorithms run Cannon-style shifts along grid
    rows (``row_comm``: fixed x, varying y) and grid columns
    (``col_comm``: fixed y, varying x); the fiber connects the ``c`` ranks
    sharing ``(x, y)``.
    """

    p: int
    c: int
    q: int = field(init=False)

    def __post_init__(self) -> None:
        _check_replication(self.p, self.c)
        q = math.isqrt(self.p // self.c)
        if q * q * self.c != self.p:
            raise GridError(
                f"2.5D grid needs p/c to be a perfect square, "
                f"got p={self.p}, c={self.c}"
            )
        object.__setattr__(self, "q", q)

    def coords(self, rank: int) -> Tuple[int, int, int]:
        if not 0 <= rank < self.p:
            raise GridError(f"rank {rank} out of range for p={self.p}")
        xy, z = divmod(rank, self.c)
        x, y = divmod(xy, self.q)
        return x, y, z

    def rank_of(self, x: int, y: int, z: int) -> int:
        if not (0 <= x < self.q and 0 <= y < self.q and 0 <= z < self.c):
            raise GridError(f"coords ({x},{y},{z}) out of range")
        return (x * self.q + y) * self.c + z

    def make_comms(
        self, comm: Communicator
    ) -> Tuple[Communicator, Communicator, Communicator]:
        """Split into ``(row_comm, col_comm, fiber_comm)``."""
        if comm.size != self.p:
            raise GridError(f"communicator size {comm.size} != grid p={self.p}")
        x, y, z = self.coords(comm.rank)
        row = comm.split(color=x * self.c + z, key=y)  # vary y
        col = comm.split(color=y * self.c + z, key=x)  # vary x
        fiber = comm.split(color=x * self.q + y, key=z)  # vary z
        return row, col, fiber


def feasible_c_15d(p: int) -> Tuple[int, ...]:
    """Replication factors admissible for a 1.5D grid on ``p`` ranks."""
    return tuple(c for c in range(1, p + 1) if p % c == 0)


def feasible_c_25d(p: int) -> Tuple[int, ...]:
    """Replication factors admissible for a 2.5D grid on ``p`` ranks."""
    out = []
    for c in range(1, p + 1):
        if p % c == 0:
            q = math.isqrt(p // c)
            if q * q * c == p:
                out.append(c)
    return tuple(out)

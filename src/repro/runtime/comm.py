"""MPI-like communicator, generic over the transport backend.

A :class:`Communicator` talks to the network exclusively through the
:class:`~repro.runtime.backend.Transport` interface (``deliver`` /
``collect`` plus the abort/deadline/fault attribute surface), so the same
communicator — and every collective, split-derived subcommunicator and
need-list neighborhood exchange built on it — runs unchanged over the
thread :class:`~repro.runtime.backend.World` (``backend="threads"``) and
over real MPI processes
(:class:`~repro.runtime.backend_mpi.MpiTransport`, ``backend="mpi"``).
That single seam is also why thread-vs-MPI outputs are bitwise
identical: the collective algorithms, and hence reduction orders, are
the same code either way.

Implements the primitives the paper's algorithms use — point-to-point
send/recv (``MPI_Isend``/``MPI_Irecv`` in the paper's implementation),
``allgather`` and ``reduce_scatter`` collectives, and communicator
``split`` for the layer/fiber subgrids — with *ring* collective algorithms
so that the measured per-rank traffic matches the textbook collective costs
the paper's analysis assumes:

===================  =================  ==========================
collective           messages per rank  words received per rank
===================  =================  ==========================
ring all-gather      ``P - 1``          ``(P-1)/P * W``
ring reduce-scatter  ``P - 1``          ``(P-1)/P * W``
all-reduce (RS+AG)   ``2(P - 1)``       ``2 (P-1)/P * W``
all-to-all-v         ``P - 1``          ``sum_k W_k`` (peer blocks)
===================  =================  ==========================

where ``W`` is the total (gathered / reduced) payload size in 8-byte words
and ``W_k`` the size of the personalized block peer ``k`` addresses to this
rank.  The *sparse* neighborhood collectives in
:mod:`repro.comm_sparse.collectives` are built on the same point-to-point
layer and skip empty legs entirely, so their costs are data dependent:
``sum_k |need_k| * width_k`` words in at most ``P - 1`` messages.

Payloads are NumPy arrays, scalars, or (nested) tuples/lists/dicts thereof.
Sends deep-copy array payloads so no two ranks ever alias a buffer.
"""

from __future__ import annotations

import time
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CommError
from repro.runtime.backend import Transport
from repro.runtime.profile import RankProfile

CommId = Tuple[int, ...]


def payload_words(obj: Any) -> int:
    """Number of 8-byte words in a payload (indices and values alike)."""
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.size)
    if isinstance(obj, (int, float, bool, np.integer, np.floating, np.bool_)):
        return 1
    if isinstance(obj, (tuple, list)):
        return sum(payload_words(o) for o in obj)
    if isinstance(obj, dict):
        return sum(payload_words(v) for v in obj.values())
    return 0


def _isolate(obj: Any) -> Any:
    """Deep-copy array content so sender and receiver never share buffers."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, tuple):
        return tuple(_isolate(o) for o in obj)
    if isinstance(obj, list):
        return [_isolate(o) for o in obj]
    if isinstance(obj, dict):
        return {k: _isolate(v) for k, v in obj.items()}
    return obj


class PendingRecv:
    """Waitable handle for a posted nonblocking receive.

    Produced by :meth:`Communicator.irecv` / :meth:`Communicator.ishift` /
    :meth:`Communicator.isendrecv`.  :meth:`wait` blocks until the message
    is available, performs the usual word/message accounting, and
    additionally attributes to the active phase the *hidden* transfer time
    — the part of the ``[post, arrival]`` interval that elapsed before the
    caller started waiting, i.e. communication that completed behind
    whatever the rank computed in between.  Handles must be waited by the
    posting rank (they are not thread safe) and exactly once.
    """

    __slots__ = ("_comm", "_source", "_tag", "_tracked", "_post_ts", "_done")

    def __init__(
        self, comm: "Communicator", source: int, tag: int, tracked: bool = True
    ) -> None:
        self._comm = comm
        self._source = source
        self._tag = tag
        self._tracked = tracked
        self._post_ts = time.perf_counter()
        self._done = False

    def wait(self) -> Any:
        """Block until the message arrives and return its payload.

        The wait funnels through :meth:`Transport.collect`, so an active
        ``deadline_ms`` watchdog covers posted-but-never-satisfied
        receives exactly like blocking ones: the wait registers in the
        blocked-state registry and raises
        :class:`~repro.errors.SpmdTimeout` past the horizon.
        """
        if self._done:
            raise CommError("nonblocking receive waited more than once")
        self._done = True
        comm = self._comm
        wait_start = time.perf_counter()
        payload, arrival = comm.world.collect(
            comm.group[comm.rank], (comm.comm_id, self._source, self._tag)
        )
        if self._tracked:
            profile = comm.profile
            profile.on_recv(payload_words(payload))
            profile.on_hidden(min(arrival, wait_start) - self._post_ts)
            tracer = profile.tracer
            if tracer is not None:
                end = time.perf_counter()
                tracer.span(f"wait<-r{self._source}", "comm", wait_start, end)
                # the window the transfer was actually in flight on this
                # rank's timeline: post until arrival (or until now for a
                # message that was still pending when the wait began)
                tracer.async_span(
                    f"recv<-r{self._source}",
                    "comm",
                    self._post_ts,
                    max(self._post_ts, min(arrival, end)),
                )
        return payload


class _ReadyRecv:
    """A completed handle (self-shift on a single-rank communicator)."""

    __slots__ = ("_payload", "_done")

    def __init__(self, payload: Any) -> None:
        self._payload = payload
        self._done = False

    def wait(self) -> Any:
        if self._done:
            raise CommError("nonblocking receive waited more than once")
        self._done = True
        return self._payload


class PendingAllgather:
    """Waitable handle for a posted nonblocking all-gather.

    Wraps one :class:`PendingRecv` per peer; :meth:`wait` drains them and
    returns the per-rank contributions indexed by rank, exactly like the
    blocking :meth:`Communicator.allgather`.
    """

    __slots__ = ("_out", "_legs")

    def __init__(self, out: List[Any], legs: List[Tuple[int, PendingRecv]]) -> None:
        self._out = out
        self._legs = legs

    def wait(self) -> List[Any]:
        for src, pending in self._legs:
            self._out[src] = pending.wait()
        self._legs = []
        return self._out


class Communicator:
    """A group of ranks that can exchange messages.

    Instances are cheap handles; the heavy state (queues) lives in the
    shared :class:`~repro.runtime.backend.Transport`.  Each SPMD rank
    holds its own communicator object and must not share it across
    threads.
    """

    def __init__(
        self,
        world: Transport,
        group: Sequence[int],
        comm_id: CommId,
        rank: int,
        profile: Optional[RankProfile] = None,
        profile_ref: Optional[List[RankProfile]] = None,
    ) -> None:
        self.world = world
        self.group = list(group)  # comm rank -> world rank
        self.comm_id = comm_id
        self.rank = rank
        # The profile is held through a shared one-slot ref so that every
        # communicator derived from this one (grid layers/fibers built once
        # per resident context) follows profile rebinding on the root: a
        # persistent WorkerPool points the root at the current work item's
        # profile and all resident subcommunicators account there too.
        if profile_ref is not None:
            self._profile_ref = profile_ref
        else:
            self._profile_ref = [profile if profile is not None else RankProfile()]
        self._split_counter = 0

    @property
    def profile(self) -> RankProfile:
        return self._profile_ref[0]

    @profile.setter
    def profile(self, profile: RankProfile) -> None:
        self._profile_ref[0] = profile

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def world_comm(
        cls, world: Transport, rank: int, profile: Optional[RankProfile] = None
    ) -> "Communicator":
        return cls(world, range(world.nranks), (0,), rank, profile)

    @property
    def size(self) -> int:
        return len(self.group)

    # ------------------------------------------------------------------
    # point to point
    # ------------------------------------------------------------------

    def send(self, dest: int, payload: Any, tag: int = 0, tracked: bool = True) -> None:
        """Buffered (non-blocking, copying) send to ``dest`` in this comm.

        When a :class:`~repro.runtime.faults.FaultPlan` is threaded into
        the world, a matching trigger may drop the message after the
        accounting (lost on the wire — the receiver blocks until abort or
        deadline), delay its delivery, or deliver it twice.
        """
        if not 0 <= dest < self.size:
            raise CommError(f"destination {dest} out of range for size {self.size}")
        data = _isolate(payload)
        if tracked:
            profile = self.profile
            profile.on_send(payload_words(payload))
            if profile.tracer is not None:
                profile.tracer.instant(f"send->r{dest}", "comm")
        faults = self.world.faults
        if faults is not None:
            spec = faults.on_send(self.group[self.rank], tag)
            if spec is not None:
                if spec.action == "drop":
                    return
                if spec.action == "delay":
                    time.sleep(spec.delay_s)
                elif spec.action == "dup":
                    self.world.deliver(
                        self.group[dest], (self.comm_id, self.rank, tag), data
                    )
                    data = _isolate(data)
        self.world.deliver(self.group[dest], (self.comm_id, self.rank, tag), data)

    def recv(self, source: int, tag: int = 0, tracked: bool = True) -> Any:
        """Blocking receive from ``source`` in this comm."""
        if not 0 <= source < self.size:
            raise CommError(f"source {source} out of range for size {self.size}")
        profile = self.profile if tracked else None
        tracer = profile.tracer if profile is not None else None
        t0 = time.perf_counter() if tracer is not None else 0.0
        payload, _ = self.world.collect(
            self.group[self.rank], (self.comm_id, source, tag)
        )
        if profile is not None:
            profile.on_recv(payload_words(payload))
            if tracer is not None:
                tracer.span(f"recv<-r{source}", "comm", t0, time.perf_counter())
        return payload

    def sendrecv(self, dest: int, payload: Any, source: int, tag: int = 0) -> Any:
        """Send to ``dest`` and receive from ``source`` (deadlock-free)."""
        self.send(dest, payload, tag)
        return self.recv(source, tag)

    def shift(self, payload: Any, displacement: int = 1, tag: int = 0) -> Any:
        """Cyclic shift: send to ``rank+displacement``, recv from the mirror.

        This is the *propagation* primitive of every algorithm in the
        paper (cyclic shifts of dense blocks or sparse-matrix chunks
        within a grid layer).
        """
        if self.size == 1:
            return _isolate(payload)
        dest = (self.rank + displacement) % self.size
        src = (self.rank - displacement) % self.size
        return self.sendrecv(dest, payload, src, tag)

    # ------------------------------------------------------------------
    # nonblocking point to point (the overlap pipeline's primitives)
    # ------------------------------------------------------------------

    def isend(self, dest: int, payload: Any, tag: int = 0) -> None:
        """Nonblocking send.  Sends in this runtime are always buffered
        (the payload is deep-copied into the destination mailbox), so this
        is :meth:`send` under its MPI-convention name."""
        self.send(dest, payload, tag)

    def irecv(self, source: int, tag: int = 0, tracked: bool = True) -> PendingRecv:
        """Post a nonblocking receive; ``.wait()`` blocks and accounts.

        The interval between this call and the wait is where the overlap
        pipeline runs the local kernel; transfer time that elapses inside
        it is attributed to the active phase as *hidden* communication.
        """
        if not 0 <= source < self.size:
            raise CommError(f"source {source} out of range for size {self.size}")
        return PendingRecv(self, source, tag, tracked)

    def isendrecv(self, dest: int, payload: Any, source: int, tag: int = 0):
        """Nonblocking exchange: post the (buffered) send and the receive,
        return the receive's waitable handle."""
        self.send(dest, payload, tag)
        return self.irecv(source, tag)

    def ishift(self, payload: Any, displacement: int = 1, tag: int = 0):
        """Nonblocking cyclic shift: the software-pipelined counterpart of
        :meth:`shift`.

        The send is posted immediately (deep-copying the payload, so the
        caller may keep *reading* it — the pipelined loops circulate
        read-only operands); ``.wait()`` yields the incoming payload.
        Waiting immediately is exactly :meth:`shift`; computing between
        post and wait hides the transfer behind the local kernel.
        """
        if self.size == 1:
            return _ReadyRecv(_isolate(payload))
        dest = (self.rank + displacement) % self.size
        src = (self.rank - displacement) % self.size
        return self.isendrecv(dest, payload, src, tag)

    # ------------------------------------------------------------------
    # collectives (ring algorithms)
    # ------------------------------------------------------------------

    def allgather(self, obj: Any, tag: int = 101) -> List[Any]:
        """Ring all-gather: returns the per-rank contributions, indexed by rank."""
        P = self.size
        out: List[Any] = [None] * P
        out[self.rank] = _isolate(obj)
        cur = obj
        for step in range(P - 1):
            self.send((self.rank + 1) % P, cur, tag)
            cur = self.recv((self.rank - 1) % P, tag)
            out[(self.rank - step - 1) % P] = cur
        return out

    def iallgather(self, obj: Any, tag: int = 101) -> PendingAllgather:
        """Nonblocking all-gather: post now, collect at ``.wait()``.

        Uses a *direct* (personalized) exchange — every rank posts its
        contribution straight to each peer — instead of the blocking
        ring, because a ring's step ``k`` depends on step ``k-1`` and
        cannot be deferred behind computation.  Per-rank *received* words
        are identical to the ring's (each rank receives every other
        contribution exactly once) and the message count is the same
        ``P - 1``, so the received-side accounting — what
        :class:`~repro.runtime.profile.RunReport` and the cost model
        charge — is unchanged; *sent* words can differ when contributions
        are unequal (a rank ships its own block ``P - 1`` times instead
        of forwarding its neighbors' blocks).  The result list is indexed
        by rank, bitwise identical to :meth:`allgather`'s.
        """
        P = self.size
        out: List[Any] = [None] * P
        out[self.rank] = _isolate(obj)
        legs: List[Tuple[int, PendingRecv]] = []
        for off in range(1, P):
            self.send((self.rank + off) % P, obj, tag)
        for off in range(1, P):
            src = (self.rank - off) % P
            legs.append((src, self.irecv(src, tag)))
        return PendingAllgather(out, legs)

    def reduce_scatter(
        self,
        blocks: Sequence[np.ndarray],
        tag: int = 102,
        op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
    ) -> np.ndarray:
        """Ring reduce-scatter.

        ``blocks`` is this rank's contribution to every rank's result
        (``blocks[k]`` is destined for rank ``k``); returns the fully
        reduced ``blocks[self.rank]``.  Reduction order is fixed by ring
        position, so results are deterministic.
        """
        P = self.size
        if len(blocks) != P:
            raise CommError(f"reduce_scatter needs {P} blocks, got {len(blocks)}")
        if P == 1:
            return blocks[0].copy()
        r = self.rank
        # Standard ring schedule ends with chunk (r+1) fully reduced at rank
        # r; relabeling chunks by k -> (k-1) mod P makes that chunk r.
        own = lambda label: blocks[(label - 1) % P]  # noqa: E731
        cur: Optional[np.ndarray] = None
        for step in range(P - 1):
            send_label = (r - step) % P
            send_data = own(send_label) if step == 0 else cur
            self.send((r + 1) % P, send_data, tag)
            received = self.recv((r - 1) % P, tag)
            recv_label = (r - step - 1) % P
            cur = op(received, own(recv_label))
        assert cur is not None
        return cur

    def allreduce(
        self,
        arr: np.ndarray,
        tag: int = 103,
        op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
    ) -> np.ndarray:
        """All-reduce as reduce-scatter + all-gather, the composition the
        paper uses between the SDDMM and SpMM calls of the 2.5D
        sparse-replicating algorithm.  ``op`` defaults to sum; e.g.
        ``np.maximum`` gives a max-reduction (edge-softmax stabilization).
        """
        P = self.size
        if P == 1:
            return arr.copy()
        flat = np.ascontiguousarray(arr).reshape(-1)
        bounds = np.linspace(0, flat.size, P + 1).astype(np.int64)
        blocks = [flat[bounds[k] : bounds[k + 1]] for k in range(P)]
        mine = self.reduce_scatter(blocks, tag=tag, op=op)
        pieces = self.allgather(mine, tag=tag + 1)
        return np.concatenate(pieces).reshape(arr.shape)

    def alltoallv(self, sendbufs: Sequence[Any], tag: int = 109) -> List[Any]:
        """Personalized all-to-all: ``sendbufs[k]`` goes to rank ``k``.

        Returns the received blocks indexed by source rank (this rank's
        own block is deep-copied locally, never sent).  Peers are paired
        round-robin by offset so traffic spreads evenly over the group,
        and every peer exchange is word-accounted individually — the cost
        is exactly the sum of the addressed block sizes.  This is the
        generic personalized exchange; the need-list collectives in
        :mod:`repro.comm_sparse.collectives` implement the same pattern
        directly on ``send``/``recv`` so they can skip empty legs.
        """
        P = self.size
        if len(sendbufs) != P:
            raise CommError(f"alltoallv needs {P} send buffers, got {len(sendbufs)}")
        out: List[Any] = [None] * P
        out[self.rank] = _isolate(sendbufs[self.rank])
        for off in range(1, P):
            dest = (self.rank + off) % P
            src = (self.rank - off) % P
            self.send(dest, sendbufs[dest], tag)
            out[src] = self.recv(src, tag)
        return out

    def allreduce_scalar(self, value: float, tag: int = 104) -> float:
        """All-reduce of a single scalar (ring all-gather + local sum)."""
        contributions = self.allgather(float(value), tag=tag)
        return float(sum(contributions))

    def bcast(self, obj: Any, root: int = 0, tag: int = 105) -> Any:
        """Broadcast from ``root`` (linear; used only for small metadata)."""
        if self.size == 1:
            return _isolate(obj)
        if self.rank == root:
            for dst in range(self.size):
                if dst != root:
                    self.send(dst, obj, tag)
            return _isolate(obj)
        return self.recv(root, tag)

    def barrier(self, tag: int = 106) -> None:
        """Dissemination barrier with untracked zero-word control messages."""
        P = self.size
        k = 1
        while k < P:
            self.send((self.rank + k) % P, None, tag, tracked=False)
            self.recv((self.rank - k) % P, tag, tracked=False)
            k *= 2

    # ------------------------------------------------------------------
    # communicator management
    # ------------------------------------------------------------------

    def split(self, color: int, key: int, tag: int = 107) -> "Communicator":
        """Collective split into sub-communicators by ``color``.

        Every rank of this communicator must call ``split`` the same number
        of times in the same order (standard SPMD discipline); membership
        metadata is exchanged with untracked messages since communicator
        construction is not part of the paper's cost model.
        """
        info = self.allgather_untracked((color, key, self.rank))
        members = sorted(
            (k, r) for (c, k, r) in info if c == color
        )
        group = [self.group[r] for (_, r) in members]
        my_index = [r for (_, r) in members].index(self.rank)
        child_id = self.comm_id + (self._split_counter, color)
        self._split_counter += 1
        return Communicator(
            self.world, group, child_id, my_index, profile_ref=self._profile_ref
        )

    def allgather_untracked(self, obj: Any, tag: int = 108) -> List[Any]:
        """Ring all-gather that does not count toward traffic (metadata)."""
        P = self.size
        out: List[Any] = [None] * P
        out[self.rank] = _isolate(obj)
        cur = obj
        for step in range(P - 1):
            self.send((self.rank + 1) % P, cur, tag, tracked=False)
            cur = self.recv((self.rank - 1) % P, tag, tracked=False)
            out[(self.rank - step - 1) % P] = cur
        return out

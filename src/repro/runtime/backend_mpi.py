"""MPI process backend: one real process per rank (``backend="mpi"``).

The program model is *replicated SPMD*: under ``mpirun -n p`` the whole
driver script runs identically in every process (the same planning, the
same knob resolution, the same deterministic inputs), and only the
rank-resident work diverges — :class:`MpiWorkerPool.run` executes the
rank body for the **local** rank alone, then allgathers each rank's
return value and profile-counter snapshot over a control communicator so
every replicated driver continues from identical state.  This mirrors
how the paper's C++/MPI implementation is launched, and it is what lets
the thread-simulated :class:`~repro.runtime.spmd.WorkerPool` and this
pool sit behind one session API: the session's collect logic reads "all
ranks' locals" on every process because the pool synchronized them.

:class:`MpiTransport` implements the :class:`~repro.runtime.backend.Transport`
contract over mpi4py point-to-point messages: every ``deliver`` is an
``MPI_Isend`` of the pickled ``(match_key, payload)`` pair on a single
MPI tag, and ``collect`` drains arrivals (``iprobe`` on
``ANY_SOURCE``) into per-key local queues.  Because MPI guarantees
non-overtaking per (source, communicator, tag) and all traffic rides one
tag on one communicator, per-key FIFO order is preserved end to end —
the same matching semantics as the thread :class:`~repro.runtime.backend.World`.
Arrival timestamps are taken when a message is drained into its local
queue, so the overlap pipeline's hidden-communication accounting is a
(documented) lower bound: a transfer that completed inside MPI before
the drain is credited from the drain, not from wire arrival.

Deliberately thread-only for now (typed errors enforce it): fault
injection, ``retries``/graceful degradation, serve fleets, and
spawn-per-call (``persistent=False``) sessions.  A deadline expiry under
this backend is a job-level circuit breaker — the blocked-state dump is
printed and the MPI job is aborted — because there is no sibling-abort
recovery across processes.

This module imports cleanly without mpi4py; constructing either class
raises :class:`~repro.errors.BackendUnavailableError` with the install
hint instead.
"""

from __future__ import annotations

import sys
import time
from collections import defaultdict, deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.errors import ReproError, SpmdAbort, SpmdTimeout
from repro.runtime.backend import MsgKey, Transport, ensure_backend_available
from repro.runtime.comm import Communicator
from repro.runtime.profile import RankProfile, RunReport


def _mpi():
    """The :mod:`mpi4py.MPI` module, or a typed error with install hint."""
    ensure_backend_available("mpi")
    from mpi4py import MPI

    return MPI


def mpi_world_size() -> int:
    """Size of ``MPI_COMM_WORLD`` (1 when launched without ``mpirun``)."""
    return _mpi().COMM_WORLD.Get_size()


def mpi_world_rank() -> int:
    """This process's rank in ``MPI_COMM_WORLD``."""
    return _mpi().COMM_WORLD.Get_rank()


class _ThreadLikeEvent:
    """Minimal local abort flag (process-local, like the thread backend's
    event — an abort never propagates to sibling processes; job-level
    teardown goes through ``MPI_Abort`` instead)."""

    __slots__ = ("_set",)

    def __init__(self) -> None:
        self._set = False

    def is_set(self) -> bool:
        return self._set

    def set(self) -> None:
        self._set = True

    def clear(self) -> None:
        self._set = False


class MpiTransport(Transport):
    """:class:`~repro.runtime.backend.Transport` over mpi4py processes.

    All runtime traffic rides one MPI tag (:data:`MPI_TAG`) on a private
    duplicate of ``MPI_COMM_WORLD``; the library-level match key
    ``(communicator id, source comm-rank, tag)`` travels inside the
    pickled message, and :meth:`collect` demultiplexes arrivals into
    per-key FIFO queues.  The dup isolates this transport's traffic from
    the control plane and from any other transport instance, so a
    session may be closed and a fresh one opened without stray messages
    crossing over.
    """

    #: the single wire-level MPI tag; message matching is by embedded key
    MPI_TAG = 7

    def __init__(self) -> None:
        MPI = _mpi()
        self._MPI = MPI
        self._comm = MPI.COMM_WORLD.Dup()
        self.nranks = self._comm.Get_size()
        self.rank = self._comm.Get_rank()
        self.faults = None  # fault injection is thread-backend-only
        self.deadline: Optional[float] = None
        self.blocked: Dict[int, Tuple[MsgKey, float]] = {}
        self.active_profiles: Dict[int, Any] = {}
        self.abort_event = _ThreadLikeEvent()
        self._inbox: Dict[MsgKey, Deque[Tuple[Any, float]]] = defaultdict(deque)
        self._sends: List[Any] = []

    # -- internals ------------------------------------------------------

    def _progress(self) -> None:
        """Drain completed sends and every already-arrived message."""
        if self._sends:
            still = []
            for req in self._sends:
                flag = req.test()
                done = flag[0] if isinstance(flag, tuple) else bool(flag)
                if not done:
                    still.append(req)
            self._sends = still
        MPI = self._MPI
        status = MPI.Status()
        while self._comm.iprobe(
            source=MPI.ANY_SOURCE, tag=self.MPI_TAG, status=status
        ):
            key, payload = self._comm.recv(
                source=status.Get_source(), tag=self.MPI_TAG
            )
            self._inbox[key].append((payload, time.perf_counter()))
            status = MPI.Status()

    # -- Transport contract ---------------------------------------------

    def deliver(self, dest: int, key: MsgKey, payload: Any) -> None:
        if self.abort_event.is_set():
            raise SpmdAbort("SPMD transport aborted while sending a message")
        if dest == self.rank:
            # self-delivery short-circuit: the communicator layer already
            # isolated the payload, so local enqueue preserves the
            # no-aliasing guarantee without a pickle round trip
            self._inbox[key].append((payload, time.perf_counter()))
        else:
            self._sends.append(
                self._comm.isend((key, payload), dest=dest, tag=self.MPI_TAG)
            )
        self._progress()

    def collect(self, rank: int, key: MsgKey) -> Tuple[Any, float]:
        self.blocked[rank] = (key, time.perf_counter())
        try:
            pause = 0.0
            while True:
                self._progress()
                q = self._inbox.get(key)
                if q:
                    return q.popleft()
                if self.abort_event.is_set():
                    raise SpmdAbort(
                        "SPMD transport aborted while waiting for a message"
                    )
                if self.deadline is not None and time.perf_counter() >= self.deadline:
                    comm_id, src, tag = key
                    raise SpmdTimeout(
                        f"deadline expired waiting for a message from comm "
                        f"rank {src} (tag {tag}, comm {comm_id})",
                        dump=self.describe_blocked(),
                    )
                # spin briefly for latency, then back off to a 1 ms poll
                # (the same granularity as the thread backend's condition
                # wait relative to its 50 ms timeout slices)
                if pause > 0.0:
                    time.sleep(pause)
                pause = min(pause + 1e-5, 1e-3)
        finally:
            self.blocked.pop(rank, None)

    def abort(self) -> None:
        self.abort_event.set()

    def reset(self) -> None:
        self.abort_event.clear()
        self.deadline = None
        self.blocked.clear()
        self._inbox.clear()

    def hard_abort(self, code: int = 3) -> None:
        """Tear the whole MPI job down (no cross-process recovery)."""
        self._MPI.COMM_WORLD.Abort(code)

    def finalize(self) -> None:
        """Best-effort local teardown: complete or cancel pending sends.

        The dup'd communicator is *not* freed — ``MPI_Comm_free`` is
        collective, and teardown may run from a garbage-collection path
        where sibling processes are not at the same point; leaked dups
        are reclaimed by ``MPI_Finalize`` at interpreter exit.
        """
        horizon = time.perf_counter() + 5.0
        while self._sends and time.perf_counter() < horizon:
            self._progress()
            if self._sends:
                time.sleep(1e-3)
        for req in self._sends:
            try:
                req.cancel()
            except Exception:  # pragma: no cover - implementation-defined
                pass
        self._sends = []


class _SettledFuture:
    """Pre-settled stand-in for :class:`~repro.runtime.spmd.PoolFuture`.

    The MPI pool executes eagerly inside :meth:`MpiWorkerPool.run_async`
    (cross-call pipelining is a thread-backend feature for now — see
    ``ARCHITECTURE.md``), so its futures are born settled and
    :meth:`wait` just replays the outcome.
    """

    __slots__ = ("_results", "_report")

    def __init__(self, results: List[Any], report: RunReport) -> None:
        self._results = results
        self._report = report

    @property
    def done(self) -> bool:
        return True

    def wait(self) -> Tuple[List[Any], RunReport]:
        return self._results, self._report


class MpiWorkerPool:
    """Rank-resident process pool: the ``backend="mpi"`` WorkerPool.

    Drop-in for :class:`~repro.runtime.spmd.WorkerPool` from the
    session's point of view, with one structural difference surfaced as
    :attr:`spans_processes`: only the **local** rank's body runs in this
    process, and :meth:`run` ends with a control-plane allgather of
    ``(result, profile counters)`` so every replicated driver observes
    all ranks' results.  Requires the session's ``p`` to equal the
    ``mpirun`` world size, and runs without ``mpirun`` only for ``p=1``.
    """

    #: session dispatch must sync rank-local state across processes
    spans_processes = True

    def __init__(
        self,
        nranks: int,
        name: str = "mpi-pool",
        faults=None,
        deadline_ms: Optional[float] = None,
    ) -> None:
        MPI = _mpi()
        if faults is not None:
            raise ReproError(
                "fault injection is thread-backend-only: a FaultPlan "
                "cannot be armed on backend='mpi' (crashed processes have "
                "no sibling-abort recovery); use backend='threads' for "
                "chaos testing"
            )
        world_size = MPI.COMM_WORLD.Get_size()
        if nranks != world_size:
            raise ReproError(
                f"backend='mpi' needs one MPI process per rank: the "
                f"session plans p={nranks} but this job has "
                f"{world_size} process(es) — launch with "
                f"`mpirun -n {nranks} python ...` or plan with "
                f"p={world_size}"
            )
        self.nranks = nranks
        self.name = name
        self.deadline_ms = deadline_ms
        self.world = MpiTransport()
        #: control plane (result/profile allgathers), isolated from the
        #: data plane so collective pickles never collide with in-flight
        #: point-to-point runtime messages
        self._control = MPI.COMM_WORLD.Dup()
        self.local_rank = self._control.Get_rank()
        self._local_comm = Communicator.world_comm(self.world, self.local_rank)
        self._closed = False

    # -- driver side -----------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def comm(self, rank: int) -> Communicator:
        """The resident communicator of ``rank`` — only the local rank's
        communicator exists in this process."""
        if rank != self.local_rank:
            raise ReproError(
                f"rank {rank} is resident in another process; only the "
                f"local rank {self.local_rank}'s communicator is "
                f"available under backend='mpi'"
            )
        return self._local_comm

    def run(
        self,
        rank_fn,
        profiles: Optional[List[RankProfile]] = None,
        label: str = "",
        deadline_ms: Optional[float] = None,
    ) -> Tuple[List[Any], RunReport]:
        """Run ``rank_fn(comm)`` for the local rank, then sync all ranks.

        Every process must call this with the same sequence of bodies
        (normal replicated-driver discipline).  Deterministic rank
        errors raise identically in every process; a deadline expiry
        prints the blocked-state dump and aborts the MPI job, because a
        one-sided hang cannot be recovered across processes.
        """
        if self._closed:
            raise ReproError("worker pool is closed; dispatch is not possible")
        if profiles is None:
            profiles = [RankProfile() for _ in range(self.nranks)]
        if len(profiles) != self.nranks:
            raise ValueError("profiles must have one entry per rank")
        if deadline_ms is None:
            deadline_ms = self.deadline_ms
        r = self.local_rank
        comm = self._local_comm
        profile = profiles[r]
        comm.profile = profile
        self.world.active_profiles[r] = profile
        self.world.deadline = (
            time.perf_counter() + deadline_ms / 1e3
            if deadline_ms is not None
            else None
        )
        tracer = profile.tracer
        try:
            start = time.perf_counter()
            result = rank_fn(comm)
            if tracer is not None:
                tracer.span(
                    f"run {label}".rstrip(), "pool", start, time.perf_counter()
                )
        except SpmdTimeout as exc:
            from repro.runtime.spmd import _format_dump

            print(
                f"[{self.name}] rank {r} deadline expired; aborting the "
                f"MPI job: {exc}" + _format_dump(exc.dump),
                file=sys.stderr,
                flush=True,
            )
            self.world.hard_abort()
            raise  # pragma: no cover - Abort does not return
        finally:
            self.world.deadline = None
        # control-plane sync: ship the local result and the authoritative
        # profile counters; overwrite every remote rank's local mirror
        gathered = self._control.allgather((result, profile.counter_state()))
        results: List[Any] = []
        for rr, (res, counter_state) in enumerate(gathered):
            results.append(res)
            if rr != r:
                profiles[rr].set_counter_state(counter_state)
        return results, RunReport(per_rank=profiles, label=label)

    def run_async(
        self,
        rank_fn,
        profiles: Optional[List[RankProfile]] = None,
        label: str = "",
        deadline_ms: Optional[float] = None,
    ) -> _SettledFuture:
        """Eager dispatch: runs the item to completion and returns a
        pre-settled future (errors raise here, not at ``wait``)."""
        results, report = self.run(
            rank_fn, profiles=profiles, label=label, deadline_ms=deadline_ms
        )
        return _SettledFuture(results, report)

    def close(self, timeout: float = 30.0) -> None:
        """Seal the pool and complete in-flight sends.  Idempotent.

        Non-collective by design (safe from ``__del__``/GC paths); MPI
        resources are reclaimed at ``MPI_Finalize``.
        """
        if self._closed:
            return
        self.world.finalize()
        self._closed = True

    def __enter__(self) -> "MpiWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return (
            f"MpiWorkerPool(nranks={self.nranks}, "
            f"local_rank={self.local_rank}, {state})"
        )

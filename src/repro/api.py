"""High-level public API.

One-call distributed kernels on global operands: the library distributes
the inputs per the algorithm's Table II layout, runs the SPMD kernel on
``p`` virtual ranks, gathers the result, and returns it together with a
:class:`~repro.runtime.profile.RunReport` containing measured traffic and
phase timings (feed it a :class:`~repro.runtime.cost.MachineParams` for
modeled cluster times).

    >>> import numpy as np, repro
    >>> S = repro.erdos_renyi(1024, 1024, nnz_per_row=8, seed=0)
    >>> A = np.random.default_rng(0).standard_normal((1024, 64))
    >>> B = np.random.default_rng(1).standard_normal((1024, 64))
    >>> out, report = repro.fusedmm_a(S, A, B, p=8, c=2,
    ...                               algorithm="1.5d-dense-shift",
    ...                               elision="local-kernel-fusion")

Algorithm may be ``"auto"``: the Table III/IV model picks the cheapest
family for the operands' ``phi = nnz/(n r)``, which is the paper's
bottom-line recommendation.

``comm`` selects the communication layer: ``"dense"`` (default) uses the
ring collectives whose costs the paper analyzes; ``"sparse"`` uses
need-list neighborhood collectives (:mod:`repro.comm_sparse`) that move
only the dense rows the sparse structure touches; ``"auto"`` lets the
extended alpha-beta model pick per run.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from repro.algorithms.fused import FusedResult, run_fusedmm
from repro.algorithms.registry import (
    feasible_replication_factors,
    make_algorithm,
    supported_elisions,
    supports_sparse_comm,
)
from repro.errors import ReproError
from repro.model.costs import PAPER_COST_ROWS
from repro.model.optimal import best_feasible_c, choose_comm_mode, predict_best_algorithm
from repro.runtime.cost import CORI_KNL, MachineParams
from repro.runtime.profile import RankProfile, RunReport
from repro.runtime.spmd import run_spmd
from repro.sparse.coo import CooMatrix
from repro.types import CommMode, Elision, FusedVariant, Mode

ElisionLike = Union[str, Elision]
CommLike = Union[str, CommMode]


def _as_elision(e: ElisionLike) -> Elision:
    return e if isinstance(e, Elision) else Elision(e)


def _resolve_comm(
    comm: CommLike,
    algorithm: str,
    S: CooMatrix,
    r: int,
    p: int,
    c: int,
    elision: Elision,
    machine: MachineParams,
) -> CommMode:
    """Resolve the requested communication mode against the algorithm.

    ``"auto"`` consults the extended alpha-beta model
    (:func:`repro.model.optimal.choose_comm_mode`); an explicit
    ``"sparse"`` on a family without need-list support is an error rather
    than a silent fallback.
    """
    mode = comm if isinstance(comm, CommMode) else CommMode(comm)
    if mode == CommMode.AUTO:
        picked = choose_comm_mode(
            algorithm, S.ncols, r, S.nnz, p, c, machine, elision=elision
        )
        return CommMode(picked)
    if mode == CommMode.SPARSE and not supports_sparse_comm(algorithm):
        raise ReproError(
            f"{algorithm} has no sparse-communication path; "
            f"use comm='dense' or comm='auto'"
        )
    return mode


def _as_coo(S) -> CooMatrix:
    if isinstance(S, CooMatrix):
        return S
    return CooMatrix.from_scipy(S)


def _resolve(
    algorithm: str,
    p: int,
    c: Optional[int],
    S: CooMatrix,
    r: int,
    elision: Elision,
    machine: MachineParams,
    comm: "CommLike" = CommMode.DENSE,
) -> Tuple[str, int]:
    """Resolve 'auto' algorithm and/or automatic replication factor.

    An explicit ``comm="sparse"`` restricts the ``"auto"`` algorithm
    search to the sparse-comm-capable families, so the two auto knobs
    never contradict each other.
    """
    phi = S.nnz / (float(S.ncols) * r)
    if algorithm == "auto":
        keys = PAPER_COST_ROWS
        if (comm if isinstance(comm, CommMode) else CommMode(comm)) == CommMode.SPARSE:
            keys = tuple(
                k for k in PAPER_COST_ROWS if supports_sparse_comm(k.split("/", 1)[0])
            )
        key = predict_best_algorithm(S.ncols, r, S.nnz, p, machine, keys=keys)
        algorithm = key.split("/", 1)[0]
    if c is None:
        key = f"{algorithm}/{elision.value}"
        try:
            c, _ = best_feasible_c(key, S.ncols, r, p, phi, machine)
        except ReproError:
            c = 1
    feas = feasible_replication_factors(algorithm, p)
    if c not in feas:
        raise ReproError(
            f"replication factor c={c} infeasible for {algorithm} on p={p}; "
            f"feasible: {feas}"
        )
    return algorithm, c


def _run_single_mode(
    algorithm: str,
    p: int,
    c: int,
    mode: Mode,
    S: CooMatrix,
    A: Optional[np.ndarray],
    B: Optional[np.ndarray],
    r: int,
    calls: int = 1,
    comm_mode: CommMode = CommMode.DENSE,
):
    alg = make_algorithm(algorithm, p, c)
    plan = alg.plan(S.nrows, S.ncols, r)
    sparse_plans = (
        alg.build_comm_plans(plan, S) if comm_mode == CommMode.SPARSE else None
    )
    label = f"{algorithm}/{mode.value}" + (
        "/sparse-comm" if comm_mode == CommMode.SPARSE else ""
    )
    profiles = [RankProfile() for _ in range(p)]
    locals_: List = []
    for _ in range(max(calls, 1)):
        locals_ = alg.distribute(plan, S, A, B)

        def body(comm):
            ctx = alg.make_context(comm)
            if sparse_plans is None:
                alg.rank_kernel(ctx, plan, locals_[comm.rank], mode)
            else:
                alg.rank_kernel(
                    ctx, plan, locals_[comm.rank], mode,
                    sparse_plan=sparse_plans[comm.rank],
                )

        run_spmd(p, body, profiles=profiles, label=label)
    report = RunReport(per_rank=profiles, label=label, comm_mode=comm_mode.value)
    return alg, plan, locals_, report


def sddmm(
    S,
    A: np.ndarray,
    B: np.ndarray,
    p: int = 4,
    c: Optional[int] = None,
    algorithm: str = "1.5d-dense-shift",
    machine: MachineParams = CORI_KNL,
    calls: int = 1,
    comm: CommLike = CommMode.DENSE,
) -> Tuple[CooMatrix, RunReport]:
    """Distributed ``SDDMM(A, B, S) = S * (A @ B.T)``.

    Returns the sampled output (same pattern as S) and the run report.
    """
    S = _as_coo(S)
    r = A.shape[1]
    algorithm, c = _resolve(algorithm, p, c, S, r, Elision.NONE, machine, comm)
    comm_mode = _resolve_comm(comm, algorithm, S, r, p, c, Elision.NONE, machine)
    alg, plan, locals_, report = _run_single_mode(
        algorithm, p, c, Mode.SDDMM, S, A, B, r, calls, comm_mode
    )
    return alg.collect_sddmm(plan, locals_, S), report


def spmm_a(
    S,
    B: np.ndarray,
    p: int = 4,
    c: Optional[int] = None,
    algorithm: str = "1.5d-dense-shift",
    machine: MachineParams = CORI_KNL,
    calls: int = 1,
    comm: CommLike = CommMode.DENSE,
) -> Tuple[np.ndarray, RunReport]:
    """Distributed ``SpMMA(S, B) = S @ B``."""
    S = _as_coo(S)
    r = B.shape[1]
    algorithm, c = _resolve(algorithm, p, c, S, r, Elision.NONE, machine, comm)
    comm_mode = _resolve_comm(comm, algorithm, S, r, p, c, Elision.NONE, machine)
    alg, plan, locals_, report = _run_single_mode(
        algorithm, p, c, Mode.SPMM_A, S, None, B, r, calls, comm_mode
    )
    return alg.collect_dense_a(plan, locals_), report


def spmm_b(
    S,
    A: np.ndarray,
    p: int = 4,
    c: Optional[int] = None,
    algorithm: str = "1.5d-dense-shift",
    machine: MachineParams = CORI_KNL,
    calls: int = 1,
    comm: CommLike = CommMode.DENSE,
) -> Tuple[np.ndarray, RunReport]:
    """Distributed ``SpMMB(S, A) = S.T @ A``."""
    S = _as_coo(S)
    r = A.shape[1]
    algorithm, c = _resolve(algorithm, p, c, S, r, Elision.NONE, machine, comm)
    comm_mode = _resolve_comm(comm, algorithm, S, r, p, c, Elision.NONE, machine)
    alg, plan, locals_, report = _run_single_mode(
        algorithm, p, c, Mode.SPMM_B, S, A, None, r, calls, comm_mode
    )
    return alg.collect_dense_b(plan, locals_), report


def _fused(
    variant: FusedVariant,
    S,
    A: np.ndarray,
    B: np.ndarray,
    p: int,
    c: Optional[int],
    algorithm: str,
    elision: ElisionLike,
    machine: MachineParams,
    calls: int,
    collect_sddmm: bool,
    comm: CommLike = CommMode.DENSE,
) -> Tuple[np.ndarray, RunReport]:
    S = _as_coo(S)
    el = _as_elision(elision)
    r = A.shape[1]
    algorithm, c = _resolve(algorithm, p, c, S, r, el, machine, comm)
    if el not in supported_elisions(algorithm):
        raise ReproError(
            f"{algorithm} supports {[e.value for e in supported_elisions(algorithm)]}, "
            f"not {el.value}"
        )
    comm_mode = _resolve_comm(comm, algorithm, S, r, p, c, el, machine)
    alg = make_algorithm(algorithm, p, c)
    result: FusedResult = run_fusedmm(
        alg, S, A, B, variant=variant, elision=el, calls=calls,
        collect_sddmm=collect_sddmm, comm_mode=comm_mode,
    )
    return result.output, result.report


def fusedmm_a(
    S,
    A: np.ndarray,
    B: np.ndarray,
    p: int = 4,
    c: Optional[int] = None,
    algorithm: str = "1.5d-dense-shift",
    elision: ElisionLike = Elision.NONE,
    machine: MachineParams = CORI_KNL,
    calls: int = 1,
    collect_sddmm: bool = False,
    comm: CommLike = CommMode.DENSE,
) -> Tuple[np.ndarray, RunReport]:
    """Distributed ``FusedMMA(S, A, B) = SpMMA(SDDMM(A, B, S), B)``."""
    return _fused(
        FusedVariant.FUSED_A, S, A, B, p, c, algorithm, elision, machine, calls,
        collect_sddmm, comm,
    )


def fusedmm_b(
    S,
    A: np.ndarray,
    B: np.ndarray,
    p: int = 4,
    c: Optional[int] = None,
    algorithm: str = "1.5d-dense-shift",
    elision: ElisionLike = Elision.NONE,
    machine: MachineParams = CORI_KNL,
    calls: int = 1,
    collect_sddmm: bool = False,
    comm: CommLike = CommMode.DENSE,
) -> Tuple[np.ndarray, RunReport]:
    """Distributed ``FusedMMB(S, A, B) = SpMMB(SDDMM(A, B, S), A)``."""
    return _fused(
        FusedVariant.FUSED_B, S, A, B, p, c, algorithm, elision, machine, calls,
        collect_sddmm, comm,
    )

"""High-level public API: the session handle plus one-shot wrappers.

The primary entry point is :func:`repro.plan` — it resolves every knob
(algorithm family, replication factor, elision, communication mode) once,
distributes the sparse operand per the chosen Table II layout, builds the
need-list comm plans / packed indexes / buffer pools, and returns a
:class:`~repro.session.Session` whose kernel methods run repeatedly
against that resident distributed state:

    >>> import numpy as np, repro
    >>> S = repro.erdos_renyi(1024, 1024, nnz_per_row=8, seed=0)
    >>> A = np.random.default_rng(0).standard_normal((1024, 64))
    >>> B = np.random.default_rng(1).standard_normal((1024, 64))
    >>> with repro.plan(S, r=64, p=8, c=2, algorithm="1.5d-dense-shift",
    ...                 elision="local-kernel-fusion") as sess:
    ...     for _ in range(5):
    ...         out, report = sess.fusedmm_a(A, B)

Iterative workloads (ALS sweeps, GAT epochs) amortize all driver-side
setup this way: only the dense operands move per call.

The module-level one-shot functions below (:func:`sddmm`, :func:`spmm_a`,
:func:`spmm_b`, :func:`fusedmm_a`, :func:`fusedmm_b`) keep their original
signatures and semantics — each builds a throwaway session, runs
``calls`` kernel invocations against it, and returns the output together
with the accumulated :class:`~repro.runtime.profile.RunReport` (feed the
report a :class:`~repro.runtime.cost.MachineParams` for modeled cluster
times).

Algorithm may be ``"auto"``: the Table III/IV model picks the cheapest
family for the operands' ``phi = nnz/(n r)``, which is the paper's
bottom-line recommendation.

``comm`` selects the communication layer: ``"dense"`` (default) uses the
ring collectives whose costs the paper analyzes; ``"sparse"`` uses
need-list neighborhood collectives (:mod:`repro.comm_sparse`) that move
only the dense rows the sparse structure touches; ``"auto"`` lets the
extended alpha-beta model pick per run.

For traffic made of many small per-user requests instead of one caller
in a loop, :class:`repro.serve.Server` (re-exported here) micro-batches
typed requests into panels on fleets of resident sessions — see
:mod:`repro.serve`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.runtime.cost import CORI_KNL, MachineParams
from repro.runtime.profile import RunReport
from repro.serve.server import Server
from repro.session import (
    CommLike,
    ElisionLike,
    Session,
    _as_coo,
    plan,
)
from repro.sparse.coo import CooMatrix
from repro.types import CommMode, Elision, FusedVariant, Mode

__all__ = [
    "plan",
    "Session",
    "Server",
    "sddmm",
    "spmm_a",
    "spmm_b",
    "fusedmm_a",
    "fusedmm_b",
]


def _one_shot_session(
    S,
    r: int,
    p: int,
    c: Optional[int],
    algorithm: str,
    elision: ElisionLike,
    machine: MachineParams,
    comm: CommLike,
    overlap: str = "auto",
    trace: str = "off",
    deadline_ms: Optional[float] = None,
    retries: int = 0,
    backend: str = "threads",
    kernels: str = "numpy",
) -> Session:
    """A lazily-distributed session for a single wrapper invocation.

    ``eager=False`` so a fused variant that resolves to the transposed
    native procedure only ever distributes the orientation it uses.
    ``persistent=False`` keeps the one-shot wrappers spawn-per-call: a
    single kernel call cannot amortize a resident worker pool, and a
    throwaway session must not hold ``p`` warm threads past its return
    (iterative callers should hold a :func:`plan` session instead).
    Under ``backend="mpi"`` the wrappers run persistent instead — the
    ranks are mpirun-resident processes, so there are no threads to
    spawn or hold, and spawn-per-call is a thread-only mode.
    """
    return Session(
        S, r, p=p, c=c, algorithm=algorithm, elision=elision, comm=comm,
        machine=machine, eager=False, persistent=(backend != "threads"),
        overlap=overlap, trace=trace, deadline_ms=deadline_ms,
        retries=retries, backend=backend, kernels=kernels,
    )


def sddmm(
    S,
    A: np.ndarray,
    B: np.ndarray,
    p: int = 4,
    c: Optional[int] = None,
    algorithm: str = "1.5d-dense-shift",
    machine: MachineParams = CORI_KNL,
    calls: int = 1,
    comm: CommLike = CommMode.DENSE,
    overlap: str = "auto",
    trace: str = "off",
    deadline_ms: Optional[float] = None,
    retries: int = 0,
    backend: str = "threads",
    kernels: str = "numpy",
) -> Tuple[CooMatrix, RunReport]:
    """Distributed ``SDDMM(A, B, S) = S * (A @ B.T)``.

    Returns the sampled output (same pattern as S) and the run report.
    With ``trace="on"`` the report's profiles carry span tracers — feed
    the report to :func:`repro.export_chrome_trace` /
    :meth:`repro.TimelineStats.from_report`.  ``deadline_ms`` /
    ``retries`` arm the watchdog and retry machinery (see
    :func:`repro.plan`).
    """
    sess = _one_shot_session(
        _as_coo(S), A.shape[1], p, c, algorithm, Elision.NONE, machine, comm,
        overlap, trace, deadline_ms, retries, backend, kernels,
    )
    for _ in range(max(calls, 1) - 1):  # collect only after the last call
        sess._run_mode(Mode.SDDMM, A, B)
    return sess.sddmm(A, B)


def spmm_a(
    S,
    B: np.ndarray,
    p: int = 4,
    c: Optional[int] = None,
    algorithm: str = "1.5d-dense-shift",
    machine: MachineParams = CORI_KNL,
    calls: int = 1,
    comm: CommLike = CommMode.DENSE,
    overlap: str = "auto",
    trace: str = "off",
    deadline_ms: Optional[float] = None,
    retries: int = 0,
    backend: str = "threads",
    kernels: str = "numpy",
) -> Tuple[np.ndarray, RunReport]:
    """Distributed ``SpMMA(S, B) = S @ B``."""
    sess = _one_shot_session(
        _as_coo(S), B.shape[1], p, c, algorithm, Elision.NONE, machine, comm,
        overlap, trace, deadline_ms, retries, backend, kernels,
    )
    for _ in range(max(calls, 1) - 1):  # collect only after the last call
        sess._run_mode(Mode.SPMM_A, None, B)
    return sess.spmm_a(B)


def spmm_b(
    S,
    A: np.ndarray,
    p: int = 4,
    c: Optional[int] = None,
    algorithm: str = "1.5d-dense-shift",
    machine: MachineParams = CORI_KNL,
    calls: int = 1,
    comm: CommLike = CommMode.DENSE,
    overlap: str = "auto",
    trace: str = "off",
    deadline_ms: Optional[float] = None,
    retries: int = 0,
    backend: str = "threads",
    kernels: str = "numpy",
) -> Tuple[np.ndarray, RunReport]:
    """Distributed ``SpMMB(S, A) = S.T @ A``."""
    sess = _one_shot_session(
        _as_coo(S), A.shape[1], p, c, algorithm, Elision.NONE, machine, comm,
        overlap, trace, deadline_ms, retries, backend, kernels,
    )
    for _ in range(max(calls, 1) - 1):  # collect only after the last call
        sess._run_mode(Mode.SPMM_B, A, None)
    return sess.spmm_b(A)


def _fused(
    variant: FusedVariant,
    S,
    A: np.ndarray,
    B: np.ndarray,
    p: int,
    c: Optional[int],
    algorithm: str,
    elision: ElisionLike,
    machine: MachineParams,
    calls: int,
    collect_sddmm: bool,
    comm: CommLike = CommMode.DENSE,
    overlap: str = "auto",
    trace: str = "off",
    deadline_ms: Optional[float] = None,
    retries: int = 0,
    backend: str = "threads",
    kernels: str = "numpy",
) -> Tuple[np.ndarray, RunReport]:
    sess = _one_shot_session(
        _as_coo(S), A.shape[1], p, c, algorithm, elision, machine, comm,
        overlap, trace, deadline_ms, retries, backend, kernels,
    )
    ncalls = max(calls, 1)
    for i in range(ncalls):
        out, _sddmm, report = sess._run_fused(
            variant, A, B, collect_sddmm, collect=(i == ncalls - 1)
        )
    return out, report


def fusedmm_a(
    S,
    A: np.ndarray,
    B: np.ndarray,
    p: int = 4,
    c: Optional[int] = None,
    algorithm: str = "1.5d-dense-shift",
    elision: ElisionLike = Elision.NONE,
    machine: MachineParams = CORI_KNL,
    calls: int = 1,
    collect_sddmm: bool = False,
    comm: CommLike = CommMode.DENSE,
    overlap: str = "auto",
    trace: str = "off",
    deadline_ms: Optional[float] = None,
    retries: int = 0,
    backend: str = "threads",
    kernels: str = "numpy",
) -> Tuple[np.ndarray, RunReport]:
    """Distributed ``FusedMMA(S, A, B) = SpMMA(SDDMM(A, B, S), B)``."""
    return _fused(
        FusedVariant.FUSED_A, S, A, B, p, c, algorithm, elision, machine, calls,
        collect_sddmm, comm, overlap, trace, deadline_ms, retries, backend,
        kernels,
    )


def fusedmm_b(
    S,
    A: np.ndarray,
    B: np.ndarray,
    p: int = 4,
    c: Optional[int] = None,
    algorithm: str = "1.5d-dense-shift",
    elision: ElisionLike = Elision.NONE,
    machine: MachineParams = CORI_KNL,
    calls: int = 1,
    collect_sddmm: bool = False,
    comm: CommLike = CommMode.DENSE,
    overlap: str = "auto",
    trace: str = "off",
    deadline_ms: Optional[float] = None,
    retries: int = 0,
    backend: str = "threads",
    kernels: str = "numpy",
) -> Tuple[np.ndarray, RunReport]:
    """Distributed ``FusedMMB(S, A, B) = SpMMB(SDDMM(A, B, S), A)``."""
    return _fused(
        FusedVariant.FUSED_B, S, A, B, p, c, algorithm, elision, machine, calls,
        collect_sddmm, comm, overlap, trace, deadline_ms, retries, backend,
        kernels,
    )

"""Micro-batcher: coalesce same-model requests into dense-panel batches.

Requests arrive one at a time; kernels want panels.  The batcher holds a
bounded pending queue per model and releases a *batch* — up to the
model's ``batch_width`` compatible requests — when either trigger fires:

* the **coalescing window** expires: the oldest pending request has
  waited ``window_ms`` (bounded added latency), or
* the **width trigger**: enough compatible requests are pending to fill
  a panel (no reason to wait further).

Compatibility is (model, tenant) equality — a panel is one kernel call
on one session binding one tenant's values — plus the model's
:meth:`~repro.serve.model.ServeModel.admit` hook (e.g. GAT defers a
duplicate node id to the next batch rather than overwrite its panel
row).  Skipped-over requests keep their queue position.

Admission control is at the front door: :meth:`offer` raises
:class:`~repro.errors.ServeOverload` once ``max_queue`` requests are
pending, so overload is a typed, deterministic reject — not an unbounded
queue and a blown latency SLO.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, List, Optional

from repro.errors import ReproError, ServeOverload
from repro.serve.model import ServeModel
from repro.serve.request import Envelope

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Bounded pending queue + batch release policy for one model.

    Not thread-safe by itself — the server serializes access (its
    dispatcher owns the batcher; ``submit`` runs under the server lock).
    """

    def __init__(
        self, model: ServeModel, window_ms: float, max_queue: int
    ) -> None:
        if max_queue < 1:
            raise ReproError("max_queue must be at least 1")
        self.model = model
        self.window_ms = float(window_ms)
        self.max_queue = int(max_queue)
        self._pending: Deque[Envelope] = deque()
        self.rejected = 0

    # -- admission ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._pending)

    def offer(self, env: Envelope) -> None:
        """Admit one request, or raise :class:`ServeOverload` (typed,
        deterministic: the queue bound is exact, the request is not
        enqueued, and the reject is counted)."""
        if len(self._pending) >= self.max_queue:
            self.rejected += 1
            raise ServeOverload(
                f"serving queue for model {self.model.model_id!r} is at "
                f"capacity ({self.max_queue} pending); shed load or raise "
                "max_queue"
            )
        self._pending.append(env)

    # -- release policy -------------------------------------------------

    def ready(self, now: Optional[float] = None) -> bool:
        """Whether a batch should be released right now."""
        if not self._pending:
            return False
        now = time.perf_counter() if now is None else now
        if len(self._pending) >= self.model.batch_width:
            return True
        oldest = self._pending[0]
        return (now - oldest.t_submit) * 1e3 >= self.window_ms

    def next_flush_in_s(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds until the window trigger fires (None when idle) — the
        dispatcher thread's wait horizon."""
        if not self._pending:
            return None
        now = time.perf_counter() if now is None else now
        if len(self._pending) >= self.model.batch_width:
            return 0.0
        oldest = self._pending[0]
        return max(0.0, self.window_ms / 1e3 - (now - oldest.t_submit))

    def take_batch(self) -> List[Envelope]:
        """Pop the next batch: up to ``batch_width`` requests compatible
        with the *oldest* pending request (same tenant, model-admitted).

        Incompatible requests are skipped over but keep their queue
        position — the following batch starts from the oldest survivor,
        so no request starves behind a hot tenant.
        """
        if not self._pending:
            return []
        head = self._pending[0]
        batch: List[Envelope] = []
        kept: List[Envelope] = []
        while self._pending and len(batch) < self.model.batch_width:
            env = self._pending.popleft()
            if env.request.tenant_id != head.request.tenant_id or not (
                self.model.admit([b.request for b in batch], env.request)
            ):
                kept.append(env)
                continue
            batch.append(env)
        self._pending.extendleft(reversed(kept))
        return batch

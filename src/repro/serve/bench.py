"""Serving benchmark driver: batched vs unbatched under R-MAT traffic.

Builds power-law serving workloads (R-MAT interaction graphs from
:mod:`repro.sparse.generate`; request users/nodes sampled proportionally
to degree, the hub-heavy skew production traffic shows) and measures the
micro-batching front-end two ways:

* **closed loop** — a fixed request set submitted back-to-back through
  the deterministic inline server, once with micro-batching
  (``batch_width`` panels) and once unbatched (``batch_width=1``: every
  request pays a full session call).  The headline is *amortized
  per-request latency* — total serving wall time over requests — which
  is what a saturated front-end's throughput is made of.
* **open loop** — Poisson arrivals (seeded) against the background
  server, reporting the request-latency percentiles and throughput a
  client actually observes, queue wait included.

Used by ``python -m repro.cli serve-bench`` and
``benchmarks/bench_serve.py`` (which records into
``BENCH_sparse_comm.json`` for the CI gate).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serve.request import AlsTopKRequest, GatEdgeScoreRequest, Request
from repro.serve.server import Server
from repro.sparse.coo import CooMatrix
from repro.sparse.generate import rmat

__all__ = ["build_workloads", "run_closed_loop", "run_open_loop", "bench_serve"]


def _degree_weighted_choice(
    rng: np.random.Generator, graph: CooMatrix, size: int, n: int
) -> np.ndarray:
    """Sample ids proportionally to (1 + out-degree): power-law traffic."""
    deg = np.bincount(graph.rows, minlength=n).astype(np.float64) + 1.0
    return rng.choice(n, size=size, p=deg / deg.sum())


def build_workloads(
    n_users: int = 256,
    n_items: int = 192,
    d: int = 16,
    r_in: int = 16,
    p: int = 4,
    batch_width: int = 16,
    n_requests: int = 64,
    k: int = 10,
    seed: int = 0,
    workloads: Sequence[str] = ("als", "gat"),
) -> Dict[str, Tuple[Any, List[Request]]]:
    """``{workload: (ServeModel, requests)}`` for the requested workloads.

    Imports the app models lazily (apps depend on the serve package, not
    the other way round).
    """
    from repro.apps.als import AlsServeModel
    from repro.apps.gat import GatServeModel

    rng = np.random.default_rng(seed)
    out: Dict[str, Tuple[Any, List[Request]]] = {}

    if "als" in workloads:
        interactions = rmat(
            scale=8, edge_factor=6.0, seed=seed, square_shape=n_users,
            values="ones",
        )
        seen = CooMatrix(
            interactions.rows, interactions.cols % n_items,
            np.ones(interactions.nnz), (n_users, n_items), dedupe=True,
        )
        user_factors = rng.standard_normal((n_users, d))
        item_factors = rng.standard_normal((n_items, d))
        model = AlsServeModel(
            user_factors, item_factors, seen=seen, p=p,
            batch_width=batch_width,
        )
        users = _degree_weighted_choice(rng, interactions, n_requests, n_users)
        reqs: List[Request] = [
            AlsTopKRequest(model_id="als", user=int(u), k=k) for u in users
        ]
        out["als"] = (model, reqs)

    if "gat" in workloads:
        adjacency = rmat(
            scale=8, edge_factor=6.0, seed=seed + 1, square_shape=n_users,
        )
        features = rng.standard_normal((n_users, r_in))
        model_g = GatServeModel(
            adjacency, features, p=p, batch_width=batch_width, seed=seed,
        )
        nodes = _degree_weighted_choice(
            rng, adjacency, 4 * n_requests, n_users
        )
        # distinct nodes per run: duplicates would defer across batches
        # and make the batched/unbatched comparison uneven
        uniq = list(dict.fromkeys(int(v) for v in nodes))[:n_requests]
        reqs_g: List[Request] = [
            GatEdgeScoreRequest(model_id="gat", node=v) for v in uniq
        ]
        out["gat"] = (model_g, reqs_g)

    return out


def run_closed_loop(
    model: Any, requests: Sequence[Request], max_queue: Optional[int] = None
) -> Dict[str, Any]:
    """Submit every request back-to-back through the inline server and
    drain; returns the stats snapshot plus amortized per-request wall ms."""
    with Server(
        model, background=False,
        max_queue=max_queue or max(len(requests), 1),
    ) as srv:
        t0 = time.perf_counter()
        futures = [srv.submit(req) for req in requests]
        srv.drain()
        wall_s = time.perf_counter() - t0
        assert all(f.done() for f in futures)
        snap = srv.stats()
    snap["wall_s"] = wall_s
    snap["amortized_ms_per_request"] = (
        wall_s * 1e3 / max(len(requests), 1)
    )
    return snap


def run_open_loop(
    model: Any,
    requests: Sequence[Request],
    rate_rps: float,
    seed: int = 0,
    window_ms: float = 5.0,
    max_queue: Optional[int] = None,
) -> Dict[str, Any]:
    """Poisson arrivals (seeded exponential gaps) against the background
    server; returns the stats snapshot the open-loop client observed."""
    rng = np.random.default_rng(seed)
    gaps_s = rng.exponential(1.0 / rate_rps, size=len(requests))
    with Server(
        model, background=True, window_ms=window_ms,
        max_queue=max_queue or max(len(requests), 1),
    ) as srv:
        t0 = time.perf_counter()
        next_t = t0
        for req, gap in zip(requests, gaps_s):
            next_t += gap
            delay = next_t - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            srv.submit(req)
        # settle everything before the stats snapshot
        deadline = time.perf_counter() + 60.0
        while srv.pending() and time.perf_counter() < deadline:
            time.sleep(0.005)
        srv.drain()
        wall_s = time.perf_counter() - t0
        snap = srv.stats()
    snap["wall_s"] = wall_s
    snap["offered_rps"] = rate_rps
    return snap


def _best_closed_loop(
    model: Any, requests: Sequence[Request], rounds: int
) -> Dict[str, Any]:
    """Best-of-``rounds`` closed loop (same idiom as ``bench_session.py``'s
    min-over-rounds: robust to scheduler noise on shared runners, where a
    single slow round would poison a mean).  The base snapshot is the round
    with the lowest amortized per-request cost; the gate headlines —
    latency percentiles and throughput — are then floored/ceiled across
    *all* rounds, because the chosen round's tail is itself one noisy
    sample while the min-across-rounds tail is a stable steady-state
    estimate (a closed loop's p99 tracks its total wall time)."""
    snaps: List[Dict[str, Any]] = [
        run_closed_loop(model, requests) for _ in range(max(rounds, 1))
    ]
    best = min(snaps, key=lambda s: s["amortized_ms_per_request"])
    for key in ("latency_ms", "queue_ms"):
        best[key] = {
            q: min(s[key][q] for s in snaps) for q in best[key]
        }
    best["throughput_rps"] = max(s["throughput_rps"] for s in snaps)
    best["wall_s"] = min(s["wall_s"] for s in snaps)
    return best


def bench_serve(
    n_users: int = 256,
    n_items: int = 192,
    d: int = 16,
    p: int = 4,
    batch_width: int = 16,
    n_requests: int = 64,
    seed: int = 0,
    open_loop_rate_rps: Optional[float] = None,
    workloads: Sequence[str] = ("als", "gat"),
    rounds: int = 5,
) -> Dict[str, Any]:
    """The full serving benchmark: per workload, best-of-``rounds``
    closed-loop batched vs unbatched (+ optional open-loop Poisson on the
    batched config)."""
    record: Dict[str, Any] = {
        "config": {
            "n_users": n_users, "n_items": n_items, "d": d, "p": p,
            "batch_width": batch_width, "n_requests": n_requests,
            "seed": seed,
        }
    }
    built = build_workloads(
        n_users=n_users, n_items=n_items, d=d, p=p,
        batch_width=batch_width, n_requests=n_requests, seed=seed,
        workloads=workloads,
    )
    for name, (model, requests) in built.items():
        batched = _best_closed_loop(model, requests, rounds)
        model.batch_width = 1
        unbatched = _best_closed_loop(model, requests, rounds)
        model.batch_width = batch_width
        entry: Dict[str, Any] = {
            "batched": batched,
            "unbatched": unbatched,
            "amortized_speedup": (
                unbatched["amortized_ms_per_request"]
                / max(batched["amortized_ms_per_request"], 1e-12)
            ),
            "throughput_ratio": (
                batched["throughput_rps"]
                / max(unbatched["throughput_rps"], 1e-12)
            ),
        }
        if open_loop_rate_rps:
            entry["open_loop"] = run_open_loop(
                model, requests, rate_rps=open_loop_rate_rps, seed=seed
            )
        record[name] = entry
    return record

"""The serving front door: ``repro.serve.Server``.

Glues the layers together: typed requests (:mod:`repro.serve.request`)
are admitted into per-model micro-batchers (:mod:`repro.serve.batcher`),
released batches run on fleets of resident sessions
(:mod:`repro.serve.fleet`), and every settlement feeds the stats layer
(:mod:`repro.serve.stats`).

Two driving modes:

* ``background=True`` (production shape): a single dispatcher thread
  owns every session — satisfying the sessions' single-caller contract —
  waking on submissions and coalescing-window expiries.  Clients on any
  number of threads ``submit()`` and wait their
  :class:`~repro.serve.request.ServeFuture`.
* ``background=False`` (deterministic shape, for tests and closed-loop
  benchmarks): nothing runs until the caller invokes :meth:`flush` /
  :meth:`drain`, so batch composition is exactly reproducible.

Example::

    model = AlsServeModel(user_factors, item_factors, seen=C_obs, p=4)
    with Server(model, window_ms=2.0, max_queue=256) as srv:
        fut = srv.submit(AlsTopKRequest(model_id="als", user=7, k=10))
        completion = fut.result(timeout=30)
        items, scores = completion.value
    print(srv.stats()["latency_ms"])   # {'p50': ..., 'p95': ..., 'p99': ...}
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import ReproError, ServeOverload
from repro.serve.batcher import MicroBatcher
from repro.serve.fleet import SessionFleet
from repro.serve.model import ServeModel
from repro.serve.request import Completion, Envelope, Request, ServeFuture
from repro.serve.stats import ServeStats

__all__ = ["Server"]


class Server:
    """Micro-batched multi-tenant inference front-end.

    Parameters
    ----------
    models:
        One :class:`~repro.serve.model.ServeModel` or an iterable of them
        (one batcher + one session fleet per model id).
    replicas:
        Resident sessions per model.  Even one replica double-buffers
        (async dispatch); more overlap independent batches further.
    window_ms:
        Coalescing window: a pending request waits at most this long for
        batch-mates before its batch is released.
    max_queue:
        Admission bound per model; exceeding it raises
        :class:`~repro.errors.ServeOverload` from :meth:`submit`.
    default_deadline_ms:
        End-to-end budget stamped onto requests that carry none
        (``None`` = no deadline).
    background:
        Start the dispatcher thread (see module docstring).
    """

    def __init__(
        self,
        models: Union[ServeModel, Iterable[ServeModel]],
        replicas: int = 1,
        window_ms: float = 2.0,
        max_queue: int = 64,
        default_deadline_ms: Optional[float] = None,
        background: bool = True,
    ) -> None:
        if isinstance(models, ServeModel):
            models = [models]
        models = list(models)
        if not models:
            raise ReproError("a server needs at least one model")
        self.default_deadline_ms = default_deadline_ms
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._stats = ServeStats()
        self._stats_lock = threading.Lock()
        self._batchers: Dict[str, MicroBatcher] = {}
        self._fleets: Dict[str, SessionFleet] = {}
        for model in models:
            if model.model_id in self._batchers:
                raise ReproError(f"duplicate model id {model.model_id!r}")
            self._batchers[model.model_id] = MicroBatcher(
                model, window_ms=window_ms, max_queue=max_queue
            )
            self._fleets[model.model_id] = SessionFleet(
                model, replicas=replicas, on_complete=self._on_complete
            )
        self._closed = False
        self._stop = False
        self._flush_requested = False
        self._dispatching = False
        self._thread: Optional[threading.Thread] = None
        if background:
            self._thread = threading.Thread(
                target=self._dispatch_loop, name="serve-dispatch", daemon=True
            )
            self._thread.start()

    # -- client side ----------------------------------------------------

    def submit(self, request: Request) -> ServeFuture:
        """Admit one request; returns its :class:`ServeFuture`.

        Raises :class:`~repro.errors.ServeOverload` when the model's
        queue is at capacity (the reject is counted in :meth:`stats`;
        the request was not enqueued).
        """
        if self._closed:
            raise ReproError("server is closed")
        batcher = self._batchers.get(request.model_id)
        if batcher is None:
            raise ReproError(
                f"unknown model {request.model_id!r}; serving "
                f"{sorted(self._batchers)}"
            )
        if request.deadline_ms is None:
            request.deadline_ms = self.default_deadline_ms
        env = Envelope(
            request=request, future=ServeFuture(request),
            t_submit=time.perf_counter(),
        )
        with self._cond:
            try:
                batcher.offer(env)
            except ServeOverload:
                with self._stats_lock:
                    self._stats.record(
                        Completion(request=request, outcome="rejected")
                    )
                raise
            self._cond.notify()
        return env.future

    # -- dispatch (background thread / inline flush) --------------------

    def _on_complete(self, completion: Completion) -> None:
        with self._stats_lock:
            self._stats.record(completion)

    def _take_ready(self, force: bool) -> List[Tuple[str, List[Envelope]]]:
        """Pop every releasable batch (caller holds the lock)."""
        batches: List[Tuple[str, List[Envelope]]] = []
        for mid, batcher in self._batchers.items():
            while len(batcher) and (force or batcher.ready()):
                batch = batcher.take_batch()
                if not batch:
                    break
                batches.append((mid, batch))
        return batches

    def _run_batches(self, batches: List[Tuple[str, List[Envelope]]]) -> None:
        for mid, batch in batches:
            self._fleets[mid].dispatch(batch)
            with self._stats_lock:
                self._stats.record_batch()

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                while not self._stop:
                    pending = any(len(b) for b in self._batchers.values())
                    if pending and self._flush_requested:
                        break
                    if any(b.ready() for b in self._batchers.values()):
                        break
                    horizons = [
                        b.next_flush_in_s()
                        for b in self._batchers.values()
                        if len(b)
                    ]
                    self._cond.wait(
                        timeout=min(horizons) if horizons else None
                    )
                batches = self._take_ready(
                    force=self._stop or self._flush_requested
                )
                # flush() waiters need the queues empty AND the kernel
                # calls below finished before they may touch the sessions
                self._dispatching = bool(batches)
                self._cond.notify_all()
                if self._stop and not batches:
                    return
            # kernel calls run outside the lock: submissions keep flowing
            # while a batch executes
            try:
                self._run_batches(batches)
            finally:
                with self._cond:
                    self._dispatching = False
                    self._cond.notify_all()

    def flush(self) -> None:
        """Release every pending request as batches *now*, bypassing the
        coalescing window.  Batches still respect ``batch_width`` and
        tenant/admit compatibility.

        Inline mode (``background=False``) dispatches on the calling
        thread — the deterministic manual clock tick.  Background mode
        asks the dispatcher thread to do it (sessions are single-caller)
        and waits until the queues are empty.
        """
        if self._thread is not None:
            with self._cond:
                self._flush_requested = True
                self._cond.notify_all()
                # wait out both the queues and any batch the dispatcher
                # is currently running: on return the sessions are only
                # touched by whoever settles next (drain/close), never by
                # two threads at once
                while (
                    any(len(b) for b in self._batchers.values())
                    or self._dispatching
                ):
                    self._cond.wait(timeout=0.05)
                self._flush_requested = False
            return
        while True:
            with self._lock:
                batches = self._take_ready(force=True)
            if not batches:
                return
            self._run_batches(batches)

    def drain(self) -> None:
        """Flush, then settle every in-flight batch: on return every
        admitted request has a completion and the fleets are quiescent
        (session metrics are folded into :meth:`stats`).  In background
        mode, call only while no new submissions race the drain.
        """
        self.flush()
        for fleet in self._fleets.values():
            fleet.settle_all()
        self._refresh_session_records()

    def _refresh_session_records(self) -> None:
        records: List[dict] = []
        for mid, fleet in self._fleets.items():
            for rec in fleet.session_metrics():
                records.append({**rec, "model_id": mid})
        with self._stats_lock:
            self._stats.session_records = records

    # -- observability --------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """JSON-ready snapshot (see :class:`~repro.serve.stats.ServeStats`).

        Request-level fields are live; the ``session_calls`` block
        reflects the fleets as of the last :meth:`drain`/:meth:`close`.
        """
        with self._stats_lock:
            return self._stats.snapshot()

    def pending(self) -> int:
        """Requests admitted but not yet dispatched (all models)."""
        with self._lock:
            return sum(len(b) for b in self._batchers.values())

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Stop the dispatcher, flush + settle everything, and join every
        session's worker pool (thread-leak gated).  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._thread is not None:
            with self._cond:
                self._stop = True
                self._cond.notify_all()
            self._thread.join(timeout=60.0)
            if self._thread.is_alive():  # pragma: no cover - watchdog path
                raise ReproError("serve dispatcher failed to stop in 60s")
            self._thread = None
        self.flush()
        for fleet in self._fleets.values():
            fleet.close()
        self._refresh_session_records()

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

"""Serving statistics: request-latency percentiles, throughput, outcomes.

One :class:`ServeStats` accumulates every :class:`Completion` the fleet
delivers plus the admission-control rejects, and snapshots into a
JSON-ready dict: p50/p95/p99 end-to-end request latency, queue-wait
percentiles, a batch-size histogram, throughput (settled requests per
second of serving wall time) and per-outcome counts.  Session-side
per-call records (PR 6/7 ``Session.metrics()``) are merged in by the
server at drain time, so the snapshot ties request-level tails back to
the kernel calls that produced them.
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Any, Dict, List, Optional

import numpy as np

from repro.serve.request import OUTCOMES, Completion

__all__ = ["ServeStats", "percentiles"]

#: the percentile levels every latency summary reports
PCTS = (50.0, 95.0, 99.0)


def percentiles(samples: List[float]) -> Dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` (zeros when empty)."""
    if not samples:
        return {f"p{int(q)}": 0.0 for q in PCTS}
    arr = np.asarray(samples, dtype=np.float64)
    vals = np.percentile(arr, PCTS)
    return {f"p{int(q)}": float(v) for q, v in zip(PCTS, vals)}


class ServeStats:
    """Accumulator for one server's lifetime (reset with :meth:`reset`)."""

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.latency_ms: List[float] = []
        self.queue_ms: List[float] = []
        self.service_ms: List[float] = []
        self.batch_sizes: List[int] = []
        self.outcomes: Counter = Counter()
        self.batches = 0
        self.session_records: List[dict] = []
        self._t_first: Optional[float] = None
        self._t_last: Optional[float] = None

    # -- recording ------------------------------------------------------

    def record(self, completion: Completion) -> None:
        """One settled request (every outcome, including rejects)."""
        now = time.perf_counter()
        if self._t_first is None:
            self._t_first = now
        self._t_last = now
        self.outcomes[completion.outcome] += 1
        if completion.outcome == "rejected":
            return
        self.latency_ms.append(completion.latency_ms)
        self.queue_ms.append(completion.queue_ms)
        self.service_ms.append(completion.service_ms)
        self.batch_sizes.append(completion.batch_size)

    def record_batch(self) -> None:
        self.batches += 1

    def merge_session_records(self, records: List[dict]) -> None:
        """Attach the fleet's per-call ``Session.metrics()`` records."""
        self.session_records.extend(records)

    # -- reporting ------------------------------------------------------

    @property
    def served(self) -> int:
        """Requests that reached a session (everything but rejects)."""
        return len(self.latency_ms)

    def throughput_rps(self) -> float:
        """Settled requests per second of observed serving wall time."""
        if self._t_first is None or self._t_last is None:
            return 0.0
        span = self._t_last - self._t_first
        if span <= 0:
            # all settlements landed in one clock tick (tiny smoke runs):
            # report the count rather than an infinite rate
            return float(self.served)
        return self.served / span

    def batch_histogram(self) -> Dict[str, int]:
        """``{batch_size: count-of-requests}`` with string keys (JSON)."""
        hist = Counter(self.batch_sizes)
        return {str(k): int(v) for k, v in sorted(hist.items())}

    def mean_batch_size(self) -> float:
        if not self.batch_sizes:
            return 0.0
        return float(np.mean(self.batch_sizes))

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready summary of everything recorded so far."""
        out: Dict[str, Any] = {
            "served": self.served,
            "batches": self.batches,
            "throughput_rps": self.throughput_rps(),
            "latency_ms": percentiles(self.latency_ms),
            "queue_ms": percentiles(self.queue_ms),
            "service_ms": percentiles(self.service_ms),
            "batch_size_mean": self.mean_batch_size(),
            "batch_size_hist": self.batch_histogram(),
            "outcomes": {k: int(self.outcomes.get(k, 0)) for k in OUTCOMES},
        }
        if self.session_records:
            calls = self.session_records
            out["session_calls"] = {
                "count": len(calls),
                "wall_ms": percentiles([r["wall_ms"] for r in calls]),
                "outcomes": dict(
                    Counter(r.get("outcome", "ok") for r in calls)
                ),
                "retries": int(sum(r.get("retries", 0) for r in calls)),
            }
        return out

"""repro.serve — micro-batched multi-tenant inference front-end.

The serving subsystem turns per-user requests into the dense operand
panels the resident kernels already eat (ROADMAP item 3): requests for
the same model coalesce into one panel and **one** ``Session`` call, run
on a fleet of resident sessions with pipelined (async) dispatch,
admission control, per-request deadlines on PR 7's watchdog/outcome
machinery, and p50/p95/p99 + throughput reporting.

Layers (each its own module):

* :mod:`~repro.serve.request` — typed requests, completions, futures
* :mod:`~repro.serve.model` — the request <-> panel codec contract
  (concrete models: :class:`repro.apps.als.AlsServeModel`,
  :class:`repro.apps.gat.GatServeModel`)
* :mod:`~repro.serve.batcher` — coalescing windows + admission control
* :mod:`~repro.serve.fleet` — session replicas, round-robin pipelined
  dispatch, per-tenant value rebinding
* :mod:`~repro.serve.stats` — latency percentiles, batch histograms,
  throughput, outcome counts
* :mod:`~repro.serve.server` — the front door, :class:`Server`
"""

from repro.errors import ServeOverload, SessionBusyError
from repro.serve.batcher import MicroBatcher
from repro.serve.fleet import SessionFleet
from repro.serve.model import ServeModel
from repro.serve.request import (
    AlsTopKRequest,
    Completion,
    GatEdgeScoreRequest,
    Request,
    ServeFuture,
)
from repro.serve.server import Server
from repro.serve.stats import ServeStats

__all__ = [
    "Server",
    "ServeModel",
    "MicroBatcher",
    "SessionFleet",
    "ServeStats",
    "Request",
    "AlsTopKRequest",
    "GatEdgeScoreRequest",
    "Completion",
    "ServeFuture",
    "ServeOverload",
    "SessionBusyError",
]

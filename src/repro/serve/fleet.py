"""Session fleet: resident replicas per model with pipelined dispatch.

One :class:`SessionFleet` owns ``replicas`` resident
:class:`~repro.session.Session`\\ s for a single model.  Batches are
dispatched round-robin with the sessions' *async* entry points
(``spmm_a_async`` / ``sddmm_async`` — PR 5's pipelining), and the
previous batch on a session is settled only **after** the next one is
launched: the launch path stages the new panel's dense scatter while the
old batch's SPMD ranks are still computing, so even a single-replica
fleet double-buffers (driver scatter of batch ``k+1`` hidden under batch
``k``'s run).

Multi-tenancy rides on ``Session.update_values``: all tenants of a model
share one planned sparse *structure* (comm plans and packed indexes stay
valid); when the dispatched batch's tenant differs from the session's
currently-bound tenant, only the values are rebound in place.

Per-request deadlines propagate onto PR 7's machinery: the batch's
session call is armed with the largest remaining member budget
(``Session.set_deadline`` → pool watchdog), and members whose own budget
lapsed by settle time are completed with outcome ``"timeout"`` — the
rest of the batch settles normally.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import ReproError, SpmdTimeout
from repro.serve.model import ServeModel
from repro.serve.request import Completion, Envelope, batch_deadline_ms
from repro.session import Session, SessionFuture

__all__ = ["SessionFleet", "Ticket"]


@dataclass
class Ticket:
    """One in-flight batch: its envelopes and the session future."""

    envelopes: List[Envelope]
    future: SessionFuture
    session_index: int
    tenant_id: str
    deadline_ms: Optional[float] = None
    settled: bool = field(default=False)


class SessionFleet:
    """Round-robin fleet of resident sessions for one model."""

    def __init__(
        self,
        model: ServeModel,
        replicas: int = 1,
        on_complete: Optional[Callable[[Completion], None]] = None,
    ) -> None:
        if replicas < 1:
            raise ReproError("a fleet needs at least one session replica")
        self.model = model
        self.on_complete = on_complete or (lambda completion: None)
        self.sessions: List[Session] = [
            model.make_session() for _ in range(replicas)
        ]
        self._bound_tenant = ["default"] * replicas
        self._tickets: List[Optional[Ticket]] = [None] * replicas
        self._rr = 0
        self._closed = False

    # -- dispatch -------------------------------------------------------

    def dispatch(self, batch: List[Envelope]) -> None:
        """Launch one coalesced batch on the next round-robin session.

        Any previously in-flight batch on that session is settled *after*
        the new launch (see module docstring), and every settlement is
        delivered through ``on_complete``.
        """
        if self._closed:
            raise ReproError("fleet is closed")
        if not batch:
            return
        idx = self._rr
        self._rr = (self._rr + 1) % len(self.sessions)
        prev = self._tickets[idx]
        self._tickets[idx] = None
        now = time.perf_counter()
        for env in batch:
            env.t_dispatch = now
        deadline = batch_deadline_ms(batch, now)

        try:
            ticket = self._launch(idx, batch, deadline)
        except Exception:
            # the raised error belongs to the *previous* in-flight batch
            # (launching waits it out internally): settle it as failed,
            # then give this batch one clean attempt on the recovered
            # session — a predecessor's fault must not poison it
            if prev is not None:
                self._settle(prev)
                prev = None
            try:
                ticket = self._launch(idx, batch, deadline)
            except Exception as exc:  # noqa: BLE001 - terminal for batch
                self._fail_batch(batch, idx, exc)
                return
        self._tickets[idx] = ticket
        if prev is not None:
            # already finalized inside the launch's pipeline wait; this
            # just classifies and delivers — it does not block the pipe
            self._settle(prev)

    def _launch(
        self, idx: int, batch: List[Envelope], deadline: Optional[float]
    ) -> Ticket:
        sess = self.sessions[idx]
        tenant = batch[0].request.tenant_id
        if tenant != self._bound_tenant[idx]:
            vals = self.model.tenant_values(tenant)
            if vals is not None:
                sess.update_values(vals)
            self._bound_tenant[idx] = tenant
        sess.set_deadline(deadline)
        panel = self.model.encode([env.request for env in batch])
        future = self.model.dispatch(sess, panel)
        return Ticket(
            envelopes=batch, future=future, session_index=idx,
            tenant_id=tenant, deadline_ms=deadline,
        )

    # -- settlement -----------------------------------------------------

    def _settle(self, ticket: Ticket) -> None:
        """Wait the ticket's call, decode, classify and deliver."""
        if ticket.settled:
            return
        ticket.settled = True
        requests = [env.request for env in ticket.envelopes]
        error: Optional[BaseException] = None
        results: List = []
        retries = 0
        try:
            raw, _report = ticket.future.result()
            results = self.model.decode(raw, requests)
        except Exception as exc:  # noqa: BLE001 - classified below
            error = exc
        now = time.perf_counter()
        batch_outcome = "ok"
        if error is not None:
            batch_outcome = (
                "timeout" if isinstance(error, SpmdTimeout) else "failed"
            )
        else:
            # the session's own per-call record for this future (appended
            # at finalize) carries retry/degradation outcomes for the
            # synchronous fallback path; async launches have none
            last = self.sessions[ticket.session_index]._metrics
            if last:
                batch_outcome = last[-1].get("outcome", "ok")
                retries = int(last[-1].get("retries", 0))
        for i, env in enumerate(ticket.envelopes):
            if error is None and env.expired(now):
                outcome = "timeout"
                value = None
                err_msg: Optional[str] = (
                    f"request deadline of {env.request.deadline_ms}ms "
                    "lapsed before settlement"
                )
            else:
                outcome = batch_outcome
                value = results[i] if error is None else None
                err_msg = repr(error) if error is not None else None
            self._deliver(env, outcome, value, err_msg, ticket, now, retries)

    def _fail_batch(
        self, batch: List[Envelope], idx: int, exc: BaseException
    ) -> None:
        now = time.perf_counter()
        outcome = "timeout" if isinstance(exc, SpmdTimeout) else "failed"
        ticket = Ticket(
            envelopes=batch, future=None, session_index=idx,  # type: ignore[arg-type]
            tenant_id=batch[0].request.tenant_id,
        )
        for env in batch:
            self._deliver(env, outcome, None, repr(exc), ticket, now, 0)

    def _deliver(
        self,
        env: Envelope,
        outcome: str,
        value,
        err_msg: Optional[str],
        ticket: Ticket,
        now: float,
        retries: int,
    ) -> None:
        completion = Completion(
            request=env.request,
            outcome=outcome,
            value=value,
            error=err_msg,
            queue_ms=(env.t_dispatch - env.t_submit) * 1e3,
            service_ms=(now - env.t_dispatch) * 1e3,
            latency_ms=(now - env.t_submit) * 1e3,
            batch_size=len(ticket.envelopes),
            session_index=ticket.session_index,
            retries=retries,
        )
        env.future._settle(completion)
        self.on_complete(completion)

    # -- draining / lifecycle -------------------------------------------

    def settle_all(self) -> None:
        """Settle every in-flight batch (the fleet goes quiescent)."""
        for idx, ticket in enumerate(self._tickets):
            if ticket is not None:
                self._tickets[idx] = None
                self._settle(ticket)

    def session_metrics(self) -> List[dict]:
        """Per-call metrics records of every replica, tagged with the
        session index (PR 6/7 observability).  Finalizes in-flight calls,
        so call on a quiescent fleet (after :meth:`settle_all`)."""
        records: List[dict] = []
        for idx, sess in enumerate(self.sessions):
            for rec in sess.metrics():
                records.append({**rec, "session_index": idx})
        return records

    def close(self) -> None:
        """Settle outstanding batches, then drain and join every session
        (thread-leak gated by the sessions' counter-asserted pool join)."""
        if self._closed:
            return
        self.settle_all()
        for sess in self.sessions:
            sess.close()
        self._closed = True

"""Typed per-user serving requests and their completions.

A request names a *model* (which fleet of resident sessions serves it), a
*tenant* (which per-tenant values are bound onto the model's shared
sparse structure) and an optional end-to-end latency budget.  The two
workloads mirror the paper's applications:

* :class:`AlsTopKRequest` — collaborative-filtering inference: one user
  id in, the user's top-``k`` item scores out, seen interactions masked.
* :class:`GatEdgeScoreRequest` — GAT edge scoring: one node id in, the
  attention scores of the node's out-edges out.

Clients get a :class:`ServeFuture` back from
:meth:`repro.serve.Server.submit` and wait on it for a
:class:`Completion` carrying the value plus the request's observability
record (queue wait, service time, batch size, outcome).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, List, Optional

import numpy as np

from repro.errors import ReproError

__all__ = [
    "Request",
    "AlsTopKRequest",
    "GatEdgeScoreRequest",
    "Completion",
    "ServeFuture",
    "OUTCOMES",
]

#: every terminal request outcome the stats layer counts.  ``ok`` /
#: ``retried`` / ``degraded`` / ``timeout`` / ``failed`` mirror the
#: session's per-call metrics outcomes (PR 7); ``rejected`` is the
#: admission-control outcome (the request never reached a session).
OUTCOMES = ("ok", "retried", "degraded", "timeout", "failed", "rejected")


@dataclass
class Request:
    """Base serving request.

    ``deadline_ms`` is the request's *end-to-end* budget measured from
    submission: it bounds queue wait plus service time.  The batcher
    propagates the batch's largest remaining budget onto the session's
    ``deadline_ms`` watchdog, and a request whose own budget has lapsed
    by settle time is completed with outcome ``"timeout"`` — without
    poisoning the other requests coalesced into the same batch.
    """

    model_id: str
    tenant_id: str = "default"
    deadline_ms: Optional[float] = None


@dataclass
class AlsTopKRequest(Request):
    """Top-``k`` item recommendation for one user (seen items masked)."""

    user: int = 0
    k: int = 10
    exclude_seen: bool = True


@dataclass
class GatEdgeScoreRequest(Request):
    """Attention scores of one node's out-edges.

    ``features`` optionally carries fresh input features for the node
    (shape ``(r_in,)``); the model projects them through its head.  When
    omitted, the model's resident projected features are used.
    """

    node: int = 0
    features: Optional[np.ndarray] = None


@dataclass
class Completion:
    """Terminal record of one request: value + observability fields."""

    request: Request
    outcome: str
    value: Any = None
    error: Optional[str] = None
    #: time spent waiting for a batch slot (submit -> dispatch), ms
    queue_ms: float = 0.0
    #: time from dispatch to settle (the batch's session call), ms
    service_ms: float = 0.0
    #: end-to-end submit -> settle, ms
    latency_ms: float = 0.0
    #: how many requests shared this request's panel
    batch_size: int = 0
    #: which fleet session served the batch (-1 for rejected requests)
    session_index: int = -1
    #: retries the underlying session call used (PR 7 machinery)
    retries: int = 0

    @property
    def ok(self) -> bool:
        return self.outcome in ("ok", "retried", "degraded")


class ServeFuture:
    """Client-side handle for one submitted request.

    Settled exactly once by the server's dispatch path; ``result()``
    blocks until then.  Unlike :class:`~repro.session.SessionFuture`,
    waiting on this from any thread is safe — settlement happens on the
    serving side, the client only observes it.
    """

    __slots__ = ("request", "_event", "_completion")

    def __init__(self, request: Request) -> None:
        self.request = request
        self._event = threading.Event()
        self._completion: Optional[Completion] = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> Completion:
        """Block until the request settles; returns its :class:`Completion`.

        Never raises on a failed request — inspect ``completion.outcome``
        — but does raise :class:`~repro.errors.ReproError` if ``timeout``
        seconds pass without settlement (a driver bug or a dead server,
        not a request-level failure).
        """
        if not self._event.wait(timeout):
            raise ReproError(
                f"request did not settle within {timeout}s — is the server "
                "running (background=True) or being flushed (flush/drain)?"
            )
        assert self._completion is not None
        return self._completion

    def _settle(self, completion: Completion) -> None:
        self._completion = completion
        self._event.set()


@dataclass
class Envelope:
    """A queued request with its server-side timestamps (internal)."""

    request: Request
    future: ServeFuture
    t_submit: float  # perf_counter at admission
    t_dispatch: float = 0.0  # perf_counter when its batch launched

    def remaining_ms(self, now: float) -> Optional[float]:
        """Budget left at ``now`` (None if the request has no deadline)."""
        if self.request.deadline_ms is None:
            return None
        return self.request.deadline_ms - (now - self.t_submit) * 1e3

    def expired(self, now: float) -> bool:
        rem = self.remaining_ms(now)
        return rem is not None and rem <= 0.0


def batch_deadline_ms(envelopes: List[Envelope], now: float) -> Optional[float]:
    """The session-call deadline for one coalesced batch.

    The *largest* remaining per-request budget: the watchdog must not
    kill the batch while any member could still meet its deadline, and
    members whose budgets lapse earlier are individually timed out at
    settle.  ``None`` (no watchdog) if any member is deadline-free.
    """
    worst: Optional[float] = None
    for env in envelopes:
        rem = env.remaining_ms(now)
        if rem is None:
            return None
        worst = rem if worst is None else max(worst, rem)
    if worst is None:
        return None
    # the watchdog rejects non-positive horizons; an already-expired
    # batch still runs (members are classified at settle) on a floor
    return max(worst, 1e-3)

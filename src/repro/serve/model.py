"""The model contract between the serving front-end and the kernels.

A :class:`ServeModel` owns the mapping from typed requests to the dense
operand panels the resident kernels eat — the "batched sparse inference"
unit of work (Gale et al., *Sparse GPU Kernels for Deep Learning*): many
requests for the same model coalesce into **one** panel and one
``Session`` call, and per-request results are sliced back out of the one
output.  Concrete models live next to their applications:
:class:`repro.apps.als.AlsServeModel` (top-k recommendation via
``spmm_a`` on the resident item-factor matrix) and
:class:`repro.apps.gat.GatServeModel` (edge scoring via ``sddmm`` on the
resident adjacency).

The contract deliberately keeps the *whole* numeric path inside the
model: the batcher/fleet layers never look at panels or outputs, so a
batch of one flows through byte-for-byte the same code as a batch of
``batch_width`` — which is what makes the serving path's
batched-vs-unbatched bitwise-equality tests meaningful.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, List, Optional, Sequence

import numpy as np

from repro.serve.request import Request
from repro.session import Session, SessionFuture

__all__ = ["ServeModel"]


class ServeModel(ABC):
    """Request <-> panel codec plus session factory for one served model.

    Attributes
    ----------
    model_id:
        Routing key; requests carry it and the server keeps one fleet
        per id.
    batch_width:
        The largest number of requests one panel holds.  The batcher
        never hands ``encode`` more than this many requests.
    """

    model_id: str
    batch_width: int

    @abstractmethod
    def make_session(self) -> Session:
        """Plan one resident session for this model (called per replica)."""

    @abstractmethod
    def encode(self, requests: Sequence[Request]) -> np.ndarray:
        """Coalesce up to ``batch_width`` requests into one dense panel."""

    @abstractmethod
    def dispatch(self, sess: Session, panel: np.ndarray) -> SessionFuture:
        """Launch the panel's single kernel call, pipelined (async)."""

    @abstractmethod
    def decode(self, raw: Any, requests: Sequence[Request]) -> List[Any]:
        """Slice the call's raw output into one result per request."""

    def tenant_values(self, tenant_id: str) -> Optional[np.ndarray]:
        """Per-tenant sparse values for ``Session.update_values`` (shared
        structure, tenant-specific values).  ``None`` means the tenant
        uses the planned default values; unknown tenants should raise."""
        if tenant_id != "default":
            raise KeyError(tenant_id)
        return None

    def admit(self, pending: Sequence[Request], req: Request) -> bool:
        """Whether ``req`` may join a batch already holding ``pending``.

        Models whose panels key requests by a shared axis override this
        to defer colliding requests to the next batch (e.g. two scoring
        requests for the same graph node cannot share one panel row)."""
        return True

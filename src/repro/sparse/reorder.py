"""Locality-improving reorderings for local kernels (paper Section III-A).

The paper cites two shared-memory optimizations for SDDMM/SpMM: reordering
the sparse matrix to minimize the hypergraph connectivity metric (Jiang et
al.) and adaptive tiling (Hong et al.).  This module implements lightweight
analogues used by the blocked local kernels and the ablation benchmarks:

* :func:`degree_sort` — order rows by descending nonzero count, clustering
  heavy rows so their dense-row reuse coalesces.
* :func:`bfs_reorder` — Cuthill–McKee-style breadth-first ordering of the
  bipartite row/column graph, reducing the column span of row blocks
  (a cheap proxy for hypergraph partitioning's edgecut-1 objective).
* :func:`column_span_cost` — the evaluation metric: average distinct
  columns touched per row block, which models dense-matrix traffic of a
  blocked kernel exactly (each distinct column in a block is one dense-row
  fetch from slow memory).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.sparse.coo import CooMatrix


def degree_sort(mat: CooMatrix) -> Tuple[CooMatrix, np.ndarray]:
    """Reorder rows by descending degree; returns (matrix, row_perm)."""
    counts = np.bincount(mat.rows, minlength=mat.nrows)
    order = np.argsort(-counts, kind="stable")  # old index in new order
    row_perm = np.empty(mat.nrows, dtype=np.int64)
    row_perm[order] = np.arange(mat.nrows)
    return mat.permuted(row_perm, np.arange(mat.ncols, dtype=np.int64)), row_perm


def bfs_reorder(mat: CooMatrix) -> Tuple[CooMatrix, np.ndarray, np.ndarray]:
    """Breadth-first (Cuthill–McKee-like) reordering of rows and columns.

    Rows and columns are visited in BFS order over the bipartite adjacency;
    unreached rows/columns keep their relative order at the end.  Returns
    ``(matrix, row_perm, col_perm)``.
    """
    csr = mat.to_scipy()
    csc = csr.tocsc()
    row_seen = np.zeros(mat.nrows, dtype=bool)
    col_seen = np.zeros(mat.ncols, dtype=bool)
    row_order = []
    col_order = []
    degrees = np.diff(csr.indptr)
    for start in np.argsort(degrees, kind="stable"):
        if row_seen[start] or degrees[start] == 0:
            continue
        frontier = [int(start)]
        row_seen[start] = True
        while frontier:
            row_order.extend(frontier)
            cols_next = []
            for i in frontier:
                for j in csr.indices[csr.indptr[i] : csr.indptr[i + 1]]:
                    if not col_seen[j]:
                        col_seen[j] = True
                        cols_next.append(int(j))
            col_order.extend(cols_next)
            rows_next = []
            for j in cols_next:
                for i in csc.indices[csc.indptr[j] : csc.indptr[j + 1]]:
                    if not row_seen[i]:
                        row_seen[i] = True
                        rows_next.append(int(i))
            frontier = rows_next
    row_order.extend(np.flatnonzero(~row_seen))
    col_order.extend(np.flatnonzero(~col_seen))
    row_perm = np.empty(mat.nrows, dtype=np.int64)
    row_perm[np.asarray(row_order, dtype=np.int64)] = np.arange(mat.nrows)
    col_perm = np.empty(mat.ncols, dtype=np.int64)
    col_perm[np.asarray(col_order, dtype=np.int64)] = np.arange(mat.ncols)
    return mat.permuted(row_perm, col_perm), row_perm, col_perm


def column_span_cost(mat: CooMatrix, row_block: int = 64) -> float:
    """Average distinct columns per ``row_block`` rows (edgecut-1 proxy).

    This is the number of dense-matrix rows a blocked kernel must stream
    per row block — the traffic model of the paper's Section III-A.
    """
    if mat.nnz == 0:
        return 0.0
    blocks = mat.rows // row_block
    key = blocks * np.int64(mat.ncols) + mat.cols
    distinct = len(np.unique(key))
    nblocks = int(blocks.max()) + 1
    return distinct / nblocks

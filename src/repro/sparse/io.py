"""Minimal Matrix Market (coordinate) IO.

The paper relies on CombBLAS for sparse matrix IO; this module provides the
equivalent capability for the ``.mtx`` coordinate format so that users can
run the library on SuiteSparse downloads.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import ReproError
from repro.sparse.coo import CooMatrix


def _open(path: Union[str, Path], mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def read_matrix_market(path: Union[str, Path]) -> CooMatrix:
    """Read a Matrix Market coordinate file (optionally gzipped).

    Supports ``real``, ``integer`` and ``pattern`` fields with ``general``
    or ``symmetric`` symmetry.  Pattern entries get value 1.0; symmetric
    entries are mirrored.
    """
    with _open(path, "r") as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ReproError(f"{path}: not a MatrixMarket file")
        tokens = header.strip().split()
        if len(tokens) < 5 or tokens[2] != "coordinate":
            raise ReproError(f"{path}: only coordinate format is supported")
        field, symmetry = tokens[3], tokens[4]
        if field not in ("real", "integer", "pattern"):
            raise ReproError(f"{path}: unsupported field {field!r}")
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        m, n, nnz = (int(t) for t in line.split())
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.ones(nnz, dtype=np.float64)
        for k in range(nnz):
            parts = fh.readline().split()
            rows[k] = int(parts[0]) - 1
            cols[k] = int(parts[1]) - 1
            if field != "pattern":
                vals[k] = float(parts[2])
    if symmetry == "symmetric":
        off = rows != cols
        r0, c0 = rows, cols
        rows = np.concatenate([r0, c0[off]])
        cols = np.concatenate([c0, r0[off]])
        vals = np.concatenate([vals, vals[off]])
    elif symmetry != "general":
        raise ReproError(f"{path}: unsupported symmetry {symmetry!r}")
    return CooMatrix(rows, cols, vals, (m, n), dedupe=True)


def write_matrix_market(path: Union[str, Path], mat: CooMatrix) -> None:
    """Write a COO matrix as a general real coordinate MatrixMarket file."""
    with _open(path, "w") as fh:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        fh.write(f"{mat.nrows} {mat.ncols} {mat.nnz}\n")
        for i, j, v in zip(mat.rows, mat.cols, mat.vals):
            fh.write(f"{i + 1} {j + 1} {v:.17g}\n")

"""Matrix statistics, including the paper's ``phi`` ratio.

``phi = nnz(S) / (n * r)`` — the ratio of sparse-matrix nonzeros to dense-
matrix entries — is the single parameter that determines which algorithm
family wins in the paper's analysis (low phi favours sparse-shifting /
sparse-replicating; high phi favours dense-shifting / dense-replicating).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.coo import CooMatrix


def phi_ratio(nnz: int, n: int, r: int) -> float:
    """The paper's phi = nnz(S) / (n*r)."""
    return nnz / float(n * r)


@dataclass(frozen=True)
class MatrixStats:
    """Summary statistics in the style of the paper's Table V."""

    name: str
    rows: int
    cols: int
    nnz: int
    nnz_per_row_mean: float
    nnz_per_row_max: int
    empty_rows: int

    def phi(self, r: int) -> float:
        return phi_ratio(self.nnz, self.cols, r)

    def table_row(self) -> str:
        return (
            f"{self.name:<16} {self.rows:>10,} {self.cols:>10,} {self.nnz:>12,} "
            f"{self.nnz_per_row_mean:>8.1f} {self.nnz_per_row_max:>8,} "
            f"{self.empty_rows:>8,}"
        )


def matrix_stats(mat: CooMatrix, name: str = "") -> MatrixStats:
    counts = np.bincount(mat.rows, minlength=mat.nrows)
    return MatrixStats(
        name=name or "matrix",
        rows=mat.nrows,
        cols=mat.ncols,
        nnz=mat.nnz,
        nnz_per_row_mean=float(mat.nnz) / max(mat.nrows, 1),
        nnz_per_row_max=int(counts.max()) if mat.nrows else 0,
        empty_rows=int((counts == 0).sum()),
    )

"""Workload generators.

* :func:`erdos_renyi` reproduces the paper's weak-scaling workloads
  (CombBLAS-generated Erdős–Rényi matrices with a fixed expected nonzero
  count per row).
* :func:`rmat` is a vectorized R-MAT/Graph500-style power-law generator.
* :func:`realworld_standin` produces scaled-down stand-ins for the five
  SuiteSparse matrices of the paper's Table V (amazon-large, uk-2002,
  eukarya, arabic-2005, twitter7), matching their defining property for
  the paper's analysis — the nonzeros-per-row profile, hence ``phi`` —
  at laptop-scale dimensions.
* :func:`random_permutation` applies the random row/column permutation the
  paper uses to load-balance real-world matrices across processors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.sparse.coo import CooMatrix


def _rng(seed) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def erdos_renyi(
    m: int,
    n: int,
    nnz_per_row: float,
    seed=0,
    values: str = "uniform",
) -> CooMatrix:
    """Erdős–Rényi sparse matrix with ``nnz_per_row`` expected nonzeros/row.

    Nonzero positions are sampled uniformly with replacement and
    deduplicated, matching CombBLAS's generator semantics (the realized
    count is slightly below ``m * nnz_per_row`` due to collisions).

    ``values`` is ``"uniform"`` (U[0,1)), ``"ones"`` (all 1.0, useful for
    adjacency matrices), or ``"normal"``.
    """
    total = int(round(m * nnz_per_row))
    rng = _rng(seed)
    rows = rng.integers(0, m, size=total, dtype=np.int64)
    cols = rng.integers(0, n, size=total, dtype=np.int64)
    vals = _make_values(rng, total, values)
    return CooMatrix(rows, cols, vals, (m, n), dedupe=True)


def rmat(
    scale: int,
    edge_factor: float = 16.0,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed=0,
    values: str = "uniform",
    square_shape: Optional[int] = None,
) -> CooMatrix:
    """R-MAT power-law matrix of side ``2**scale`` with ``edge_factor``
    edges per row (Graph500 defaults for ``a, b, c``; ``d = 1-a-b-c``).

    The recursive quadrant choice is vectorized bit by bit.  Duplicates
    are merged, so dense hub rows lose proportionally more edges — the
    same skew real web/social graphs show.
    """
    n = 2**scale if square_shape is None else square_shape
    total = int(round(n * edge_factor))
    rng = _rng(seed)
    rows = np.zeros(total, dtype=np.int64)
    cols = np.zeros(total, dtype=np.int64)
    p_row1 = c + (1.0 - a - b - c)  # P(row bit = 1)
    for _ in range(scale):
        rows <<= 1
        cols <<= 1
        r_bit = rng.random(total) < p_row1
        # conditional column-bit probability given the row bit
        p_col1_given0 = b / (a + b)
        p_col1_given1 = (1.0 - a - b - c) / max(c + (1.0 - a - b - c), 1e-12)
        c_prob = np.where(r_bit, p_col1_given1, p_col1_given0)
        c_bit = rng.random(total) < c_prob
        rows |= r_bit.astype(np.int64)
        cols |= c_bit.astype(np.int64)
    if square_shape is not None:
        rows %= n
        cols %= n
    vals = _make_values(rng, total, values)
    return CooMatrix(rows, cols, vals, (n, n), dedupe=True)


def random_permutation(mat: CooMatrix, seed=0) -> CooMatrix:
    """Random row+column permutation for load balance (paper Section VI)."""
    rng = _rng(seed)
    row_perm = rng.permutation(mat.nrows).astype(np.int64)
    col_perm = rng.permutation(mat.ncols).astype(np.int64)
    return mat.permuted(row_perm, col_perm)


def _make_values(rng: np.random.Generator, total: int, kind: str) -> np.ndarray:
    if kind == "uniform":
        return rng.random(total)
    if kind == "ones":
        return np.ones(total)
    if kind == "normal":
        return rng.standard_normal(total)
    raise ValueError(f"unknown value kind {kind!r}")


# ----------------------------------------------------------------------
# Real-world stand-ins (paper Table V)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RealWorldProfile:
    """Shape profile of one of the paper's Table V matrices."""

    name: str
    paper_rows: int
    paper_nnz: int
    nnz_per_row: float  # the property that determines phi and algorithm choice
    rmat_a: float  # skew of the degree distribution
    rmat_b: float
    rmat_c: float


#: The five strong-scaling matrices of Table V.  ``nnz_per_row`` follows the
#: paper's own characterization: ~16 for amazon-large and uk-2002, 111 for
#: eukarya, 28 for arabic-2005 and 35 for twitter7.
REALWORLD_PROFILES: Dict[str, RealWorldProfile] = {
    "amazon-large": RealWorldProfile(
        "amazon-large", 14_249_639, 230_788_269, 16.2, 0.50, 0.22, 0.22
    ),
    "uk-2002": RealWorldProfile(
        "uk-2002", 18_484_117, 298_113_762, 16.1, 0.57, 0.19, 0.19
    ),
    "eukarya": RealWorldProfile(
        "eukarya", 3_243_106, 359_744_161, 110.9, 0.45, 0.25, 0.25
    ),
    "arabic-2005": RealWorldProfile(
        "arabic-2005", 22_744_080, 639_999_458, 28.1, 0.57, 0.19, 0.19
    ),
    "twitter7": RealWorldProfile(
        "twitter7", 41_652_230, 1_468_365_182, 35.3, 0.55, 0.20, 0.20
    ),
}


def realworld_standin(name: str, scale: int = 13, seed=0) -> CooMatrix:
    """Scaled-down stand-in for a Table V matrix.

    ``scale`` gives the side length ``2**scale``; the nonzeros-per-row
    profile (and therefore ``phi = nnz / (n r)`` at any embedding width)
    matches the original matrix.  A random permutation is applied, as the
    paper does for load balance.
    """
    if name not in REALWORLD_PROFILES:
        raise KeyError(
            f"unknown matrix {name!r}; options: {sorted(REALWORLD_PROFILES)}"
        )
    prof = REALWORLD_PROFILES[name]
    # R-MAT discards duplicate edges; oversample so the realized
    # nonzeros-per-row matches the profile.
    target = prof.nnz_per_row
    factor = target
    mat = rmat(
        scale, edge_factor=factor, a=prof.rmat_a, b=prof.rmat_b, c=prof.rmat_c,
        seed=seed,
    )
    realized = mat.nnz / mat.nrows
    if realized < 0.9 * target:
        factor *= target / max(realized, 1e-9)
        mat = rmat(
            scale, edge_factor=factor, a=prof.rmat_a, b=prof.rmat_b, c=prof.rmat_c,
            seed=seed,
        )
    return random_permutation(mat, seed=_rng(seed).integers(1 << 31))

"""Sparse-matrix substrate: partitioning, generation, statistics, IO.

This package replaces the roles CombBLAS played in the paper's
implementation: distributed Erdős–Rényi generation, matrix IO, and the
random permutations used to load-balance real-world matrices.
"""

from repro.sparse.coo import CooMatrix, SparseBlock
from repro.sparse.generate import (
    erdos_renyi,
    rmat,
    random_permutation,
    realworld_standin,
    REALWORLD_PROFILES,
)
from repro.sparse.partition import (
    block_ranges,
    block_of,
    cyclic_block_index,
    partition_coo_2d,
)
from repro.sparse.stats import MatrixStats, matrix_stats, phi_ratio

__all__ = [
    "CooMatrix",
    "SparseBlock",
    "erdos_renyi",
    "rmat",
    "random_permutation",
    "realworld_standin",
    "REALWORLD_PROFILES",
    "block_ranges",
    "block_of",
    "cyclic_block_index",
    "partition_coo_2d",
    "MatrixStats",
    "matrix_stats",
    "phi_ratio",
]

"""COO containers with cached CSR structure.

The distributed algorithms keep sparse blocks *stationary* across the
phases of a kernel call (1.5D dense shift) or re-visit the same structure
on every FusedMM invocation.  :class:`SparseBlock` therefore caches the
CSR structure (indptr/indices plus the COO-to-CSR permutation) once and
re-materializes a SciPy CSR for any values array in O(nnz) gather time —
the Python analogue of the paper amortizing sparse-matrix preprocessing
across repeated kernel calls.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.errors import DistributionError


class SparseBlock:
    """An immutable-structure sparse block in COO form with CSR caches.

    ``rows``/``cols`` are *local* indices within the block's ``shape``.
    The values array may be swapped per call via the ``values=`` arguments,
    which is how SDDMM outputs reuse the sparsity structure of their input.
    """

    __slots__ = ("rows", "cols", "vals", "nrows", "ncols", "_csr", "_csr_t", "_remaps")

    def __init__(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        shape: Tuple[int, int],
    ) -> None:
        if not (len(rows) == len(cols) == len(vals)):
            raise DistributionError("COO arrays must have equal length")
        self.rows = np.asarray(rows, dtype=np.int64)
        self.cols = np.asarray(cols, dtype=np.int64)
        self.vals = np.asarray(vals, dtype=np.float64)
        self.nrows, self.ncols = int(shape[0]), int(shape[1])
        if len(self.rows) and (
            self.rows.min() < 0
            or self.rows.max() >= self.nrows
            or self.cols.min() < 0
            or self.cols.max() >= self.ncols
        ):
            raise DistributionError("COO indices out of block bounds")
        self._csr: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._csr_t: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._remaps: Dict[str, tuple] = {}  # key -> (view, row_map, col_map, shape)

    # ------------------------------------------------------------------

    @property
    def nnz(self) -> int:
        return len(self.vals)

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.nrows, self.ncols)

    def _structure(self, transpose: bool) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(indptr, indices, perm) with ``perm`` mapping CSR slot -> COO slot."""
        cache = self._csr_t if transpose else self._csr
        if cache is None:
            r, c = (self.cols, self.rows) if transpose else (self.rows, self.cols)
            nr = self.ncols if transpose else self.nrows
            order = np.lexsort((c, r))
            indptr = np.zeros(nr + 1, dtype=np.int64)
            np.add.at(indptr, r + 1, 1)
            np.cumsum(indptr, out=indptr)
            cache = (indptr, c[order].astype(np.int64), order.astype(np.int64))
            if transpose:
                self._csr_t = cache
            else:
                self._csr = cache
        return cache

    def csr(self, values: Optional[np.ndarray] = None) -> sp.csr_matrix:
        """CSR view of this block with the given (or stored) values."""
        indptr, indices, perm = self._structure(transpose=False)
        data = (self.vals if values is None else values)[perm]
        return sp.csr_matrix((data, indices, indptr), shape=self.shape)

    def csr_t(self, values: Optional[np.ndarray] = None) -> sp.csr_matrix:
        """CSR view of this block's transpose with the given values."""
        indptr, indices, perm = self._structure(transpose=True)
        data = (self.vals if values is None else values)[perm]
        return sp.csr_matrix((data, indices, indptr), shape=(self.ncols, self.nrows))

    def csr_arrays(
        self, values: Optional[np.ndarray] = None, transpose: bool = False
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Raw ``(indptr, indices, data)`` of the cached CSR structure.

        The compiled kernel backends consume the arrays directly instead
        of going through a SciPy matrix object; the structure cache and
        the per-call ``values`` gather are shared with :meth:`csr` /
        :meth:`csr_t`.
        """
        indptr, indices, perm = self._structure(transpose=transpose)
        data = (self.vals if values is None else values)[perm]
        return indptr, indices, data

    def transposed(self) -> "SparseBlock":
        return SparseBlock(self.cols, self.rows, self.vals, (self.ncols, self.nrows))

    def with_values(self, vals: np.ndarray) -> "SparseBlock":
        blk = SparseBlock.__new__(SparseBlock)
        blk.rows, blk.cols = self.rows, self.cols
        blk.vals = np.asarray(vals, dtype=np.float64)
        blk.nrows, blk.ncols = self.nrows, self.ncols
        blk._csr, blk._csr_t = self._csr, self._csr_t
        blk._remaps = self._remaps
        return blk

    def remapped(
        self,
        key: str,
        row_map: Optional[np.ndarray] = None,
        col_map: Optional[np.ndarray] = None,
        shape: Optional[Tuple[int, int]] = None,
        prebuild: bool = False,
    ) -> "SparseBlock":
        """Cached view of this block with indices rewritten through lookups.

        ``row_map``/``col_map`` are dense lookup arrays (``new = map[old]``,
        e.g. a :class:`~repro.comm_sparse.plan.PackedIndex` ``lookup``)
        taking this block's coordinates into a *packed panel* coordinate
        space of the given ``shape``.  The rewrite — and the CSR structure
        of the rewritten block, when ``prebuild`` is set — happens once per
        ``key`` and is cached on the block, so repeated kernel invocations
        on packed panels pay zero per-call index translation: the local
        kernels (:func:`~repro.kernels.spmm.spmm_a_block`,
        :func:`~repro.kernels.spmm.spmm_b_block`, ``sddmm_coo`` on
        ``view.rows``/``view.cols``) run unchanged on compact buffers.

        The view shares this block's value array *by reference* (and
        survives :meth:`with_values`, which shares the structure cache):
        callers must pass per-call values explicitly (``values=``),
        exactly as they do with the primary block.  A ``key`` is bound to
        its maps on first use — reusing it with different maps or shape
        raises instead of silently returning the stale view.
        """
        entry = self._remaps.get(key)
        if entry is not None:
            cached, bound_rm, bound_cm, bound_shape = entry
            if (
                bound_rm is not row_map
                or bound_cm is not col_map
                or bound_shape != shape
            ):
                raise DistributionError(
                    f"remap {key!r} already bound to different maps/shape; "
                    f"use a distinct key per coordinate space"
                )
            return cached
        rows = self.rows if row_map is None else row_map[self.rows]
        cols = self.cols if col_map is None else col_map[self.cols]
        if len(rows) and (min(rows.min(), cols.min()) < 0):
            raise DistributionError(
                f"remap {key!r}: some coordinates fall outside the map"
            )
        cached = SparseBlock(rows, cols, self.vals, shape or self.shape)
        if prebuild:
            cached._structure(transpose=False)
            cached._structure(transpose=True)
        self._remaps[key] = (cached, row_map, col_map, shape)
        return cached

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SparseBlock(shape={self.shape}, nnz={self.nnz})"


class CooMatrix:
    """A global sparse matrix in COO form (deduplicated, canonical order)."""

    __slots__ = ("rows", "cols", "vals", "nrows", "ncols")

    def __init__(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        shape: Tuple[int, int],
        dedupe: bool = True,
    ) -> None:
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        if not (len(rows) == len(cols) == len(vals)):
            raise DistributionError("COO arrays must have equal length")
        self.nrows, self.ncols = int(shape[0]), int(shape[1])
        if len(rows):
            if rows.min() < 0 or rows.max() >= self.nrows:
                raise DistributionError("row index out of range")
            if cols.min() < 0 or cols.max() >= self.ncols:
                raise DistributionError("column index out of range")
        if dedupe and len(rows):
            key = rows * self.ncols + cols
            order = np.argsort(key, kind="stable")
            key = key[order]
            keep = np.concatenate(([True], np.diff(key) != 0))
            idx = order[keep]
            rows, cols, vals = rows[idx], cols[idx], vals[idx]
        self.rows, self.cols, self.vals = rows, cols, vals

    # ------------------------------------------------------------------

    @classmethod
    def from_scipy(cls, mat) -> "CooMatrix":
        coo = sp.coo_matrix(mat)
        return cls(coo.row, coo.col, coo.data, coo.shape)

    def to_scipy(self) -> sp.csr_matrix:
        return sp.csr_matrix(
            (self.vals, (self.rows, self.cols)), shape=(self.nrows, self.ncols)
        )

    @property
    def nnz(self) -> int:
        return len(self.vals)

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.nrows, self.ncols)

    def transposed(self) -> "CooMatrix":
        return CooMatrix(
            self.cols, self.rows, self.vals, (self.ncols, self.nrows), dedupe=False
        )

    def with_values(self, vals: np.ndarray) -> "CooMatrix":
        return CooMatrix(self.rows, self.cols, vals, self.shape, dedupe=False)

    def same_structure(self, other: "CooMatrix") -> bool:
        """Whether ``other`` has the identical sparsity structure (shape and
        nonzero coordinates, in the same stored ordering).  Values are not
        compared — this is the cache key the session handle and the comm
        planners rely on."""
        return (
            self.shape == other.shape
            and self.nnz == other.nnz
            and np.array_equal(self.rows, other.rows)
            and np.array_equal(self.cols, other.cols)
        )

    def permuted(self, row_perm: np.ndarray, col_perm: np.ndarray) -> "CooMatrix":
        """Apply row/column permutations (``new_index = perm[old_index]``)."""
        return CooMatrix(
            row_perm[self.rows], col_perm[self.cols], self.vals, self.shape,
            dedupe=False,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CooMatrix(shape={self.shape}, nnz={self.nnz})"

"""Block partitioning utilities (Table II distributions are built on these).

All distributed layouts in the library are described by *offset arrays*:
``block_ranges(total, nblocks)`` returns the ``nblocks + 1`` boundaries of a
balanced 1D blocking (ragged by at most one element, so no divisibility
constraints are imposed on matrix dimensions).  Block-cyclic assignments —
e.g. "column blocks ``j`` with ``j % c == v`` live on layer ``v``" — are
expressed with :func:`cyclic_block_index`.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import DistributionError


def block_ranges(total: int, nblocks: int) -> np.ndarray:
    """Balanced 1D block boundaries: ``offsets`` of length ``nblocks + 1``.

    Block ``b`` covers ``[offsets[b], offsets[b+1])``.  The first
    ``total % nblocks`` blocks are one element longer, matching the usual
    MPI decomposition.  ``total`` may be smaller than ``nblocks`` (some
    blocks are then empty).
    """
    if nblocks < 1:
        raise DistributionError(f"nblocks must be >= 1, got {nblocks}")
    if total < 0:
        raise DistributionError(f"total must be >= 0, got {total}")
    base, extra = divmod(total, nblocks)
    sizes = np.full(nblocks, base, dtype=np.int64)
    sizes[:extra] += 1
    offsets = np.zeros(nblocks + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    return offsets


def block_of(indices: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Block id of each global index under the blocking ``offsets``."""
    out = np.searchsorted(offsets, indices, side="right") - 1
    return out.astype(np.int64, copy=False)


def block_size(offsets: np.ndarray, b: int) -> int:
    return int(offsets[b + 1] - offsets[b])


def cyclic_block_index(offsets: np.ndarray, stride: int, phase: int) -> np.ndarray:
    """Global indices of all blocks ``b`` with ``b % stride == phase``.

    The result concatenates the blocks in increasing ``b`` order, which is
    the storage order used for cyclic local buffers (e.g. the rows of A
    owned by fiber position ``v`` in the 1.5D sparse-shifting layout).
    """
    nblocks = len(offsets) - 1
    picks = [
        np.arange(offsets[b], offsets[b + 1], dtype=np.int64)
        for b in range(phase, nblocks, stride)
    ]
    if not picks:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(picks)


def global_to_local_map(total: int, owned_global: np.ndarray) -> np.ndarray:
    """Dense lookup ``loc`` with ``loc[g] = position of g in owned_global``
    for owned indices and ``-1`` elsewhere."""
    loc = np.full(total, -1, dtype=np.int64)
    loc[owned_global] = np.arange(len(owned_global), dtype=np.int64)
    return loc


def partition_coo_2d(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    row_offsets: np.ndarray,
    col_offsets: np.ndarray,
) -> Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Bucket COO triples into the 2D blocking given by the offset arrays.

    Returns ``{(bi, bj): (local_rows, local_cols, vals, gidx)}`` with
    indices *local to the block*, nonzeros kept in their original relative
    order within each block, and ``gidx`` giving each nonzero's position in
    the input arrays (so SDDMM outputs can be scattered back into the
    global value ordering).  Blocks with no nonzeros are omitted.
    """
    if not (len(rows) == len(cols) == len(vals)):
        raise DistributionError("rows/cols/vals length mismatch")
    if len(rows) == 0:
        return {}
    bi = block_of(rows, row_offsets)
    bj = block_of(cols, col_offsets)
    ncb = len(col_offsets) - 1
    key = bi * ncb + bj
    order = np.argsort(key, kind="stable")
    key_sorted = key[order]
    boundaries = np.flatnonzero(np.diff(key_sorted)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(key_sorted)]))
    out: Dict[
        Tuple[int, int], Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
    ] = {}
    for s, e in zip(starts, ends):
        idx = order[s:e]
        b_i = int(key_sorted[s] // ncb)
        b_j = int(key_sorted[s] % ncb)
        out[(b_i, b_j)] = (
            rows[idx] - row_offsets[b_i],
            cols[idx] - col_offsets[b_j],
            vals[idx],
            idx.astype(np.int64),
        )
    return out


def partition_coo_rows(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    row_offsets: np.ndarray,
) -> Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """1D row-block partition; row indices are localized, columns global."""
    one_col = np.array(
        [0, max(int(cols.max()) + 1 if len(cols) else 1, 1)], dtype=np.int64
    )
    full = partition_coo_2d(rows, cols, vals, row_offsets, one_col)
    return {bi: quad for (bi, _), quad in full.items()}


def partition_by_owner(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    owner: np.ndarray,
    nranks: int,
) -> Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Group COO triples by a precomputed per-nonzero owner rank.

    Keeps coordinates *global* (unlike :func:`partition_coo_2d`); used by
    layouts whose ownership rule is not a plain 2D blocking (e.g. the
    column-block-cyclic chunks of the 1.5D sparse-shifting algorithm).
    Returns ``{rank: (rows, cols, vals, gidx)}``; empty ranks are omitted.
    """
    if len(owner) == 0:
        return {}
    order = np.argsort(owner, kind="stable")
    o_sorted = owner[order]
    boundaries = np.flatnonzero(np.diff(o_sorted)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(o_sorted)]))
    out: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = {}
    for s, e in zip(starts, ends):
        idx = order[s:e]
        rank = int(o_sorted[s])
        if not 0 <= rank < nranks:
            raise DistributionError(f"owner rank {rank} out of range")
        out[rank] = (rows[idx], cols[idx], vals[idx], idx.astype(np.int64))
    return out


def group_offsets(offsets: np.ndarray, group: int) -> np.ndarray:
    """Coarsen a blocking by grouping ``group`` consecutive fine blocks.

    Used to keep the coarse S row blocks of the 1.5D algorithms aligned
    with unions of fine dense blocks even when sizes are ragged.
    """
    nfine = len(offsets) - 1
    if nfine % group != 0:
        raise DistributionError(
            f"{nfine} fine blocks not divisible into groups of {group}"
        )
    return offsets[::group].copy()

"""Shared enumerations and small value types used across the library.

The vocabulary follows the paper directly:

* :class:`Mode` selects which kernel the *unified* distributed algorithms
  compute (Algorithms 1 and 2 of the paper take the same ``Mode`` input).
* :class:`Elision` selects the FusedMM communication-eliding strategy
  (Section IV-B of the paper).
* :class:`Phase` labels communication/computation for the time and traffic
  breakdowns reported in the paper's Figure 5 and Figure 9.
"""

from __future__ import annotations

import enum


class Mode(enum.Enum):
    """Kernel computed by a unified distributed algorithm.

    ``SDDMM``  : ``R = S * (A @ B.T)`` sampled at the nonzeros of ``S``.
    ``SPMM_A`` : ``A = S @ B``   (output has the shape of ``A``).
    ``SPMM_B`` : ``B = S.T @ A`` (output has the shape of ``B``).
    """

    SDDMM = "sddmm"
    SPMM_A = "spmm_a"
    SPMM_B = "spmm_b"


class Elision(enum.Enum):
    """Communication-eliding strategy for a FusedMM (SDDMM then SpMM) pair.

    ``NONE``              : two unified kernel calls back to back.
    ``REPLICATION_REUSE`` : replicate one dense input once, reuse it for
                            both the SDDMM and the SpMM (raises the optimal
                            replication factor, Section IV-B(1)).
    ``LOCAL_KERNEL_FUSION`` : one propagation round performing the local
                            SDDMM and local SpMM together (lowers the
                            optimal replication factor, Section IV-B(2)).
                            Only the 1.5D dense-shifting algorithm admits
                            this strategy (it is the only one that keeps
                            entire rows of A and B on one processor).
    """

    NONE = "none"
    REPLICATION_REUSE = "replication-reuse"
    LOCAL_KERNEL_FUSION = "local-kernel-fusion"


class CommMode(enum.Enum):
    """Communication mode of a distributed kernel run.

    ``DENSE``  : ring collectives move full dense replicas / partials
                 (the paper's baseline collective costs).
    ``SPARSE`` : need-list neighborhood collectives move only the rows the
                 sparse matrix's structure touches (SpComm3D-style), with
                 per-rank index lists planned once per structure and
                 cached (:mod:`repro.comm_sparse`).  Supported by the
                 sparse-shifting / sparse-replicating families.
    ``AUTO``   : pick dense or sparse per the alpha-beta model's predicted
                 communication volume for the operands' sparsity.
    """

    DENSE = "dense"
    SPARSE = "sparse"
    AUTO = "auto"


class FusedVariant(enum.Enum):
    """Which FusedMM operation is requested.

    ``FUSED_A`` : ``FusedMMA(S, A, B) = SpMMA(SDDMM(A, B, S), B)``
    ``FUSED_B`` : ``FusedMMB(S, A, B) = SpMMB(SDDMM(A, B, S), A)``
    """

    FUSED_A = "fusedmm_a"
    FUSED_B = "fusedmm_b"


class Phase(enum.Enum):
    """Cost-attribution phases used by the paper's breakdown plots.

    ``REPLICATION`` : all-gather / reduce-scatter traffic along the fiber
                      axis of the processor grid (replication of inputs or
                      reduction of replicated outputs).
    ``PROPAGATION`` : cyclic shifts of matrix blocks within a grid layer.
    ``COMPUTATION`` : local SDDMM / SpMM kernel execution.
    ``OTHER``       : everything else (application-side work, distributed
                      dot products, edge softmax, ...).
    """

    REPLICATION = "replication"
    PROPAGATION = "propagation"
    COMPUTATION = "computation"
    OTHER = "other"


#: All algorithm family identifiers, as used by the registry and the
#: analytical model.  These names mirror the legend of Figures 4 and 8.
ALGORITHM_FAMILIES = (
    "1.5d-dense-shift",
    "1.5d-sparse-shift",
    "2.5d-dense-replicate",
    "2.5d-sparse-replicate",
)

"""Local SpMM kernels.

``SpMMA(S, B) = S @ B`` and ``SpMMB(S, A) = S.T @ A`` over a
:class:`~repro.sparse.coo.SparseBlock`.  The CSR structure of the block is
cached (paper-style amortized preprocessing); each call is a single SciPy
CSR matmul accumulated into the caller's output buffer.

When the caller's profile carries a compiled kernel backend
(``profile.kernels``), the CSR product runs through the backend's
row-partitioned jitted kernel on the same cached ``(indptr, indices,
data)`` arrays — bitwise-identical to the SciPy path, because both walk
each row's nonzeros in CSR index order (gated in
``tests/test_kernel_backends.py``).  Non-float64 operands always take
the SciPy path.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.kernels.sddmm import _f64, _kernel_impl
from repro.runtime.profile import RankProfile
from repro.sparse.coo import SparseBlock


def spmm_flops(nnz: int, r: int) -> int:
    """FLOPs of one SpMM over ``nnz`` nonzeros and width ``r``."""
    return 2 * nnz * r


def spmm_a_block(
    block: SparseBlock,
    B: np.ndarray,
    out: np.ndarray,
    values: Optional[np.ndarray] = None,
    profile: Optional[RankProfile] = None,
) -> np.ndarray:
    """``out += S_block @ B`` (output shaped like A's rows for this block).

    ``values`` overrides the block's stored values (e.g. an SDDMM result
    reusing the input's sparsity structure).
    """
    tracer = profile.tracer if profile is not None else None
    t0 = time.perf_counter() if tracer is not None else 0.0
    if block.nnz:
        impl = _kernel_impl(profile)
        if impl is not None and _f64(B, out):
            indptr, indices, data = block.csr_arrays(values)
            impl.spmm_csr_add(
                indptr, indices, data, np.ascontiguousarray(B), out
            )
        else:
            out += block.csr(values) @ B
    if profile is not None:
        profile.add_flops(spmm_flops(block.nnz, B.shape[1]))
        if tracer is not None:
            tracer.span("spmm-a", "kernel", t0, time.perf_counter())
    return out


def spmm_b_block(
    block: SparseBlock,
    A: np.ndarray,
    out: np.ndarray,
    values: Optional[np.ndarray] = None,
    profile: Optional[RankProfile] = None,
) -> np.ndarray:
    """``out += S_block.T @ A`` (output shaped like B's rows for this block)."""
    tracer = profile.tracer if profile is not None else None
    t0 = time.perf_counter() if tracer is not None else 0.0
    if block.nnz:
        impl = _kernel_impl(profile)
        if impl is not None and _f64(A, out):
            indptr, indices, data = block.csr_arrays(values, transpose=True)
            impl.spmm_csr_add(
                indptr, indices, data, np.ascontiguousarray(A), out
            )
        else:
            out += block.csr_t(values) @ A
    if profile is not None:
        profile.add_flops(spmm_flops(block.nnz, A.shape[1]))
        if tracer is not None:
            tracer.span("spmm-b", "kernel", t0, time.perf_counter())
    return out


def spmm_scatter(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    B: np.ndarray,
    out: np.ndarray,
    profile: Optional[RankProfile] = None,
) -> np.ndarray:
    """``out[rows] += vals * B[cols]`` without building a CSR.

    Used for one-shot products on transient coordinate chunks (circulating
    sparse blocks visit a rank once per kernel call, so building a CSR
    would not amortize).  Contributions of duplicate rows are summed.
    """
    nnz = len(rows)
    if nnz == 0:
        return out
    tracer = profile.tracer if profile is not None else None
    t0 = time.perf_counter() if tracer is not None else 0.0
    # Sort by row so contributions can be segment-summed (np.add.at is
    # an order of magnitude slower than this gather/reduce formulation).
    order = np.argsort(rows, kind="stable")
    r_sorted = rows[order]
    boundaries = np.flatnonzero(np.diff(r_sorted)) + 1
    segments = np.concatenate(([0], boundaries))
    impl = _kernel_impl(profile)
    if impl is not None and _f64(vals, B, out):
        seg_starts = np.concatenate((segments, [nnz])).astype(np.int64)
        impl.spmm_scatter_add(
            np.ascontiguousarray(r_sorted, dtype=np.int64),
            np.ascontiguousarray(cols[order], dtype=np.int64),
            np.ascontiguousarray(vals[order]),
            np.ascontiguousarray(B),
            out,
            seg_starts,
        )
    else:
        contrib = vals[order, None] * B[cols[order]]
        sums = np.add.reduceat(contrib, segments, axis=0)
        out[r_sorted[segments]] += sums
    if profile is not None:
        profile.add_flops(spmm_flops(nnz, B.shape[1]))
        if tracer is not None:
            tracer.span("spmm-scatter", "kernel", t0, time.perf_counter())
    return out

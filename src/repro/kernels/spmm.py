"""Local SpMM kernels.

``SpMMA(S, B) = S @ B`` and ``SpMMB(S, A) = S.T @ A`` over a
:class:`~repro.sparse.coo.SparseBlock`.  The CSR structure of the block is
cached (paper-style amortized preprocessing); each call is a single SciPy
CSR matmul accumulated into the caller's output buffer.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.runtime.profile import RankProfile
from repro.sparse.coo import SparseBlock


def spmm_flops(nnz: int, r: int) -> int:
    """FLOPs of one SpMM over ``nnz`` nonzeros and width ``r``."""
    return 2 * nnz * r


def spmm_a_block(
    block: SparseBlock,
    B: np.ndarray,
    out: np.ndarray,
    values: Optional[np.ndarray] = None,
    profile: Optional[RankProfile] = None,
) -> np.ndarray:
    """``out += S_block @ B`` (output shaped like A's rows for this block).

    ``values`` overrides the block's stored values (e.g. an SDDMM result
    reusing the input's sparsity structure).
    """
    tracer = profile.tracer if profile is not None else None
    t0 = time.perf_counter() if tracer is not None else 0.0
    if block.nnz:
        out += block.csr(values) @ B
    if profile is not None:
        profile.add_flops(spmm_flops(block.nnz, B.shape[1]))
        if tracer is not None:
            tracer.span("spmm-a", "kernel", t0, time.perf_counter())
    return out


def spmm_b_block(
    block: SparseBlock,
    A: np.ndarray,
    out: np.ndarray,
    values: Optional[np.ndarray] = None,
    profile: Optional[RankProfile] = None,
) -> np.ndarray:
    """``out += S_block.T @ A`` (output shaped like B's rows for this block)."""
    tracer = profile.tracer if profile is not None else None
    t0 = time.perf_counter() if tracer is not None else 0.0
    if block.nnz:
        out += block.csr_t(values) @ A
    if profile is not None:
        profile.add_flops(spmm_flops(block.nnz, A.shape[1]))
        if tracer is not None:
            tracer.span("spmm-b", "kernel", t0, time.perf_counter())
    return out


def spmm_scatter(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    B: np.ndarray,
    out: np.ndarray,
    profile: Optional[RankProfile] = None,
) -> np.ndarray:
    """``out[rows] += vals * B[cols]`` without building a CSR.

    Used for one-shot products on transient coordinate chunks (circulating
    sparse blocks visit a rank once per kernel call, so building a CSR
    would not amortize).  Contributions of duplicate rows are summed.
    """
    nnz = len(rows)
    if nnz == 0:
        return out
    tracer = profile.tracer if profile is not None else None
    t0 = time.perf_counter() if tracer is not None else 0.0
    # Sort by row so contributions can be segment-summed (np.add.at is
    # an order of magnitude slower than this gather/reduce formulation).
    order = np.argsort(rows, kind="stable")
    r_sorted = rows[order]
    contrib = vals[order, None] * B[cols[order]]
    boundaries = np.flatnonzero(np.diff(r_sorted)) + 1
    segments = np.concatenate(([0], boundaries))
    sums = np.add.reduceat(contrib, segments, axis=0)
    out[r_sorted[segments]] += sums
    if profile is not None:
        profile.add_flops(spmm_flops(nnz, B.shape[1]))
        if tracer is not None:
            tracer.span("spmm-scatter", "kernel", t0, time.perf_counter())
    return out

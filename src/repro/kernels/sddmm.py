"""Local SDDMM kernels.

``SDDMM(A, B, S) = S * (A @ B.T)`` evaluated only at the nonzeros of S:
for each nonzero ``(i, j)``, the output value is ``S_ij * <A_i, B_j>``.

The core routine is *chunked* over nonzeros so the gathered row blocks
``A[rows]`` / ``B[cols]`` stay inside the last-level cache — the same
blocking consideration the paper discusses for shared-memory SDDMM
(Section III-A).

Each public kernel takes an optional ``profile``; when the profile
carries a compiled kernel backend (``profile.kernels``, attached by the
session for ``kernels="numba"``), the inner compute loop dispatches to
it for float64 operands and the wrapper keeps all bookkeeping (FLOP
accounting, tracer spans, ``s_vals`` scaling, ``col_range`` slicing).
Non-float64 operands always take the numpy path — the compiled backend
covers the library's working dtype only, so dtype edge cases behave
identically under every backend.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

import numpy as np

from repro.runtime.profile import RankProfile
from repro.sparse.coo import SparseBlock

#: Nonzeros processed per chunk.  Each chunk gathers two 64k-row blocks
#: of width r, i.e. ``2 * 65536 * r * 8`` bytes — 64 MB at r=64 — so a
#: chunk's working set stays within a typical last-level cache slice and
#: the full ``nnz x r`` gather is never materialized at once.
_CHUNK = 1 << 16


def _kernel_impl(profile: Optional[RankProfile]):
    """The compiled kernel backend carried by ``profile``, or ``None``.

    ``None`` (no profile, or ``kernels="numpy"``) selects the inline
    numpy paths — the default costs one attribute read per kernel call.
    """
    return profile.kernels if profile is not None else None


def _f64(*arrays: np.ndarray) -> bool:
    """True when every array is float64 (the compiled backends' dtype)."""
    return all(a.dtype == np.float64 for a in arrays)


def sddmm_coo(
    A: np.ndarray,
    B: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    s_vals: Optional[np.ndarray] = None,
    out: Optional[np.ndarray] = None,
    accumulate: bool = False,
    col_range: Optional[tuple] = None,
    profile: Optional[RankProfile] = None,
) -> np.ndarray:
    """SDDMM on COO coordinates.

    Parameters
    ----------
    A, B:
        Dense row-major matrices; ``A[rows[k]]`` and ``B[cols[k]]`` must be
        valid for every nonzero ``k``.
    rows, cols:
        Nonzero coordinates (local to A's / B's row spaces).
    s_vals:
        Optional sparse-matrix values to multiply into the dots (the
        ``S *`` part of the definition).  ``None`` means pattern-only
        (values implicitly 1), which is what FusedMM-style attention and
        the partial-accumulation paths of the distributed algorithms use.
    out, accumulate:
        With ``accumulate=True`` the dots are *added* into ``out`` — the
        primitive used when partial dot products over a column strip of A
        and B accumulate across phases (1.5D sparse shift, 2.5D kernels).
    col_range:
        Optional ``(k0, k1)`` column strip of A and B to restrict the dot
        products to (partial SDDMM over an r-strip).
    profile:
        FLOP accounting sink.

    Returns the values array (length ``len(rows)``).
    """
    tracer = profile.tracer if profile is not None else None
    t0 = time.perf_counter() if tracer is not None else 0.0
    nnz = len(rows)
    if out is None:
        out = np.zeros(nnz, dtype=np.float64)  # freshly zeroed
    elif not accumulate:
        out[:] = 0.0
    if col_range is not None:
        k0, k1 = col_range
        A = A[:, k0:k1]
        B = B[:, k0:k1]
    r = A.shape[1]
    impl = _kernel_impl(profile)
    if impl is not None and _f64(A, B, out):
        impl.sddmm_dots_add(
            np.ascontiguousarray(A),
            np.ascontiguousarray(B),
            np.ascontiguousarray(rows, dtype=np.int64),
            np.ascontiguousarray(cols, dtype=np.int64),
            out,
        )
    else:
        for s in range(0, nnz, _CHUNK):
            e = min(s + _CHUNK, nnz)
            ga = A[rows[s:e]]
            gb = B[cols[s:e]]
            # einsum computes the row-wise dots without materializing ga*gb
            out[s:e] += np.einsum("ij,ij->i", ga, gb)
    if s_vals is not None:
        out *= s_vals
    if profile is not None:
        profile.add_flops(2 * nnz * r + (nnz if s_vals is not None else 0))
        if tracer is not None:
            tracer.span("sddmm", "kernel", t0, time.perf_counter())
    return out


def sddmm_block(
    A: np.ndarray,
    B: np.ndarray,
    block: SparseBlock,
    use_values: bool = True,
    profile: Optional[RankProfile] = None,
) -> np.ndarray:
    """SDDMM against a :class:`SparseBlock`; returns new values for it."""
    return sddmm_coo(
        A,
        B,
        block.rows,
        block.cols,
        s_vals=block.vals if use_values else None,
        profile=profile,
    )


def gat_edge_scores(
    uL: np.ndarray,
    uR: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    negative_slope: float = 0.2,
    profile: Optional[RankProfile] = None,
) -> np.ndarray:
    """Graph-attention edge scores ``LeakyReLU(uL[i] + uR[j])``.

    The paper observes that the GAT score matrix
    ``(A_GAT)_{ij} = a^T (A_i || A_j)`` decomposes into per-node scalars
    ``uL = H @ a_left`` and ``uR = H @ a_right``, so its sampled evaluation
    has the *identical communication pattern* to an SDDMM.  This kernel is
    the local piece; distributed execution routes through the same
    machinery as :func:`sddmm_coo` with width-2 dense operands.
    """
    tracer = profile.tracer if profile is not None else None
    t0 = time.perf_counter() if tracer is not None else 0.0
    impl = _kernel_impl(profile)
    if impl is not None and _f64(uL, uR):
        e = np.empty(len(rows), dtype=np.float64)
        impl.gat_edge_scores(
            np.ascontiguousarray(uL),
            np.ascontiguousarray(uR),
            np.ascontiguousarray(rows, dtype=np.int64),
            np.ascontiguousarray(cols, dtype=np.int64),
            float(negative_slope),
            e,
        )
    else:
        e = uL[rows] + uR[cols]
        np.multiply(e, negative_slope, out=e, where=e < 0)
    if profile is not None:
        profile.add_flops(2 * len(rows))
        if tracer is not None:
            tracer.span("gat-edge-scores", "kernel", t0, time.perf_counter())
    return e


def make_gat_operands(uL: np.ndarray, uR: np.ndarray) -> tuple:
    """Lift GAT score vectors into width-2 SDDMM operands.

    ``SDDMM(A', B', S)`` with ``A' = [uL, 1]`` and ``B' = [1, uR]``
    computes ``uL[i] + uR[j]`` at every nonzero, proving the paper's claim
    that GAT attention is an SDDMM in disguise.
    """
    A2 = np.stack([uL, np.ones_like(uL)], axis=1)
    B2 = np.stack([np.ones_like(uR), uR], axis=1)
    return A2, B2


class GatScoreOp:
    """Structured GAT edge op for :func:`sddmm_custom`.

    Computes ``LeakyReLU(<A_i, a_row> + <B_j, a_col>)`` per edge — the
    fused attention-score kernel of the GAT app.  Being a *structured*
    op (rather than an opaque closure) lets the compiled kernel backends
    recognize it and run the whole score computation in one jitted pass,
    and lets it carry an honest per-edge FLOP count (two width-r dots,
    one add, one compare/multiply) instead of ``sddmm_custom``'s generic
    ``2*r`` estimate.
    """

    __slots__ = ("a_row", "a_col", "negative_slope")

    def __init__(
        self, a_row: np.ndarray, a_col: np.ndarray, negative_slope: float = 0.2
    ) -> None:
        self.a_row = a_row
        self.a_col = a_col
        self.negative_slope = negative_slope

    @property
    def flops_per_edge(self) -> int:
        return 4 * len(self.a_row) + 2

    def __call__(self, ga: np.ndarray, gb: np.ndarray) -> np.ndarray:
        e = ga @ self.a_row + gb @ self.a_col
        return np.where(e >= 0, e, self.negative_slope * e)


def sddmm_custom(
    A: np.ndarray,
    B: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    edge_op: Callable[[np.ndarray, np.ndarray], np.ndarray],
    flops_per_edge: Optional[int] = None,
    profile: Optional[RankProfile] = None,
) -> np.ndarray:
    """Generalized SDDMM: ``edge_op(A[rows_chunk], B[cols_chunk])`` per chunk.

    Lets applications compute arbitrary per-edge functions of the incident
    dense rows while reusing the SDDMM data movement (used by the GAT app
    for fused score computation, and available for user extensions).

    FLOP accounting uses, in order of preference: an explicit
    ``flops_per_edge`` argument, the op's own ``flops_per_edge``
    attribute (see :class:`GatScoreOp`), then the generic dense-dot
    estimate ``2 * A.shape[1]`` — so structured ops no longer overstate
    (or understate) compute in reports.

    A compiled kernel backend runs :class:`GatScoreOp` in one jitted
    pass; opaque callables always execute the numpy chunk loop (they are
    arbitrary Python, so every backend produces bitwise-identical output
    for them by construction).
    """
    tracer = profile.tracer if profile is not None else None
    t0 = time.perf_counter() if tracer is not None else 0.0
    nnz = len(rows)
    if flops_per_edge is None:
        flops_per_edge = getattr(edge_op, "flops_per_edge", 2 * A.shape[1])
    out = np.empty(nnz, dtype=np.float64)
    impl = _kernel_impl(profile)
    if (
        impl is not None
        and isinstance(edge_op, GatScoreOp)
        and _f64(A, B, edge_op.a_row, edge_op.a_col)
    ):
        impl.sddmm_gat_score(
            np.ascontiguousarray(A),
            np.ascontiguousarray(B),
            np.ascontiguousarray(rows, dtype=np.int64),
            np.ascontiguousarray(cols, dtype=np.int64),
            np.ascontiguousarray(edge_op.a_row),
            np.ascontiguousarray(edge_op.a_col),
            float(edge_op.negative_slope),
            out,
        )
    else:
        for s in range(0, nnz, _CHUNK):
            e = min(s + _CHUNK, nnz)
            out[s:e] = edge_op(A[rows[s:e]], B[cols[s:e]])
    if profile is not None:
        profile.add_flops(nnz * flops_per_edge)
        if tracer is not None:
            tracer.span("sddmm-custom", "kernel", t0, time.perf_counter())
    return out

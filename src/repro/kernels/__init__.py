"""Local (single-rank) kernels.

These are the building blocks every distributed algorithm calls once per
phase: SDDMM, SpMM (both orientations) and a fused SDDMM+SpMM that avoids
materializing the intermediate sparse matrix (the paper's "optimized local
FusedMM functions ... elide intermediate storage of the SDDMM result").

They stand in for the paper's MKL SpMM and handwritten OpenMP SDDMM; the
default implementations are fully vectorized NumPy/SciPy with explicit
FLOP accounting so runs can be costed under the gamma model.  A second,
numba-JIT'd implementation of the hot kernels lives behind the
``kernels=`` registry (:mod:`repro.kernels.registry`); the wrappers here
dispatch per call through the backend object carried by the rank
profile, with ``kernels="numpy"`` (no backend attached) as the
zero-overhead default.
"""

from repro.kernels.blocked import tiled_sddmm, tiled_spmm
from repro.kernels.fused import fusedmm_local
from repro.kernels.registry import (
    KERNEL_BACKENDS,
    available_kernel_backends,
    ensure_kernel_backend_available,
    get_kernel_backend,
    numba_available,
    resolve_kernel_backend,
    validate_kernel_backend_name,
)
from repro.kernels.sddmm import (
    GatScoreOp,
    gat_edge_scores,
    sddmm_block,
    sddmm_coo,
    sddmm_custom,
)
from repro.kernels.spmm import spmm_a_block, spmm_b_block, spmm_flops, spmm_scatter

__all__ = [
    "sddmm_coo",
    "sddmm_block",
    "sddmm_custom",
    "GatScoreOp",
    "gat_edge_scores",
    "spmm_a_block",
    "spmm_b_block",
    "spmm_scatter",
    "spmm_flops",
    "fusedmm_local",
    "tiled_sddmm",
    "tiled_spmm",
    "KERNEL_BACKENDS",
    "available_kernel_backends",
    "ensure_kernel_backend_available",
    "get_kernel_backend",
    "numba_available",
    "resolve_kernel_backend",
    "validate_kernel_backend_name",
]

"""Local (single-rank) kernels.

These are the building blocks every distributed algorithm calls once per
phase: SDDMM, SpMM (both orientations) and a fused SDDMM+SpMM that avoids
materializing the intermediate sparse matrix (the paper's "optimized local
FusedMM functions ... elide intermediate storage of the SDDMM result").

They stand in for the paper's MKL SpMM and handwritten OpenMP SDDMM; the
implementations are fully vectorized NumPy/SciPy with explicit FLOP
accounting so runs can be costed under the gamma model.
"""

from repro.kernels.blocked import tiled_sddmm, tiled_spmm
from repro.kernels.fused import fusedmm_local
from repro.kernels.sddmm import gat_edge_scores, sddmm_block, sddmm_coo
from repro.kernels.spmm import spmm_a_block, spmm_b_block, spmm_flops

__all__ = [
    "sddmm_coo",
    "sddmm_block",
    "gat_edge_scores",
    "spmm_a_block",
    "spmm_b_block",
    "spmm_flops",
    "fusedmm_local",
    "tiled_sddmm",
    "tiled_spmm",
]

"""Kernel-backend registry: ``kernels="numpy"|"numba"|"auto"``.

The six hot local kernels — :func:`~repro.kernels.sddmm.sddmm_coo`,
:func:`~repro.kernels.sddmm.sddmm_custom`,
:func:`~repro.kernels.sddmm.gat_edge_scores`,
:func:`~repro.kernels.spmm.spmm_a_block`,
:func:`~repro.kernels.spmm.spmm_b_block` and
:func:`~repro.kernels.spmm.spmm_scatter` — dispatch their inner compute
loop through the backend object a :class:`~repro.session.Session`
attaches to its rank profiles (``profile.kernels``).  ``None`` (the
default, ``kernels="numpy"``) keeps the historical vectorized
numpy/scipy paths at zero dispatch cost; ``"numba"`` swaps in the
JIT'd ``prange`` kernels of :mod:`repro.kernels.backend_numba`.

Name resolution mirrors the execution-backend registry in
:mod:`repro.runtime.backend`: :func:`validate_kernel_backend_name`
canonicalizes and raises a typed
:class:`~repro.errors.UnknownKernelBackendError` for names outside
:data:`KERNEL_BACKENDS`; :func:`ensure_kernel_backend_available` raises
:class:`~repro.errors.KernelBackendUnavailableError` with the install
hint when numba is missing.  Validation never checks availability, so
feature guards (e.g. the thread-backend-only rule) can fire first — the
same guard-ordering rule the execution backends established.

``kernels="auto"`` picks the backend with the highest *measured* flops
ceiling from the per-host microbenchmark calibration in
:mod:`repro.model.calibrate`; only available backends are considered, so
``auto`` degrades to numpy (never raises) on hosts without numba.

**Bitwise policy** (gated in ``tests/test_kernel_backends.py``):
``spmm_a_block``, ``spmm_b_block``, ``gat_edge_scores`` and the numpy
fallback of ``sddmm_custom`` are bitwise-identical across backends.
``sddmm_coo``, ``spmm_scatter`` and the compiled
:class:`~repro.kernels.sddmm.GatScoreOp` path of ``sddmm_custom`` carry
a documented tolerance instead: their numpy formulations reduce through
``np.einsum`` / ``np.add.reduceat`` / BLAS gemv, whose internal
accumulation order depends on SIMD width and numpy/BLAS version and
cannot be replicated portably (error bound ``O(r * eps)`` per reduced
element; see ``backend_numba.py``).

**Adding a third backend** (e.g. cupy): extend :data:`KERNEL_BACKENDS`,
add an availability probe, and return an object from
:func:`get_kernel_backend` with the five inner-compute hooks
(``sddmm_dots_add``, ``gat_edge_scores``, ``sddmm_gat_score``,
``spmm_csr_add``, ``spmm_scatter_add``), a ``name`` attribute and a
``warmup()`` method — the wrappers and the Session never special-case a
backend beyond ``None``-means-numpy.
"""

from __future__ import annotations

import importlib.util
from typing import NamedTuple, Optional

from repro.errors import KernelBackendUnavailableError, UnknownKernelBackendError

#: registered kernel backends, in default-preference order
KERNEL_BACKENDS = ("numpy", "numba")

#: the dispatched kernels (informational; the registry ships them all)
DISPATCHED_KERNELS = (
    "sddmm_coo",
    "sddmm_custom",
    "gat_edge_scores",
    "spmm_a_block",
    "spmm_b_block",
    "spmm_scatter",
)


def validate_kernel_backend_name(kernels: str, allow_auto: bool = True) -> str:
    """Canonicalize a kernel-backend name or raise a typed error.

    Accepts the names in :data:`KERNEL_BACKENDS` plus ``"auto"`` (unless
    ``allow_auto=False``), case-insensitively; anything else raises
    :class:`~repro.errors.UnknownKernelBackendError` naming the
    registered backends.  Availability is *not* checked here — see
    :func:`ensure_kernel_backend_available` — so callers can validate
    knobs (and apply feature guards) before deciding whether the backend
    must actually run.
    """
    name = str(kernels).strip().lower()
    if name == "auto" and allow_auto:
        return name
    if name not in KERNEL_BACKENDS:
        raise UnknownKernelBackendError(
            f"unknown kernel backend {kernels!r}; registered backends: "
            f"{', '.join(KERNEL_BACKENDS)}"
            + (" (or 'auto' for the measured-calibration pick)" if allow_auto else "")
        )
    return name


def numba_available() -> bool:
    """True when :mod:`numba` is importable (without importing it)."""
    return importlib.util.find_spec("numba") is not None


def available_kernel_backends() -> tuple:
    """The registered backends that can actually run here, in order."""
    return tuple(
        b for b in KERNEL_BACKENDS if b != "numba" or numba_available()
    )


def ensure_kernel_backend_available(kernels: str) -> None:
    """Raise :class:`~repro.errors.KernelBackendUnavailableError` if
    ``kernels`` (already validated, not ``"auto"``) cannot run here."""
    if kernels == "numba" and not numba_available():
        raise KernelBackendUnavailableError(
            "kernels='numba' needs numba, which is not installed. "
            "Install it with `pip install numba`, or use the default "
            "kernels='numpy' (always available) / kernels='auto' "
            "(picks the fastest measured backend among those installed)."
        )


class KernelChoice(NamedTuple):
    """A fully resolved ``kernels=`` knob.

    ``backend`` is the dispatch object rank profiles carry (``None`` for
    numpy: the wrappers' inline paths need no indirection), and
    ``compute_gamma`` is the calibrated seconds-per-FLOP of the chosen
    backend when the choice came from ``"auto"`` (``None`` for explicit
    choices: the cost model then keeps the machine's assumed gamma).
    """

    name: str
    backend: Optional[object]
    compute_gamma: Optional[float]


_NUMBA_SINGLETON = None


def get_kernel_backend(kernels: str):
    """The dispatch object for a validated, available backend name.

    Returns ``None`` for ``"numpy"`` — the kernel wrappers treat an
    absent backend as the inline numpy path, so the default costs one
    attribute read per call.  The numba backend is a process-wide
    singleton (its JIT warmup is per-process, not per-session).
    """
    if kernels == "numpy":
        return None
    global _NUMBA_SINGLETON
    if _NUMBA_SINGLETON is None:
        ensure_kernel_backend_available(kernels)
        from repro.kernels.backend_numba import NumbaKernels

        _NUMBA_SINGLETON = NumbaKernels()
    return _NUMBA_SINGLETON


def resolve_kernel_backend(kernels: str) -> KernelChoice:
    """Validate, availability-check and (for ``"auto"``) calibrate.

    ``"auto"`` consults the cached per-host microbenchmark calibration
    (:func:`repro.model.calibrate.choose_kernel_backend`) over the
    *available* backends, so it never raises on a host without numba —
    it measures what is installed and returns the fastest, together with
    its measured seconds-per-FLOP for the cost model's compute terms.
    """
    name = validate_kernel_backend_name(kernels)
    if name == "auto":
        from repro.model.calibrate import choose_kernel_backend

        picked, gamma = choose_kernel_backend()
        return KernelChoice(picked, get_kernel_backend(picked), gamma)
    ensure_kernel_backend_available(name)
    return KernelChoice(name, get_kernel_backend(name), None)

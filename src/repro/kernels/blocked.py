"""Cache-blocked local kernel variants (paper Section III-A ablation).

Shared-memory SDDMM/SpMM are bandwidth bound; the paper cites adaptive
sparse tiling (Hong et al.) and reordering (Jiang et al.) as the standard
optimizations.  These tiled variants partition the sparse block into
column tiles so the touched rows of the dense operand stay cache-resident
while the tile's nonzeros stream.  They are exact (bitwise-equivalent
summation order differs only across tiles) and exist to support the
shared-memory ablation benchmark.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.kernels.sddmm import sddmm_coo
from repro.runtime.profile import RankProfile
from repro.sparse.coo import SparseBlock


def _column_tiles(block: SparseBlock, tile_cols: int):
    """Yield (rows, cols_local_to_tile, vals, col_start) per column tile."""
    tile_ids = block.cols // tile_cols
    order = np.argsort(tile_ids, kind="stable")
    tids = tile_ids[order]
    boundaries = np.flatnonzero(np.diff(tids)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(tids)]))
    for s, e in zip(starts, ends):
        idx = order[s:e]
        col_start = int(tids[s]) * tile_cols
        yield (
            block.rows[idx], block.cols[idx] - col_start, block.vals[idx],
            col_start, idx,
        )


def tiled_spmm(
    block: SparseBlock,
    B: np.ndarray,
    out: np.ndarray,
    tile_cols: int = 4096,
    profile: Optional[RankProfile] = None,
) -> np.ndarray:
    """``out += S @ B`` processing S in column tiles of ``tile_cols``."""
    if block.nnz == 0:
        return out
    for rows, cols, vals, col_start, _ in _column_tiles(block, tile_cols):
        b_tile = B[col_start : col_start + tile_cols]
        # gather-and-segment-sum within the tile
        order = np.argsort(rows, kind="stable")
        r_sorted = rows[order]
        contrib = vals[order, None] * b_tile[cols[order]]
        seg = np.concatenate(([0], np.flatnonzero(np.diff(r_sorted)) + 1))
        out[r_sorted[seg]] += np.add.reduceat(contrib, seg, axis=0)
    if profile is not None:
        profile.add_flops(2 * block.nnz * B.shape[1])
    return out


def tiled_sddmm(
    A: np.ndarray,
    B: np.ndarray,
    block: SparseBlock,
    tile_cols: int = 4096,
    use_values: bool = True,
    profile: Optional[RankProfile] = None,
) -> np.ndarray:
    """SDDMM computed tile-by-tile over B's rows; returns values in the
    block's COO order."""
    out = np.zeros(block.nnz, dtype=np.float64)
    if block.nnz == 0:
        return out
    for rows, cols, vals, col_start, idx in _column_tiles(block, tile_cols):
        b_tile = B[col_start : col_start + tile_cols]
        dots = sddmm_coo(A, b_tile, rows, cols)
        out[idx] = dots * vals if use_values else dots
    if profile is not None:
        profile.add_flops(2 * block.nnz * A.shape[1])
    return out

"""Numba-JIT'd local kernels (``kernels="numba"``).

Compiled, ``prange``-parallel implementations of the six hot local
kernels dispatched by :mod:`repro.kernels.registry`.  Partitioning
follows the shared-memory sparse-kernel literature (Gale et al., "Sparse
GPU Kernels for Deep Learning"):

* **Row-partitioned CSR** for SpMMA/SpMMB: one ``prange`` iteration per
  output row walks that row's nonzeros in CSR index order into a private
  accumulator, then adds the accumulator into the caller's output — the
  *same* per-element accumulation order SciPy's ``csr @ dense`` routine
  (``csr_matvecs``) uses, so the numpy and numba paths are
  **bitwise-identical** (gated in ``tests/test_kernel_backends.py``).
* **Merge/nonzero-partitioned COO** for SDDMM-family kernels: ``prange``
  over nonzeros gives every thread an equal contiguous nonzero range (the
  merge-path equal-work split for edge-parallel kernels).  Where the
  numpy path materializes gathered row blocks in ``_CHUNK``-sized pieces
  to stay cache-resident, the compiled loop streams each edge's two rows
  directly from A and B and materializes nothing — the cache blocking is
  implicit in the per-thread contiguous nonzero range.

``fastmath`` is **off** everywhere and every reduction has a fixed
left-to-right accumulation order.  Two kernels still cannot match the
numpy path bit for bit, because numpy's own reduction order there is an
implementation detail that varies with SIMD width and numpy version:

* ``sddmm_coo`` — ``np.einsum("ij,ij->i")`` reduces each edge dot with
  SIMD partial accumulators (empirically ≠ any fixed sequential order);
* ``spmm_scatter`` — ``np.add.reduceat`` segment sums are likewise not
  plain left-to-right.

For those two the registry documents a tight tolerance instead (error
bounded by ``r * eps`` per reduced element); the equivalence suite gates
it.  The other four kernels are gated bitwise.

The module imports cleanly without numba (mirroring
``runtime/backend_mpi.py``): guards in the registry raise the typed
:class:`~repro.errors.KernelBackendUnavailableError` before any jitted
symbol is touched.  ``cache=True`` persists compiled machine code across
processes; :meth:`NumbaKernels.warmup` is called at plan time so
first-call latency is not poisoned by JIT compilation.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit, prange

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover
    HAVE_NUMBA = False

    def njit(*args, **kwargs):  # type: ignore[misc]
        """Decorator stub so the module defines its symbols without numba
        (they raise via the registry guard before ever being called)."""

        def wrap(fn):
            return fn

        return wrap

    prange = range  # type: ignore[assignment]


@njit(cache=True, parallel=True)
def _sddmm_dots_add(A, B, rows, cols, out):
    """``out[k] += <A[rows[k]], B[cols[k]]>`` for every nonzero k.

    Each edge dot accumulates left-to-right over the r dimension in a
    scalar (fixed order); edges are independent, so ``prange`` over
    nonzeros is an equal-nnz merge split with no write conflicts.
    """
    nnz = rows.shape[0]
    r = A.shape[1]
    for k in prange(nnz):
        i = rows[k]
        j = cols[k]
        acc = 0.0
        for t in range(r):
            acc += A[i, t] * B[j, t]
        out[k] += acc


@njit(cache=True, parallel=True)
def _gat_edge_scores(uL, uR, rows, cols, negative_slope, out):
    """``out[k] = LeakyReLU(uL[rows[k]] + uR[cols[k]])`` — one add and at
    most one multiply per edge, identical to the numpy formulation."""
    for k in prange(rows.shape[0]):
        e = uL[rows[k]] + uR[cols[k]]
        if e < 0.0:
            e = e * negative_slope
        out[k] = e


@njit(cache=True, parallel=True)
def _sddmm_gat_score(A, B, rows, cols, a_row, a_col, negative_slope, out):
    """Fused GAT attention scores at the nonzeros:
    ``out[k] = LeakyReLU(<A[rows[k]], a_row> + <B[cols[k]], a_col>)``.

    The numpy path computes the two projections with BLAS gemv per chunk;
    its reduction order is BLAS-internal, so this kernel is gated with
    the documented tolerance rather than bitwise.
    """
    nnz = rows.shape[0]
    r = A.shape[1]
    for k in prange(nnz):
        i = rows[k]
        j = cols[k]
        accr = 0.0
        for t in range(r):
            accr += A[i, t] * a_row[t]
        accc = 0.0
        for t in range(r):
            accc += B[j, t] * a_col[t]
        e = accr + accc
        if e < 0.0:
            e = e * negative_slope
        out[k] = e


@njit(cache=True, parallel=True)
def _spmm_csr_add(indptr, indices, data, B, out):
    """``out[i, :] += sum_k data[k] * B[indices[k], :]`` per CSR row.

    Row-partitioned: one ``prange`` iteration per output row.  The
    private accumulator starts at zero and adds the row's nonzeros in
    CSR index order — exactly SciPy's ``csr_matvecs`` order — and is
    added into ``out`` once, matching ``out += csr @ B`` bitwise.
    """
    n = indptr.shape[0] - 1
    r = B.shape[1]
    for i in prange(n):
        s = indptr[i]
        e = indptr[i + 1]
        if s == e:
            continue
        acc = np.zeros(r)
        for k in range(s, e):
            v = data[k]
            j = indices[k]
            for t in range(r):
                acc[t] += v * B[j, t]
        for t in range(r):
            out[i, t] += acc[t]


@njit(cache=True, parallel=True)
def _spmm_scatter_add(r_sorted, c_sorted, v_sorted, B, out, seg_starts):
    """Segment-summed ``out[row] += val * B[col]`` over row-sorted COO.

    One ``prange`` iteration per output-row segment (the same segments
    the numpy path feeds ``np.add.reduceat``); within a segment the
    contributions accumulate left-to-right.  Nothing the size of the
    numpy path's ``nnz x r`` ``contrib`` array is ever materialized.
    """
    nseg = seg_starts.shape[0] - 1
    r = B.shape[1]
    for s in prange(nseg):
        lo = seg_starts[s]
        hi = seg_starts[s + 1]
        row = r_sorted[lo]
        acc = np.zeros(r)
        for k in range(lo, hi):
            v = v_sorted[k]
            j = c_sorted[k]
            for t in range(r):
                acc[t] += v * B[j, t]
        for t in range(r):
            out[row, t] += acc[t]


class NumbaKernels:
    """The ``kernels="numba"`` backend object handed to rank profiles.

    The public kernel wrappers in :mod:`repro.kernels.sddmm` /
    :mod:`repro.kernels.spmm` keep all bookkeeping (FLOP accounting,
    tracer spans, ``s_vals`` scaling, ``col_range`` slicing, argsort /
    CSR-structure preparation) and delegate only the inner compute loop
    here, so both backends share one contract and one accounting path.
    """

    name = "numba"

    def __init__(self) -> None:
        self._warmed = False

    # inner compute hooks (see the jitted functions for contracts)
    sddmm_dots_add = staticmethod(_sddmm_dots_add)
    gat_edge_scores = staticmethod(_gat_edge_scores)
    sddmm_gat_score = staticmethod(_sddmm_gat_score)
    spmm_csr_add = staticmethod(_spmm_csr_add)
    spmm_scatter_add = staticmethod(_spmm_scatter_add)

    def warmup(self) -> "NumbaKernels":
        """Compile every kernel on tiny operands (idempotent).

        Called at plan time so the first real kernel call is not charged
        JIT compilation; ``cache=True`` makes repeat processes load the
        machine code from the on-disk cache instead of recompiling.
        """
        if self._warmed:
            return self
        idx = np.zeros(1, dtype=np.int64)
        M = np.zeros((1, 2))
        vec = np.zeros(2)
        val = np.zeros(1)
        out1 = np.zeros(1)
        out2 = np.zeros((1, 2))
        seg = np.array([0, 1], dtype=np.int64)
        indptr = np.array([0, 1], dtype=np.int64)
        _sddmm_dots_add(M, M, idx, idx, out1)
        _gat_edge_scores(val, val, idx, idx, 0.2, out1)
        _sddmm_gat_score(M, M, idx, idx, vec, vec, 0.2, out1)
        _spmm_csr_add(indptr, idx, val, M, out2)
        _spmm_scatter_add(idx, idx, val, M, out2, seg)
        self._warmed = True
        return self

"""Fused local SDDMM + SpMM kernel.

The 1.5D dense-shifting algorithm with *local kernel fusion* performs, per
propagation phase, a local SDDMM followed immediately by a local SpMM on
the same processor without intervening communication (paper Section IV-B).
This kernel performs that pair while reusing the cached CSR structure of
the input block and never materializing the intermediate sparse matrix as
a standalone object (cf. Rahman et al.'s FusedMM local kernels, the
paper's reference [11]).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.kernels.sddmm import sddmm_coo
from repro.runtime.profile import RankProfile
from repro.sparse.coo import SparseBlock


def fusedmm_local(
    A_rep: np.ndarray,
    B_cur: np.ndarray,
    block: SparseBlock,
    out: np.ndarray,
    use_values: bool = True,
    return_sddmm: bool = False,
    profile: Optional[RankProfile] = None,
) -> Optional[np.ndarray]:
    """``out += SDDMM(A_rep, B_cur, block) @ B_cur`` in one local pass.

    ``A_rep`` is the replicated dense input (full rows for this block's row
    range), ``B_cur`` the currently-held propagated block.  The SDDMM
    values live only in a transient array that is fed straight into the
    SpMM through the block's cached CSR structure.

    With ``return_sddmm=True`` the intermediate values are also returned
    (used by tests and by callers that keep R).
    """
    if block.nnz == 0:
        return np.zeros(0) if return_sddmm else None
    r_vals = sddmm_coo(
        A_rep,
        B_cur,
        block.rows,
        block.cols,
        s_vals=block.vals if use_values else None,
        profile=profile,
    )
    out += block.csr(r_vals) @ B_cur
    if profile is not None:
        profile.add_flops(2 * block.nnz * B_cur.shape[1])
    return r_vals if return_sddmm else None


def fusedmm_reference(
    S_rows: np.ndarray,
    S_cols: np.ndarray,
    S_vals: np.ndarray,
    A: np.ndarray,
    B: np.ndarray,
    shape: Tuple[int, int],
    variant: str = "a",
) -> np.ndarray:
    """Serial reference for FusedMMA / FusedMMB (used by tests).

    ``FusedMMA = SpMMA(SDDMM(A,B,S), B)``; ``FusedMMB = SpMMB(SDDMM(A,B,S), A)``.
    """
    block = SparseBlock(S_rows, S_cols, S_vals, shape)
    r_vals = sddmm_coo(A, B, S_rows, S_cols, s_vals=S_vals)
    if variant == "a":
        return block.csr(r_vals) @ B
    if variant == "b":
        return block.csr_t(r_vals) @ A
    raise ValueError(f"unknown variant {variant!r}")

"""Need-list planners: sparse-matrix structure -> per-rank CommPlans.

Given an algorithm's layout plan and the global sparse matrix, these
planners compute — driver side, like ``distribute`` — exactly which dense
rows each rank must exchange with each neighbor, because some resident
nonzero touches them:

* **1.5D sparse-shift** (``plan_sparse_shift_15d``): rank ``(u, v)``'s
  gathered panel ``T`` is only ever indexed at the union of the S rows of
  *layer* ``v`` (every chunk of the layer circulates through the rank),
  so the fiber all-gather need list from peer ``(u, w)`` is
  ``rows(layer v) ∩ rows_owned(w)`` — and the SpMMA output reduction is
  the exact mirror exchange.
* **2.5D sparse-replicate** (``plan_sparse_replicate_25d``): rank
  ``(x, y, z)`` reads A at ``unique(S_rows)`` and B at ``unique(S_cols)``
  of its resident coarse block in *every* chunk of its layer strip, so
  instead of relaying full dense pieces around the Cannon ring it fetches
  just those rows from each chunk's owner (and pushes back only the
  output rows it touched).

Plans are cached by sparse-structure fingerprint so repeated kernel
invocations on the same matrix (ALS sweeps, GAT layers, the paper's
"5 FusedMM calls") pay the planning cost once — the communication-layer
analogue of the paper's amortized CSR preprocessing.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.comm_sparse.plan import CommPlan, PackedIndex, PeerExchange
from repro.sparse.coo import CooMatrix, SparseBlock
from repro.sparse.partition import (
    block_of,
    global_to_local_map,
    partition_by_owner,
    partition_coo_2d,
)

_EMPTY = np.empty(0, dtype=np.int64)
_EMPTY_F = np.empty(0, dtype=np.float64)


# ----------------------------------------------------------------------
# per-rank plan bundles
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SparsePlan15D:
    """Need-list plans for one rank of the 1.5D sparse-shifting layout.

    Besides the row-space plans inherited from the traffic-only subsystem
    (``gather``/``reduce``), the bundle carries everything the *packed*
    buffer path needs, computed once per sparsity structure:

    * ``index`` — the sorted union of rows this rank's layer touches plus
      the cached global->packed remap (shared by every rank of the layer);
    * ``own_local``/``own_packed`` — positions of the locally-owned union
      rows in the local panel and in the packed panel respectively, so
      seeding a packed gather (or draining a packed reduction) is a single
      fancy-indexed copy;
    * ``gather_packed``/``reduce_packed`` — the plans rewritten into
      packed-panel coordinates (:meth:`CommPlan.packed_recv` /
      :meth:`CommPlan.packed_send`).
    """

    gather: CommPlan  # fiber all-gather of the dense A panel into T
    reduce: CommPlan  # fiber reduction of the SpMMA output panel (mirror)
    index: PackedIndex = None  # union of the layer's touched rows over m
    own_local: np.ndarray = None  # local-panel rows of owned union rows
    own_packed: np.ndarray = None  # packed positions of those same rows
    gather_packed: CommPlan = None  # gather with recv_rows in packed coords
    reduce_packed: CommPlan = None  # reduction with send_rows in packed coords
    #: the rank's home chunk coordinates pre-translated once per structure
    #: (rows into packed-panel space, cols into local-B space) so the
    #: circulating payloads need no per-call index translation at all —
    #: ordering matches ``Local15DSparse.S_rows``/``S_vals`` exactly
    #: (both sides derive it from the same owner partition of S)
    home_rows_packed: np.ndarray = None
    home_cols_local: np.ndarray = None

    @property
    def kernel_recv_words(self) -> Dict[str, int]:
        """Predicted per-kernel replication words received, by mode."""
        return {
            "sddmm": self.gather.recv_words(),
            "spmm_a": self.reduce.recv_words(),
            "spmm_b": self.gather.recv_words(),
        }


@dataclass(frozen=True)
class SparsePlan25D:
    """Need-list plans for one rank of the 2.5D sparse-replicating layout.

    ``strip_width`` is the full width of this layer's r-strip and
    ``my_window`` the column window (relative to the strip) of the chunk
    this rank owns — the kernels assemble gathered rows into a
    strip-wide buffer and slice their own chunk back out of it.
    """

    gather_a: CommPlan  # row-comm gather of needed A rows across chunks
    gather_b: CommPlan  # col-comm gather of needed B rows across chunks
    reduce_a: CommPlan  # row-comm reduction of touched SpMMA output rows
    reduce_b: CommPlan  # col-comm reduction of touched SpMMB output rows
    strip_width: int
    my_window: Tuple[int, int]
    # -- packed-panel extensions (computed once per structure) -------------
    index_a: PackedIndex = None  # unique S rows of the resident block
    index_b: PackedIndex = None  # unique S cols of the resident block
    gather_a_packed: CommPlan = None
    gather_b_packed: CommPlan = None
    reduce_a_packed: CommPlan = None
    reduce_b_packed: CommPlan = None
    #: the resident block's coordinates rewritten into packed-panel space
    #: (rows index a ``len(index_a.union)``-tall A panel, cols a
    #: ``len(index_b.union)``-tall B panel), with CSR structure prebuilt
    #: driver-side so rank threads only read the caches
    block_packed: SparseBlock = None

    @property
    def kernel_recv_words(self) -> Dict[str, int]:
        """Predicted per-kernel propagation words received, by mode."""
        return {
            "sddmm": self.gather_a.recv_words() + self.gather_b.recv_words(),
            "spmm_a": self.gather_b.recv_words() + self.reduce_a.recv_words(),
            "spmm_b": self.gather_a.recv_words() + self.reduce_b.recv_words(),
        }


# ----------------------------------------------------------------------
# 1.5D sparse-shift
# ----------------------------------------------------------------------


def plan_sparse_shift_15d(plan, S: CooMatrix) -> List[SparsePlan15D]:
    """Build per-rank fiber exchange plans for the 1.5D sparse layout.

    ``plan`` is a :class:`~repro.algorithms.sparse_shift_15d.Plan15DSparse`
    (duck-typed to avoid an import cycle with the algorithms package).
    """
    grid = plan.grid
    p, c = grid.p, grid.c
    rows_of = plan.rows_a_of_fiber  # sorted global rows owned per fiber coord

    # rows each *layer* touches: union of S rows over the layer's chunks,
    # plus the per-rank home-chunk partition (the same owner rule
    # ``distribute`` applies, so coordinate orderings coincide)
    home: Dict[int, tuple] = {}
    if S.nnz:
        layer_v = block_of(S.cols, plan.col_fine) % c
        need = [np.unique(S.rows[layer_v == v]) for v in range(c)]
        chunk = block_of(S.rows, plan.row_chunks)
        home = partition_by_owner(S.rows, S.cols, S.vals, chunk * c + layer_v, p)
    else:
        need = [_EMPTY] * c

    # I[v][w]: global rows layer v needs from fiber coordinate w's panel;
    # L[v][w]: panel-local positions at v of the rows layer w needs from v.
    inter = [[_EMPTY] * c for _ in range(c)]
    local = [[_EMPTY] * c for _ in range(c)]
    for v in range(c):
        for w in range(c):
            if v != w:
                inter[v][w] = np.intersect1d(need[v], rows_of[w], assume_unique=True)
    for v in range(c):
        for w in range(c):
            if v != w:
                local[v][w] = np.searchsorted(rows_of[v], inter[w][v])

    # packed index per *layer*: the union need[v] and its global->packed
    # remap are identical for every rank of layer v, so build them once
    # and share the (m-long) lookup across the layer's p/c plan bundles.
    indexes = [PackedIndex.from_rows(need[v], plan.m) for v in range(c)]
    own_positions = []
    loc_b = []
    for v in range(c):
        pos = indexes[v].lookup[rows_of[v]]
        own_local = np.flatnonzero(pos >= 0).astype(np.int64)
        own_positions.append((own_local, pos[own_local]))
        loc_b.append(global_to_local_map(plan.n, plan.rows_b_of_fiber[v]))

    plans: List[SparsePlan15D] = []
    for rank in range(p):
        u, v = grid.coords(rank)
        sw = plan.strip_width(u)
        peers = tuple(
            PeerExchange(
                peer=w,
                send_rows=local[v][w],
                recv_rows=inter[v][w],
                send_width=sw,
                recv_width=sw,
            )
            for w in range(c)
            if w != v
        )
        gather = CommPlan(key="15d/fiber-gather", size=c, rank=v, peers=peers)
        reduce = gather.reversed("15d/fiber-reduce")
        own_local, own_packed = own_positions[v]
        sr, sc = home.get(rank, (_EMPTY, _EMPTY))[:2]
        plans.append(
            SparsePlan15D(
                gather=gather,
                reduce=reduce,
                index=indexes[v],
                own_local=own_local,
                own_packed=own_packed,
                gather_packed=gather.packed_recv(indexes[v], "15d/fiber-gather/packed"),
                reduce_packed=reduce.packed_send(indexes[v], "15d/fiber-reduce/packed"),
                home_rows_packed=indexes[v].positions(sr),
                home_cols_local=loc_b[v][sc],
            )
        )
    return plans


# ----------------------------------------------------------------------
# 2.5D sparse-replicate
# ----------------------------------------------------------------------


def plan_sparse_replicate_25d(plan, S: CooMatrix) -> List[SparsePlan25D]:
    """Build per-rank row/col exchange plans for the 2.5D sparse layout.

    ``plan`` is a :class:`~repro.algorithms.sparse_repl_25d.Plan25DSparse`.
    The need lists are identical across the fiber (``z``) because block
    coordinates are replicated; only chunk windows differ per layer.
    """
    grid = plan.grid
    p, c, q = grid.p, grid.c, grid.q

    u_rows: Dict[Tuple[int, int], np.ndarray] = {}
    u_cols: Dict[Tuple[int, int], np.ndarray] = {}
    parts: Dict[Tuple[int, int], tuple] = {}
    if S.nnz:
        parts = partition_coo_2d(
            S.rows, S.cols, S.vals, plan.row_coarse, plan.col_coarse
        )
        for key, (br, bc, _, _) in parts.items():
            u_rows[key] = np.unique(br)
            u_cols[key] = np.unique(bc)

    # packed indexes + coordinate-remapped block, shared across the fiber
    # (block coordinates are replicated over z, so all c fiber ranks of a
    # block reuse ONE remap and ONE prebuilt packed CSR structure)
    packed: Dict[Tuple[int, int], Tuple[PackedIndex, PackedIndex, SparseBlock]] = {}

    def packed_of(x: int, y: int) -> Tuple[PackedIndex, PackedIndex, SparseBlock]:
        entry = packed.get((x, y))
        if entry is None:
            mb = int(plan.row_coarse[x + 1] - plan.row_coarse[x])
            nb = int(plan.col_coarse[y + 1] - plan.col_coarse[y])
            br, bc, bv, _ = parts.get((x, y), (_EMPTY, _EMPTY, _EMPTY_F, _EMPTY))
            ia = PackedIndex.from_rows(br, mb)
            ib = PackedIndex.from_rows(bc, nb)
            base = SparseBlock(br, bc, bv, (mb, nb))
            blk = base.remapped(
                "packed-25d", ia.lookup, ib.lookup, (ia.size, ib.size), prebuild=True
            )
            entry = (ia, ib, blk)
            packed[(x, y)] = entry
        return entry

    plans: List[SparsePlan25D] = []
    for rank in range(p):
        x, y, z = grid.coords(rank)
        strip0 = int(plan.strips[z])
        sw = int(plan.strips[z + 1]) - strip0
        cb = plan.chunk_bounds[z]

        def window(kappa: int) -> Tuple[int, int]:
            return (int(cb[kappa]) - strip0, int(cb[kappa + 1]) - strip0)

        my_w = window(plan.kappa0(x, y))
        my_width = my_w[1] - my_w[0]

        peers_a = []
        for yp in range(q):
            if yp == y:
                continue
            w0, w1 = window(plan.kappa0(x, yp))
            peers_a.append(
                PeerExchange(
                    peer=yp,
                    send_rows=u_rows.get((x, yp), _EMPTY),
                    recv_rows=u_rows.get((x, y), _EMPTY),
                    send_width=my_width,
                    recv_width=w1 - w0,
                    recv_cols=(w0, w1),
                )
            )
        gather_a = CommPlan(
            key="25d/row-gather-a", size=q, rank=y, peers=tuple(peers_a)
        )

        peers_b = []
        for xp in range(q):
            if xp == x:
                continue
            w0, w1 = window(plan.kappa0(xp, y))
            peers_b.append(
                PeerExchange(
                    peer=xp,
                    send_rows=u_cols.get((xp, y), _EMPTY),
                    recv_rows=u_cols.get((x, y), _EMPTY),
                    send_width=my_width,
                    recv_width=w1 - w0,
                    recv_cols=(w0, w1),
                )
            )
        gather_b = CommPlan(
            key="25d/col-gather-b", size=q, rank=x, peers=tuple(peers_b)
        )

        reduce_a = gather_a.reversed("25d/row-reduce-a")
        reduce_b = gather_b.reversed("25d/col-reduce-b")
        index_a, index_b, block_packed = packed_of(x, y)
        plans.append(
            SparsePlan25D(
                gather_a=gather_a,
                gather_b=gather_b,
                reduce_a=reduce_a,
                reduce_b=reduce_b,
                strip_width=sw,
                my_window=my_w,
                index_a=index_a,
                index_b=index_b,
                gather_a_packed=gather_a.packed_recv(
                    index_a, "25d/row-gather-a/packed"
                ),
                gather_b_packed=gather_b.packed_recv(
                    index_b, "25d/col-gather-b/packed"
                ),
                reduce_a_packed=reduce_a.packed_send(
                    index_a, "25d/row-reduce-a/packed"
                ),
                reduce_b_packed=reduce_b.packed_send(
                    index_b, "25d/col-reduce-b/packed"
                ),
                block_packed=block_packed,
            )
        )
    return plans


# ----------------------------------------------------------------------
# plan cache (amortization across repeated kernel invocations)
# ----------------------------------------------------------------------

_CACHE: "OrderedDict[tuple, list]" = OrderedDict()
_CACHE_CAPACITY = 16
_CACHE_STATS = {"hits": 0, "misses": 0}


def _fingerprint(S: CooMatrix) -> tuple:
    return (
        S.nrows,
        S.ncols,
        S.nnz,
        hashlib.sha1(S.rows.tobytes()).hexdigest(),
        hashlib.sha1(S.cols.tobytes()).hexdigest(),
    )


def cached_comm_plans(family: str, plan, S: CooMatrix, builder: Callable) -> list:
    """Memoized ``builder(plan, S)`` keyed by layout + sparsity structure.

    Values are irrelevant to need lists, so two matrices sharing a
    structure (e.g. an SDDMM output reusing its input's pattern) share
    one plan set.
    """
    key = (family, plan.m, plan.n, plan.r, plan.grid.p, plan.grid.c) + _fingerprint(S)
    if key in _CACHE:
        _CACHE.move_to_end(key)
        _CACHE_STATS["hits"] += 1
        return _CACHE[key]
    plans = builder(plan, S)
    _CACHE[key] = plans
    _CACHE_STATS["misses"] += 1
    while len(_CACHE) > _CACHE_CAPACITY:
        _CACHE.popitem(last=False)
    return plans


def plan_cache_stats() -> Dict[str, int]:
    return dict(_CACHE_STATS)


def clear_plan_cache() -> None:
    _CACHE.clear()
    _CACHE_STATS["hits"] = _CACHE_STATS["misses"] = 0

"""Sparse-aware communication subsystem.

Need-list planning plus neighborhood collectives: instead of moving dense
replicas of A/B and dense partial outputs, ranks exchange only the rows
the sparse matrix's structure actually touches (SpComm3D-style), with the
per-rank index lists computed once per sparsity structure and cached.

Layers:

* :mod:`repro.comm_sparse.plan` — :class:`CommPlan` / :class:`PeerExchange`
  with exact word accounting;
* :mod:`repro.comm_sparse.planner` — layout-aware need-list planners for
  the 1.5D sparse-shifting and 2.5D sparse-replicating algorithms, plus
  the structure-fingerprint plan cache;
* :mod:`repro.comm_sparse.collectives` — ``sparse_allgatherv`` and
  ``sparse_reduce_scatterv`` built on the point-to-point layer, with
  traffic attributed through the ordinary :class:`RankProfile` hooks.

Selected via ``comm="sparse"`` (or ``comm="auto"``) on the public API.
"""

from repro.comm_sparse.collectives import (
    TAG_SPARSE_AG,
    TAG_SPARSE_RS,
    sparse_allgatherv,
    sparse_allgatherv_packed,
    sparse_reduce_scatterv,
    sparse_reduce_scatterv_packed,
)
from repro.comm_sparse.plan import (
    CommPlan,
    PackedIndex,
    PeerExchange,
    dense_rows_moved,
)
from repro.comm_sparse.planner import (
    SparsePlan15D,
    SparsePlan25D,
    cached_comm_plans,
    clear_plan_cache,
    plan_cache_stats,
    plan_sparse_replicate_25d,
    plan_sparse_shift_15d,
)

__all__ = [
    "CommPlan",
    "PackedIndex",
    "PeerExchange",
    "SparsePlan15D",
    "SparsePlan25D",
    "sparse_allgatherv",
    "sparse_allgatherv_packed",
    "sparse_reduce_scatterv",
    "sparse_reduce_scatterv_packed",
    "TAG_SPARSE_AG",
    "TAG_SPARSE_RS",
    "plan_sparse_shift_15d",
    "plan_sparse_replicate_25d",
    "cached_comm_plans",
    "plan_cache_stats",
    "clear_plan_cache",
    "dense_rows_moved",
]

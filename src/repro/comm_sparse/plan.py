"""Cached need-list communication plans (the sparse-comm analogue of CSR).

A :class:`CommPlan` describes, for ONE rank on ONE subcommunicator, which
rows of a local buffer travel to / arrive from every peer during a sparse
neighborhood collective.  Plans are computed once per sparse-matrix
structure by :mod:`repro.comm_sparse.planner` and reused across kernel
invocations — the communication analogue of the library caching CSR
structure in :class:`~repro.sparse.coo.SparseBlock` (and of the paper
amortizing sparse-matrix preprocessing across repeated FusedMM calls).
Because both endpoints hold the plan, the per-iteration payloads carry
*values only*: no indices ever travel with the data, so a row of width
``w`` costs exactly ``w`` words on the wire.

Word accounting is exact and static: every :class:`PeerExchange` records
the row width of its leg, so :meth:`CommPlan.recv_words` predicts the
traffic a :class:`~repro.runtime.profile.RankProfile` will measure for the
collective, word for word (tests assert this equality).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np

from repro.errors import CommError


@dataclass(frozen=True)
class PackedIndex:
    """Sorted union of needed rows plus a cached global->packed remap.

    A packed panel holds exactly the rows a rank's resident sparsity
    structure touches, in sorted order; ``lookup`` maps a row id of the
    original (full-height) row space to its position in the packed panel,
    or ``-1`` for rows outside the union.  Built once per sparsity
    structure by the planners and cached with the :class:`CommPlan` it
    accompanies, so neither kernels nor collectives ever re-derive the
    remap — the buffer-compaction analogue of caching CSR structure.
    """

    union: np.ndarray = None  # sorted row ids of the packed panel
    lookup: np.ndarray = None  # (domain,) row id -> packed position or -1

    @classmethod
    def from_rows(cls, rows: np.ndarray, domain: int) -> "PackedIndex":
        union = np.unique(np.asarray(rows, dtype=np.int64))
        if len(union) and (union[0] < 0 or union[-1] >= domain):
            raise CommError(
                f"packed rows out of domain [0, {domain}): "
                f"[{union[0]}, {union[-1]}]"
            )
        lookup = np.full(domain, -1, dtype=np.int64)
        lookup[union] = np.arange(len(union), dtype=np.int64)
        return cls(union=union, lookup=lookup)

    @property
    def size(self) -> int:
        """Height of the packed panel (number of union rows)."""
        return int(len(self.union))

    @property
    def domain(self) -> int:
        """Height of the full panel this index packs."""
        return int(len(self.lookup))

    def positions(self, rows: np.ndarray) -> np.ndarray:
        """Packed positions of ``rows``; every row must be in the union."""
        pos = self.lookup[rows]
        if len(pos) and pos.min() < 0:
            bad = np.asarray(rows)[pos < 0][:4]
            raise CommError(f"rows {bad.tolist()} outside the packed union")
        return pos

    def panel_words(self, width: int) -> int:
        """Words of a packed panel of this height and the given width."""
        return self.size * int(width)


@dataclass(frozen=True)
class PeerExchange:
    """One rank <-> peer leg of a sparse neighborhood collective.

    ``send_rows`` index the *send* buffer (restricted to the optional
    ``send_cols`` window); ``recv_rows`` index the *recv* buffer.  A leg
    with no rows in a direction is skipped entirely — no message is sent,
    matching the sparse-collective contract that empty exchanges cost
    neither latency nor bandwidth.
    """

    peer: int
    send_rows: np.ndarray
    recv_rows: np.ndarray
    send_width: int
    recv_width: int
    send_cols: Optional[Tuple[int, int]] = None  # column window of the send buffer
    recv_cols: Optional[Tuple[int, int]] = None  # column window of the recv buffer

    @property
    def send_words(self) -> int:
        return len(self.send_rows) * self.send_width

    @property
    def recv_words(self) -> int:
        return len(self.recv_rows) * self.recv_width

    def reversed(self) -> "PeerExchange":
        """Swap the send and recv roles (gather plan -> reduction plan)."""
        return PeerExchange(
            peer=self.peer,
            send_rows=self.recv_rows,
            recv_rows=self.send_rows,
            send_width=self.recv_width,
            recv_width=self.send_width,
            send_cols=self.recv_cols,
            recv_cols=self.send_cols,
        )


@dataclass(frozen=True)
class CommPlan:
    """Per-rank need-list plan for one sparse collective on one subcomm.

    ``peers`` lists every other rank of the subcommunicator in a
    deterministic order shared by all members, so paired sends and
    receives always line up without any runtime negotiation.
    """

    key: str  # label, e.g. "15d/fiber-gather"
    size: int  # subcommunicator size
    rank: int  # this rank's position in the subcommunicator
    peers: Tuple[PeerExchange, ...]

    def __post_init__(self) -> None:
        for px in self.peers:
            if px.peer == self.rank or not 0 <= px.peer < self.size:
                raise CommError(
                    f"plan {self.key!r}: peer {px.peer} invalid for rank "
                    f"{self.rank} of {self.size}"
                )

    # -- static traffic prediction ----------------------------------------

    def send_words(self) -> int:
        return sum(px.send_words for px in self.peers)

    def recv_words(self) -> int:
        return sum(px.recv_words for px in self.peers)

    def send_messages(self) -> int:
        return sum(1 for px in self.peers if len(px.send_rows))

    def recv_messages(self) -> int:
        return sum(1 for px in self.peers if len(px.recv_rows))

    def reversed(self, key: Optional[str] = None) -> "CommPlan":
        """The mirror plan: every leg's send and recv roles swapped.

        A need-list *gather* plan reversed is exactly the corresponding
        *reduction* plan (contributions flow back along the same edges),
        so planners build one direction and derive the other.
        """
        return CommPlan(
            key=key if key is not None else self.key + "/reversed",
            size=self.size,
            rank=self.rank,
            peers=tuple(px.reversed() for px in self.peers),
        )

    # -- packed-panel derivations -----------------------------------------

    def packed_recv(
        self, index: "PackedIndex", key: Optional[str] = None
    ) -> "CommPlan":
        """Remap every leg's ``recv_rows`` into packed-panel coordinates.

        The derived plan drives a gather whose receive buffer is a
        ``index.size``-tall packed panel instead of a full-height one;
        word and message counts are identical (rows are renamed, never
        added or dropped), so all traffic accounting carries over.
        """
        return CommPlan(
            key=key if key is not None else self.key + "/packed",
            size=self.size,
            rank=self.rank,
            peers=tuple(
                replace(px, recv_rows=index.positions(px.recv_rows))
                for px in self.peers
            ),
        )

    def packed_send(
        self, index: "PackedIndex", key: Optional[str] = None
    ) -> "CommPlan":
        """Remap every leg's ``send_rows`` into packed-panel coordinates.

        The mirror of :meth:`packed_recv` for reductions: contributions
        are read out of a packed partial-output panel rather than a
        full-height one.
        """
        return CommPlan(
            key=key if key is not None else self.key + "/packed",
            size=self.size,
            rank=self.rank,
            peers=tuple(
                replace(px, send_rows=index.positions(px.send_rows))
                for px in self.peers
            ),
        )


def dense_rows_moved(plans) -> int:
    """Total rows received across a collection of plans (diagnostics)."""
    return sum(sum(len(px.recv_rows) for px in p.peers) for p in plans)

"""Sparse neighborhood collectives built on the point-to-point layer.

These are the v-suffixed, need-list-driven counterparts of the dense ring
collectives in :mod:`repro.runtime.comm`:

===========================  ============================================
collective                   words received per rank
===========================  ============================================
``sparse_allgatherv``        ``sum_k |recv_rows_k| * width_k``
``sparse_reduce_scatterv``   ``sum_k |recv_rows_k| * width_k``
===========================  ============================================

i.e. exactly the rows the rank's resident sparsity structure *needs*
(SpComm3D's observation), instead of the dense ring's ``(P-1)/P * W``.
Messages go directly between neighbors that share nonzeros — at most
``P - 1`` per rank, fewer when need lists are empty — and all traffic is
attributed to the caller's active profiling phase through the ordinary
``send``/``recv`` accounting hooks.

Both endpoints hold the (cached) :class:`~repro.comm_sparse.plan.CommPlan`
for the exchange, so payloads are value-only row blocks; index lists never
travel during iteration.  Sends are buffered (non-blocking) in the thread
backend, so posting every send before draining the receives is
deadlock-free regardless of the neighborhood's shape.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

import numpy as np

from repro.comm_sparse.plan import CommPlan, PackedIndex
from repro.errors import CommError
from repro.runtime.buffers import BufferPool
from repro.runtime.comm import Communicator, PendingRecv

#: tags reserved for the sparse collectives (distinct from the dense
#: collectives' and algorithms' tag spaces).
TAG_SPARSE_AG = 40
TAG_SPARSE_RS = 41


def _window(buf: np.ndarray, cols: Optional[Tuple[int, int]]) -> np.ndarray:
    return buf if cols is None else buf[:, cols[0] : cols[1]]


def _check(comm: Communicator, plan: CommPlan) -> None:
    if plan.size != comm.size or plan.rank != comm.rank:
        raise CommError(
            f"plan {plan.key!r} built for rank {plan.rank}/{plan.size}, "
            f"used on rank {comm.rank}/{comm.size}"
        )


def _post_sends(
    comm: Communicator, plan: CommPlan, sendbuf: np.ndarray, tag: int
) -> None:
    for px in plan.peers:
        if not len(px.send_rows):
            continue
        block = _window(sendbuf, px.send_cols)[px.send_rows]
        if block.shape[1] != px.send_width:
            raise CommError(
                f"plan {plan.key!r}: send width {block.shape[1]} != planned "
                f"{px.send_width} for peer {px.peer}"
            )
        comm.send(px.peer, np.ascontiguousarray(block), tag)


def _recv_blocks(comm: Communicator, plan: CommPlan, tag: int):
    """Yield ``(leg, block)`` for every non-empty recv leg, validated."""
    for px in plan.peers:
        if not len(px.recv_rows):
            continue
        block = comm.recv(px.peer, tag)
        if block.shape != (len(px.recv_rows), px.recv_width):
            raise CommError(
                f"plan {plan.key!r}: received {block.shape} from peer "
                f"{px.peer}, expected ({len(px.recv_rows)}, {px.recv_width})"
            )
        yield px, block


def sparse_allgatherv(
    comm: Communicator,
    plan: CommPlan,
    sendbuf: np.ndarray,
    out: np.ndarray,
    tag: int = TAG_SPARSE_AG,
) -> np.ndarray:
    """Need-list all-gather: fill ``out``'s remotely-owned rows.

    Each peer receives ``sendbuf[send_rows]`` (through its optional column
    window); rows arriving from peer ``k`` are *placed* at
    ``out[recv_rows_k]`` within ``recv_cols_k``.  Rows of ``out`` no peer
    provides — rows nobody's nonzeros touch — are left untouched, so the
    caller can keep them zero without ever paying to communicate them.
    The caller fills its own locally-owned rows of ``out`` before or after
    the call (ownership never moves).
    """
    _check(comm, plan)
    _post_sends(comm, plan, sendbuf, tag)
    for px, block in _recv_blocks(comm, plan, tag):
        _window(out, px.recv_cols)[px.recv_rows] = block
    return out


def sparse_reduce_scatterv(
    comm: Communicator,
    plan: CommPlan,
    contrib: np.ndarray,
    base: np.ndarray,
    tag: int = TAG_SPARSE_RS,
) -> np.ndarray:
    """Need-list reduce-scatter: sum remote contributions into ``base``.

    ``contrib`` holds this rank's partial results for *every* owner's
    rows; the rows destined to peer ``k`` (``send_rows_k``, through the
    optional column window) are shipped to ``k``, and contributions
    arriving from peer ``k`` are added into ``base[recv_rows_k]``.  The
    caller seeds ``base`` with its own contribution, so the result equals
    the dense reduce-scatter on the touched rows.  ``recv_rows`` are
    unique per peer by construction, making the in-place ``+=`` exact.
    """
    _check(comm, plan)
    _post_sends(comm, plan, contrib, tag)
    for px, block in _recv_blocks(comm, plan, tag):
        _window(base, px.recv_cols)[px.recv_rows] += block
    return base


class PendingSparseExchange:
    """Waitable handle for a posted nonblocking need-list exchange.

    Created by :func:`isparse_allgatherv_packed` /
    :func:`isparse_reduce_scatterv_packed`: every send leg is already
    posted (sends are buffered), the receive legs are held as
    :class:`~repro.runtime.comm.PendingRecv` handles, and the target
    panel is :meth:`~repro.runtime.buffers.BufferPool.guard`-ed against
    pooled reuse while in flight.  :meth:`wait` drains the legs in plan
    order — identical placement/accumulation order to the blocking
    collectives, so results are bitwise unchanged — releases the guard
    and returns the filled target.
    """

    __slots__ = (
        "_plan",
        "_target",
        "_legs",
        "_reduce",
        "_pool",
        "_done",
        "_comm",
        "_post_ts",
    )

    def __init__(
        self,
        plan: CommPlan,
        target: np.ndarray,
        legs: List[Tuple[object, PendingRecv]],
        reduce: bool,
        pool: Optional[BufferPool] = None,
        comm: Optional[Communicator] = None,
    ) -> None:
        self._plan = plan
        self._target = target
        self._legs = legs
        self._reduce = reduce
        self._pool = pool
        self._done = False
        self._comm = comm
        self._post_ts = time.perf_counter()
        if pool is not None:
            pool.guard(target)

    def wait(self) -> np.ndarray:
        if self._done:
            raise CommError(f"exchange {self._plan.key!r} waited more than once")
        self._done = True
        try:
            for px, pending in self._legs:
                block = pending.wait()
                if block.shape != (len(px.recv_rows), px.recv_width):
                    raise CommError(
                        f"plan {self._plan.key!r}: received {block.shape} from "
                        f"peer {px.peer}, expected "
                        f"({len(px.recv_rows)}, {px.recv_width})"
                    )
                if self._reduce:
                    _window(self._target, px.recv_cols)[px.recv_rows] += block
                else:
                    _window(self._target, px.recv_cols)[px.recv_rows] = block
        finally:
            self._legs = []
            if self._pool is not None:
                self._pool.release(self._target)
            if self._comm is not None:
                tracer = self._comm.profile.tracer
                if tracer is not None:
                    # cat "exchange", not "comm": this is the post->complete
                    # *lifetime* of the whole exchange (it ends at the wait,
                    # not at arrival), so it must not count toward the
                    # overlap-window occupancy the per-leg "comm" async
                    # spans measure.
                    tracer.async_span(
                        "reduce-exchange" if self._reduce else "gather-exchange",
                        "exchange",
                        self._post_ts,
                        time.perf_counter(),
                    )
        return self._target


def _post_exchange(
    comm: Communicator,
    plan: CommPlan,
    sendbuf: np.ndarray,
    target: np.ndarray,
    tag: int,
    reduce: bool,
    pool: Optional[BufferPool],
) -> PendingSparseExchange:
    _check(comm, plan)
    _post_sends(comm, plan, sendbuf, tag)
    legs = [
        (px, comm.irecv(px.peer, tag)) for px in plan.peers if len(px.recv_rows)
    ]
    return PendingSparseExchange(plan, target, legs, reduce, pool, comm=comm)


def sparse_allgatherv_packed(
    comm: Communicator,
    plan: CommPlan,
    index: PackedIndex,
    sendbuf: np.ndarray,
    out: np.ndarray,
    tag: int = TAG_SPARSE_AG,
) -> np.ndarray:
    """Need-list all-gather into a *packed* panel of height ``index.size``.

    ``plan`` must be the :meth:`CommPlan.packed_recv` derivation whose
    ``recv_rows`` are packed positions of ``index``; ``out`` is a
    ``len(union) x width`` panel — no full-height buffer exists on the
    receive side, and because every union row is either locally owned or
    covered by exactly one peer leg, ``out`` may be allocated with
    ``np.empty`` (no zero-fill bandwidth is ever paid).
    """
    if out.shape[0] != index.size:
        raise CommError(
            f"plan {plan.key!r}: packed out has {out.shape[0]} rows, "
            f"index union has {index.size}"
        )
    return sparse_allgatherv(comm, plan, sendbuf, out, tag)


def sparse_reduce_scatterv_packed(
    comm: Communicator,
    plan: CommPlan,
    index: PackedIndex,
    contrib: np.ndarray,
    base: np.ndarray,
    tag: int = TAG_SPARSE_RS,
) -> np.ndarray:
    """Need-list reduce-scatter out of a *packed* contribution panel.

    ``plan`` must be the :meth:`CommPlan.packed_send` derivation whose
    ``send_rows`` are packed positions of ``index``; ``contrib`` is the
    ``len(union) x width`` partial-output panel holding exactly the rows
    this rank's nonzeros touched.  ``base`` stays in the owner's local
    (unpacked) row space, as in :func:`sparse_reduce_scatterv`.
    """
    if contrib.shape[0] != index.size:
        raise CommError(
            f"plan {plan.key!r}: packed contrib has {contrib.shape[0]} rows, "
            f"index union has {index.size}"
        )
    return sparse_reduce_scatterv(comm, plan, contrib, base, tag)


def isparse_allgatherv_packed(
    comm: Communicator,
    plan: CommPlan,
    index: PackedIndex,
    sendbuf: np.ndarray,
    out: np.ndarray,
    tag: int = TAG_SPARSE_AG,
    pool: Optional[BufferPool] = None,
) -> PendingSparseExchange:
    """Nonblocking :func:`sparse_allgatherv_packed`.

    Posts every send leg immediately and returns a waitable handle; the
    caller runs local work (the own-rows copy, a kernel) between post and
    ``wait()``, hiding the exchange behind it.  ``out`` must not be read
    before the wait returns it; pass ``pool`` to have the panel guarded
    against pooled reuse while in flight (the double-buffer no-aliasing
    invariant).
    """
    if out.shape[0] != index.size:
        raise CommError(
            f"plan {plan.key!r}: packed out has {out.shape[0]} rows, "
            f"index union has {index.size}"
        )
    return _post_exchange(comm, plan, sendbuf, out, tag, reduce=False, pool=pool)


def isparse_reduce_scatterv_packed(
    comm: Communicator,
    plan: CommPlan,
    index: PackedIndex,
    contrib: np.ndarray,
    base: np.ndarray,
    tag: int = TAG_SPARSE_RS,
    pool: Optional[BufferPool] = None,
) -> PendingSparseExchange:
    """Nonblocking :func:`sparse_reduce_scatterv_packed`.

    The outgoing contribution legs are posted (and deep-copied) up front,
    so the caller is free to build/seed ``base`` — or reuse ``contrib``
    — before waiting; peer contributions are accumulated into ``base`` in
    plan order at ``wait()``, bitwise identical to the blocking call.
    """
    if contrib.shape[0] != index.size:
        raise CommError(
            f"plan {plan.key!r}: packed contrib has {contrib.shape[0]} rows, "
            f"index union has {index.size}"
        )
    return _post_exchange(comm, plan, contrib, base, tag, reduce=True, pool=pool)

"""Baseline implementations: serial references and the PETSc surrogate."""

from repro.baselines.petsc_like import petsc_like_fusedmm_surrogate, petsc_like_spmm
from repro.baselines.serial import (
    fusedmm_a_serial,
    fusedmm_b_serial,
    sddmm_serial,
    spmm_a_serial,
    spmm_b_serial,
)

__all__ = [
    "sddmm_serial",
    "spmm_a_serial",
    "spmm_b_serial",
    "fusedmm_a_serial",
    "fusedmm_b_serial",
    "petsc_like_spmm",
    "petsc_like_fusedmm_surrogate",
]

"""Serial reference implementations of every kernel.

Ground truth for all distributed-algorithm tests.  Definitions follow the
paper's Section II exactly:

* ``SDDMM(A, B, S) = S * (A @ B.T)`` sampled at nnz(S)
* ``SpMMA(S, B) = S @ B``
* ``SpMMB(S, A) = S.T @ A``
* ``FusedMMA(S, A, B) = SpMMA(SDDMM(A, B, S), B)``
* ``FusedMMB(S, A, B) = SpMMB(SDDMM(A, B, S), A)``
"""

from __future__ import annotations

import numpy as np

from repro.kernels.sddmm import sddmm_coo
from repro.sparse.coo import CooMatrix, SparseBlock


def _block(S: CooMatrix) -> SparseBlock:
    return SparseBlock(S.rows, S.cols, S.vals, S.shape)


def sddmm_serial(S: CooMatrix, A: np.ndarray, B: np.ndarray) -> CooMatrix:
    """Reference SDDMM; returns a CooMatrix with S's pattern."""
    vals = sddmm_coo(A, B, S.rows, S.cols, s_vals=S.vals)
    return S.with_values(vals)


def spmm_a_serial(S: CooMatrix, B: np.ndarray) -> np.ndarray:
    """Reference ``S @ B``."""
    out = np.zeros((S.nrows, B.shape[1]))
    out += _block(S).csr() @ B
    return out


def spmm_b_serial(S: CooMatrix, A: np.ndarray) -> np.ndarray:
    """Reference ``S.T @ A``."""
    out = np.zeros((S.ncols, A.shape[1]))
    out += _block(S).csr_t() @ A
    return out


def fusedmm_a_serial(S: CooMatrix, A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Reference FusedMMA."""
    R = sddmm_serial(S, A, B)
    return spmm_a_serial(R, B)


def fusedmm_b_serial(S: CooMatrix, A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Reference FusedMMB."""
    R = sddmm_serial(S, A, B)
    return spmm_b_serial(R, A)

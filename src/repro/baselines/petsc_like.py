"""PETSc-like 1D block-row SpMM baseline (paper Section VI-A).

PETSc's ``MatMatMult`` is the only distributed SpMM among the established
libraries the paper surveyed.  Its defining properties, reproduced here:

* all matrices live in a **1D block-row** distribution (the library
  "requires a 1D block row distribution for all matrices");
* **no replication** of any operand, hence communication that does not
  decrease with the processor count;
* a sparsity-aware fetch: each rank determines the distinct off-rank
  columns of its S rows and retrieves exactly those rows of B from their
  owners with request/response round trips (PETSc's symbolic phase + scatter).

The paper benchmarks two back-to-back PETSc SpMM calls as the FusedMM
surrogate (SDDMM and SpMM have identical FLOPs and communication);
:func:`petsc_like_fusedmm_surrogate` does the same.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.algorithms.base import TAG_APP, track
from repro.runtime.comm import Communicator
from repro.runtime.profile import RankProfile, RunReport
from repro.runtime.spmd import run_spmd
from repro.sparse.coo import CooMatrix, SparseBlock
from repro.sparse.partition import block_of, block_ranges, partition_coo_rows
from repro.types import Phase


@dataclass
class PetscLocal:
    """One rank's state: a block row of S (global column ids) and B rows."""

    rows: np.ndarray  # local row ids
    cols: np.ndarray  # GLOBAL column ids
    vals: np.ndarray
    n_local_rows: int
    B: np.ndarray  # this rank's block row of B
    out: Optional[np.ndarray] = None


@dataclass(frozen=True)
class PetscPlan:
    m: int
    n: int
    r: int
    p: int
    row_offsets: np.ndarray = field(repr=False)
    col_offsets: np.ndarray = field(repr=False)  # B row ownership


def petsc_plan(m: int, n: int, r: int, p: int) -> PetscPlan:
    return PetscPlan(m, n, r, p, block_ranges(m, p), block_ranges(n, p))


def petsc_distribute(plan: PetscPlan, S: CooMatrix, B: np.ndarray) -> List[PetscLocal]:
    parts = partition_coo_rows(S.rows, S.cols, S.vals, plan.row_offsets)
    locals_: List[PetscLocal] = []
    for rank in range(plan.p):
        nrows = int(plan.row_offsets[rank + 1] - plan.row_offsets[rank])
        empty = (
            np.empty(0, np.int64),
            np.empty(0, np.int64),
            np.empty(0),
            np.empty(0, np.int64),
        )
        lr, lc, lv, _ = parts.get(rank, empty)
        locals_.append(
            PetscLocal(
                rows=lr,
                cols=lc,
                vals=lv,
                n_local_rows=nrows,
                B=B[
                    int(plan.col_offsets[rank]) : int(plan.col_offsets[rank + 1])
                ].copy(),
            )
        )
    return locals_


def _rank_spmm(comm: Communicator, plan: PetscPlan, local: PetscLocal) -> None:
    """One distributed SpMM: fetch needed B rows, multiply locally.

    The fetch is a sparse all-to-all: index requests (1 word per index) go
    to the owning ranks, which respond with the dense rows (r words per
    row).  Fiber/propagation phase names do not apply to this 1D baseline,
    so all its traffic is attributed to ``Phase.PROPAGATION``.
    """
    p = comm.size
    rank = comm.rank
    prof = comm.profile

    needed = np.unique(local.cols)
    owners = block_of(needed, plan.col_offsets)

    with track(comm, Phase.PROPAGATION):
        # 1) send index requests to every owner (including a local "copy")
        for q in range(p):
            if q == rank:
                continue
            idx = needed[owners == q]
            comm.send(q, idx, tag=TAG_APP)
        # 2) serve incoming requests with the dense rows
        incoming: Dict[int, np.ndarray] = {}
        for q in range(p):
            if q == rank:
                continue
            incoming[q] = comm.recv(q, tag=TAG_APP)
        for q, idx in incoming.items():
            rows = local.B[idx - int(plan.col_offsets[rank])]
            comm.send(q, rows, tag=TAG_APP + 1)
        # 3) assemble the gathered B rows in `needed` order
        gathered = np.empty((len(needed), plan.r))
        mine = owners == rank
        gathered[mine] = local.B[needed[mine] - int(plan.col_offsets[rank])]
        for q in range(p):
            if q == rank:
                continue
            rows = comm.recv(q, tag=TAG_APP + 1)
            gathered[owners == q] = rows

    with track(comm, Phase.COMPUTATION):
        # remap global columns onto the compacted gathered rows and multiply
        compact = np.searchsorted(needed, local.cols)
        blk = SparseBlock(
            local.rows, compact, local.vals,
            (local.n_local_rows, max(len(needed), 1)),
        )
        out = np.zeros((local.n_local_rows, plan.r))
        if blk.nnz:
            out += blk.csr() @ gathered
        prof.add_flops(2 * blk.nnz * plan.r)
        local.out = out


def petsc_like_spmm(
    S: CooMatrix,
    B: np.ndarray,
    p: int,
    profiles: Optional[List[RankProfile]] = None,
) -> Tuple[np.ndarray, RunReport]:
    """Distributed ``S @ B`` with the PETSc-like baseline on ``p`` ranks."""
    m, n = S.shape
    r = B.shape[1]
    plan = petsc_plan(m, n, r, p)
    locals_ = petsc_distribute(plan, S, B)

    def body(comm: Communicator) -> None:
        _rank_spmm(comm, plan, locals_[comm.rank])

    _, report = run_spmd(p, body, profiles=profiles, label=f"petsc-like p={p}")
    out = np.zeros((m, r))
    for rank, loc in enumerate(locals_):
        out[int(plan.row_offsets[rank]) : int(plan.row_offsets[rank + 1])] = loc.out
    return out, report


def petsc_like_fusedmm_surrogate(
    S: CooMatrix, B: np.ndarray, p: int
) -> Tuple[np.ndarray, RunReport]:
    """Two back-to-back SpMM calls — the paper's FusedMM stand-in for PETSc."""
    profiles = [RankProfile() for _ in range(p)]
    _, _ = petsc_like_spmm(S, B, p, profiles=profiles)
    out, report = petsc_like_spmm(S, B, p, profiles=profiles)
    return out, report

"""Exception hierarchy for the library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class GridError(ReproError):
    """A processor grid could not be formed (e.g. ``p % c != 0`` or
    ``p / c`` is not a perfect square for a 2.5D grid)."""


class DistributionError(ReproError):
    """Matrix data does not conform to the distribution an algorithm
    expects (shape mismatches, non-conforming block ranges, ...)."""


class SpmdAbort(ReproError):
    """Raised inside SPMD ranks when another rank has failed, so that all
    threads unwind instead of blocking on a receive forever."""


class CommError(ReproError):
    """Malformed point-to-point or collective communication usage."""


class SpmdTimeout(ReproError):
    """A rank's blocking receive outlived its deadline (``deadline_ms``).

    Carries a per-rank blocked-state ``dump``: for every rank that was
    blocked in the transport when the deadline fired, the message key it
    was waiting on (communicator id, source rank, tag), how long it had
    been waiting, the phase its profile had open, and the most recent
    trace span (when tracing).  The raising rank aborts the world, so a
    mismatched collective becomes one readable error instead of a frozen
    process.
    """

    def __init__(self, message: str, dump=None) -> None:
        super().__init__(message)
        #: list of per-rank blocked-state dicts (see class docstring)
        self.dump = dump if dump is not None else []


class UnknownBackendError(ReproError):
    """An execution-backend name is not in the registry.

    Raised by :func:`repro.runtime.backend.validate_backend_name` (and
    therefore by :func:`repro.plan` / the one-shot wrappers / the CLI)
    when ``backend`` names neither ``"threads"`` nor ``"mpi"``.  The
    message lists the registered names.
    """


class BackendUnavailableError(ReproError):
    """A registered execution backend cannot run in this environment.

    Currently raised for ``backend="mpi"`` when :mod:`mpi4py` is not
    importable.  The message carries the install hint (``pip install
    mpi4py`` plus an MPI implementation such as MPICH or Open MPI) and
    the ``mpirun`` launch reminder, so the fix is in the traceback.
    """


class UnknownKernelBackendError(ReproError):
    """A local-kernel backend name is not in the registry.

    Raised by :func:`repro.kernels.registry.validate_kernel_backend_name`
    (and therefore by :func:`repro.plan` / the one-shot wrappers / the
    CLI) when ``kernels`` names neither ``"numpy"``, ``"numba"`` nor
    ``"auto"``.  The message lists the registered names.
    """


class KernelBackendUnavailableError(ReproError):
    """A registered kernel backend cannot run in this environment.

    Currently raised for ``kernels="numba"`` when :mod:`numba` is not
    importable.  The message carries the install hint (``pip install
    numba``) and points at the default ``kernels="numpy"`` path, so the
    fix is in the traceback.  ``kernels="auto"`` never raises this — it
    only considers backends that are actually available.
    """


class SessionBusyError(ReproError):
    """Two driver threads called into one :class:`~repro.session.Session`
    concurrently.  Sessions hold resident per-rank state (dense blocks,
    skip-rebind snapshots, the in-flight pipeline slot) that a second
    concurrent caller would silently corrupt, so genuinely concurrent
    calls fail fast with this typed error instead.  Serialize callers —
    e.g. behind a queue, the way :class:`repro.serve.Server` does — or
    give each thread its own session."""


class ServeOverload(ReproError):
    """Admission control: the serving queue is at capacity.

    Raised by :meth:`repro.serve.Server.submit` when accepting the
    request would exceed ``max_queue`` pending requests.  Callers should
    shed load or retry after a backoff; the request was **not** enqueued.
    """


class FaultInjected(ReproError):
    """Base class for failures raised by a deterministic
    :class:`~repro.runtime.faults.FaultPlan` (never raised in production
    runs; the fault plane is off unless explicitly threaded in)."""


class InjectedCrash(FaultInjected):
    """A rank was crashed by a ``crash`` fault at a named phase/region."""


class InjectedExhaustion(FaultInjected):
    """A :class:`~repro.runtime.buffers.BufferPool` acquisition was failed
    by an ``exhaust`` fault (simulated allocation failure)."""

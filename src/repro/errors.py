"""Exception hierarchy for the library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class GridError(ReproError):
    """A processor grid could not be formed (e.g. ``p % c != 0`` or
    ``p / c`` is not a perfect square for a 2.5D grid)."""


class DistributionError(ReproError):
    """Matrix data does not conform to the distribution an algorithm
    expects (shape mismatches, non-conforming block ranges, ...)."""


class SpmdAbort(ReproError):
    """Raised inside SPMD ranks when another rank has failed, so that all
    threads unwind instead of blocking on a receive forever."""


class CommError(ReproError):
    """Malformed point-to-point or collective communication usage."""

"""Collaborative filtering with Alternating Least Squares (paper §VI-E).

Factor a sparsely observed matrix ``C ~ A @ B.T`` from observations
``C_obs`` (sparse, with indicator pattern S) by alternately solving the
ridge-regularized normal equations for A and for B.  Following Zhao &
Canny (the paper's reference [1]), each solve runs a *batched* conjugate
gradient over all rows simultaneously, whose matrix-vector queries are
exactly FusedMM calls with the pattern of S:

    (M X)_i = sum_{j in N(i)} <X_i, B_j> B_j + lambda X_i
            = FusedMMA(pattern(S), X, B)_i + lambda X_i

so 10 CG iterations for A and 10 for B cost 20 FusedMM invocations — the
workload of the paper's Figure 9 (left).

This driver is built on the session-handle API (:func:`repro.plan`):
it plans **two resident distributions once** — one on the observed
values (for the normal-equation right-hand sides) and one on the
indicator pattern (for every CG matvec and the loss SDDMM) — and then
runs all ``20 x outer_iters`` FusedMM calls against them.  The sparse
operand is never re-shipped; only the CG query matrices move per call.
FusedMMB-phase queries transparently run on each session's transposed
sibling distribution (the paper's "two copies of the sparse matrix, one
transposed") which the session builds once on first use.

Two algorithm families are supported, capturing the paper's contrast:

* ``1.5d-dense-shift`` — factor rows are fully local per rank, so FusedMM
  uses *local kernel fusion* or *replication reuse* (both elisions are
  exercised since the alternating phases need both FusedMMA and
  FusedMMB).
* ``1.5d-sparse-shift`` — the factors are split into r-strips; FusedMM
  uses *replication reuse* (local kernel fusion is impossible for this
  family — paper Section IV-B).  The paper's Figure 9 discussion notes
  this family additionally pays for the CG's per-row dot products
  (an all-reduce across the layer when the reduction runs rank-side);
  in this handle-based driver the CG scalar recurrences run on the
  gathered outputs instead, so that cost shows up as the per-call
  output gathers rather than OTHER-phase traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from repro.errors import ReproError
from repro.runtime.profile import RunReport
from repro.session import Session, plan
from repro.sparse.coo import CooMatrix
from repro.types import CommMode, Elision

# re-exported for tests/benchmarks that poke the CG directly
__all__ = ["AlsResult", "DistributedALS", "_batched_cg"]


@dataclass
class AlsResult:
    """Output of a distributed ALS run."""

    A: np.ndarray
    B: np.ndarray
    loss_history: List[float]
    report: RunReport


def _batched_cg(
    rhs: np.ndarray,
    matvec: Callable[[np.ndarray], np.ndarray],
    rowdot: Callable[[np.ndarray, np.ndarray], np.ndarray],
    x0: np.ndarray,
    iters: int,
) -> np.ndarray:
    """Conjugate gradients on all rows at once (per-row scalars)."""
    x = x0.copy()
    rvec = rhs - matvec(x)
    pvec = rvec.copy()
    rs = rowdot(rvec, rvec)
    for _ in range(iters):
        q = matvec(pvec)
        denom = rowdot(pvec, q)
        alpha = np.where(denom > 1e-300, rs / np.maximum(denom, 1e-300), 0.0)
        x = x + alpha[:, None] * pvec
        rvec = rvec - alpha[:, None] * q
        rs_new = rowdot(rvec, rvec)
        beta = np.where(rs > 1e-300, rs_new / np.maximum(rs, 1e-300), 0.0)
        pvec = rvec + beta[:, None] * pvec
        rs = rs_new
    return x


def _rowdot(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return np.einsum("ij,ij->i", x, y)


class DistributedALS:
    """Distributed ALS driver on the session-handle API.

    Parameters
    ----------
    p, c:
        Processor count and replication factor.
    algorithm:
        ``"1.5d-dense-shift"`` or ``"1.5d-sparse-shift"``.
    elision:
        FusedMM strategy for the CG query matvecs.  Dense shift supports
        ``LOCAL_KERNEL_FUSION`` (default) and ``REPLICATION_REUSE``;
        sparse shift supports ``REPLICATION_REUSE``.
    lam:
        Ridge regularization strength.
    cg_iters:
        CG iterations per half-sweep (the paper uses 10 + 10).
    comm:
        Communication mode for the sessions (dense ring collectives by
        default; ``"sparse"``/``"auto"`` enable the need-list path on the
        sparse-shifting family).
    """

    def __init__(
        self,
        p: int,
        c: int = 1,
        algorithm: str = "1.5d-dense-shift",
        elision: "Elision | None" = None,
        lam: float = 0.1,
        cg_iters: int = 10,
        comm: "str | CommMode" = CommMode.DENSE,
    ) -> None:
        if algorithm not in ("1.5d-dense-shift", "1.5d-sparse-shift"):
            raise ReproError(f"ALS supports the 1.5D families, not {algorithm!r}")
        self.p, self.c = p, c
        self.algorithm = algorithm
        if elision is None:
            elision = (
                Elision.LOCAL_KERNEL_FUSION
                if algorithm == "1.5d-dense-shift"
                else Elision.REPLICATION_REUSE
            )
        if algorithm == "1.5d-sparse-shift" and elision != Elision.REPLICATION_REUSE:
            raise ReproError("sparse shift ALS requires replication reuse")
        self.elision = elision
        self.lam = float(lam)
        self.cg_iters = int(cg_iters)
        self.comm = comm

    # ------------------------------------------------------------------

    def _sessions(self, C_obs: CooMatrix, r: int) -> "tuple[Session, Session]":
        """Plan the two resident distributions: observed values for the
        right-hand sides, indicator pattern for matvecs and loss."""
        pattern = C_obs.with_values(np.ones(C_obs.nnz))
        sess_val = plan(
            C_obs, r, p=self.p, c=self.c, algorithm=self.algorithm,
            elision=self.elision, comm=self.comm,
        )
        sess_pat = plan(
            pattern, r, p=self.p, c=self.c, algorithm=self.algorithm,
            elision=self.elision, comm=self.comm,
        )
        return sess_val, sess_pat

    def run(
        self,
        C_obs: CooMatrix,
        r: int,
        outer_iters: int = 1,
        seed: int = 0,
        track_loss: bool = True,
    ) -> AlsResult:
        """Run ``outer_iters`` alternating sweeps; returns factors and report."""
        m, n = C_obs.shape
        rng = np.random.default_rng(seed)
        A = rng.standard_normal((m, r)) * 0.1
        B = rng.standard_normal((n, r)) * 0.1
        lam, cg_iters = self.lam, self.cg_iters

        loss_history: List[float] = []
        sess_val, sess_pat = self._sessions(C_obs, r)
        with sess_val, sess_pat:
            for _ in range(outer_iters):
                # solve for A with B fixed: rhs = SpMMA(C_obs, B), matvec
                # = FusedMMA(pattern, X, B) + lam X (20 session FusedMM
                # calls per sweep against the resident distributions)
                rhs_a, _ = sess_val.spmm_a(B)

                def matvec_a(X, B=B):
                    out, _ = sess_pat.fusedmm_a(X, B)
                    return out + lam * X

                A = _batched_cg(rhs_a, matvec_a, _rowdot, A, cg_iters)

                # solve for B with A fixed: rhs = SpMMB(C_obs, A), matvec
                # = FusedMMB(pattern, A, Y) + lam Y (runs on the session's
                # transposed sibling distribution when the elision's
                # native procedure lives on the opposite side)
                rhs_b, _ = sess_val.spmm_b(A)

                def matvec_b(Y, A=A):
                    out, _ = sess_pat.fusedmm_b(A, Y)
                    return out + lam * Y

                B = _batched_cg(rhs_b, matvec_b, _rowdot, B, cg_iters)

                if track_loss:
                    # || C_obs - SDDMM(A, B, pattern) ||^2 over observations
                    dots, _ = sess_pat.sddmm(A, B)
                    loss_history.append(float(np.sum((C_obs.vals - dots.vals) ** 2)))

            report = sess_val.report().merged_with(sess_pat.report())
        report.label = f"als/{self.algorithm}/{self.elision.value}"
        return AlsResult(A=A, B=B, loss_history=loss_history, report=report)

"""Collaborative filtering with Alternating Least Squares (paper §VI-E).

Factor a sparsely observed matrix ``C ~ A @ B.T`` from observations
``C_obs`` (sparse, with indicator pattern S) by alternately solving the
ridge-regularized normal equations for A and for B.  Following Zhao &
Canny (the paper's reference [1]), each solve runs a *batched* conjugate
gradient over all rows simultaneously, whose matrix-vector queries are
exactly FusedMM calls with the pattern of S:

    (M X)_i = sum_{j in N(i)} <X_i, B_j> B_j + lambda X_i
            = FusedMMA(pattern(S), X, B)_i + lambda X_i

so 10 CG iterations for A and 10 for B cost 20 FusedMM invocations — the
workload of the paper's Figure 9 (left).

Two algorithm families are supported, capturing the paper's contrast:

* ``1.5d-dense-shift`` — rows of the factors are fully local, so the CG's
  per-row dot products need no communication.  FusedMM uses *local kernel
  fusion* or *replication reuse* (both elisions are exercised since the
  alternating phases need both FusedMMA and FusedMMB; the second
  orientation runs on the stored transposed copy of S, as the paper
  prescribes).
* ``1.5d-sparse-shift`` — the factors are split into r-strips, so every
  per-row dot product requires an all-reduce across the layer: the
  "communication outside FusedMM" and the poorly performing batched dots
  on tall-skinny local matrices that the paper's Figure 9 discussion
  attributes to the sparse-shifting variants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.algorithms.dense_shift_15d import DenseShift15D
from repro.algorithms.sparse_shift_15d import SparseShift15D
from repro.errors import ReproError
from repro.runtime.profile import RankProfile, RunReport
from repro.runtime.spmd import run_spmd
from repro.sparse.coo import CooMatrix
from repro.types import Elision, Mode, Phase


@dataclass
class AlsResult:
    """Output of a distributed ALS run."""

    A: np.ndarray
    B: np.ndarray
    loss_history: List[float]
    report: RunReport


def _batched_cg(
    rhs: np.ndarray,
    matvec: Callable[[np.ndarray], np.ndarray],
    rowdot: Callable[[np.ndarray, np.ndarray], np.ndarray],
    x0: np.ndarray,
    iters: int,
) -> np.ndarray:
    """Conjugate gradients on all rows at once (per-row scalars)."""
    x = x0.copy()
    rvec = rhs - matvec(x)
    pvec = rvec.copy()
    rs = rowdot(rvec, rvec)
    for _ in range(iters):
        q = matvec(pvec)
        denom = rowdot(pvec, q)
        alpha = np.where(denom > 1e-300, rs / np.maximum(denom, 1e-300), 0.0)
        x = x + alpha[:, None] * pvec
        rvec = rvec - alpha[:, None] * q
        rs_new = rowdot(rvec, rvec)
        beta = np.where(rs > 1e-300, rs_new / np.maximum(rs, 1e-300), 0.0)
        pvec = rvec + beta[:, None] * pvec
        rs = rs_new
    return x


class DistributedALS:
    """Distributed ALS driver (see module docstring).

    Parameters
    ----------
    p, c:
        Processor count and replication factor.
    algorithm:
        ``"1.5d-dense-shift"`` or ``"1.5d-sparse-shift"``.
    elision:
        FusedMM strategy for the CG query vectors.  Dense shift supports
        ``LOCAL_KERNEL_FUSION`` (default) and ``REPLICATION_REUSE``;
        sparse shift supports ``REPLICATION_REUSE``.
    lam:
        Ridge regularization strength.
    cg_iters:
        CG iterations per half-sweep (the paper uses 10 + 10).
    """

    def __init__(
        self,
        p: int,
        c: int = 1,
        algorithm: str = "1.5d-dense-shift",
        elision: Optional[Elision] = None,
        lam: float = 0.1,
        cg_iters: int = 10,
    ) -> None:
        if algorithm not in ("1.5d-dense-shift", "1.5d-sparse-shift"):
            raise ReproError(f"ALS supports the 1.5D families, not {algorithm!r}")
        self.p, self.c = p, c
        self.algorithm = algorithm
        if elision is None:
            elision = (
                Elision.LOCAL_KERNEL_FUSION
                if algorithm == "1.5d-dense-shift"
                else Elision.REPLICATION_REUSE
            )
        if algorithm == "1.5d-sparse-shift" and elision != Elision.REPLICATION_REUSE:
            raise ReproError("sparse shift ALS requires replication reuse")
        self.elision = elision
        self.lam = float(lam)
        self.cg_iters = int(cg_iters)
        cls = DenseShift15D if algorithm == "1.5d-dense-shift" else SparseShift15D
        self.alg = cls(p, c)

    # ------------------------------------------------------------------

    def run(
        self,
        C_obs: CooMatrix,
        r: int,
        outer_iters: int = 1,
        seed: int = 0,
        track_loss: bool = True,
    ) -> AlsResult:
        """Run ``outer_iters`` alternating sweeps; returns factors and report."""
        m, n = C_obs.shape
        rng = np.random.default_rng(seed)
        A0 = rng.standard_normal((m, r)) * 0.1
        B0 = rng.standard_normal((n, r)) * 0.1

        alg = self.alg
        plan_s = alg.plan(m, n, r)
        plan_t = alg.plan(n, m, r)
        C_t = C_obs.transposed()
        locals_s = alg.distribute(plan_s, C_obs, A0, B0)
        locals_t = alg.distribute(plan_t, C_t, B0, A0)
        profiles = [RankProfile() for _ in range(self.p)]
        loss_out: List[List[float]] = [[] for _ in range(self.p)]

        dense = self.algorithm == "1.5d-dense-shift"
        lam, cg_iters, elision = self.lam, self.cg_iters, self.elision

        def body(comm):
            ctx = alg.make_context(comm)
            prof = comm.profile
            loc_s = locals_s[comm.rank]
            loc_t = locals_t[comm.rank]
            # current factor blocks (same layout in both orientations)
            A_blk = loc_s.A.copy()
            B_blk = loc_s.B.copy()

            def rowdot(x, y):
                with prof.track(Phase.OTHER):
                    local = np.einsum("ij,ij->i", x, y)
                    prof.add_flops(2 * x.size)
                    if dense:
                        return local
                    # strip layouts: sum the per-strip partials across the layer
                    return ctx.layer.allreduce(local, tag=90)

            def matvec_a(x):
                """FusedMMA(pattern, X, B) + lam X."""
                if dense and elision == Elision.LOCAL_KERNEL_FUSION:
                    loc_s.A = x
                    loc_s.B = B_blk
                    alg.rank_fusedmm_lkf(ctx, plan_s, loc_s, use_values=False)
                    out = loc_s.A
                else:  # replication reuse on the transposed copy
                    loc_t.A = B_blk
                    loc_t.B = x
                    alg.rank_fusedmm_reuse(ctx, plan_t, loc_t, use_values=False)
                    out = loc_t.B
                with prof.track(Phase.OTHER):
                    prof.add_flops(x.size)
                    return out + lam * x

            def matvec_b(y):
                """FusedMMB(pattern, A, Y) + lam Y."""
                if dense and elision == Elision.LOCAL_KERNEL_FUSION:
                    loc_t.A = y
                    loc_t.B = A_blk
                    alg.rank_fusedmm_lkf(ctx, plan_t, loc_t, use_values=False)
                    out = loc_t.A
                else:
                    loc_s.A = A_blk
                    loc_s.B = y
                    alg.rank_fusedmm_reuse(ctx, plan_s, loc_s, use_values=False)
                    out = loc_s.B
                with prof.track(Phase.OTHER):
                    prof.add_flops(y.size)
                    return out + lam * y

            def rhs_a():
                """SpMMA(C_obs, B)."""
                loc_s.B = B_blk
                alg.rank_kernel(ctx, plan_s, loc_s, Mode.SPMM_A)
                return loc_s.A

            def rhs_b():
                """SpMMB(C_obs, A) computed as SpMMA on the transposed copy."""
                loc_t.B = A_blk
                alg.rank_kernel(ctx, plan_t, loc_t, Mode.SPMM_A)
                return loc_t.A

            def loss():
                """|| C_obs - SDDMM(A, B, S) ||_F^2 over the observations."""
                loc_s.A = A_blk
                loc_s.B = B_blk
                alg.rank_kernel(ctx, plan_s, loc_s, Mode.SDDMM, use_values=False)
                with prof.track(Phase.OTHER):
                    if dense:
                        sq = 0.0
                        for j, dots in loc_s.R.items():
                            sq += float(np.sum((loc_s.S[j].vals - dots) ** 2))
                    else:
                        # home chunks partition the nonzeros: count each once
                        sq = float(np.sum((loc_s.S_vals - loc_s.R) ** 2))
                    return comm.allreduce_scalar(sq, tag=91)

            for _ in range(outer_iters):
                A_blk = _batched_cg(rhs_a(), matvec_a, rowdot, A_blk, cg_iters)
                B_blk = _batched_cg(rhs_b(), matvec_b, rowdot, B_blk, cg_iters)
                if track_loss:
                    loss_out[comm.rank].append(loss())

            loc_s.A = A_blk
            loc_s.B = B_blk

        run_spmd(self.p, body, profiles=profiles, label=f"als/{self.algorithm}")

        A_out = alg.collect_dense_a(plan_s, locals_s)
        B_out = alg.collect_dense_b(plan_s, locals_s)
        report = RunReport(per_rank=profiles, label=f"als/{self.algorithm}/{self.elision.value}")
        return AlsResult(A=A_out, B=B_out, loss_history=loss_out[0], report=report)

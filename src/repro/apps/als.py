"""Collaborative filtering with Alternating Least Squares (paper §VI-E).

Factor a sparsely observed matrix ``C ~ A @ B.T`` from observations
``C_obs`` (sparse, with indicator pattern S) by alternately solving the
ridge-regularized normal equations for A and for B.  Following Zhao &
Canny (the paper's reference [1]), each solve runs a *batched* conjugate
gradient over all rows simultaneously, whose matrix-vector queries are
exactly FusedMM calls with the pattern of S:

    (M X)_i = sum_{j in N(i)} <X_i, B_j> B_j + lambda X_i
            = FusedMMA(pattern(S), X, B)_i + lambda X_i

so 10 CG iterations for A and 10 for B cost 20 FusedMM invocations — the
workload of the paper's Figure 9 (left).

This driver is built on the session-handle API (:func:`repro.plan`):
it plans **two resident distributions once** — one on the observed
values (for the normal-equation right-hand sides) and one on the
indicator pattern (for every CG matvec and the loss SDDMM) — and runs
each half-sweep's entire batched CG **rank-side** on the sessions'
persistent worker pool: one :meth:`~repro.session.Session.run_rank`
dispatch performs the ``cg_iters + 1`` FusedMM matvecs *and* the CG
scalar recurrences on the warm ranks, so no factor matrix is gathered or
re-scattered between CG iterations (the fixed factor is bound once per
half-sweep).  FusedMMB-phase solves transparently run on the session's
transposed sibling distribution (the paper's "two copies of the sparse
matrix, one transposed"), built once on first use.

Two algorithm families are supported, capturing the paper's contrast:

* ``1.5d-dense-shift`` — factor rows are fully local per rank, so the
  CG per-row scalars need no communication at all, and FusedMM uses
  *local kernel fusion* or *replication reuse* (both elisions are
  exercised since the alternating phases need both FusedMMA and
  FusedMMB).
* ``1.5d-sparse-shift`` — the factors are split into r-strips, so the
  CG's per-row dot products are all-reduced across the layer between
  matvecs.  That communication now runs rank-side and is measured as
  OTHER-phase traffic in the :class:`RunReport` — the paper's Figure 9
  "communication outside FusedMM" contrast.  FusedMM uses *replication
  reuse* (local kernel fusion is impossible for this family — paper
  Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from repro.algorithms.base import TAG_APP
from repro.errors import ReproError
from repro.runtime.profile import RunReport
from repro.session import Session, plan
from repro.sparse.coo import CooMatrix
from repro.types import CommMode, Elision, FusedVariant, Phase

# re-exported for tests/benchmarks that poke the CG directly
__all__ = ["AlsResult", "DistributedALS", "_batched_cg"]


@dataclass
class AlsResult:
    """Output of a distributed ALS run."""

    A: np.ndarray
    B: np.ndarray
    loss_history: List[float]
    report: RunReport


def _batched_cg(
    rhs: np.ndarray,
    matvec: Callable[[np.ndarray], np.ndarray],
    rowdot: Callable[[np.ndarray, np.ndarray], np.ndarray],
    x0: np.ndarray,
    iters: int,
) -> np.ndarray:
    """Conjugate gradients on all rows at once (per-row scalars)."""
    x = x0.copy()
    rvec = rhs - matvec(x)
    pvec = rvec.copy()
    rs = rowdot(rvec, rvec)
    for _ in range(iters):
        q = matvec(pvec)
        denom = rowdot(pvec, q)
        alpha = np.where(denom > 1e-300, rs / np.maximum(denom, 1e-300), 0.0)
        x = x + alpha[:, None] * pvec
        rvec = rvec - alpha[:, None] * q
        rs_new = rowdot(rvec, rvec)
        beta = np.where(rs > 1e-300, rs_new / np.maximum(rs, 1e-300), 0.0)
        pvec = rvec + beta[:, None] * pvec
        rs = rs_new
    return x


def _rowdot(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return np.einsum("ij,ij->i", x, y)


class DistributedALS:
    """Distributed ALS driver on the session-handle API.

    Parameters
    ----------
    p, c:
        Processor count and replication factor.
    algorithm:
        ``"1.5d-dense-shift"`` or ``"1.5d-sparse-shift"``.
    elision:
        FusedMM strategy for the CG query matvecs.  Dense shift supports
        ``LOCAL_KERNEL_FUSION`` (default) and ``REPLICATION_REUSE``;
        sparse shift supports ``REPLICATION_REUSE``.
    lam:
        Ridge regularization strength.
    cg_iters:
        CG iterations per half-sweep (the paper uses 10 + 10).
    comm:
        Communication mode for the sessions (dense ring collectives by
        default; ``"sparse"``/``"auto"`` enable the need-list path on the
        sparse-shifting family).
    """

    def __init__(
        self,
        p: int,
        c: int = 1,
        algorithm: str = "1.5d-dense-shift",
        elision: "Elision | None" = None,
        lam: float = 0.1,
        cg_iters: int = 10,
        comm: "str | CommMode" = CommMode.DENSE,
    ) -> None:
        if algorithm not in ("1.5d-dense-shift", "1.5d-sparse-shift"):
            raise ReproError(f"ALS supports the 1.5D families, not {algorithm!r}")
        self.p, self.c = p, c
        self.algorithm = algorithm
        if elision is None:
            elision = (
                Elision.LOCAL_KERNEL_FUSION
                if algorithm == "1.5d-dense-shift"
                else Elision.REPLICATION_REUSE
            )
        if algorithm == "1.5d-sparse-shift" and elision != Elision.REPLICATION_REUSE:
            raise ReproError("sparse shift ALS requires replication reuse")
        self.elision = elision
        self.lam = float(lam)
        self.cg_iters = int(cg_iters)
        self.comm = comm

    # ------------------------------------------------------------------

    def _sessions(self, C_obs: CooMatrix, r: int) -> "tuple[Session, Session]":
        """Plan the two resident distributions: observed values for the
        right-hand sides, indicator pattern for matvecs and loss."""
        pattern = C_obs.with_values(np.ones(C_obs.nnz))
        sess_val = plan(
            C_obs, r, p=self.p, c=self.c, algorithm=self.algorithm,
            elision=self.elision, comm=self.comm,
        )
        sess_pat = plan(
            pattern, r, p=self.p, c=self.c, algorithm=self.algorithm,
            elision=self.elision, comm=self.comm,
        )
        return sess_val, sess_pat

    def _rank_cg(
        self, sess: Session, variant: FusedVariant, fixed: np.ndarray,
        rhs: np.ndarray, x0: np.ndarray,
    ) -> np.ndarray:
        """Solve ``(FusedMM(pattern, ., fixed) + lam I) x = rhs`` rank-side.

        The whole batched CG — ``cg_iters + 1`` fused matvecs plus the
        per-row scalar recurrences — runs in **one** dispatch to the
        session's warm worker pool.  The moving factor occupies the
        native-output slot of the (possibly transposed) resident
        orientation; the fixed factor is bound once.  When a rank's
        factor block holds only an r-strip (sparse-shifting family), the
        per-row dots are all-reduced across the layer, measured as
        OTHER-phase communication.
        """
        lam, iters = self.lam, self.cg_iters
        transpose, native, method = sess.fused_rank_method(variant)
        x_in_a = native == "a"

        def slots(x):
            # the moving operand sits in the native-output slot; for the
            # transposed sibling the session-level operands are already
            # swapped by construction (same convention as fusedmm_a/b)
            return (x, fixed) if x_in_a else (fixed, x)

        # Two binds per half-sweep: the first scatters rhs through the x
        # slot purely to snapshot its per-rank blocks.  The session's
        # dirty tracking recognizes the fixed factor as unchanged on the
        # second bind and skips its scatter, so the fixed side moves
        # exactly once per half-sweep (counter-asserted in
        # tests/test_session.py).
        ori = sess.bind(*slots(rhs), transpose=transpose)
        rhs_blks = [loc.A if x_in_a else loc.B for loc in ori.locals_]
        sess.bind(*slots(x0), transpose=transpose)
        r_full = sess.r

        def cg_body(ctx, plan_, local, sparse_plan=None):
            kw = {"sparse_plan": sparse_plan} if sparse_plan is not None else {}
            prof = ctx.comm.profile

            def get():
                return local.A if x_in_a else local.B

            def put(blk):
                if x_in_a:
                    local.A = blk
                else:
                    local.B = blk

            def matvec(vblk):
                put(vblk)
                method(ctx, plan_, local, **kw)
                return get() + lam * vblk

            # complete factor rows are rank-local on the dense-shifting
            # family; r-strips (sparse shift) reduce row dots over the
            # layer, whose ranks all own the same row set
            full_rows = get().shape[1] == r_full

            def rowdot(y, z):
                d = np.einsum("ij,ij->i", y, z)
                if not full_rows:
                    with prof.track(Phase.OTHER):
                        d = ctx.layer.allreduce(d, tag=TAG_APP)
                return d

            x = get()
            rvec = rhs_blks[ctx.comm.rank] - matvec(x)
            pvec = rvec.copy()
            rs = rowdot(rvec, rvec)
            for _ in range(iters):
                q = matvec(pvec)
                denom = rowdot(pvec, q)
                alpha = np.where(denom > 1e-300, rs / np.maximum(denom, 1e-300), 0.0)
                x = x + alpha[:, None] * pvec
                rvec = rvec - alpha[:, None] * q
                rs_new = rowdot(rvec, rvec)
                beta = np.where(rs > 1e-300, rs_new / np.maximum(rs, 1e-300), 0.0)
                pvec = rvec + beta[:, None] * pvec
                rs = rs_new
            put(x)  # final solution stays resident for the collect

        sess.run_rank(cg_body, transpose=transpose, label=f"als/cg/{variant.value}")
        collect = (
            sess.alg.collect_dense_a if x_in_a else sess.alg.collect_dense_b
        )
        return collect(ori.plan, ori.locals_)

    def run(
        self,
        C_obs: CooMatrix,
        r: int,
        outer_iters: int = 1,
        seed: int = 0,
        track_loss: bool = True,
    ) -> AlsResult:
        """Run ``outer_iters`` alternating sweeps; returns factors and report."""
        m, n = C_obs.shape
        rng = np.random.default_rng(seed)
        A = rng.standard_normal((m, r)) * 0.1
        B = rng.standard_normal((n, r)) * 0.1

        loss_history: List[float] = []
        sess_val, sess_pat = self._sessions(C_obs, r)
        with sess_val, sess_pat:
            for _ in range(outer_iters):
                # solve for A with B fixed: rhs = SpMMA(C_obs, B); the CG
                # (matvec = FusedMMA(pattern, X, B) + lam X, plus scalar
                # recurrences) runs rank-side in one pool dispatch
                rhs_a, _ = sess_val.spmm_a(B)
                A = self._rank_cg(sess_pat, FusedVariant.FUSED_A, B, rhs_a, A)

                # solve for B with A fixed: rhs = SpMMB(C_obs, A); runs on
                # the session's transposed sibling distribution when the
                # elision's native procedure lives on the opposite side
                rhs_b, _ = sess_val.spmm_b(A)
                B = self._rank_cg(sess_pat, FusedVariant.FUSED_B, A, rhs_b, B)

                if track_loss:
                    # || C_obs - SDDMM(A, B, pattern) ||^2 over observations
                    dots, _ = sess_pat.sddmm(A, B)
                    loss_history.append(float(np.sum((C_obs.vals - dots.vals) ** 2)))

            report = sess_val.report().merged_with(sess_pat.report())
        report.label = f"als/{self.algorithm}/{self.elision.value}"
        return AlsResult(A=A, B=B, loss_history=loss_history, report=report)

"""Collaborative filtering with Alternating Least Squares (paper §VI-E).

Factor a sparsely observed matrix ``C ~ A @ B.T`` from observations
``C_obs`` (sparse, with indicator pattern S) by alternately solving the
ridge-regularized normal equations for A and for B.  Following Zhao &
Canny (the paper's reference [1]), each solve runs a *batched* conjugate
gradient over all rows simultaneously, whose matrix-vector queries are
exactly FusedMM calls with the pattern of S:

    (M X)_i = sum_{j in N(i)} <X_i, B_j> B_j + lambda X_i
            = FusedMMA(pattern(S), X, B)_i + lambda X_i

so 10 CG iterations for A and 10 for B cost 20 FusedMM invocations — the
workload of the paper's Figure 9 (left).

This driver is built on the session-handle API (:func:`repro.plan`):
it plans **two resident distributions once** — one on the observed
values (for the normal-equation right-hand sides) and one on the
indicator pattern (for every CG matvec and the loss SDDMM) — and runs
each half-sweep's entire batched CG **rank-side** on the sessions'
persistent worker pool: one :meth:`~repro.session.Session.run_rank`
dispatch performs the ``cg_iters + 1`` FusedMM matvecs *and* the CG
scalar recurrences on the warm ranks, so no factor matrix is gathered or
re-scattered between CG iterations (the fixed factor is bound once per
half-sweep).  FusedMMB-phase solves transparently run on the session's
transposed sibling distribution (the paper's "two copies of the sparse
matrix, one transposed"), built once on first use.

Two algorithm families are supported, capturing the paper's contrast:

* ``1.5d-dense-shift`` — factor rows are fully local per rank, so the
  CG per-row scalars need no communication at all, and FusedMM uses
  *local kernel fusion* or *replication reuse* (both elisions are
  exercised since the alternating phases need both FusedMMA and
  FusedMMB).
* ``1.5d-sparse-shift`` — the factors are split into r-strips, so the
  CG's per-row dot products are all-reduced across the layer between
  matvecs.  That communication now runs rank-side and is measured as
  OTHER-phase traffic in the :class:`RunReport` — the paper's Figure 9
  "communication outside FusedMM" contrast.  FusedMM uses *replication
  reuse* (local kernel fusion is impossible for this family — paper
  Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.base import TAG_APP
from repro.errors import ReproError
from repro.runtime.profile import RunReport
from repro.serve.model import ServeModel
from repro.serve.request import AlsTopKRequest, Request
from repro.session import Session, SessionFuture, plan
from repro.sparse.coo import CooMatrix
from repro.types import CommMode, Elision, FusedVariant, Phase

# re-exported for tests/benchmarks that poke the CG directly
__all__ = [
    "AlsResult",
    "DistributedALS",
    "_batched_cg",
    "recommend_topk",
    "AlsServeModel",
]


@dataclass
class AlsResult:
    """Output of a distributed ALS run."""

    A: np.ndarray
    B: np.ndarray
    loss_history: List[float]
    report: RunReport


def _batched_cg(
    rhs: np.ndarray,
    matvec: Callable[[np.ndarray], np.ndarray],
    rowdot: Callable[[np.ndarray, np.ndarray], np.ndarray],
    x0: np.ndarray,
    iters: int,
) -> np.ndarray:
    """Conjugate gradients on all rows at once (per-row scalars)."""
    x = x0.copy()
    rvec = rhs - matvec(x)
    pvec = rvec.copy()
    rs = rowdot(rvec, rvec)
    for _ in range(iters):
        q = matvec(pvec)
        denom = rowdot(pvec, q)
        alpha = np.where(denom > 1e-300, rs / np.maximum(denom, 1e-300), 0.0)
        x = x + alpha[:, None] * pvec
        rvec = rvec - alpha[:, None] * q
        rs_new = rowdot(rvec, rvec)
        beta = np.where(rs > 1e-300, rs_new / np.maximum(rs, 1e-300), 0.0)
        pvec = rvec + beta[:, None] * pvec
        rs = rs_new
    return x


def _rowdot(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return np.einsum("ij,ij->i", x, y)


class DistributedALS:
    """Distributed ALS driver on the session-handle API.

    Parameters
    ----------
    p, c:
        Processor count and replication factor.
    algorithm:
        ``"1.5d-dense-shift"`` or ``"1.5d-sparse-shift"``.
    elision:
        FusedMM strategy for the CG query matvecs.  Dense shift supports
        ``LOCAL_KERNEL_FUSION`` (default) and ``REPLICATION_REUSE``;
        sparse shift supports ``REPLICATION_REUSE``.
    lam:
        Ridge regularization strength.
    cg_iters:
        CG iterations per half-sweep (the paper uses 10 + 10).
    comm:
        Communication mode for the sessions (dense ring collectives by
        default; ``"sparse"``/``"auto"`` enable the need-list path on the
        sparse-shifting family).
    kernels:
        Local-kernel backend for the sessions (``"numpy"`` / ``"numba"``
        / ``"auto"``; see :func:`repro.plan`).
    """

    def __init__(
        self,
        p: int,
        c: int = 1,
        algorithm: str = "1.5d-dense-shift",
        elision: "Elision | None" = None,
        lam: float = 0.1,
        cg_iters: int = 10,
        comm: "str | CommMode" = CommMode.DENSE,
        kernels: str = "numpy",
    ) -> None:
        if algorithm not in ("1.5d-dense-shift", "1.5d-sparse-shift"):
            raise ReproError(f"ALS supports the 1.5D families, not {algorithm!r}")
        self.p, self.c = p, c
        self.algorithm = algorithm
        if elision is None:
            elision = (
                Elision.LOCAL_KERNEL_FUSION
                if algorithm == "1.5d-dense-shift"
                else Elision.REPLICATION_REUSE
            )
        if algorithm == "1.5d-sparse-shift" and elision != Elision.REPLICATION_REUSE:
            raise ReproError("sparse shift ALS requires replication reuse")
        self.elision = elision
        self.lam = float(lam)
        self.cg_iters = int(cg_iters)
        self.comm = comm
        self.kernels = kernels

    # ------------------------------------------------------------------

    def _sessions(self, C_obs: CooMatrix, r: int) -> "tuple[Session, Session]":
        """Plan the two resident distributions: observed values for the
        right-hand sides, indicator pattern for matvecs and loss."""
        pattern = C_obs.with_values(np.ones(C_obs.nnz))
        sess_val = plan(
            C_obs, r, p=self.p, c=self.c, algorithm=self.algorithm,
            elision=self.elision, comm=self.comm, kernels=self.kernels,
        )
        sess_pat = plan(
            pattern, r, p=self.p, c=self.c, algorithm=self.algorithm,
            elision=self.elision, comm=self.comm, kernels=self.kernels,
        )
        return sess_val, sess_pat

    def _rank_cg(
        self, sess: Session, variant: FusedVariant, fixed: np.ndarray,
        rhs: np.ndarray, x0: np.ndarray,
    ) -> np.ndarray:
        """Solve ``(FusedMM(pattern, ., fixed) + lam I) x = rhs`` rank-side.

        The whole batched CG — ``cg_iters + 1`` fused matvecs plus the
        per-row scalar recurrences — runs in **one** dispatch to the
        session's warm worker pool.  The moving factor occupies the
        native-output slot of the (possibly transposed) resident
        orientation; the fixed factor is bound once.  When a rank's
        factor block holds only an r-strip (sparse-shifting family), the
        per-row dots are all-reduced across the layer, measured as
        OTHER-phase communication.
        """
        lam, iters = self.lam, self.cg_iters
        transpose, native, method = sess.fused_rank_method(variant)
        x_in_a = native == "a"

        def slots(x):
            # the moving operand sits in the native-output slot; for the
            # transposed sibling the session-level operands are already
            # swapped by construction (same convention as fusedmm_a/b)
            return (x, fixed) if x_in_a else (fixed, x)

        # Two binds per half-sweep: the first scatters rhs through the x
        # slot purely to snapshot its per-rank blocks.  The session's
        # dirty tracking recognizes the fixed factor as unchanged on the
        # second bind and skips its scatter, so the fixed side moves
        # exactly once per half-sweep (counter-asserted in
        # tests/test_session.py).
        ori = sess.bind(*slots(rhs), transpose=transpose)
        rhs_blks = [loc.A if x_in_a else loc.B for loc in ori.locals_]
        sess.bind(*slots(x0), transpose=transpose)
        r_full = sess.r

        def cg_body(ctx, plan_, local, sparse_plan=None):
            kw = {"sparse_plan": sparse_plan} if sparse_plan is not None else {}
            prof = ctx.comm.profile

            def get():
                return local.A if x_in_a else local.B

            def put(blk):
                if x_in_a:
                    local.A = blk
                else:
                    local.B = blk

            def matvec(vblk):
                put(vblk)
                method(ctx, plan_, local, **kw)
                return get() + lam * vblk

            # complete factor rows are rank-local on the dense-shifting
            # family; r-strips (sparse shift) reduce row dots over the
            # layer, whose ranks all own the same row set
            full_rows = get().shape[1] == r_full

            def rowdot(y, z):
                d = np.einsum("ij,ij->i", y, z)
                if not full_rows:
                    with prof.track(Phase.OTHER):
                        d = ctx.layer.allreduce(d, tag=TAG_APP)
                return d

            x = get()
            rvec = rhs_blks[ctx.comm.rank] - matvec(x)
            pvec = rvec.copy()
            rs = rowdot(rvec, rvec)
            for _ in range(iters):
                q = matvec(pvec)
                denom = rowdot(pvec, q)
                alpha = np.where(denom > 1e-300, rs / np.maximum(denom, 1e-300), 0.0)
                x = x + alpha[:, None] * pvec
                rvec = rvec - alpha[:, None] * q
                rs_new = rowdot(rvec, rvec)
                beta = np.where(rs > 1e-300, rs_new / np.maximum(rs, 1e-300), 0.0)
                pvec = rvec + beta[:, None] * pvec
                rs = rs_new
            put(x)  # final solution stays resident for the collect

        sess.run_rank(cg_body, transpose=transpose, label=f"als/cg/{variant.value}")
        collect = (
            sess.alg.collect_dense_a if x_in_a else sess.alg.collect_dense_b
        )
        return collect(ori.plan, ori.locals_)

    def run(
        self,
        C_obs: CooMatrix,
        r: int,
        outer_iters: int = 1,
        seed: int = 0,
        track_loss: bool = True,
    ) -> AlsResult:
        """Run ``outer_iters`` alternating sweeps; returns factors and report."""
        m, n = C_obs.shape
        rng = np.random.default_rng(seed)
        A = rng.standard_normal((m, r)) * 0.1
        B = rng.standard_normal((n, r)) * 0.1

        loss_history: List[float] = []
        sess_val, sess_pat = self._sessions(C_obs, r)
        with sess_val, sess_pat:
            for _ in range(outer_iters):
                # solve for A with B fixed: rhs = SpMMA(C_obs, B); the CG
                # (matvec = FusedMMA(pattern, X, B) + lam X, plus scalar
                # recurrences) runs rank-side in one pool dispatch
                rhs_a, _ = sess_val.spmm_a(B)
                A = self._rank_cg(sess_pat, FusedVariant.FUSED_A, B, rhs_a, A)

                # solve for B with A fixed: rhs = SpMMB(C_obs, A); runs on
                # the session's transposed sibling distribution when the
                # elision's native procedure lives on the opposite side
                rhs_b, _ = sess_val.spmm_b(A)
                B = self._rank_cg(sess_pat, FusedVariant.FUSED_B, A, rhs_b, B)

                if track_loss:
                    # || C_obs - SDDMM(A, B, pattern) ||^2 over observations
                    dots, _ = sess_pat.sddmm(A, B)
                    loss_history.append(float(np.sum((C_obs.vals - dots.vals) ** 2)))

            report = sess_val.report().merged_with(sess_pat.report())
        report.label = f"als/{self.algorithm}/{self.elision.value}"
        return AlsResult(A=A, B=B, loss_history=loss_history, report=report)


# ----------------------------------------------------------------------
# serving: batched top-k recommendation on the learned factors
# ----------------------------------------------------------------------


def _seen_items(seen: CooMatrix, user: int) -> np.ndarray:
    """The items user ``user`` has interacted with (columns of the
    observation matrix's row).  Canonical COO order is row-sorted, so the
    row is a contiguous slice found by binary search."""
    lo = int(np.searchsorted(seen.rows, user, side="left"))
    hi = int(np.searchsorted(seen.rows, user, side="right"))
    return seen.cols[lo:hi]


def _topk_desc(scores: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Indices and values of the ``k`` largest entries, descending.

    Deterministic for a given input array (argpartition + stable sort),
    which is what the serving path's bitwise batched-vs-unbatched
    equality rides on.
    """
    n = len(scores)
    k = min(int(k), n)
    if k <= 0:
        return np.empty(0, dtype=np.int64), np.empty(0)
    if k < n:
        cand = np.argpartition(-scores, k - 1)[:k]
    else:
        cand = np.arange(n)
    order = cand[np.argsort(-scores[cand], kind="stable")]
    return order.astype(np.int64), scores[order]


def recommend_topk(
    user_factors: np.ndarray,
    item_factors: np.ndarray,
    users: Sequence[int],
    k: int,
    seen: Optional[CooMatrix] = None,
    exclude_seen: bool = True,
    scores: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched top-``k`` recommendation over the factor product.

    For each user ``u`` the item scores are ``item_factors @
    user_factors[u]``; with ``exclude_seen`` the user's observed
    interactions (rows of ``seen``, the ALS observation matrix) are
    masked to ``-inf`` so only *new* items are recommended.

    ``scores`` optionally supplies a precomputed ``(n_items,
    len(users))`` score panel — the serving path passes the distributed
    ``Session.spmm_a`` output here, so scoring runs on the resident
    item-factor distribution and this function only masks and selects.

    Returns ``(items, vals)``, each ``(len(users), k)`` with ``k``
    clamped to the item count; when masking leaves a user fewer than
    ``k`` unseen items, the tail entries carry ``-inf`` scores.
    """
    users = np.asarray(users, dtype=np.int64)
    n_items = item_factors.shape[0]
    k = min(int(k), n_items)
    if scores is None:
        scores = item_factors @ user_factors[users].T  # (n_items, nu)
    elif scores.shape != (n_items, len(users)):
        raise ReproError(
            f"scores panel has shape {scores.shape}, expected "
            f"({n_items}, {len(users)})"
        )
    items = np.empty((len(users), k), dtype=np.int64)
    vals = np.empty((len(users), k))
    for i, u in enumerate(users):
        col = scores[:, i]
        if exclude_seen and seen is not None:
            col = col.copy()
            col[_seen_items(seen, int(u))] = -np.inf
        items[i], vals[i] = _topk_desc(col, k)
    return items, vals


def _dense_as_coo(F: np.ndarray) -> CooMatrix:
    """A dense factor matrix as a (fully dense) COO operand, in canonical
    row-major order — so per-tenant factors rebind via
    ``Session.update_values(F.ravel())`` on the shared structure."""
    n, d = F.shape
    rows = np.repeat(np.arange(n, dtype=np.int64), d)
    cols = np.tile(np.arange(d, dtype=np.int64), n)
    return CooMatrix(rows, cols, F.ravel(), (n, d), dedupe=False)


class AlsServeModel(ServeModel):
    """Top-k recommendation serving on the resident item-factor matrix.

    The *item factors* are the session's resident sparse operand (the
    batched-sparse-inference framing of Gale et al.): a batch of
    requests becomes one dense panel with one user-factor **column** per
    request, and a single ``spmm_a`` computes every request's full item
    score column at once::

        scores = item_factors (n_items x d)  @  panel (d x batch_width)

    Each output column depends only on its own panel column, so a
    request's scores are bitwise identical whether it rides in a full
    panel or alone — the property ``tests/test_serve.py`` asserts.

    Multi-tenancy: every tenant shares the dense factor *structure*;
    ``tenants`` maps tenant ids to their own item-factor values, rebound
    via ``update_values`` when the fleet switches tenants.
    """

    def __init__(
        self,
        user_factors: np.ndarray,
        item_factors: np.ndarray,
        model_id: str = "als",
        seen: Optional[CooMatrix] = None,
        p: int = 4,
        c: int = 1,
        algorithm: str = "1.5d-dense-shift",
        comm: "str | CommMode" = CommMode.DENSE,
        batch_width: int = 16,
        tenants: Optional[Dict[str, np.ndarray]] = None,
        deadline_ms: Optional[float] = None,
        retries: int = 0,
        kernels: str = "numpy",
    ) -> None:
        self.model_id = model_id
        self.batch_width = int(batch_width)
        self.user_factors = np.asarray(user_factors, dtype=np.float64)
        self.item_factors = np.asarray(item_factors, dtype=np.float64)
        if self.user_factors.shape[1] != self.item_factors.shape[1]:
            raise ReproError("user and item factors must share latent dim")
        self.d = self.user_factors.shape[1]
        self.seen = seen
        self.p, self.c = p, c
        self.algorithm = algorithm
        self.comm = comm
        self.deadline_ms = deadline_ms
        self.retries = retries
        self.kernels = kernels
        self._tenants = dict(tenants or {})
        for tid, F in self._tenants.items():
            if F.shape != self.item_factors.shape:
                raise ReproError(
                    f"tenant {tid!r} item factors {F.shape} != "
                    f"{self.item_factors.shape} (structure is shared)"
                )

    def make_session(self) -> Session:
        return plan(
            _dense_as_coo(self.item_factors), self.batch_width, p=self.p,
            c=self.c, algorithm=self.algorithm, elision=Elision.NONE,
            comm=self.comm, deadline_ms=self.deadline_ms,
            retries=self.retries, kernels=self.kernels,
        )

    def tenant_values(self, tenant_id: str) -> Optional[np.ndarray]:
        if tenant_id == "default":
            return self.item_factors.ravel()
        return self._tenants[tenant_id].ravel()

    def _tenant_factors(self, tenant_id: str) -> np.ndarray:
        if tenant_id == "default":
            return self.item_factors
        return self._tenants[tenant_id]

    def encode(self, requests: Sequence[Request]) -> np.ndarray:
        panel = np.zeros((self.d, self.batch_width))
        for i, req in enumerate(requests):
            assert isinstance(req, AlsTopKRequest)
            panel[:, i] = self.user_factors[req.user]
        return panel

    def dispatch(self, sess: Session, panel: np.ndarray) -> SessionFuture:
        return sess.spmm_a_async(panel)

    def decode(self, raw: np.ndarray, requests: Sequence[Request]) -> List:
        results: List[Tuple[np.ndarray, np.ndarray]] = []
        for i, req in enumerate(requests):
            assert isinstance(req, AlsTopKRequest)
            items, vals = recommend_topk(
                self.user_factors,
                self._tenant_factors(req.tenant_id),
                [req.user],
                req.k,
                seen=self.seen,
                exclude_seen=req.exclude_seen,
                scores=raw[:, i : i + 1],
            )
            results.append((items[0], vals[0]))
        return results

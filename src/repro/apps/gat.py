"""Graph Attention Network forward pass (paper §VI-E).

A GAT layer replaces the GNN adjacency ``S`` with attention weights

    S' = softmax_row( LeakyReLU( S * (A_GAT) ) ),
    (A_GAT)_ij = a^T (H_i || H_j) = <a_L, H_i> + <a_R, H_j>,

then aggregates ``out = sigma(S' @ H)``.  The paper's observation: the
sampled computation of ``A_GAT`` has the *identical communication pattern*
to an SDDMM (only the local per-edge function changes), and aggregation is
an SpMMA — so a GAT forward pass is a FusedMM workload interrupted by the
edge softmax.  That softmax is also why the paper excludes the local
kernel fusion strategy for GATs: rows must be normalized between the
SDDMM and the SpMM, so the two local kernels cannot be fused.

This implementation runs on the 1.5D dense-shifting algorithm with either

* ``Elision.NONE`` — built on the session-handle API (:func:`repro.plan`):
  the adjacency is distributed **once** into a resident session (cached
  across forward passes / training epochs, so re-invoking the layer never
  re-ships the graph) whose persistent worker pool runs each head as a
  single rank-side dispatch: an SDDMM kernel (custom edge op), the edge
  softmax — per-row max/sum all-reduced along the fiber, measured as
  OTHER-phase communication — and an SpMMA aggregation directly on the
  normalized scores.  No edge values round-trip through the driver
  between the kernels;
* ``Elision.REPLICATION_REUSE`` — a bespoke fused rank procedure on the
  stored transposed adjacency: one all-gather of the node features serves
  both the score round and the aggregation round *of every head* (the
  aggregation accumulates into the circulating buffer — no terminal
  reduce-scatter), with the softmax reductions running along the layer
  between the rounds.  This cross-round, cross-head communication elision
  cannot be expressed as independent per-kernel session calls, which is
  exactly why the paper treats it as its own strategy; it stays a
  rank-side procedure.

Multi-head attention concatenates per-head outputs, each with its own
``W``, ``a_L``, ``a_R`` (random weights — the paper benchmarks the
forward-pass workload, not training).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.base import TAG_APP, TAG_FIBER_AG, concat_allgather, track
from repro.algorithms.dense_shift_15d import DenseShift15D, TAG_SHIFT_B
from repro.errors import ReproError
from repro.kernels.registry import resolve_kernel_backend
from repro.kernels.sddmm import GatScoreOp, sddmm_custom
from repro.kernels.spmm import spmm_b_block
from repro.runtime.profile import RankProfile, RunReport
from repro.runtime.spmd import run_spmd
from repro.serve.model import ServeModel
from repro.serve.request import GatEdgeScoreRequest, Request
from repro.session import Session, SessionFuture, plan
from repro.sparse.coo import CooMatrix
from repro.types import Elision, Mode, Phase


def leaky_relu(x: np.ndarray, slope: float) -> np.ndarray:
    return np.where(x >= 0, x, slope * x)


def elu(x: np.ndarray) -> np.ndarray:
    return np.where(x >= 0, x, np.expm1(np.minimum(x, 0.0)))


@dataclass
class GatHead:
    """Parameters of one attention head."""

    W: np.ndarray  # (r_in, r_head)
    a_left: np.ndarray  # (r_head,)
    a_right: np.ndarray  # (r_head,)


def make_heads(
    n_heads: int, r_in: int, r_head: int, seed: int = 0
) -> List[GatHead]:
    """Random head parameters (Glorot-ish scale)."""
    rng = np.random.default_rng(seed)
    scale = 1.0 / np.sqrt(r_in)
    return [
        GatHead(
            W=rng.standard_normal((r_in, r_head)) * scale,
            a_left=rng.standard_normal(r_head) * scale,
            a_right=rng.standard_normal(r_head) * scale,
        )
        for _ in range(n_heads)
    ]


@dataclass
class GatResult:
    output: np.ndarray  # (n, n_heads * r_head)
    report: RunReport


def gat_forward_reference(
    S: CooMatrix,
    X: np.ndarray,
    heads: List[GatHead],
    negative_slope: float = 0.2,
    apply_elu: bool = True,
) -> np.ndarray:
    """Serial reference GAT forward pass (ground truth for tests)."""
    outs = []
    for h in heads:
        H = X @ h.W
        uL = H @ h.a_left
        uR = H @ h.a_right
        e = leaky_relu(uL[S.rows] + uR[S.cols], negative_slope)
        # row softmax over the nonzeros
        rowmax = np.full(S.nrows, -np.inf)
        np.maximum.at(rowmax, S.rows, e)
        ex = np.exp(e - np.where(np.isfinite(rowmax), rowmax, 0.0)[S.rows])
        rowsum = np.zeros(S.nrows)
        np.add.at(rowsum, S.rows, ex)
        attn = ex / rowsum[S.rows]
        agg = S.with_values(attn).to_scipy() @ H
        outs.append(elu(agg) if apply_elu else agg)
    return np.concatenate(outs, axis=1)


class DistributedGAT:
    """Distributed multi-head GAT forward pass (see module docstring)."""

    def __init__(
        self,
        p: int,
        c: int = 1,
        n_heads: int = 2,
        r_in: int = 32,
        r_head: int = 16,
        elision: Elision = Elision.REPLICATION_REUSE,
        negative_slope: float = 0.2,
        apply_elu: bool = True,
        kernels: str = "numpy",
        seed: int = 0,
    ) -> None:
        if elision == Elision.LOCAL_KERNEL_FUSION:
            raise ReproError(
                "local kernel fusion is incompatible with edge softmax (paper §VI-E)"
            )
        self.p, self.c = p, c
        self.elision = elision
        self.negative_slope = negative_slope
        self.apply_elu = apply_elu
        self.heads = make_heads(n_heads, r_in, r_head, seed)
        self.r_in = r_in
        self.r_head = r_head
        self.alg = DenseShift15D(p, c)
        # kernel backend: the NONE variant threads the knob through its
        # resident session; the bespoke reuse procedure attaches the
        # resolved backend to its own rank profiles (both spell the same
        # ``profile.kernels`` dispatch inside the local kernels)
        self._kern = resolve_kernel_backend(kernels)
        self.kernels = self._kern.name
        # resident adjacency session for the handle-based NONE variant,
        # cached across forward passes (training epochs)
        self._sess: Optional[Session] = None

    # ------------------------------------------------------------------

    def forward(self, S_adj: CooMatrix, X: np.ndarray) -> GatResult:
        """Run the forward pass on adjacency ``S_adj`` (square) and node
        features ``X``; returns the concatenated head outputs."""
        n = S_adj.nrows
        if S_adj.ncols != n:
            raise ReproError("GAT needs a square adjacency matrix")
        if X.shape != (n, self.r_in):
            raise ReproError(f"X shape {X.shape} != ({n}, {self.r_in})")
        if self.elision == Elision.NONE:
            return self._forward_none(S_adj, X)
        return self._forward_reuse(S_adj, X)

    # -- variant 1: kernel sequence on a resident session ------------------

    def _session(self, S_adj: CooMatrix) -> Session:
        """The resident adjacency session, re-planned only when the graph
        structure changes (epochs over a fixed graph re-use it)."""
        sess = self._sess
        if sess is not None and not sess._closed and sess.S.same_structure(S_adj):
            return sess
        if sess is not None:
            sess.close()
        self._sess = plan(
            S_adj, self.r_head, p=self.p, c=self.c,
            algorithm="1.5d-dense-shift", elision=Elision.NONE,
            kernels=self.kernels,
        )
        return self._sess

    def _forward_none(self, S_adj: CooMatrix, X: np.ndarray) -> GatResult:
        """One pool dispatch per head: SDDMM scores, **rank-side** edge
        softmax (fiber all-reductions of per-row max and sum, measured as
        OTHER-phase communication — the paper's "communication outside
        FusedMM"), then SpMMA aggregation on the normalized scores.  No
        edge values travel through the driver between the two kernels.
        """
        sess = self._session(S_adj)
        sess.reset_profile()
        slope = self.negative_slope
        alg = sess.alg
        outs: List[np.ndarray] = []
        for head in self.heads:
            H = X @ head.W

            # structured edge op: compiled backends fuse the whole score
            # computation into one jitted pass (see GatScoreOp)
            edge_op = GatScoreOp(head.a_left, head.a_right, slope)

            ori = sess.bind(H, H)

            def head_body(ctx, plan, local, edge_op=edge_op):
                prof = ctx.comm.profile
                # 1) attention scores: SDDMM with the custom edge function
                alg.rank_kernel(
                    ctx, plan, local, Mode.SDDMM, use_values=False, edge_op=edge_op
                )
                # 2) edge softmax over S rows: a coarse row block is spread
                # over the fiber, so the max/sum reductions run there
                with prof.track(Phase.OTHER):
                    u = ctx.u
                    width = int(plan.row_coarse[u + 1] - plan.row_coarse[u])
                    rmax = np.full(width, -np.inf)
                    for j, e in local.R.items():
                        np.maximum.at(rmax, local.S[j].rows, e)
                    rmax = ctx.fiber.allreduce(rmax, tag=TAG_APP, op=np.maximum)
                    rmax = np.where(np.isfinite(rmax), rmax, 0.0)
                    rsum = np.zeros(width)
                    for j, e in local.R.items():
                        ex = np.exp(e - rmax[local.S[j].rows])
                        local.R[j] = ex
                        np.add.at(rsum, local.S[j].rows, ex)
                    rsum = ctx.fiber.allreduce(rsum, tag=TAG_APP + 2)
                    for j in local.R:
                        local.R[j] = local.R[j] / rsum[local.S[j].rows]
                # 3) aggregation: SpMMA directly on the normalized scores
                # (no driver gather / update_values round trip)
                alg.rank_kernel(ctx, plan, local, Mode.SPMM_A, use_r_values=True)

            sess.run_rank(head_body, label="gat/none/head")
            agg = alg.collect_dense_a(ori.plan, ori.locals_)
            outs.append(elu(agg) if self.apply_elu else agg)
        return GatResult(
            output=np.concatenate(outs, axis=1), report=sess.report("gat/none")
        )

    # -- variant 2: replication reuse on the transposed adjacency ---------

    def _forward_reuse(self, S_adj: CooMatrix, X: np.ndarray) -> GatResult:
        alg = self.alg
        n = S_adj.nrows
        # transposed adjacency: rows of S (the softmax axis) are columns here
        plan = alg.plan(n, n, self.r_head)
        locals_ = alg.distribute(plan, S_adj.transposed(), None, None)
        x_plan = alg.plan(n, n, self.r_in)
        x_locals = alg.distribute(x_plan, None, X, X)
        profiles = [RankProfile() for _ in range(self.p)]
        if self._kern.backend is not None:
            # bespoke rank procedure: no Session plans this run, so the
            # JIT warmup and profile attachment happen here
            self._kern.backend.warmup()
            for prof in profiles:
                prof.kernels = self._kern.backend
        outs: List[List[np.ndarray]] = [[] for _ in range(self.p)]
        heads, slope = self.heads, self.negative_slope
        apply_elu = self.apply_elu
        nl = plan.n_layer
        c = self.c

        def body(comm):
            ctx = alg.make_context(comm)
            prof = comm.profile
            loc = locals_[comm.rank]
            X_blk = x_locals[comm.rank].A
            u, v = loc.u, loc.v
            # gather the replicated node features ONCE; per-head panels
            # derive locally (replication reuse across heads and rounds)
            with track(ctx.comm, Phase.REPLICATION):
                T_X = concat_allgather(ctx.fiber, X_blk, TAG_FIBER_AG)

            # the col blocks this rank owns (j % c == v), in ascending order
            owned_j = list(range(v, self.p, c))
            col_sizes = [int(plan.col_fine[j + 1] - plan.col_fine[j]) for j in owned_j]
            col_starts = np.concatenate(([0], np.cumsum(col_sizes)))
            j_pos = {j: k for k, j in enumerate(owned_j)}

            for head in heads:
                with prof.track(Phase.OTHER):
                    T_H = T_X @ head.W  # coarse panel of H (j-side rows)
                    H_blk = X_blk @ head.W  # circulating block (i-side rows)
                    prof.add_flops(2 * (T_X.size + X_blk.size) * head.W.shape[1])

                # round 1: scores e_ij = LeakyReLU(<a_L,H_i> + <a_R,H_j>)
                # on the transposed layout: block rows are j, cols are i
                B_cur = H_blk.copy()
                scores = {}
                for t in range(nl):
                    j = plan.held_block(u, v, t)
                    blk = loc.S.get(j)
                    with track(ctx.comm, Phase.COMPUTATION):
                        if blk is not None:
                            # transposed layout: block rows are j (a_R side),
                            # block cols are i (a_L side)
                            scores[j] = sddmm_custom(
                                T_H,
                                B_cur,
                                blk.rows,
                                blk.cols,
                                GatScoreOp(head.a_right, head.a_left, slope),
                                profile=prof,
                            )
                    with track(ctx.comm, Phase.PROPAGATION):
                        B_cur = ctx.layer.shift(B_cur, displacement=-1, tag=TAG_SHIFT_B)

                # softmax over S rows == columns of the transposed layout:
                # reductions run across the LAYER (all coarse row blocks)
                with prof.track(Phase.OTHER):
                    width = int(col_starts[-1])
                    cmax = np.full(width, -np.inf)
                    for j, e in scores.items():
                        np.maximum.at(cmax, loc.S[j].cols + col_starts[j_pos[j]], e)
                    cmax = ctx.layer.allreduce(cmax, tag=92, op=np.maximum)
                    cmax = np.where(np.isfinite(cmax), cmax, 0.0)
                    csum = np.zeros(width)
                    for j, e in scores.items():
                        off = col_starts[j_pos[j]]
                        scores[j] = np.exp(e - cmax[loc.S[j].cols + off])
                        np.add.at(csum, loc.S[j].cols + off, scores[j])
                    csum = ctx.layer.allreduce(csum, tag=94)
                    for j in scores:
                        off = col_starts[j_pos[j]]
                        scores[j] = scores[j] / csum[loc.S[j].cols + off]

                # round 2: aggregation out_i = sum_j attn_ij H_j, accumulated
                # in the circulating buffer (SpMMB on the transposed layout)
                out_acc = np.zeros_like(H_blk)
                for t in range(nl):
                    j = plan.held_block(u, v, t)
                    blk = loc.S.get(j)
                    with track(ctx.comm, Phase.COMPUTATION):
                        if blk is not None:
                            spmm_b_block(
                                blk, T_H, out_acc, values=scores[j], profile=prof
                            )
                    with track(ctx.comm, Phase.PROPAGATION):
                        out_acc = ctx.layer.shift(
                            out_acc, displacement=-1, tag=TAG_SHIFT_B
                        )
                with prof.track(Phase.OTHER):
                    outs[comm.rank].append(elu(out_acc) if apply_elu else out_acc)

        run_spmd(self.p, body, profiles=profiles, label="gat/reuse")
        return self._collect(plan, locals_, outs, profiles, "replication-reuse")

    # ------------------------------------------------------------------

    def _collect(self, plan, locals_, outs, profiles, tag: str) -> GatResult:
        n = plan.m
        out = np.zeros((n, len(self.heads) * self.r_head))
        for rank, loc in enumerate(locals_):
            i = loc.u * self.c + loc.v
            sl = plan.fine_rows_a(i)
            out[sl] = np.concatenate(outs[rank], axis=1)
        report = RunReport(per_rank=profiles, label=f"gat/{tag}")
        return GatResult(output=out, report=report)


# ----------------------------------------------------------------------
# serving: batched edge scoring on the resident adjacency
# ----------------------------------------------------------------------


class GatServeModel(ServeModel):
    """GAT edge-scoring serving on the resident adjacency session.

    A batch of node requests becomes one query panel ``Q`` (``n x
    r_head``) whose requested **rows** hold the nodes' projected
    features; a single ``sddmm`` with the GAT edge op::

        score(i, j) = S_ij * LeakyReLU(<Q_i, a_L> + <H_j, a_R>)

    computes every requested node's out-edge scores in one call (``H``
    is the resident projected feature matrix — the attention keys).
    Each edge's score depends only on its own incident rows, so a
    request's scores are bitwise identical batched or alone.  Per-tenant
    edge weights multiply in through ``use_values`` and rebind on the
    shared adjacency structure via ``update_values``.

    Two requests for the *same* node cannot share a panel (one row each)
    — :meth:`admit` defers the duplicate to the next batch.
    """

    def __init__(
        self,
        adjacency: CooMatrix,
        features: np.ndarray,
        head: Optional[GatHead] = None,
        model_id: str = "gat",
        p: int = 4,
        c: int = 1,
        batch_width: int = 16,
        negative_slope: float = 0.2,
        use_values: bool = True,
        tenants: Optional[Dict[str, np.ndarray]] = None,
        deadline_ms: Optional[float] = None,
        retries: int = 0,
        kernels: str = "numpy",
        seed: int = 0,
    ) -> None:
        n = adjacency.nrows
        if adjacency.ncols != n:
            raise ReproError("GAT serving needs a square adjacency matrix")
        self.model_id = model_id
        self.batch_width = int(batch_width)
        self.adjacency = adjacency
        self.p, self.c = p, c
        self.negative_slope = float(negative_slope)
        self.use_values = use_values
        self.deadline_ms = deadline_ms
        self.retries = retries
        self.kernels = kernels
        r_in = features.shape[1]
        if head is None:
            head = make_heads(1, r_in, min(16, r_in), seed)[0]
        self.head = head
        self.r_head = head.W.shape[1]
        #: resident attention keys: every node's projected features
        self.H = np.asarray(features, dtype=np.float64) @ head.W
        self._tenants = dict(tenants or {})
        for tid, vals in self._tenants.items():
            if vals.shape != (adjacency.nnz,):
                raise ReproError(
                    f"tenant {tid!r} edge weights need shape "
                    f"({adjacency.nnz},), got {vals.shape}"
                )
        # canonical COO order is row-sorted: per-node out-edge slices are
        # contiguous and found by binary search at decode time
        self._rows = adjacency.rows

    def make_session(self) -> Session:
        return plan(
            self.adjacency, self.r_head, p=self.p, c=self.c,
            algorithm="1.5d-dense-shift", elision=Elision.NONE,
            deadline_ms=self.deadline_ms, retries=self.retries,
            kernels=self.kernels,
        )

    def tenant_values(self, tenant_id: str) -> Optional[np.ndarray]:
        if tenant_id == "default":
            return self.adjacency.vals
        return self._tenants[tenant_id]

    def admit(self, pending: Sequence[Request], req: Request) -> bool:
        assert isinstance(req, GatEdgeScoreRequest)
        return all(
            not isinstance(other, GatEdgeScoreRequest)
            or other.node != req.node
            for other in pending
        )

    def encode(self, requests: Sequence[Request]) -> np.ndarray:
        panel = np.zeros((self.adjacency.nrows, self.r_head))
        for req in requests:
            assert isinstance(req, GatEdgeScoreRequest)
            if req.features is not None:
                panel[req.node] = (
                    np.asarray(req.features, dtype=np.float64) @ self.head.W
                )
            else:
                panel[req.node] = self.H[req.node]
        return panel

    def dispatch(self, sess: Session, panel: np.ndarray) -> SessionFuture:
        edge_op = GatScoreOp(
            self.head.a_left, self.head.a_right, self.negative_slope
        )
        return sess.sddmm_async(
            panel, self.H, use_values=self.use_values, edge_op=edge_op
        )

    def decode(self, raw: CooMatrix, requests: Sequence[Request]) -> List:
        results: List[Tuple[np.ndarray, np.ndarray]] = []
        for req in requests:
            assert isinstance(req, GatEdgeScoreRequest)
            lo = int(np.searchsorted(raw.rows, req.node, side="left"))
            hi = int(np.searchsorted(raw.rows, req.node, side="right"))
            results.append((raw.cols[lo:hi].copy(), raw.vals[lo:hi].copy()))
        return results

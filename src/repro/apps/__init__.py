"""Applications from the paper's evaluation (Section VI-E).

* :mod:`repro.apps.als` — collaborative filtering by alternating least
  squares with a batched conjugate-gradient solver whose query vectors are
  FusedMM calls (Zhao & Canny's technique, the paper's reference [1]).
* :mod:`repro.apps.gat` — multi-head graph-attention-network forward pass:
  attention scores are a generalized SDDMM, edge softmax is a fiber/layer
  reduction, aggregation is an SpMM.
"""

from repro.apps.als import AlsResult, DistributedALS
from repro.apps.gat import GatResult, DistributedGAT, gat_forward_reference

__all__ = [
    "AlsResult",
    "DistributedALS",
    "GatResult",
    "DistributedGAT",
    "gat_forward_reference",
]

"""Analytical alpha-beta communication model (paper Tables III and IV).

:mod:`repro.model.costs` encodes the paper's closed-form words/messages for
every FusedMM algorithm; :mod:`repro.model.optimal` derives the optimal
replication factors and the best-algorithm predictor behind Figures 6 and 7.
"""

from repro.model.costs import (
    CostBreakdown,
    expected_unique,
    fusedmm_cost,
    fusedmm_cost_paper,
    fusedmm_cost_sparse,
    sparse_comm_discount,
    PAPER_COST_ROWS,
)
from repro.model.optimal import (
    optimal_c_continuous,
    best_feasible_c,
    choose_comm_mode,
    predict_best_algorithm,
    predicted_times,
)

__all__ = [
    "CostBreakdown",
    "expected_unique",
    "fusedmm_cost",
    "fusedmm_cost_paper",
    "fusedmm_cost_sparse",
    "sparse_comm_discount",
    "PAPER_COST_ROWS",
    "optimal_c_continuous",
    "best_feasible_c",
    "choose_comm_mode",
    "predict_best_algorithm",
    "predicted_times",
]

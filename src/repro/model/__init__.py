"""Analytical alpha-beta communication model (paper Tables III and IV).

:mod:`repro.model.costs` encodes the paper's closed-form words/messages for
every FusedMM algorithm; :mod:`repro.model.optimal` derives the optimal
replication factors and the best-algorithm predictor behind Figures 6 and 7.
"""

from repro.model.costs import (
    CostBreakdown,
    fusedmm_cost,
    fusedmm_cost_paper,
    PAPER_COST_ROWS,
)
from repro.model.optimal import (
    optimal_c_continuous,
    best_feasible_c,
    predict_best_algorithm,
    predicted_times,
)

__all__ = [
    "CostBreakdown",
    "fusedmm_cost",
    "fusedmm_cost_paper",
    "PAPER_COST_ROWS",
    "optimal_c_continuous",
    "best_feasible_c",
    "predict_best_algorithm",
    "predicted_times",
]

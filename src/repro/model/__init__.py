"""Analytical alpha-beta communication model (paper Tables III and IV).

:mod:`repro.model.costs` encodes the paper's closed-form words/messages for
every FusedMM algorithm; :mod:`repro.model.optimal` derives the optimal
replication factors and the best-algorithm predictor behind Figures 6 and 7;
:mod:`repro.model.calibrate` replaces the assumed compute flop rate with a
measured, per-host, per-kernel-backend one (the ``kernels="auto"`` policy).
"""

# NOTE: only the policy function is lifted to the package namespace —
# importing calibrate.calibrate here would shadow the submodule name
from repro.model.calibrate import choose_kernel_backend
from repro.model.costs import (
    CostBreakdown,
    compute_seconds,
    expected_unique,
    fusedmm_cost,
    fusedmm_cost_paper,
    fusedmm_cost_sparse,
    sparse_comm_discount,
    PAPER_COST_ROWS,
)
from repro.model.optimal import (
    optimal_c_continuous,
    best_feasible_c,
    choose_comm_mode,
    predict_best_algorithm,
    predicted_times,
)

__all__ = [
    "choose_kernel_backend",
    "compute_seconds",
    "CostBreakdown",
    "expected_unique",
    "fusedmm_cost",
    "fusedmm_cost_paper",
    "fusedmm_cost_sparse",
    "sparse_comm_discount",
    "PAPER_COST_ROWS",
    "optimal_c_continuous",
    "best_feasible_c",
    "choose_comm_mode",
    "predict_best_algorithm",
    "predicted_times",
]

"""Optimal replication factors and algorithm selection (paper Table IV,
Figures 6 and 7).

``optimal_c_continuous`` reproduces Table IV's closed forms; because real
grids only admit certain ``c`` (divisors of p; perfect-square constraint
for 2.5D), ``best_feasible_c`` minimizes the Table III cost over the
feasible set, optionally capped (the paper caps c at 8 for weak scaling
and 16 for strong scaling due to memory).

``predict_best_algorithm`` is the "Predicted" panel of Figure 6: evaluate
every algorithm at its best feasible replication factor and pick the
cheapest.  With the paper's formulas, the 1.5D dense-shift (local kernel
fusion) vs 1.5D sparse-shift (replication reuse) boundary falls at
``phi = 1/3`` — the paper's "3 nnz(S)/r = 1" line.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Tuple

from repro.algorithms.registry import feasible_replication_factors, supports_sparse_comm
from repro.errors import ReproError
from repro.model.costs import (
    PAPER_COST_ROWS,
    CostBreakdown,
    fusedmm_buffer_words,
    fusedmm_cost,
    fusedmm_cost_sparse,
    fusedmm_flops,
)
from repro.runtime.cost import CORI_KNL, MachineParams
from repro.types import Elision


def optimal_c_continuous(key: str, p: int, phi: float) -> float:
    """Table IV's optimal replication factor (continuous relaxation)."""
    table = {
        "1.5d-dense-shift/none": math.sqrt(p),
        "1.5d-dense-shift/replication-reuse": math.sqrt(2 * p),
        "1.5d-dense-shift/local-kernel-fusion": math.sqrt(p / 2),
        "1.5d-sparse-shift/none": math.sqrt(3 * p * phi),
        "1.5d-sparse-shift/replication-reuse": math.sqrt(6 * p * phi),
        "2.5d-dense-replicate/none": (p * (1 + 3 * phi) ** 2 / 4) ** (1 / 3),
        "2.5d-dense-replicate/replication-reuse": (p * (1 + 3 * phi) ** 2) ** (1 / 3),
        # NOTE: the paper's Table IV prints cbrt(p / (2 phi / 3)^2) here,
        # but the argmin of its own Table III expression
        # nr/sqrt(p) * (4/sqrt(c) + 3 phi (c-1)/sqrt(p)) is
        # cbrt(p / (3 phi / 2)^2); the printed denominator appears to be a
        # transcription slip (the same "sparser input benefits from higher
        # replication" scaling holds either way).  We use the true argmin.
        "2.5d-sparse-replicate/none": (p / (3 * phi / 2) ** 2) ** (1 / 3)
        if phi > 0
        else float(p),
    }
    if key not in table:
        raise ReproError(f"unknown row {key!r}; options: {PAPER_COST_ROWS}")
    return table[key]


def _algorithm_of(key: str) -> str:
    return key.split("/", 1)[0]


def best_feasible_c(
    key: str,
    n: int,
    r: int,
    p: int,
    phi: float,
    machine: MachineParams = CORI_KNL,
    max_c: Optional[int] = None,
) -> Tuple[int, CostBreakdown]:
    """Minimize the Table III cost over the feasible replication factors.

    For the 1.5D sparse-shifting layout, ``c`` is additionally capped so
    the r-strips stay non-degenerate (``p/c <= r``) — the constraint that
    forced the paper's minimum replication factor of 2 at 256 nodes with
    r = 128.
    """
    algorithm = _algorithm_of(key)
    feasible: Iterable[int] = feasible_replication_factors(algorithm, p)
    if max_c is not None:
        feasible = [c for c in feasible if c <= max_c]
    if algorithm == "1.5d-sparse-shift":
        ok = [c for c in feasible if p // c <= max(r, 1)]
        feasible = ok or list(feasible)[-1:]  # degenerate fallback
    best: Optional[Tuple[int, CostBreakdown]] = None
    for c in feasible:
        cost = fusedmm_cost(key, n, r, p, c, phi)
        if best is None or cost.time(machine) < best[1].time(machine):
            best = (c, cost)
    if best is None:
        raise ReproError(f"no feasible replication factor for {key} at p={p}")
    return best


def choose_comm_mode(
    algorithm: str,
    n: int,
    r: int,
    nnz: int,
    p: int,
    c: int,
    machine: MachineParams = CORI_KNL,
    elision: Elision = Elision.NONE,
    margin: float = 0.95,
    memory_weight: float = 0.25,
    compute_gamma: Optional[float] = None,
) -> str:
    """Pick ``"dense"`` or ``"sparse"`` communication for a kernel run.

    Compares the Table III cost of the algorithm's FusedMM row against
    its need-list sparse-communication variant
    (:func:`repro.model.costs.fusedmm_cost_sparse`) at the run's actual
    ``(p, c)``; families without a sparse path always answer dense.
    ``margin`` is hysteresis against the need-list planning overhead:
    sparse must be predicted at least ``1 - margin`` cheaper to win,
    so near-saturated inputs (every row touched) stay on the dense ring
    collectives.

    Each side is additionally charged a *memory term* — its peak panel
    footprint (:func:`repro.model.costs.fusedmm_buffer_words`) billed at
    ``memory_weight * beta`` per word, modeling the zero-fill/scatter
    memory pass a resident panel costs (memory bandwidth is faster than
    the wire, hence the fraction).  This matters mostly for the 2.5D
    sparse-replicating family, whose sparse path swaps piece-sized ring
    buffers for strip-wide packed panels: at high need-list coverage the
    footprint can outgrow the traffic saving, and the memory term steers
    ``comm="auto"`` back to dense.  This is the ``comm="auto"`` policy
    of the public API.

    ``compute_gamma`` adds the per-call local-compute time (at a
    *measured* seconds-per-FLOP from the kernel calibration, see
    :func:`repro.model.costs.compute_seconds`) to both scores.  Compute
    is the same on both sides, but the ``margin`` hysteresis is
    multiplicative, so a realistic compute floor shrinks the *relative*
    gap between the variants: the faster the measured kernels, the more
    the communication difference dominates the decision — exactly the
    regime shift a compiled backend causes.
    """
    if not supports_sparse_comm(algorithm):
        return "dense"
    phi = nnz / (float(n) * r) if n and r else 0.0
    key = f"{algorithm}/{elision.value}"
    try:
        dense = fusedmm_cost(key, n, r, p, c, phi)
        sparse = fusedmm_cost_sparse(key, n, r, p, c, phi)
        dense_buf = fusedmm_buffer_words(key, n, r, p, c, phi, sparse_comm=False)
        sparse_buf = fusedmm_buffer_words(key, n, r, p, c, phi, sparse_comm=True)
    except ReproError:
        return "dense"
    mem_beta = memory_weight * machine.beta
    t_comp = (
        compute_gamma * fusedmm_flops(nnz, r, p) if compute_gamma is not None else 0.0
    )
    dense_score = dense.time(machine) + mem_beta * dense_buf + t_comp
    sparse_score = sparse.time(machine) + mem_beta * sparse_buf + t_comp
    return "sparse" if sparse_score < margin * dense_score else "dense"


def predicted_times(
    n: int,
    r: int,
    nnz: int,
    p: int,
    machine: MachineParams = CORI_KNL,
    keys: Iterable[str] = PAPER_COST_ROWS,
    max_c: Optional[int] = None,
    include_compute: bool = True,
) -> Dict[str, Tuple[int, float]]:
    """Modeled FusedMM time per cost row at its best feasible ``c``.

    Returns ``{key: (best_c, seconds)}``.  Compute time (gamma model) is
    identical across rows, so it does not change the ranking; include it
    for realistic totals, exclude it to study communication alone.
    """
    phi = nnz / (float(n) * r)
    flops = fusedmm_flops(nnz, r, p) if include_compute else 0.0
    out: Dict[str, Tuple[int, float]] = {}
    for key in keys:
        try:
            c, cost = best_feasible_c(key, n, r, p, phi, machine, max_c=max_c)
        except ReproError:
            continue
        out[key] = (c, cost.time(machine, flops=flops))
    return out


def predict_best_algorithm(
    n: int,
    r: int,
    nnz: int,
    p: int,
    machine: MachineParams = CORI_KNL,
    keys: Iterable[str] = PAPER_COST_ROWS,
    max_c: Optional[int] = None,
) -> str:
    """The Figure 6 "Predicted" map: cheapest row at its best feasible c."""
    times = predicted_times(n, r, nnz, p, machine, keys=keys, max_c=max_c)
    if not times:
        raise ReproError("no algorithm is feasible for these parameters")
    return min(times.items(), key=lambda kv: kv[1][1])[0]

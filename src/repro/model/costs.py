"""Closed-form communication costs (paper Table III).

Every function returns per-rank costs in the paper's convention — the
maximum number of 8-byte *words received* and messages per processor over
a full FusedMM — split into the replication (fiber collectives) and
propagation (cyclic shifts) components so the Figure 5 breakdown can be
modeled as well.

The paper's table rows are reproduced term for term; rows the paper omits
(the un-elided sparse-shifting variant benchmarked in Figure 4, and the
un-elided 2.5D dense-replicating variant) are derived with the same
method: an extra all-gather of the replicated dense input.

All formulas assume ``m ~= n`` (as the paper's analysis does) and are
parameterized by ``phi = nnz(S) / (n r)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ReproError
from repro.types import Elision

#: canonical cost-row keys: "<algorithm>/<elision>"
PAPER_COST_ROWS: Tuple[str, ...] = (
    "1.5d-dense-shift/none",
    "1.5d-dense-shift/replication-reuse",
    "1.5d-dense-shift/local-kernel-fusion",
    "1.5d-sparse-shift/none",
    "1.5d-sparse-shift/replication-reuse",
    "2.5d-dense-replicate/none",
    "2.5d-dense-replicate/replication-reuse",
    "2.5d-sparse-replicate/none",
)


@dataclass(frozen=True)
class CostBreakdown:
    """Per-rank FusedMM communication costs split by phase."""

    replication_words: float
    propagation_words: float
    replication_messages: float
    propagation_messages: float

    @property
    def words(self) -> float:
        return self.replication_words + self.propagation_words

    @property
    def messages(self) -> float:
        return self.replication_messages + self.propagation_messages

    def time(self, machine, flops: float = 0.0) -> float:
        """alpha-beta(-gamma) time of this cost on ``machine``."""
        return machine.time(self.words, self.messages, flops)


def row_key(algorithm: str, elision: Elision) -> str:
    return f"{algorithm}/{elision.value}"


def fusedmm_flops(nnz: int, r: int, p: int) -> float:
    """Per-rank FLOPs of one load-balanced FusedMM: an SDDMM (2 nnz r) and
    an SpMM (2 nnz r) divided over p ranks."""
    return 4.0 * nnz * r / p


def fusedmm_cost(key: str, n: int, r: int, p: int, c: int, phi: float) -> CostBreakdown:
    """Table III cost of one FusedMM call for the given row ``key``.

    ``n`` is the sparse-matrix side length, ``r`` the embedding width,
    ``p`` the processor count, ``c`` the replication factor and ``phi``
    the nonzero ratio ``nnz/(n r)``.
    """
    if c < 1 or p < 1 or c > p or p % c:
        raise ReproError(f"invalid (p, c) = ({p}, {c})")
    nr = float(n) * r
    ag = nr * (c - 1) / p  # one all-gather / reduce-scatter of the dense panel
    ag_m = float(c - 1)

    if key.startswith("1.5d"):
        shifts_round_m = p / c  # p/c cyclic shifts per kernel round
        if key == "1.5d-dense-shift/none":
            return CostBreakdown(2 * ag, 2 * nr / c, 2 * ag_m, 2 * shifts_round_m)
        if key == "1.5d-dense-shift/replication-reuse":
            return CostBreakdown(ag, 2 * nr / c, ag_m, 2 * shifts_round_m)
        if key == "1.5d-dense-shift/local-kernel-fusion":
            return CostBreakdown(2 * ag, nr / c, 2 * ag_m, shifts_round_m)
        if key == "1.5d-sparse-shift/none":
            return CostBreakdown(2 * ag, 6 * phi * nr / c, 2 * ag_m, 2 * shifts_round_m)
        if key == "1.5d-sparse-shift/replication-reuse":
            # paper Eq. (2): 6 nnz / c + n r (c-1) / p
            return CostBreakdown(ag, 6 * phi * nr / c, ag_m, 2 * shifts_round_m)
    else:
        q = math.isqrt(p // c)
        if q * q * c != p:
            raise ReproError(f"2.5D rows need p/c a perfect square, got p={p}, c={c}")
        if key == "2.5d-dense-replicate/none":
            prop = (6 * phi + 2) * nr * q / p  # = (6 phi + 2) nr / sqrt(p c)
            return CostBreakdown(2 * ag, prop, 2 * ag_m, 4 * q)
        if key == "2.5d-dense-replicate/replication-reuse":
            prop = (6 * phi + 2) * nr * q / p
            return CostBreakdown(ag, prop, ag_m, 4 * q)
        if key == "2.5d-sparse-replicate/none":
            # fiber: all-gather + reduce-scatter + all-gather of the VALUES
            # only (1 word per nonzero): 3 phi nr (c-1)/p
            repl = 3 * phi * nr * (c - 1) / p
            prop = 4 * nr * q / p  # = 4 nr / sqrt(p c)
            return CostBreakdown(repl, prop, 3 * ag_m, 4 * q)
    raise ReproError(f"unknown cost row {key!r}; options: {PAPER_COST_ROWS}")


def fusedmm_cost_paper(
    key: str, n: int, r: int, p: int, c: int, phi: float
) -> Tuple[float, float]:
    """(words, messages) exactly as printed in the paper's Table III.

    Provided separately from :func:`fusedmm_cost` so tests can check the
    two agree — our implemented algorithms realize the table's costs.
    """
    nr = float(n) * r
    sq_pc = math.sqrt(p * c)
    sq_p_over_c = math.sqrt(p / c)
    table: Dict[str, Tuple[float, float]] = {
        "1.5d-dense-shift/replication-reuse": (
            nr * (2 / c + (c - 1) / p),
            2 * p / c + (c - 1),
        ),
        "1.5d-dense-shift/local-kernel-fusion": (
            nr * (1 / c + 2 * (c - 1) / p),
            p / c + 2 * (c - 1),
        ),
        "1.5d-sparse-shift/replication-reuse": (
            nr * (6 * phi / c + (c - 1) / p),
            2 * p / c + (c - 1),
        ),
        "2.5d-dense-replicate/replication-reuse": (
            nr
            / sq_pc
            * (6 * phi + 2 + c**1.5 / math.sqrt(p) - math.sqrt(c) / math.sqrt(p)),
            4 * sq_p_over_c + (c - 1),
        ),
        "2.5d-sparse-replicate/none": (
            nr / math.sqrt(p) * (4 / math.sqrt(c) + 3 * phi * (c - 1) / math.sqrt(p)),
            4 * sq_p_over_c + 3 * (c - 1),
        ),
    }
    if key not in table:
        raise ReproError(f"row {key!r} is not printed in the paper's Table III")
    return table[key]


# ----------------------------------------------------------------------
# sparse-communication extension (comm="sparse", repro.comm_sparse)
# ----------------------------------------------------------------------


def expected_unique(universe: float, draws: float) -> float:
    """E[#distinct bins hit] by ``draws`` uniform draws over ``universe``.

    The Erdős–Rényi coverage expectation ``u (1 - (1 - 1/u)^d)`` that
    turns a nonzero count into the number of dense rows a need list will
    actually request.  Saturates at ``universe`` (dense-like inputs gain
    nothing from sparse communication) and degrades gracefully to
    ``draws`` when the matrix is hypersparse.
    """
    u, d = float(universe), float(draws)
    if u <= 0.0 or d <= 0.0:
        return 0.0
    return u * -math.expm1(d * math.log1p(-1.0 / u)) if u > 1.0 else u


def sparse_comm_discount(
    algorithm: str, n: int, r: int, p: int, c: int, phi: float
) -> float:
    """Fraction of the dense-row traffic that survives under need lists.

    For the 1.5D sparse-shifting layout the fiber collectives move the
    rows one *layer*'s ``nnz/c`` nonzeros touch out of ``n``; for the
    2.5D sparse-replicating layout the neighborhood exchanges move the
    rows one *coarse block*'s ``nnz/q^2`` nonzeros touch out of ``n/q``
    (times the ``(q-1)/q`` fraction a ring would also not ship).  Dense
    families have no sparse path, so their discount is 1.
    """
    nnz = phi * float(n) * r
    if algorithm == "1.5d-sparse-shift":
        return expected_unique(n, nnz / c) / float(n) if n else 1.0
    if algorithm == "2.5d-sparse-replicate":
        q = math.isqrt(p // c)
        if q * q * c != p:
            raise ReproError(f"2.5D rows need p/c a perfect square, got p={p}, c={c}")
        if q == 1 or n == 0:
            return 1.0
        block_rows = n / q
        return expected_unique(block_rows, nnz / (q * q)) / block_rows
    return 1.0


def fusedmm_buffer_words(
    key: str, n: int, r: int, p: int, c: int, phi: float, sparse_comm: bool = False
) -> float:
    """Peak per-rank *panel buffer* words of one FusedMM call (memory term).

    Models the largest transient dense buffer each implementation holds —
    the quantity :class:`~repro.runtime.profile.RankProfile` tracks as
    ``peak_buffer_bytes`` (in 8-byte words here):

    * 1.5D families gather an ``n x (r c / p)`` panel; under packed
      sparse communication it shrinks to the expected need-list coverage
      of ``n`` (the stream-compaction win).
    * The 2.5D dense-replicating family and the *dense-comm* path of the
      sparse-replicating family only ever hold piece-sized circulating
      buffers (``n r / p`` words).
    * The 2.5D sparse-comm path trades the ``q``-phase ring for one-shot
      strip-wide gathers: two packed ``coverage * (n/q) x (r/c)`` panels
      (A and B).  This can *exceed* the dense path's footprint when
      coverage is high — exactly why ``choose_comm_mode`` weighs this
      term and not traffic alone.
    """
    nr = float(n) * r
    algorithm = key.split("/", 1)[0]
    if algorithm.startswith("1.5d"):
        panel = nr * c / p
        if sparse_comm and algorithm == "1.5d-sparse-shift":
            panel *= sparse_comm_discount(algorithm, n, r, p, c, phi)
        return panel
    q = math.isqrt(p // c)
    if q * q * c != p:
        raise ReproError(f"2.5D rows need p/c a perfect square, got p={p}, c={c}")
    if not (sparse_comm and algorithm == "2.5d-sparse-replicate"):
        return nr / p  # circulating piece buffers only
    disc = sparse_comm_discount(algorithm, n, r, p, c, phi)
    return 2.0 * disc * nr / (q * c)


def fusedmm_cost_sparse(
    key: str, n: int, r: int, p: int, c: int, phi: float
) -> CostBreakdown:
    """Table III row under need-list sparse communication.

    The dense-row-moving term of the row (fiber replication for the 1.5D
    sparse-shifting family, Cannon propagation for the 2.5D
    sparse-replicating family) is scaled by the expected need-list
    coverage; everything already proportional to ``nnz`` is unchanged.
    """
    dense = fusedmm_cost(key, n, r, p, c, phi)
    algorithm = key.split("/", 1)[0]
    disc = sparse_comm_discount(algorithm, n, r, p, c, phi)
    if algorithm == "1.5d-sparse-shift":
        return CostBreakdown(
            replication_words=dense.replication_words * disc,
            propagation_words=dense.propagation_words,
            replication_messages=dense.replication_messages,
            propagation_messages=dense.propagation_messages,
        )
    if algorithm == "2.5d-sparse-replicate":
        q = math.isqrt(p // c)
        # one neighborhood gather replaces q ring shifts: (q-1)/q of the
        # strip-wide rows arrive, from q-1 direct messages per exchange
        prop = dense.propagation_words * disc * (q - 1) / max(q, 1)
        prop_m = dense.propagation_messages * (q - 1) / max(q, 1)
        return CostBreakdown(
            replication_words=dense.replication_words,
            propagation_words=prop,
            replication_messages=dense.replication_messages,
            propagation_messages=prop_m,
        )
    raise ReproError(
        f"no sparse-communication cost row for {key!r} "
        f"(only the sparse-shifting / sparse-replicating families qualify)"
    )


# ----------------------------------------------------------------------
# communication/compute overlap (the software-pipelined phase loops)
# ----------------------------------------------------------------------


def compute_seconds(flops: float, machine, compute_gamma: float = None) -> float:
    """Seconds of local compute under the model's compute term.

    ``compute_gamma`` (seconds per FLOP) overrides the machine's assumed
    ``gamma`` when a *measured* rate is available — the per-host kernel
    calibration of :mod:`repro.model.calibrate` feeds it through here so
    ``kernels="auto"`` sessions cost compute at the rate the chosen
    backend actually sustains on this host, not at the paper machine's
    assumed flop rate.
    """
    if compute_gamma is not None:
        return compute_gamma * flops
    return machine.time(0.0, 0.0, flops)


def _overlap_terms(
    key: str, n: int, r: int, p: int, c: int, phi: float, machine,
    sparse_comm: bool, compute_gamma: float = None,
):
    """(cost row, propagation seconds, compute seconds) for the pipeline."""
    cost = (
        fusedmm_cost_sparse(key, n, r, p, c, phi)
        if sparse_comm
        else fusedmm_cost(key, n, r, p, c, phi)
    )
    t_prop = machine.time(cost.propagation_words, cost.propagation_messages)
    t_comp = compute_seconds(fusedmm_flops(phi * n * r, r, p), machine, compute_gamma)
    return cost, t_prop, t_comp


def overlap_gain_seconds(
    key: str,
    n: int,
    r: int,
    p: int,
    c: int,
    phi: float,
    machine,
    sparse_comm: bool = False,
    efficiency: float = 1.0,
    compute_gamma: float = None,
) -> float:
    """Modeled seconds the overlap pipeline can hide on one FusedMM call.

    The pipeline posts each propagation shift / packed exchange behind the
    local kernel, so at best ``min(propagation, computation)`` of the
    per-call time disappears (replication collectives stay synchronous).
    ``efficiency`` discounts the bound for imperfect capture; 1.0 is the
    optimistic perfect-overlap limit that
    ``RunReport.modeled_total_seconds(overlap=True)`` has always assumed.
    ``compute_gamma`` substitutes a *measured* seconds-per-FLOP for the
    compute side of the ``min`` (see :func:`compute_seconds`): a faster
    compiled backend shrinks the computation window and therefore how
    much propagation can hide behind it.
    """
    _, t_prop, t_comp = _overlap_terms(
        key, n, r, p, c, phi, machine, sparse_comm, compute_gamma
    )
    return efficiency * min(t_prop, t_comp)


def fusedmm_time_overlap(
    key: str,
    n: int,
    r: int,
    p: int,
    c: int,
    phi: float,
    machine,
    sparse_comm: bool = False,
    efficiency: float = 1.0,
    compute_gamma: float = None,
) -> float:
    """Modeled FusedMM time under the overlap pipeline.

    This is the *overlapped-time term* of the model: the synchronous
    Table III total minus :func:`overlap_gain_seconds`.  At
    ``efficiency=1.0`` it equals the optimistic
    ``replication + max(propagation, computation)`` bound; a measured
    ``RunReport.overlap_efficiency`` can be substituted to model what the
    executed pipeline actually achieves instead of the pure bound, and a
    measured ``compute_gamma`` (per-host kernel calibration) replaces the
    assumed flop rate in both the synchronous total and the hidden term.
    """
    cost, t_prop, t_comp = _overlap_terms(
        key, n, r, p, c, phi, machine, sparse_comm, compute_gamma
    )
    sync = cost.time(machine) + t_comp
    return sync - efficiency * min(t_prop, t_comp)


def kernel_cost(
    algorithm: str, mode: str, n: int, r: int, p: int, c: int, phi: float
) -> CostBreakdown:
    """Cost of one *single* (non-fused) kernel call, as implemented.

    Every unified kernel is one propagation round plus the fiber
    collectives its mode requires: SDDMM and SpMMB replicate the input A
    (all-gather); SpMMA reduces the output (reduce-scatter); the 2.5D
    sparse-replicating kernels move value arrays instead.
    """
    nr = float(n) * r
    ag = nr * (c - 1) / p
    ag_m = float(c - 1)
    if algorithm == "1.5d-dense-shift":
        return CostBreakdown(ag, nr / c, ag_m, p / c)
    if algorithm == "1.5d-sparse-shift":
        return CostBreakdown(ag, 3 * phi * nr / c, ag_m, p / c)
    q = math.isqrt(p // c)
    if algorithm == "2.5d-dense-replicate":
        return CostBreakdown(ag, (3 * phi + 1) * nr * q / p, ag_m, 2 * q)
    if algorithm == "2.5d-sparse-replicate":
        nfiber = 2.0 if mode == "sddmm" else 1.0
        return CostBreakdown(
            nfiber * phi * nr * (c - 1) / p, 2 * nr * q / p, nfiber * ag_m, 2 * q
        )
    raise ReproError(f"unknown algorithm {algorithm!r}")

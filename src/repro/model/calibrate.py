"""Per-host kernel-backend calibration for ``kernels="auto"``.

The paper's cost model prices local compute at an *assumed* machine flop
rate (``MachineParams.gamma``).  With more than one kernel backend that
assumption breaks twice over: the backends differ from each other, and
both differ from the modeled machine.  This module measures what each
available backend actually sustains on *this* host — a short fixed-seed
SDDMM + SpMM microbenchmark per backend — and caches the result per
host, so ``kernels="auto"``:

* picks the backend with the lowest measured seconds-per-FLOP, and
* hands that measured rate to the model as ``compute_gamma``, so
  ``choose_comm_mode`` / ``overlap_gain_seconds`` cost the compute term
  at the rate the chosen kernels really run, not the assumed one.

The cache is a JSON file keyed by a host fingerprint (hostname, CPU
architecture, core count, numpy/numba versions).  Default location:
``~/.cache/repro/kernel_calibration.json``; override with the
``REPRO_KERNEL_CALIBRATION`` environment variable (point it at a
per-job path on shared filesystems).  A stale or unwritable cache is
never fatal — calibration re-measures in memory and continues.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.kernels.registry import available_kernel_backends, get_kernel_backend
from repro.runtime.profile import RankProfile

#: environment variable overriding the cache file location
CALIBRATION_ENV = "REPRO_KERNEL_CALIBRATION"

#: microbenchmark shape: n x n sparse with ~AVG_DEG nnz/row, width r.
#: Small enough to calibrate in tens of milliseconds per backend, large
#: enough that per-call overhead does not dominate the measured rate.
_N = 2048
_AVG_DEG = 16
_R = 64
_REPEATS = 3

#: in-memory memo: calibration runs at most once per process per cache
_MEMO: Dict[str, dict] = {}


def calibration_path() -> Path:
    """The cache file this host's calibration persists to."""
    override = os.environ.get(CALIBRATION_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "kernel_calibration.json"


def host_key() -> str:
    """Fingerprint of everything the measured rates depend on."""
    try:
        import numba

        numba_ver = numba.__version__
    except ImportError:
        numba_ver = "none"
    return "|".join(
        (
            platform.node(),
            platform.machine(),
            str(os.cpu_count()),
            f"numpy-{np.__version__}",
            f"numba-{numba_ver}",
        )
    )


def _workload():
    """Fixed-seed synthetic operands shared by every backend's probe."""
    rng = np.random.default_rng(0)
    nnz = _N * _AVG_DEG
    rows = np.sort(rng.integers(0, _N, size=nnz)).astype(np.int64)
    cols = rng.integers(0, _N, size=nnz).astype(np.int64)
    vals = rng.standard_normal(nnz)
    A = rng.standard_normal((_N, _R))
    B = rng.standard_normal((_N, _R))
    return rows, cols, vals, A, B


def _measure_backend(name: str) -> dict:
    """Best-of-N seconds-per-FLOP of one backend on the probe workload."""
    from repro.kernels.sddmm import sddmm_coo
    from repro.kernels.spmm import spmm_scatter

    backend = get_kernel_backend(name)
    if backend is not None:
        backend.warmup()
    profile = RankProfile()
    profile.kernels = backend
    rows, cols, vals, A, B = _workload()
    nnz = len(rows)
    flops_each = 2.0 * nnz * _R
    out_spmm = np.zeros((_N, _R))

    def probe(fn) -> float:
        best = float("inf")
        for _ in range(_REPEATS):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    t_sddmm = probe(lambda: sddmm_coo(A, B, rows, cols, profile=profile))
    t_spmm = probe(lambda: spmm_scatter(rows, cols, vals, B, out_spmm, profile=profile))
    gamma = (t_sddmm + t_spmm) / (2.0 * flops_each)
    return {
        "gamma": gamma,
        "gflops": 1e-9 / gamma if gamma > 0 else 0.0,
        "sddmm_ms": t_sddmm * 1e3,
        "spmm_ms": t_spmm * 1e3,
    }


def calibrate(force: bool = False) -> dict:
    """Measured per-backend rates for this host, cached per host.

    Returns ``{"host": <fingerprint>, "backends": {name: {"gamma": s/flop,
    "gflops": ..., "sddmm_ms": ..., "spmm_ms": ...}}}``.  The result is
    memoized in-process and persisted to :func:`calibration_path`; a
    cached file is reused only when its host fingerprint matches and it
    covers every currently-available backend (installing numba after a
    numpy-only calibration triggers a re-measure).
    """
    path = calibration_path()
    memo_key = str(path)
    if not force and memo_key in _MEMO:
        return _MEMO[memo_key]
    key = host_key()
    backends = available_kernel_backends()
    if not force and path.is_file():
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            doc = None
        if (
            doc is not None
            and doc.get("host") == key
            and all(b in doc.get("backends", {}) for b in backends)
        ):
            _MEMO[memo_key] = doc
            return doc
    doc = {"host": key, "backends": {b: _measure_backend(b) for b in backends}}
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(doc, indent=2) + "\n")
    except OSError:
        pass  # read-only home: keep the in-memory result
    _MEMO[memo_key] = doc
    return doc


def choose_kernel_backend(force: bool = False) -> Tuple[str, Optional[float]]:
    """The ``kernels="auto"`` policy: fastest measured available backend.

    Returns ``(name, gamma)`` where ``gamma`` is the backend's measured
    seconds-per-FLOP — the value sessions thread into the cost model as
    ``compute_gamma``.
    """
    doc = calibrate(force=force)
    name, entry = min(doc["backends"].items(), key=lambda kv: kv[1]["gamma"])
    return name, entry["gamma"]

"""Top-level FusedMM driver: variant x elision x algorithm dispatch.

Each elision strategy is *native* to one output shape (Section IV-B):
replication reuse re-uses the replication of the m-side matrix and
accumulates a B-shaped output (FusedMMB); local kernel fusion accumulates
an A-shaped output (FusedMMA).  The other variant is obtained exactly as
the paper prescribes: "we obtain algorithms for FusedMMB by interchanging
the roles of A and B and replacing matrix S with its transpose" — i.e.

``FusedMMA(S, A, B) == FusedMMB(S.T, B, A)`` and vice versa.

This module maps a user-requested ``(variant, elision)`` onto the native
procedure, transposing the distribution when needed (the paper notes this
"amounts to storing two copies of the sparse matrix", one transposed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Union

import numpy as np

from repro.errors import ReproError
from repro.runtime.profile import RunReport
from repro.sparse.coo import CooMatrix
from repro.types import CommMode, Elision, FusedVariant


def _native_method(alg, elision: Elision, native: str) -> Callable:
    table = {
        (Elision.NONE, "a"): "rank_fusedmm_none_a",
        (Elision.NONE, "b"): "rank_fusedmm_none_b",
        (Elision.REPLICATION_REUSE, "b"): "rank_fusedmm_reuse",
        (Elision.LOCAL_KERNEL_FUSION, "a"): "rank_fusedmm_lkf",
    }
    name = table.get((elision, native))
    if name is None or not hasattr(alg, name):
        raise ReproError(
            f"{alg.name} does not implement elision={elision.value} (native {native})"
        )
    return getattr(alg, name)


def resolve_orientation(
    alg, variant: FusedVariant, elision: Elision
) -> Tuple[bool, str]:
    """Return ``(transpose_inputs, native_variant)`` for this request.

    ``transpose_inputs=True`` means run the native procedure on
    ``(S.T, B, A)`` and read the output from the opposite dense operand.
    """
    if elision not in alg.elisions:
        raise ReproError(
            f"{alg.name} supports elisions {[e.value for e in alg.elisions]}, "
            f"not {elision.value}"
        )
    want = "a" if variant == FusedVariant.FUSED_A else "b"
    native = alg.native_variant[elision]
    if native == "either" or native == want:
        return False, want
    return True, native


@dataclass
class FusedResult:
    """Output of a driver-level FusedMM run."""

    output: np.ndarray  # the dense FusedMM result (m x r for A, n x r for B)
    sddmm: Optional[CooMatrix]  # intermediate R when reassembled (may be None)
    report: RunReport


def run_fusedmm(
    alg,
    S: CooMatrix,
    A: np.ndarray,
    B: np.ndarray,
    variant: FusedVariant = FusedVariant.FUSED_A,
    elision: Elision = Elision.NONE,
    calls: int = 1,
    collect_sddmm: bool = False,
    comm_mode: Union[str, CommMode] = CommMode.DENSE,
    overlap: str = "off",
) -> FusedResult:
    """Run ``calls`` FusedMM invocations on a throwaway session and collect.

    ``calls > 1`` mirrors the paper's benchmarking methodology ("time for
    5 FusedMM calls"): the sparse operand is distributed **once** on the
    session (only the dense operands are re-bound per call, which is what
    the paper amortizes as setup) and the per-rank cost profiles
    accumulate across calls.

    ``comm_mode`` must already be resolved to dense or sparse (the
    ``"auto"`` policy lives in :mod:`repro.session`); with sparse mode,
    the need-list plans are built once by the session and reused by every
    call.
    """
    from repro.session import Session  # session builds on this module

    comm_mode = comm_mode if isinstance(comm_mode, CommMode) else CommMode(comm_mode)
    if comm_mode == CommMode.AUTO:
        raise ReproError("run_fusedmm needs a resolved comm mode (dense or sparse)")
    A = np.asarray(A)
    if A.ndim != 2:
        raise ReproError(f"operand shapes inconsistent: S{S.shape}, A{A.shape}")
    # calls > 1 amortizes the resident pool; a single call stays
    # spawn-per-call (nothing to amortize, no warm threads to hold)
    sess = Session.for_algorithm(
        alg, S, A.shape[1], elision=elision, comm=comm_mode,
        persistent=calls > 1, overlap=overlap,
    )
    try:
        ncalls = max(calls, 1)
        for i in range(ncalls):
            # collect (gather the output, reassemble the intermediate) only
            # after the last call; earlier calls leave state resident
            out, sddmm_out, report = sess._run_fused(
                variant, A, B, collect_sddmm, collect=(i == ncalls - 1)
            )
    finally:
        sess.close()
    return FusedResult(output=out, sddmm=sddmm_out, report=report)

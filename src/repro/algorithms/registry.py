"""Algorithm registry: name -> class, feasibility helpers.

Mirrors the paper's Figure 2 design space.  The 1.5D sparse-replicating
dense-shifting corner is deliberately absent: the paper rules it out as
"inferior to the 2.5D sparse replicating algorithm".
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

from repro.algorithms.base import DistributedAlgorithm
from repro.algorithms.dense_repl_25d import DenseReplicate25D
from repro.algorithms.dense_shift_15d import DenseShift15D
from repro.algorithms.sparse_repl_25d import SparseReplicate25D
from repro.algorithms.sparse_shift_15d import SparseShift15D
from repro.errors import ReproError
from repro.runtime.grid import feasible_c_15d, feasible_c_25d
from repro.types import Elision

ALGORITHMS: Dict[str, Type[DistributedAlgorithm]] = {
    DenseShift15D.name: DenseShift15D,
    SparseShift15D.name: SparseShift15D,
    DenseReplicate25D.name: DenseReplicate25D,
    SparseReplicate25D.name: SparseReplicate25D,
}


def make_algorithm(name: str, p: int, c: int) -> DistributedAlgorithm:
    """Instantiate an algorithm family by registry name."""
    if name not in ALGORITHMS:
        raise ReproError(f"unknown algorithm {name!r}; options: {sorted(ALGORITHMS)}")
    return ALGORITHMS[name](p, c)


def supported_elisions(name: str) -> Tuple[Elision, ...]:
    if name not in ALGORITHMS:
        raise ReproError(f"unknown algorithm {name!r}; options: {sorted(ALGORITHMS)}")
    return ALGORITHMS[name].elisions


def supports_sparse_comm(name: str) -> bool:
    """Whether algorithm ``name`` implements need-list sparse communication
    (``comm="sparse"``, :mod:`repro.comm_sparse`)."""
    if name not in ALGORITHMS:
        raise ReproError(f"unknown algorithm {name!r}; options: {sorted(ALGORITHMS)}")
    return ALGORITHMS[name].supports_sparse_comm


def feasible_replication_factors(name: str, p: int) -> Tuple[int, ...]:
    """Replication factors ``c`` admissible for algorithm ``name`` on ``p``
    ranks (1.5D: c | p; 2.5D: additionally p/c a perfect square)."""
    if name not in ALGORITHMS:
        raise ReproError(f"unknown algorithm {name!r}; options: {sorted(ALGORITHMS)}")
    if name.startswith("2.5d"):
        return feasible_c_25d(p)
    return feasible_c_15d(p)

"""2.5D sparse-replicating algorithm (paper Section V-D).

Grid ``q x q x c`` with ``q = sqrt(p/c)``.  The sparse matrix is the
replicated operand: the *coordinates* of coarse block ``(x, y)`` (a
``q x q`` blocking) are shared by all ``c`` fiber ranks — Table II's
``(i, j, *)`` — while the *values* are distributed along the fiber in
contiguous chunks, so "only the nonzero values need to be communicated
along the fiber axis" (one word per nonzero).  Both dense matrices
propagate within each layer.

Dense layout: layer ``z`` owns the r-strip ``z`` (width ``~r/c``),
subdivided into ``q`` column chunks; piece ``(x, kappa)`` of A (coarse row
block ``x``, chunk ``kappa``) starts at rank ``(x, (kappa - x) mod q, z)``
and shifts along the grid row; piece ``(y, kappa)`` of B starts at rank
``((kappa - y) mod q, y, z)`` and shifts along the grid column.  At phase
``t`` rank ``(x, y, z)`` holds the A and B pieces with
``kappa = (x + y - t) mod q``, so the partial products for the resident S
block are always computable locally.

Unified kernel:

* SDDMM — all-gather S values along the fiber; dense pieces circulate for
  ``q`` phases accumulating this layer's strip of the dot products;
  partials are multiplied by the (gathered) S values and reduce-scattered
  along the fiber back into value chunks.
* SpMMA — all-gather values; the output circulates in A's piece layout
  (accumulating across the grid row); no terminal reduction.
* SpMMB — mirror image of SpMMA with A propagating.

FusedMM (the paper: this family admits *no* communication elision): an
initial value all-gather, the SDDMM round, an all-reduce of the values
(reduce-scatter + all-gather, exactly the paper's description), and the
SpMM round — ``4 sqrt(p/c) + 3(c-1)`` messages and
``nr/sqrt(p) * (4/sqrt(c) + 3 phi (c-1)/sqrt(p))`` words (Table III).

Sparse communication (``comm="sparse"``): the resident block's structure
is *stationary*, so rank ``(x, y, z)`` only ever reads A at
``unique(S_rows)`` and B at ``unique(S_cols)`` of block ``(x, y)`` — in
every chunk of its layer strip.  Instead of relaying full dense pieces
around the Cannon rings for ``q`` phases, the sparse path fetches exactly
those rows from each chunk's owner with one need-list neighborhood
gather (and pushes back only touched output rows), turning the
``2 nr/sqrt(pc)`` propagation term into
``(|unique rows| + |unique cols|) r (q-1)/(c q)`` words per kernel.  The
fiber value collectives were already sparse (1 word/nnz) and are kept.

Packed buffers: the strip-wide gather targets and partial-output
accumulators are packed to exactly those unique-row unions
(``len(union) x strip_width`` panels from a per-rank buffer pool), and
the resident block's coordinates are rewritten into packed-panel space
once per structure (:meth:`~repro.sparse.coo.SparseBlock.remapped`, with
the CSR caches prebuilt driver-side) so the local kernels run as plain
``spmm_a_block``/``spmm_b_block`` CSR products and coordinate SDDMMs on
compact panels with zero per-call index translation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.algorithms.base import (
    KEEP,
    TAG_FIBER_AG,
    TAG_FIBER_RS,
    TAG_SHIFT_A,
    TAG_SHIFT_B,
    DistributedAlgorithm,
    region,
    track,
)
from repro.comm_sparse.collectives import (
    isparse_allgatherv_packed,
    isparse_reduce_scatterv_packed,
    sparse_allgatherv_packed,
    sparse_reduce_scatterv_packed,
)
from repro.comm_sparse.planner import (
    SparsePlan25D,
    cached_comm_plans,
    plan_sparse_replicate_25d,
)
from repro.errors import DistributionError
from repro.kernels.sddmm import sddmm_coo
from repro.kernels.spmm import spmm_a_block, spmm_b_block, spmm_scatter
from repro.runtime.buffers import BufferPool
from repro.runtime.comm import Communicator
from repro.runtime.grid import Grid25D
from repro.sparse.coo import CooMatrix
from repro.sparse.partition import block_ranges, partition_coo_2d
from repro.types import Elision, Mode, Phase


@dataclass(frozen=True)
class Plan25DSparse:
    """Immutable layout description for :class:`SparseReplicate25D`."""

    m: int
    n: int
    r: int
    grid: Grid25D
    row_coarse: np.ndarray = field(repr=False)  # S row blocks: block_ranges(m, q)
    col_coarse: np.ndarray = field(repr=False)  # S col blocks: block_ranges(n, q)
    strips: np.ndarray = field(repr=False)  # layer r-strips: block_ranges(r, c)
    chunk_bounds: Tuple[np.ndarray, ...] = field(repr=False, default=())  # per z

    @property
    def p(self) -> int:
        return self.grid.p

    @property
    def c(self) -> int:
        return self.grid.c

    @property
    def q(self) -> int:
        return self.grid.q

    def kappa0(self, x: int, y: int) -> int:
        """Chunk index held by rank ``(x, y, .)`` at phase 0."""
        return (x + y) % self.q

    def chunk_slice(self, z: int, kappa: int) -> slice:
        b = self.chunk_bounds[z]
        return slice(int(b[kappa]), int(b[kappa + 1]))

    def rows_a(self, x: int) -> slice:
        return slice(int(self.row_coarse[x]), int(self.row_coarse[x + 1]))

    def rows_b(self, y: int) -> slice:
        return slice(int(self.col_coarse[y]), int(self.col_coarse[y + 1]))


@dataclass
class Local25DSparse:
    """Rank-local state for :class:`SparseReplicate25D`."""

    x: int
    y: int
    z: int
    S_rows: np.ndarray  # coords of coarse block (x, y), replicated over z
    S_cols: np.ndarray
    S_vals_chunk: np.ndarray  # this layer's contiguous value chunk
    val_bounds: np.ndarray  # (c+1,) chunk boundaries over the block's nnz
    gidx: np.ndarray  # global positions of the block's nonzeros
    A: np.ndarray  # piece (x, kappa0): coarse rows x, chunk kappa0 of strip z
    B: np.ndarray  # piece (y, kappa0)
    R_chunk: Optional[np.ndarray] = None  # SDDMM output (this layer's chunk)


@dataclass
class Ctx25DSparse:
    comm: Communicator
    row: Communicator  # vary y (A pieces shift here)
    col: Communicator  # vary x (B pieces shift here)
    fiber: Communicator  # vary z (value collectives here)
    x: int
    y: int
    z: int
    pool: BufferPool = field(default_factory=BufferPool)
    overlap: bool = False


class SparseReplicate25D(DistributedAlgorithm):
    """2.5D sparse-replicating algorithm (see module docstring)."""

    name = "2.5d-sparse-replicate"
    elisions = (Elision.NONE,)
    native_variant = {Elision.NONE: "either"}
    supports_sparse_comm = True

    def __init__(self, p: int, c: int) -> None:
        super().__init__(p, c)
        self.grid = Grid25D(p, c)

    # ------------------------------------------------------------------
    # driver side
    # ------------------------------------------------------------------

    def plan(self, m: int, n: int, r: int) -> Plan25DSparse:
        q, c = self.grid.q, self.c
        strips = block_ranges(r, c)
        chunk_bounds = tuple(
            block_ranges(int(strips[z + 1] - strips[z]), q) + strips[z]
            for z in range(c)
        )
        return Plan25DSparse(
            m=m,
            n=n,
            r=r,
            grid=self.grid,
            row_coarse=block_ranges(m, q),
            col_coarse=block_ranges(n, q),
            strips=strips,
            chunk_bounds=chunk_bounds,
        )

    def distribute_sparse(
        self, plan: Plan25DSparse, S: Optional[CooMatrix]
    ) -> List[Local25DSparse]:
        c = plan.c
        if S is not None and S.shape != (plan.m, plan.n):
            raise DistributionError(f"S shape {S.shape} != ({plan.m}, {plan.n})")
        parts = {}
        if S is not None and S.nnz:
            parts = partition_coo_2d(
                S.rows, S.cols, S.vals, plan.row_coarse, plan.col_coarse
            )
        empty = (
            np.empty(0, np.int64),
            np.empty(0, np.int64),
            np.empty(0),
            np.empty(0, np.int64),
        )
        placeholder = np.empty((0, 0))
        locals_: List[Local25DSparse] = []
        for rank in range(self.p):
            x, y, z = self.grid.coords(rank)
            sr, sc, sv, gi = parts.get((x, y), empty)
            vb = block_ranges(len(sr), c)
            locals_.append(
                Local25DSparse(
                    x=x,
                    y=y,
                    z=z,
                    S_rows=sr,
                    S_cols=sc,
                    S_vals_chunk=sv[int(vb[z]) : int(vb[z + 1])].copy(),
                    val_bounds=vb,
                    gidx=gi,
                    A=placeholder,
                    B=placeholder,
                )
            )
        return locals_

    def bind_dense(
        self,
        plan: Plan25DSparse,
        locals_: List[Local25DSparse],
        A: Optional[np.ndarray],
        B: Optional[np.ndarray],
    ) -> None:
        for loc in locals_:
            k0 = plan.kappa0(loc.x, loc.y)
            ka = plan.chunk_slice(loc.z, k0)
            if A is not KEEP:
                loc.A = (
                    A[plan.rows_a(loc.x), ka].copy()
                    if A is not None
                    else np.zeros(
                        (
                            int(plan.row_coarse[loc.x + 1] - plan.row_coarse[loc.x]),
                            ka.stop - ka.start,
                        )
                    )
                )
            if B is not KEEP:
                loc.B = (
                    B[plan.rows_b(loc.y), ka].copy()
                    if B is not None
                    else np.zeros(
                        (
                            int(plan.col_coarse[loc.y + 1] - plan.col_coarse[loc.y]),
                            ka.stop - ka.start,
                        )
                    )
                )

    def update_values(
        self, plan: Plan25DSparse, locals_: List[Local25DSparse], vals: np.ndarray
    ) -> None:
        for loc in locals_:
            if len(loc.gidx):
                vb = loc.val_bounds
                # gather only this layer's chunk, not the whole replicated block
                chunk = loc.gidx[int(vb[loc.z]) : int(vb[loc.z + 1])]
                loc.S_vals_chunk[:] = vals[chunk]

    def collect_dense_a(
        self, plan: Plan25DSparse, locals_: List[Local25DSparse]
    ) -> np.ndarray:
        out = np.zeros((plan.m, plan.r))
        for loc in locals_:
            k0 = plan.kappa0(loc.x, loc.y)
            out[plan.rows_a(loc.x), plan.chunk_slice(loc.z, k0)] = loc.A
        return out

    def collect_dense_b(
        self, plan: Plan25DSparse, locals_: List[Local25DSparse]
    ) -> np.ndarray:
        out = np.zeros((plan.n, plan.r))
        for loc in locals_:
            k0 = plan.kappa0(loc.x, loc.y)
            out[plan.rows_b(loc.y), plan.chunk_slice(loc.z, k0)] = loc.B
        return out

    def collect_sddmm(
        self, plan: Plan25DSparse, locals_: List[Local25DSparse], S: CooMatrix
    ) -> CooMatrix:
        vals = np.zeros(S.nnz)
        for loc in locals_:
            if loc.R_chunk is not None and len(loc.gidx):
                sl = slice(int(loc.val_bounds[loc.z]), int(loc.val_bounds[loc.z + 1]))
                vals[loc.gidx[sl]] = loc.R_chunk
        return S.with_values(vals)

    def build_comm_plans(
        self, plan: Plan25DSparse, S: CooMatrix
    ) -> List[SparsePlan25D]:
        return cached_comm_plans(
            "2.5d-sparse-replicate", plan, S, plan_sparse_replicate_25d
        )

    # ------------------------------------------------------------------
    # rank side
    # ------------------------------------------------------------------

    def make_context(self, comm: Communicator) -> Ctx25DSparse:
        row, col, fiber = self.grid.make_comms(comm)
        x, y, z = self.grid.coords(comm.rank)
        return Ctx25DSparse(
            comm=comm, row=row, col=col, fiber=fiber, x=x, y=y, z=z,
            pool=self.pool_for(comm), overlap=self.overlap,
        )

    # -- fiber value collectives ------------------------------------------

    def _gather_values(self, ctx: Ctx25DSparse, local: Local25DSparse) -> np.ndarray:
        """All-gather the value chunks along the fiber (1 word/nnz)."""
        parts = ctx.fiber.allgather(local.S_vals_chunk, tag=TAG_FIBER_AG)
        return np.concatenate(parts) if parts else np.empty(0)

    def _reduce_scatter_values(
        self, ctx: Ctx25DSparse, local: Local25DSparse, full: np.ndarray
    ) -> np.ndarray:
        """Reduce-scatter a full-length value array back into chunks."""
        vb = local.val_bounds
        pieces = [full[int(vb[k]) : int(vb[k + 1])] for k in range(self.c)]
        return ctx.fiber.reduce_scatter(pieces, tag=TAG_FIBER_RS)

    # -- need-list dense-row exchanges (comm="sparse") ---------------------

    def _gather_a_packed(
        self, ctx: Ctx25DSparse, local: Local25DSparse, sp: SparsePlan25D
    ) -> np.ndarray:
        """Assemble A's needed rows across the strip into a *packed* panel.

        The panel is ``len(unique(S_rows)) x strip_width``: the own
        chunk's needed rows are copied into its column window with one
        fancy-indexed gather, and every peer's column window is filled
        row-complete by that peer's leg (the need list is identical for
        every chunk of the strip), so the pool hands back an uninitialized
        leased panel — no block-tall buffer, no zero fill.  Under the
        overlap pipeline the exchange is posted first and the own-window
        copy hides behind it.
        """
        with region(ctx.comm, "gather-A-packed"):
            A_p = ctx.pool.lease("gather-a", (sp.index_a.size, sp.strip_width))
            if ctx.overlap:
                pending = isparse_allgatherv_packed(
                    ctx.row, sp.gather_a_packed, sp.index_a, local.A, A_p,
                    pool=ctx.pool,
                )
                A_p[:, sp.my_window[0] : sp.my_window[1]] = local.A[sp.index_a.union]
                pending.wait()
            else:
                A_p[:, sp.my_window[0] : sp.my_window[1]] = local.A[sp.index_a.union]
                sparse_allgatherv_packed(
                    ctx.row, sp.gather_a_packed, sp.index_a, local.A, A_p
                )
            return A_p

    def _gather_b_packed(
        self, ctx: Ctx25DSparse, local: Local25DSparse, sp: SparsePlan25D
    ) -> np.ndarray:
        """Mirror of :meth:`_gather_a_packed` for B along the grid column."""
        with region(ctx.comm, "gather-B-packed"):
            B_p = ctx.pool.lease("gather-b", (sp.index_b.size, sp.strip_width))
            if ctx.overlap:
                pending = isparse_allgatherv_packed(
                    ctx.col, sp.gather_b_packed, sp.index_b, local.B, B_p,
                    pool=ctx.pool,
                )
                B_p[:, sp.my_window[0] : sp.my_window[1]] = local.B[sp.index_b.union]
                pending.wait()
            else:
                B_p[:, sp.my_window[0] : sp.my_window[1]] = local.B[sp.index_b.union]
                sparse_allgatherv_packed(
                    ctx.col, sp.gather_b_packed, sp.index_b, local.B, B_p
                )
            return B_p

    def _gather_ab_packed(
        self, ctx: Ctx25DSparse, local: Local25DSparse, sp: SparsePlan25D
    ):
        """Both packed panels for the SDDMM; overlapped, the two
        neighborhood exchanges (row axis for A, column axis for B) are in
        flight *concurrently* while both own-window copies run behind
        them, halving the exposed exchange latency."""
        if not ctx.overlap:
            return (
                self._gather_a_packed(ctx, local, sp),
                self._gather_b_packed(ctx, local, sp),
            )
        with region(ctx.comm, "gather-AB-packed"):
            w0, w1 = sp.my_window
            A_p = ctx.pool.lease("gather-a", (sp.index_a.size, sp.strip_width))
            B_p = ctx.pool.lease("gather-b", (sp.index_b.size, sp.strip_width))
            pend_a = isparse_allgatherv_packed(
                ctx.row, sp.gather_a_packed, sp.index_a, local.A, A_p, pool=ctx.pool
            )
            pend_b = isparse_allgatherv_packed(
                ctx.col, sp.gather_b_packed, sp.index_b, local.B, B_p, pool=ctx.pool
            )
            A_p[:, w0:w1] = local.A[sp.index_a.union]
            B_p[:, w0:w1] = local.B[sp.index_b.union]
            pend_a.wait()
            pend_b.wait()
            return A_p, B_p

    # -- unified kernel ----------------------------------------------------

    def rank_kernel(
        self,
        ctx: Ctx25DSparse,
        plan: Plan25DSparse,
        local: Local25DSparse,
        mode: Mode,
        values_full: Optional[np.ndarray] = None,
        sparse_plan: Optional[SparsePlan25D] = None,
    ) -> None:
        """One unified kernel call.

        ``values_full`` lets FusedMM pass pre-gathered values into the SpMM
        round (the all-reduce between the calls already produced them).
        With ``sparse_plan`` the dense Cannon propagation is replaced by
        need-list neighborhood exchanges (see module docstring).
        """
        prof = ctx.comm.profile
        q = plan.q

        if mode == Mode.SDDMM:
            self._sddmm_round(
                ctx, plan, local, gather_input=True, reduce_output=True,
                sparse_plan=sparse_plan,
            )
            return

        with track(ctx.comm, Phase.REPLICATION):
            if values_full is None:
                values_full = self._gather_values(ctx, local)

        if sparse_plan is not None:
            self._spmm_sparse(ctx, plan, local, mode, values_full, sparse_plan)
            return

        overlap = ctx.overlap
        if mode == Mode.SPMM_A:
            # output circulates in A's piece layout; B propagates.  The
            # input piece shift is pipelined behind the local kernel; the
            # circulating output accumulator is mutated by the kernel and
            # shifts synchronously.
            out_cur = ctx.pool.zeros("piece-out", local.A.shape)
            b_cur = ctx.pool.take_like("piece-b", local.B)
            for _ in range(q):
                pend_b = None
                if overlap:
                    with track(ctx.comm, Phase.PROPAGATION):
                        pend_b = ctx.col.ishift(b_cur, displacement=1, tag=TAG_SHIFT_B)
                with track(ctx.comm, Phase.COMPUTATION):
                    if len(local.S_rows):
                        spmm_scatter(
                            local.S_rows, local.S_cols, values_full, b_cur,
                            out_cur, profile=prof,
                        )
                with track(ctx.comm, Phase.PROPAGATION):
                    out_cur = ctx.row.shift(out_cur, displacement=1, tag=TAG_SHIFT_A)
                    b_cur = (
                        pend_b.wait()
                        if overlap
                        else ctx.col.shift(b_cur, displacement=1, tag=TAG_SHIFT_B)
                    )
            local.A = out_cur
        else:  # SPMM_B (mirror: A propagates pipelined, output synchronous)
            out_cur = ctx.pool.zeros("piece-out", local.B.shape)
            a_cur = ctx.pool.take_like("piece-a", local.A)
            for _ in range(q):
                pend_a = None
                if overlap:
                    with track(ctx.comm, Phase.PROPAGATION):
                        pend_a = ctx.row.ishift(a_cur, displacement=1, tag=TAG_SHIFT_A)
                with track(ctx.comm, Phase.COMPUTATION):
                    if len(local.S_rows):
                        spmm_scatter(
                            local.S_cols, local.S_rows, values_full, a_cur,
                            out_cur, profile=prof,
                        )
                with track(ctx.comm, Phase.PROPAGATION):
                    a_cur = (
                        pend_a.wait()
                        if overlap
                        else ctx.row.shift(a_cur, displacement=1, tag=TAG_SHIFT_A)
                    )
                    out_cur = ctx.col.shift(out_cur, displacement=1, tag=TAG_SHIFT_B)
            local.B = out_cur

    def _spmm_sparse(
        self,
        ctx: Ctx25DSparse,
        plan: Plan25DSparse,
        local: Local25DSparse,
        mode: Mode,
        values_full: np.ndarray,
        sp: SparsePlan25D,
    ) -> None:
        """SpMM with need-list propagation over packed panels.

        One gather of the stationary operand's needed rows into a packed
        strip panel, one local CSR product through the structure-cached
        packed block (its coordinates already live in packed-panel
        space), then a need-list reduction of the packed partial-output
        panel back to the chunk owners.  Every row of the packed output
        panel is a touched row, so the reduction ships it densely — the
        packing *is* the need list.
        """
        prof = ctx.comm.profile
        w0, w1 = sp.my_window

        def reduce_back(comm, plan_packed, index, out_p, own):
            """Ship the packed partial-output panel back to the chunk
            owners.  Pipelined: the contribution legs post first and the
            own-window seeding hides behind the exchange."""
            base = np.zeros_like(own)
            if ctx.overlap:
                pending = isparse_reduce_scatterv_packed(
                    comm, plan_packed, index, out_p, base
                )
                base[index.union] = out_p[:, w0:w1]
                return pending.wait()
            base[index.union] = out_p[:, w0:w1]
            return sparse_reduce_scatterv_packed(comm, plan_packed, index, out_p, base)

        if mode == Mode.SPMM_A:
            with track(ctx.comm, Phase.PROPAGATION):
                B_p = self._gather_b_packed(ctx, local, sp)
            out_p = ctx.pool.zeros("out-panel", (sp.index_a.size, sp.strip_width))
            with track(ctx.comm, Phase.COMPUTATION):
                spmm_a_block(
                    sp.block_packed, B_p, out_p, values=values_full, profile=prof
                )
            with track(ctx.comm, Phase.PROPAGATION):
                local.A = reduce_back(
                    ctx.row, sp.reduce_a_packed, sp.index_a, out_p, local.A
                )
        else:  # SPMM_B
            with track(ctx.comm, Phase.PROPAGATION):
                A_p = self._gather_a_packed(ctx, local, sp)
            out_p = ctx.pool.zeros("out-panel", (sp.index_b.size, sp.strip_width))
            with track(ctx.comm, Phase.COMPUTATION):
                spmm_b_block(
                    sp.block_packed, A_p, out_p, values=values_full, profile=prof
                )
            with track(ctx.comm, Phase.PROPAGATION):
                local.B = reduce_back(
                    ctx.col, sp.reduce_b_packed, sp.index_b, out_p, local.B
                )

    def _sddmm_round(
        self,
        ctx: Ctx25DSparse,
        plan: Plan25DSparse,
        local: Local25DSparse,
        gather_input: bool,
        reduce_output: bool,
        sparse_plan: Optional[SparsePlan25D] = None,
    ) -> Optional[np.ndarray]:
        """The SDDMM propagation round.

        Returns the *full-length* partial R values (before reduction) when
        ``reduce_output=False`` (the FusedMM path, which all-reduces them);
        otherwise stores the reduced chunk in ``local.R_chunk``.
        """
        prof = ctx.comm.profile
        q = plan.q
        overlap = ctx.overlap
        # the gathered values are consumed only by the final multiply, so
        # the overlap pipeline posts the fiber all-gather now and waits it
        # *after* the local SDDMM kernel — the whole value replication
        # hides behind the dominant compute of this round
        pend_vals = None
        s_vals = None
        with track(ctx.comm, Phase.REPLICATION):
            if gather_input:
                if overlap and ctx.fiber.size > 1:
                    pend_vals = ctx.fiber.iallgather(
                        local.S_vals_chunk, tag=TAG_FIBER_AG
                    )
                else:
                    s_vals = self._gather_values(ctx, local)

        def finish_values():
            nonlocal s_vals
            if pend_vals is not None:
                with track(ctx.comm, Phase.REPLICATION):
                    parts = pend_vals.wait()
                    s_vals = np.concatenate(parts) if parts else np.empty(0)

        if sparse_plan is not None:
            # gather every needed row across the strip once into packed
            # panels and take the full-width dots in a single local kernel
            # call, addressed through the structure-cached packed block
            # (overlapped: both neighborhood exchanges fly concurrently)
            with track(ctx.comm, Phase.PROPAGATION):
                a_p, b_p = self._gather_ab_packed(ctx, local, sparse_plan)
            acc = np.zeros(len(local.S_rows))
            with track(ctx.comm, Phase.COMPUTATION):
                if len(local.S_rows):
                    blk = sparse_plan.block_packed
                    sddmm_coo(
                        a_p, b_p, blk.rows, blk.cols,
                        out=acc, accumulate=True, profile=prof,
                    )
            finish_values()
            with track(ctx.comm, Phase.COMPUTATION):
                partial = acc * s_vals if s_vals is not None else acc
                prof.add_flops(len(acc))
            if reduce_output:
                with track(ctx.comm, Phase.REPLICATION):
                    local.R_chunk = self._reduce_scatter_values(ctx, local, partial)
                return None
            return partial

        acc = np.zeros(len(local.S_rows))
        a_cur = ctx.pool.take_like("piece-a", local.A)
        b_cur = ctx.pool.take_like("piece-b", local.B)
        for _ in range(q):
            pend_a = pend_b = None
            if overlap:
                # both circulating pieces are read-only inputs here (the
                # accumulator is rank-local): pipeline both shifts
                with track(ctx.comm, Phase.PROPAGATION):
                    pend_a = ctx.row.ishift(a_cur, displacement=1, tag=TAG_SHIFT_A)
                    pend_b = ctx.col.ishift(b_cur, displacement=1, tag=TAG_SHIFT_B)
            with track(ctx.comm, Phase.COMPUTATION):
                if len(local.S_rows):
                    sddmm_coo(
                        a_cur, b_cur, local.S_rows, local.S_cols,
                        out=acc, accumulate=True, profile=prof,
                    )
            with track(ctx.comm, Phase.PROPAGATION):
                if overlap:
                    a_cur = pend_a.wait()
                    b_cur = pend_b.wait()
                else:
                    a_cur = ctx.row.shift(a_cur, displacement=1, tag=TAG_SHIFT_A)
                    b_cur = ctx.col.shift(b_cur, displacement=1, tag=TAG_SHIFT_B)

        finish_values()
        with track(ctx.comm, Phase.COMPUTATION):
            partial = acc * s_vals if s_vals is not None else acc
            prof.add_flops(len(acc))
        if reduce_output:
            with track(ctx.comm, Phase.REPLICATION):
                local.R_chunk = self._reduce_scatter_values(ctx, local, partial)
            return None
        return partial

    # -- FusedMM -----------------------------------------------------------

    def _rank_fusedmm(
        self,
        ctx: Ctx25DSparse,
        plan: Plan25DSparse,
        local: Local25DSparse,
        spmm_mode: Mode,
        sparse_plan: Optional[SparsePlan25D] = None,
    ) -> None:
        """FusedMM per the paper: value all-gather, SDDMM round, value
        all-reduce (reduce-scatter + all-gather), SpMM round."""
        partial = self._sddmm_round(
            ctx, plan, local, gather_input=True, reduce_output=False,
            sparse_plan=sparse_plan,
        )
        with track(ctx.comm, Phase.REPLICATION):
            local.R_chunk = self._reduce_scatter_values(ctx, local, partial)
            parts = ctx.fiber.allgather(local.R_chunk, tag=TAG_FIBER_AG)
            r_full = np.concatenate(parts) if parts else np.empty(0)
        self.rank_kernel(
            ctx, plan, local, spmm_mode, values_full=r_full, sparse_plan=sparse_plan
        )

    def rank_fusedmm_none_a(
        self, ctx: Ctx25DSparse, plan: Plan25DSparse, local: Local25DSparse,
        sparse_plan: Optional[SparsePlan25D] = None,
    ) -> None:
        """FusedMMA (no elision is the only option for this family)."""
        self._rank_fusedmm(ctx, plan, local, Mode.SPMM_A, sparse_plan=sparse_plan)

    def rank_fusedmm_none_b(
        self, ctx: Ctx25DSparse, plan: Plan25DSparse, local: Local25DSparse,
        sparse_plan: Optional[SparsePlan25D] = None,
    ) -> None:
        """FusedMMB."""
        self._rank_fusedmm(ctx, plan, local, Mode.SPMM_B, sparse_plan=sparse_plan)

"""1.5D sparse-shifting, dense-replicating algorithm (paper Section V-B).

Grid ``(p/c) x c``; rank ``(u, v)``.  In contrast to Algorithm 1, the
*sparse* matrix propagates and the dense matrices are divided by **block
columns** (r-strips), which is advantageous when ``phi = nnz(S)/(n r)`` is
low: shifting ``3 nnz/p`` words per phase beats shifting ``n r / p``.

Input distribution:

* dense ``A`` (m-side) and ``B`` (n-side) — column strip ``u`` (width
  ``~ r c / p``), fine row blocks ``i % c == v`` (block-row cyclic across
  the fiber).  All-gathering a strip along the fiber yields the full
  ``m x strip`` panel ``T`` (the replication step).
* ``S`` — nonzero ``(i, j)`` lives in layer ``v = colblock(j) % c`` and,
  within the layer, in the coarse row chunk of ``i``; chunks circulate
  around the layer ring carrying ``(row, col, value)`` triples — the
  paper's 3-words-per-nonzero coordinate format.

Unified kernel (Mode):

* SDDMM — all-gather A's strip; the circulating value array accumulates
  partial dot products strip by strip; after the full ring cycle each
  chunk is home and is multiplied by the resident S values.
* SpMMA — partial products accumulate into a full ``m x strip`` buffer,
  reduce-scattered along the fiber at the end (cyclic row groups).
* SpMMB — all-gather A's strip; contributions accumulate directly into
  the stationary local B panel (already in B's input distribution, so no
  terminal reduction).

FusedMM: *replication reuse* (native FusedMMB) shares the single
all-gather between the SDDMM and SpMMB rounds, reproducing the paper's
Eq. (2) cost ``6 nnz/c + n r (c-1)/p`` with ``2p/c + (c-1)`` messages and
optimal ``c = sqrt(6 p phi)``.  Local kernel fusion is impossible here
(dense matrices are split along r, so local dots are partial — paper
Section IV-B), matching the paper.

Sparse communication (``comm="sparse"``): the gathered panel ``T`` is
only ever indexed at the union of S rows of this rank's *layer* (every
chunk of the layer circulates through the rank), so the fiber all-gather
and the SpMMA output reduction only need to move those rows.  With a
per-structure :class:`~repro.comm_sparse.planner.SparsePlan15D`, the
replication term drops from ``n r (c-1)/p`` to
``|rows(layer)| r (c-1)/p`` words while the (already sparse) chunk
propagation is unchanged.

Packed buffers: on the sparse path no ``m``-tall panel exists at all.
The gather target and the SpMMA partial-output accumulator are *packed*
``len(union) x sw`` panels addressed through the plan's cached
global->packed remap, and the circulating chunk payloads carry
pre-remapped (packed-row, local-column) coordinates — every rank of a
layer shares the same remap, so the translation happens once per kernel
call instead of once per phase.  All panels come from a per-rank
:class:`~repro.runtime.buffers.BufferPool`, so repeated calls allocate
nothing and the rank profiles record true peak buffer footprints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.algorithms.base import (
    KEEP,
    TAG_FIBER_AG,
    TAG_FIBER_RS,
    TAG_SHIFT_S,
    TAG_SHIFT_SV,
    DistributedAlgorithm,
    region,
    track,
)
from repro.comm_sparse.collectives import (
    isparse_allgatherv_packed,
    isparse_reduce_scatterv_packed,
    sparse_allgatherv_packed,
    sparse_reduce_scatterv_packed,
)
from repro.comm_sparse.planner import (
    SparsePlan15D,
    cached_comm_plans,
    plan_sparse_shift_15d,
)
from repro.errors import DistributionError
from repro.kernels.sddmm import sddmm_coo
from repro.kernels.spmm import spmm_scatter
from repro.runtime.buffers import BufferPool
from repro.runtime.comm import Communicator
from repro.runtime.grid import Grid15D
from repro.sparse.coo import CooMatrix
from repro.sparse.partition import (
    block_of,
    block_ranges,
    cyclic_block_index,
    global_to_local_map,
    partition_by_owner,
)
from repro.types import Elision, Mode, Phase


@dataclass(frozen=True)
class Plan15DSparse:
    """Immutable layout description for :class:`SparseShift15D`."""

    m: int
    n: int
    r: int
    grid: Grid15D
    row_fine: np.ndarray = field(repr=False)  # A row blocks: block_ranges(m, p)
    col_fine: np.ndarray = field(repr=False)  # B row blocks: block_ranges(n, p)
    strips: np.ndarray = field(repr=False)  # r-strips: block_ranges(r, p/c)
    row_chunks: np.ndarray = field(repr=False)  # S chunks: block_ranges(m, p/c)
    rows_a_of_fiber: Tuple[np.ndarray, ...] = field(repr=False, default=())
    rows_b_of_fiber: Tuple[np.ndarray, ...] = field(repr=False, default=())

    @property
    def p(self) -> int:
        return self.grid.p

    @property
    def c(self) -> int:
        return self.grid.c

    @property
    def n_layer(self) -> int:
        return self.grid.layer_size

    def strip_slice(self, u: int) -> slice:
        return slice(int(self.strips[u]), int(self.strips[u + 1]))

    def strip_width(self, u: int) -> int:
        return int(self.strips[u + 1] - self.strips[u])


@dataclass
class Local15DSparse:
    """Rank-local state for :class:`SparseShift15D`."""

    u: int
    v: int
    A: np.ndarray  # (owned m-rows, strip width)
    B: np.ndarray  # (owned n-rows, strip width)
    loc_b: np.ndarray  # global n index -> local B row (or -1)
    S_rows: np.ndarray  # home chunk, GLOBAL coordinates
    S_cols: np.ndarray
    S_vals: np.ndarray
    gidx: np.ndarray  # positions of the home chunk in the global COO
    R: Optional[np.ndarray] = None  # SDDMM output values for the home chunk


@dataclass
class Ctx15DSparse:
    comm: Communicator
    layer: Communicator
    fiber: Communicator
    u: int
    v: int
    pool: BufferPool = field(default_factory=BufferPool)
    overlap: bool = False


class SparseShift15D(DistributedAlgorithm):
    """1.5D sparse-shifting, dense-replicating algorithm."""

    name = "1.5d-sparse-shift"
    elisions = (Elision.NONE, Elision.REPLICATION_REUSE)
    native_variant = {Elision.NONE: "either", Elision.REPLICATION_REUSE: "b"}
    supports_sparse_comm = True

    def __init__(self, p: int, c: int) -> None:
        super().__init__(p, c)
        self.grid = Grid15D(p, c)

    # ------------------------------------------------------------------
    # driver side
    # ------------------------------------------------------------------

    def plan(self, m: int, n: int, r: int) -> Plan15DSparse:
        nl = self.grid.layer_size
        row_fine = block_ranges(m, self.p)
        col_fine = block_ranges(n, self.p)
        return Plan15DSparse(
            m=m,
            n=n,
            r=r,
            grid=self.grid,
            row_fine=row_fine,
            col_fine=col_fine,
            strips=block_ranges(r, nl),
            row_chunks=block_ranges(m, nl),
            rows_a_of_fiber=tuple(
                cyclic_block_index(row_fine, self.c, v) for v in range(self.c)
            ),
            rows_b_of_fiber=tuple(
                cyclic_block_index(col_fine, self.c, v) for v in range(self.c)
            ),
        )

    def distribute_sparse(
        self, plan: Plan15DSparse, S: Optional[CooMatrix]
    ) -> List[Local15DSparse]:
        if S is not None and S.shape != (plan.m, plan.n):
            raise DistributionError(f"S shape {S.shape} != ({plan.m}, {plan.n})")
        parts = {}
        if S is not None and S.nnz:
            chunk = block_of(S.rows, plan.row_chunks)
            layer_v = block_of(S.cols, plan.col_fine) % self.c
            owner = chunk * self.c + layer_v
            parts = partition_by_owner(S.rows, S.cols, S.vals, owner, self.p)
        locals_: List[Local15DSparse] = []
        empty = (
            np.empty(0, np.int64),
            np.empty(0, np.int64),
            np.empty(0),
            np.empty(0, np.int64),
        )
        placeholder = np.empty((0, 0))
        for rank in range(self.p):
            u, v = self.grid.coords(rank)
            sr, sc, sv, gi = parts.get(rank, empty)
            locals_.append(
                Local15DSparse(
                    u=u,
                    v=v,
                    A=placeholder,
                    B=placeholder,
                    loc_b=global_to_local_map(plan.n, plan.rows_b_of_fiber[v]),
                    S_rows=sr,
                    S_cols=sc,
                    S_vals=sv,
                    gidx=gi,
                )
            )
        return locals_

    def bind_dense(
        self,
        plan: Plan15DSparse,
        locals_: List[Local15DSparse],
        A: Optional[np.ndarray],
        B: Optional[np.ndarray],
    ) -> None:
        for loc in locals_:
            sl = plan.strip_slice(loc.u)
            cols = np.arange(sl.start, sl.stop)
            rows_a = plan.rows_a_of_fiber[loc.v]
            rows_b = plan.rows_b_of_fiber[loc.v]
            if A is not KEEP:
                loc.A = (
                    A[np.ix_(rows_a, cols)].copy()
                    if A is not None
                    else np.zeros((len(rows_a), plan.strip_width(loc.u)))
                )
            if B is not KEEP:
                loc.B = (
                    B[np.ix_(rows_b, cols)].copy()
                    if B is not None
                    else np.zeros((len(rows_b), plan.strip_width(loc.u)))
                )

    def update_values(
        self, plan: Plan15DSparse, locals_: List[Local15DSparse], vals: np.ndarray
    ) -> None:
        for loc in locals_:
            if len(loc.gidx):
                loc.S_vals[:] = vals[loc.gidx]

    def collect_dense_a(
        self, plan: Plan15DSparse, locals_: List[Local15DSparse]
    ) -> np.ndarray:
        out = np.zeros((plan.m, plan.r))
        for loc in locals_:
            sl = plan.strip_slice(loc.u)
            cols = np.arange(sl.start, sl.stop)
            out[np.ix_(plan.rows_a_of_fiber[loc.v], cols)] = loc.A
        return out

    def collect_dense_b(
        self, plan: Plan15DSparse, locals_: List[Local15DSparse]
    ) -> np.ndarray:
        out = np.zeros((plan.n, plan.r))
        for loc in locals_:
            sl = plan.strip_slice(loc.u)
            cols = np.arange(sl.start, sl.stop)
            out[np.ix_(plan.rows_b_of_fiber[loc.v], cols)] = loc.B
        return out

    def collect_sddmm(
        self, plan: Plan15DSparse, locals_: List[Local15DSparse], S: CooMatrix
    ) -> CooMatrix:
        vals = np.zeros(S.nnz)
        for loc in locals_:
            if loc.R is not None and len(loc.gidx):
                vals[loc.gidx] = loc.R
        return S.with_values(vals)

    def build_comm_plans(
        self, plan: Plan15DSparse, S: CooMatrix
    ) -> List[SparsePlan15D]:
        return cached_comm_plans("1.5d-sparse-shift", plan, S, plan_sparse_shift_15d)

    # ------------------------------------------------------------------
    # rank side
    # ------------------------------------------------------------------

    def make_context(self, comm: Communicator) -> Ctx15DSparse:
        layer, fiber = self.grid.make_comms(comm)
        u, v = self.grid.coords(comm.rank)
        return Ctx15DSparse(
            comm=comm, layer=layer, fiber=fiber, u=u, v=v,
            pool=self.pool_for(comm), overlap=self.overlap,
        )

    def _gather_strip(
        self, ctx: Ctx15DSparse, plan: Plan15DSparse, panel: np.ndarray, rows_of_fiber
    ) -> np.ndarray:
        """All-gather a cyclic-row panel along the fiber into full row order."""
        with region(ctx.comm, "gather-strip"):
            parts = ctx.fiber.allgather(panel, tag=TAG_FIBER_AG)
            total = sum(len(rows_of_fiber[w]) for w in range(self.c))
            T = ctx.pool.empty("panel", (total, panel.shape[1]))
            for w, part in enumerate(parts):
                T[rows_of_fiber[w]] = part
            return T

    def _gather_strip_packed(
        self, ctx: Ctx15DSparse, local: Local15DSparse, sparse_plan: SparsePlan15D
    ) -> np.ndarray:
        """Need-list gather into a *packed* ``len(union) x sw`` panel.

        No ``m``-tall buffer is materialized: owned union rows are copied
        in with one fancy-indexed assignment and every remaining packed
        row is covered by exactly one peer leg of the packed plan, so the
        pool hands back an uninitialized panel and no zero-fill or
        full-height scatter bandwidth is ever paid.  The panel comes from
        the pool's double-buffer lease; under the overlap pipeline the
        exchange is posted first (guarding the in-flight panel) and the
        own-rows copy runs behind it.
        """
        with region(ctx.comm, "gather-strip-packed"):
            P = ctx.pool.lease("panel", (sparse_plan.index.size, local.A.shape[1]))
            if ctx.overlap:
                pending = isparse_allgatherv_packed(
                    ctx.fiber, sparse_plan.gather_packed, sparse_plan.index,
                    local.A, P, pool=ctx.pool,
                )
                P[sparse_plan.own_packed] = local.A[sparse_plan.own_local]
                pending.wait()
            else:
                P[sparse_plan.own_packed] = local.A[sparse_plan.own_local]
                sparse_allgatherv_packed(
                    ctx.fiber, sparse_plan.gather_packed, sparse_plan.index, local.A, P
                )
            return P

    def _shift_loop(self, ctx: Ctx15DSparse, nl: int, payload, compute, split: bool):
        """Run ``nl`` phases of ``compute(rows, cols, vals)`` + ring shift.

        Synchronous mode shifts the whole ``(rows, cols, vals)`` chunk
        after each kernel.  Under the overlap pipeline the shift is
        software-pipelined behind the kernel: with ``split=False`` the
        payload is read-only during compute, so the entire shift is posted
        *before* the kernel and waited after it; with ``split=True`` (the
        SDDMM rounds, whose circulating value array accumulates *during*
        compute) the read-only coordinate part — two of the three words
        per nonzero — is pre-posted on :data:`TAG_SHIFT_S` and the
        freshly-accumulated values follow after the kernel on
        :data:`TAG_SHIFT_SV`.  Values and kernel order are identical in
        every mode, so outputs are bitwise unchanged.
        """
        overlap = ctx.overlap
        for _ in range(nl):
            rows, cols, vals = payload
            pending = None
            if overlap:
                with track(ctx.comm, Phase.PROPAGATION):
                    part = (rows, cols) if split else payload
                    pending = ctx.layer.ishift(part, displacement=-1, tag=TAG_SHIFT_S)
            with track(ctx.comm, Phase.COMPUTATION):
                compute(rows, cols, vals)
            with track(ctx.comm, Phase.PROPAGATION):
                if not overlap:
                    payload = ctx.layer.shift(
                        payload, displacement=-1, tag=TAG_SHIFT_S
                    )
                elif split:
                    vals = ctx.layer.shift(vals, displacement=-1, tag=TAG_SHIFT_SV)
                    rows, cols = pending.wait()
                    payload = (rows, cols, vals)
                else:
                    payload = pending.wait()
        return payload

    def rank_kernel(
        self,
        ctx: Ctx15DSparse,
        plan: Plan15DSparse,
        local: Local15DSparse,
        mode: Mode,
        use_r_values: bool = False,
        use_values: bool = True,
        sparse_plan: Optional[SparsePlan15D] = None,
    ) -> None:
        """One unified kernel call (see module docstring).

        ``use_values=False`` computes a pattern-only SDDMM (plain dots,
        for the ALS normal equations).  With ``sparse_plan`` the fiber
        collectives become need-list neighborhood exchanges over *packed*
        panels, and the circulating chunks carry pre-remapped coordinates.
        """
        prof = ctx.comm.profile
        nl = plan.n_layer
        sw = plan.strip_width(ctx.u)
        packed = sparse_plan is not None

        with track(ctx.comm, Phase.REPLICATION):
            if mode in (Mode.SDDMM, Mode.SPMM_B):
                if packed:
                    T = self._gather_strip_packed(ctx, local, sparse_plan)
                else:
                    T = self._gather_strip(ctx, plan, local.A, plan.rows_a_of_fiber)
            elif packed:
                # SpMMA partial-output accumulator, packed to the layer's
                # row union (leased: same slot as the gather panel)
                T = ctx.pool.lease_zeros("panel", (sparse_plan.index.size, sw))
            else:
                T = ctx.pool.zeros("panel", (plan.m, sw))

        if mode == Mode.SDDMM:
            vals0 = np.zeros(len(local.S_rows))
        else:
            vals0 = (local.R if use_r_values else local.S_vals).copy()
        if packed:
            # cached index remapping: every rank of the layer ring shares
            # the same global->packed row map and the same B ownership, so
            # the chunk circulates with the plan's pre-translated packed
            # rows and local columns (computed once per structure) and no
            # index translation happens anywhere on the ring, per phase
            # or per call
            payload = (
                sparse_plan.home_rows_packed,
                sparse_plan.home_cols_local,
                vals0,
            )
        else:
            payload = (local.S_rows, local.S_cols, vals0)
        if mode == Mode.SPMM_B:
            # B is a pure output here; rebind rather than zero in place
            # (the previous array may be caller-owned, e.g. a CG query
            # vector), and keep it off the pool since it escapes into the
            # collected local state
            local.B = np.zeros_like(local.B)

        def compute(rows, cols, vals):
            if len(rows):
                lcols = cols if packed else self._local_cols(local, cols)
                if mode == Mode.SDDMM:
                    # accumulate this strip's partial dots into the
                    # circulating value array
                    sddmm_coo(
                        T, local.B, rows, lcols, out=vals, accumulate=True,
                        profile=prof,
                    )
                elif mode == Mode.SPMM_A:
                    spmm_scatter(rows, lcols, vals, local.B, T, profile=prof)
                else:  # SPMM_B: out[local cols] += vals * T[rows]
                    spmm_scatter(lcols, rows, vals, T, local.B, profile=prof)

        payload = self._shift_loop(
            ctx, nl, payload, compute, split=(mode == Mode.SDDMM)
        )

        if mode == Mode.SDDMM:
            _, _, dots = payload  # home again after the full ring cycle
            local.R = dots * local.S_vals if use_values else dots
        elif mode == Mode.SPMM_A:
            with track(ctx.comm, Phase.REPLICATION), region(
                ctx.comm, "reduce-scatter-A"
            ):
                if packed:
                    # seed with this rank's own partials at the owned union
                    # rows (everything else it owns was never touched and
                    # stays zero), then pull in each fiber peer's
                    # contributions straight out of their packed panels.
                    # Pipelined: the contribution legs are posted first and
                    # the own-rows seeding hides behind the exchange.
                    base = np.zeros_like(local.A)
                    if ctx.overlap:
                        pending = isparse_reduce_scatterv_packed(
                            ctx.fiber, sparse_plan.reduce_packed,
                            sparse_plan.index, T, base,
                        )
                        base[sparse_plan.own_local] = T[sparse_plan.own_packed]
                        local.A = pending.wait()
                    else:
                        base[sparse_plan.own_local] = T[sparse_plan.own_packed]
                        local.A = sparse_reduce_scatterv_packed(
                            ctx.fiber, sparse_plan.reduce_packed,
                            sparse_plan.index, T, base,
                        )
                else:
                    pieces = [T[plan.rows_a_of_fiber[w]] for w in range(self.c)]
                    local.A = ctx.fiber.reduce_scatter(pieces, tag=TAG_FIBER_RS)

    @staticmethod
    def _local_cols(local: Local15DSparse, cols: np.ndarray) -> np.ndarray:
        lc = local.loc_b[cols]
        if len(lc) and lc.min() < 0:
            raise DistributionError("nonzero column not owned by this layer")
        return lc

    # -- FusedMM ---------------------------------------------------------

    def rank_fusedmm_none_a(
        self, ctx: Ctx15DSparse, plan: Plan15DSparse, local: Local15DSparse,
        sparse_plan: Optional[SparsePlan15D] = None,
    ) -> None:
        """Unoptimized FusedMMA: SDDMM call then SpMMA call."""
        self.rank_kernel(ctx, plan, local, Mode.SDDMM, sparse_plan=sparse_plan)
        self.rank_kernel(
            ctx, plan, local, Mode.SPMM_A, use_r_values=True, sparse_plan=sparse_plan
        )

    def rank_fusedmm_none_b(
        self, ctx: Ctx15DSparse, plan: Plan15DSparse, local: Local15DSparse,
        sparse_plan: Optional[SparsePlan15D] = None,
    ) -> None:
        """Unoptimized FusedMMB: SDDMM call then SpMMB call (re-gathers A)."""
        self.rank_kernel(ctx, plan, local, Mode.SDDMM, sparse_plan=sparse_plan)
        self.rank_kernel(
            ctx, plan, local, Mode.SPMM_B, use_r_values=True, sparse_plan=sparse_plan
        )

    def rank_fusedmm_reuse(
        self,
        ctx: Ctx15DSparse,
        plan: Plan15DSparse,
        local: Local15DSparse,
        use_values: bool = True,
        sparse_plan: Optional[SparsePlan15D] = None,
    ) -> None:
        """Replication reuse (native FusedMMB): one all-gather, two rounds.

        Cost: ``6 nnz/c + n r (c-1)/p`` words (paper Eq. 2); with
        ``sparse_plan`` the ``n r (c-1)/p`` term shrinks to the layer's
        touched rows.
        """
        prof = ctx.comm.profile
        nl = plan.n_layer
        packed = sparse_plan is not None

        with track(ctx.comm, Phase.REPLICATION):
            if packed:
                T = self._gather_strip_packed(ctx, local, sparse_plan)
            else:
                T = self._gather_strip(ctx, plan, local.A, plan.rows_a_of_fiber)

        # home-chunk coordinates: the packed path circulates the plan's
        # structure-cached pre-translated coordinates (shared by both
        # rounds), the dense path the global ones
        if packed:
            rows0 = sparse_plan.home_rows_packed
            cols0 = sparse_plan.home_cols_local
        else:
            rows0, cols0 = local.S_rows, local.S_cols

        # round 1: SDDMM — circulate accumulating dots (split pipeline:
        # coordinates pre-posted, accumulated values follow the kernel)
        def sddmm_compute(rows, cols, vals):
            if len(rows):
                sddmm_coo(
                    T, local.B, rows,
                    cols if packed else self._local_cols(local, cols),
                    out=vals, accumulate=True, profile=prof,
                )

        payload = self._shift_loop(
            ctx, nl, (rows0, cols0, np.zeros(len(local.S_rows))),
            sddmm_compute, split=True,
        )
        local.R = payload[2] * local.S_vals if use_values else payload[2]

        # round 2: SpMMB reusing T — accumulate into a fresh output panel
        # (rebind, never zero in place: the old array may be caller-owned,
        # and the result escapes into the collected local state).  The
        # circulating chunk is read-only here, so the pipeline pre-posts
        # the whole shift behind the local kernel.
        local.B = np.zeros_like(local.B)

        def spmmb_compute(rows, cols, vals):
            if len(rows):
                spmm_scatter(
                    cols if packed else self._local_cols(local, cols),
                    rows, vals, T, local.B, profile=prof,
                )

        self._shift_loop(
            ctx, nl, (rows0, cols0, local.R.copy()), spmmb_compute, split=False
        )

"""Distributed-memory algorithms for SDDMM, SpMM and FusedMM.

Four sparsity-agnostic families, mirroring the paper's Figure 2 taxonomy:

================================  ===========================  =============
family                            replicates                   propagates
================================  ===========================  =============
``1.5d-dense-shift``              one dense matrix             other dense
``1.5d-sparse-shift``             one dense matrix             sparse matrix
``2.5d-dense-replicate``          one dense matrix             sparse + dense
``2.5d-sparse-replicate``         sparse matrix (values)       both dense
================================  ===========================  =============

Every family implements one *unified* kernel parameterized by
:class:`~repro.types.Mode` (the paper's Algorithms 1 and 2), plus FusedMM
drivers with the applicable elision strategies.
"""

from repro.algorithms.dense_repl_25d import DenseReplicate25D
from repro.algorithms.dense_shift_15d import DenseShift15D
from repro.algorithms.fused import FusedResult, resolve_orientation, run_fusedmm
from repro.algorithms.registry import (
    ALGORITHMS,
    feasible_replication_factors,
    make_algorithm,
    supported_elisions,
    supports_sparse_comm,
)
from repro.algorithms.sparse_repl_25d import SparseReplicate25D
from repro.algorithms.sparse_shift_15d import SparseShift15D

__all__ = [
    "supports_sparse_comm",
    "DenseShift15D",
    "SparseShift15D",
    "DenseReplicate25D",
    "SparseReplicate25D",
    "FusedResult",
    "run_fusedmm",
    "resolve_orientation",
    "ALGORITHMS",
    "make_algorithm",
    "supported_elisions",
    "feasible_replication_factors",
]

"""1.5D dense-shifting, dense-replicating algorithm (paper Algorithm 1).

Grid ``(p/c) x c``; rank ``(u, v)``.

Input distribution (paper Table II):

* ``A`` — ``p`` fine row blocks; block ``i`` on rank ``(i/c, i%c)``.
* ``B`` — same blocking over ``n``.
* ``S``/``R`` — ``(p/c) x p`` blocks; block ``(u, j)`` on rank ``(u, j%c)``
  (column-block cyclic across the layers).

One unified kernel (``Mode`` selects SDDMM / SpMMA / SpMMB):

1. ``T`` := zeros(coarse block) — all-gathered from ``A`` along the fiber
   when A is an input (SDDMM, SpMMB).
2. ``p/c`` phases: local kernel against the currently-held B block, then a
   cyclic shift of the B buffer within the layer (the circulating buffer is
   the *output* accumulator for SpMMB).
3. ``T`` reduce-scattered along the fiber when A is the output (SpMMA).

FusedMM strategies (Section IV-B, Table III):

* *No elision*: two unified calls; ``nr(2/c + 2(c-1)/p)`` words.
* *Replication reuse* (native output: B-shaped, i.e. FusedMMB): the single
  all-gather of A serves both kernels and the output accumulates in the
  circulating buffer; ``nr(2/c + (c-1)/p)`` words, optimal ``c = sqrt(2p)``.
* *Local kernel fusion* (native output: A-shaped, i.e. FusedMMA): one
  propagation round runs the fused local kernel; ``nr(1/c + 2(c-1)/p)``
  words, optimal ``c = sqrt(p/2)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.algorithms.base import (
    KEEP,
    TAG_FIBER_AG,
    TAG_FIBER_RS,
    TAG_SHIFT_B,
    DistributedAlgorithm,
    concat_allgather,
    reduce_scatter_rows,
    region,
    track,
)
from repro.errors import DistributionError
from repro.kernels.fused import fusedmm_local
from repro.kernels.sddmm import sddmm_coo
from repro.kernels.spmm import spmm_a_block, spmm_b_block
from repro.runtime.comm import Communicator
from repro.runtime.grid import Grid15D
from repro.sparse.coo import CooMatrix, SparseBlock
from repro.sparse.partition import block_ranges, group_offsets, partition_coo_2d
from repro.types import Elision, Mode, Phase


@dataclass(frozen=True)
class Plan15DDense:
    """Immutable layout description for :class:`DenseShift15D`."""

    m: int
    n: int
    r: int
    grid: Grid15D
    row_fine: np.ndarray = field(repr=False)  # A blocks: block_ranges(m, p)
    col_fine: np.ndarray = field(repr=False)  # B / S-column blocks: block_ranges(n, p)
    row_coarse: np.ndarray = field(repr=False)  # S row blocks: grouped fine blocks

    @property
    def p(self) -> int:
        return self.grid.p

    @property
    def c(self) -> int:
        return self.grid.c

    @property
    def n_layer(self) -> int:
        return self.grid.layer_size

    def fine_rows_a(self, i: int) -> slice:
        return slice(int(self.row_fine[i]), int(self.row_fine[i + 1]))

    def fine_rows_b(self, j: int) -> slice:
        return slice(int(self.col_fine[j]), int(self.col_fine[j + 1]))

    def held_block(self, u: int, v: int, t: int) -> int:
        """Global B-block id held by rank ``(u, v)`` at phase ``t``."""
        return ((u + t) % self.n_layer) * self.c + v


@dataclass
class Local15DDense:
    """Rank-local state for :class:`DenseShift15D`."""

    u: int
    v: int
    A: np.ndarray  # fine block u*c+v of the m-side matrix
    B: np.ndarray  # fine block u*c+v of the n-side matrix
    S: Dict[int, SparseBlock]  # column-block id j -> sparse block (j % c == v)
    R: Dict[int, np.ndarray] = field(default_factory=dict)  # SDDMM outputs
    gidx: Dict[int, np.ndarray] = field(default_factory=dict)  # driver metadata


@dataclass
class Ctx15D:
    """Per-rank communicators, built once per SPMD session."""

    comm: Communicator
    layer: Communicator  # the p/c ranks sharing v (shifts happen here)
    fiber: Communicator  # the c ranks sharing u (replication happens here)
    u: int
    v: int
    overlap: bool = False


class DenseShift15D(DistributedAlgorithm):
    """Paper Algorithm 1 (see module docstring)."""

    name = "1.5d-dense-shift"
    elisions = (Elision.NONE, Elision.REPLICATION_REUSE, Elision.LOCAL_KERNEL_FUSION)
    #: which FusedMM output shape each elision natively produces
    native_variant = {
        Elision.NONE: "either",
        Elision.REPLICATION_REUSE: "b",
        Elision.LOCAL_KERNEL_FUSION: "a",
    }

    def __init__(self, p: int, c: int) -> None:
        super().__init__(p, c)
        self.grid = Grid15D(p, c)

    # ------------------------------------------------------------------
    # driver side
    # ------------------------------------------------------------------

    def plan(self, m: int, n: int, r: int) -> Plan15DDense:
        row_fine = block_ranges(m, self.p)
        col_fine = block_ranges(n, self.p)
        return Plan15DDense(
            m=m,
            n=n,
            r=r,
            grid=self.grid,
            row_fine=row_fine,
            col_fine=col_fine,
            row_coarse=group_offsets(row_fine, self.c),
        )

    def distribute_sparse(
        self, plan: Plan15DDense, S: Optional[CooMatrix]
    ) -> List[Local15DDense]:
        """Partition the sparse operand per Table II (dense blocks are
        placeholders until :meth:`bind_dense`)."""
        locals_: List[Local15DDense] = []
        parts = {}
        if S is not None:
            if S.shape != (plan.m, plan.n):
                raise DistributionError(f"S shape {S.shape} != ({plan.m}, {plan.n})")
            parts = partition_coo_2d(
                S.rows, S.cols, S.vals, plan.row_coarse, plan.col_fine
            )
        empty = np.empty((0, 0))
        for rank in range(self.p):
            u, v = self.grid.coords(rank)
            locals_.append(Local15DDense(u=u, v=v, A=empty, B=empty, S={}))
        for (u, j), (lr, lc, lv, gi) in parts.items():
            rank = self.grid.rank_of(u, j % self.c)
            shape = (
                int(plan.row_coarse[u + 1] - plan.row_coarse[u]),
                int(plan.col_fine[j + 1] - plan.col_fine[j]),
            )
            loc = locals_[rank]
            loc.S[j] = SparseBlock(lr, lc, lv, shape)
            loc.gidx[j] = gi
        return locals_

    def bind_dense(
        self,
        plan: Plan15DDense,
        locals_: List[Local15DDense],
        A: Optional[np.ndarray],
        B: Optional[np.ndarray],
    ) -> None:
        r = plan.r
        for loc in locals_:
            i = loc.u * self.c + loc.v
            if A is not KEEP:
                loc.A = (
                    A[plan.fine_rows_a(i)].copy()
                    if A is not None
                    else np.zeros((int(plan.row_fine[i + 1] - plan.row_fine[i]), r))
                )
            if B is not KEEP:
                loc.B = (
                    B[plan.fine_rows_b(i)].copy()
                    if B is not None
                    else np.zeros((int(plan.col_fine[i + 1] - plan.col_fine[i]), r))
                )

    def update_values(
        self, plan: Plan15DDense, locals_: List[Local15DDense], vals: np.ndarray
    ) -> None:
        for loc in locals_:
            for j, gi in loc.gidx.items():
                loc.S[j].vals[:] = vals[gi]

    def collect_dense_a(
        self, plan: Plan15DDense, locals_: List[Local15DDense]
    ) -> np.ndarray:
        out = np.zeros((plan.m, plan.r))
        for rank, loc in enumerate(locals_):
            i = loc.u * self.c + loc.v
            out[plan.fine_rows_a(i)] = loc.A
        return out

    def collect_dense_b(
        self, plan: Plan15DDense, locals_: List[Local15DDense]
    ) -> np.ndarray:
        out = np.zeros((plan.n, plan.r))
        for loc in locals_:
            i = loc.u * self.c + loc.v
            out[plan.fine_rows_b(i)] = loc.B
        return out

    def collect_sddmm(
        self, plan: Plan15DDense, locals_: List[Local15DDense], S: CooMatrix
    ) -> CooMatrix:
        """Reassemble the SDDMM output into S's global value ordering."""
        vals = np.zeros(S.nnz)
        for loc in locals_:
            for j, rv in loc.R.items():
                vals[loc.gidx[j]] = rv
        return S.with_values(vals)

    # ------------------------------------------------------------------
    # rank side
    # ------------------------------------------------------------------

    def make_context(self, comm: Communicator) -> Ctx15D:
        layer, fiber = self.grid.make_comms(comm)
        u, v = self.grid.coords(comm.rank)
        return Ctx15D(
            comm=comm, layer=layer, fiber=fiber, u=u, v=v, overlap=self.overlap
        )

    def _fiber_sizes_a(self, plan: Plan15DDense, u: int) -> List[int]:
        """Row counts of the fine A blocks inside coarse block ``u``."""
        return [
            int(plan.row_fine[u * self.c + w + 1] - plan.row_fine[u * self.c + w])
            for w in range(self.c)
        ]

    def _shift_loop(self, ctx: Ctx15D, nl: int, B_cur, compute, read_only: bool):
        """``nl`` phases of ``compute(t, B_cur)`` + cyclic shift of ``B_cur``.

        With ``read_only=True`` (the circulating B block is an *input* —
        SDDMM, SpMMA, the first replication-reuse round and local kernel
        fusion) the overlap pipeline posts the shift before the local
        kernel and waits after it, hiding the transfer.  Output-circulating
        rounds (SpMMB, the second reuse round) mutate the buffer inside
        the kernel, a strict serial dependency, and always run
        synchronously.  Kernel order and values are identical either way.
        """
        overlap = ctx.overlap and read_only
        for t in range(nl):
            pending = None
            if overlap:
                with track(ctx.comm, Phase.PROPAGATION):
                    pending = ctx.layer.ishift(B_cur, displacement=-1, tag=TAG_SHIFT_B)
            with track(ctx.comm, Phase.COMPUTATION):
                compute(t, B_cur)
            with track(ctx.comm, Phase.PROPAGATION):
                B_cur = (
                    pending.wait()
                    if overlap
                    else ctx.layer.shift(B_cur, displacement=-1, tag=TAG_SHIFT_B)
                )
        return B_cur

    def rank_kernel(
        self,
        ctx: Ctx15D,
        plan: Plan15DDense,
        local: Local15DDense,
        mode: Mode,
        use_r_values: bool = False,
        use_values: bool = True,
        edge_op=None,
    ) -> None:
        """One unified kernel call (paper Algorithm 1).

        ``use_r_values=True`` makes the SpMM modes consume ``local.R``
        (the SDDMM output) instead of the stored S values — the unoptimized
        back-to-back FusedMM path.  ``use_values=False`` computes a
        pattern-only SDDMM (dots without the ``S *`` multiply, used by the
        ALS normal equations).  ``edge_op`` replaces the SDDMM dot products
        with a custom per-edge function of the incident dense rows (used by
        the GAT attention scores).
        """
        prof = ctx.comm.profile
        nl = plan.n_layer
        u, v = ctx.u, ctx.v
        coarse_rows = int(plan.row_coarse[u + 1] - plan.row_coarse[u])

        # --- replication -------------------------------------------------
        with track(ctx.comm, Phase.REPLICATION):
            if mode in (Mode.SDDMM, Mode.SPMM_B):
                with region(ctx.comm, "gather-A"):
                    T = concat_allgather(ctx.fiber, local.A, TAG_FIBER_AG)
            else:
                T = np.zeros((coarse_rows, plan.r))

        # --- propagation loop (software-pipelined when B circulates as a
        # read-only input; see _shift_loop) -------------------------------
        if mode == Mode.SPMM_B:
            B_start = np.zeros_like(local.B)  # circulating *output*
        else:
            B_start = local.B.copy()  # circulating input

        def compute(t, B_cur):
            j = plan.held_block(u, v, t)
            blk = local.S.get(j)
            if blk is None:
                return
            if mode == Mode.SDDMM:
                if edge_op is not None:
                    from repro.kernels.sddmm import sddmm_custom

                    dots = sddmm_custom(
                        T, B_cur, blk.rows, blk.cols, edge_op, profile=prof
                    )
                    local.R[j] = dots * blk.vals if use_values else dots
                else:
                    local.R[j] = sddmm_coo(
                        T,
                        B_cur,
                        blk.rows,
                        blk.cols,
                        s_vals=blk.vals if use_values else None,
                        profile=prof,
                    )
            elif mode == Mode.SPMM_A:
                vals = local.R[j] if use_r_values else None
                spmm_a_block(blk, B_cur, T, values=vals, profile=prof)
            else:  # SPMM_B
                vals = local.R[j] if use_r_values else None
                spmm_b_block(blk, T, B_cur, values=vals, profile=prof)

        B_end = self._shift_loop(
            ctx, nl, B_start, compute, read_only=(mode != Mode.SPMM_B)
        )

        if mode == Mode.SPMM_B:
            local.B = B_end  # accumulated output, back at its home rank

        # --- output reduction ---------------------------------------------
        if mode == Mode.SPMM_A:
            with track(ctx.comm, Phase.REPLICATION), region(
                ctx.comm, "reduce-scatter-A"
            ):
                local.A = reduce_scatter_rows(
                    ctx.fiber, T, self._fiber_sizes_a(plan, u), TAG_FIBER_RS
                )

    # -- FusedMM strategies (native roles; see fused.py for A/B mapping) --

    def rank_fusedmm_none_a(
        self, ctx: Ctx15D, plan: Plan15DDense, local: Local15DDense
    ) -> None:
        """Unoptimized FusedMMA: SDDMM call then SpMMA call."""
        self.rank_kernel(ctx, plan, local, Mode.SDDMM)
        self.rank_kernel(ctx, plan, local, Mode.SPMM_A, use_r_values=True)

    def rank_fusedmm_none_b(
        self, ctx: Ctx15D, plan: Plan15DDense, local: Local15DDense
    ) -> None:
        """Unoptimized FusedMMB: SDDMM call then SpMMB call."""
        self.rank_kernel(ctx, plan, local, Mode.SDDMM)
        self.rank_kernel(ctx, plan, local, Mode.SPMM_B, use_r_values=True)

    def rank_fusedmm_reuse(
        self,
        ctx: Ctx15D,
        plan: Plan15DDense,
        local: Local15DDense,
        use_values: bool = True,
    ) -> None:
        """Replication reuse (native FusedMMB).

        A single all-gather of A feeds both the SDDMM and the SpMMB; the
        output accumulates in the circulating buffer, so no terminal
        reduce-scatter is needed.  Words: ``nr((c-1)/p + 2/c)``.
        """
        prof = ctx.comm.profile
        nl = plan.n_layer
        u, v = ctx.u, ctx.v
        with track(ctx.comm, Phase.REPLICATION):
            T = concat_allgather(ctx.fiber, local.A, TAG_FIBER_AG)

        # round 1: SDDMM (circulates the B input; pipelined)
        def sddmm_compute(t, B_cur):
            j = plan.held_block(u, v, t)
            blk = local.S.get(j)
            if blk is not None:
                local.R[j] = sddmm_coo(
                    T,
                    B_cur,
                    blk.rows,
                    blk.cols,
                    s_vals=blk.vals if use_values else None,
                    profile=prof,
                )

        self._shift_loop(ctx, nl, local.B.copy(), sddmm_compute, read_only=True)

        # round 2: SpMMB reusing T (circulates the B-shaped *output*, which
        # the local kernel mutates — inherently synchronous)
        def spmmb_compute(t, B_acc):
            j = plan.held_block(u, v, t)
            blk = local.S.get(j)
            if blk is not None:
                spmm_b_block(blk, T, B_acc, values=local.R[j], profile=prof)

        local.B = self._shift_loop(
            ctx, nl, np.zeros_like(local.B), spmmb_compute, read_only=False
        )

    def rank_fusedmm_lkf(
        self,
        ctx: Ctx15D,
        plan: Plan15DDense,
        local: Local15DDense,
        use_values: bool = True,
    ) -> None:
        """Local kernel fusion (native FusedMMA).

        A single propagation round; each phase runs the fused local
        SDDMM+SpMM kernel.  Words: ``nr(2(c-1)/p + 1/c)``.
        """
        prof = ctx.comm.profile
        nl = plan.n_layer
        u, v = ctx.u, ctx.v
        coarse_rows = int(plan.row_coarse[u + 1] - plan.row_coarse[u])
        with track(ctx.comm, Phase.REPLICATION):
            T_in = concat_allgather(ctx.fiber, local.A, TAG_FIBER_AG)
        T_out = np.zeros((coarse_rows, plan.r))

        def fused_compute(t, B_cur):
            j = plan.held_block(u, v, t)
            blk = local.S.get(j)
            if blk is not None:
                local.R[j] = fusedmm_local(
                    T_in,
                    B_cur,
                    blk,
                    T_out,
                    use_values=use_values,
                    return_sddmm=True,
                    profile=prof,
                )

        self._shift_loop(ctx, nl, local.B.copy(), fused_compute, read_only=True)
        with track(ctx.comm, Phase.REPLICATION):
            local.A = reduce_scatter_rows(
                ctx.fiber, T_out, self._fiber_sizes_a(plan, u), TAG_FIBER_RS
            )

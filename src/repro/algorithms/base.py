"""Shared machinery for the distributed algorithms.

Conventions used by every algorithm module:

* A **plan** is an immutable, picklable description of the data layout
  (offset arrays, grid) computed once per (m, n, r, p, c) tuple.
* A **local** is one rank's mutable state: its dense blocks, sparse blocks
  (:class:`~repro.sparse.coo.SparseBlock`), SDDMM output values, and any
  driver-side metadata (global nonzero indices for reassembly) that is
  never communicated.
* A **context** holds the per-rank subcommunicators (layer/fiber or
  row/column/fiber) created once per SPMD session and reused across kernel
  calls, the way applications reuse MPI communicators across iterations.

Role naming inside algorithm code *always* follows the paper's unified
formulation: ``A`` is the m-side matrix that is replicated (input) or
reduced (output) along the fiber; ``B`` is the n-side matrix.  FusedMMA
with strategies that are native to the B-side (or vice versa) is obtained
by the paper's transposition trick — run the B-side procedure on
``S.T`` with the dense operands swapped — implemented in
:mod:`repro.algorithms.fused`.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ReproError
from repro.runtime.buffers import BufferPool
from repro.runtime.comm import Communicator
from repro.types import Phase

# Message tags: one per logical channel so phases never cross-talk.
TAG_SHIFT_B = 10
TAG_SHIFT_S = 11
TAG_SHIFT_A = 12
#: value half of a split sparse-chunk shift: under the overlap pipeline a
#: circulating SDDMM accumulator splits into a read-only coordinate part
#: (pre-posted behind the local kernel on TAG_SHIFT_S) and the
#: just-accumulated values (sent after the kernel on this channel)
TAG_SHIFT_SV = 13
TAG_FIBER_AG = 20
TAG_FIBER_RS = 21
TAG_FIBER_AR = 22
TAG_APP = 30

#: sentinel for ``bind_dense``: leave this dense side's resident blocks
#: untouched (the session's skip-rebind fast path for operands that are
#: bitwise unchanged since the last bind and not dirtied by any kernel)
KEEP = object()


def concat_allgather(
    comm: Communicator, local_block: np.ndarray, tag: int = TAG_FIBER_AG
) -> np.ndarray:
    """All-gather dense blocks along ``comm`` and stack them in rank order.

    This is the replication primitive: each fiber rank contributes its fine
    block; the concatenation (in fiber-rank order) is the coarse block the
    unified algorithms call ``T``.
    """
    parts = comm.allgather(local_block, tag=tag)
    return np.concatenate(parts, axis=0)


def reduce_scatter_rows(
    comm: Communicator,
    buffer: np.ndarray,
    sizes: List[int],
    tag: int = TAG_FIBER_RS,
) -> np.ndarray:
    """Reduce-scatter a row-partitioned buffer along ``comm``.

    ``sizes[k]`` rows go to fiber rank ``k``; returns this rank's summed
    piece.  This is the output-reduction primitive for replicated outputs.
    """
    if sum(sizes) != buffer.shape[0]:
        raise ValueError("reduce_scatter_rows: sizes do not cover the buffer")
    blocks = []
    start = 0
    for s in sizes:
        blocks.append(buffer[start : start + s])
        start += s
    return comm.reduce_scatter(blocks, tag=tag)


@dataclass
class ShiftPayload:
    """A sparse chunk in flight during propagation.

    Exactly the paper's coordinate-format accounting: three words per
    nonzero (row, column, value) when ``vals`` travels with the
    coordinates, or one word per nonzero for value-only movement.
    """

    rows: np.ndarray
    cols: np.ndarray
    vals: Optional[np.ndarray]

    def as_tuple(self):
        if self.vals is None:
            return (self.rows, self.cols)
        return (self.rows, self.cols, self.vals)


def track(comm: Communicator, phase: Phase):
    """Sugar: ``with track(comm, Phase.X):`` on the rank's own profile."""
    return comm.profile.track(phase)


#: shared no-op context for untraced runs (allocation-free fast path)
_NULL_REGION = nullcontext()


def region(comm: Communicator, name: str, cat: str = "algorithm"):
    """Named sub-phase span on the rank's tracer; no-op when tracing is off.

    Use inside ``track`` blocks to label *what* a phase was doing (which
    gather, which pipeline stage) on the exported timeline — counters are
    untouched, so this never changes a report.  Region entry is also a
    fault-injection site (``crash``/``straggler`` triggers naming the
    region fire here, tracing on or off).
    """
    profile = comm.profile
    if profile.faults is not None:
        profile.faults.on_region(name)
    tracer = profile.tracer
    if tracer is None:
        return _NULL_REGION
    return tracer.region(name, cat)


class DistributedAlgorithm:
    """Interface shared by the four algorithm families.

    Subclasses provide:

    * ``plan(m, n, r)``
    * ``distribute_sparse(plan, S)`` / ``bind_dense(plan, locals_, A, B)``
      / ``collect_*`` (driver side).  The split mirrors the session API:
      the sparse operand is partitioned **once** per resident distribution
      (it owns the expensive COO partitioning and all per-rank sparse
      metadata), while the dense operands are (re)bound cheaply on every
      kernel call.  ``distribute(plan, S, A, B)`` composes the two for
      one-shot callers.
    * ``make_context(comm)`` (rank side, once per resident distribution —
      under the session's persistent worker pool the context, with its
      layer/fiber subcommunicators, is built on the *first* kernel call
      of an orientation and reused by every later call; see
      :meth:`ensure_context` / :meth:`refresh_context`)
    * ``rank_kernel(ctx, plan, local, mode, ...)`` (rank side, unified)
    * ``rank_fusedmm(ctx, plan, local, elision)`` for the native fused
      variant (see :mod:`repro.algorithms.fused` for role mapping)
    """

    #: registry name, e.g. "1.5d-dense-shift"
    name: str = "abstract"
    #: elision strategies this family supports (paper Section V)
    elisions: tuple = ()
    #: whether this family implements need-list sparse communication
    #: (``comm="sparse"``); see :mod:`repro.comm_sparse`
    supports_sparse_comm: bool = False

    def __init__(self, p: int, c: int) -> None:
        self.p = p
        self.c = c
        # communication/compute overlap: when True the rank kernels run
        # their phase loops as a software pipeline (post the next shift /
        # exchange, compute on the current panel, then wait).  Set by the
        # session from the resolved overlap knob before any kernel runs;
        # contexts snapshot it in make_context / refresh_context.
        self.overlap: bool = False
        # per-rank panel-buffer pools, persistent across kernel calls so
        # steady-state runs (the paper's "5 FusedMM calls") allocate no
        # panels after the first call; see repro.runtime.buffers
        self._pools: Dict[int, BufferPool] = {}

    def pool_for(self, comm: Communicator) -> BufferPool:
        """The calling rank's buffer pool, following the comm's profile.

        Created lazily on first use (``dict.setdefault`` is atomic under
        the GIL, and each rank only ever touches its own entry afterward).
        The pool *follows* the communicator rather than snapshotting its
        profile: resident contexts keep one pool across many kernel calls,
        and each call may run under a different accumulation window.
        """
        pool = self._pools.setdefault(comm.rank, BufferPool())
        pool.follow(comm)
        # a fresh context build is a work-item boundary: no exchange spans
        # it, so any surviving lease guard is an abort leftover
        pool.release_all()
        return pool

    # ------------------------------------------------------------------
    # driver-side distribution (session split)
    # ------------------------------------------------------------------

    def distribute_sparse(self, plan, S) -> List:
        """Partition the sparse operand per the family's Table II layout.

        Returns the per-rank local-state list with all sparse blocks,
        reassembly metadata (``gidx``) and layout maps populated.  The
        dense blocks are empty placeholders until :meth:`bind_dense` runs
        (every kernel call binds before launching, so no zero blocks are
        materialized at plan time).  Run **once** per resident
        distribution; repeated kernel calls only rebind the dense
        operands.
        """
        raise NotImplementedError

    def bind_dense(self, plan, locals_, A, B) -> None:
        """(Re)scatter the dense operands into ``locals_`` in place.

        ``None`` operands (pure outputs) become fresh zero blocks — this
        also resets output blocks a previous kernel call overwrote, so a
        session can run many kernels against the same resident sparse
        state.  Cheap relative to :meth:`distribute_sparse` (pure dense
        slicing, no COO partitioning).
        """
        raise NotImplementedError

    def distribute(self, plan, S, A, B) -> List:
        """One-shot distribution: ``distribute_sparse`` + ``bind_dense``."""
        locals_ = self.distribute_sparse(plan, S)
        self.bind_dense(plan, locals_, A, B)
        return locals_

    def update_values(self, plan, locals_, vals: np.ndarray) -> None:
        """Rebind the resident sparse *values* in place (structure fixed).

        ``vals`` is the new global value array in the distributed COO's
        ordering.  This is the cheap path for workloads that re-weight a
        fixed sparsity pattern between kernel calls (GAT attention, SDDMM
        outputs): no partitioning, no need-list replanning — the cached
        comm plans key on structure only and stay valid.
        """
        raise NotImplementedError

    def release_buffers(self) -> None:
        """Drop all per-rank panel-buffer pools (session teardown)."""
        for pool in self._pools.values():
            pool.clear()
        self._pools.clear()

    # ------------------------------------------------------------------
    # rank-side context lifecycle (split for the persistent worker pool)
    # ------------------------------------------------------------------

    def ensure_context(self, comm: Communicator, cache: List):
        """The calling rank's resident context, built at most once.

        ``cache`` is a per-orientation, driver-owned list with one slot
        per rank; each rank only ever touches its own slot (safe under
        the GIL).  The build is collective — ``make_context`` performs
        communicator splits — so either every rank of the cache has a
        context or none does; the session clears the whole cache if a
        build is interrupted.
        """
        ctx = cache[comm.rank]
        if ctx is None:
            ctx = self.make_context(comm)
            cache[comm.rank] = ctx
        else:
            self.refresh_context(ctx, comm)
        return ctx

    def refresh_context(self, ctx, comm: Communicator) -> None:
        """Re-bind per-dispatch state on a resident context.

        Contexts live for a whole session; the mutable bindings they carry
        are the buffer pool's profile source, which must follow the
        communicator that the current work item runs under, and the
        overlap flag (constant per session, but helpers that reuse
        contexts across reconfigured algorithms pick up the change here).
        """
        pool = getattr(ctx, "pool", None)
        if pool is not None:
            pool.follow(comm)
            # dispatch boundary: release lease guards an aborted item's
            # in-flight exchanges never got to wait (see release_all)
            pool.release_all()
        if hasattr(ctx, "overlap"):
            ctx.overlap = self.overlap

    def build_comm_plans(self, plan, S) -> list:
        """Per-rank need-list plans for ``comm="sparse"``.

        Computed driver-side (like ``distribute``) from the sparse
        structure and cached per structure fingerprint; the resulting
        plan object for rank ``r`` is passed to that rank's kernel via
        the ``sparse_plan`` keyword.  Families without a sparse
        communication path raise.
        """
        raise ReproError(
            f"{self.name} does not support sparse communication "
            f"(comm='sparse'); use comm='dense' or a sparse-* family"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(p={self.p}, c={self.c})"

"""2.5D dense-replicating algorithm (paper Algorithm 2).

Grid ``q x q x c`` with ``q = sqrt(p/c)``; rank ``(x, y, z)``.  Each layer
(fixed ``z``) runs a Cannon-style 2D algorithm; the fiber replicates the
m-side dense matrix A.

Input distribution (paper Table II):

* ``A`` — fine row block ``x*c + z`` (of ``q*c`` blocks over m), column
  strip ``y`` (of ``q`` strips over r).
* ``B`` — fine row block ``j`` (over n), strip ``y``; block ``j`` homes at
  rank ``(j/c, y, j%c)``.
* ``S`` — row block ``x`` (of ``q`` coarse blocks), fine column block ``j``
  (of ``q*c``); block ``(x, j)`` homes at rank ``(x, j/c, j%c)``.

Cannon skew: the paper's Algorithm 2 performs an initial cyclic shift of S
and B "to correctly index blocks", and notes applications avoid it by
filling buffers appropriately.  We do exactly that: ``distribute`` places
blocks directly at their skewed positions, so that at phase ``t`` rank
``(x, y, z)`` holds S block ``(x, sigma*c+z)`` and B block ``sigma*c+z``
with ``sigma = (x + y + t) mod q``.  Each phase shifts S along the grid
row and B along the grid column; after ``q`` phases everything is back at
its (skewed) start.

Unified kernel: all-gather A along the fiber into the coarse panel ``T``
(input) or reduce-scatter ``T`` at the end (output).  SDDMM accumulates
partial dots (over the r-strips) in the circulating value array and
multiplies by the resident S values on return; SpMMB accumulates into the
circulating B buffer (ends complete, no reduction).

FusedMM supports *no elision* and *replication reuse* (one all-gather for
both rounds; native FusedMMB), at the Table III cost
``nr/sqrt(pc) * (6 phi + 2 + (c^1.5 - sqrt(c))/sqrt(p))`` with
``4 sqrt(p/c) + (c-1)`` messages.  Local kernel fusion is impossible
(dense operands are split along r), as the paper notes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.algorithms.base import (
    KEEP,
    TAG_FIBER_AG,
    TAG_FIBER_RS,
    TAG_SHIFT_B,
    TAG_SHIFT_S,
    TAG_SHIFT_SV,
    DistributedAlgorithm,
    region,
    track,
)
from repro.errors import DistributionError
from repro.kernels.sddmm import sddmm_coo
from repro.kernels.spmm import spmm_scatter
from repro.runtime.comm import Communicator
from repro.runtime.grid import Grid25D
from repro.sparse.coo import CooMatrix
from repro.sparse.partition import (
    block_of,
    block_ranges,
    group_offsets,
    partition_by_owner,
)
from repro.types import Elision, Mode, Phase


@dataclass(frozen=True)
class Plan25DDense:
    """Immutable layout description for :class:`DenseReplicate25D`."""

    m: int
    n: int
    r: int
    grid: Grid25D
    row_fine: np.ndarray = field(repr=False)  # A row blocks: block_ranges(m, q*c)
    col_fine: np.ndarray = field(repr=False)  # B row blocks: block_ranges(n, q*c)
    row_coarse: np.ndarray = field(repr=False)  # S row blocks: grouped over c
    strips: np.ndarray = field(repr=False)  # r strips: block_ranges(r, q)

    @property
    def p(self) -> int:
        return self.grid.p

    @property
    def c(self) -> int:
        return self.grid.c

    @property
    def q(self) -> int:
        return self.grid.q

    def strip_slice(self, y: int) -> slice:
        return slice(int(self.strips[y]), int(self.strips[y + 1]))

    def strip_width(self, y: int) -> int:
        return int(self.strips[y + 1] - self.strips[y])

    def fine_rows_a(self, f: int) -> slice:
        return slice(int(self.row_fine[f]), int(self.row_fine[f + 1]))

    def fine_rows_b(self, f: int) -> slice:
        return slice(int(self.col_fine[f]), int(self.col_fine[f + 1]))

    def sigma(self, x: int, y: int, t: int) -> int:
        """Coarse column index processed by rank ``(x, y, .)`` at phase t."""
        return (x + y + t) % self.q


@dataclass
class Local25DDense:
    """Rank-local state for :class:`DenseReplicate25D`."""

    x: int
    y: int
    z: int
    A: np.ndarray  # fine block x*c+z, strip y
    B: np.ndarray  # skewed start: fine block sigma0*c+z, strip y
    S_rows: np.ndarray  # skewed S block (x, sigma0*c+z): rows local to coarse x
    S_cols: np.ndarray  # cols local to fine block sigma0*c+z
    S_vals: np.ndarray
    gidx: np.ndarray
    R: Optional[np.ndarray] = None


@dataclass
class Ctx25D:
    comm: Communicator
    row: Communicator  # vary y (S shifts here)
    col: Communicator  # vary x (B shifts here)
    fiber: Communicator  # vary z (replication here)
    x: int
    y: int
    z: int
    overlap: bool = False


class DenseReplicate25D(DistributedAlgorithm):
    """Paper Algorithm 2 (see module docstring)."""

    name = "2.5d-dense-replicate"
    elisions = (Elision.NONE, Elision.REPLICATION_REUSE)
    native_variant = {Elision.NONE: "either", Elision.REPLICATION_REUSE: "b"}

    def __init__(self, p: int, c: int) -> None:
        super().__init__(p, c)
        self.grid = Grid25D(p, c)

    # ------------------------------------------------------------------
    # driver side
    # ------------------------------------------------------------------

    def plan(self, m: int, n: int, r: int) -> Plan25DDense:
        q, c = self.grid.q, self.c
        row_fine = block_ranges(m, q * c)
        return Plan25DDense(
            m=m,
            n=n,
            r=r,
            grid=self.grid,
            row_fine=row_fine,
            col_fine=block_ranges(n, q * c),
            row_coarse=group_offsets(row_fine, c),
            strips=block_ranges(r, q),
        )

    def distribute_sparse(
        self, plan: Plan25DDense, S: Optional[CooMatrix]
    ) -> List[Local25DDense]:
        q, c = plan.q, plan.c
        if S is not None and S.shape != (plan.m, plan.n):
            raise DistributionError(f"S shape {S.shape} != ({plan.m}, {plan.n})")
        parts = {}
        if S is not None and S.nnz:
            bx = block_of(S.rows, plan.row_coarse)
            bj = block_of(S.cols, plan.col_fine)
            # home (x, y'=j/c, z=j%c); skewed start y = (y' - x) mod q
            y_home = bj // c
            z = bj % c
            y_skew = (y_home - bx) % q
            owner = (bx * q + y_skew) * c + z
            parts = partition_by_owner(S.rows, S.cols, S.vals, owner, self.p)
        locals_: List[Local25DDense] = []
        empty = (
            np.empty(0, np.int64),
            np.empty(0, np.int64),
            np.empty(0),
            np.empty(0, np.int64),
        )
        placeholder = np.empty((0, 0))
        for rank in range(self.p):
            x, y, z = self.grid.coords(rank)
            sigma0 = plan.sigma(x, y, 0)
            fb = sigma0 * c + z
            sr, sc, sv, gi = parts.get(rank, empty)
            locals_.append(
                Local25DDense(
                    x=x,
                    y=y,
                    z=z,
                    A=placeholder,
                    B=placeholder,
                    S_rows=sr - plan.row_coarse[x] if len(sr) else sr,
                    S_cols=sc - plan.col_fine[fb] if len(sc) else sc,
                    S_vals=sv,
                    gidx=gi,
                )
            )
        return locals_

    def bind_dense(
        self,
        plan: Plan25DDense,
        locals_: List[Local25DDense],
        A: Optional[np.ndarray],
        B: Optional[np.ndarray],
    ) -> None:
        c = plan.c
        for loc in locals_:
            sl = plan.strip_slice(loc.y)
            fa = loc.x * c + loc.z
            fb = plan.sigma(loc.x, loc.y, 0) * c + loc.z
            if A is not KEEP:
                loc.A = (
                    A[plan.fine_rows_a(fa), sl].copy()
                    if A is not None
                    else np.zeros(
                        (
                            int(plan.row_fine[fa + 1] - plan.row_fine[fa]),
                            plan.strip_width(loc.y),
                        )
                    )
                )
            if B is not KEEP:
                loc.B = (
                    B[plan.fine_rows_b(fb), sl].copy()
                    if B is not None
                    else np.zeros(
                        (
                            int(plan.col_fine[fb + 1] - plan.col_fine[fb]),
                            plan.strip_width(loc.y),
                        )
                    )
                )

    def update_values(
        self, plan: Plan25DDense, locals_: List[Local25DDense], vals: np.ndarray
    ) -> None:
        for loc in locals_:
            if len(loc.gidx):
                loc.S_vals[:] = vals[loc.gidx]

    def collect_dense_a(
        self, plan: Plan25DDense, locals_: List[Local25DDense]
    ) -> np.ndarray:
        out = np.zeros((plan.m, plan.r))
        for loc in locals_:
            fa = loc.x * plan.c + loc.z
            out[plan.fine_rows_a(fa), plan.strip_slice(loc.y)] = loc.A
        return out

    def collect_dense_b(
        self, plan: Plan25DDense, locals_: List[Local25DDense]
    ) -> np.ndarray:
        out = np.zeros((plan.n, plan.r))
        for loc in locals_:
            fb = plan.sigma(loc.x, loc.y, 0) * plan.c + loc.z
            out[plan.fine_rows_b(fb), plan.strip_slice(loc.y)] = loc.B
        return out

    def collect_sddmm(
        self, plan: Plan25DDense, locals_: List[Local25DDense], S: CooMatrix
    ) -> CooMatrix:
        vals = np.zeros(S.nnz)
        for loc in locals_:
            if loc.R is not None and len(loc.gidx):
                vals[loc.gidx] = loc.R
        return S.with_values(vals)

    # ------------------------------------------------------------------
    # rank side
    # ------------------------------------------------------------------

    def make_context(self, comm: Communicator) -> Ctx25D:
        row, col, fiber = self.grid.make_comms(comm)
        x, y, z = self.grid.coords(comm.rank)
        return Ctx25D(
            comm=comm, row=row, col=col, fiber=fiber, x=x, y=y, z=z,
            overlap=self.overlap,
        )

    def _fiber_sizes_a(self, plan: Plan25DDense, x: int) -> List[int]:
        return [
            int(plan.row_fine[x * plan.c + z + 1] - plan.row_fine[x * plan.c + z])
            for z in range(plan.c)
        ]

    def _gather_T(self, ctx: Ctx25D, local: Local25DDense) -> np.ndarray:
        """All-gather A's fine blocks along the fiber into the coarse panel."""
        with region(ctx.comm, "gather-A"):
            parts = ctx.fiber.allgather(local.A, tag=TAG_FIBER_AG)
            return np.concatenate(parts, axis=0)

    def _shift_loop(
        self, ctx: Ctx25D, q: int, s_payload, B_cur, compute,
        s_split: bool, b_read_only: bool,
    ):
        """``q`` Cannon phases: local kernel, then shift S along the grid
        row and B along the grid column.

        Overlap pipeline: the S chunk is never output-circulating here, so
        its shift is always pre-posted behind the kernel — wholly when the
        circulating values are read-only (``s_split=False``), or split
        into a pre-posted coordinate part plus a post-kernel value shift
        on :data:`TAG_SHIFT_SV` when the kernel accumulates into them
        (``s_split=True``, the SDDMM rounds).  The B shift is pre-posted
        only when B circulates as an input; output-circulating B rounds
        stay synchronous.  Returns ``(s_payload, B_cur)`` after the full
        cycle; values and order are bitwise identical across modes.
        """
        overlap = ctx.overlap
        for _ in range(q):
            rows, cols, vals = s_payload
            pend_s = pend_b = None
            if overlap:
                with track(ctx.comm, Phase.PROPAGATION):
                    part = (rows, cols) if s_split else s_payload
                    pend_s = ctx.row.ishift(part, displacement=-1, tag=TAG_SHIFT_S)
                    if b_read_only:
                        pend_b = ctx.col.ishift(
                            B_cur, displacement=-1, tag=TAG_SHIFT_B
                        )
            with track(ctx.comm, Phase.COMPUTATION):
                compute(rows, cols, vals, B_cur)
            with track(ctx.comm, Phase.PROPAGATION):
                if overlap:
                    if s_split:
                        vals = ctx.row.shift(vals, displacement=-1, tag=TAG_SHIFT_SV)
                        rows, cols = pend_s.wait()
                        s_payload = (rows, cols, vals)
                    else:
                        s_payload = pend_s.wait()
                    B_cur = (
                        pend_b.wait()
                        if b_read_only
                        else ctx.col.shift(B_cur, displacement=-1, tag=TAG_SHIFT_B)
                    )
                else:
                    s_payload = ctx.row.shift(
                        s_payload, displacement=-1, tag=TAG_SHIFT_S
                    )
                    B_cur = ctx.col.shift(B_cur, displacement=-1, tag=TAG_SHIFT_B)
        return s_payload, B_cur

    def rank_kernel(
        self,
        ctx: Ctx25D,
        plan: Plan25DDense,
        local: Local25DDense,
        mode: Mode,
        use_r_values: bool = False,
    ) -> None:
        """One unified kernel call (paper Algorithm 2)."""
        prof = ctx.comm.profile
        q = plan.q
        x, y = ctx.x, ctx.y
        coarse_rows = int(plan.row_coarse[x + 1] - plan.row_coarse[x])

        with track(ctx.comm, Phase.REPLICATION):
            if mode in (Mode.SDDMM, Mode.SPMM_B):
                T = self._gather_T(ctx, local)
            else:
                T = np.zeros((coarse_rows, plan.strip_width(y)))

        if mode == Mode.SDDMM:
            s_payload = (local.S_rows, local.S_cols, np.zeros(len(local.S_rows)))
        else:
            vals_in = local.R if use_r_values else local.S_vals
            s_payload = (local.S_rows, local.S_cols, vals_in.copy())
        B_start = np.zeros_like(local.B) if mode == Mode.SPMM_B else local.B.copy()

        def compute(rows, cols, vals, B_cur):
            if len(rows):
                if mode == Mode.SDDMM:
                    sddmm_coo(
                        T, B_cur, rows, cols, out=vals, accumulate=True,
                        profile=prof,
                    )
                elif mode == Mode.SPMM_A:
                    spmm_scatter(rows, cols, vals, B_cur, T, profile=prof)
                else:  # SPMM_B
                    spmm_scatter(cols, rows, vals, T, B_cur, profile=prof)

        # S left along the grid row; B up along the grid column
        s_payload, B_end = self._shift_loop(
            ctx, q, s_payload, B_start, compute,
            s_split=(mode == Mode.SDDMM),
            b_read_only=(mode != Mode.SPMM_B),
        )

        if mode == Mode.SDDMM:
            local.R = s_payload[2] * local.S_vals  # home after q shifts
        elif mode == Mode.SPMM_A:
            with track(ctx.comm, Phase.REPLICATION), region(
                ctx.comm, "reduce-scatter-A"
            ):
                blocks = []
                start = 0
                for size in self._fiber_sizes_a(plan, x):
                    blocks.append(T[start : start + size])
                    start += size
                local.A = ctx.fiber.reduce_scatter(blocks, tag=TAG_FIBER_RS)
        else:
            local.B = B_end  # accumulated output, back at its skewed start

    # -- FusedMM ---------------------------------------------------------

    def rank_fusedmm_none_a(
        self, ctx: Ctx25D, plan: Plan25DDense, local: Local25DDense
    ) -> None:
        """Unoptimized FusedMMA: SDDMM call then SpMMA call."""
        self.rank_kernel(ctx, plan, local, Mode.SDDMM)
        self.rank_kernel(ctx, plan, local, Mode.SPMM_A, use_r_values=True)

    def rank_fusedmm_none_b(
        self, ctx: Ctx25D, plan: Plan25DDense, local: Local25DDense
    ) -> None:
        """Unoptimized FusedMMB: SDDMM call then SpMMB call (re-gathers A)."""
        self.rank_kernel(ctx, plan, local, Mode.SDDMM)
        self.rank_kernel(ctx, plan, local, Mode.SPMM_B, use_r_values=True)

    def rank_fusedmm_reuse(
        self, ctx: Ctx25D, plan: Plan25DDense, local: Local25DDense
    ) -> None:
        """Replication reuse (native FusedMMB): one all-gather, two rounds."""
        prof = ctx.comm.profile
        q = plan.q

        with track(ctx.comm, Phase.REPLICATION):
            T = self._gather_T(ctx, local)

        # round 1: SDDMM (B input circulates — both shifts pipelined)
        def sddmm_compute(rows, cols, vals, B_cur):
            if len(rows):
                sddmm_coo(
                    T, B_cur, rows, cols, out=vals, accumulate=True, profile=prof
                )

        s_payload, _ = self._shift_loop(
            ctx, q,
            (local.S_rows, local.S_cols, np.zeros(len(local.S_rows))),
            local.B.copy(), sddmm_compute, s_split=True, b_read_only=True,
        )
        local.R = s_payload[2] * local.S_vals

        # round 2: SpMMB reusing T (S read-only — pipelined; the B-shaped
        # output accumulator is mutated by the kernel and stays synchronous)
        def spmmb_compute(rows, cols, vals, B_acc):
            if len(rows):
                spmm_scatter(cols, rows, vals, T, B_acc, profile=prof)

        _, B_acc = self._shift_loop(
            ctx, q,
            (local.S_rows, local.S_cols, local.R.copy()),
            np.zeros_like(local.B), spmmb_compute, s_split=False,
            b_read_only=False,
        )
        local.B = B_acc

"""Stress and concurrency tests for the SPMD runtime.

The distributed algorithms lean on subtle runtime guarantees — message
non-overtaking under load, independent subcommunicator traffic, ring
collectives at larger rank counts, worker-pool reuse across many work
items — exercised here beyond the sizes the algorithm tests use.  The CI
pool-stress step runs this file on its own and relies on the
``TestPoolStress`` thread-leak gates.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

import repro
from repro.runtime.comm import Communicator
from repro.runtime.spmd import WorkerPool, run_spmd


class TestScale:
    def test_many_ranks_allgather(self):
        p = 24

        def body(comm):
            parts = comm.allgather(np.full(3, float(comm.rank)))
            return sum(float(x[0]) for x in parts)

        results, _ = run_spmd(p, body)
        assert all(v == sum(range(p)) for v in results)

    def test_many_ranks_ring_of_shifts(self):
        """A value shifted p times around the ring returns home."""
        p = 16

        def body(comm):
            x = np.array([float(comm.rank)])
            for _ in range(p):
                x = comm.shift(x, displacement=1)
            return float(x[0])

        results, _ = run_spmd(p, body)
        assert results == [float(r) for r in range(p)]

    def test_large_payload_roundtrip(self):
        def body(comm):
            if comm.rank == 0:
                comm.send(1, np.arange(1 << 18, dtype=np.float64), tag=5)
                return 0.0
            return float(comm.recv(0, tag=5).sum())

        results, _ = run_spmd(2, body)
        n = 1 << 18
        assert results[1] == pytest.approx(n * (n - 1) / 2)


class TestConcurrentChannels:
    def test_interleaved_collectives_on_disjoint_subcomms(self):
        """Two layers running independent reductions must not interfere."""
        p = 8

        def body(comm):
            layer = comm.split(color=comm.rank % 2, key=comm.rank)
            total = 0.0
            for round_ in range(10):
                blocks = [np.array([float(comm.rank + k + round_)]) for k in range(layer.size)]
                total += float(layer.reduce_scatter(blocks)[0])
            return total

        results, _ = run_spmd(p, body)

        def expected(rank):
            members = [q for q in range(p) if q % 2 == rank % 2]
            my_pos = members.index(rank)
            total = 0.0
            for round_ in range(10):
                total += sum(q + my_pos + round_ for q in members)
            return total

        for rank in range(p):
            assert results[rank] == pytest.approx(expected(rank))

    def test_pipelined_sends_do_not_overtake(self):
        """Bulk back-to-back messages on one channel preserve order."""
        msgs = 200

        def body(comm):
            if comm.rank == 0:
                for k in range(msgs):
                    comm.send(1, np.array([float(k)]), tag=7)
                return True
            got = [float(comm.recv(0, tag=7)[0]) for _ in range(msgs)]
            return got == [float(k) for k in range(msgs)]

        results, _ = run_spmd(2, body)
        assert results[1] is True

    def test_bidirectional_exchange_floods(self):
        """All-pairs exchange with buffered sends never deadlocks."""
        p = 6

        def body(comm):
            for q in range(p):
                if q != comm.rank:
                    comm.send(q, comm.rank * 100 + q, tag=9)
            got = {}
            for q in range(p):
                if q != comm.rank:
                    got[q] = comm.recv(q, tag=9)
            return all(v == q * 100 + comm.rank for q, v in got.items())

        results, _ = run_spmd(p, body)
        assert all(results)


class TestPoolStress:
    """The resident pool under load: many items, failures, no leaks."""

    def test_many_items_on_one_pool(self):
        """Hundreds of collective items reuse the same resident ranks."""
        p = 8
        with WorkerPool(p) as pool:
            for k in range(200):
                results, _ = pool.run(
                    lambda comm, k=k: comm.allreduce_scalar(float(comm.rank + k))
                )
                expected = sum(range(p)) + p * k
                assert results == [pytest.approx(expected)] * p

    def test_alternating_failures_and_successes(self):
        """Recovery after every failure, 20 times in a row."""
        p = 4
        with WorkerPool(p) as pool:
            for k in range(20):

                def bad(comm, k=k):
                    if comm.rank == k % p:
                        raise ValueError(f"iteration {k}")
                    return comm.allreduce_scalar(1.0)

                with pytest.raises(RuntimeError, match=f"iteration {k}"):
                    pool.run(bad)
                results, _ = pool.run(lambda comm: comm.allreduce_scalar(1.0))
                assert results == [float(p)] * p

    def test_interleaved_pools_are_independent(self):
        pools = [WorkerPool(4, name=f"stress-{i}") for i in range(3)]
        try:
            for _ in range(10):
                for i, pool in enumerate(pools):
                    results, _ = pool.run(
                        lambda comm, i=i: comm.allreduce_scalar(float(i))
                    )
                    assert results == [4.0 * i] * 4
        finally:
            for pool in pools:
                pool.close()

    def test_session_thread_count_returns_to_baseline(self):
        """The CI thread-leak gate: a pooled session holds exactly p warm
        threads while open and releases every one on close()."""
        from repro.sparse.generate import erdos_renyi

        rng = np.random.default_rng(0)
        S = erdos_renyi(96, 96, 5, seed=0)
        A = rng.standard_normal((96, 8))
        B = rng.standard_normal((96, 8))
        baseline = threading.active_count()
        sess = repro.plan(
            S, 8, p=8, c=2, algorithm="1.5d-dense-shift",
            elision="local-kernel-fusion",
        )
        for _ in range(5):
            sess.fusedmm_a(A, B)
        assert threading.active_count() == baseline + 8
        sess.close()
        assert threading.active_count() == baseline

    def test_many_sessions_no_cumulative_leak(self):
        from repro.sparse.generate import erdos_renyi

        rng = np.random.default_rng(1)
        S = erdos_renyi(64, 64, 4, seed=1)
        A = rng.standard_normal((64, 8))
        B = rng.standard_normal((64, 8))
        baseline = threading.active_count()
        for _ in range(10):
            with repro.plan(S, 8, p=4, c=2, algorithm="1.5d-dense-shift") as sess:
                sess.sddmm(A, B)
        assert threading.active_count() == baseline

    def test_overlap_session_thread_count_returns_to_baseline(self):
        """Overlap-mode case of the thread-leak gate: pipelined shifts,
        async packed exchanges and cross-call futures (including an
        unconsumed one at close time) must not strand a single thread."""
        from repro.sparse.generate import erdos_renyi

        rng = np.random.default_rng(2)
        S = erdos_renyi(96, 96, 5, seed=2)
        A = rng.standard_normal((96, 8))
        B = rng.standard_normal((96, 8))
        baseline = threading.active_count()
        sess = repro.plan(
            S, 8, p=8, c=4, algorithm="1.5d-sparse-shift",
            elision="replication-reuse", comm="sparse", overlap="on",
        )
        for _ in range(3):
            sess.fusedmm_b(A, B)
        # cross-call pipeline: leave the last future unconsumed on purpose
        sess.fusedmm_b_async(A, B)
        future = sess.fusedmm_b_async(A, B)
        assert threading.active_count() == baseline + 8
        sess.close()
        assert threading.active_count() == baseline
        # the finalized future is still consumable after close
        out, report = future.result()
        assert out.shape == (96, 8)
        assert report.hidden_comm_seconds > 0.0


class TestFaultStress:
    """Injected faults against the overlap/sparse machinery under load:
    a crash while sibling ranks sit inside ``PendingSparseExchange.wait``,
    and a straggler stalling one leg of the 2.5D dual gather.  Each case
    re-runs the thread-leak gate — a fault must never strand a rank
    thread."""

    def test_crash_while_siblings_wait_packed_exchange(self):
        """Crash one rank mid-pipeline on an overlap sparse-comm session:
        its siblings are blocked in PendingSparseExchange.wait on the
        posted packed exchange and must unwind via the abort, recover,
        and produce bitwise-clean results on the retry."""
        from repro.runtime.faults import FaultPlan
        from repro.sparse.generate import erdos_renyi

        rng = np.random.default_rng(5)
        S = erdos_renyi(96, 96, 5, seed=5)
        A = rng.standard_normal((96, 8))
        B = rng.standard_normal((96, 8))
        with repro.plan(
            S, 8, p=8, c=2, algorithm="1.5d-sparse-shift", comm="sparse",
            overlap="on",
        ) as clean:
            ref, _ = clean.fusedmm_a(A, B)

        baseline = threading.active_count()
        plan = FaultPlan.crash_at(site="computation", rank=5, index=1)
        sess = repro.plan(
            S, 8, p=8, c=2, algorithm="1.5d-sparse-shift", comm="sparse",
            overlap="on", retries=1, faults=plan,
        )
        out, _ = sess.fusedmm_a(A, B)
        np.testing.assert_array_equal(out, ref)
        assert sess.metrics()[-1]["outcome"] == "retried"
        sess.close()
        assert threading.active_count() == baseline  # thread-leak gate

    def test_straggler_during_dual_gather(self):
        """Stall one rank inside the 2.5D dual gather (the fused A+B
        packed gather region): siblings wait it out, the result is
        bitwise unchanged, and no thread leaks."""
        from repro.runtime.faults import FaultPlan
        from repro.sparse.generate import erdos_renyi

        rng = np.random.default_rng(6)
        S = erdos_renyi(96, 96, 5, seed=6)
        A = rng.standard_normal((96, 8))
        B = rng.standard_normal((96, 8))
        with repro.plan(
            S, 8, p=8, c=2, algorithm="2.5d-sparse-replicate", comm="sparse",
            overlap="on",
        ) as clean:
            ref, _ = clean.fusedmm_a(A, B)

        baseline = threading.active_count()
        plan = FaultPlan.straggler(0.1, site="gather-AB-packed", rank=2)
        sess = repro.plan(
            S, 8, p=8, c=2, algorithm="2.5d-sparse-replicate", comm="sparse",
            overlap="on", faults=plan,
        )
        out, _ = sess.fusedmm_a(A, B)
        np.testing.assert_array_equal(out, ref)
        assert sess.metrics()[-1]["outcome"] == "ok"
        assert plan.fired_log == [(2, "straggler", "region=gather-AB-packed")]
        sess.close()
        assert threading.active_count() == baseline  # thread-leak gate


class TestDeterminism:
    def test_repeated_runs_bit_identical(self):
        """Thread scheduling must not perturb any numeric result."""

        def run_once():
            from repro.sparse.generate import erdos_renyi
            from repro.algorithms.dense_shift_15d import DenseShift15D
            from repro.types import Mode

            S = erdos_renyi(96, 96, 5, seed=0)
            rng = np.random.default_rng(1)
            A = rng.standard_normal((96, 8))
            B = rng.standard_normal((96, 8))
            alg = DenseShift15D(8, 2)
            plan = alg.plan(96, 96, 8)
            locals_ = alg.distribute(plan, S, None, B)

            def body(comm):
                ctx = alg.make_context(comm)
                alg.rank_kernel(ctx, plan, locals_[comm.rank], Mode.SPMM_A)

            run_spmd(8, body)
            return alg.collect_dense_a(plan, locals_)

        a, b = run_once(), run_once()
        np.testing.assert_array_equal(a, b)

"""Tests for the distributed GAT forward pass."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.gat import (
    DistributedGAT,
    GatHead,
    elu,
    gat_forward_reference,
    leaky_relu,
    make_heads,
)
from repro.errors import ReproError
from repro.sparse.generate import erdos_renyi
from repro.types import Elision, Phase


@pytest.fixture
def graph(rng):
    n = 140
    adj = erdos_renyi(n, n, 6, seed=4, values="ones")
    X = rng.standard_normal((n, 12))
    return adj, X


CONFIGS = [
    (Elision.NONE, 4, 2),
    (Elision.NONE, 6, 3),
    (Elision.REPLICATION_REUSE, 4, 2),
    (Elision.REPLICATION_REUSE, 8, 2),
    (Elision.REPLICATION_REUSE, 8, 4),
]


class TestForwardPass:
    @pytest.mark.parametrize(
        "el,p,c", CONFIGS, ids=[f"{e.value}-p{p}c{c}" for e, p, c in CONFIGS]
    )
    def test_matches_reference(self, el, p, c, graph):
        adj, X = graph
        gat = DistributedGAT(p=p, c=c, n_heads=3, r_in=12, r_head=6, elision=el, seed=5)
        out = gat.forward(adj, X)
        ref = gat_forward_reference(adj, X, gat.heads)
        np.testing.assert_allclose(out.output, ref, rtol=1e-9, atol=1e-12)

    def test_single_head(self, graph):
        adj, X = graph
        gat = DistributedGAT(p=4, c=1, n_heads=1, r_in=12, r_head=8, seed=1)
        out = gat.forward(adj, X)
        assert out.output.shape == (adj.nrows, 8)
        np.testing.assert_allclose(
            out.output, gat_forward_reference(adj, X, gat.heads), rtol=1e-9
        )

    def test_without_elu(self, graph):
        adj, X = graph
        gat = DistributedGAT(p=4, c=2, n_heads=2, r_in=12, r_head=4, apply_elu=False, seed=2)
        out = gat.forward(adj, X)
        ref = gat_forward_reference(adj, X, gat.heads, apply_elu=False)
        np.testing.assert_allclose(out.output, ref, rtol=1e-9)

    def test_attention_rows_sum_to_one_in_reference(self, graph):
        """Edge softmax invariant used by the distributed path."""
        adj, X = graph
        heads = make_heads(1, 12, 4, seed=0)
        H = X @ heads[0].W
        uL = H @ heads[0].a_left
        uR = H @ heads[0].a_right
        e = leaky_relu(uL[adj.rows] + uR[adj.cols], 0.2)
        ex = np.exp(e)
        rowsum = np.zeros(adj.nrows)
        np.add.at(rowsum, adj.rows, ex)
        attn = ex / rowsum[adj.rows]
        check = np.zeros(adj.nrows)
        np.add.at(check, adj.rows, attn)
        present = np.unique(adj.rows)
        np.testing.assert_allclose(check[present], 1.0)


class TestValidation:
    def test_local_kernel_fusion_rejected(self):
        """The paper: LKF is incompatible with softmax edge normalization."""
        with pytest.raises(ReproError):
            DistributedGAT(p=4, elision=Elision.LOCAL_KERNEL_FUSION)

    def test_rectangular_adjacency_rejected(self, rng):
        gat = DistributedGAT(p=2, r_in=4, r_head=2)
        S = erdos_renyi(10, 12, 2, seed=0)
        with pytest.raises(ReproError):
            gat.forward(S, rng.standard_normal((10, 4)))

    def test_wrong_feature_width_rejected(self, graph, rng):
        adj, _ = graph
        gat = DistributedGAT(p=2, r_in=12, r_head=4)
        with pytest.raises(ReproError):
            gat.forward(adj, rng.standard_normal((adj.nrows, 5)))


class TestCommunicationBehavior:
    def test_reuse_gathers_once_per_forward(self, graph):
        """Replication reuse all-gathers X once; the unoptimized variant
        gathers per head per kernel — more replication words."""
        adj, X = graph
        g_none = DistributedGAT(p=4, c=2, n_heads=3, r_in=12, r_head=6,
                                elision=Elision.NONE, seed=5)
        g_reuse = DistributedGAT(p=4, c=2, n_heads=3, r_in=12, r_head=6,
                                 elision=Elision.REPLICATION_REUSE, seed=5)
        w_none = g_none.forward(adj, X).report.phase_words(Phase.REPLICATION)
        w_reuse = g_reuse.forward(adj, X).report.phase_words(Phase.REPLICATION)
        assert w_reuse < w_none

    def test_softmax_reductions_counted_outside_fusedmm(self, graph):
        adj, X = graph
        gat = DistributedGAT(p=4, c=2, n_heads=2, r_in=12, r_head=6, seed=0)
        rep = gat.forward(adj, X).report
        assert rep.phase_words(Phase.OTHER) > 0  # softmax allreduces


class TestActivations:
    def test_leaky_relu(self):
        x = np.array([-2.0, 0.0, 3.0])
        np.testing.assert_allclose(leaky_relu(x, 0.1), [-0.2, 0.0, 3.0])

    def test_elu(self):
        x = np.array([-1.0, 0.0, 2.0])
        out = elu(x)
        assert out[0] == pytest.approx(np.expm1(-1.0))
        assert out[1] == 0.0 and out[2] == 2.0

    def test_make_heads_shapes(self):
        heads = make_heads(4, 16, 8, seed=1)
        assert len(heads) == 4
        for h in heads:
            assert h.W.shape == (16, 8)
            assert h.a_left.shape == (8,) and h.a_right.shape == (8,)

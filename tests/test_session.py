"""Tests for the session-handle API (plan once, run many kernels).

Covers the session redesign's contract:

* wrapper-vs-session bitwise equivalence across all families x modes x
  dense/sparse communication;
* amortization: the sparse operand is distributed and the comm plans /
  packed indexes are built exactly once per orientation, for both
  ``sess.kernel()`` loops and the legacy ``calls=`` wrappers;
* report accumulation across calls and ``reset_profile``;
* validation: dense-operand shape drift, re-plan error on a different S,
  value rebinding via ``update_values``, closed-session errors;
* context-manager lifecycle and the debugging ``repr``.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from tests.conftest import require_world_size
from repro.algorithms.registry import ALGORITHMS
from repro.baselines.serial import (
    fusedmm_a_serial,
    fusedmm_b_serial,
    sddmm_serial,
    spmm_a_serial,
    spmm_b_serial,
)
from repro.errors import ReproError
from repro.types import FusedVariant

# (algorithm, p, c, comm) — every family, plus the sparse-comm path on the
# two families that support it
FAMILY_COMMS = [
    ("1.5d-dense-shift", 8, 2, "dense"),
    ("1.5d-sparse-shift", 8, 2, "dense"),
    ("1.5d-sparse-shift", 8, 2, "sparse"),
    ("2.5d-dense-replicate", 8, 2, "dense"),
    ("2.5d-sparse-replicate", 8, 2, "dense"),
    ("2.5d-sparse-replicate", 8, 2, "sparse"),
]
FAMILY_IDS = [f"{a}/{comm}" for a, _, _, comm in FAMILY_COMMS]

# every (family, elision, variant) combo, on both comm modes where legal —
# includes the transposing orientations (e.g. FusedMMA under replication
# reuse), which must run on the session's resident transposed sibling
FUSED_COMBOS = [
    (name, p, c, comm, elision, variant)
    for (name, p, c, comm) in FAMILY_COMMS
    for elision in ALGORITHMS[name].elisions
    for variant in (FusedVariant.FUSED_A, FusedVariant.FUSED_B)
]
FUSED_IDS = [
    f"{n}/{comm}/{e.value}/{v.value}" for n, _, _, comm, e, v in FUSED_COMBOS
]


def _fused_call(sess, variant, A, B):
    if variant == FusedVariant.FUSED_A:
        return sess.fusedmm_a(A, B)
    return sess.fusedmm_b(A, B)


def _fused_wrapper(variant):
    return repro.fusedmm_a if variant == FusedVariant.FUSED_A else repro.fusedmm_b


class TestWrapperSessionEquivalence:
    @pytest.mark.parametrize("name,p,c,comm", FAMILY_COMMS, ids=FAMILY_IDS)
    def test_single_mode_kernels_bitwise(self, name, p, c, comm, small_problem):
        S, A, B = small_problem
        sess = repro.plan(S, A.shape[1], p=p, c=c, algorithm=name, comm=comm)
        for _ in range(2):  # repeated calls stay bitwise-stable
            out_sd, _ = sess.sddmm(A, B)
            out_a, _ = sess.spmm_a(B)
            out_b, _ = sess.spmm_b(A)
        ref_sd, _ = repro.sddmm(S, A, B, p=p, c=c, algorithm=name, comm=comm)
        ref_a, _ = repro.spmm_a(S, B, p=p, c=c, algorithm=name, comm=comm)
        ref_b, _ = repro.spmm_b(S, A, p=p, c=c, algorithm=name, comm=comm)
        assert np.array_equal(out_sd.vals, ref_sd.vals)
        assert np.array_equal(out_a, ref_a)
        assert np.array_equal(out_b, ref_b)
        # and both agree with the serial baselines
        np.testing.assert_allclose(out_sd.vals, sddmm_serial(S, A, B).vals, rtol=1e-9)
        np.testing.assert_allclose(out_a, spmm_a_serial(S, B), rtol=1e-9)
        np.testing.assert_allclose(out_b, spmm_b_serial(S, A), rtol=1e-9)

    @pytest.mark.parametrize(
        "name,p,c,comm,elision,variant", FUSED_COMBOS, ids=FUSED_IDS
    )
    def test_fused_five_calls_bitwise(self, name, p, c, comm, elision, variant,
                                      small_problem, exec_backend):
        """The acceptance bar: 5 session calls == 5 one-shot calls, bitwise.

        Parameterized by ``--exec-backend``: under mpi the same assertions
        gate the process transport against the shared collective stack.
        """
        require_world_size(exec_backend, p)
        S, A, B = small_problem
        ref, _ = _fused_wrapper(variant)(
            S, A, B, p=p, c=c, algorithm=name, elision=elision, comm=comm,
            backend=exec_backend,
        )
        sess = repro.plan(
            S, A.shape[1], p=p, c=c, algorithm=name, elision=elision, comm=comm,
            backend=exec_backend,
        )
        for _ in range(5):
            out, _ = _fused_call(sess, variant, A, B)
            assert np.array_equal(out, ref)
        serial = fusedmm_a_serial if variant == FusedVariant.FUSED_A else fusedmm_b_serial
        np.testing.assert_allclose(out, serial(S, A, B), rtol=1e-9, atol=1e-12)

    def test_collect_sddmm_intermediate(self, small_problem):
        S, A, B = small_problem
        sess = repro.plan(
            S, A.shape[1], p=4, c=2, algorithm="1.5d-dense-shift",
            elision="replication-reuse",
        )
        # FusedMMA under replication reuse transposes: the intermediate
        # must come back in S's own orientation
        out, mid, _ = sess.fusedmm_a(A, B, collect_sddmm=True)
        assert mid.shape == S.shape
        np.testing.assert_allclose(
            mid.to_scipy().toarray(), sddmm_serial(S, A, B).to_scipy().toarray(),
            rtol=1e-9,
        )


def _count_method(monkeypatch, cls, method_name, counts):
    orig = getattr(cls, method_name)

    def counting(self, *a, **kw):
        counts[method_name] = counts.get(method_name, 0) + 1
        return orig(self, *a, **kw)

    monkeypatch.setattr(cls, method_name, counting)


class TestAmortization:
    def test_session_distributes_sparse_exactly_once(self, small_problem, monkeypatch):
        """5 fused calls on a session: one sparse distribution, one comm-plan
        build, outputs bitwise-equal to 5 one-shot calls."""
        from repro.algorithms.sparse_shift_15d import SparseShift15D

        S, A, B = small_problem
        counts = {}
        _count_method(monkeypatch, SparseShift15D, "distribute_sparse", counts)
        _count_method(monkeypatch, SparseShift15D, "bind_dense", counts)
        _count_method(monkeypatch, SparseShift15D, "build_comm_plans", counts)

        sess = repro.plan(
            S, A.shape[1], p=8, c=2, algorithm="1.5d-sparse-shift",
            elision="replication-reuse", comm="sparse",
        )
        outs = [sess.fusedmm_b(A, B)[0] for _ in range(5)]
        assert counts["distribute_sparse"] == 1
        assert counts["build_comm_plans"] == 1
        # dense operands rebind once per call, and only per call
        assert counts["bind_dense"] == 5
        ref, _ = repro.fusedmm_b(
            S, A, B, p=8, c=2, algorithm="1.5d-sparse-shift",
            elision="replication-reuse", comm="sparse",
        )
        for out in outs:
            assert np.array_equal(out, ref)

    def test_wrapper_calls_loop_distributes_once(self, small_problem, monkeypatch):
        """The PR-1/2 regression: ``calls=5`` must not re-distribute S per
        call in either the fused driver or the single-mode wrappers."""
        from repro.algorithms.dense_shift_15d import DenseShift15D

        S, A, B = small_problem
        counts = {}
        _count_method(monkeypatch, DenseShift15D, "distribute_sparse", counts)
        repro.fusedmm_a(
            S, A, B, p=4, c=2, algorithm="1.5d-dense-shift",
            elision="local-kernel-fusion", calls=5,
        )
        assert counts["distribute_sparse"] == 1
        counts.clear()
        repro.sddmm(S, A, B, p=4, c=2, algorithm="1.5d-dense-shift", calls=5)
        assert counts["distribute_sparse"] == 1

    def test_transposed_sibling_built_once(self, small_problem, monkeypatch):
        """Alternating FusedMMA/FusedMMB under a one-sided elision touches
        both orientations; each is distributed exactly once."""
        from repro.algorithms.dense_shift_15d import DenseShift15D

        S, A, B = small_problem
        counts = {}
        _count_method(monkeypatch, DenseShift15D, "distribute_sparse", counts)
        sess = repro.plan(
            S, A.shape[1], p=4, c=2, algorithm="1.5d-dense-shift",
            elision="replication-reuse",
        )
        for _ in range(3):
            sess.fusedmm_a(A, B)  # transposing (native b)
            sess.fusedmm_b(A, B)  # native
        assert counts["distribute_sparse"] == 2


class TestReports:
    def test_reports_accumulate_and_reset(self, small_problem):
        S, A, B = small_problem
        sess = repro.plan(S, A.shape[1], p=4, c=2, algorithm="1.5d-dense-shift")
        _, rep1 = sess.sddmm(A, B)
        words1 = rep1.comm_words
        assert words1 > 0
        for _ in range(2):
            _, rep = sess.sddmm(A, B)
        assert rep.comm_words == 3 * words1
        # the report is a live view of the session's accumulation window
        assert rep1.comm_words == 3 * words1
        sess.reset_profile()
        _, rep_fresh = sess.sddmm(A, B)
        assert rep_fresh.comm_words == words1

    def test_report_carries_comm_mode_and_label(self, small_problem):
        S, A, B = small_problem
        sess = repro.plan(
            S, A.shape[1], p=8, c=2, algorithm="1.5d-sparse-shift",
            elision="replication-reuse", comm="sparse",
        )
        _, rep = sess.fusedmm_b(A, B)
        assert rep.comm_mode == "sparse"
        assert rep.label == "1.5d-sparse-shift/replication-reuse/sparse-comm/x1"
        _, rep = sess.fusedmm_b(A, B)
        assert rep.label.endswith("/x2")

    def test_mixed_kernel_report(self, small_problem):
        """A serving-shaped sequence accumulates into one report."""
        S, A, B = small_problem
        sess = repro.plan(S, A.shape[1], p=4, c=2, algorithm="1.5d-dense-shift")
        sess.sddmm(A, B)
        sess.spmm_a(B)
        _, rep = sess.fusedmm_a(A, B)
        assert rep.flops > 0 and rep.comm_words > 0


class TestValidation:
    def test_dense_shape_drift_rejected(self, small_problem, rng):
        S, A, B = small_problem
        sess = repro.plan(S, A.shape[1], p=4, c=2, algorithm="1.5d-dense-shift")
        sess.fusedmm_a(A, B)
        with pytest.raises(ReproError, match="shape"):
            sess.fusedmm_a(A, rng.standard_normal((S.ncols, A.shape[1] + 1)))
        with pytest.raises(ReproError, match="shape"):
            sess.spmm_a(rng.standard_normal((S.ncols + 1, A.shape[1])))
        with pytest.raises(ReproError, match="shape"):
            sess.spmm_b(rng.standard_normal((3, 4)))
        # the session still works after a rejected call
        out, _ = sess.spmm_a(B)
        np.testing.assert_allclose(out, spmm_a_serial(S, B), rtol=1e-9)

    def test_different_s_structure_rejected(self, small_problem):
        S, A, B = small_problem
        other = repro.erdos_renyi(S.nrows, S.ncols, 4, seed=99)
        sess = repro.plan(S, A.shape[1], p=4, c=2, algorithm="1.5d-dense-shift")
        with pytest.raises(ReproError, match="re-plan|different sparse"):
            sess.sddmm(A, B, S=other)
        with pytest.raises(ReproError, match="re-plan|different sparse"):
            sess.spmm_a(B, S=repro.erdos_renyi(50, 60, 3, seed=1))

    def test_same_structure_different_values_hinted(self, small_problem):
        S, A, B = small_problem
        sess = repro.plan(S, A.shape[1], p=4, c=2, algorithm="1.5d-dense-shift")
        reweighted = S.with_values(S.vals * 2.0)
        with pytest.raises(ReproError, match="update_values"):
            sess.spmm_a(B, S=reweighted)
        # the planned matrix itself is always accepted
        out, _ = sess.spmm_a(B, S=S)
        np.testing.assert_allclose(out, spmm_a_serial(S, B), rtol=1e-9)

    def test_unsupported_elision_rejected_at_plan(self, small_problem):
        S, A, B = small_problem
        with pytest.raises(ReproError):
            repro.plan(
                S, A.shape[1], p=8, c=2, algorithm="2.5d-sparse-replicate",
                elision="replication-reuse",
            )

    def test_infeasible_c_rejected_at_plan(self, small_problem):
        S, A, B = small_problem
        with pytest.raises(ReproError):
            repro.plan(S, A.shape[1], p=8, c=3, algorithm="1.5d-dense-shift")


class TestUpdateValues:
    @pytest.mark.parametrize("name,p,c,comm", FAMILY_COMMS, ids=FAMILY_IDS)
    def test_rebinds_values_without_replanning(self, name, p, c, comm,
                                               small_problem, monkeypatch):
        from repro.algorithms.registry import ALGORITHMS as REG

        S, A, B = small_problem
        counts = {}
        _count_method(monkeypatch, REG[name], "distribute_sparse", counts)
        sess = repro.plan(S, A.shape[1], p=p, c=c, algorithm=name, comm=comm)
        rng = np.random.default_rng(5)
        new_vals = rng.standard_normal(S.nnz)
        sess.update_values(new_vals)
        S_new = S.with_values(new_vals)
        out_a, _ = sess.spmm_a(B)
        np.testing.assert_allclose(out_a, spmm_a_serial(S_new, B), rtol=1e-9)
        out_sd, _ = sess.sddmm(A, B)
        np.testing.assert_allclose(out_sd.vals, sddmm_serial(S_new, A, B).vals, rtol=1e-9)
        assert counts["distribute_sparse"] == 1  # no repartitioning

    def test_propagates_to_transposed_sibling(self, small_problem):
        S, A, B = small_problem
        sess = repro.plan(
            S, A.shape[1], p=4, c=2, algorithm="1.5d-dense-shift",
            elision="replication-reuse",
        )
        sess.fusedmm_a(A, B)  # builds the transposed sibling
        new_vals = np.linspace(0.5, 2.0, S.nnz)
        sess.update_values(new_vals)
        S_new = S.with_values(new_vals)
        out, _ = sess.fusedmm_a(A, B)
        np.testing.assert_allclose(out, fusedmm_a_serial(S_new, A, B), rtol=1e-9)

    def test_wrong_length_rejected(self, small_problem):
        S, A, B = small_problem
        sess = repro.plan(S, A.shape[1], p=4, c=2, algorithm="1.5d-dense-shift")
        with pytest.raises(ReproError, match="values"):
            sess.update_values(np.ones(S.nnz + 1))


class TestLifecycle:
    def test_context_manager_releases_pools(self, small_problem):
        S, A, B = small_problem
        with repro.plan(
            S, A.shape[1], p=8, c=2, algorithm="1.5d-sparse-shift",
            elision="replication-reuse", comm="sparse",
        ) as sess:
            out, _ = sess.fusedmm_b(A, B)
            assert sess._alg._pools  # pools were populated by the run
        assert not sess._alg._pools  # released on exit
        assert sess._closed
        with pytest.raises(ReproError, match="closed"):
            sess.fusedmm_b(A, B)
        with pytest.raises(ReproError, match="closed"):
            sess.update_values(S.vals)

    def test_close_is_idempotent(self, small_problem):
        S, A, B = small_problem
        sess = repro.plan(S, A.shape[1], p=4, c=2, algorithm="1.5d-dense-shift")
        sess.close()
        sess.close()

    def test_repr_summarizes_resolution(self, small_problem):
        S, A, B = small_problem
        sess = repro.plan(
            S, A.shape[1], p=8, c=2, algorithm="1.5d-sparse-shift",
            elision="replication-reuse", comm="sparse",
        )
        text = repr(sess)
        for needle in ("1.5d-sparse-shift", "p=8", "c=2", "replication-reuse",
                       "sparse", "phi="):
            assert needle in text
        sess.close()
        assert "closed" in repr(sess)

    def test_auto_knobs_resolve_at_plan_time(self, small_problem):
        S, A, B = small_problem
        sess = repro.plan(S, A.shape[1], p=8, algorithm="auto", comm="auto")
        assert sess.algorithm in ALGORITHMS
        assert sess.comm_mode.value in ("dense", "sparse")
        from repro.algorithms.registry import feasible_replication_factors

        assert sess.c in feasible_replication_factors(sess.algorithm, 8)
        out, _ = sess.fusedmm_a(A, B)
        np.testing.assert_allclose(out, fusedmm_a_serial(S, A, B), rtol=1e-9)

    def test_star_import_exposes_handle(self):
        ns = {}
        exec("from repro import *", ns)
        assert "plan" in ns and "Session" in ns and "fusedmm_a" in ns


class TestDenseBindSkipping:
    """Skip-rebind dirty tracking: unchanged dense operands are scattered
    once, not per call, and any kernel that overwrites a resident side
    forces its next bind (counters: ``Session.dense_bind_counts`` /
    ``dense_bind_skips``)."""

    def test_repeated_sddmm_binds_each_side_once(self, small_problem):
        S, A, B = small_problem
        with repro.plan(S, A.shape[1], p=4, c=2,
                        algorithm="1.5d-dense-shift", overlap="off") as sess:
            for _ in range(4):
                sess.sddmm(A, B)
            assert sess.dense_bind_counts == {"a": 1, "b": 1}
            assert sess.dense_bind_skips == {"a": 3, "b": 3}

    def test_spmm_dirties_its_output_side_only(self, small_problem):
        S, A, B = small_problem
        with repro.plan(S, A.shape[1], p=4, c=2,
                        algorithm="1.5d-dense-shift") as sess:
            sess.spmm_a(B)
            sess.spmm_a(B)
            # B (input) scattered once; A is an output slot (re-zeroed per
            # call, never counted as an operand scatter)
            assert sess.dense_bind_counts == {"a": 0, "b": 1}
            assert sess.dense_bind_skips["b"] == 1

    def test_inplace_mutation_is_detected_not_skipped(self, small_problem):
        """The snapshot comparison must catch callers that mutate the same
        array object in place — identity alone would serve stale blocks."""
        S, A, B = small_problem
        with repro.plan(S, A.shape[1], p=4, c=2,
                        algorithm="1.5d-dense-shift") as sess:
            out1, _ = sess.sddmm(A, B)
            B[0, 0] += 1.0  # same object, new values
            out2, _ = sess.sddmm(A, B)
            assert sess.dense_bind_counts["b"] == 2
            np.testing.assert_allclose(out2.vals, sddmm_serial(S, A, B).vals,
                                       rtol=1e-9)
            assert not np.array_equal(out1.vals, out2.vals)

    def test_equal_values_different_object_still_skips(self, small_problem):
        S, A, B = small_problem
        with repro.plan(S, A.shape[1], p=4, c=2,
                        algorithm="1.5d-dense-shift") as sess:
            sess.sddmm(A, B)
            sess.sddmm(A.copy(), B.copy())  # bitwise equal -> no rebind
            assert sess.dense_bind_counts == {"a": 1, "b": 1}

    def test_fused_output_side_rebinds_next_call(self, small_problem):
        S, A, B = small_problem
        with repro.plan(S, A.shape[1], p=4, c=2,
                        algorithm="1.5d-dense-shift",
                        elision="replication-reuse") as sess:
            sess.fusedmm_b(A, B)  # native b: overwrites resident B blocks
            sess.fusedmm_b(A, B)
            # A untouched -> bound once; B dirtied by call 1 -> bound twice
            assert sess.dense_bind_counts == {"a": 1, "b": 2}
            assert sess.dense_bind_skips["a"] == 1

    def test_als_fixed_factor_scattered_once_per_half_sweep(self, small_problem):
        """The ALS bind pattern: bind(rhs, fixed) then bind(x0, fixed) —
        the fixed factor's second scatter is skipped, so it moves exactly
        once per half-sweep despite feeding every CG matvec."""
        S, A, B = small_problem
        rng = np.random.default_rng(9)
        rhs = rng.standard_normal(A.shape)
        x0 = rng.standard_normal(A.shape)
        with repro.plan(S, A.shape[1], p=4, c=2,
                        algorithm="1.5d-dense-shift",
                        elision="local-kernel-fusion") as sess:
            sess.bind(rhs, B)   # snapshot the rhs blocks
            sess.bind(x0, B)    # rebinds only the moving side
            assert sess.dense_bind_counts == {"a": 2, "b": 1}
            assert sess.dense_bind_skips == {"a": 0, "b": 1}
            # a custom rank procedure may write anything: both sides dirty
            sess.run_rank(lambda ctx, plan_, local: None, label="noop")
            sess.bind(x0, B)
            assert sess.dense_bind_counts == {"a": 3, "b": 2}

    def test_skipping_preserves_bitwise_outputs(self, small_problem):
        S, A, B = small_problem
        with repro.plan(S, A.shape[1], p=4, c=2,
                        algorithm="1.5d-dense-shift") as sess:
            first, _ = sess.sddmm(A, B)
            second, _ = sess.sddmm(A, B)  # fully skipped bind
            assert np.array_equal(first.vals, second.vals)

    def test_transposed_orientation_tracks_independently(self, small_problem):
        S, A, B = small_problem
        with repro.plan(S, A.shape[1], p=8, c=2,
                        algorithm="1.5d-dense-shift",
                        elision="replication-reuse") as sess:
            # FUSED_A under replication reuse runs on the transposed
            # sibling; its binds must not disturb the forward tracking
            sess.fusedmm_a(A, B)
            sess.fusedmm_a(A, B)
            sess.sddmm(A, B)
            assert sess.dense_bind_counts["a"] >= 2  # both orientations


class TestThreadSafety:
    """Sessions are single-caller: a second driver thread gets a typed
    :class:`~repro.errors.SessionBusyError` immediately — never a silent
    interleave of bind/launch/collect, never a deadlock.  The serving
    front-end (``repro.serve.Server``) relies on this contract when it
    funnels every session through one dispatcher thread."""

    def test_second_driver_thread_gets_typed_busy_error(self, small_problem):
        import threading

        S, A, B = small_problem
        with repro.plan(S, A.shape[1], p=4, c=2,
                        algorithm="1.5d-dense-shift") as sess:
            sess.sddmm(A, B)  # warm the pool outside the race window
            done = threading.Event()
            errors = []

            def driver():
                try:
                    for _ in range(25):
                        sess.sddmm(A, B)
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)
                finally:
                    done.set()

            t = threading.Thread(target=driver)
            busy = 0
            t.start()
            # poll from this thread while the driver owns the gate: the
            # driver holds it for nearly its whole loop, so collisions are
            # certain — and every one must surface as the typed error
            while not done.is_set():
                try:
                    sess.metrics()
                except repro.SessionBusyError:
                    busy += 1
            t.join()
            assert not errors  # the owning thread was never disturbed
            assert busy > 0
            # the session recovers: serialized callers work fine after
            out, _ = sess.sddmm(A, B)
            assert sess.metrics()[-1]["outcome"] == "ok"

    def test_gate_is_reentrant_for_internal_composition(self, small_problem):
        # fusedmm_a -> report composes on the owning thread (RLock), and
        # the busy error never fires for single-threaded callers
        S, A, B = small_problem
        with repro.plan(S, A.shape[1], p=4, c=2,
                        algorithm="1.5d-dense-shift") as sess:
            out, report = sess.fusedmm_a(A, B)
            assert out.shape == A.shape
            assert sess.metrics()[-1]["outcome"] == "ok"

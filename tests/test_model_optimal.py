"""Tests for Table IV optimal replication factors and the Figure 6/7
predictors."""

from __future__ import annotations

import math

import pytest

from repro.errors import ReproError
from repro.model.costs import fusedmm_cost
from repro.model.optimal import (
    best_feasible_c,
    optimal_c_continuous,
    predict_best_algorithm,
    predicted_times,
)
from repro.runtime.cost import CORI_KNL, MachineParams

BETA_ONLY = MachineParams(alpha=0.0, beta=1e-9, gamma=0.0, name="beta-only")


class TestTableIV:
    @pytest.mark.parametrize(
        "key,expected",
        [
            ("1.5d-dense-shift/none", math.sqrt(256)),
            ("1.5d-dense-shift/replication-reuse", math.sqrt(512)),
            ("1.5d-dense-shift/local-kernel-fusion", math.sqrt(128)),
            ("1.5d-sparse-shift/replication-reuse", math.sqrt(6 * 256 * 0.125)),
            ("2.5d-dense-replicate/none", (256 * (1 + 3 * 0.125) ** 2 / 4) ** (1 / 3)),
            ("2.5d-dense-replicate/replication-reuse", (256 * (1 + 3 * 0.125) ** 2) ** (1 / 3)),
            # true argmin of the Table III expression; the paper's printed
            # cbrt(p/(2 phi/3)^2) is a transcription slip (see optimal.py)
            ("2.5d-sparse-replicate/none", (256 / (3 * 0.125 / 2) ** 2) ** (1 / 3)),
        ],
    )
    def test_formulas(self, key, expected):
        assert optimal_c_continuous(key, 256, 0.125) == pytest.approx(expected)

    def test_reuse_raises_and_lkf_lowers_optimal_c(self):
        """The paper's central Figure 7 claim: c_reuse >= c_none >= c_lkf."""
        for p in (16, 64, 256):
            reuse = optimal_c_continuous("1.5d-dense-shift/replication-reuse", p, 0.1)
            none = optimal_c_continuous("1.5d-dense-shift/none", p, 0.1)
            lkf = optimal_c_continuous("1.5d-dense-shift/local-kernel-fusion", p, 0.1)
            assert reuse > none > lkf

    def test_continuous_c_minimizes_the_cost(self):
        """The closed form is the argmin of the Table III expression."""
        n, r, p, phi = 1 << 20, 256, 256, 0.125
        for key in (
            "1.5d-dense-shift/none",
            "1.5d-dense-shift/replication-reuse",
            "1.5d-dense-shift/local-kernel-fusion",
        ):
            c_star = optimal_c_continuous(key, p, phi)
            f = lambda c: fusedmm_cost(key, n, r, p, round(c), phi).words  # noqa: E731
            # evaluate at the nearest feasible integers around c*
            feas = [c for c in range(1, p + 1) if p % c == 0]
            best = min(feas, key=lambda c: fusedmm_cost(key, n, r, p, c, phi).words)
            nearest = min(feas, key=lambda c: abs(c - c_star))
            assert abs(math.log2(best) - math.log2(nearest)) <= 1.0

    def test_unknown_key(self):
        with pytest.raises(ReproError):
            optimal_c_continuous("nope/none", 16, 0.1)

    def test_sparse_replicate_zero_phi(self):
        assert optimal_c_continuous("2.5d-sparse-replicate/none", 16, 0.0) == 16


class TestBestFeasibleC:
    def test_is_within_feasible_set(self):
        c, cost = best_feasible_c("1.5d-dense-shift/none", 4096, 64, 12, 0.2)
        assert 12 % c == 0
        assert cost.words > 0

    def test_respects_cap(self):
        c, _ = best_feasible_c("1.5d-dense-shift/replication-reuse", 1 << 16, 64, 64, 0.1, max_c=4)
        assert c <= 4

    def test_sparse_shift_respects_strip_constraint(self):
        """The paper: at p=256, r=128 forces c >= 2 for the sparse shift."""
        c, _ = best_feasible_c(
            "1.5d-sparse-shift/replication-reuse", 1 << 20, 128, 256, 0.05
        )
        assert 256 // c <= 128
        assert c >= 2

    def test_25d_feasibility(self):
        c, _ = best_feasible_c("2.5d-dense-replicate/replication-reuse", 4096, 64, 16, 0.2)
        assert c in (1, 4, 16)


class TestPredictBestAlgorithm:
    def test_phi_boundary_is_one_third(self):
        """Figure 6: LKF dense shift vs reuse sparse shift cross at phi=1/3
        (the paper's '3 nnz(S)/r = 1' line), in the pure-bandwidth model."""
        n, r, p = 1 << 20, 256, 1 << 14
        keys = (
            "1.5d-dense-shift/local-kernel-fusion",
            "1.5d-sparse-shift/replication-reuse",
        )
        lo = predict_best_algorithm(n, r, int(0.15 * n * r), p, BETA_ONLY, keys=keys)
        hi = predict_best_algorithm(n, r, int(0.80 * n * r), p, BETA_ONLY, keys=keys)
        assert lo == "1.5d-sparse-shift/replication-reuse"
        assert hi == "1.5d-dense-shift/local-kernel-fusion"

    def test_15d_beats_25d_at_moderate_p(self):
        """The paper's summary: correctly tuned 1.5D algorithms marginally
        outperform 2.5D over a range of processor counts."""
        n, r, p = 1 << 18, 128, 64
        best = predict_best_algorithm(n, r, int(0.125 * n * r), p, BETA_ONLY)
        assert best.startswith("1.5d")

    def test_predicted_times_has_all_feasible_rows(self):
        times = predicted_times(1 << 14, 64, 1 << 17, 16, CORI_KNL)
        assert "1.5d-dense-shift/replication-reuse" in times
        assert all(t > 0 for _, t in times.values())

    def test_no_feasible_raises(self):
        with pytest.raises(ReproError):
            predict_best_algorithm(100, 8, 100, 7, CORI_KNL, keys=())

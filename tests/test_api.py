"""Tests for the top-level public API."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.baselines.serial import (
    fusedmm_a_serial,
    fusedmm_b_serial,
    sddmm_serial,
    spmm_a_serial,
    spmm_b_serial,
)
from repro.errors import ReproError
from repro.types import Phase


class TestPublicKernels:
    def test_sddmm(self, small_problem):
        S, A, B = small_problem
        out, report = repro.sddmm(S, A, B, p=4, c=2)
        np.testing.assert_allclose(out.vals, sddmm_serial(S, A, B).vals, rtol=1e-9)
        assert report.comm_words > 0

    def test_spmm_a(self, small_problem):
        S, A, B = small_problem
        out, _ = repro.spmm_a(S, B, p=4, c=2)
        np.testing.assert_allclose(out, spmm_a_serial(S, B), rtol=1e-9)

    def test_spmm_b(self, small_problem):
        S, A, B = small_problem
        out, _ = repro.spmm_b(S, A, p=4, c=2)
        np.testing.assert_allclose(out, spmm_b_serial(S, A), rtol=1e-9)

    def test_fusedmm_a_string_elision(self, small_problem):
        S, A, B = small_problem
        out, _ = repro.fusedmm_a(
            S, A, B, p=4, c=2, algorithm="1.5d-dense-shift",
            elision="local-kernel-fusion",
        )
        np.testing.assert_allclose(out, fusedmm_a_serial(S, A, B), rtol=1e-9)

    def test_fusedmm_b(self, small_problem):
        S, A, B = small_problem
        out, _ = repro.fusedmm_b(
            S, A, B, p=4, c=2, algorithm="1.5d-sparse-shift",
            elision="replication-reuse",
        )
        np.testing.assert_allclose(out, fusedmm_b_serial(S, A, B), rtol=1e-9)

    def test_accepts_scipy_input(self, small_problem):
        S, A, B = small_problem
        out, _ = repro.spmm_a(S.to_scipy(), B, p=2)
        np.testing.assert_allclose(out, spmm_a_serial(S, B), rtol=1e-9)


class TestAutoSelection:
    def test_auto_algorithm_runs(self, small_problem):
        S, A, B = small_problem
        out, report = repro.fusedmm_a(S, A, B, p=4, algorithm="auto", elision="none")
        np.testing.assert_allclose(out, fusedmm_a_serial(S, A, B), rtol=1e-9)

    def test_auto_c_is_feasible(self, small_problem):
        S, A, B = small_problem
        out, _ = repro.fusedmm_b(
            S, A, B, p=8, c=None, algorithm="1.5d-dense-shift",
            elision="replication-reuse",
        )
        np.testing.assert_allclose(out, fusedmm_b_serial(S, A, B), rtol=1e-9)

    def test_infeasible_c_rejected(self, small_problem):
        S, A, B = small_problem
        with pytest.raises(ReproError):
            repro.fusedmm_a(S, A, B, p=8, c=3, algorithm="1.5d-dense-shift")

    def test_unsupported_elision_rejected(self, small_problem):
        S, A, B = small_problem
        with pytest.raises(ReproError):
            repro.fusedmm_a(
                S, A, B, p=8, c=2, algorithm="2.5d-sparse-replicate",
                elision="replication-reuse",
            )


class TestReports:
    def test_calls_scale_traffic(self, small_problem):
        S, A, B = small_problem
        _, rep1 = repro.sddmm(S, A, B, p=4, c=2, calls=1)
        _, rep3 = repro.sddmm(S, A, B, p=4, c=2, calls=3)
        assert rep3.comm_words == 3 * rep1.comm_words

    def test_report_has_computation_time(self, small_problem):
        S, A, B = small_problem
        _, report = repro.fusedmm_a(S, A, B, p=4, elision="none")
        assert report.phase_seconds(Phase.COMPUTATION) > 0
        assert report.flops > 0

    def test_modeled_time_positive(self, small_problem):
        S, A, B = small_problem
        _, report = repro.fusedmm_a(S, A, B, p=4, elision="none")
        t = report.modeled_total_seconds(repro.CORI_KNL)
        assert t > 0

"""Communication fidelity: measured traffic must match Table III.

These are the reproduction's core validation tests: for every algorithm x
elision x grid, the words and messages *measured* by the runtime during a
real FusedMM execution equal the paper's analytic formulas — exactly for
the dense terms (the problem sizes divide evenly), and exactly in
expectation for the sparse-chunk terms (the formulas use nnz/p).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.fused import run_fusedmm
from repro.algorithms.registry import make_algorithm
from repro.model.costs import (
    PAPER_COST_ROWS,
    fusedmm_cost,
    fusedmm_cost_paper,
    fusedmm_flops,
    kernel_cost,
)
from repro.sparse.generate import erdos_renyi
from repro.types import Elision, FusedVariant, Phase

M = N = 16 * 24  # divisible by every grid below
R = 48
S = erdos_renyi(M, N, 8, seed=3)
PHI = S.nnz / (N * R)
_rng = np.random.default_rng(0)
A = _rng.standard_normal((M, R))
B = _rng.standard_normal((N, R))

CASES = [
    ("1.5d-dense-shift", Elision.NONE, 8, 2),
    ("1.5d-dense-shift", Elision.REPLICATION_REUSE, 8, 2),
    ("1.5d-dense-shift", Elision.LOCAL_KERNEL_FUSION, 8, 2),
    ("1.5d-dense-shift", Elision.NONE, 16, 4),
    ("1.5d-dense-shift", Elision.LOCAL_KERNEL_FUSION, 16, 2),
    ("1.5d-sparse-shift", Elision.NONE, 8, 2),
    ("1.5d-sparse-shift", Elision.REPLICATION_REUSE, 8, 2),
    ("1.5d-sparse-shift", Elision.REPLICATION_REUSE, 16, 4),
    ("2.5d-dense-replicate", Elision.NONE, 8, 2),
    ("2.5d-dense-replicate", Elision.REPLICATION_REUSE, 8, 2),
    ("2.5d-dense-replicate", Elision.REPLICATION_REUSE, 16, 4),
    ("2.5d-sparse-replicate", Elision.NONE, 8, 2),
    ("2.5d-sparse-replicate", Elision.NONE, 16, 4),
]


def _measure(name, elision, p, c):
    alg = make_algorithm(name, p, c)
    res = run_fusedmm(alg, S, A, B, variant=FusedVariant.FUSED_B, elision=elision)
    rep = res.report
    repl_w = np.mean(
        [pr.counters[Phase.REPLICATION].words_received for pr in rep.per_rank]
    )
    prop_w = np.mean(
        [pr.counters[Phase.PROPAGATION].words_received for pr in rep.per_rank]
    )
    msgs = np.mean(
        [
            pr.counters[Phase.REPLICATION].messages_received
            + pr.counters[Phase.PROPAGATION].messages_received
            for pr in rep.per_rank
        ]
    )
    return repl_w, prop_w, msgs


@pytest.mark.parametrize(
    "name,elision,p,c", CASES, ids=[f"{n}/{e.value}-p{p}c{c}" for n, e, p, c in CASES]
)
class TestMeasuredTrafficMatchesTableIII:
    def test_words_and_messages(self, name, elision, p, c):
        repl_w, prop_w, msgs = _measure(name, elision, p, c)
        model = fusedmm_cost(f"{name}/{elision.value}", N, R, p, c, PHI)
        assert repl_w == pytest.approx(model.replication_words, rel=1e-12, abs=0.6)
        assert prop_w == pytest.approx(model.propagation_words, rel=1e-12, abs=0.6)
        assert msgs == pytest.approx(model.messages, abs=1e-9)


class TestModelInternalConsistency:
    @pytest.mark.parametrize(
        "key",
        [
            "1.5d-dense-shift/replication-reuse",
            "1.5d-dense-shift/local-kernel-fusion",
            "1.5d-sparse-shift/replication-reuse",
            "2.5d-dense-replicate/replication-reuse",
            "2.5d-sparse-replicate/none",
        ],
    )
    @pytest.mark.parametrize("p,c", [(16, 2), (64, 4), (256, 16)])
    def test_breakdown_matches_printed_table(self, key, p, c):
        """Our phase-split formulas sum to the paper's printed Table III."""
        if key.startswith("2.5d"):
            import math

            q = math.isqrt(p // c)
            if q * q * c != p:
                pytest.skip("grid infeasible")
        n, r, phi = 1 << 16, 128, 0.25
        ours = fusedmm_cost(key, n, r, p, c, phi)
        words, msgs = fusedmm_cost_paper(key, n, r, p, c, phi)
        assert ours.words == pytest.approx(words, rel=1e-12)
        assert ours.messages == pytest.approx(msgs, rel=1e-12)

    def test_none_exceeds_reuse(self):
        """Eliding communication can only help."""
        for fam, cs in (
            ("1.5d-dense-shift", (2, 4)),
            ("1.5d-sparse-shift", (2, 4)),
            ("2.5d-dense-replicate", (4, 16)),
        ):
            for c in cs:
                none = fusedmm_cost(f"{fam}/none", 4096, 64, 16, c, 0.2)
                reuse = fusedmm_cost(f"{fam}/replication-reuse", 4096, 64, 16, c, 0.2)
                assert reuse.words <= none.words
                assert reuse.messages <= none.messages

    def test_lkf_halves_propagation(self):
        none = fusedmm_cost("1.5d-dense-shift/none", 4096, 64, 16, 4, 0.2)
        lkf = fusedmm_cost("1.5d-dense-shift/local-kernel-fusion", 4096, 64, 16, 4, 0.2)
        assert lkf.propagation_words == pytest.approx(none.propagation_words / 2)
        assert lkf.replication_words == pytest.approx(none.replication_words)

    def test_all_rows_enumerable(self):
        for key in PAPER_COST_ROWS:
            p, c = (16, 4)
            cost = fusedmm_cost(key, 1024, 32, p, c, 0.1)
            assert cost.words > 0 and cost.messages > 0

    def test_invalid_grid_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            fusedmm_cost("1.5d-dense-shift/none", 100, 8, 8, 3, 0.1)
        with pytest.raises(ReproError):
            fusedmm_cost("2.5d-dense-replicate/none", 100, 8, 8, 1, 0.1)
        with pytest.raises(ReproError):
            fusedmm_cost("bogus/none", 100, 8, 8, 2, 0.1)

    def test_fusedmm_flops(self):
        assert fusedmm_flops(1000, 64, 8) == pytest.approx(4 * 1000 * 64 / 8)

    def test_kernel_cost_is_roughly_half_a_fused_call(self):
        for fam in ("1.5d-dense-shift", "1.5d-sparse-shift"):
            single = kernel_cost(fam, "sddmm", 4096, 64, 16, 4, 0.2)
            fused = fusedmm_cost(f"{fam}/replication-reuse", 4096, 64, 16, 4, 0.2)
            assert single.propagation_words == pytest.approx(fused.propagation_words / 2)


class TestCommunicationSavingsClaims:
    """The paper's headline numbers, at model scale (p = 256).

    'the ratio ... tends to 1/sqrt(2)' — both elision strategies save
    ~30% of communication versus the unoptimized sequence at optimal c.
    """

    def test_elision_saves_about_30_percent_at_p256(self):
        import math

        n, r, p = 1 << 22, 256, 256
        phi = 1 / 8

        def best_words(key):
            from repro.algorithms.registry import feasible_replication_factors

            fam = key.split("/")[0]
            return min(
                fusedmm_cost(key, n, r, p, c, phi).words
                for c in feasible_replication_factors(fam, p)
            )

        none = best_words("1.5d-dense-shift/none")
        reuse = best_words("1.5d-dense-shift/replication-reuse")
        lkf = best_words("1.5d-dense-shift/local-kernel-fusion")
        # asymptotic ratio 1/sqrt(2) ~= 0.707; allow the discrete-c wiggle
        assert reuse / none < 0.78
        assert lkf / none < 0.78
        assert reuse / none > 0.60
        assert lkf / none > 0.60

"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info", "--p", "16"]) == 0
        out = capsys.readouterr().out
        assert "1.5d-dense-shift" in out
        assert "local-kernel-fusion" in out
        assert "[1, 4, 16]" in out  # 2.5D feasibility at p=16

    def test_predict(self, capsys):
        assert main(["predict", "--n", "65536", "--r", "128",
                     "--nnz-per-row", "8", "--p", "64"]) == 0
        out = capsys.readouterr().out
        assert "predicted winner:" in out
        assert "phi=" in out

    def test_predict_low_phi_prefers_sparse_shift(self, capsys):
        main(["predict", "--n", "65536", "--r", "256",
              "--nnz-per-row", "4", "--p", "256"])
        out = capsys.readouterr().out
        assert "predicted winner: 1.5d-sparse-shift" in out

    def test_run_executes(self, capsys):
        assert main(["run", "--n", "256", "--r", "16", "--p", "4",
                     "--algorithm", "1.5d-dense-shift",
                     "--elision", "local-kernel-fusion"]) == 0
        out = capsys.readouterr().out
        assert "output shape: (256, 16)" in out
        assert "modeled time" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

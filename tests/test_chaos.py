"""Chaos suite: deterministic faults against full algorithm sessions.

The CI chaos lane runs this file on its own.  A fixed seed matrix drives
:meth:`FaultPlan.chaos` — crash, drop and straggler faults — across the
four algorithm families under ``deadline_ms`` + ``retries``; every case
must end in a successful retried/degraded result that is bitwise
identical to a clean run (or, for the deliberately unrecoverable cases,
a typed error carrying the blocked-state dump) — never a hang and never
a re-plan.  The thread-leak gate from the stress suite guards every
session here too.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

import repro
from repro.algorithms.base import TAG_SHIFT_B, TAG_SHIFT_SV
from repro.comm_sparse import TAG_SPARSE_AG
from repro.errors import SpmdTimeout
from repro.runtime.faults import FaultPlan, FaultSpec

P = 8
N = 96
R = 8

#: the four algorithm families of the paper, all on p=8 (c=2 grids)
FAMILIES = [
    "1.5d-dense-shift",
    "1.5d-sparse-shift",
    "2.5d-dense-replicate",
    "2.5d-sparse-replicate",
]

#: per-(family, action) chaos seeds: the first seed at or after the
#: deterministic base whose derived fault has the wanted action — a fixed
#: matrix (same seeds every run), yet guaranteed to cover crash x drop x
#: straggler on every family
_SEED_BASES = {family: 100 * i for i, family in enumerate(FAMILIES)}


def _chaos_seed(family: str, action: str) -> int:
    seed = _SEED_BASES[family]
    while FaultPlan.chaos(seed, P).specs[0].action != action:
        seed += 1
    return seed


@pytest.fixture(scope="module")
def workload():
    S = repro.erdos_renyi(N, N, nnz_per_row=5, seed=3)
    rng = np.random.default_rng(4)
    A = rng.standard_normal((N, R))
    B = rng.standard_normal((N, R))
    return S, A, B


@pytest.fixture(scope="module")
def references(workload):
    """Clean fusedmm_a output per family (the bitwise oracle)."""
    S, A, B = workload
    refs = {}
    for family in FAMILIES:
        with repro.plan(
            S, R, p=P, c=2, algorithm=family, comm="dense", overlap="off"
        ) as sess:
            refs[family], _ = sess.fusedmm_a(A, B)
    return refs


class TestChaosMatrix:
    """crash x drop x straggler across the four families."""

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("action", FaultPlan.CHAOS_ACTIONS)
    def test_chaos_case_recovers_bitwise(self, workload, references, family, action):
        S, A, B = workload
        seed = _chaos_seed(family, action)
        plan = repro.FaultPlan.chaos(seed, P)
        baseline = threading.active_count()
        with repro.plan(
            S, R, p=P, c=2, algorithm=family, comm="dense", overlap="off",
            deadline_ms=1200, retries=2, faults=plan,
        ) as sess:
            out, _ = sess.fusedmm_a(A, B)
            np.testing.assert_array_equal(out, references[family])
            rec = sess.metrics()[-1]
            assert rec["outcome"] in ("ok", "retried", "degraded")
            # retry re-executes against the resident distribution; it
            # must never re-plan
            assert sess.plan_builds == 1
            # the session stays usable for a follow-up call (which may
            # consume a yet-unfired fault index and still recover)
            out2, _ = sess.fusedmm_a(A, B)
            np.testing.assert_array_equal(out2, references[family])
            assert sess.plan_builds == 1
        assert threading.active_count() == baseline  # thread-leak gate

    @pytest.mark.parametrize("family", ["1.5d-sparse-shift", "2.5d-sparse-replicate"])
    def test_pool_exhaustion_retries_clean(self, workload, references, family):
        """A simulated allocation failure in the panel BufferPool aborts
        the call; the retry acquires cleanly and matches bitwise."""
        S, A, B = workload
        plan = FaultPlan.exhaust_buffers(rank=0)  # first acquisition fails
        with repro.plan(
            S, R, p=P, c=2, algorithm=family, comm="dense", overlap="off",
            retries=1, faults=plan,
        ) as sess:
            out, _ = sess.fusedmm_a(A, B)
            np.testing.assert_array_equal(out, references[family])
            assert sess.metrics()[-1]["outcome"] == "retried"
            assert sess.retried_calls == 1
            assert plan.fired_log[0][1] == "exhaust"


class TestGracefulDegradation:
    def test_sparse_comm_degrades_to_dense(self, workload, references):
        """A sticky fault on the need-list exchange channel defeats every
        retry; the degraded dense re-run avoids the channel entirely and
        produces the bitwise-identical output."""
        S, A, B = workload
        sticky = FaultPlan([FaultSpec("drop", tag=TAG_SPARSE_AG, times=None)])
        with repro.plan(
            S, R, p=P, c=2, algorithm="1.5d-sparse-shift", comm="sparse",
            overlap="off", deadline_ms=700, retries=1, faults=sticky,
        ) as sess:
            out, _ = sess.fusedmm_a(A, B)
            np.testing.assert_array_equal(out, references["1.5d-sparse-shift"])
            assert sess.metrics()[-1]["outcome"] == "degraded"
            assert sess.degraded_calls == 1
            assert sess.plan_builds == 1

    def test_overlap_degrades_to_synchronous(self, workload, references):
        """A sticky fault on the overlap pipeline's value-shift channel
        (used only by the software pipeline) forces the degraded
        synchronous re-run."""
        S, A, B = workload
        sticky = FaultPlan([FaultSpec("drop", tag=TAG_SHIFT_SV, times=None)])
        with repro.plan(
            S, R, p=P, c=2, algorithm="1.5d-sparse-shift", comm="dense",
            overlap="on", deadline_ms=700, retries=0, faults=sticky,
        ) as sess:
            out, _ = sess.fusedmm_a(A, B)
            np.testing.assert_array_equal(out, references["1.5d-sparse-shift"])
            assert sess.metrics()[-1]["outcome"] == "degraded"
            # the degraded run is one-off: the session's own overlap knob
            # is untouched for later calls
            assert sess.overlap_mode == "on"
            assert sess.alg.overlap is True

    def test_unrecoverable_fault_surfaces_first_error(self, workload):
        """When the conservative path hits the same sticky fault, the
        *first* error (with its dump) surfaces — not the degraded
        attempt's — and the outcome records the timeout."""
        S, A, B = workload
        # TAG_SHIFT_B is the propagation channel of both the overlap and
        # the synchronous dense path: degradation cannot dodge it
        sticky = FaultPlan([FaultSpec("drop", tag=TAG_SHIFT_B, times=None)])
        with repro.plan(
            S, R, p=P, c=2, algorithm="1.5d-dense-shift", comm="dense",
            overlap="on", deadline_ms=500, retries=0, faults=sticky,
        ) as sess:
            with pytest.raises(SpmdTimeout) as err:
                sess.fusedmm_a(A, B)
            assert err.value.dump  # blocked-state dump travels with it
            assert sess.metrics()[-1]["outcome"] == "timeout"
            assert sess.degraded_calls == 0

    def test_user_errors_never_degrade(self, workload):
        """Deterministic user errors are not runtime faults: no retry, no
        degradation, the original error surfaces on attempt one."""
        S, A, B = workload

        def bad_edge(t_rows, b_cols):
            raise ValueError("edge explosion")

        with repro.plan(
            S, R, p=P, c=2, algorithm="1.5d-dense-shift", comm="dense",
            overlap="off", retries=3,
        ) as sess:
            with pytest.raises(RuntimeError, match="edge explosion"):
                sess.sddmm(A, B, edge_op=bad_edge)
            assert sess.retried_calls == 0
            assert sess.degraded_calls == 0
            assert sess.metrics()[-1]["outcome"] == "failed"
            # the session remains usable after the fail-fast surface
            out, _ = sess.spmm_a(B)
            assert out.shape == (N, R)


class TestRetrySemantics:
    def test_retry_is_deterministic_across_runs(self, workload, references):
        """Same plan, same program: the fault fires at the same operation
        and the recovery produces the same bits, run after run."""
        S, A, B = workload

        def one_run():
            plan = FaultPlan.crash_at(site="computation", rank=3, index=1)
            with repro.plan(
                S, R, p=P, c=2, algorithm="2.5d-dense-replicate", comm="dense",
                overlap="off", retries=1, faults=plan,
            ) as sess:
                out, _ = sess.fusedmm_a(A, B)
                return out, tuple(plan.fired_log)

        (out_a, log_a), (out_b, log_b) = one_run(), one_run()
        np.testing.assert_array_equal(out_a, out_b)
        assert log_a == log_b == ((3, "crash", "phase=computation"),)

    def test_exhausted_retries_surface_typed_error(self, workload):
        """More consecutive faults than retries on the conservative path:
        the typed error surfaces (no silent success, no hang)."""
        S, A, B = workload
        plan = FaultPlan([FaultSpec("crash", rank=1, site="computation", times=3)])
        with repro.plan(
            S, R, p=P, c=2, algorithm="1.5d-dense-shift", comm="dense",
            overlap="off", retries=1, faults=plan,
        ) as sess:
            with pytest.raises(RuntimeError, match="injected crash"):
                sess.fusedmm_a(A, B)
            assert sess.metrics()[-1]["outcome"] == "failed"

    def test_metrics_trail_is_complete(self, workload):
        """One record per call — including the failed ones — with the
        outcome/retries fields the chaos lane audits."""
        S, A, B = workload
        plan = FaultPlan.crash_at(site="computation", rank=0)
        with repro.plan(
            S, R, p=P, c=2, algorithm="1.5d-dense-shift", comm="dense",
            overlap="off", retries=1, faults=plan,
        ) as sess:
            sess.fusedmm_a(A, B)  # retried (crash fires once)
            sess.fusedmm_a(A, B)  # clean
            records = sess.metrics()
        assert [r["outcome"] for r in records] == ["retried", "ok"]
        assert [r["retries"] for r in records] == [1, 0]
        assert all("wall_ms" in r and "comm_words" in r for r in records)


class TestMetricsJsonl:
    """The JSONL mirror of the per-call metrics trail (the serving stats
    layer and external log shippers consume this format)."""

    FIELDS = ("call", "label", "outcome", "retries", "wall_ms",
              "comm_words", "comm_messages", "nranks")

    def test_round_trip_one_record_per_call_including_async(self, workload):
        import json

        S, A, B = workload
        with repro.plan(
            S, R, p=P, c=2, algorithm="1.5d-dense-shift", comm="dense",
        ) as sess:
            sess.sddmm(A, B)
            sess.spmm_a_async(B).result()  # async calls are recorded too
            sess.fusedmm_a(A, B)
            lines = sess.metrics_jsonl().splitlines()
            records = [json.loads(line) for line in lines]
            assert records == sess.metrics()  # lossless round-trip
        assert len(records) == 3
        assert [r["outcome"] for r in records] == ["ok", "ok", "ok"]
        assert "sddmm" in records[0]["label"]
        assert "spmm_a" in records[1]["label"]
        for rec in records:
            for fld in self.FIELDS:
                assert fld in rec, f"record missing {fld}"

    def test_outcome_and_retries_under_injected_fault_retry(self, workload):
        import json

        S, A, B = workload
        plan = FaultPlan.crash_at(site="computation", rank=0)
        with repro.plan(
            S, R, p=P, c=2, algorithm="1.5d-dense-shift", comm="dense",
            overlap="off", retries=1, faults=plan,
        ) as sess:
            sess.fusedmm_a(A, B)  # crash fires once -> retried
            sess.fusedmm_a(A, B)  # clean
            records = [
                json.loads(line)
                for line in sess.metrics_jsonl().splitlines()
            ]
        assert [r["outcome"] for r in records] == ["retried", "ok"]
        assert [r["retries"] for r in records] == [1, 0]

"""Lifecycle tests for the persistent SPMD worker pool and its session.

The pool's guarantees, each asserted here:

* an exception in one rank aborts the siblings and is re-raised in the
  driver, and the pool stays **reusable** afterwards;
* ``close()`` joins every rank thread (no leaks) and is idempotent;
* dispatch after close raises;
* pooled sessions produce **bitwise** the same kernel outputs as the
  spawn-per-call wrappers across families x comm modes, while building
  their contexts exactly once per orientation.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

import repro
from repro.errors import ReproError
from repro.runtime.profile import RankProfile
from repro.runtime.spmd import WorkerPool, run_spmd
from repro.types import Phase

from repro.sparse.generate import erdos_renyi


def make_problem(m, n, r, nnz_per_row, seed=0):
    gen = np.random.default_rng(seed)
    S = erdos_renyi(m, n, nnz_per_row, seed=seed)
    return S, gen.standard_normal((m, r)), gen.standard_normal((n, r))


class TestPoolBasics:
    def test_results_in_rank_order(self):
        with WorkerPool(6) as pool:
            results, _ = pool.run(lambda comm: comm.rank * 10)
            assert results == [r * 10 for r in range(6)]

    def test_items_reuse_resident_world(self):
        """Subcommunicators split by one item stay valid for the next."""
        p = 8
        pool = WorkerPool(p)
        ctxs = [None] * p

        def build(comm):
            ctxs[comm.rank] = comm.split(color=comm.rank % 2, key=comm.rank)

        pool.run(build)

        def use(comm):
            layer = ctxs[comm.rank]
            return layer.allreduce_scalar(float(comm.rank))

        results, _ = pool.run(use)
        evens, odds = sum(range(0, p, 2)), sum(range(1, p, 2))
        assert results == [evens if r % 2 == 0 else odds for r in range(p)]
        pool.close()

    def test_matches_run_spmd_bitwise(self):
        def body(comm):
            parts = comm.allgather(np.arange(4) + comm.rank)
            return np.concatenate(parts)

        one_shot, _ = run_spmd(4, body)
        with WorkerPool(4) as pool:
            pooled, _ = pool.run(body)
        for a, b in zip(one_shot, pooled):
            np.testing.assert_array_equal(a, b)

    def test_profiles_rebound_per_item(self):
        """Each item accounts into the profiles passed for that item."""
        pool = WorkerPool(2)

        def body(comm):
            comm.allgather(np.zeros(8))

        first = [RankProfile() for _ in range(2)]
        second = [RankProfile() for _ in range(2)]
        pool.run(body, profiles=first)
        pool.run(body, profiles=second)
        pool.close()
        for prof in (*first, *second):
            assert prof.counters[Phase.OTHER].words_received == 8

    def test_single_rank_runs_inline(self):
        base = threading.active_count()
        with WorkerPool(1) as pool:
            assert threading.active_count() == base
            results, _ = pool.run(lambda comm: comm.allreduce_scalar(3.0))
            assert results == [3.0]


class TestPoolFailure:
    def test_error_aborts_siblings_and_pool_stays_usable(self):
        p = 6
        pool = WorkerPool(p)

        def bad(comm):
            if comm.rank == 3:
                raise ValueError("boom")
            # siblings block on a collective and must unwind via abort
            return comm.allreduce_scalar(1.0)

        with pytest.raises(RuntimeError, match="rank 3 failed.*boom"):
            pool.run(bad)
        # the pool recovered: same ranks, clean world, correct results
        for _ in range(2):
            results, _ = pool.run(lambda comm: comm.allreduce_scalar(1.0))
            assert results == [float(p)] * p
        pool.close()

    def test_lowest_failing_rank_reported(self):
        pool = WorkerPool(4)

        def bad(comm):
            raise RuntimeError(f"r{comm.rank}")

        with pytest.raises(RuntimeError, match="rank 0 failed"):
            pool.run(bad)
        pool.close()

    def test_failure_does_not_leak_messages_into_next_item(self):
        """Undelivered sends from an aborted item must not be received
        by a later item on the same channel."""
        pool = WorkerPool(2)

        def bad(comm):
            if comm.rank == 0:
                comm.send(1, np.array([666.0]), tag=9)
                raise ValueError("after send")
            return None  # rank 1 never receives

        with pytest.raises(RuntimeError):
            pool.run(bad)

        def good(comm):
            if comm.rank == 0:
                comm.send(1, np.array([1.0]), tag=9)
                return 0.0
            return float(comm.recv(0, tag=9)[0])

        results, _ = pool.run(good)
        assert results[1] == 1.0
        pool.close()


class TestPoolClose:
    def test_close_joins_all_threads(self):
        base = threading.active_count()
        pool = WorkerPool(8)
        assert threading.active_count() == base + 8
        pool.run(lambda comm: comm.barrier())
        pool.close()
        assert threading.active_count() == base

    def test_double_close_is_idempotent(self):
        pool = WorkerPool(3)
        pool.close()
        pool.close()

    def test_dispatch_after_close_raises(self):
        pool = WorkerPool(3)
        pool.close()
        with pytest.raises(ReproError, match="closed"):
            pool.run(lambda comm: None)


@pytest.mark.parametrize(
    "name,p,c,comm",
    [
        ("1.5d-dense-shift", 8, 2, "dense"),
        ("1.5d-sparse-shift", 8, 4, "dense"),
        ("1.5d-sparse-shift", 8, 4, "sparse"),
        ("2.5d-dense-replicate", 8, 2, "dense"),
        ("2.5d-sparse-replicate", 8, 2, "sparse"),
    ],
    ids=lambda v: str(v),
)
class TestPoolSessionEquivalence:
    """Pooled sessions vs spawn-per-call sessions: bitwise equal."""

    ELISION = {
        "1.5d-dense-shift": "local-kernel-fusion",
        "1.5d-sparse-shift": "replication-reuse",
        "2.5d-dense-replicate": "none",
        "2.5d-sparse-replicate": "none",
    }

    def test_fused_calls_bitwise(self, name, p, c, comm):
        S, A, B = make_problem(96, 80, 16, 5, seed=11)
        elision = self.ELISION[name]
        kw = dict(p=p, c=c, algorithm=name, elision=elision, comm=comm)
        with repro.plan(S, 16, **kw) as warm, repro.plan(
            S, 16, persistent=False, **kw
        ) as cold:
            for _ in range(3):
                out_w, _ = warm.fusedmm_b(A, B)
                out_c, _ = cold.fusedmm_b(A, B)
                np.testing.assert_array_equal(out_w, out_c)
                out_w, _ = warm.fusedmm_a(A, B)
                out_c, _ = cold.fusedmm_a(A, B)
                np.testing.assert_array_equal(out_w, out_c)

    def test_contexts_built_once_per_orientation(self, name, p, c, comm):
        S, A, B = make_problem(96, 80, 16, 5, seed=11)
        elision = self.ELISION[name]
        with repro.plan(
            S, 16, p=p, c=c, algorithm=name, elision=elision, comm=comm
        ) as sess:
            for _ in range(4):
                sess.fusedmm_a(A, B)
                sess.fusedmm_b(A, B)
            # one make_context per rank per resident orientation, no
            # matter how many kernel calls ran
            assert all(count == p for count in sess.context_builds.values())
            assert 1 <= len(sess.context_builds) <= 2


class TestSessionPoolLifecycle:
    def test_exception_in_kernel_leaves_session_usable(self):
        """A raising edge_op aborts the dispatch; the session (and its
        pool) recover and later calls still produce correct results."""
        S, A, B = make_problem(64, 64, 8, 4, seed=5)
        ref, _ = repro.sddmm(S, A, B, p=4, c=2)
        with repro.plan(S, 8, p=4, c=2, algorithm="1.5d-dense-shift") as sess:
            out, _ = sess.sddmm(A, B)
            np.testing.assert_array_equal(out.vals, ref.vals)

            def bad_edge(t_rows, b_cols):
                raise ValueError("edge explosion")

            with pytest.raises(RuntimeError, match="edge explosion"):
                sess.sddmm(A, B, edge_op=bad_edge)
            out, _ = sess.sddmm(A, B)
            np.testing.assert_array_equal(out.vals, ref.vals)

    def test_close_joins_pool_threads_and_is_idempotent(self):
        S, A, B = make_problem(64, 64, 8, 4, seed=5)
        base = threading.active_count()
        sess = repro.plan(S, 8, p=4, c=2, algorithm="1.5d-dense-shift")
        sess.sddmm(A, B)
        assert threading.active_count() == base + 4
        sess.close()
        sess.close()
        assert threading.active_count() == base
        with pytest.raises(ReproError, match="closed"):
            sess.sddmm(A, B)

    def test_abandoned_session_is_collectable(self):
        """Workers must not pin the last work item: its rank_fn closure
        references the session, and a live thread frame is a GC root —
        an abandoned (never-closed) session must still be collected and
        its __del__ must join the pool threads."""
        import gc
        import weakref

        S, A, B = make_problem(64, 64, 8, 4, seed=5)
        base = threading.active_count()
        sess = repro.plan(S, 8, p=4, c=2, algorithm="1.5d-dense-shift")
        sess.sddmm(A, B)
        ref = weakref.ref(sess)
        del sess
        gc.collect()
        assert ref() is None, "worker threads kept the abandoned session alive"
        assert threading.active_count() == base

    def test_one_shot_wrappers_leak_no_threads(self):
        S, A, B = make_problem(64, 64, 8, 4, seed=5)
        base = threading.active_count()
        repro.fusedmm_a(S, A, B, p=4, c=2, algorithm="1.5d-dense-shift")
        repro.sddmm(S, A, B, p=4, c=2)
        assert threading.active_count() == base

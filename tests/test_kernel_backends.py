"""The kernel-backend seam: registry, guards, calibration, equivalence.

The registry / guard / calibration tests run everywhere (tier-1, no
numba).  The numpy-vs-numba equivalence suite is gated on numba being
installed and runs in the CI ``kernel-backends`` lane.

Bitwise policy under test (see ``repro/kernels/registry.py``):
``spmm_a_block``, ``spmm_b_block``, ``gat_edge_scores`` and opaque-
callable ``sddmm_custom`` must be **bitwise identical** across backends.
``sddmm_coo``, ``spmm_scatter`` and the :class:`GatScoreOp` path of
``sddmm_custom`` carry a documented tolerance: their numpy formulations
reduce through ``np.einsum`` / ``np.add.reduceat`` / BLAS gemv, whose
internal accumulation order is SIMD-width- and library-version-dependent
and cannot be replicated portably; the compiled kernels use a fixed
left-to-right order, so the difference is bounded by ``O(r * eps)`` per
reduced element.
"""

from __future__ import annotations

import importlib.util
import json

import numpy as np
import pytest

import repro
from repro.errors import (
    KernelBackendUnavailableError,
    ReproError,
    UnknownKernelBackendError,
)
from repro.kernels.registry import (
    DISPATCHED_KERNELS,
    KERNEL_BACKENDS,
    available_kernel_backends,
    ensure_kernel_backend_available,
    get_kernel_backend,
    numba_available,
    resolve_kernel_backend,
    validate_kernel_backend_name,
)
from repro.kernels.sddmm import GatScoreOp, gat_edge_scores, sddmm_coo, sddmm_custom
from repro.kernels.spmm import spmm_a_block, spmm_b_block, spmm_scatter
from repro.runtime.profile import RankProfile
from repro.sparse.coo import SparseBlock

HAVE_NUMBA = importlib.util.find_spec("numba") is not None

#: tolerance for the documented-tolerance kernels (r <= 64 here, so the
#: O(r * eps) reduction-order bound sits far below these)
TOL = dict(rtol=1e-11, atol=1e-12)


def backend_profile(name: str) -> RankProfile:
    """A rank profile carrying backend ``name``, warmed for dispatch."""
    prof = RankProfile()
    backend = get_kernel_backend(name)
    if backend is not None:
        backend.warmup()
    prof.kernels = backend
    return prof


# ----------------------------------------------------------------------
# name registry
# ----------------------------------------------------------------------


class TestKernelRegistry:
    def test_registry_contents(self):
        assert KERNEL_BACKENDS == ("numpy", "numba")
        assert set(DISPATCHED_KERNELS) == {
            "sddmm_coo", "sddmm_custom", "gat_edge_scores",
            "spmm_a_block", "spmm_b_block", "spmm_scatter",
        }

    @pytest.mark.parametrize("name", ["numpy", "numba", "NUMPY", " numba ", "auto"])
    def test_known_names_normalize(self, name):
        assert validate_kernel_backend_name(name) in KERNEL_BACKENDS + ("auto",)

    @pytest.mark.parametrize("bad", ["cuda", "cython", "", "np", "numba2"])
    def test_unknown_name_typed_error(self, bad):
        with pytest.raises(UnknownKernelBackendError) as exc:
            validate_kernel_backend_name(bad)
        msg = str(exc.value)
        assert "numpy" in msg and "numba" in msg  # lists the registry

    def test_auto_rejected_when_disallowed(self):
        with pytest.raises(UnknownKernelBackendError):
            validate_kernel_backend_name("auto", allow_auto=False)

    def test_errors_are_repro_errors(self):
        assert issubclass(UnknownKernelBackendError, ReproError)
        assert issubclass(KernelBackendUnavailableError, ReproError)

    def test_numpy_always_available(self):
        ensure_kernel_backend_available("numpy")
        choice = resolve_kernel_backend("numpy")
        assert choice.name == "numpy"
        assert choice.backend is None  # wrappers' inline path
        assert choice.compute_gamma is None  # model keeps assumed gamma

    def test_numba_availability_reflects_import(self):
        assert numba_available() == HAVE_NUMBA
        assert "numpy" in available_kernel_backends()
        assert ("numba" in available_kernel_backends()) == HAVE_NUMBA

    def test_missing_numba_install_hint(self, monkeypatch):
        monkeypatch.setattr(
            "repro.kernels.registry.numba_available", lambda: False
        )
        with pytest.raises(KernelBackendUnavailableError) as exc:
            ensure_kernel_backend_available("numba")
        msg = str(exc.value)
        assert "pip install numba" in msg
        assert "numpy" in msg  # points at the always-available fallback

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba installed here")
    def test_missing_numba_install_hint_real(self):
        with pytest.raises(KernelBackendUnavailableError, match="numba"):
            resolve_kernel_backend("numba")

    def test_backend_numba_imports_without_numba(self):
        # The module must import cleanly so guards raise typed errors,
        # not ImportError, in environments without numba.
        import repro.kernels.backend_numba as bn

        assert bn.NumbaKernels.name == "numba"


# ----------------------------------------------------------------------
# session / api / cli plumbing
# ----------------------------------------------------------------------


class TestSessionKernels:
    def test_plan_rejects_unknown_kernels(self, small_problem):
        S, A, _ = small_problem
        with pytest.raises(UnknownKernelBackendError):
            repro.plan(S, A.shape[1], p=4, c=2, kernels="cuda")

    def test_compiled_kernels_thread_backend_only(self, small_problem):
        """The guard fires before the availability check (so it is
        testable without numba) and before any mpi4py requirement."""
        S, A, _ = small_problem
        with pytest.raises(ReproError, match="thread"):
            repro.plan(S, A.shape[1], p=4, c=2, backend="mpi", kernels="numba")

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba installed here")
    def test_plan_numba_without_numba_hint(self, small_problem):
        S, A, _ = small_problem
        with pytest.raises(KernelBackendUnavailableError, match="numba"):
            repro.plan(S, A.shape[1], p=4, c=2, kernels="numba")

    def test_knob_surfaces(self, small_problem):
        S, A, B = small_problem
        with repro.plan(S, A.shape[1], p=4, c=2) as sess:
            assert sess.kernels == "numpy"
            assert "kernels='numpy'" in repr(sess)
            sess.sddmm(A, B)
            assert sess.metrics()[-1]["kernels"] == "numpy"
            assert sess.report().kernel_backend == "numpy"
            assert "kernels" in sess.report().summary()

    def test_one_shot_kernels_knob(self, small_problem):
        S, A, B = small_problem
        ref, _ = repro.fusedmm_a(S, A, B, p=4, c=2)
        out, rep = repro.fusedmm_a(S, A, B, p=4, c=2, kernels="numpy")
        assert np.array_equal(out, ref)
        assert rep.kernel_backend == "numpy"

    def test_cli_accepts_kernels_flag(self, capsys):
        from repro.cli import main

        assert main(["run", "--n", "128", "--r", "8", "--p", "4",
                     "--algorithm", "1.5d-dense-shift",
                     "--kernels", "numpy"]) == 0
        assert "output shape: (128, 8)" in capsys.readouterr().out


# ----------------------------------------------------------------------
# kernels="auto": measured per-host calibration
# ----------------------------------------------------------------------


class TestAutoCalibration:
    @pytest.fixture
    def cal_env(self, tmp_path, monkeypatch):
        """Point the calibration cache into the test's tmp dir."""
        from repro.model import calibrate as cal

        path = tmp_path / "kernel_calibration.json"
        monkeypatch.setenv(cal.CALIBRATION_ENV, str(path))
        cal._MEMO.clear()
        yield path
        cal._MEMO.clear()

    def test_calibrate_measures_and_caches(self, cal_env):
        from repro.model import calibrate as cal

        doc = cal.calibrate()
        assert doc["host"] == cal.host_key()
        for name in available_kernel_backends():
            entry = doc["backends"][name]
            assert entry["gamma"] > 0
            assert entry["sddmm_ms"] > 0 and entry["spmm_ms"] > 0
        # persisted, and the second call reuses the memo
        assert json.loads(cal_env.read_text())["host"] == doc["host"]
        assert cal.calibrate() is doc

    def test_host_mismatch_remeasures(self, cal_env):
        from repro.model import calibrate as cal

        cal_env.write_text(json.dumps(
            {"host": "someone-else", "backends": {"numpy": {"gamma": 1.0}}}
        ))
        doc = cal.calibrate()
        assert doc["host"] == cal.host_key()  # stale cache replaced
        assert json.loads(cal_env.read_text())["host"] == cal.host_key()

    def test_unwritable_cache_not_fatal(self, tmp_path, monkeypatch):
        from repro.model import calibrate as cal

        blocker = tmp_path / "blocker"
        blocker.write_text("")  # a *file* where the cache dir should be
        monkeypatch.setenv(cal.CALIBRATION_ENV, str(blocker / "cal.json"))
        cal._MEMO.clear()
        try:
            doc = cal.calibrate()
            assert doc["backends"]["numpy"]["gamma"] > 0
        finally:
            cal._MEMO.clear()

    def test_choose_kernel_backend_is_available(self, cal_env):
        from repro.model.calibrate import choose_kernel_backend

        name, gamma = choose_kernel_backend()
        assert name in available_kernel_backends()
        assert gamma > 0

    def test_auto_session_resolves_and_matches(self, cal_env, small_problem):
        S, A, B = small_problem
        ref, _ = repro.fusedmm_a(S, A, B, p=4, c=2)
        out, rep = repro.fusedmm_a(S, A, B, p=4, c=2, kernels="auto")
        assert rep.kernel_backend in available_kernel_backends()
        assert np.allclose(out, ref, **TOL)

    def test_auto_never_raises_without_numba(self, cal_env, monkeypatch):
        """auto considers only available backends: no numba, no error."""
        monkeypatch.setattr(
            "repro.kernels.registry.numba_available", lambda: False
        )
        from repro.model import calibrate as cal

        cal._MEMO.clear()
        name, gamma = cal.choose_kernel_backend()
        assert name == "numpy" and gamma > 0

    def test_auto_gamma_feeds_comm_model(self, cal_env, small_problem):
        """The measured gamma reaches choose_comm_mode: a session planned
        with kernels='auto' and comm='auto' still plans successfully and
        records a dense/sparse decision."""
        S, A, _ = small_problem
        with repro.plan(
            S, A.shape[1], p=4, c=2, algorithm="1.5d-sparse-shift",
            comm="auto", kernels="auto",
        ) as sess:
            assert sess.comm_mode.value in ("dense", "sparse")
            assert sess._compute_gamma is not None and sess._compute_gamma > 0


# ----------------------------------------------------------------------
# satellite fixes: zero-fill semantics, FLOP accounting
# ----------------------------------------------------------------------


class TestSddmmCooOutSemantics:
    def test_fresh_output_each_call(self, rng):
        A = rng.standard_normal((20, 8))
        B = rng.standard_normal((30, 8))
        rows = np.array([0, 5, 19]); cols = np.array([2, 2, 29])
        first = sddmm_coo(A, B, rows, cols)
        second = sddmm_coo(A, B, rows, cols)
        np.testing.assert_array_equal(first, second)

    def test_out_overwritten_unless_accumulate(self, rng):
        A = rng.standard_normal((20, 8))
        B = rng.standard_normal((30, 8))
        rows = np.array([0, 5, 19]); cols = np.array([2, 2, 29])
        ref = sddmm_coo(A, B, rows, cols)
        out = np.full(3, 7.0)
        sddmm_coo(A, B, rows, cols, out=out)
        np.testing.assert_array_equal(out, ref)  # stale contents cleared
        out = np.full(3, 7.0)
        sddmm_coo(A, B, rows, cols, out=out, accumulate=True)
        np.testing.assert_allclose(out, ref + 7.0)


class TestFlopAccounting:
    def test_gat_score_op_flops_per_edge(self):
        op = GatScoreOp(np.zeros(16), np.zeros(16))
        assert op.flops_per_edge == 4 * 16 + 2

    def test_sddmm_custom_flop_resolution(self, rng):
        r = 8
        A = rng.standard_normal((10, r))
        B = rng.standard_normal((10, r))
        rows = np.arange(10); cols = np.arange(10)
        # opaque callable: generic 2r estimate
        prof = RankProfile()
        sddmm_custom(A, B, rows, cols, lambda ga, gb: ga[:, 0] * gb[:, 0],
                     profile=prof)
        assert prof.total().flops == 10 * 2 * r
        # structured op: its own honest count
        prof = RankProfile()
        op = GatScoreOp(rng.standard_normal(r), rng.standard_normal(r))
        sddmm_custom(A, B, rows, cols, op, profile=prof)
        assert prof.total().flops == 10 * op.flops_per_edge
        # explicit argument wins over both
        prof = RankProfile()
        sddmm_custom(A, B, rows, cols, op, flops_per_edge=3, profile=prof)
        assert prof.total().flops == 10 * 3


# ----------------------------------------------------------------------
# numpy-vs-numba equivalence (CI kernel-backends lane)
# ----------------------------------------------------------------------


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
class TestNumbaEquivalence:
    @pytest.fixture(scope="class")
    def profs(self):
        return backend_profile("numpy"), backend_profile("numba")

    @pytest.fixture
    def coords(self, rng):
        m, n, r, nnz = 60, 80, 16, 400
        rows = np.sort(rng.integers(0, m, nnz))
        cols = rng.integers(0, n, nnz)
        A = rng.standard_normal((m, r))
        B = rng.standard_normal((n, r))
        return m, n, rows, cols, A, B

    # -- bitwise-gated kernels -----------------------------------------

    def test_spmm_a_block_bitwise(self, profs, coords, rng):
        np_prof, nb_prof = profs
        m, n, rows, cols, A, B = coords
        block = SparseBlock(rows, cols, rng.standard_normal(len(rows)), (m, n))
        outs = []
        for prof in (np_prof, nb_prof):
            out = np.zeros((m, B.shape[1]))
            spmm_a_block(block, B, out, profile=prof)
            outs.append(out)
        np.testing.assert_array_equal(outs[0], outs[1])

    def test_spmm_a_block_values_override_bitwise(self, profs, coords, rng):
        np_prof, nb_prof = profs
        m, n, rows, cols, A, B = coords
        block = SparseBlock(rows, cols, rng.standard_normal(len(rows)), (m, n))
        vals = rng.standard_normal(len(rows))
        outs = []
        for prof in (np_prof, nb_prof):
            out = np.zeros((m, B.shape[1]))
            spmm_a_block(block, B, out, values=vals, profile=prof)
            outs.append(out)
        np.testing.assert_array_equal(outs[0], outs[1])

    def test_spmm_b_block_bitwise(self, profs, coords, rng):
        np_prof, nb_prof = profs
        m, n, rows, cols, A, B = coords
        block = SparseBlock(rows, cols, rng.standard_normal(len(rows)), (m, n))
        outs = []
        for prof in (np_prof, nb_prof):
            out = np.zeros((n, A.shape[1]))
            spmm_b_block(block, A, out, profile=prof)
            outs.append(out)
        np.testing.assert_array_equal(outs[0], outs[1])

    def test_spmm_empty_block(self, profs):
        _, nb_prof = profs
        block = SparseBlock(np.array([], dtype=np.int64),
                            np.array([], dtype=np.int64),
                            np.array([]), (4, 4))
        out = np.zeros((4, 3))
        spmm_a_block(block, np.ones((4, 3)), out, profile=nb_prof)
        np.testing.assert_array_equal(out, 0.0)

    def test_spmm_duplicate_coordinates_bitwise(self, profs):
        np_prof, nb_prof = profs
        rows = np.array([1, 1, 1, 2]); cols = np.array([0, 0, 1, 1])
        vals = np.array([0.3, -0.7, 2.0, 1.5])
        block = SparseBlock(rows, cols, vals, (4, 2))
        B = np.arange(6.0).reshape(2, 3)
        outs = []
        for prof in (np_prof, nb_prof):
            out = np.zeros((4, 3))
            spmm_a_block(block, B, out, profile=prof)
            outs.append(out)
        np.testing.assert_array_equal(outs[0], outs[1])

    def test_gat_edge_scores_bitwise(self, profs, coords, rng):
        np_prof, nb_prof = profs
        m, n, rows, cols, _, _ = coords
        uL = rng.standard_normal(m); uR = rng.standard_normal(n)
        a = gat_edge_scores(uL, uR, rows, cols, profile=np_prof)
        b = gat_edge_scores(uL, uR, rows, cols, profile=nb_prof)
        np.testing.assert_array_equal(a, b)

    def test_sddmm_custom_opaque_callable_bitwise(self, profs, coords):
        """Opaque callables never dispatch to the compiled backend, so
        equality holds by construction — gated anyway as the contract."""
        np_prof, nb_prof = profs
        _, _, rows, cols, A, B = coords
        op = lambda ga, gb: np.maximum(ga, gb).sum(axis=1)  # noqa: E731
        a = sddmm_custom(A, B, rows, cols, op, profile=np_prof)
        b = sddmm_custom(A, B, rows, cols, op, profile=nb_prof)
        np.testing.assert_array_equal(a, b)

    def test_float32_falls_back_bitwise(self, profs, coords):
        """Non-float64 operands take the numpy path on every backend."""
        np_prof, nb_prof = profs
        _, _, rows, cols, A, B = coords
        A32 = A.astype(np.float32); B32 = B.astype(np.float32)
        a = sddmm_coo(A32, B32, rows, cols, profile=np_prof)
        b = sddmm_coo(A32, B32, rows, cols, profile=nb_prof)
        np.testing.assert_array_equal(a, b)

    # -- documented-tolerance kernels ----------------------------------

    def test_sddmm_coo_tolerance(self, profs, coords, rng):
        np_prof, nb_prof = profs
        _, _, rows, cols, A, B = coords
        a = sddmm_coo(A, B, rows, cols, profile=np_prof)
        b = sddmm_coo(A, B, rows, cols, profile=nb_prof)
        np.testing.assert_allclose(a, b, **TOL)
        # s_vals scaling stays in the wrapper: same tolerance applies
        s = rng.standard_normal(len(rows))
        a = sddmm_coo(A, B, rows, cols, s_vals=s, profile=np_prof)
        b = sddmm_coo(A, B, rows, cols, s_vals=s, profile=nb_prof)
        np.testing.assert_allclose(a, b, **TOL)

    def test_sddmm_coo_col_range_and_accumulate(self, profs, coords):
        np_prof, nb_prof = profs
        _, _, rows, cols, A, B = coords
        outs = []
        for prof in (np_prof, nb_prof):
            out = np.ones(len(rows))
            sddmm_coo(A, B, rows, cols, out=out, accumulate=True,
                      col_range=(4, 12), profile=prof)
            outs.append(out)
        np.testing.assert_allclose(outs[0], outs[1], **TOL)

    def test_spmm_scatter_tolerance(self, profs, coords, rng):
        np_prof, nb_prof = profs
        m, n, rows, cols, _, B = coords
        vals = rng.standard_normal(len(rows))
        outs = []
        for prof in (np_prof, nb_prof):
            out = np.zeros((m, B.shape[1]))
            spmm_scatter(rows, cols, vals, B, out, profile=prof)
            outs.append(out)
        np.testing.assert_allclose(outs[0], outs[1], **TOL)

    def test_sddmm_custom_gat_op_tolerance(self, profs, coords, rng):
        np_prof, nb_prof = profs
        _, _, rows, cols, A, B = coords
        op = GatScoreOp(rng.standard_normal(A.shape[1]),
                        rng.standard_normal(B.shape[1]), 0.2)
        a = sddmm_custom(A, B, rows, cols, op, profile=np_prof)
        b = sddmm_custom(A, B, rows, cols, op, profile=nb_prof)
        np.testing.assert_allclose(a, b, **TOL)

    # -- end to end ----------------------------------------------------

    def test_session_end_to_end(self, small_problem):
        S, A, B = small_problem
        ref, _ = repro.fusedmm_a(S, A, B, p=4, c=2)
        out, rep = repro.fusedmm_a(S, A, B, p=4, c=2, kernels="numba")
        assert rep.kernel_backend == "numba"
        np.testing.assert_allclose(out, ref, **TOL)

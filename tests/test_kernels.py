"""Tests for the local kernels: SDDMM, SpMM, fused, tiled variants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.blocked import tiled_sddmm, tiled_spmm
from repro.kernels.fused import fusedmm_local, fusedmm_reference
from repro.kernels.sddmm import (
    gat_edge_scores,
    make_gat_operands,
    sddmm_coo,
    sddmm_custom,
)
from repro.kernels.spmm import spmm_a_block, spmm_b_block, spmm_flops, spmm_scatter
from repro.runtime.profile import RankProfile
from repro.sparse.coo import SparseBlock
from repro.sparse.generate import erdos_renyi


@pytest.fixture
def problem(rng):
    m, n, r = 40, 35, 12
    S = erdos_renyi(m, n, 5, seed=11)
    A = rng.standard_normal((m, r))
    B = rng.standard_normal((n, r))
    blk = SparseBlock(S.rows, S.cols, S.vals, S.shape)
    ref_dots = np.einsum("ij,ij->i", A[S.rows], B[S.cols])
    return S, A, B, blk, ref_dots


class TestSddmm:
    def test_matches_dense_reference(self, problem):
        S, A, B, blk, ref = problem
        got = sddmm_coo(A, B, S.rows, S.cols)
        np.testing.assert_allclose(got, ref)

    def test_values_multiply(self, problem):
        S, A, B, blk, ref = problem
        got = sddmm_coo(A, B, S.rows, S.cols, s_vals=S.vals)
        np.testing.assert_allclose(got, S.vals * ref)

    def test_accumulate_into_out(self, problem):
        S, A, B, blk, ref = problem
        out = np.ones(S.nnz)
        sddmm_coo(A, B, S.rows, S.cols, out=out, accumulate=True)
        np.testing.assert_allclose(out, 1.0 + ref)

    def test_out_without_accumulate_overwrites(self, problem):
        S, A, B, blk, ref = problem
        out = np.full(S.nnz, 99.0)
        sddmm_coo(A, B, S.rows, S.cols, out=out, accumulate=False)
        np.testing.assert_allclose(out, ref)

    def test_col_range_partials_sum_to_total(self, problem):
        S, A, B, blk, ref = problem
        r = A.shape[1]
        acc = np.zeros(S.nnz)
        for k0 in range(0, r, 4):
            sddmm_coo(A, B, S.rows, S.cols, out=acc, accumulate=True, col_range=(k0, k0 + 4))
        np.testing.assert_allclose(acc, ref)

    def test_chunking_path(self, problem, monkeypatch):
        import repro.kernels.sddmm as mod

        S, A, B, blk, ref = problem
        monkeypatch.setattr(mod, "_CHUNK", 7)
        got = sddmm_coo(A, B, S.rows, S.cols)
        np.testing.assert_allclose(got, ref)

    def test_flop_accounting(self, problem):
        S, A, B, blk, _ = problem
        prof = RankProfile()
        sddmm_coo(A, B, S.rows, S.cols, profile=prof)
        assert prof.total().flops == 2 * S.nnz * A.shape[1]

    def test_empty_nnz(self, rng):
        A = rng.standard_normal((4, 3))
        e = np.empty(0, np.int64)
        out = sddmm_coo(A, A, e, e)
        assert out.shape == (0,)

    @given(r=st.integers(1, 20), seed=st.integers(0, 1 << 16))
    @settings(max_examples=50, deadline=None)
    def test_property_sddmm_is_bilinear(self, r, seed):
        rng = np.random.default_rng(seed)
        m, n = 15, 12
        S = erdos_renyi(m, n, 3, seed=seed)
        A1 = rng.standard_normal((m, r))
        A2 = rng.standard_normal((m, r))
        B = rng.standard_normal((n, r))
        lhs = sddmm_coo(A1 + A2, B, S.rows, S.cols)
        rhs = sddmm_coo(A1, B, S.rows, S.cols) + sddmm_coo(A2, B, S.rows, S.cols)
        np.testing.assert_allclose(lhs, rhs, atol=1e-10)


class TestSddmmCustom:
    def test_custom_dot_equals_plain(self, problem):
        S, A, B, blk, ref = problem
        got = sddmm_custom(
            A, B, S.rows, S.cols, lambda a, b: np.einsum("ij,ij->i", a, b)
        )
        np.testing.assert_allclose(got, ref)

    def test_gat_edge_scores(self, rng):
        S = erdos_renyi(20, 20, 3, seed=0)
        uL = rng.standard_normal(20)
        uR = rng.standard_normal(20)
        got = gat_edge_scores(uL, uR, S.rows, S.cols, negative_slope=0.2)
        raw = uL[S.rows] + uR[S.cols]
        ref = np.where(raw >= 0, raw, 0.2 * raw)
        np.testing.assert_allclose(got, ref)

    def test_gat_operands_reduce_to_sddmm(self, rng):
        """The paper's claim: GAT scores are an SDDMM with width-2 operands."""
        S = erdos_renyi(25, 25, 4, seed=1)
        uL = rng.standard_normal(25)
        uR = rng.standard_normal(25)
        A2, B2 = make_gat_operands(uL, uR)
        via_sddmm = sddmm_coo(A2, B2, S.rows, S.cols)
        np.testing.assert_allclose(via_sddmm, uL[S.rows] + uR[S.cols])


class TestSpmm:
    def test_spmm_a(self, problem):
        S, A, B, blk, _ = problem
        out = np.zeros((S.nrows, B.shape[1]))
        spmm_a_block(blk, B, out)
        np.testing.assert_allclose(out, S.to_scipy() @ B)

    def test_spmm_a_accumulates(self, problem):
        S, A, B, blk, _ = problem
        out = np.ones((S.nrows, B.shape[1]))
        spmm_a_block(blk, B, out)
        np.testing.assert_allclose(out, 1.0 + S.to_scipy() @ B)

    def test_spmm_b(self, problem):
        S, A, B, blk, _ = problem
        out = np.zeros((S.ncols, A.shape[1]))
        spmm_b_block(blk, A, out)
        np.testing.assert_allclose(out, S.to_scipy().T @ A)

    def test_value_override(self, problem):
        S, A, B, blk, _ = problem
        alt = np.arange(S.nnz, dtype=float)
        out = np.zeros((S.nrows, B.shape[1]))
        spmm_a_block(blk, B, out, values=alt)
        ref = S.with_values(alt).to_scipy() @ B
        np.testing.assert_allclose(out, ref)

    def test_spmm_scatter(self, problem):
        S, A, B, blk, _ = problem
        out = np.zeros((S.nrows, B.shape[1]))
        spmm_scatter(S.rows, S.cols, S.vals, B, out)
        np.testing.assert_allclose(out, S.to_scipy() @ B)

    def test_spmm_scatter_empty(self, rng):
        out = np.zeros((3, 2))
        e = np.empty(0, np.int64)
        spmm_scatter(e, e, np.empty(0), rng.standard_normal((3, 2)), out)
        np.testing.assert_allclose(out, 0)

    def test_spmm_scatter_duplicate_rows_sum(self, rng):
        B = rng.standard_normal((4, 3))
        rows = np.array([1, 1, 1], dtype=np.int64)
        cols = np.array([0, 2, 3], dtype=np.int64)
        vals = np.array([1.0, 2.0, 3.0])
        out = np.zeros((2, 3))
        spmm_scatter(rows, cols, vals, B, out)
        np.testing.assert_allclose(out[1], B[0] + 2 * B[2] + 3 * B[3])
        np.testing.assert_allclose(out[0], 0)

    def test_flops(self):
        assert spmm_flops(100, 8) == 1600


class TestFusedLocal:
    def test_matches_two_step_reference(self, problem):
        S, A, B, blk, _ = problem
        out = np.zeros((S.nrows, B.shape[1]))
        fusedmm_local(A, B, blk, out)
        ref = fusedmm_reference(S.rows, S.cols, S.vals, A, B, S.shape, "a")
        np.testing.assert_allclose(out, ref)

    def test_returns_sddmm_when_asked(self, problem):
        S, A, B, blk, ref_dots = problem
        out = np.zeros((S.nrows, B.shape[1]))
        r_vals = fusedmm_local(A, B, blk, out, return_sddmm=True)
        np.testing.assert_allclose(r_vals, S.vals * ref_dots)

    def test_pattern_only(self, problem):
        S, A, B, blk, ref_dots = problem
        out = np.zeros((S.nrows, B.shape[1]))
        r_vals = fusedmm_local(A, B, blk, out, use_values=False, return_sddmm=True)
        np.testing.assert_allclose(r_vals, ref_dots)

    def test_empty_block(self, rng):
        e = np.empty(0, np.int64)
        blk = SparseBlock(e, e, np.empty(0), (3, 3))
        out = np.zeros((3, 2))
        assert fusedmm_local(rng.standard_normal((3, 2)), rng.standard_normal((3, 2)), blk, out) is None

    def test_fusedmm_reference_variant_b(self, problem):
        S, A, B, blk, ref_dots = problem
        got = fusedmm_reference(S.rows, S.cols, S.vals, A, B, S.shape, "b")
        R = S.with_values(S.vals * ref_dots)
        np.testing.assert_allclose(got, R.to_scipy().T @ A)

    def test_fusedmm_reference_bad_variant(self, problem):
        S, A, B, blk, _ = problem
        with pytest.raises(ValueError):
            fusedmm_reference(S.rows, S.cols, S.vals, A, B, S.shape, "c")


class TestTiledKernels:
    @pytest.mark.parametrize("tile", [1, 4, 16, 1000])
    def test_tiled_spmm(self, problem, tile):
        S, A, B, blk, _ = problem
        out = np.zeros((S.nrows, B.shape[1]))
        tiled_spmm(blk, B, out, tile_cols=tile)
        np.testing.assert_allclose(out, S.to_scipy() @ B)

    @pytest.mark.parametrize("tile", [1, 4, 16, 1000])
    def test_tiled_sddmm(self, problem, tile):
        S, A, B, blk, ref = problem
        got = tiled_sddmm(A, B, blk, tile_cols=tile)
        np.testing.assert_allclose(got, S.vals * ref)

    def test_tiled_sddmm_pattern_only(self, problem):
        S, A, B, blk, ref = problem
        got = tiled_sddmm(A, B, blk, tile_cols=8, use_values=False)
        np.testing.assert_allclose(got, ref)

    def test_tiled_empty(self, rng):
        e = np.empty(0, np.int64)
        blk = SparseBlock(e, e, np.empty(0), (5, 5))
        out = np.zeros((5, 2))
        tiled_spmm(blk, rng.standard_normal((5, 2)), out)
        np.testing.assert_allclose(out, 0)
        assert tiled_sddmm(rng.standard_normal((5, 2)), rng.standard_normal((5, 2)), blk).shape == (0,)

"""Tests for the distributed ALS application."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.als import DistributedALS, _batched_cg
from repro.errors import ReproError
from repro.sparse.coo import CooMatrix
from repro.sparse.generate import erdos_renyi
from repro.types import Elision, Phase


@pytest.fixture
def completion_problem():
    """Noiseless low-rank observations: ALS should fit them well."""
    rng = np.random.default_rng(0)
    m, n, r = 120, 90, 6
    At = rng.standard_normal((m, r))
    Bt = rng.standard_normal((n, r))
    pat = erdos_renyi(m, n, 14, seed=1)
    vals = np.einsum("ij,ij->i", At[pat.rows], Bt[pat.cols])
    return CooMatrix(pat.rows, pat.cols, vals, (m, n), dedupe=False), r, vals


VARIANTS = [
    ("1.5d-dense-shift", Elision.LOCAL_KERNEL_FUSION, 4, 2),
    ("1.5d-dense-shift", Elision.REPLICATION_REUSE, 4, 2),
    ("1.5d-sparse-shift", Elision.REPLICATION_REUSE, 6, 2),
]


class TestConvergence:
    @pytest.mark.parametrize(
        "alg,el,p,c", VARIANTS, ids=[f"{a}/{e.value}" for a, e, p, c in VARIANTS]
    )
    def test_loss_decreases_and_fits(self, alg, el, p, c, completion_problem):
        C, r, vals = completion_problem
        als = DistributedALS(p=p, c=c, algorithm=alg, elision=el, lam=0.01, cg_iters=10)
        res = als.run(C, r, outer_iters=4, seed=3)
        assert len(res.loss_history) == 4
        assert res.loss_history[0] > res.loss_history[-1]
        pred = np.einsum("ij,ij->i", res.A[C.rows], res.B[C.cols])
        rel = np.linalg.norm(pred - vals) / np.linalg.norm(vals)
        assert rel < 0.35

    def test_variants_agree(self, completion_problem):
        """All algorithm/elision variants compute the same iteration."""
        C, r, _ = completion_problem
        losses = []
        for alg, el, p, c in VARIANTS:
            als = DistributedALS(p=p, c=c, algorithm=alg, elision=el, lam=0.05, cg_iters=5)
            res = als.run(C, r, outer_iters=2, seed=9)
            losses.append(res.loss_history)
        for other in losses[1:]:
            np.testing.assert_allclose(losses[0], other, rtol=1e-6)

    def test_serial_single_rank(self, completion_problem):
        C, r, _ = completion_problem
        als = DistributedALS(p=1, c=1, lam=0.05, cg_iters=5)
        res = als.run(C, r, outer_iters=1, seed=2)
        assert res.A.shape == (C.nrows, r)
        assert res.B.shape == (C.ncols, r)


class TestCostAccounting:
    def test_sessions_amortize_sparse_distribution(self, completion_problem, monkeypatch):
        """The handle-based driver runs all CG FusedMM calls against
        resident distributions: the sparse operand is partitioned at most
        once per session orientation (2 sessions x {forward, transposed}),
        never per matvec."""
        from repro.algorithms.sparse_shift_15d import SparseShift15D

        calls = {"n": 0}
        orig = SparseShift15D.distribute_sparse

        def counting(self, plan, S):
            calls["n"] += 1
            return orig(self, plan, S)

        monkeypatch.setattr(SparseShift15D, "distribute_sparse", counting)
        C, r, _ = completion_problem
        als = DistributedALS(
            p=4, c=2, algorithm="1.5d-sparse-shift",
            elision=Elision.REPLICATION_REUSE, cg_iters=4,
        )
        als.run(C, r, outer_iters=2, seed=0, track_loss=False)
        # 2 sweeps x (11 + 11) matvecs + 2 rhs queries, yet <= 4 distributions
        assert calls["n"] <= 4

    def test_report_contains_fusedmm_phases(self, completion_problem):
        C, r, _ = completion_problem
        als = DistributedALS(p=4, c=2, cg_iters=3)
        rep = als.run(C, r, outer_iters=1, seed=0).report
        assert rep.phase_words(Phase.REPLICATION) > 0
        assert rep.phase_words(Phase.PROPAGATION) > 0
        assert rep.phase_flops(Phase.COMPUTATION) > 0


class TestValidation:
    def test_rejects_25d(self):
        with pytest.raises(ReproError):
            DistributedALS(p=8, c=2, algorithm="2.5d-dense-replicate")

    def test_sparse_shift_requires_reuse(self):
        with pytest.raises(ReproError):
            DistributedALS(
                p=4, c=2, algorithm="1.5d-sparse-shift",
                elision=Elision.LOCAL_KERNEL_FUSION,
            )


class TestBatchedCG:
    def test_solves_diagonal_systems(self, rng):
        """Per-row systems M_i = d_i I are solved exactly in one step."""
        rows, r = 50, 6
        d = rng.uniform(1, 2, rows)

        def matvec(x):
            return d[:, None] * x

        def rowdot(x, y):
            return np.einsum("ij,ij->i", x, y)

        rhs = rng.standard_normal((rows, r))
        x = _batched_cg(rhs, matvec, rowdot, np.zeros_like(rhs), iters=2)
        np.testing.assert_allclose(x, rhs / d[:, None], rtol=1e-8)

    def test_zero_rows_stay_zero(self, rng):
        def matvec(x):
            return x

        def rowdot(x, y):
            return np.einsum("ij,ij->i", x, y)

        rhs = np.zeros((5, 3))
        x = _batched_cg(rhs, matvec, rowdot, np.zeros_like(rhs), iters=3)
        np.testing.assert_allclose(x, 0)


class TestRecommendTopK:
    """The serving scoring path: top-k over the factor product."""

    @pytest.fixture
    def factors(self):
        rng = np.random.default_rng(5)
        n_users, n_items, d = 30, 25, 4
        U = rng.standard_normal((n_users, d))
        F = rng.standard_normal((n_items, d))
        seen = erdos_renyi(n_users, n_items, 5, seed=6)
        return U, F, seen

    def test_matches_dense_reference(self, factors):
        from repro.apps.als import recommend_topk

        U, F, seen = factors
        users = [0, 7, 19, 7]
        items, vals = recommend_topk(U, F, users, 6, seen=seen)
        scores = F @ U[users].T
        for i, u in enumerate(users):
            col = scores[:, i].copy()
            col[seen.cols[seen.rows == u]] = -np.inf
            order = np.argsort(-col, kind="stable")[:6]
            assert np.array_equal(items[i], order)
            np.testing.assert_array_equal(vals[i], col[order])

    def test_exclude_toggle_and_k_clamp(self, factors):
        from repro.apps.als import recommend_topk

        U, F, seen = factors
        n_items = F.shape[0]
        items, vals = recommend_topk(
            U, F, [3], 999, seen=seen, exclude_seen=False
        )
        # k clamps to the item count; without masking the result is a
        # full permutation with descending scores
        assert items.shape == (1, n_items)
        assert sorted(items[0]) == list(range(n_items))
        assert np.all(np.diff(vals[0]) <= 0)

    def test_masked_tail_carries_neg_inf(self):
        from repro.apps.als import recommend_topk

        rng = np.random.default_rng(8)
        U = rng.standard_normal((2, 3))
        F = rng.standard_normal((6, 3))
        # user 0 has seen every item except 1 and 4
        cols = np.array([0, 2, 3, 5])
        seen = CooMatrix(
            np.zeros(4, dtype=np.int64), cols, np.ones(4), (2, 6)
        )
        items, vals = recommend_topk(U, F, [0], 5, seen=seen)
        assert set(items[0][:2]) == {1, 4}  # the only unseen items lead
        assert np.all(np.isneginf(vals[0][2:]))

    def test_precomputed_scores_panel_is_validated(self, factors):
        from repro.apps.als import recommend_topk

        U, F, _ = factors
        good = F @ U[[0, 1]].T
        items, _ = recommend_topk(U, F, [0, 1], 3, scores=good,
                                  exclude_seen=False)
        assert items.shape == (2, 3)
        with pytest.raises(ReproError, match="scores panel"):
            recommend_topk(U, F, [0, 1], 3, scores=good[:, :1])

"""Tests for per-rank cost accounting and run reports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime.cost import CORI_KNL, GENERIC_CLUSTER, MachineParams
from repro.runtime.profile import PhaseCounters, RankProfile, RunReport
from repro.types import Phase


def make_profile(phase_words):
    p = RankProfile()
    for phase, (words, msgs) in phase_words.items():
        p.counters[phase].words_received = words
        p.counters[phase].messages_received = msgs
    return p


class TestRankProfile:
    def test_track_accumulates_time(self):
        p = RankProfile()
        with p.track(Phase.COMPUTATION):
            sum(range(1000))
        assert p.counters[Phase.COMPUTATION].seconds > 0

    def test_track_nesting_restores_phase(self):
        p = RankProfile()
        with p.track(Phase.COMPUTATION):
            with p.track(Phase.PROPAGATION):
                assert p.phase == Phase.PROPAGATION
            assert p.phase == Phase.COMPUTATION
        assert p.phase == Phase.OTHER

    def test_traffic_attributed_to_active_phase(self):
        p = RankProfile()
        with p.track(Phase.REPLICATION):
            p.on_recv(100)
        p.on_recv(7)  # outside any block -> OTHER
        assert p.counters[Phase.REPLICATION].words_received == 100
        assert p.counters[Phase.OTHER].words_received == 7

    def test_flops_attribution(self):
        p = RankProfile()
        with p.track(Phase.COMPUTATION):
            p.add_flops(500)
        assert p.counters[Phase.COMPUTATION].flops == 500
        assert p.total().flops == 500

    def test_total_merges_all_phases(self):
        p = RankProfile()
        p.counters[Phase.REPLICATION].words_received = 3
        p.counters[Phase.PROPAGATION].words_received = 4
        assert p.total().words_received == 7


class TestRunReport:
    def test_phase_words_takes_max_over_ranks(self):
        report = RunReport(
            per_rank=[
                make_profile({Phase.PROPAGATION: (10, 1)}),
                make_profile({Phase.PROPAGATION: (30, 2)}),
            ]
        )
        assert report.phase_words(Phase.PROPAGATION) == 30
        assert report.phase_messages(Phase.PROPAGATION) == 2

    def test_comm_words_sums_comm_phases(self):
        report = RunReport(
            per_rank=[
                make_profile({Phase.REPLICATION: (5, 1), Phase.PROPAGATION: (10, 2)})
            ]
        )
        assert report.comm_words == 15
        assert report.comm_messages == 3

    def test_modeled_comm_seconds(self):
        machine = MachineParams(alpha=1e-6, beta=1e-9, gamma=1e-11)
        report = RunReport(per_rank=[make_profile({Phase.PROPAGATION: (1000, 10)})])
        t = report.modeled_comm_seconds(machine)
        assert t == pytest.approx(10 * 1e-6 + 1000 * 1e-9)

    def test_modeled_compute_seconds(self):
        machine = MachineParams(alpha=0, beta=0, gamma=2e-11)
        p = RankProfile()
        p.add_flops(1_000_000)
        report = RunReport(per_rank=[p])
        assert report.modeled_compute_seconds(machine) == pytest.approx(2e-5)

    def test_merged_with_accumulates(self):
        a = RunReport(per_rank=[make_profile({Phase.PROPAGATION: (10, 1)})])
        b = RunReport(per_rank=[make_profile({Phase.PROPAGATION: (20, 2)})])
        merged = a.merged_with(b)
        assert merged.phase_words(Phase.PROPAGATION) == 30

    def test_merged_with_mismatched_ranks(self):
        a = RunReport(per_rank=[RankProfile()])
        b = RunReport(per_rank=[RankProfile(), RankProfile()])
        with pytest.raises(ValueError):
            a.merged_with(b)

    def test_summary_renders(self):
        report = RunReport(per_rank=[RankProfile()], label="demo")
        text = report.summary()
        assert "demo" in text
        for ph in Phase:
            assert ph.value in text


class TestMachineParams:
    def test_presets_are_sane(self):
        for machine in (CORI_KNL, GENERIC_CLUSTER):
            assert machine.alpha > machine.beta > 0
            assert machine.gamma > 0
            assert machine.words_per_second() == pytest.approx(1 / machine.beta)
            assert machine.flops_per_second() == pytest.approx(1 / machine.gamma)

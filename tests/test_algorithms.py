"""Correctness of all four distributed algorithm families.

Every unified kernel mode and every FusedMM strategy is compared against
the serial references over a matrix of (p, c) grids, including ragged
block sizes (dimensions not divisible by p) and rectangular S.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.dense_repl_25d import DenseReplicate25D
from repro.algorithms.dense_shift_15d import DenseShift15D
from repro.algorithms.sparse_repl_25d import SparseReplicate25D
from repro.algorithms.sparse_shift_15d import SparseShift15D
from repro.baselines.serial import (
    fusedmm_a_serial,
    fusedmm_b_serial,
    sddmm_serial,
    spmm_a_serial,
    spmm_b_serial,
)
from repro.errors import DistributionError
from repro.sparse.generate import erdos_renyi

from tests.helpers import dist_fused, dist_sddmm, dist_spmm_a, dist_spmm_b

GRIDS_15D = [(1, 1), (4, 1), (4, 2), (6, 3), (8, 4), (8, 8)]
GRIDS_25D = [(1, 1), (4, 1), (8, 2), (9, 1), (16, 4), (12, 3)]

CASES = (
    [(DenseShift15D, p, c) for (p, c) in GRIDS_15D]
    + [(SparseShift15D, p, c) for (p, c) in GRIDS_15D]
    + [(DenseReplicate25D, p, c) for (p, c) in GRIDS_25D]
    + [(SparseReplicate25D, p, c) for (p, c) in GRIDS_25D]
)


def _id(case):
    cls, p, c = case
    return f"{cls.name}-p{p}-c{c}"


@pytest.fixture(params=CASES, ids=_id)
def alg(request):
    cls, p, c = request.param
    return cls(p, c)


class TestUnifiedKernelModes:
    def test_sddmm(self, alg, small_problem):
        S, A, B = small_problem
        got = dist_sddmm(alg, S, A, B)
        np.testing.assert_allclose(got.vals, sddmm_serial(S, A, B).vals, rtol=1e-9)

    def test_spmm_a(self, alg, small_problem):
        S, A, B = small_problem
        got = dist_spmm_a(alg, S, B)
        np.testing.assert_allclose(got, spmm_a_serial(S, B), rtol=1e-9, atol=1e-12)

    def test_spmm_b(self, alg, small_problem):
        S, A, B = small_problem
        got = dist_spmm_b(alg, S, A)
        np.testing.assert_allclose(got, spmm_b_serial(S, A), rtol=1e-9, atol=1e-12)

    def test_fused_none_a(self, alg, small_problem):
        S, A, B = small_problem
        got = dist_fused(alg, S, A, B, "rank_fusedmm_none_a", "a")
        np.testing.assert_allclose(got, fusedmm_a_serial(S, A, B), rtol=1e-9, atol=1e-12)

    def test_fused_none_b(self, alg, small_problem):
        S, A, B = small_problem
        got = dist_fused(alg, S, A, B, "rank_fusedmm_none_b", "b")
        np.testing.assert_allclose(got, fusedmm_b_serial(S, A, B), rtol=1e-9, atol=1e-12)


class TestElisionStrategies:
    def test_replication_reuse_matches_fused_b(self, alg, small_problem):
        if not hasattr(alg, "rank_fusedmm_reuse"):
            pytest.skip("family does not support replication reuse")
        S, A, B = small_problem
        got = dist_fused(alg, S, A, B, "rank_fusedmm_reuse", "b")
        np.testing.assert_allclose(got, fusedmm_b_serial(S, A, B), rtol=1e-9, atol=1e-12)

    def test_local_kernel_fusion_matches_fused_a(self, alg, small_problem):
        if not hasattr(alg, "rank_fusedmm_lkf"):
            pytest.skip("family does not support local kernel fusion")
        S, A, B = small_problem
        got = dist_fused(alg, S, A, B, "rank_fusedmm_lkf", "a")
        np.testing.assert_allclose(got, fusedmm_a_serial(S, A, B), rtol=1e-9, atol=1e-12)


class TestDistributionRoundTrip:
    """Table II conformance: distribute + collect is the identity."""

    def test_dense_roundtrip(self, alg, small_problem):
        S, A, B = small_problem
        plan = alg.plan(S.nrows, S.ncols, A.shape[1])
        locals_ = alg.distribute(plan, S, A, B)
        np.testing.assert_allclose(alg.collect_dense_a(plan, locals_), A)
        np.testing.assert_allclose(alg.collect_dense_b(plan, locals_), B)

    def test_sparse_values_roundtrip(self, alg, small_problem):
        """Every nonzero is assigned somewhere exactly once."""
        S, A, B = small_problem
        plan = alg.plan(S.nrows, S.ncols, A.shape[1])
        locals_ = alg.distribute(plan, S, A, B)
        if hasattr(locals_[0], "gidx") and isinstance(locals_[0].gidx, dict):
            all_gidx = np.concatenate(
                [g for loc in locals_ for g in loc.gidx.values()]
                or [np.empty(0, np.int64)]
            )
        else:
            seen = []
            for loc in locals_:
                g = loc.gidx
                if len(g):
                    # 2.5D sparse replicate: coords replicated along fiber;
                    # count each block once (at z == 0)
                    if hasattr(loc, "z") and hasattr(loc, "val_bounds"):
                        if loc.z != 0:
                            continue
                    seen.append(g)
            all_gidx = np.concatenate(seen) if seen else np.empty(0, np.int64)
        np.testing.assert_array_equal(np.sort(all_gidx), np.arange(S.nnz))

    def test_shape_mismatch_raises(self, alg, small_problem):
        S, A, B = small_problem
        plan = alg.plan(S.nrows + 1, S.ncols, A.shape[1])
        with pytest.raises(DistributionError):
            alg.distribute(plan, S, None, None)


class TestEdgeCases:
    @pytest.fixture(params=[(DenseShift15D, 4, 2), (SparseShift15D, 4, 2),
                            (DenseReplicate25D, 8, 2), (SparseReplicate25D, 8, 2)],
                    ids=lambda c: c[0].name)
    def alg4(self, request):
        cls, p, c = request.param
        return cls(p, c)

    def test_empty_sparse_matrix(self, alg4, rng):
        from repro.sparse.coo import CooMatrix

        e = np.empty(0, np.int64)
        S = CooMatrix(e, e, np.empty(0), (40, 40))
        A = rng.standard_normal((40, 8))
        got = dist_spmm_b(alg4, S, A)
        np.testing.assert_allclose(got, 0)

    def test_single_nonzero(self, alg4, rng):
        from repro.sparse.coo import CooMatrix

        S = CooMatrix(np.array([17]), np.array([23]), np.array([2.0]), (40, 40))
        A = rng.standard_normal((40, 8))
        B = rng.standard_normal((40, 8))
        got = dist_fused(alg4, S, A, B, "rank_fusedmm_none_a", "a")
        np.testing.assert_allclose(got, fusedmm_a_serial(S, A, B), atol=1e-12)

    def test_tiny_dimensions_smaller_than_grid(self, alg4, rng):
        """m, n smaller than p: many empty blocks."""
        S = erdos_renyi(3, 5, 2, seed=1)
        A = rng.standard_normal((3, 4))
        B = rng.standard_normal((5, 4))
        got = dist_fused(alg4, S, A, B, "rank_fusedmm_none_b", "b")
        np.testing.assert_allclose(got, fusedmm_b_serial(S, A, B), atol=1e-12)

    def test_r_smaller_than_layer_count(self, rng):
        """r < p/c exercises empty r-strips in the sparse-shifting layout."""
        alg = SparseShift15D(8, 1)
        S = erdos_renyi(30, 30, 3, seed=2)
        A = rng.standard_normal((30, 3))
        B = rng.standard_normal((30, 3))
        got = dist_fused(alg, S, A, B, "rank_fusedmm_reuse", "b")
        np.testing.assert_allclose(got, fusedmm_b_serial(S, A, B), atol=1e-12)

    def test_dense_column_matrix(self, alg4, rng):
        """r = 1 (a sparse matrix-vector-ish extreme)."""
        S = erdos_renyi(25, 30, 4, seed=3)
        A = rng.standard_normal((25, 1))
        B = rng.standard_normal((30, 1))
        got = dist_spmm_a(alg4, S, B)
        np.testing.assert_allclose(got, spmm_a_serial(S, B), atol=1e-12)


class TestRepeatedCalls:
    """Kernels must be re-runnable on the same local state (apps do this)."""

    def test_sddmm_idempotent_on_locals(self, square_problem):
        from repro.types import Mode
        from tests.helpers import run_rank_method

        S, A, B = square_problem
        alg = DenseShift15D(4, 2)
        plan = alg.plan(S.nrows, S.ncols, A.shape[1])
        locals_ = alg.distribute(plan, S, A, B)
        run_rank_method(alg, plan, locals_, alg.rank_kernel, Mode.SDDMM)
        first = alg.collect_sddmm(plan, locals_, S).vals.copy()
        run_rank_method(alg, plan, locals_, alg.rank_kernel, Mode.SDDMM)
        second = alg.collect_sddmm(plan, locals_, S).vals
        np.testing.assert_allclose(first, second)

"""Tests for the workload generators and matrix statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse.generate import (
    REALWORLD_PROFILES,
    erdos_renyi,
    random_permutation,
    realworld_standin,
    rmat,
)
from repro.sparse.stats import matrix_stats, phi_ratio


class TestErdosRenyi:
    def test_shape_and_bounds(self):
        S = erdos_renyi(100, 80, 5, seed=0)
        assert S.shape == (100, 80)
        assert S.rows.max() < 100 and S.cols.max() < 80

    def test_expected_density(self):
        S = erdos_renyi(2000, 2000, 8, seed=1)
        # duplicates are rare at this density; realized nnz within 5%
        assert abs(S.nnz - 16000) / 16000 < 0.05

    def test_no_duplicates(self):
        S = erdos_renyi(50, 50, 10, seed=2)
        keys = S.rows * 50 + S.cols
        assert len(np.unique(keys)) == len(keys)

    def test_deterministic_by_seed(self):
        a = erdos_renyi(100, 100, 4, seed=7)
        b = erdos_renyi(100, 100, 4, seed=7)
        np.testing.assert_array_equal(a.rows, b.rows)
        np.testing.assert_array_equal(a.vals, b.vals)

    def test_value_kinds(self):
        ones = erdos_renyi(50, 50, 3, seed=0, values="ones")
        assert (ones.vals == 1.0).all()
        uni = erdos_renyi(50, 50, 3, seed=0, values="uniform")
        assert (uni.vals >= 0).all() and (uni.vals < 1).all()
        with pytest.raises(ValueError):
            erdos_renyi(10, 10, 2, seed=0, values="bogus")

    def test_rectangular(self):
        S = erdos_renyi(10, 1000, 3, seed=0)
        assert S.shape == (10, 1000)


class TestRmat:
    def test_shape(self):
        S = rmat(8, 8, seed=0)
        assert S.shape == (256, 256)

    def test_skewed_degrees(self):
        """R-MAT with Graph500 parameters is much more skewed than ER."""
        S = rmat(11, 8, seed=3)
        E = erdos_renyi(2048, 2048, 8, seed=3)
        s_max = matrix_stats(S).nnz_per_row_max
        e_max = matrix_stats(E).nnz_per_row_max
        assert s_max > 3 * e_max

    def test_deterministic(self):
        a = rmat(7, 4, seed=9)
        b = rmat(7, 4, seed=9)
        np.testing.assert_array_equal(a.rows, b.rows)


class TestRandomPermutation:
    def test_preserves_nnz_and_values(self):
        S = rmat(8, 6, seed=1)
        P = random_permutation(S, seed=2)
        assert P.nnz == S.nnz
        np.testing.assert_allclose(np.sort(P.vals), np.sort(S.vals))

    def test_balances_rows(self):
        """Permutation spreads a skewed matrix across row blocks."""
        S = rmat(11, 8, seed=4)
        P = random_permutation(S, seed=5)
        blocks = 16

        def imbalance(mat):
            counts = np.bincount(mat.rows // (mat.nrows // blocks), minlength=blocks)
            return counts.max() / max(counts.mean(), 1)

        # hub rows are still hubs, but block-level imbalance should shrink
        assert imbalance(P) <= imbalance(S)


class TestRealWorldStandins:
    def test_profiles_cover_the_paper_table(self):
        assert set(REALWORLD_PROFILES) == {
            "amazon-large", "uk-2002", "eukarya", "arabic-2005", "twitter7",
        }

    @pytest.mark.parametrize("name", sorted(REALWORLD_PROFILES))
    def test_standin_matches_nnz_per_row(self, name):
        prof = REALWORLD_PROFILES[name]
        S = realworld_standin(name, scale=11, seed=0)
        realized = S.nnz / S.nrows
        assert realized > 0.55 * prof.nnz_per_row
        assert realized < 1.5 * prof.nnz_per_row

    def test_eukarya_is_densest(self):
        mats = {nm: realworld_standin(nm, scale=10, seed=0) for nm in REALWORLD_PROFILES}
        per_row = {nm: m.nnz / m.nrows for nm, m in mats.items()}
        assert max(per_row, key=per_row.get) == "eukarya"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            realworld_standin("nonexistent")


class TestStats:
    def test_phi_ratio(self):
        assert phi_ratio(1000, 100, 10) == 1.0
        assert phi_ratio(500, 100, 10) == 0.5

    def test_matrix_stats_fields(self):
        S = erdos_renyi(64, 64, 4, seed=0)
        st = matrix_stats(S, "er-test")
        assert st.rows == 64 and st.cols == 64
        assert st.nnz == S.nnz
        assert st.nnz_per_row_mean == pytest.approx(S.nnz / 64)
        assert st.phi(16) == pytest.approx(S.nnz / (64 * 16))
        assert "er-test" in st.table_row()

    def test_empty_rows_counted(self):
        from repro.sparse.coo import CooMatrix

        S = CooMatrix(np.array([0, 0]), np.array([1, 2]), np.ones(2), (4, 4))
        assert matrix_stats(S).empty_rows == 3

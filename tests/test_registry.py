"""Tests for the algorithm registry (the paper's Figure 2 design space)."""

from __future__ import annotations

import pytest

from repro.algorithms.registry import (
    ALGORITHMS,
    feasible_replication_factors,
    make_algorithm,
    supported_elisions,
)
from repro.errors import ReproError
from repro.types import ALGORITHM_FAMILIES, Elision


class TestRegistry:
    def test_contains_the_four_families(self):
        assert set(ALGORITHMS) == set(ALGORITHM_FAMILIES)

    def test_make_algorithm(self):
        alg = make_algorithm("1.5d-dense-shift", 8, 2)
        assert alg.p == 8 and alg.c == 2

    def test_unknown_name(self):
        with pytest.raises(ReproError):
            make_algorithm("3d-mystery", 8, 2)
        with pytest.raises(ReproError):
            supported_elisions("3d-mystery")
        with pytest.raises(ReproError):
            feasible_replication_factors("3d-mystery", 8)


class TestElisionSupport:
    """Which strategies each family admits — paper Sections IV-B and V."""

    def test_dense_shift_supports_everything(self):
        els = supported_elisions("1.5d-dense-shift")
        assert set(els) == {
            Elision.NONE, Elision.REPLICATION_REUSE, Elision.LOCAL_KERNEL_FUSION,
        }

    def test_sparse_shift_no_local_fusion(self):
        """Splitting dense matrices by columns breaks local fusion."""
        els = supported_elisions("1.5d-sparse-shift")
        assert Elision.LOCAL_KERNEL_FUSION not in els
        assert Elision.REPLICATION_REUSE in els

    def test_25d_dense_no_local_fusion(self):
        els = supported_elisions("2.5d-dense-replicate")
        assert Elision.LOCAL_KERNEL_FUSION not in els
        assert Elision.REPLICATION_REUSE in els

    def test_25d_sparse_no_elision_at_all(self):
        """No dense replication happens, so nothing can be elided."""
        assert supported_elisions("2.5d-sparse-replicate") == (Elision.NONE,)


class TestFeasibility:
    def test_15d_divisors(self):
        assert feasible_replication_factors("1.5d-dense-shift", 12) == (1, 2, 3, 4, 6, 12)

    def test_25d_square_constraint(self):
        assert feasible_replication_factors("2.5d-dense-replicate", 16) == (1, 4, 16)
        assert feasible_replication_factors("2.5d-sparse-replicate", 8) == (2, 8)

    def test_every_family_instantiable_at_feasible_c(self):
        for name in ALGORITHMS:
            for c in feasible_replication_factors(name, 16):
                alg = make_algorithm(name, 16, c)
                assert alg.name == name

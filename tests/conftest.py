"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse.coo import CooMatrix
from repro.sparse.generate import erdos_renyi


def pytest_addoption(parser):
    parser.addoption(
        "--exec-backend",
        default="threads",
        choices=["threads", "mpi"],
        help="execution backend used by the backend-parameterized "
        "equivalence suites (mpi requires mpi4py under mpirun)",
    )


@pytest.fixture(scope="session")
def exec_backend(request):
    """The backend under test; skips mpi runs when mpi4py is absent."""
    backend = request.config.getoption("--exec-backend")
    if backend != "threads":
        from repro.runtime.backend import mpi_available

        if not mpi_available():
            pytest.skip("backend 'mpi' requested but mpi4py is not installed")
    return backend


def require_world_size(backend, p):
    """Skip a test whose grid a process backend cannot host in this job.

    The thread backend spawns any ``p``; a process backend is pinned to
    the launcher's world size, so only matching grids can run.
    """
    if backend == "threads":
        return
    from repro.runtime.backend_mpi import mpi_world_size

    size = mpi_world_size()
    if size != p:
        pytest.skip(f"backend 'mpi' needs mpirun -n {p}, running under -n {size}")


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_problem(rng):
    """A rectangular sparse matrix with tall-skinny dense operands."""
    m, n, r = 97, 123, 16
    S = erdos_renyi(m, n, 6, seed=2)
    A = rng.standard_normal((m, r))
    B = rng.standard_normal((n, r))
    return S, A, B


@pytest.fixture
def square_problem(rng):
    m = n = 96
    r = 8
    S = erdos_renyi(m, n, 5, seed=7)
    A = rng.standard_normal((m, r))
    B = rng.standard_normal((n, r))
    return S, A, B


def make_problem(m, n, r, nnz_per_row, seed=0):
    rng_ = np.random.default_rng(seed)
    S = erdos_renyi(m, n, nnz_per_row, seed=seed)
    A = rng_.standard_normal((m, r))
    B = rng_.standard_normal((n, r))
    return S, A, B


def coo_from_dense(D: np.ndarray) -> CooMatrix:
    rows, cols = np.nonzero(D)
    return CooMatrix(rows, cols, D[rows, cols], D.shape, dedupe=False)

"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse.coo import CooMatrix
from repro.sparse.generate import erdos_renyi


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_problem(rng):
    """A rectangular sparse matrix with tall-skinny dense operands."""
    m, n, r = 97, 123, 16
    S = erdos_renyi(m, n, 6, seed=2)
    A = rng.standard_normal((m, r))
    B = rng.standard_normal((n, r))
    return S, A, B


@pytest.fixture
def square_problem(rng):
    m = n = 96
    r = 8
    S = erdos_renyi(m, n, 5, seed=7)
    A = rng.standard_normal((m, r))
    B = rng.standard_normal((n, r))
    return S, A, B


def make_problem(m, n, r, nnz_per_row, seed=0):
    rng_ = np.random.default_rng(seed)
    S = erdos_renyi(m, n, nnz_per_row, seed=seed)
    A = rng_.standard_normal((m, r))
    B = rng_.standard_normal((n, r))
    return S, A, B


def coo_from_dense(D: np.ndarray) -> CooMatrix:
    rows, cols = np.nonzero(D)
    return CooMatrix(rows, cols, D[rows, cols], D.shape, dedupe=False)

"""Tests for the experiment harness (small-scale smoke + invariants)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness.reporting import format_table, print_series
from repro.harness.strong_scaling import strong_scaling_experiment
from repro.harness.sweeps import best_algorithm_map, replication_factor_sweep
from repro.harness.weak_scaling import (
    FIG4_VARIANTS,
    run_variant,
    weak_scaling_experiment,
    weak_scaling_problem,
)
from repro.sparse.generate import erdos_renyi
from repro.types import Elision


class TestWeakScalingProblems:
    def test_setup1_growth(self):
        a = weak_scaling_problem(1, 1, base_log2=8, base_nnz_row=4)
        b = weak_scaling_problem(1, 4, base_log2=8, base_nnz_row=4)
        assert b.nrows == 4 * a.nrows
        # nnz per row constant
        assert b.nnz / b.nrows == pytest.approx(a.nnz / a.nrows, rel=0.1)

    def test_setup2_growth(self):
        a = weak_scaling_problem(2, 1, base_log2=8, base_nnz_row=4)
        b = weak_scaling_problem(2, 4, base_log2=8, base_nnz_row=4)
        assert b.nrows == 2 * a.nrows
        assert b.nnz / b.nrows == pytest.approx(2 * a.nnz / a.nrows, rel=0.15)

    def test_invalid_setup(self):
        with pytest.raises(ValueError):
            weak_scaling_problem(3, 4)


class TestRunVariant:
    def test_returns_best_c(self, rng):
        S = erdos_renyi(256, 256, 4, seed=0)
        A = rng.standard_normal((256, 16))
        B = rng.standard_normal((256, 16))
        res = run_variant("1.5d-dense-shift", Elision.REPLICATION_REUSE, S, A, B, 8)
        assert res.best_c in res.per_c
        assert res.modeled_seconds == pytest.approx(min(res.per_c.values()))
        assert res.words > 0 and res.messages > 0

    def test_phase_breakdown_sums_to_total_comm(self, rng):
        S = erdos_renyi(128, 128, 4, seed=0)
        A = rng.standard_normal((128, 8))
        B = rng.standard_normal((128, 8))
        res = run_variant("1.5d-dense-shift", Elision.NONE, S, A, B, 4, max_c=2)
        total_comm = res.replication_seconds + res.propagation_seconds
        assert res.modeled_seconds == pytest.approx(
            total_comm + res.computation_seconds, rel=1e-6
        )


class TestExperiments:
    def test_weak_scaling_smoke(self):
        res = weak_scaling_experiment(
            1, [1, 4], r=8, base_log2=6, base_nnz_row=3,
            variants=FIG4_VARIANTS[:3], max_c=4,
        )
        assert len(res) == 6
        labels = {v.label for v in res}
        assert "1.5d-dense-shift/local-kernel-fusion" in labels

    def test_strong_scaling_smoke(self):
        mats = {"tiny": erdos_renyi(128, 128, 6, seed=1)}
        res = strong_scaling_experiment(
            mats, [4], r=8,
            variants=[("1.5d-dense-shift", Elision.REPLICATION_REUSE)],
            calls=1, include_petsc=True,
        )
        assert len(res) == 1
        assert res[0].petsc_seconds > 0
        assert res[0].best_variant().modeled_seconds > 0

    def test_best_algorithm_map_smoke(self):
        from repro.runtime.cost import MachineParams

        # bandwidth-dominated machine: the phi = 1/3 boundary is exact
        beta_only = MachineParams(alpha=0.0, beta=1e-9, gamma=1e-12)
        cells = best_algorithm_map(
            16, 256, r_values=[16], nnz_per_row_values=[1, 48],
            machine=beta_only, max_c=8,
        )
        assert len(cells) == 2
        # low density -> sparse shift; high density -> dense shift (predicted)
        assert "sparse" in cells[0].predicted
        assert "dense" in cells[1].predicted
        # observed agrees at the extremes
        assert "sparse" in cells[0].observed
        assert "dense" in cells[1].observed

    def test_replication_sweep_ordering(self):
        rows = replication_factor_sweep([16], r=16, base_log2=7, base_nnz_row=4)
        byv = {r.variant: r for r in rows}
        assert (
            byv["1.5d-dense-shift/replication-reuse"].predicted_c
            > byv["1.5d-dense-shift/none"].predicted_c
            > byv["1.5d-dense-shift/local-kernel-fusion"].predicted_c
        )
        # observed optimum should follow the same weak ordering
        assert (
            byv["1.5d-dense-shift/replication-reuse"].observed_c
            >= byv["1.5d-dense-shift/local-kernel-fusion"].observed_c
        )


class TestReporting:
    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.5], [30, 0.001]])
        assert "a" in text and "30" in text

    def test_format_table_empty(self):
        text = format_table(["x"], [])
        assert "x" in text

    def test_print_series(self):
        text = print_series("demo", {"s1": [1.0, 2.0]}, [4, 8])
        assert "demo" in text and "s1" in text

"""Packed need-list buffers: correctness, coverage and memory regression.

The packed-buffer optimization must change *where rows live* (compact
``len(union) x sw`` panels addressed through cached remaps) but never
*what is computed*, and it must actually shrink the memory footprint:
no full-height panel may exist anywhere on the ``comm="sparse"`` path.

Covers, bottom-up:

* :class:`PackedIndex` and the ``packed_recv``/``packed_send`` plan
  derivations;
* :meth:`SparseBlock.remapped` (the cached coordinate-rewritten view);
* planner invariants — every packed panel row is covered exactly once;
* property tests: packed runs are ``allclose`` to dense-mode runs across
  both families x {SDDMM, SpMMA, SpMMB, FusedMM} x random grids;
* the memory regression: per-rank peak buffer bytes in sparse mode is
  bounded by the union sizes and strictly below the dense-mode footprint
  at low phi;
* observability: ``RunReport.comm_mode`` / ``peak_buffer_bytes``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.algorithms.registry import make_algorithm
from repro.comm_sparse import CommPlan, PackedIndex, PeerExchange
from repro.errors import CommError
from repro.model.costs import fusedmm_buffer_words
from repro.model.optimal import choose_comm_mode
from repro.runtime.buffers import BufferPool
from repro.runtime.profile import RankProfile
from repro.runtime.spmd import run_spmd
from repro.sparse.coo import CooMatrix, SparseBlock
from repro.sparse.generate import erdos_renyi
from repro.types import Mode


def ix(*vals):
    return np.asarray(vals, dtype=np.int64)


# ----------------------------------------------------------------------
# PackedIndex + packed plan derivations
# ----------------------------------------------------------------------


class TestPackedIndex:
    def test_from_rows_sorts_and_dedupes(self):
        idx = PackedIndex.from_rows(ix(7, 2, 7, 4), domain=10)
        np.testing.assert_array_equal(idx.union, ix(2, 4, 7))
        assert idx.size == 3 and idx.domain == 10

    def test_positions_roundtrip(self):
        idx = PackedIndex.from_rows(ix(5, 1, 9), domain=12)
        np.testing.assert_array_equal(idx.positions(ix(9, 1, 5, 1)), ix(2, 0, 1, 0))

    def test_foreign_row_rejected(self):
        idx = PackedIndex.from_rows(ix(1, 3), domain=6)
        with pytest.raises(CommError, match="outside the packed union"):
            idx.positions(ix(1, 2))

    def test_out_of_domain_rejected(self):
        with pytest.raises(CommError):
            PackedIndex.from_rows(ix(4), domain=3)

    def test_panel_words(self):
        idx = PackedIndex.from_rows(ix(0, 2, 4), domain=8)
        assert idx.panel_words(16) == 3 * 16


class TestPackedPlanDerivations:
    def make(self):
        peers = (
            PeerExchange(peer=1, send_rows=ix(0), recv_rows=ix(3, 8), send_width=2, recv_width=2),
        )
        plan = CommPlan(key="t", size=2, rank=0, peers=peers)
        idx = PackedIndex.from_rows(ix(3, 5, 8), domain=10)
        return plan, idx

    def test_packed_recv_remaps_only_recv(self):
        plan, idx = self.make()
        packed = plan.packed_recv(idx)
        np.testing.assert_array_equal(packed.peers[0].recv_rows, ix(0, 2))
        np.testing.assert_array_equal(packed.peers[0].send_rows, ix(0))
        assert packed.recv_words() == plan.recv_words()  # words are renamed, not added

    def test_packed_send_remaps_only_send(self):
        plan, idx = self.make()
        rev = plan.reversed()  # now send_rows = (3, 8) live in the index
        packed = rev.packed_send(idx)
        np.testing.assert_array_equal(packed.peers[0].send_rows, ix(0, 2))
        np.testing.assert_array_equal(packed.peers[0].recv_rows, ix(0))

    def test_packed_recv_rejects_uncovered_rows(self):
        plan, _ = self.make()
        bad = PackedIndex.from_rows(ix(3), domain=10)  # row 8 missing
        with pytest.raises(CommError):
            plan.packed_recv(bad)


# ----------------------------------------------------------------------
# SparseBlock.remapped
# ----------------------------------------------------------------------


class TestSparseBlockRemapped:
    def test_rewrites_coordinates(self):
        blk = SparseBlock(ix(0, 4, 4), ix(1, 3, 5), np.array([1.0, 2.0, 3.0]), (6, 6))
        rmap = PackedIndex.from_rows(blk.rows, 6).lookup
        cmap = PackedIndex.from_rows(blk.cols, 6).lookup
        view = blk.remapped("p", rmap, cmap, (2, 3))
        np.testing.assert_array_equal(view.rows, ix(0, 1, 1))
        np.testing.assert_array_equal(view.cols, ix(0, 1, 2))
        assert view.shape == (2, 3)

    def test_cached_per_key(self):
        blk = SparseBlock(ix(2), ix(3), np.array([1.0]), (4, 4))
        rmap = np.arange(4, dtype=np.int64)
        assert blk.remapped("k", rmap) is blk.remapped("k", rmap)
        assert blk.remapped("k", rmap) is not blk.remapped("k2", rmap)

    def test_key_rebinding_to_other_maps_raises(self):
        from repro.errors import DistributionError

        blk = SparseBlock(ix(2), ix(3), np.array([1.0]), (4, 4))
        blk.remapped("k", np.arange(4, dtype=np.int64))
        with pytest.raises(DistributionError, match="already bound"):
            blk.remapped("k", np.zeros(4, dtype=np.int64))

    def test_with_values_shares_remap_cache(self):
        blk = SparseBlock(ix(1), ix(1), np.array([1.0]), (3, 3))
        rmap = np.arange(3, dtype=np.int64)
        view = blk.remapped("k", rmap)
        assert blk.with_values(np.array([9.0])).remapped("k", rmap) is view

    def test_prebuild_populates_csr_caches(self):
        blk = SparseBlock(ix(0, 1), ix(1, 0), np.array([1.0, 2.0]), (2, 2))
        view = blk.remapped("k", None, None, None, prebuild=True)
        assert view._csr is not None and view._csr_t is not None

    def test_csr_values_follow_call_site(self):
        blk = SparseBlock(ix(1, 0), ix(0, 1), np.array([1.0, 2.0]), (2, 2))
        view = blk.remapped("k", None)
        got = view.csr(np.array([5.0, 7.0])).toarray()
        np.testing.assert_allclose(got, [[0.0, 7.0], [5.0, 0.0]])


# ----------------------------------------------------------------------
# planner packed invariants
# ----------------------------------------------------------------------


class TestPlannerPackedCoverage15D:
    def setup_method(self):
        self.S = erdos_renyi(40, 52, 3, seed=11)
        self.alg = make_algorithm("1.5d-sparse-shift", 8, 4)
        self.plan = self.alg.plan(40, 52, 12)
        self.cplans = self.alg.build_comm_plans(self.plan, self.S)

    def test_every_packed_row_covered_exactly_once(self):
        """own rows + one peer leg per remaining row tile the packed panel,
        which is what makes the np.empty gather target legal."""
        for cp in self.cplans:
            pieces = [cp.own_packed] + [px.recv_rows for px in cp.gather_packed.peers]
            covered = np.concatenate([np.asarray(p) for p in pieces if len(p)] or [ix()])
            assert len(covered) == len(np.unique(covered))
            np.testing.assert_array_equal(np.sort(covered), np.arange(cp.index.size))

    def test_packed_plans_preserve_word_counts(self):
        for cp in self.cplans:
            assert cp.gather_packed.recv_words() == cp.gather.recv_words()
            assert cp.reduce_packed.send_words() == cp.reduce.send_words()

    def test_own_rows_agree_with_layout(self):
        for rank, cp in enumerate(self.cplans):
            _, v = self.alg.grid.coords(rank)
            owned = self.plan.rows_a_of_fiber[v]
            np.testing.assert_array_equal(owned[cp.own_local], cp.index.union[cp.own_packed])


class TestPlannerPacked25D:
    def setup_method(self):
        self.S = erdos_renyi(36, 30, 2, seed=13)
        self.alg = make_algorithm("2.5d-sparse-replicate", 8, 2)
        self.plan = self.alg.plan(36, 30, 10)
        self.cplans = self.alg.build_comm_plans(self.plan, self.S)

    def test_packed_recv_rows_are_the_whole_panel(self):
        """A rank's need list IS its packed panel, so every peer leg lands
        on the identity packed rows (only the column windows differ)."""
        for cp in self.cplans:
            for px in cp.gather_a_packed.peers:
                np.testing.assert_array_equal(px.recv_rows, np.arange(cp.index_a.size))
            for px in cp.gather_b_packed.peers:
                np.testing.assert_array_equal(px.recv_rows, np.arange(cp.index_b.size))

    def test_block_packed_is_in_panel_coordinates(self):
        for cp in self.cplans:
            blk = cp.block_packed
            assert blk.shape == (cp.index_a.size, cp.index_b.size)
            if blk.nnz:
                assert blk.rows.max() < cp.index_a.size
                assert blk.cols.max() < cp.index_b.size

    def test_block_packed_shared_across_fiber(self):
        g = self.alg.grid
        for x in range(g.q):
            for y in range(g.q):
                assert (
                    self.cplans[g.rank_of(x, y, 0)].block_packed
                    is self.cplans[g.rank_of(x, y, 1)].block_packed
                )


# ----------------------------------------------------------------------
# equivalence: packed sparse comm == dense comm (property tests)
# ----------------------------------------------------------------------

GRIDS = {
    "1.5d-sparse-shift": [(4, 2), (8, 4), (6, 3)],
    "2.5d-sparse-replicate": [(8, 2), (16, 4), (18, 2)],
}


def run_mode(alg, S, A, B, mode, sparse):
    r = (A if A is not None else B).shape[1]
    plan = alg.plan(S.nrows, S.ncols, r)
    locals_ = alg.distribute(plan, S, A, B)
    cplans = alg.build_comm_plans(plan, S) if sparse else None

    def body(comm):
        ctx = alg.make_context(comm)
        kw = {"sparse_plan": cplans[comm.rank]} if cplans is not None else {}
        alg.rank_kernel(ctx, plan, locals_[comm.rank], mode, **kw)

    _, report = run_spmd(alg.p, body)
    return plan, locals_, report


@st.composite
def packed_problems(draw):
    m = draw(st.integers(6, 48))
    n = draw(st.integers(6, 48))
    r = draw(st.integers(1, 12))
    nnz = draw(st.integers(0, 120))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    S = CooMatrix(
        rng.integers(0, m, nnz).astype(np.int64),
        rng.integers(0, n, nnz).astype(np.int64),
        rng.standard_normal(nnz),
        (m, n),
    )
    return S, rng.standard_normal((m, r)), rng.standard_normal((n, r))


@pytest.mark.parametrize("name", sorted(GRIDS))
@pytest.mark.parametrize("mode", [Mode.SDDMM, Mode.SPMM_A, Mode.SPMM_B])
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(problem=packed_problems(), pick=st.integers(0, 2))
def test_packed_matches_dense_random(name, mode, problem, pick):
    S, A, B = problem
    p, c = GRIDS[name][pick % len(GRIDS[name])]
    plan_d, loc_d, _ = run_mode(make_algorithm(name, p, c), S, A, B, mode, sparse=False)
    alg_s = make_algorithm(name, p, c)
    plan_s, loc_s, _ = run_mode(alg_s, S, A, B, mode, sparse=True)
    alg_d = make_algorithm(name, p, c)
    if mode == Mode.SDDMM:
        got_d = alg_d.collect_sddmm(plan_d, loc_d, S).vals
        got_s = alg_s.collect_sddmm(plan_s, loc_s, S).vals
    elif mode == Mode.SPMM_A:
        got_d = alg_d.collect_dense_a(plan_d, loc_d)
        got_s = alg_s.collect_dense_a(plan_s, loc_s)
    else:
        got_d = alg_d.collect_dense_b(plan_d, loc_d)
        got_s = alg_s.collect_dense_b(plan_s, loc_s)
    np.testing.assert_allclose(got_s, got_d, rtol=1e-8, atol=1e-10)


@pytest.mark.parametrize(
    "name,elision,p,c",
    [
        ("1.5d-sparse-shift", "none", 8, 4),
        ("1.5d-sparse-shift", "replication-reuse", 8, 2),
        ("2.5d-sparse-replicate", "none", 8, 2),
    ],
)
@pytest.mark.parametrize("fused", [repro.fusedmm_a, repro.fusedmm_b])
def test_packed_fusedmm_matches_dense(name, elision, p, c, fused, rng):
    for seed in (3, 4):
        S = erdos_renyi(44, 44, 3, seed=seed)
        A = rng.standard_normal((44, 8))
        B = rng.standard_normal((44, 8))
        out_d, _ = fused(S, A, B, p=p, c=c, algorithm=name, elision=elision, comm="dense")
        out_s, _ = fused(S, A, B, p=p, c=c, algorithm=name, elision=elision, comm="sparse")
        np.testing.assert_allclose(out_s, out_d, rtol=1e-8, atol=1e-10)


@pytest.mark.parametrize("name,elision,p,c", [
    ("1.5d-sparse-shift", "replication-reuse", 8, 4),
    ("2.5d-sparse-replicate", "none", 8, 2),
])
def test_packed_steady_state_repeated_calls(name, elision, p, c, rng):
    """calls > 1 reuses every pool slot: a pooled buffer escaping into
    state consumed on the NEXT call corrupts only calls 2..n, which a
    single-call test can never see."""
    S = erdos_renyi(48, 48, 3, seed=6)
    A = rng.standard_normal((48, 8))
    B = rng.standard_normal((48, 8))
    out_d, _ = repro.fusedmm_b(
        S, A, B, p=p, c=c, algorithm=name, elision=elision, comm="dense", calls=5
    )
    out_s, _ = repro.fusedmm_b(
        S, A, B, p=p, c=c, algorithm=name, elision=elision, comm="sparse", calls=5
    )
    np.testing.assert_allclose(out_s, out_d, rtol=1e-8, atol=1e-10)


# ----------------------------------------------------------------------
# memory regression: no full-height panel on the sparse path
# ----------------------------------------------------------------------


class TestPeakBufferRegression:
    def _measure(self, name, p, c, mode, nnz_per_row):
        m = n = 256
        r = 32
        S = erdos_renyi(m, n, nnz_per_row, seed=5)
        rng = np.random.default_rng(0)
        A = rng.standard_normal((m, r))
        B = rng.standard_normal((n, r))
        alg = make_algorithm(name, p, c)
        _, _, rep_d = run_mode(alg, S, A, B, mode, sparse=False)
        alg_s = make_algorithm(name, p, c)
        plan = alg_s.plan(m, n, r)
        cplans = alg_s.build_comm_plans(plan, S)
        _, _, rep_s = run_mode(alg_s, S, A, B, mode, sparse=True)
        return alg_s, plan, cplans, rep_d, rep_s

    @pytest.mark.parametrize("mode", [Mode.SDDMM, Mode.SPMM_A, Mode.SPMM_B])
    def test_15d_sparse_peak_bounded_by_union(self, mode):
        """Sparse-mode peak panel bytes == union x sw per rank — i.e. no
        m-tall panel exists anywhere on the comm="sparse" path."""
        alg, plan, cplans, rep_d, rep_s = self._measure(
            "1.5d-sparse-shift", 8, 4, mode, nnz_per_row=2
        )
        for rank, prof in enumerate(rep_s.per_rank):
            u, v = alg.grid.coords(rank)
            sw = plan.strip_width(u)
            assert prof.peak_buffer_bytes == cplans[rank].index.size * sw * 8
            assert prof.peak_buffer_bytes < plan.m * sw * 8  # strictly sub-full-height
        # dense mode really does hold the full-height panel
        for rank, prof in enumerate(rep_d.per_rank):
            sw = plan.strip_width(alg.grid.coords(rank)[0])
            assert prof.peak_buffer_bytes >= plan.m * sw * 8

    @pytest.mark.parametrize("mode", [Mode.SDDMM, Mode.SPMM_A, Mode.SPMM_B])
    def test_25d_sparse_peak_bounded_by_unions(self, mode):
        alg, plan, cplans, _, rep_s = self._measure(
            "2.5d-sparse-replicate", 8, 2, mode, nnz_per_row=2
        )
        for rank, prof in enumerate(rep_s.per_rank):
            cp = cplans[rank]
            bound = (cp.index_a.size + cp.index_b.size) * cp.strip_width * 8
            assert prof.peak_buffer_bytes <= bound

    def test_15d_sparse_peak_halves_dense_at_low_phi(self):
        """The acceptance bar: >= 50% peak-buffer reduction at phi <= 0.05."""
        n, r = 2048, 64
        S = erdos_renyi(n, n, 2, seed=5)
        assert S.nnz / (n * r) <= 0.05
        rng = np.random.default_rng(0)
        A = rng.standard_normal((n, r))
        B = rng.standard_normal((n, r))
        _, rep_d = repro.fusedmm_b(
            S, A, B, p=8, c=4, algorithm="1.5d-sparse-shift",
            elision="replication-reuse", comm="dense",
        )
        _, rep_s = repro.fusedmm_b(
            S, A, B, p=8, c=4, algorithm="1.5d-sparse-shift",
            elision="replication-reuse", comm="sparse",
        )
        assert rep_s.peak_buffer_bytes <= 0.5 * rep_d.peak_buffer_bytes


# ----------------------------------------------------------------------
# buffer pool + observability
# ----------------------------------------------------------------------


class TestBufferPool:
    def test_reuses_slot_for_same_shape(self):
        pool = BufferPool()
        a = pool.zeros("x", (4, 3))
        b = pool.zeros("x", (4, 3))
        assert a is b

    def test_reallocates_on_shape_change_without_corrupting_old(self):
        pool = BufferPool()
        a = pool.empty("x", (2, 2))
        a[:] = 7.0
        b = pool.empty("x", (3, 2))
        assert a is not b
        np.testing.assert_allclose(a, 7.0)  # old buffer stays a valid array

    def test_take_like_copies_contents(self):
        pool = BufferPool()
        src = np.arange(6.0).reshape(2, 3)
        buf = pool.take_like("y", src)
        np.testing.assert_allclose(buf, src)
        assert buf is not src

    def test_reports_peak_to_profile(self):
        prof = RankProfile()
        pool = BufferPool(profile=prof)
        pool.zeros("a", (8, 8))
        pool.zeros("b", (4, 4))
        assert prof.peak_buffer_bytes == (64 + 16) * 8
        pool.zeros("a", (2, 2))  # shrinking never lowers the recorded peak
        assert prof.peak_buffer_bytes == (64 + 16) * 8


class TestObservability:
    def test_report_carries_comm_mode_and_peak(self, rng):
        S = erdos_renyi(64, 64, 2, seed=1)
        A = rng.standard_normal((64, 8))
        B = rng.standard_normal((64, 8))
        for comm in ("dense", "sparse"):
            _, rep = repro.sddmm(
                S, A, B, p=4, c=2, algorithm="1.5d-sparse-shift", comm=comm
            )
            assert rep.comm_mode == comm
            assert rep.peak_buffer_bytes > 0
            assert "comm mode" in rep.summary()
            assert "peak buffers" in rep.summary()

    def test_auto_mode_resolution_is_observable(self, rng):
        S = erdos_renyi(512, 512, 2, seed=2)
        A = rng.standard_normal((512, 64))
        B = rng.standard_normal((512, 64))
        _, rep = repro.spmm_a(S, B, p=8, c=4, algorithm="1.5d-sparse-shift", comm="auto")
        assert rep.comm_mode in ("dense", "sparse")

    def test_merged_report_keeps_mode_and_peak(self):
        from repro.runtime.profile import RunReport

        a = RunReport(per_rank=[RankProfile()], label="x", comm_mode="sparse")
        b = RunReport(per_rank=[RankProfile()], label="x", comm_mode="sparse")
        a.per_rank[0].peak_buffer_bytes = 100
        b.per_rank[0].peak_buffer_bytes = 300
        merged = a.merged_with(b)
        assert merged.comm_mode == "sparse"
        assert merged.peak_buffer_bytes == 300

    def test_merging_mismatched_modes_reports_none(self):
        from repro.runtime.profile import RunReport

        a = RunReport(per_rank=[RankProfile()], comm_mode="dense")
        b = RunReport(per_rank=[RankProfile()], comm_mode="sparse")
        assert a.merged_with(b).comm_mode == ""


# ----------------------------------------------------------------------
# cost model memory term
# ----------------------------------------------------------------------


class TestMemoryTerm:
    def test_15d_packed_buffer_shrinks_at_low_phi(self):
        key = "1.5d-sparse-shift/replication-reuse"
        dense = fusedmm_buffer_words(key, 4096, 64, 8, 4, 0.03, sparse_comm=False)
        sparse = fusedmm_buffer_words(key, 4096, 64, 8, 4, 0.03, sparse_comm=True)
        assert sparse < 0.5 * dense

    def test_25d_packed_buffer_can_exceed_dense(self):
        """Strip-wide packed panels vs piece-sized ring buffers: at high
        coverage the sparse path costs MORE memory — the term the
        comm-mode policy needs."""
        key = "2.5d-sparse-replicate/none"
        dense = fusedmm_buffer_words(key, 1024, 16, 16, 4, 2.0, sparse_comm=False)
        sparse = fusedmm_buffer_words(key, 1024, 16, 16, 4, 2.0, sparse_comm=True)
        assert sparse > dense

    def test_choose_comm_mode_still_prefers_sparse_when_hypersparse(self):
        assert choose_comm_mode("1.5d-sparse-shift", 4096, 64, 2 * 4096, 8, 4) == "sparse"

    def test_memory_weight_can_steer_25d_to_dense(self):
        """The 2.5D sparse path's strip-wide panels cost memory the dense
        ring does not; raising the memory weight must be able to flip a
        traffic-favored sparse pick back to dense."""
        n, r, p, c = 256, 16, 16, 4
        nnz = 64 * n  # saturated: coverage ~ 1, 4x dense-path footprint
        args = ("2.5d-sparse-replicate", n, r, nnz, p, c)
        assert choose_comm_mode(*args, memory_weight=0.0) == "sparse"
        assert choose_comm_mode(*args, memory_weight=50.0) == "dense"

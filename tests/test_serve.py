"""Serving subsystem tests: batching equality, admission, deadlines, fleet.

The acceptance properties of the micro-batched front-end:

* batched outputs are **bitwise equal** to per-request unbatched calls,
  for both the ALS top-k and GAT edge-scoring workloads (per-column /
  per-edge independence of the underlying kernels);
* admission control rejects deterministically at ``max_queue`` with a
  typed :class:`~repro.errors.ServeOverload`, without enqueuing;
* a per-request deadline expiring mid-batch surfaces ``"timeout"`` for
  that request only — batch-mates settle normally;
* fleets drain cleanly: after ``close()`` no worker/dispatcher threads
  remain (the stress suite's thread-leak gate);
* per-tenant value rebinding on the shared planned structure.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

import repro
from repro.apps.als import AlsServeModel, recommend_topk
from repro.apps.gat import GatServeModel
from repro.errors import ReproError, ServeOverload
from repro.serve import (
    AlsTopKRequest,
    GatEdgeScoreRequest,
    MicroBatcher,
    Server,
    ServeFuture,
)
from repro.serve.request import Envelope, Request, batch_deadline_ms

N_USERS, N_ITEMS, D = 48, 40, 6
N_NODES, R_IN = 40, 8
P = 2
WIDTH = 8


@pytest.fixture(scope="module")
def als_parts():
    rng = np.random.default_rng(7)
    user_factors = rng.standard_normal((N_USERS, D))
    item_factors = rng.standard_normal((N_ITEMS, D))
    seen = repro.erdos_renyi(N_USERS, N_ITEMS, 4, seed=11)
    return user_factors, item_factors, seen


@pytest.fixture(scope="module")
def gat_parts():
    rng = np.random.default_rng(8)
    adjacency = repro.erdos_renyi(N_NODES, N_NODES, 4, seed=12)
    features = rng.standard_normal((N_NODES, R_IN))
    return adjacency, features


def _als_model(als_parts, batch_width=WIDTH, **kw):
    user_factors, item_factors, seen = als_parts
    return AlsServeModel(
        user_factors, item_factors, seen=seen, p=P,
        batch_width=batch_width, **kw,
    )


def _gat_model(gat_parts, batch_width=WIDTH, **kw):
    adjacency, features = gat_parts
    return GatServeModel(
        adjacency, features, p=P, batch_width=batch_width, seed=3, **kw
    )


def _serve_all(model, requests, **server_kw):
    """Inline (deterministic) serving of a request list, in order."""
    server_kw.setdefault("max_queue", max(len(requests), 1))
    with Server(model, background=False, **server_kw) as srv:
        futures = [srv.submit(req) for req in requests]
        srv.drain()
        return [fut.result(timeout=0) for fut in futures]


class TestBatchedEqualsUnbatched:
    """The acceptance headline: riding in a panel never changes a value."""

    def test_als_bitwise(self, als_parts):
        users = [3, 17, 3, 40, 8, 21, 9, 0, 47, 17, 33]  # repeats allowed
        reqs = lambda: [  # noqa: E731 - fresh dataclasses per server
            AlsTopKRequest(model_id="als", user=u, k=5) for u in users
        ]
        batched = _serve_all(_als_model(als_parts), reqs())
        single = _serve_all(_als_model(als_parts, batch_width=1), reqs())
        assert all(c.ok for c in batched) and all(c.ok for c in single)
        assert max(c.batch_size for c in batched) > 1
        assert all(c.batch_size == 1 for c in single)
        for cb, cs in zip(batched, single):
            items_b, vals_b = cb.value
            items_s, vals_s = cs.value
            assert np.array_equal(items_b, items_s)
            assert np.array_equal(vals_b, vals_s)  # bitwise, no tolerance

    def test_als_matches_dense_reference(self, als_parts):
        user_factors, item_factors, seen = als_parts
        users = [1, 5, 42, 5]
        completions = _serve_all(
            _als_model(als_parts),
            [AlsTopKRequest(model_id="als", user=u, k=6) for u in users],
        )
        ref_items, ref_vals = recommend_topk(
            user_factors, item_factors, users, 6, seen=seen
        )
        for i, c in enumerate(completions):
            items, vals = c.value
            assert np.array_equal(items, ref_items[i])
            np.testing.assert_allclose(vals, ref_vals[i], rtol=1e-12)

    def test_gat_bitwise(self, gat_parts):
        nodes = [0, 7, 13, 2, 39, 11, 25, 18, 5]
        reqs = lambda: [  # noqa: E731
            GatEdgeScoreRequest(model_id="gat", node=v) for v in nodes
        ]
        batched = _serve_all(_gat_model(gat_parts), reqs())
        single = _serve_all(_gat_model(gat_parts, batch_width=1), reqs())
        assert all(c.ok for c in batched) and all(c.ok for c in single)
        assert max(c.batch_size for c in batched) > 1
        for cb, cs in zip(batched, single):
            cols_b, vals_b = cb.value
            cols_s, vals_s = cs.value
            assert np.array_equal(cols_b, cols_s)
            assert np.array_equal(vals_b, vals_s)

    def test_gat_duplicate_nodes_defer_across_batches(self, gat_parts):
        # two requests for one node cannot share a panel (one row each):
        # admit() defers the duplicate, and both still serve correctly
        completions = _serve_all(
            _gat_model(gat_parts),
            [GatEdgeScoreRequest(model_id="gat", node=4) for _ in range(3)],
        )
        assert [c.outcome for c in completions] == ["ok"] * 3
        assert all(c.batch_size == 1 for c in completions)
        for c in completions[1:]:
            assert np.array_equal(c.value[0], completions[0].value[0])
            assert np.array_equal(c.value[1], completions[0].value[1])


class TestAdmissionControl:
    def test_overload_rejects_deterministically(self, als_parts):
        model = _als_model(als_parts)
        with Server(model, background=False, max_queue=3) as srv:
            for trial in range(2):  # same reject point every time
                futures = [
                    srv.submit(AlsTopKRequest(model_id="als", user=u))
                    for u in range(3)
                ]
                with pytest.raises(ServeOverload):
                    srv.submit(AlsTopKRequest(model_id="als", user=3))
                assert srv.pending() == 3  # the reject did not enqueue
                srv.drain()
                assert all(f.result(timeout=0).ok for f in futures)
            stats = srv.stats()
            assert stats["outcomes"]["rejected"] == 2
            assert stats["served"] == 6  # rejects are not "served"

    def test_unknown_model_and_closed_server(self, als_parts):
        srv = Server(_als_model(als_parts), background=False, max_queue=4)
        with pytest.raises(ReproError, match="unknown model"):
            srv.submit(AlsTopKRequest(model_id="nope", user=0))
        srv.close()
        with pytest.raises(ReproError, match="closed"):
            srv.submit(AlsTopKRequest(model_id="als", user=0))

    def test_batcher_rejects_bad_capacity(self, als_parts):
        with pytest.raises(ReproError):
            MicroBatcher(_als_model(als_parts), window_ms=1.0, max_queue=0)


class TestDeadlines:
    def test_expired_member_times_out_without_poisoning_batch(self, als_parts):
        reqs = [
            AlsTopKRequest(model_id="als", user=1, k=5),
            # this member's end-to-end budget is over before the batch can
            # possibly settle; its mates carry no deadline, so the batch
            # itself runs without a watchdog
            AlsTopKRequest(model_id="als", user=2, k=5, deadline_ms=1e-6),
            AlsTopKRequest(model_id="als", user=3, k=5),
        ]
        completions = _serve_all(_als_model(als_parts), reqs)
        assert [c.outcome for c in completions] == ["ok", "timeout", "ok"]
        assert completions[1].value is None
        assert "deadline" in completions[1].error
        # the survivors are untouched: same batch, correct values
        ref = _serve_all(
            _als_model(als_parts, batch_width=1),
            [
                AlsTopKRequest(model_id="als", user=1, k=5),
                AlsTopKRequest(model_id="als", user=3, k=5),
            ],
        )
        for c, r in zip((completions[0], completions[2]), ref):
            assert np.array_equal(c.value[0], r.value[0])
            assert np.array_equal(c.value[1], r.value[1])

    def test_batch_deadline_is_max_remaining_budget(self):
        now = 100.0
        mk = lambda dl, age_s: Envelope(  # noqa: E731
            request=Request(model_id="m", deadline_ms=dl),
            future=ServeFuture(Request(model_id="m")),
            t_submit=now - age_s,
        )
        # any deadline-free member disarms the batch watchdog
        assert batch_deadline_ms([mk(5.0, 0.0), mk(None, 0.0)], now) is None
        # otherwise: the largest remaining budget
        batch = [mk(50.0, 0.01), mk(200.0, 0.1), mk(30.0, 0.0)]
        assert batch_deadline_ms(batch, now) == pytest.approx(100.0)
        # fully lapsed budgets floor at a positive horizon (the watchdog
        # rejects non-positive ones; members time out at settle instead)
        assert batch_deadline_ms([mk(1.0, 10.0)], now) == pytest.approx(1e-3)

    def test_default_deadline_is_stamped(self, als_parts):
        completions = _serve_all(
            _als_model(als_parts),
            [AlsTopKRequest(model_id="als", user=0)],
            default_deadline_ms=60_000.0,
        )
        assert completions[0].request.deadline_ms == 60_000.0
        assert completions[0].ok


class TestTenants:
    def test_rebind_per_tenant_values(self, als_parts):
        user_factors, item_factors, seen = als_parts
        rng = np.random.default_rng(99)
        acme_factors = rng.standard_normal(item_factors.shape)
        model = _als_model(als_parts, tenants={"acme": acme_factors})
        reqs = [
            AlsTopKRequest(model_id="als", user=4, k=5),
            AlsTopKRequest(model_id="als", user=4, k=5, tenant_id="acme"),
            AlsTopKRequest(model_id="als", user=9, k=5),
            AlsTopKRequest(model_id="als", user=9, k=5, tenant_id="acme"),
        ]
        completions = _serve_all(model, reqs)
        assert all(c.ok for c in completions)
        # tenants never share a panel (different bound values)
        assert all(c.batch_size == 2 for c in completions)
        for c in completions:
            factors = acme_factors if c.request.tenant_id == "acme" else item_factors
            ref_items, ref_vals = recommend_topk(
                user_factors, factors, [c.request.user], 5, seen=seen
            )
            assert np.array_equal(c.value[0], ref_items[0])
            np.testing.assert_allclose(c.value[1], ref_vals[0], rtol=1e-12)
        # the two tenants genuinely disagree (the rebind did something)
        assert not np.array_equal(completions[0].value[1], completions[1].value[1])

    def test_unknown_tenant_fails_only_its_batch(self, als_parts):
        completions = _serve_all(
            _als_model(als_parts),
            [
                AlsTopKRequest(model_id="als", user=1, tenant_id="ghost"),
                AlsTopKRequest(model_id="als", user=2),
            ],
        )
        assert completions[0].outcome == "failed"
        assert "ghost" in completions[0].error
        assert completions[1].outcome == "ok"


class TestFleetLifecycle:
    def test_background_server_drains_without_leaking_threads(self, als_parts):
        baseline = threading.active_count()
        with Server(
            _als_model(als_parts), replicas=2, window_ms=0.5, max_queue=64,
            background=True,
        ) as srv:
            futures = [
                srv.submit(AlsTopKRequest(model_id="als", user=u % N_USERS, k=4))
                for u in range(24)
            ]
            # drain settles the tail batches the pipelined fleet still
            # holds in flight; only then is every future guaranteed done
            srv.drain()
            completions = [f.result(timeout=60.0) for f in futures]
        assert all(c.ok for c in completions)
        assert {c.session_index for c in completions} == {0, 1}  # both replicas
        assert threading.active_count() == baseline  # thread-leak gate

    def test_inline_server_leaves_no_threads(self, gat_parts):
        baseline = threading.active_count()
        completions = _serve_all(
            _gat_model(gat_parts),
            [GatEdgeScoreRequest(model_id="gat", node=v) for v in range(6)],
        )
        assert all(c.ok for c in completions)
        assert threading.active_count() == baseline

    def test_close_is_idempotent_and_future_timeout_is_typed(self, als_parts):
        srv = Server(_als_model(als_parts), background=False, max_queue=4)
        fut = srv.submit(AlsTopKRequest(model_id="als", user=0))
        with pytest.raises(ReproError, match="did not settle"):
            fut.result(timeout=0.01)  # nothing flushes an inline server
        srv.close()
        srv.close()
        assert fut.result(timeout=0).ok  # close() flushed + settled it


class TestStats:
    def test_snapshot_accounts_for_every_request(self, als_parts):
        n = 20
        with Server(
            _als_model(als_parts), background=False, max_queue=n
        ) as srv:
            for u in range(n):
                srv.submit(AlsTopKRequest(model_id="als", user=u, k=3))
            srv.drain()
            snap = srv.stats()
        assert snap["served"] == n
        assert snap["outcomes"]["ok"] == n
        # the histogram counts *requests* per batch size; every request
        # appears once, and the implied batch count matches
        assert sum(snap["batch_size_hist"].values()) == n
        assert sum(
            count // int(size)
            for size, count in snap["batch_size_hist"].items()
        ) == snap["batches"]
        assert snap["latency_ms"]["p50"] <= snap["latency_ms"]["p99"]
        assert snap["throughput_rps"] > 0
        # session-level records folded in at drain: one per session call
        assert snap["session_calls"]["count"] == snap["batches"]
        assert snap["session_calls"]["outcomes"] == {"ok": snap["batches"]}

    def test_two_models_one_server(self, als_parts, gat_parts):
        with Server(
            [_als_model(als_parts), _gat_model(gat_parts)],
            background=False, max_queue=8,
        ) as srv:
            f_als = srv.submit(AlsTopKRequest(model_id="als", user=1, k=3))
            f_gat = srv.submit(GatEdgeScoreRequest(model_id="gat", node=2))
            srv.drain()
            assert f_als.result(timeout=0).ok
            assert f_gat.result(timeout=0).ok
            models = {r["model_id"] for r in srv._stats.session_records}
            assert models == {"als", "gat"}

"""Tests for block partitioning utilities, including hypothesis
properties on the invariants every distribution relies on."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DistributionError
from repro.sparse.partition import (
    block_of,
    block_ranges,
    block_size,
    cyclic_block_index,
    global_to_local_map,
    group_offsets,
    partition_by_owner,
    partition_coo_2d,
    partition_coo_rows,
)


class TestBlockRanges:
    def test_even_split(self):
        np.testing.assert_array_equal(block_ranges(12, 4), [0, 3, 6, 9, 12])

    def test_ragged_split_front_loaded(self):
        np.testing.assert_array_equal(block_ranges(10, 4), [0, 3, 6, 8, 10])

    def test_more_blocks_than_items(self):
        offs = block_ranges(2, 5)
        assert offs[-1] == 2
        sizes = np.diff(offs)
        assert sizes.sum() == 2 and sizes.max() <= 1

    def test_zero_total(self):
        np.testing.assert_array_equal(block_ranges(0, 3), [0, 0, 0, 0])

    def test_invalid_args(self):
        with pytest.raises(DistributionError):
            block_ranges(5, 0)
        with pytest.raises(DistributionError):
            block_ranges(-1, 2)

    @given(total=st.integers(0, 10_000), nblocks=st.integers(1, 64))
    @settings(max_examples=200, deadline=None)
    def test_property_cover_and_balance(self, total, nblocks):
        offs = block_ranges(total, nblocks)
        sizes = np.diff(offs)
        assert offs[0] == 0 and offs[-1] == total
        assert len(offs) == nblocks + 1
        assert (sizes >= 0).all()
        assert sizes.max() - sizes.min() <= 1 if total else (sizes == 0).all()
        assert (np.diff(offs) >= 0).all()


class TestBlockOf:
    def test_lookup(self):
        offs = block_ranges(10, 3)  # [0,4,7,10]
        idx = np.array([0, 3, 4, 6, 7, 9])
        np.testing.assert_array_equal(block_of(idx, offs), [0, 0, 1, 1, 2, 2])

    @given(total=st.integers(1, 500), nblocks=st.integers(1, 16))
    @settings(max_examples=100, deadline=None)
    def test_property_consistent_with_ranges(self, total, nblocks):
        offs = block_ranges(total, nblocks)
        idx = np.arange(total)
        b = block_of(idx, offs)
        assert (idx >= offs[b]).all()
        assert (idx < offs[b + 1]).all()

    def test_block_size(self):
        offs = block_ranges(10, 3)
        assert [block_size(offs, k) for k in range(3)] == [4, 3, 3]


class TestCyclic:
    def test_cyclic_block_index(self):
        offs = block_ranges(8, 4)  # blocks [0,2),[2,4),[4,6),[6,8)
        np.testing.assert_array_equal(cyclic_block_index(offs, 2, 0), [0, 1, 4, 5])
        np.testing.assert_array_equal(cyclic_block_index(offs, 2, 1), [2, 3, 6, 7])

    def test_cyclic_partition_is_disjoint_cover(self):
        offs = block_ranges(23, 6)
        parts = [cyclic_block_index(offs, 3, v) for v in range(3)]
        joined = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(joined, np.arange(23))

    def test_global_to_local_map(self):
        owned = np.array([4, 7, 9])
        loc = global_to_local_map(12, owned)
        assert loc[4] == 0 and loc[7] == 1 and loc[9] == 2
        assert loc[0] == -1 and loc[11] == -1


class TestGroupOffsets:
    def test_grouping(self):
        fine = block_ranges(10, 4)
        np.testing.assert_array_equal(group_offsets(fine, 2), [0, 6, 10])

    def test_group_must_divide(self):
        with pytest.raises(DistributionError):
            group_offsets(block_ranges(10, 4), 3)

    @given(total=st.integers(0, 1000), nfine=st.integers(1, 8), group=st.integers(1, 4))
    @settings(max_examples=100, deadline=None)
    def test_property_alignment(self, total, nfine, group):
        nblocks = nfine * group
        fine = block_ranges(total, nblocks)
        coarse = group_offsets(fine, group)
        # every coarse block is the union of `group` consecutive fine blocks
        assert len(coarse) == nfine + 1
        for u in range(nfine):
            assert coarse[u] == fine[u * group]
        assert coarse[-1] == total


class TestPartitionCoo:
    def test_2d_partition_localizes_and_covers(self):
        rows = np.array([0, 5, 9, 2, 7])
        cols = np.array([1, 3, 8, 8, 0])
        vals = np.arange(5.0)
        ro = block_ranges(10, 2)
        co = block_ranges(9, 3)
        parts = partition_coo_2d(rows, cols, vals, ro, co)
        total = sum(len(q[0]) for q in parts.values())
        assert total == 5
        for (bi, bj), (lr, lc, lv, gi) in parts.items():
            np.testing.assert_array_equal(rows[gi] - ro[bi], lr)
            np.testing.assert_array_equal(cols[gi] - co[bj], lc)
            np.testing.assert_array_equal(vals[gi], lv)
            assert (lr >= 0).all() and (lr < ro[bi + 1] - ro[bi]).all()
            assert (lc >= 0).all() and (lc < co[bj + 1] - co[bj]).all()

    def test_2d_partition_empty(self):
        e = np.empty(0, np.int64)
        assert partition_coo_2d(e, e, np.empty(0), block_ranges(4, 2), block_ranges(4, 2)) == {}

    def test_2d_partition_length_mismatch(self):
        with pytest.raises(DistributionError):
            partition_coo_2d(
                np.zeros(2, np.int64), np.zeros(1, np.int64), np.zeros(2),
                block_ranges(4, 2), block_ranges(4, 2),
            )

    def test_rows_partition_keeps_global_columns(self):
        rows = np.array([0, 3, 3])
        cols = np.array([7, 2, 5])
        vals = np.ones(3)
        parts = partition_coo_rows(rows, cols, vals, block_ranges(4, 2))
        assert set(parts) == {0, 1}
        np.testing.assert_array_equal(parts[1][1], [2, 5])  # global cols

    def test_partition_by_owner(self):
        rows = np.arange(6, dtype=np.int64)
        cols = np.arange(6, dtype=np.int64)
        vals = np.arange(6.0)
        owner = np.array([2, 0, 2, 1, 0, 2])
        parts = partition_by_owner(rows, cols, vals, owner, 3)
        assert sorted(parts) == [0, 1, 2]
        np.testing.assert_array_equal(parts[0][3], [1, 4])  # gidx
        np.testing.assert_array_equal(parts[2][0], [0, 2, 5])

    def test_partition_by_owner_bad_rank(self):
        one = np.zeros(1, np.int64)
        with pytest.raises(DistributionError):
            partition_by_owner(one, one, np.zeros(1), np.array([5]), 2)

    @given(
        nnz=st.integers(0, 300),
        m=st.integers(1, 40),
        n=st.integers(1, 40),
        nb=st.integers(1, 5),
        mb=st.integers(1, 5),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_2d_partition_is_a_bijection(self, nnz, m, n, nb, mb, seed):
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, m, nnz).astype(np.int64)
        cols = rng.integers(0, n, nnz).astype(np.int64)
        vals = rng.standard_normal(nnz)
        parts = partition_coo_2d(rows, cols, vals, block_ranges(m, mb), block_ranges(n, nb))
        gidx_all = np.concatenate([q[3] for q in parts.values()]) if parts else np.empty(0)
        assert len(gidx_all) == nnz
        if nnz:
            np.testing.assert_array_equal(np.sort(gidx_all), np.arange(nnz))

"""Tests for Matrix Market IO."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ReproError
from repro.sparse.generate import erdos_renyi
from repro.sparse.io import read_matrix_market, write_matrix_market


class TestRoundTrip:
    def test_write_read(self, tmp_path, rng):
        S = erdos_renyi(30, 25, 4, seed=0)
        path = tmp_path / "m.mtx"
        write_matrix_market(path, S)
        back = read_matrix_market(path)
        np.testing.assert_allclose(back.to_scipy().toarray(), S.to_scipy().toarray())

    def test_gzipped_roundtrip(self, tmp_path):
        S = erdos_renyi(10, 10, 2, seed=1)
        path = tmp_path / "m.mtx.gz"
        write_matrix_market(path, S)
        back = read_matrix_market(path)
        np.testing.assert_allclose(back.to_scipy().toarray(), S.to_scipy().toarray())


class TestParsing:
    def test_pattern_field(self, tmp_path):
        path = tmp_path / "p.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "% comment line\n"
            "3 3 2\n"
            "1 2\n"
            "3 1\n"
        )
        mat = read_matrix_market(path)
        dense = mat.to_scipy().toarray()
        assert dense[0, 1] == 1.0 and dense[2, 0] == 1.0
        assert mat.nnz == 2

    def test_symmetric_mirrors_off_diagonal(self, tmp_path):
        path = tmp_path / "s.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 3\n"
            "1 1 5.0\n"
            "2 1 2.0\n"
            "3 2 4.0\n"
        )
        dense = read_matrix_market(path).to_scipy().toarray()
        assert dense[0, 0] == 5.0
        assert dense[1, 0] == 2.0 and dense[0, 1] == 2.0
        assert dense[2, 1] == 4.0 and dense[1, 2] == 4.0

    def test_integer_field(self, tmp_path):
        path = tmp_path / "i.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate integer general\n"
            "2 2 1\n"
            "1 1 7\n"
        )
        assert read_matrix_market(path).vals[0] == 7.0

    def test_rejects_non_mm(self, tmp_path):
        path = tmp_path / "x.mtx"
        path.write_text("not a matrix\n1 1 1\n")
        with pytest.raises(ReproError):
            read_matrix_market(path)

    def test_rejects_dense_format(self, tmp_path):
        path = tmp_path / "d.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
        with pytest.raises(ReproError):
            read_matrix_market(path)

    def test_rejects_complex_field(self, tmp_path):
        path = tmp_path / "c.mtx"
        path.write_text("%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n")
        with pytest.raises(ReproError):
            read_matrix_market(path)

"""End-to-end integration tests across subsystems."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.algorithms.registry import ALGORITHMS, make_algorithm
from repro.algorithms.fused import run_fusedmm
from repro.baselines.serial import fusedmm_b_serial, sddmm_serial, spmm_a_serial
from repro.sparse.generate import erdos_renyi, realworld_standin
from repro.types import Elision, FusedVariant


class TestRepeatedCallPattern:
    """The paper's motivating usage: 'typical applications make a call to
    an SDDMM operation and feed the sparse output to an SpMM operation,
    repeating the pair several times with the same nonzero pattern (but
    possibly different values)'."""

    def test_same_pattern_changing_values(self, small_problem, rng):
        S, A, B = small_problem
        for it in range(3):
            vals = rng.standard_normal(S.nnz)
            S_it = S.with_values(vals)
            R, _ = repro.sddmm(S_it, A, B, p=4, c=2)
            out, _ = repro.spmm_a(R, B, p=4, c=2)
            ref = spmm_a_serial(sddmm_serial(S_it, A, B), B)
            np.testing.assert_allclose(out, ref, rtol=1e-9)

    def test_sddmm_output_feeds_spmm_exactly(self, small_problem):
        """FusedMM == feeding the collected SDDMM back into SpMM."""
        S, A, B = small_problem
        R, _ = repro.sddmm(S, A, B, p=4, c=2, algorithm="1.5d-sparse-shift")
        via_pipeline, _ = repro.spmm_b(R, A, p=4, c=2, algorithm="1.5d-sparse-shift")
        fused, _ = repro.fusedmm_b(
            S, A, B, p=4, c=2, algorithm="1.5d-sparse-shift",
            elision="replication-reuse",
        )
        np.testing.assert_allclose(via_pipeline, fused, rtol=1e-9)


class TestCrossAlgorithmConsistency:
    def test_all_families_agree_pairwise(self, small_problem):
        """Beyond matching the serial reference, all four families agree
        with each other to float tolerance on identical inputs."""
        S, A, B = small_problem
        outs = []
        for name in sorted(ALGORITHMS):
            p, c = (8, 2)
            alg = make_algorithm(name, p, c)
            res = run_fusedmm(alg, S, A, B, variant=FusedVariant.FUSED_B,
                              elision=Elision.NONE)
            outs.append((name, res.output))
        base_name, base = outs[0]
        for name, out in outs[1:]:
            np.testing.assert_allclose(out, base, rtol=1e-9, atol=1e-12)


class TestRealWorldWorkflow:
    def test_standin_through_full_pipeline(self):
        """Table V stand-in -> auto algorithm -> FusedMM -> valid output."""
        S = realworld_standin("amazon-large", scale=9, seed=0)
        rng = np.random.default_rng(0)
        r = 32
        A = rng.standard_normal((S.nrows, r))
        B = rng.standard_normal((S.ncols, r))
        out, report = repro.fusedmm_b(
            S, A, B, p=8, algorithm="auto", elision="none"
        )
        np.testing.assert_allclose(out, fusedmm_b_serial(S, A, B), rtol=1e-8)
        assert report.comm_words > 0

    def test_io_roundtrip_through_distributed_kernel(self, tmp_path, rng):
        """MatrixMarket file -> distributed SpMM."""
        from repro.sparse.io import read_matrix_market, write_matrix_market

        S = erdos_renyi(60, 45, 4, seed=8)
        path = tmp_path / "g.mtx"
        write_matrix_market(path, S)
        S2 = read_matrix_market(path)
        B = rng.standard_normal((45, 8))
        out, _ = repro.spmm_a(S2, B, p=4)
        np.testing.assert_allclose(out, spmm_a_serial(S, B), rtol=1e-9)


class TestScalingSanity:
    def test_more_ranks_less_compute_per_rank(self):
        """Per-rank FLOPs shrink ~linearly with p (load balance)."""
        S = erdos_renyi(512, 512, 8, seed=0)
        rng = np.random.default_rng(1)
        A = rng.standard_normal((512, 16))
        B = rng.standard_normal((512, 16))
        flops = {}
        for p in (2, 8):
            _, report = repro.fusedmm_a(
                S, A, B, p=p, c=1, algorithm="1.5d-dense-shift", elision="none"
            )
            flops[p] = report.flops
        assert flops[8] < flops[2]
        # random permutation keeps imbalance moderate
        assert flops[8] > flops[2] / 8  # can't beat perfect balance

    def test_replication_trades_propagation_for_replication(self):
        """Raising c shrinks shift traffic and grows fiber traffic."""
        from repro.types import Phase

        S = erdos_renyi(512, 512, 8, seed=0)
        rng = np.random.default_rng(1)
        A = rng.standard_normal((512, 16))
        B = rng.standard_normal((512, 16))
        words = {}
        for c in (1, 4):
            _, report = repro.fusedmm_b(
                S, A, B, p=8, c=c, algorithm="1.5d-dense-shift",
                elision="replication-reuse",
            )
            words[c] = (
                report.phase_words(Phase.REPLICATION),
                report.phase_words(Phase.PROPAGATION),
            )
        assert words[4][0] > words[1][0]  # more replication traffic
        assert words[4][1] < words[1][1]  # fewer/smaller shifts

"""Hypothesis property tests: distributed == serial on randomized inputs.

The central invariant of the whole library — any algorithm, any grid, any
matrix shape, any sparsity — plus algebraic identities connecting the
kernels.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.registry import (
    ALGORITHMS,
    feasible_replication_factors,
    make_algorithm,
)
from repro.baselines.serial import (
    fusedmm_a_serial,
    fusedmm_b_serial,
    sddmm_serial,
    spmm_a_serial,
    spmm_b_serial,
)
from repro.sparse.coo import CooMatrix

from tests.helpers import dist_sddmm, dist_spmm_a, dist_spmm_b


@st.composite
def problems(draw):
    m = draw(st.integers(4, 40))
    n = draw(st.integers(4, 40))
    r = draw(st.integers(1, 12))
    nnz = draw(st.integers(0, 120))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, m, nnz).astype(np.int64)
    cols = rng.integers(0, n, nnz).astype(np.int64)
    vals = rng.standard_normal(nnz)
    S = CooMatrix(rows, cols, vals, (m, n))
    A = rng.standard_normal((m, r))
    B = rng.standard_normal((n, r))
    return S, A, B


@st.composite
def grids(draw):
    name = draw(st.sampled_from(sorted(ALGORITHMS)))
    p = draw(st.sampled_from([1, 2, 4, 8, 9, 16]))
    feas = feasible_replication_factors(name, p)
    if not feas:
        p = 4
        feas = feasible_replication_factors(name, p)
    c = draw(st.sampled_from(list(feas)))
    return name, p, c


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(problem=problems(), grid=grids())
def test_distributed_sddmm_equals_serial(problem, grid):
    S, A, B = problem
    name, p, c = grid
    alg = make_algorithm(name, p, c)
    got = dist_sddmm(alg, S, A, B)
    want = sddmm_serial(S, A, B)
    np.testing.assert_allclose(got.vals, want.vals, rtol=1e-8, atol=1e-10)


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(problem=problems(), grid=grids())
def test_distributed_spmm_equals_serial(problem, grid):
    S, A, B = problem
    name, p, c = grid
    alg = make_algorithm(name, p, c)
    np.testing.assert_allclose(
        dist_spmm_a(alg, S, B), spmm_a_serial(S, B), rtol=1e-8, atol=1e-10
    )
    np.testing.assert_allclose(
        dist_spmm_b(alg, S, A), spmm_b_serial(S, A), rtol=1e-8, atol=1e-10
    )


class TestAlgebraicIdentities:
    """Cross-kernel identities that must hold by definition."""

    @given(problem=problems())
    @settings(max_examples=50, deadline=None)
    def test_fusedmm_is_sddmm_then_spmm(self, problem):
        S, A, B = problem
        R = sddmm_serial(S, A, B)
        np.testing.assert_allclose(
            fusedmm_a_serial(S, A, B), spmm_a_serial(R, B), rtol=1e-9, atol=1e-10
        )
        np.testing.assert_allclose(
            fusedmm_b_serial(S, A, B), spmm_b_serial(R, A), rtol=1e-9, atol=1e-10
        )

    @given(problem=problems())
    @settings(max_examples=50, deadline=None)
    def test_fusedmm_transposition_identity(self, problem):
        """FusedMMA(S, A, B) == FusedMMB(S.T, B, A) — the paper's role
        interchange that the driver relies on."""
        S, A, B = problem
        lhs = fusedmm_a_serial(S, A, B)
        rhs = fusedmm_b_serial(S.transposed(), B, A)
        np.testing.assert_allclose(lhs, rhs, rtol=1e-9, atol=1e-10)

    @given(problem=problems())
    @settings(max_examples=50, deadline=None)
    def test_sddmm_ones_is_masked_product(self, problem):
        S, A, B = problem
        ones = S.with_values(np.ones(S.nnz))
        R = sddmm_serial(ones, A, B)
        dense = A @ B.T
        np.testing.assert_allclose(R.vals, dense[S.rows, S.cols], rtol=1e-9, atol=1e-10)

    @given(problem=problems())
    @settings(max_examples=50, deadline=None)
    def test_spmm_transpose_duality(self, problem):
        """SpMMB(S, A) == SpMMA(S.T, A)."""
        S, A, B = problem
        np.testing.assert_allclose(
            spmm_b_serial(S, A), spmm_a_serial(S.transposed(), A), rtol=1e-9, atol=1e-10
        )

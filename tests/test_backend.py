"""The execution-backend seam: registry, guards, and graceful degradation.

Everything here runs on the thread backend or against the guard layer, so
the suite is tier-1 (no mpi4py required).  The mpi transport itself is
exercised bitwise by the CI ``mpi-smoke`` lane (``repro.cli mpi-smoke``
under ``mpirun``) and by re-running the equivalence suites with
``--exec-backend mpi``.
"""

from __future__ import annotations

import importlib.util

import numpy as np
import pytest

import repro
from repro.errors import BackendUnavailableError, ReproError, UnknownBackendError
from repro.runtime.backend import (
    BACKENDS,
    Transport,
    World,
    ensure_backend_available,
    mpi_available,
    resolve_backend,
    validate_backend_name,
)
from repro.runtime.spmd import WorkerPool, make_worker_pool, run_spmd

HAVE_MPI4PY = importlib.util.find_spec("mpi4py") is not None


# ----------------------------------------------------------------------
# name registry
# ----------------------------------------------------------------------


class TestBackendRegistry:
    def test_registry_contents(self):
        assert BACKENDS == ("threads", "mpi")

    @pytest.mark.parametrize("name", ["threads", "mpi", "THREADS", " mpi "])
    def test_known_names_normalize(self, name):
        assert validate_backend_name(name) in BACKENDS

    @pytest.mark.parametrize("bad", ["gasnet", "ucx", "", "thread", "mpich"])
    def test_unknown_name_typed_error(self, bad):
        with pytest.raises(UnknownBackendError) as exc:
            validate_backend_name(bad)
        msg = str(exc.value)
        assert "threads" in msg and "mpi" in msg  # lists the registry

    def test_unknown_backend_is_repro_error(self):
        assert issubclass(UnknownBackendError, ReproError)
        assert issubclass(BackendUnavailableError, ReproError)

    def test_threads_always_available(self):
        ensure_backend_available("threads")
        assert resolve_backend("threads") == "threads"

    def test_mpi_availability_reflects_mpi4py(self):
        assert mpi_available() == HAVE_MPI4PY

    def test_missing_mpi4py_install_hint(self, monkeypatch):
        monkeypatch.setattr(
            "repro.runtime.backend.mpi_available", lambda: False
        )
        with pytest.raises(BackendUnavailableError) as exc:
            ensure_backend_available("mpi")
        assert "mpi4py" in str(exc.value)
        assert "mpirun" in str(exc.value) or "pip install" in str(exc.value)

    @pytest.mark.skipif(HAVE_MPI4PY, reason="mpi4py installed here")
    def test_missing_mpi4py_install_hint_real(self):
        with pytest.raises(BackendUnavailableError) as exc:
            resolve_backend("mpi")
        assert "mpi4py" in str(exc.value)


# ----------------------------------------------------------------------
# factory + transport surface
# ----------------------------------------------------------------------


class TestFactory:
    def test_threads_pool(self):
        with make_worker_pool("threads", 2) as pool:
            assert isinstance(pool, WorkerPool)
            assert pool.spans_processes is False
            results, _ = pool.run(lambda comm: comm.rank)
            assert results == [0, 1]

    def test_unknown_backend_rejected(self):
        with pytest.raises(UnknownBackendError):
            make_worker_pool("smp", 2)

    def test_world_is_a_transport(self):
        w = World(2)
        assert isinstance(w, Transport)
        for attr in ("deliver", "collect", "abort", "reset", "describe_blocked"):
            assert callable(getattr(w, attr))

    def test_transport_is_abstract(self):
        with pytest.raises(TypeError):
            Transport()  # type: ignore[abstract]

    def test_backend_mpi_imports_without_mpi4py(self):
        # The module must import cleanly so guards raise typed errors,
        # not ImportError, in environments without mpi4py.
        import repro.runtime.backend_mpi as bm

        assert bm.MpiWorkerPool.spans_processes is True

    def test_run_spmd_backend_knob(self):
        results, _ = run_spmd(2, lambda comm: comm.rank, backend="threads")
        assert results == [0, 1]
        with pytest.raises(UnknownBackendError):
            run_spmd(2, lambda comm: comm.rank, backend="bogus")


# ----------------------------------------------------------------------
# session / api plumbing
# ----------------------------------------------------------------------


class TestSessionBackend:
    def test_explicit_threads_equals_default(self, small_problem):
        S, A, B = small_problem
        ref, _ = repro.fusedmm_a(S, A, B, p=4, c=2, algorithm="1.5d-dense-shift")
        out, _ = repro.fusedmm_a(
            S, A, B, p=4, c=2, algorithm="1.5d-dense-shift", backend="threads"
        )
        assert np.array_equal(out, ref)

    def test_plan_rejects_unknown_backend(self, small_problem):
        S, A, _ = small_problem
        with pytest.raises(UnknownBackendError):
            repro.plan(S, A.shape[1], p=4, c=2, backend="fabric")

    def test_repr_names_backend(self, small_problem):
        S, A, _ = small_problem
        with repro.plan(S, A.shape[1], p=4, c=2) as sess:
            assert "backend='threads'" in repr(sess)

    @pytest.mark.parametrize(
        "kwargs,needle",
        [
            ({"faults": {"seed": 1, "crash_rate": 0.5}}, "fault"),
            ({"retries": 1}, "retries"),
            ({"persistent": False}, "persistent"),
        ],
    )
    def test_mpi_thread_only_guards(self, small_problem, kwargs, needle):
        """Thread-only features are rejected before the availability check,
        so the guard is testable without mpi4py."""
        S, A, _ = small_problem
        with pytest.raises(ReproError, match=needle):
            repro.plan(S, A.shape[1], p=4, c=2, backend="mpi", **kwargs)

    @pytest.mark.skipif(HAVE_MPI4PY, reason="mpi4py installed here")
    def test_plan_mpi_without_mpi4py_hint(self, small_problem):
        S, A, _ = small_problem
        with pytest.raises(BackendUnavailableError, match="mpi4py"):
            repro.plan(S, A.shape[1], p=4, c=2, backend="mpi")

    @pytest.mark.skipif(HAVE_MPI4PY, reason="mpi4py installed here")
    def test_one_shot_mpi_without_mpi4py_hint(self, small_problem):
        S, A, B = small_problem
        with pytest.raises(BackendUnavailableError, match="mpi4py"):
            repro.fusedmm_a(S, A, B, p=4, c=2, backend="mpi")

"""Tests for COO containers and cached CSR structures."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DistributionError
from repro.sparse.coo import CooMatrix, SparseBlock


def random_coo(rng, m, n, nnz):
    rows = rng.integers(0, m, nnz).astype(np.int64)
    cols = rng.integers(0, n, nnz).astype(np.int64)
    vals = rng.standard_normal(nnz)
    return rows, cols, vals


class TestSparseBlock:
    def test_csr_matches_scipy(self, rng):
        rows, cols, vals = random_coo(rng, 10, 8, 30)
        blk = SparseBlock(rows, cols, vals, (10, 8))
        import scipy.sparse as sp

        ref = sp.coo_matrix((vals, (rows, cols)), shape=(10, 8)).toarray()
        np.testing.assert_allclose(blk.csr().toarray(), ref)

    def test_csr_t_is_transpose(self, rng):
        rows, cols, vals = random_coo(rng, 10, 8, 30)
        blk = SparseBlock(rows, cols, vals, (10, 8))
        np.testing.assert_allclose(blk.csr_t().toarray(), blk.csr().toarray().T)

    def test_csr_with_override_values(self, rng):
        rows, cols, vals = random_coo(rng, 6, 6, 12)
        blk = SparseBlock(rows, cols, vals, (6, 6))
        new_vals = np.arange(len(vals), dtype=float)
        got = blk.csr(new_vals).toarray()
        ref = SparseBlock(rows, cols, new_vals, (6, 6)).csr().toarray()
        np.testing.assert_allclose(got, ref)

    def test_value_order_preserved_through_structure_cache(self, rng):
        """csr(values) must map values by COO position, not CSR position."""
        rows = np.array([2, 0, 1], dtype=np.int64)
        cols = np.array([0, 1, 2], dtype=np.int64)
        vals = np.array([10.0, 20.0, 30.0])
        blk = SparseBlock(rows, cols, vals, (3, 3))
        dense = blk.csr().toarray()
        assert dense[2, 0] == 10.0 and dense[0, 1] == 20.0 and dense[1, 2] == 30.0

    def test_empty_block(self):
        e = np.empty(0, np.int64)
        blk = SparseBlock(e, e, np.empty(0), (4, 5))
        assert blk.nnz == 0
        assert blk.csr().nnz == 0
        assert blk.csr_t().shape == (5, 4)

    def test_out_of_bounds_raises(self):
        with pytest.raises(DistributionError):
            SparseBlock(np.array([4]), np.array([0]), np.ones(1), (4, 5))
        with pytest.raises(DistributionError):
            SparseBlock(np.array([0]), np.array([-1]), np.ones(1), (4, 5))

    def test_length_mismatch_raises(self):
        with pytest.raises(DistributionError):
            SparseBlock(np.zeros(2, np.int64), np.zeros(1, np.int64), np.zeros(2), (3, 3))

    def test_transposed(self, rng):
        rows, cols, vals = random_coo(rng, 7, 9, 20)
        blk = SparseBlock(rows, cols, vals, (7, 9))
        t = blk.transposed()
        assert t.shape == (9, 7)
        np.testing.assert_allclose(t.csr().toarray(), blk.csr().toarray().T)

    def test_with_values_shares_structure(self, rng):
        rows, cols, vals = random_coo(rng, 5, 5, 10)
        blk = SparseBlock(rows, cols, vals, (5, 5))
        blk.csr()  # warm the cache
        other = blk.with_values(vals * 2)
        assert other._csr is blk._csr
        np.testing.assert_allclose(other.csr().toarray(), 2 * blk.csr().toarray())

    @given(
        m=st.integers(1, 20), n=st.integers(1, 20),
        nnz=st.integers(0, 100), seed=st.integers(0, 1 << 16),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_csr_roundtrip(self, m, n, nnz, seed):
        rng = np.random.default_rng(seed)
        rows, cols, vals = random_coo(rng, m, n, nnz)
        blk = SparseBlock(rows, cols, vals, (m, n))
        dense = np.zeros((m, n))
        np.add.at(dense, (rows, cols), vals)  # duplicates sum in CSR too
        np.testing.assert_allclose(blk.csr().toarray(), dense, atol=1e-12)


class TestCooMatrix:
    def test_dedupe_keeps_first_occurrence(self):
        mat = CooMatrix(
            np.array([1, 1, 0]), np.array([2, 2, 0]), np.array([5.0, 7.0, 1.0]), (3, 3)
        )
        assert mat.nnz == 2
        dense = mat.to_scipy().toarray()
        assert dense[1, 2] == 5.0  # first kept

    def test_from_to_scipy_roundtrip(self, rng):
        import scipy.sparse as sp

        ref = sp.random(20, 15, density=0.2, random_state=42, format="csr")
        mat = CooMatrix.from_scipy(ref)
        np.testing.assert_allclose(mat.to_scipy().toarray(), ref.toarray())

    def test_bounds_validation(self):
        with pytest.raises(DistributionError):
            CooMatrix(np.array([3]), np.array([0]), np.ones(1), (3, 3))

    def test_transposed(self, rng):
        rows, cols, vals = random_coo(rng, 9, 4, 15)
        mat = CooMatrix(rows, cols, vals, (9, 4))
        np.testing.assert_allclose(
            mat.transposed().to_scipy().toarray(), mat.to_scipy().toarray().T
        )

    def test_permuted(self):
        mat = CooMatrix(np.array([0, 1]), np.array([0, 1]), np.array([1.0, 2.0]), (2, 2))
        perm = np.array([1, 0])
        got = mat.permuted(perm, perm).to_scipy().toarray()
        np.testing.assert_allclose(got, [[2.0, 0.0], [0.0, 1.0]])

    def test_with_values(self):
        mat = CooMatrix(np.array([0]), np.array([1]), np.array([3.0]), (2, 2))
        got = mat.with_values(np.array([9.0]))
        assert got.vals[0] == 9.0
        assert got.shape == (2, 2)

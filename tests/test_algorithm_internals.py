"""White-box tests of the algorithms' index arithmetic.

The correctness of the phase loops rests on a handful of invariants
(block schedules, Cannon skews, fiber assembly order) checked directly
here so regressions localize to a formula rather than a full kernel.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.dense_repl_25d import DenseReplicate25D
from repro.algorithms.dense_shift_15d import DenseShift15D
from repro.algorithms.sparse_repl_25d import SparseReplicate25D
from repro.algorithms.sparse_shift_15d import SparseShift15D
from repro.sparse.generate import erdos_renyi


class TestDenseShiftSchedule:
    def test_held_block_cycles_through_layer(self):
        alg = DenseShift15D(8, 2)
        plan = alg.plan(64, 64, 8)
        for u in range(4):
            for v in range(2):
                seen = {plan.held_block(u, v, t) for t in range(plan.n_layer)}
                # exactly the blocks of layer v, each seen once
                assert seen == {b * 2 + v for b in range(4)}

    def test_held_block_starts_at_home(self):
        alg = DenseShift15D(6, 3)
        plan = alg.plan(60, 60, 6)
        for rank in range(6):
            u, v = alg.grid.coords(rank)
            assert plan.held_block(u, v, 0) == u * 3 + v

    def test_coarse_blocks_align_with_fine_groups(self):
        alg = DenseShift15D(6, 3)
        plan = alg.plan(61, 47, 6)  # ragged on purpose
        for u in range(plan.n_layer):
            assert plan.row_coarse[u] == plan.row_fine[u * 3]
        assert plan.row_coarse[-1] == 61


class TestSparseShiftLayout:
    def test_strips_partition_r(self):
        alg = SparseShift15D(8, 2)
        plan = alg.plan(64, 64, 13)  # 13 does not divide evenly
        widths = [plan.strip_width(u) for u in range(plan.n_layer)]
        assert sum(widths) == 13
        assert max(widths) - min(widths) <= 1

    def test_cyclic_rows_partition_m(self):
        alg = SparseShift15D(8, 4)
        plan = alg.plan(101, 77, 16)
        rows = np.sort(np.concatenate(plan.rows_a_of_fiber))
        np.testing.assert_array_equal(rows, np.arange(101))

    def test_layer_owns_consistent_columns(self):
        """Every nonzero lands in the layer owning its B rows."""
        alg = SparseShift15D(8, 2)
        plan = alg.plan(64, 64, 16)
        S = erdos_renyi(64, 64, 4, seed=0)
        locals_ = alg.distribute(plan, S, None, None)
        for loc in locals_:
            if len(loc.S_cols):
                assert (loc.loc_b[loc.S_cols] >= 0).all()


class TestCannonSkew25D:
    @pytest.mark.parametrize("p,c", [(4, 1), (8, 2), (16, 4), (18, 2)])
    def test_sigma_pairs_s_and_b_every_phase(self, p, c):
        """At every phase, every rank's S block column matches its B block."""
        alg = DenseReplicate25D(p, c)
        plan = alg.plan(64, 64, 16)
        q = plan.q
        for x in range(q):
            for y in range(q):
                sigmas = [plan.sigma(x, y, t) for t in range(q)]
                assert sorted(sigmas) == list(range(q))  # all coarse columns

    def test_skewed_distribution_covers_all_blocks(self):
        alg = DenseReplicate25D(8, 2)
        plan = alg.plan(64, 64, 16)
        S = erdos_renyi(64, 64, 4, seed=1)
        locals_ = alg.distribute(plan, S, None, None)
        total = sum(len(loc.S_rows) for loc in locals_)
        assert total == S.nnz

    def test_kappa_alignment_sparse_replicate(self):
        """A and B pieces carry the same chunk index at every phase."""
        alg = SparseReplicate25D(8, 2)
        plan = alg.plan(64, 64, 16)
        q = plan.q
        for x in range(q):
            for y in range(q):
                k0 = plan.kappa0(x, y)
                assert 0 <= k0 < q
        # chunk slices partition each layer strip
        for z in range(plan.c):
            sl = [plan.chunk_slice(z, k) for k in range(q)]
            covered = sorted((s.start, s.stop) for s in sl)
            lo = int(plan.strips[z])
            for start, stop in covered:
                assert start == lo
                lo = stop
            assert lo == int(plan.strips[z + 1])


class TestValueChunking25DSparse:
    def test_value_chunks_partition_block_nnz(self):
        alg = SparseReplicate25D(8, 2)
        plan = alg.plan(64, 64, 16)
        S = erdos_renyi(64, 64, 5, seed=2)
        locals_ = alg.distribute(plan, S, None, None)
        # fiber ranks sharing (x, y) hold identical coordinates and
        # complementary value chunks
        by_xy = {}
        for loc in locals_:
            by_xy.setdefault((loc.x, loc.y), []).append(loc)
        for (x, y), group in by_xy.items():
            group.sort(key=lambda l: l.z)
            first = group[0]
            for other in group[1:]:
                np.testing.assert_array_equal(first.S_rows, other.S_rows)
                np.testing.assert_array_equal(first.gidx, other.gidx)
            total = sum(len(loc.S_vals_chunk) for loc in group)
            assert total == len(first.S_rows)

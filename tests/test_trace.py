"""Tests for the tracing + metrics subsystem (`repro.runtime.trace`).

Covers the observability contract:

* the disabled path is a true no-op: with ``trace="off"`` no tracer is
  attached and no recording method is ever invoked (counter-asserted);
* span bookkeeping agrees with the phase counters: a tracked region's
  span duration equals the seconds the counter accumulated, exactly
  (both sides read the same ``perf_counter`` value), and nested tracked
  regions produce properly nested spans;
* Chrome trace-event export emits schema-valid JSON: per-rank thread
  metadata, complete/async/instant events with microsecond timestamps,
  and async begin/end pairs that match up by id;
* a traced overlapped FusedMM run contains duration spans for all three
  paper phases and async spans for the in-flight exchanges, and the
  derived :class:`TimelineStats` occupancies are valid fractions;
* the ring buffer bounds memory (old events evicted, ``dropped`` counts);
* ``RunReport.to_dict``/``to_json`` round-trip through ``json.loads``,
  and the empty-report reductions (``flops`` etc.) return 0 instead of
  raising;
* ``Session.metrics()`` emits one JSON-lines-ready record per kernel
  call, for sync and async calls alike.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro
from repro.errors import ReproError
from repro.runtime.profile import RankProfile, RunReport
from repro.runtime.trace import (
    RankTimeline,
    TimelineStats,
    Tracer,
    export_chrome_trace,
)
from repro.types import Phase


def _problem(n=256, r=16, seed=0):
    S = repro.erdos_renyi(n, n, nnz_per_row=4, seed=seed)
    rng = np.random.default_rng(seed + 1)
    return S, rng.standard_normal((n, r)), rng.standard_normal((n, r))


class TestDisabledPath:
    def test_off_attaches_no_tracers(self):
        S, A, B = _problem()
        with repro.plan(S, 16, p=4, algorithm="1.5d-sparse-shift",
                        comm="sparse", trace="off") as sess:
            sess.fusedmm_a(A, B)
            assert sess.tracers() == []
            assert all(p.tracer is None for p in sess._profiles)

    def test_off_never_invokes_recording(self, monkeypatch):
        """No instrumentation site may record (or even construct) events
        when tracing is off — the counter proves the no-op, not just the
        absence of output."""
        calls = {"n": 0}

        def counting_append(self, event):
            calls["n"] += 1
            self.events.append(event)

        monkeypatch.setattr(Tracer, "_append", counting_append)
        S, A, B = _problem()
        with repro.plan(S, 16, p=4, algorithm="1.5d-sparse-shift",
                        comm="sparse", overlap="on", trace="off") as sess:
            sess.fusedmm_a(A, B)
            sess.fusedmm_a_async(A, B).result()
        assert calls["n"] == 0

    def test_invalid_trace_mode_rejected(self):
        S, _, _ = _problem()
        with pytest.raises(ReproError, match="trace"):
            repro.plan(S, 16, p=4, trace="yes")

    def test_untraced_session_raises_on_trace_apis(self):
        S, A, B = _problem()
        with repro.plan(S, 16, p=4, trace="off") as sess:
            sess.spmm_a(B)
            with pytest.raises(ReproError, match="trace"):
                sess.timeline()
            with pytest.raises(ReproError, match="trace"):
                sess.export_trace()


class TestSpanCounterAgreement:
    def test_span_duration_equals_counter_seconds(self):
        """track() reads perf_counter once at region end and feeds both
        the counter and the span — the two views agree to the bit."""
        prof = RankProfile()
        prof.tracer = Tracer(rank=0)
        with prof.track(Phase.REPLICATION):
            sum(range(1000))
        spans = [ev for ev in prof.tracer.events if ev[0] == "span"]
        assert len(spans) == 1
        kind, name, cat, t0, t1 = spans[0]
        assert (name, cat) == (Phase.REPLICATION.value, "phase")
        assert t1 - t0 == prof.counters[Phase.REPLICATION].seconds

    def test_nested_tracking_produces_nested_spans(self):
        prof = RankProfile()
        prof.tracer = Tracer(rank=0)
        with prof.track(Phase.PROPAGATION):
            with prof.track(Phase.COMPUTATION):
                sum(range(1000))
        spans = [ev for ev in prof.tracer.events if ev[0] == "span"]
        # spans are recorded at their end: inner first, outer second
        assert [s[1] for s in spans] == [
            Phase.COMPUTATION.value,
            Phase.PROPAGATION.value,
        ]
        (_, _, _, i0, i1), (_, _, _, o0, o1) = spans
        assert o0 <= i0 <= i1 <= o1
        # and the inner seconds were attributed to the inner counter only
        inner = prof.counters[Phase.COMPUTATION].seconds
        outer = prof.counters[Phase.PROPAGATION].seconds
        assert inner == i1 - i0
        assert outer == o1 - o0

    def test_self_time_decomposition(self):
        """RankTimeline subtracts nested child time, so self times sum to
        the union extent of the phase spans."""
        tr = Tracer(rank=3)
        tr.span(Phase.PROPAGATION.value, "phase", 10.0, 11.0)  # child
        tr.span(Phase.COMPUTATION.value, "phase", 11.0, 12.0)  # child
        tr.span(Phase.REPLICATION.value, "phase", 10.0, 13.0)  # parent
        tl = RankTimeline.from_events(3, tr.events)
        assert tl.span_seconds == pytest.approx(3.0)
        assert tl.compute_seconds == pytest.approx(1.0)
        # replication self time excludes both children
        assert tl.exposed_comm_seconds == pytest.approx(1.0 + 1.0)
        assert tl.idle_seconds == pytest.approx(0.0)

    def test_overlap_window_occupancy(self):
        tr = Tracer(rank=0)
        tr.span(Phase.COMPUTATION.value, "phase", 0.0, 2.0)
        tr.async_span("recv<-r1", "comm", 1.0, 3.0)  # covers half the kernel
        tr.async_span("panel-lease", "buffer", 0.0, 2.0)  # must not count
        tl = RankTimeline.from_events(0, tr.events)
        assert tl.kernel_seconds == pytest.approx(2.0)
        assert tl.overlap_covered_seconds == pytest.approx(1.0)
        assert tl.overlap_window_occupancy == pytest.approx(0.5)


class TestRingBuffer:
    def test_capacity_bounds_memory_and_counts_drops(self):
        tr = Tracer(rank=0, capacity=4)
        for i in range(10):
            tr.span(f"s{i}", "phase", float(i), float(i + 1))
        assert len(tr) == 4
        assert tr.dropped == 6
        # the surviving events are the *latest* ones
        assert [ev[1] for ev in tr.events] == ["s6", "s7", "s8", "s9"]
        tr.clear()
        assert len(tr) == 0 and tr.dropped == 0


class TestChromeExport:
    def test_export_requires_tracers(self):
        with pytest.raises(ReproError, match="trace='on'"):
            export_chrome_trace(RunReport(per_rank=[RankProfile()]))

    def test_schema(self, tmp_path):
        S, A, B = _problem()
        out = tmp_path / "trace.json"
        with repro.plan(S, 16, p=4, algorithm="1.5d-sparse-shift",
                        comm="sparse", overlap="on", trace="on") as sess:
            sess.fusedmm_a(A, B)
            doc = sess.export_trace(str(out))

        # the on-disk document is the returned one
        assert json.loads(out.read_text()) == doc
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert events, "traced run exported no events"

        thread_names = [e for e in events if e.get("ph") == "M"]
        assert {e["tid"] for e in thread_names} == {0, 1, 2, 3}
        assert all(e["name"] == "thread_name" for e in thread_names)

        begins, ends = {}, {}
        for e in events:
            assert e["pid"] == 0
            ph = e["ph"]
            assert ph in ("M", "X", "b", "e", "i")
            if ph == "M":
                continue
            assert isinstance(e["ts"], (int, float)) and e["ts"] >= 0
            assert isinstance(e["cat"], str) and e["cat"]
            if ph == "X":
                assert e["dur"] >= 0
            elif ph == "b":
                begins[e["id"]] = e
            elif ph == "e":
                ends[e["id"]] = e
            else:  # instant
                assert e["s"] == "t"
        # every async begin has a matching end with the same name/cat
        assert set(begins) == set(ends) and begins
        for aid, b in begins.items():
            assert ends[aid]["name"] == b["name"]
            assert ends[aid]["cat"] == b["cat"]
            assert ends[aid]["ts"] >= b["ts"]

    def test_traced_fusedmm_has_phase_and_async_spans(self):
        """Acceptance shape: a traced overlapped fused run shows all three
        paper phases as duration spans on every rank, plus in-flight
        exchange windows as async spans."""
        S, A, B = _problem()
        with repro.plan(S, 16, p=4, algorithm="1.5d-sparse-shift",
                        comm="sparse", overlap="on", trace="on") as sess:
            sess.fusedmm_a(A, B)
            doc = sess.export_trace()
            stats = sess.timeline()

        durations = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        for rank in range(4):
            names = {e["name"] for e in durations
                     if e["tid"] == rank and e["cat"] == "phase"}
            assert {
                Phase.REPLICATION.value,
                Phase.PROPAGATION.value,
                Phase.COMPUTATION.value,
            } <= names, f"rank {rank} is missing phase spans: {names}"
        assert any(e["ph"] == "b" and e["cat"] == "comm"
                   for e in doc["traceEvents"])

        assert len(stats.per_rank) == 4
        assert 0.0 <= stats.overlap_window_occupancy <= 1.0
        for frac in (stats.idle_fraction, stats.compute_fraction,
                     stats.exposed_comm_fraction):
            assert 0.0 <= frac <= 1.0
        # the summary and dict views agree on the headline number
        d = stats.to_dict()
        assert d["overlap_window_occupancy"] == stats.overlap_window_occupancy
        assert len(d["per_rank"]) == 4

    def test_timeline_stats_from_report(self):
        S, A, B = _problem()
        with repro.plan(S, 16, p=4, trace="on") as sess:
            _, report = sess.spmm_a(B)
            stats = TimelineStats.from_report(report)
        assert len(stats.per_rank) == 4


class TestReportStructuredExport:
    def test_to_json_round_trips(self):
        S, A, B = _problem()
        out, report = repro.fusedmm_a(S, A, B, p=4)
        doc = json.loads(report.to_json())
        assert doc == report.to_dict()
        assert doc["nranks"] == 4
        assert set(doc["phases"]) == {p.value for p in Phase}
        assert doc["comm_words"] == report.comm_words
        assert doc["flops"] == report.flops
        # per-rank tables round-trip too
        full = json.loads(report.to_json(per_rank=True))
        assert len(full["per_rank"]) == 4
        assert full["per_rank"][0]["phases"][Phase.COMPUTATION.value][
            "flops"
        ] == report.per_rank[0].counters[Phase.COMPUTATION].flops

    def test_empty_report_reductions_return_zero(self):
        empty = RunReport(per_rank=[], label="empty")
        assert empty.flops == 0
        assert empty.comm_words == 0
        assert empty.comm_messages == 0
        assert empty.max_over_ranks(Phase.COMPUTATION, "seconds") == 0.0
        assert json.loads(empty.to_json())["nranks"] == 0


class TestSessionMetrics:
    def test_one_record_per_call(self):
        S, A, B = _problem()
        with repro.plan(S, 16, p=4, algorithm="1.5d-sparse-shift",
                        comm="sparse") as sess:
            sess.fusedmm_a(A, B)
            sess.spmm_a(B)
            sess.fusedmm_a_async(A, B).result()
            recs = sess.metrics()
        assert len(recs) == 3
        assert [r["call"] for r in recs] == [0, 1, 2]
        for r in recs:
            assert r["nranks"] == 4
            assert r["wall_ms"] > 0.0
            assert r["comm_words"] > 0
            assert r["flops"] > 0
            assert r["compute_ms"] >= 0.0
        # labels name the kernels that ran
        assert "spmm_a" in recs[1]["label"]

    def test_metrics_jsonl_parses(self):
        S, A, B = _problem()
        with repro.plan(S, 16, p=4) as sess:
            sess.spmm_a(B)
            sess.spmm_b(A)
            lines = sess.metrics_jsonl().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(ln) for ln in lines]
        assert parsed == [
            {k: v for k, v in rec.items()} for rec in parsed
        ]  # valid JSON objects
        assert parsed[0]["call"] == 0 and parsed[1]["call"] == 1

    def test_reset_profile_clears_metrics_and_spans(self):
        S, A, B = _problem()
        with repro.plan(S, 16, p=4, trace="on") as sess:
            sess.spmm_a(B)
            assert len(sess.metrics()) == 1
            assert sum(len(tr) for tr in sess.tracers()) > 0
            sess.reset_profile()
            assert sess.metrics() == []
            assert sum(len(tr) for tr in sess.tracers()) == 0
            # deltas restart cleanly after the reset
            sess.spmm_a(B)
            recs = sess.metrics()
            assert len(recs) == 1 and recs[0]["comm_words"] > 0

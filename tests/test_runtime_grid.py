"""Tests for the 1.5D and 2.5D processor grids."""

from __future__ import annotations

import pytest

from repro.errors import GridError
from repro.runtime.grid import Grid15D, Grid25D, feasible_c_15d, feasible_c_25d
from repro.runtime.spmd import run_spmd


class TestGrid15D:
    @pytest.mark.parametrize("p,c", [(1, 1), (4, 2), (8, 4), (6, 3), (12, 1)])
    def test_coords_roundtrip(self, p, c):
        g = Grid15D(p, c)
        for rank in range(p):
            u, v = g.coords(rank)
            assert 0 <= u < g.layer_size and 0 <= v < c
            assert g.rank_of(u, v) == rank

    def test_layer_size(self):
        assert Grid15D(8, 2).layer_size == 4

    def test_invalid_c_raises(self):
        with pytest.raises(GridError):
            Grid15D(8, 3)
        with pytest.raises(GridError):
            Grid15D(4, 0)

    def test_coords_out_of_range(self):
        with pytest.raises(GridError):
            Grid15D(4, 2).coords(4)
        with pytest.raises(GridError):
            Grid15D(4, 2).rank_of(2, 0)

    def test_make_comms_shapes(self):
        g = Grid15D(8, 2)

        def body(comm):
            layer, fiber = g.make_comms(comm)
            u, v = g.coords(comm.rank)
            return (layer.size, fiber.size, layer.rank, fiber.rank, u, v)

        results, _ = run_spmd(8, body)
        for ls, fs, lr, fr, u, v in results:
            assert ls == 4 and fs == 2
            assert lr == u and fr == v

    def test_make_comms_size_mismatch(self):
        g = Grid15D(8, 2)

        def body(comm):
            with pytest.raises(GridError):
                g.make_comms(comm)

        run_spmd(4, body)


class TestGrid25D:
    @pytest.mark.parametrize("p,c", [(1, 1), (4, 1), (8, 2), (16, 4), (9, 1), (12, 3)])
    def test_coords_roundtrip(self, p, c):
        g = Grid25D(p, c)
        assert g.q * g.q * c == p
        for rank in range(p):
            x, y, z = g.coords(rank)
            assert g.rank_of(x, y, z) == rank

    def test_non_square_layer_raises(self):
        with pytest.raises(GridError):
            Grid25D(8, 1)  # p/c = 8 not a perfect square
        with pytest.raises(GridError):
            Grid25D(6, 2)

    def test_make_comms_sizes(self):
        g = Grid25D(8, 2)

        def body(comm):
            row, col, fiber = g.make_comms(comm)
            return (row.size, col.size, fiber.size)

        results, _ = run_spmd(8, body)
        assert all(r == (2, 2, 2) for r in results)

    def test_row_comm_varies_y(self):
        g = Grid25D(18, 2)  # q = 3

        def body(comm):
            row, col, fiber = g.make_comms(comm)
            x, y, z = g.coords(comm.rank)
            return (row.rank == y, col.rank == x, fiber.rank == z)

        results, _ = run_spmd(18, body)
        assert all(all(r) for r in results)


class TestFeasibility:
    def test_feasible_c_15d(self):
        assert feasible_c_15d(12) == (1, 2, 3, 4, 6, 12)

    def test_feasible_c_25d(self):
        # p=16: c must divide 16 with 16/c a perfect square: c in {1, 4, 16}
        assert feasible_c_25d(16) == (1, 4, 16)

    def test_feasible_c_25d_eight(self):
        assert feasible_c_25d(8) == (2, 8)

"""Unit tests for the fault-injection plane and the deadline watchdog.

Covers the deterministic trigger machinery (:class:`FaultPlan` arming,
indices, sticky faults, chaos derivation), each fault class at the
transport / phase / region / buffer-pool hook sites, the ``deadline_ms``
watchdog (a blocked receive converts into :class:`SpmdTimeout` carrying a
per-rank blocked-state dump, in bounded time), the parameterized
``WorkerPool.close(timeout)`` diagnostics, and the poisoned-future error
chaining.  The end-to-end chaos matrix over the algorithm families lives
in ``test_chaos.py``.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

import repro
from repro.errors import (
    FaultInjected,
    InjectedCrash,
    InjectedExhaustion,
    ReproError,
    SpmdTimeout,
)
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.runtime.profile import RankProfile
from repro.runtime.spmd import WorkerPool, run_spmd
from repro.types import Phase


class TestFaultSpec:
    def test_unknown_action_rejected(self):
        with pytest.raises(ReproError, match="unknown fault action"):
            FaultSpec("explode")

    def test_negative_index_rejected(self):
        with pytest.raises(ReproError, match="index"):
            FaultSpec("drop", index=-1)

    def test_zero_times_rejected(self):
        with pytest.raises(ReproError, match="times"):
            FaultSpec("drop", times=0)

    def test_message_matching(self):
        spec = FaultSpec("drop", rank=1, tag=10)
        assert spec.matches_message(1, 10)
        assert not spec.matches_message(0, 10)
        assert not spec.matches_message(1, 11)
        assert not spec.matches_site(1, "phase", "computation")

    def test_site_matching(self):
        spec = FaultSpec("crash", site="computation")
        assert spec.matches_site(0, "phase", "computation")
        assert spec.matches_site(3, "region", "computation")
        assert not spec.matches_site(0, "phase", "replication")
        # crash/straggler never match buffer acquisitions ...
        assert not spec.matches_site(0, "buffer", "computation")
        # ... and exhaust matches only them
        exhaust = FaultSpec("exhaust", site="panel")
        assert exhaust.matches_site(0, "buffer", "panel")
        assert not exhaust.matches_site(0, "phase", "panel")


class TestFaultPlanArming:
    def test_fires_once_by_default(self):
        plan = FaultPlan([FaultSpec("drop", tag=5)])
        assert plan.on_send(0, 5) is not None
        assert plan.on_send(0, 5) is None  # times=1: second send is clean

    def test_index_skips_matching_events(self):
        plan = FaultPlan([FaultSpec("drop", tag=5, index=2)])
        assert plan.on_send(0, 5) is None
        assert plan.on_send(0, 5) is None
        assert plan.on_send(0, 5) is not None

    def test_sticky_fault_fires_forever(self):
        plan = FaultPlan([FaultSpec("drop", tag=5, times=None)])
        for _ in range(10):
            assert plan.on_send(0, 5) is not None

    def test_match_counters_are_per_rank(self):
        """index counts each rank's own events, so 'rank r's index-th
        send' means the same operation no matter how ranks interleave."""
        plan = FaultPlan([FaultSpec("drop", index=1, times=None)])
        assert plan.on_send(0, 5) is None  # rank 0, event 0
        assert plan.on_send(1, 5) is None  # rank 1, event 0
        assert plan.on_send(1, 5) is not None  # rank 1, event 1
        assert plan.on_send(0, 5) is not None  # rank 0, event 1

    def test_fired_log_records_chronology(self):
        plan = FaultPlan([FaultSpec("straggler", site="computation")])
        plan.on_site(2, "phase", "computation")
        assert plan.fired_log == [(2, "straggler", "phase=computation")]

    def test_chaos_is_deterministic(self):
        a, b = FaultPlan.chaos(7, 8), FaultPlan.chaos(7, 8)
        assert a.specs == b.specs
        assert a.specs != FaultPlan.chaos(8, 8).specs

    def test_chaos_covers_all_actions(self):
        seen = {FaultPlan.chaos(s, 8).specs[0].action for s in range(64)}
        assert seen == set(FaultPlan.CHAOS_ACTIONS)

    def test_extended_merges_specs(self):
        merged = FaultPlan.drop_message(tag=5).extended(FaultPlan.crash_at())
        assert [s.action for s in merged.specs] == ["drop", "crash"]


class TestMessageFaults:
    def test_drop_with_deadline_times_out_typed(self):
        plan = FaultPlan.drop_message(tag=7, rank=0)
        t0 = time.perf_counter()

        def body(comm):
            if comm.rank == 0:
                comm.send(1, np.array([1.0]), tag=7)
                return None
            return comm.recv(0, tag=7)

        with pytest.raises(SpmdTimeout) as err:
            run_spmd(2, body, deadline_ms=300, faults=plan)
        assert time.perf_counter() - t0 < 5.0
        assert err.value.dump, "timeout must carry the blocked-state dump"
        entry = err.value.dump[0]
        assert entry["rank"] == 1
        assert entry["tag"] == 7
        assert entry["waiting_for_comm_rank"] == 0

    def test_delay_stalls_then_delivers(self):
        plan = FaultPlan.delay_message(0.15, tag=7)

        def body(comm):
            if comm.rank == 0:
                comm.send(1, np.array([42.0]), tag=7)
                return None
            t0 = time.perf_counter()
            value = float(comm.recv(0, tag=7)[0])
            return value, time.perf_counter() - t0

        results, _ = run_spmd(2, body, faults=plan)
        value, waited = results[1]
        assert value == 42.0
        assert waited >= 0.1
        assert plan.fired_log == [(0, "delay", "tag=7")]

    def test_dup_delivers_twice(self):
        plan = FaultPlan.duplicate_message(tag=7)

        def body(comm):
            if comm.rank == 0:
                comm.send(1, np.array([3.0]), tag=7)
                return None
            first = comm.recv(0, tag=7)
            second = comm.recv(0, tag=7)  # the duplicate
            return float(first[0]), float(second[0])

        results, _ = run_spmd(2, body, faults=plan)
        assert results[1] == (3.0, 3.0)

    def test_duplicate_payloads_do_not_alias(self):
        """The duplicated delivery is isolated like any other send: the
        receiver of the first copy cannot corrupt the second."""
        plan = FaultPlan.duplicate_message(tag=7)

        def body(comm):
            if comm.rank == 0:
                comm.send(1, np.array([3.0]), tag=7)
                return None
            first = comm.recv(0, tag=7)
            first[0] = -99.0
            return float(comm.recv(0, tag=7)[0])

        results, _ = run_spmd(2, body, faults=plan)
        assert results[1] == 3.0


class TestSiteFaults:
    def test_crash_at_phase(self):
        plan = FaultPlan.crash_at(site="computation", rank=1)

        def body(comm):
            with comm.profile.track(Phase.COMPUTATION):
                pass
            return comm.rank

        with pytest.raises(RuntimeError, match="rank 1 failed.*injected crash"):
            run_spmd(4, body, faults=plan)

    def test_crash_error_chains_injected_cause(self):
        plan = FaultPlan.crash_at(site="computation", rank=0)

        def body(comm):
            with comm.profile.track(Phase.COMPUTATION):
                pass

        with pytest.raises(RuntimeError) as err:
            run_spmd(2, body, faults=plan)
        assert isinstance(err.value.__cause__, InjectedCrash)
        assert isinstance(err.value.__cause__, FaultInjected)

    def test_crash_at_named_region(self):
        """Region-site crashes fire with tracing off (the hook is in
        region() itself, ahead of the tracer guard)."""
        from repro.algorithms.base import region

        plan = FaultPlan.crash_at(site="gather-A", rank=2)

        def body(comm):
            with region(comm, "gather-A"):
                pass

        with pytest.raises(RuntimeError, match="rank 2 failed.*gather-A"):
            run_spmd(4, body, faults=plan)

    def test_straggler_delays_but_completes(self):
        plan = FaultPlan.straggler(0.15, site="computation", rank=0)

        def body(comm):
            with comm.profile.track(Phase.COMPUTATION):
                pass
            return comm.allreduce_scalar(1.0)

        t0 = time.perf_counter()
        results, _ = run_spmd(4, body, faults=plan)
        assert results == [4.0] * 4
        assert time.perf_counter() - t0 >= 0.1
        assert plan.fired_log == [(0, "straggler", "phase=computation")]

    def test_exhaust_buffer_pool(self):
        from repro.runtime.buffers import BufferPool

        plan = FaultPlan.exhaust_buffers(label="panel")
        profile = RankProfile()
        profile.faults = plan.rank_view(0)
        pool = BufferPool(profile=profile)
        with pytest.raises(InjectedExhaustion, match="panel"):
            pool.empty("panel", (4, 4))
        # times=1: the retry acquisition succeeds
        assert pool.empty("panel", (4, 4)).shape == (4, 4)


class TestDeadlineWatchdog:
    def test_mismatched_collective_times_out(self):
        """The acceptance scenario: a deliberately mismatched collective
        (one rank never sends) fails typed and in bounded time."""

        def body(comm):
            if comm.rank == 0:
                return comm.recv(1, tag=99)  # rank 1 never sends
            return None

        t0 = time.perf_counter()
        with pytest.raises(SpmdTimeout) as err:
            run_spmd(2, body, deadline_ms=250)
        assert time.perf_counter() - t0 < 5.0
        [entry] = err.value.dump
        assert entry["rank"] == 0
        assert entry["waiting_for_comm_rank"] == 1
        assert entry["tag"] == 99
        assert entry["waited_s"] >= 0.2
        assert "blocked ranks at expiry" in str(err.value)

    def test_dump_names_open_phase(self):
        def body(comm):
            if comm.rank == 0:
                with comm.profile.track(Phase.PROPAGATION):
                    return comm.recv(1, tag=99)
            return None

        with pytest.raises(SpmdTimeout) as err:
            run_spmd(2, body, deadline_ms=250)
        [entry] = err.value.dump
        assert entry["phase"] == Phase.PROPAGATION.value

    def test_no_deadline_is_the_default(self):
        pool = WorkerPool(2)
        try:
            assert pool.deadline_ms is None
            assert pool.world.deadline is None
        finally:
            pool.close()

    def test_deadline_cleared_after_success(self):
        """The armed horizon must not leak into later, slower items."""
        with WorkerPool(2, deadline_ms=None) as pool:
            results, _ = pool.run(
                lambda comm: comm.allreduce_scalar(1.0), deadline_ms=5_000
            )
            assert results == [2.0, 2.0]
            assert pool.world.deadline is None

    def test_per_call_deadline_overrides_pool_default(self):
        with WorkerPool(2, deadline_ms=50) as pool:

            def slowish(comm):
                if comm.rank == 0:
                    time.sleep(0.15)
                    comm.send(1, np.array([1.0]), tag=3)
                    return 0.0
                return float(comm.recv(0, tag=3)[0])

            # the pool default (50 ms) would expire; the per-call horizon
            # must win
            results, _ = pool.run(slowish, deadline_ms=10_000)
            assert results[1] == 1.0


class TestCloseTimeout:
    def test_close_timeout_names_blocked_rank(self):
        pool = WorkerPool(2, name="stuckpool")

        def body(comm):
            if comm.rank == 0:
                return comm.recv(1, tag=42)  # never satisfied, no deadline
            return None

        pool.run_async(body)
        deadline = time.monotonic() + 5.0
        while 0 not in pool.world.blocked and time.monotonic() < deadline:
            time.sleep(0.01)
        try:
            with pytest.raises(ReproError) as err:
                pool.close(timeout=0.2)
            msg = str(err.value)
            assert "rank 0" in msg
            assert "tag 42" in msg
            assert "from comm rank 1" in msg
        finally:
            # unwedge the stuck rank so the pool can actually join
            pool.world.abort()
            pool.close()

    def test_close_retry_after_unblock_succeeds(self):
        """A failed close leaves the pool joinable: the documented
        retry path works once the rank unblocks."""
        release = threading.Event()
        pool = WorkerPool(2)

        def body(comm):
            if comm.rank == 0:
                release.wait()
            return None

        pool.run_async(body)
        with pytest.raises(ReproError, match="failed to join"):
            pool.close(timeout=0.1)
        assert not pool.closed
        release.set()
        pool.close()
        assert pool.closed


class TestErrorChaining:
    def test_head_failure_chains_original(self):
        with WorkerPool(4) as pool:

            def bad(comm):
                if comm.rank == 3:
                    raise ValueError("boom")
                comm.allreduce_scalar(1.0)

            with pytest.raises(RuntimeError, match="rank 3 failed.*boom") as err:
                pool.run(bad)
            assert isinstance(err.value.__cause__, ValueError)
            assert err.value.__cause__.args == ("boom",)

    def test_poisoned_future_chains_root_cause(self):
        """A pipelined item aborted by an earlier failure carries the
        originating rank's exception as its __cause__, so the root-cause
        traceback survives into the driver."""
        with WorkerPool(4) as pool:

            def bad(comm):
                if comm.rank == 1:
                    time.sleep(0.05)
                    raise ValueError("original failure")
                comm.allreduce_scalar(1.0)

            f1 = pool.run_async(bad, label="first")
            f2 = pool.run_async(
                lambda comm: comm.allreduce_scalar(1.0), label="second"
            )
            with pytest.raises(RuntimeError, match="aborted.*original failure") as err:
                f2.wait()
            assert isinstance(err.value.__cause__, ValueError)
            assert err.value.__cause__.args == ("original failure",)
            with pytest.raises(RuntimeError, match="rank 1 failed"):
                f1.wait()

"""Tests for the sparse-aware communication subsystem.

Covers the three layers of :mod:`repro.comm_sparse` — plan accounting,
neighborhood collectives, need-list planners — plus the generic
``alltoallv`` primitive, the plan cache, and the contract that a
:class:`CommPlan`'s static word counts equal the traffic a
:class:`RankProfile` measures during real kernel runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.registry import make_algorithm
from repro.comm_sparse import (
    CommPlan,
    PeerExchange,
    clear_plan_cache,
    plan_cache_stats,
    plan_sparse_replicate_25d,
    plan_sparse_shift_15d,
    sparse_allgatherv,
    sparse_reduce_scatterv,
)
from repro.errors import CommError
from repro.runtime.spmd import run_spmd
from repro.sparse.coo import CooMatrix
from repro.sparse.generate import erdos_renyi
from repro.sparse.partition import block_of
from repro.types import Mode, Phase


def ix(*vals):
    return np.asarray(vals, dtype=np.int64)


# ----------------------------------------------------------------------
# plan accounting
# ----------------------------------------------------------------------


class TestCommPlan:
    def make_plan(self):
        peers = (
            PeerExchange(peer=1, send_rows=ix(0, 2), recv_rows=ix(1), send_width=4, recv_width=4),
            PeerExchange(peer=2, send_rows=ix(), recv_rows=ix(3, 4, 5), send_width=4, recv_width=2),
        )
        return CommPlan(key="test", size=3, rank=0, peers=peers)

    def test_word_counts(self):
        plan = self.make_plan()
        assert plan.send_words() == 2 * 4
        assert plan.recv_words() == 1 * 4 + 3 * 2
        assert plan.send_messages() == 1  # empty leg to peer 2 is skipped
        assert plan.recv_messages() == 2

    def test_reversed_swaps_roles(self):
        plan = self.make_plan()
        rev = plan.reversed()
        assert rev.send_words() == plan.recv_words()
        assert rev.recv_words() == plan.send_words()
        assert rev.send_messages() == plan.recv_messages()
        # double reversal is the identity on the accounting
        assert rev.reversed().recv_words() == plan.recv_words()

    def test_self_peer_rejected(self):
        bad = PeerExchange(peer=0, send_rows=ix(0), recv_rows=ix(0), send_width=1, recv_width=1)
        with pytest.raises(CommError):
            CommPlan(key="bad", size=2, rank=0, peers=(bad,))

    def test_out_of_range_peer_rejected(self):
        bad = PeerExchange(peer=5, send_rows=ix(), recv_rows=ix(), send_width=1, recv_width=1)
        with pytest.raises(CommError):
            CommPlan(key="bad", size=2, rank=0, peers=(bad,))


# ----------------------------------------------------------------------
# alltoallv primitive
# ----------------------------------------------------------------------


class TestAlltoallv:
    @pytest.mark.parametrize("p", [1, 2, 3, 5])
    def test_values(self, p):
        def body(comm):
            bufs = [np.array([comm.rank * 100 + k]) for k in range(p)]
            got = comm.alltoallv(bufs)
            return [int(g[0]) for g in got]

        results, _ = run_spmd(p, body)
        for r in range(p):
            assert results[r] == [src * 100 + r for src in range(p)]

    def test_traffic_is_sum_of_addressed_blocks(self):
        p = 4

        def body(comm):
            # rank s sends a block of (dest + 1) words to each dest
            bufs = [np.zeros(k + 1) for k in range(p)]
            with comm.profile.track(Phase.PROPAGATION):
                comm.alltoallv(bufs)

        _, report = run_spmd(p, body)
        for r, prof in enumerate(report.per_rank):
            ctr = prof.counters[Phase.PROPAGATION]
            assert ctr.words_received == (p - 1) * (r + 1)
            assert ctr.messages_received == p - 1

    def test_wrong_buffer_count_raises(self):
        def body(comm):
            with pytest.raises(CommError):
                comm.alltoallv([np.zeros(1)])

        run_spmd(2, body)


# ----------------------------------------------------------------------
# neighborhood collectives on hand-built plans
# ----------------------------------------------------------------------


def star_plans(p, width):
    """Every rank needs row ``k`` of peer ``k``'s 2-row buffer."""
    plans = []
    for r in range(p):
        peers = tuple(
            PeerExchange(
                peer=k,
                send_rows=ix(r % 2),
                recv_rows=ix(k),
                send_width=width,
                recv_width=width,
            )
            for k in range(p)
            if k != r
        )
        plans.append(CommPlan(key="star", size=p, rank=r, peers=peers))
    return plans


class TestSparseCollectives:
    @pytest.mark.parametrize("p", [2, 3, 4])
    def test_allgatherv_places_needed_rows(self, p):
        width = 3
        plans = star_plans(p, width)

        def body(comm):
            r = comm.rank
            mine = np.stack([np.full(width, 10.0 * r), np.full(width, 10.0 * r + 1)])
            out = np.zeros((p, width))
            out[r] = mine[r % 2]
            sparse_allgatherv(comm, plans[r], mine, out)
            return out

        results, _ = run_spmd(p, body)
        for r in range(p):
            for k in range(p):
                np.testing.assert_allclose(results[r][k], np.full(width, 10.0 * k + (k % 2)))

    @pytest.mark.parametrize("p", [2, 3, 4])
    def test_reduce_scatterv_sums_contributions(self, p):
        width = 2
        plans = star_plans(p, width)

        def body(comm):
            r = comm.rank
            # contrib[k] is this rank's partial for row k's owner; the
            # reversed star plan ships contrib[k] to owner k and sums the
            # incoming contributions onto this rank's own partial
            contrib = np.arange(p * width, dtype=float).reshape(p, width) + 100.0 * r
            out = np.zeros((2, width))
            out[r % 2] = contrib[r]
            sparse_reduce_scatterv(comm, plans[r].reversed(), contrib, out)
            return out[r % 2]

        results, _ = run_spmd(p, body)
        for r in range(p):
            row = np.arange(r * width, (r + 1) * width, dtype=float)
            total = sum(row + 100.0 * src for src in range(p))
            np.testing.assert_allclose(results[r], total)

    def test_plan_comm_mismatch_raises(self):
        plans = star_plans(3, 1)

        def body(comm):
            with pytest.raises(CommError):
                sparse_allgatherv(comm, plans[(comm.rank + 1) % 3], np.zeros((2, 1)), np.zeros((3, 1)))

        run_spmd(3, body)

    def test_empty_legs_send_no_messages(self):
        p = 3
        empty = [
            CommPlan(
                key="empty",
                size=p,
                rank=r,
                peers=tuple(
                    PeerExchange(peer=k, send_rows=ix(), recv_rows=ix(), send_width=5, recv_width=5)
                    for k in range(p)
                    if k != r
                ),
            )
            for r in range(p)
        ]

        def body(comm):
            with comm.profile.track(Phase.REPLICATION):
                sparse_allgatherv(comm, empty[comm.rank], np.zeros((1, 5)), np.zeros((3, 5)))
            return comm.profile.total().messages_received

        results, _ = run_spmd(p, body)
        assert results == [0] * p


# ----------------------------------------------------------------------
# planners
# ----------------------------------------------------------------------


class TestPlanner15D:
    def setup_method(self):
        self.S = erdos_renyi(40, 52, 3, seed=11)
        self.alg = make_algorithm("1.5d-sparse-shift", 8, 4)
        self.plan = self.alg.plan(40, 52, 12)
        self.cplans = plan_sparse_shift_15d(self.plan, self.S)

    def test_need_lists_cover_layer_rows(self):
        """Every row a layer's nonzeros touch is either owned or received."""
        c = 4
        layer_v = block_of(self.S.cols, self.plan.col_fine) % c
        for rank, cp in enumerate(self.cplans):
            u, v = self.alg.grid.coords(rank)
            needed = np.unique(self.S.rows[layer_v == v])
            owned = self.plan.rows_a_of_fiber[v]
            received = np.concatenate([px.recv_rows for px in cp.gather.peers] or [ix()])
            covered = np.union1d(owned, received)
            assert np.all(np.isin(needed, covered))

    def test_send_recv_legs_are_globally_consistent(self):
        for rank, cp in enumerate(self.cplans):
            u, v = self.alg.grid.coords(rank)
            for px in cp.gather.peers:
                peer_rank = self.alg.grid.rank_of(u, px.peer)
                peer_leg = next(
                    q for q in self.cplans[peer_rank].gather.peers if q.peer == v
                )
                assert len(px.recv_rows) == len(peer_leg.send_rows)
                assert px.recv_width == peer_leg.send_width

    def test_reduce_is_gather_mirror(self):
        for cp in self.cplans:
            assert cp.reduce.recv_words() == cp.gather.send_words()
            assert cp.reduce.send_words() == cp.gather.recv_words()

    def test_moves_fewer_words_than_dense_ring(self):
        for rank, cp in enumerate(self.cplans):
            u, v = self.alg.grid.coords(rank)
            sw = self.plan.strip_width(u)
            dense = sum(
                len(self.plan.rows_a_of_fiber[w]) * sw for w in range(4) if w != v
            )
            assert cp.gather.recv_words() <= dense


class TestPlanner25D:
    def setup_method(self):
        self.S = erdos_renyi(36, 30, 2, seed=13)
        self.alg = make_algorithm("2.5d-sparse-replicate", 8, 2)
        self.plan = self.alg.plan(36, 30, 10)
        self.cplans = plan_sparse_replicate_25d(self.plan, self.S)

    def test_windows_tile_the_strip(self):
        for rank, cp in enumerate(self.cplans):
            x, y, z = self.alg.grid.coords(rank)
            windows = [cp.my_window] + [px.recv_cols for px in cp.gather_a.peers]
            windows.sort()
            assert windows[0][0] == 0
            assert windows[-1][1] == cp.strip_width
            for (a0, a1), (b0, b1) in zip(windows, windows[1:]):
                assert a1 == b0

    def test_send_recv_legs_are_globally_consistent(self):
        q = self.alg.grid.q
        for rank, cp in enumerate(self.cplans):
            x, y, z = self.alg.grid.coords(rank)
            for px in cp.gather_a.peers:
                peer_rank = self.alg.grid.rank_of(x, px.peer, z)
                peer_leg = next(
                    pq for pq in self.cplans[peer_rank].gather_a.peers if pq.peer == y
                )
                assert len(px.recv_rows) == len(peer_leg.send_rows)
            for px in cp.gather_b.peers:
                peer_rank = self.alg.grid.rank_of(px.peer, y, z)
                peer_leg = next(
                    pq for pq in self.cplans[peer_rank].gather_b.peers if pq.peer == x
                )
                assert len(px.recv_rows) == len(peer_leg.send_rows)

    def test_fiber_replicas_share_need_lists(self):
        """Plans differ across z only in chunk windows, not in row sets."""
        g = self.alg.grid
        for x in range(g.q):
            for y in range(g.q):
                r0 = g.rank_of(x, y, 0)
                r1 = g.rank_of(x, y, 1)
                for a, b in zip(self.cplans[r0].gather_a.peers, self.cplans[r1].gather_a.peers):
                    np.testing.assert_array_equal(a.recv_rows, b.recv_rows)


class TestPlanCache:
    def test_build_is_amortized(self):
        clear_plan_cache()
        S = erdos_renyi(30, 30, 2, seed=3)
        alg = make_algorithm("1.5d-sparse-shift", 4, 2)
        plan = alg.plan(30, 30, 8)
        first = alg.build_comm_plans(plan, S)
        again = alg.build_comm_plans(plan, S)
        assert again is first  # cache hit returns the same plan objects
        stats = plan_cache_stats()
        assert stats["hits"] >= 1 and stats["misses"] >= 1

    def test_structure_change_misses(self):
        clear_plan_cache()
        alg = make_algorithm("1.5d-sparse-shift", 4, 2)
        plan = alg.plan(30, 30, 8)
        a = alg.build_comm_plans(plan, erdos_renyi(30, 30, 2, seed=3))
        b = alg.build_comm_plans(plan, erdos_renyi(30, 30, 2, seed=4))
        assert a is not b

    def test_values_do_not_matter(self):
        clear_plan_cache()
        S = erdos_renyi(30, 30, 2, seed=3)
        S2 = S.with_values(np.arange(S.nnz, dtype=float))
        alg = make_algorithm("1.5d-sparse-shift", 4, 2)
        plan = alg.plan(30, 30, 8)
        assert alg.build_comm_plans(plan, S2) is alg.build_comm_plans(plan, S)


# ----------------------------------------------------------------------
# plan word counts == measured RankProfile traffic
# ----------------------------------------------------------------------


def run_mode(alg, plan, S, A, B, mode, cplans):
    locals_ = alg.distribute(plan, S, A, B)

    def body(comm):
        ctx = alg.make_context(comm)
        alg.rank_kernel(ctx, plan, locals_[comm.rank], mode, sparse_plan=cplans[comm.rank])

    return run_spmd(alg.p, body)


class TestPlanMatchesMeasuredTraffic:
    @pytest.mark.parametrize("mode", [Mode.SDDMM, Mode.SPMM_A, Mode.SPMM_B])
    def test_15d_replication_traffic(self, mode):
        m, n, r = 44, 60, 12
        S = erdos_renyi(m, n, 3, seed=9)
        rng = np.random.default_rng(0)
        A, B = rng.standard_normal((m, r)), rng.standard_normal((n, r))
        alg = make_algorithm("1.5d-sparse-shift", 8, 4)
        plan = alg.plan(m, n, r)
        cplans = alg.build_comm_plans(plan, S)
        _, report = run_mode(alg, plan, S, A, B, mode, cplans)
        for rank, prof in enumerate(report.per_rank):
            ctr = prof.counters[Phase.REPLICATION]
            expect = cplans[rank].kernel_recv_words[mode.value]
            assert ctr.words_received == expect
            cplan = cplans[rank].reduce if mode == Mode.SPMM_A else cplans[rank].gather
            assert ctr.messages_received == cplan.recv_messages()

    @pytest.mark.parametrize("mode", [Mode.SDDMM, Mode.SPMM_A, Mode.SPMM_B])
    def test_25d_propagation_traffic(self, mode):
        m, n, r = 38, 46, 8
        S = erdos_renyi(m, n, 2, seed=21)
        rng = np.random.default_rng(1)
        A, B = rng.standard_normal((m, r)), rng.standard_normal((n, r))
        alg = make_algorithm("2.5d-sparse-replicate", 18, 2)
        plan = alg.plan(m, n, r)
        cplans = alg.build_comm_plans(plan, S)
        _, report = run_mode(alg, plan, S, A, B, mode, cplans)
        for rank, prof in enumerate(report.per_rank):
            ctr = prof.counters[Phase.PROPAGATION]
            assert ctr.words_received == cplans[rank].kernel_recv_words[mode.value]

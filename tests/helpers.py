"""Helpers to run distributed kernels inside tests."""

from __future__ import annotations

import numpy as np

from repro.runtime.spmd import run_spmd
from repro.types import Mode


def run_rank_method(alg, plan, locals_, method, *args, **kwargs):
    """Run ``method(ctx, plan, local, *args, **kwargs)`` on all ranks."""

    def body(comm):
        ctx = alg.make_context(comm)
        method(ctx, plan, locals_[comm.rank], *args, **kwargs)

    return run_spmd(alg.p, body)


def dist_sddmm(alg, S, A, B, **kw):
    plan = alg.plan(S.nrows, S.ncols, A.shape[1])
    locals_ = alg.distribute(plan, S, A, B)
    run_rank_method(alg, plan, locals_, alg.rank_kernel, Mode.SDDMM, **kw)
    return alg.collect_sddmm(plan, locals_, S)


def dist_spmm_a(alg, S, B, **kw):
    plan = alg.plan(S.nrows, S.ncols, B.shape[1])
    locals_ = alg.distribute(plan, S, None, B)
    run_rank_method(alg, plan, locals_, alg.rank_kernel, Mode.SPMM_A, **kw)
    return alg.collect_dense_a(plan, locals_)


def dist_spmm_b(alg, S, A, **kw):
    plan = alg.plan(S.nrows, S.ncols, A.shape[1])
    locals_ = alg.distribute(plan, S, A, None)
    run_rank_method(alg, plan, locals_, alg.rank_kernel, Mode.SPMM_B, **kw)
    return alg.collect_dense_b(plan, locals_)


def dist_fused(alg, S, A, B, method_name, out_side):
    plan = alg.plan(S.nrows, S.ncols, A.shape[1])
    locals_ = alg.distribute(plan, S, A, B)
    run_rank_method(alg, plan, locals_, getattr(alg, method_name))
    if out_side == "a":
        return alg.collect_dense_a(plan, locals_)
    return alg.collect_dense_b(plan, locals_)

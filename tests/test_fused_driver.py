"""Tests for the top-level FusedMM driver (variant/elision dispatch)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.fused import resolve_orientation, run_fusedmm
from repro.algorithms.registry import ALGORITHMS, make_algorithm
from repro.baselines.serial import fusedmm_a_serial, fusedmm_b_serial
from repro.errors import ReproError
from repro.types import Elision, FusedVariant

ALL_COMBOS = [
    (name, elision, variant)
    for name, cls in sorted(ALGORITHMS.items())
    for elision in cls.elisions
    for variant in (FusedVariant.FUSED_A, FusedVariant.FUSED_B)
]


@pytest.mark.parametrize(
    "name,elision,variant",
    ALL_COMBOS,
    ids=[f"{n}/{e.value}/{v.value}" for n, e, v in ALL_COMBOS],
)
class TestAllVariantElisionCombos:
    def test_matches_serial(self, name, elision, variant, small_problem):
        S, A, B = small_problem
        p, c = (8, 2)
        alg = make_algorithm(name, p, c)
        res = run_fusedmm(alg, S, A, B, variant=variant, elision=elision)
        if variant == FusedVariant.FUSED_A:
            ref = fusedmm_a_serial(S, A, B)
        else:
            ref = fusedmm_b_serial(S, A, B)
        np.testing.assert_allclose(res.output, ref, rtol=1e-9, atol=1e-12)


class TestResolveOrientation:
    def test_native_passthrough(self):
        alg = make_algorithm("1.5d-dense-shift", 4, 1)
        t, native = resolve_orientation(alg, FusedVariant.FUSED_B, Elision.REPLICATION_REUSE)
        assert (t, native) == (False, "b")

    def test_transposition_for_opposite_variant(self):
        alg = make_algorithm("1.5d-dense-shift", 4, 1)
        t, native = resolve_orientation(alg, FusedVariant.FUSED_A, Elision.REPLICATION_REUSE)
        assert (t, native) == (True, "b")
        t, native = resolve_orientation(alg, FusedVariant.FUSED_B, Elision.LOCAL_KERNEL_FUSION)
        assert (t, native) == (True, "a")

    def test_none_is_native_both_ways(self):
        alg = make_algorithm("2.5d-sparse-replicate", 8, 2)
        for variant, want in ((FusedVariant.FUSED_A, "a"), (FusedVariant.FUSED_B, "b")):
            t, native = resolve_orientation(alg, variant, Elision.NONE)
            assert (t, native) == (False, want)

    def test_unsupported_elision_raises(self):
        alg = make_algorithm("2.5d-sparse-replicate", 8, 2)
        with pytest.raises(ReproError):
            resolve_orientation(alg, FusedVariant.FUSED_A, Elision.LOCAL_KERNEL_FUSION)
        alg = make_algorithm("1.5d-sparse-shift", 8, 2)
        with pytest.raises(ReproError):
            resolve_orientation(alg, FusedVariant.FUSED_A, Elision.LOCAL_KERNEL_FUSION)


class TestDriverMechanics:
    def test_collect_sddmm_intermediate(self, small_problem):
        S, A, B = small_problem
        alg = make_algorithm("1.5d-dense-shift", 4, 2)
        res = run_fusedmm(
            alg, S, A, B,
            variant=FusedVariant.FUSED_B, elision=Elision.NONE, collect_sddmm=True,
        )
        from repro.baselines.serial import sddmm_serial

        ref = sddmm_serial(S, A, B)
        got = res.sddmm.to_scipy().toarray()
        np.testing.assert_allclose(got, ref.to_scipy().toarray(), rtol=1e-9)

    def test_collect_sddmm_transposed_path(self, small_problem):
        """With a transposing orientation, R must come back untransposed."""
        S, A, B = small_problem
        alg = make_algorithm("1.5d-dense-shift", 4, 2)
        res = run_fusedmm(
            alg, S, A, B,
            variant=FusedVariant.FUSED_A, elision=Elision.REPLICATION_REUSE,
            collect_sddmm=True,
        )
        from repro.baselines.serial import sddmm_serial

        assert res.sddmm.shape == S.shape
        ref = sddmm_serial(S, A, B)
        np.testing.assert_allclose(
            res.sddmm.to_scipy().toarray(), ref.to_scipy().toarray(), rtol=1e-9
        )

    def test_multiple_calls_accumulate_traffic(self, small_problem):
        S, A, B = small_problem
        alg = make_algorithm("1.5d-dense-shift", 4, 2)
        one = run_fusedmm(alg, S, A, B, elision=Elision.NONE, calls=1).report
        five = run_fusedmm(alg, S, A, B, elision=Elision.NONE, calls=5).report
        assert five.comm_words == 5 * one.comm_words
        assert five.comm_messages == 5 * one.comm_messages

    def test_shape_mismatch_raises(self, small_problem, rng):
        S, A, B = small_problem
        alg = make_algorithm("1.5d-dense-shift", 4, 2)
        with pytest.raises(ReproError):
            run_fusedmm(alg, S, A, rng.standard_normal((S.ncols, A.shape[1] + 1)))
        with pytest.raises(ReproError):
            run_fusedmm(alg, S, rng.standard_normal((3, 4)), B)

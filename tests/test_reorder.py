"""Tests for locality reordering (Section III-A analogues)."""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import CooMatrix
from repro.sparse.generate import erdos_renyi, rmat
from repro.sparse.reorder import bfs_reorder, column_span_cost, degree_sort


def _is_permutation(perm, n):
    return len(perm) == n and np.array_equal(np.sort(perm), np.arange(n))


class TestDegreeSort:
    def test_returns_valid_permutation(self):
        S = rmat(7, 4, seed=0)
        out, perm = degree_sort(S)
        assert _is_permutation(perm, S.nrows)
        assert out.nnz == S.nnz

    def test_heavy_rows_move_to_front(self):
        S = rmat(8, 8, seed=1)
        out, _ = degree_sort(S)
        counts = np.bincount(out.rows, minlength=out.nrows)
        top = counts[: out.nrows // 4].sum()
        bottom = counts[3 * out.nrows // 4 :].sum()
        assert top > bottom

    def test_values_preserved(self):
        S = erdos_renyi(40, 40, 3, seed=2)
        out, _ = degree_sort(S)
        np.testing.assert_allclose(np.sort(out.vals), np.sort(S.vals))


class TestBfsReorder:
    def test_returns_valid_permutations(self):
        S = erdos_renyi(60, 50, 3, seed=3)
        out, rp, cp = bfs_reorder(S)
        assert _is_permutation(rp, 60)
        assert _is_permutation(cp, 50)
        assert out.nnz == S.nnz

    def test_matrix_content_is_permuted_not_changed(self):
        S = erdos_renyi(30, 30, 3, seed=4)
        out, rp, cp = bfs_reorder(S)
        ref = S.to_scipy().toarray()[np.argsort(rp)][:, np.argsort(cp)]
        np.testing.assert_allclose(out.to_scipy().toarray(), ref)

    def test_improves_locality_on_block_structure(self):
        """A scrambled block-diagonal matrix should recover low column span."""
        rng = np.random.default_rng(5)
        blocks = 8
        size = 16
        rows, cols = [], []
        for b in range(blocks):
            r = rng.integers(b * size, (b + 1) * size, 60)
            c = rng.integers(b * size, (b + 1) * size, 60)
            rows.append(r)
            cols.append(c)
        mat = CooMatrix(
            np.concatenate(rows), np.concatenate(cols),
            np.ones(60 * blocks), (blocks * size, blocks * size),
        )
        scrambled = mat.permuted(
            rng.permutation(mat.nrows), rng.permutation(mat.ncols)
        )
        reordered, _, _ = bfs_reorder(scrambled)
        assert column_span_cost(reordered, 16) < column_span_cost(scrambled, 16)


class TestColumnSpanCost:
    def test_empty_matrix(self):
        e = np.empty(0, np.int64)
        assert column_span_cost(CooMatrix(e, e, np.empty(0), (4, 4))) == 0.0

    def test_diagonal_is_minimal(self):
        n = 64
        idx = np.arange(n, dtype=np.int64)
        diag = CooMatrix(idx, idx, np.ones(n), (n, n))
        assert column_span_cost(diag, row_block=16) == 16.0

    def test_dense_row_block_counts_all_columns(self):
        rows = np.repeat(np.arange(4, dtype=np.int64), 8)
        cols = np.tile(np.arange(8, dtype=np.int64), 4)
        mat = CooMatrix(rows, cols, np.ones(32), (4, 8))
        assert column_span_cost(mat, row_block=4) == 8.0

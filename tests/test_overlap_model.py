"""Tests for the communication-overlap extension (paper's future work).

The paper closes with: "Further performance improvement may be possible by
overlapping communication in the propagation phase ... with local
computation."  ``RunReport.modeled_total_seconds(overlap=True)`` provides
the optimistic bound for that optimization.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.runtime.cost import MachineParams
from repro.runtime.profile import RankProfile, RunReport
from repro.types import Phase


def _profile(repl_words, prop_words, flops):
    p = RankProfile()
    p.counters[Phase.REPLICATION].words_received = repl_words
    p.counters[Phase.PROPAGATION].words_received = prop_words
    p.counters[Phase.COMPUTATION].flops = flops
    return p


MACHINE = MachineParams(alpha=0.0, beta=1e-9, gamma=1e-9, name="unit")


class TestOverlapModel:
    def test_compute_bound_hides_propagation(self):
        rep = RunReport(per_rank=[_profile(100, 500, 2000)])
        plain = rep.modeled_total_seconds(MACHINE)
        overlapped = rep.modeled_total_seconds(MACHINE, overlap=True)
        assert plain == pytest.approx((100 + 500 + 2000) * 1e-9)
        # propagation (500) hides behind computation (2000)
        assert overlapped == pytest.approx((100 + 2000) * 1e-9)

    def test_comm_bound_hides_computation(self):
        rep = RunReport(per_rank=[_profile(100, 5000, 200)])
        overlapped = rep.modeled_total_seconds(MACHINE, overlap=True)
        assert overlapped == pytest.approx((100 + 5000) * 1e-9)

    def test_replication_is_never_overlapped(self):
        """Collectives stay synchronous; only cyclic shifts overlap."""
        rep = RunReport(per_rank=[_profile(10_000, 0, 0)])
        assert rep.modeled_total_seconds(MACHINE, overlap=True) == pytest.approx(1e-5)

    def test_overlap_never_hurts(self, small_problem):
        S, A, B = small_problem
        _, report = repro.fusedmm_a(
            S, A, B, p=4, c=2, algorithm="1.5d-dense-shift", elision="none"
        )
        plain = report.modeled_total_seconds(repro.CORI_KNL)
        overlapped = report.modeled_total_seconds(repro.CORI_KNL, overlap=True)
        assert overlapped <= plain
        # savings bounded by the smaller of propagation and computation
        prop = report.modeled_comm_seconds(repro.CORI_KNL, Phase.PROPAGATION)
        comp = report.modeled_compute_seconds(repro.CORI_KNL)
        assert plain - overlapped == pytest.approx(min(prop, comp), rel=1e-9)

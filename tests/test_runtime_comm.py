"""Tests for the MPI-like communicator: point-to-point, ring collectives,
traffic accounting, splits and failure handling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CommError
from repro.runtime.comm import Communicator, payload_words
from repro.runtime.profile import RankProfile
from repro.runtime.spmd import run_spmd
from repro.types import Phase


class TestPayloadWords:
    def test_none_is_zero(self):
        assert payload_words(None) == 0

    def test_scalar_is_one(self):
        assert payload_words(3) == 1
        assert payload_words(2.5) == 1
        assert payload_words(np.float64(1.0)) == 1

    def test_array_counts_elements(self):
        assert payload_words(np.zeros((3, 4))) == 12
        assert payload_words(np.zeros(7, dtype=np.int64)) == 7

    def test_nested_structures(self):
        payload = (np.zeros(3), [np.zeros(2), 5], {"k": np.zeros(4)})
        assert payload_words(payload) == 3 + 2 + 1 + 4

    def test_index_arrays_count_as_words(self):
        # paper convention: a COO nonzero in flight costs 3 words
        nz = (np.zeros(10, np.int64), np.zeros(10, np.int64), np.zeros(10))
        assert payload_words(nz) == 30


class TestPointToPoint:
    def test_send_recv_roundtrip(self):
        def body(comm):
            if comm.rank == 0:
                comm.send(1, np.arange(5.0), tag=1)
                return None
            return comm.recv(0, tag=1)

        results, _ = run_spmd(2, body)
        np.testing.assert_array_equal(results[1], np.arange(5.0))

    def test_sends_are_isolated(self):
        """Mutating the sender's buffer after send must not affect receipt."""

        def body(comm):
            if comm.rank == 0:
                buf = np.ones(4)
                comm.send(1, buf, tag=1)
                buf[:] = -1.0
                return None
            return comm.recv(0, tag=1)

        results, _ = run_spmd(2, body)
        np.testing.assert_array_equal(results[1], np.ones(4))

    def test_message_ordering_fifo(self):
        def body(comm):
            if comm.rank == 0:
                for k in range(10):
                    comm.send(1, k, tag=3)
                return None
            return [comm.recv(0, tag=3) for _ in range(10)]

        results, _ = run_spmd(2, body)
        assert results[1] == list(range(10))

    def test_tags_do_not_crosstalk(self):
        def body(comm):
            if comm.rank == 0:
                comm.send(1, "a", tag=1)
                comm.send(1, "b", tag=2)
                return None
            second = comm.recv(0, tag=2)
            first = comm.recv(0, tag=1)
            return (first, second)

        results, _ = run_spmd(2, body)
        assert results[1] == ("a", "b")

    def test_out_of_range_dest_raises(self):
        def body(comm):
            with pytest.raises(CommError):
                comm.send(5, 1, tag=0)

        run_spmd(2, body)

    def test_shift_ring(self):
        def body(comm):
            got = comm.shift(np.array([comm.rank]), displacement=1)
            return int(got[0])

        results, _ = run_spmd(5, body)
        assert results == [(r - 1) % 5 for r in range(5)]

    def test_shift_negative_displacement(self):
        def body(comm):
            got = comm.shift(np.array([comm.rank]), displacement=-1)
            return int(got[0])

        results, _ = run_spmd(5, body)
        assert results == [(r + 1) % 5 for r in range(5)]

    def test_shift_self_when_size_one(self):
        def body(comm):
            return comm.shift(np.array([42.0]))[0]

        results, _ = run_spmd(1, body)
        assert results[0] == 42.0


class TestCollectives:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
    def test_allgather_values(self, p):
        def body(comm):
            return comm.allgather(comm.rank * 10)

        results, _ = run_spmd(p, body)
        for r in range(p):
            assert results[r] == [10 * k for k in range(p)]

    @pytest.mark.parametrize("p", [2, 3, 5, 8])
    def test_allgather_traffic_matches_ring_cost(self, p):
        """Each rank receives (p-1)/p of the gathered payload in p-1 msgs."""
        W = 6

        def body(comm):
            with comm.profile.track(Phase.PROPAGATION):
                comm.allgather(np.zeros(W))

        _, report = run_spmd(p, body)
        assert report.phase_words(Phase.PROPAGATION) == (p - 1) * W
        assert report.phase_messages(Phase.PROPAGATION) == p - 1

    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
    def test_reduce_scatter_sums(self, p):
        def body(comm):
            blocks = [np.full(3, float(comm.rank + k)) for k in range(p)]
            return comm.reduce_scatter(blocks)

        results, _ = run_spmd(p, body)
        for r in range(p):
            expected = sum(q + r for q in range(p))
            np.testing.assert_allclose(results[r], np.full(3, expected))

    def test_reduce_scatter_custom_op(self):
        def body(comm):
            blocks = [np.array([float(comm.rank * 10 + k)]) for k in range(3)]
            return comm.reduce_scatter(blocks, op=np.maximum)

        results, _ = run_spmd(3, body)
        for r in range(3):
            assert results[r][0] == 20.0 + r  # max over ranks of rank*10+r

    def test_reduce_scatter_wrong_block_count(self):
        def body(comm):
            with pytest.raises(CommError):
                comm.reduce_scatter([np.zeros(1)])

        run_spmd(2, body)

    @pytest.mark.parametrize("p", [1, 2, 4, 5])
    def test_allreduce_sum(self, p):
        def body(comm):
            return comm.allreduce(np.arange(10.0) + comm.rank)

        results, _ = run_spmd(p, body)
        expected = np.arange(10.0) * p + sum(range(p))
        for r in range(p):
            np.testing.assert_allclose(results[r], expected)

    def test_allreduce_max(self):
        def body(comm):
            return comm.allreduce(np.array([float(comm.rank), -float(comm.rank)]), op=np.maximum)

        results, _ = run_spmd(4, body)
        np.testing.assert_allclose(results[0], [3.0, 0.0])

    def test_allreduce_scalar(self):
        def body(comm):
            return comm.allreduce_scalar(float(comm.rank + 1))

        results, _ = run_spmd(4, body)
        assert all(v == 10.0 for v in results)

    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_bcast(self, p):
        def body(comm):
            return comm.bcast({"x": np.arange(3)}, root=0)

        results, _ = run_spmd(p, body)
        for r in range(p):
            np.testing.assert_array_equal(results[r]["x"], np.arange(3))

    def test_barrier_completes_and_is_untracked(self):
        def body(comm):
            comm.barrier()
            return comm.profile.total().messages_received

        results, _ = run_spmd(4, body)
        assert all(v == 0 for v in results)

    def test_reduction_is_deterministic(self):
        """Ring order is fixed, so float sums are bit-identical across runs."""

        def run_once():
            def body(comm):
                rng = np.random.default_rng(comm.rank)
                blocks = [rng.standard_normal(17) for _ in range(4)]
                return comm.reduce_scatter(blocks)

            results, _ = run_spmd(4, body)
            return results

        a = run_once()
        b = run_once()
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)


class TestSplit:
    def test_split_into_layers(self):
        def body(comm):
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            total = sub.allreduce_scalar(float(comm.rank))
            return (sub.size, total)

        results, _ = run_spmd(6, body)
        for r in range(6):
            assert results[r][0] == 3
            expected = sum(q for q in range(6) if q % 2 == r % 2)
            assert results[r][1] == expected

    def test_split_rank_ordering_by_key(self):
        def body(comm):
            sub = comm.split(color=0, key=-comm.rank)  # reverse order
            return sub.rank

        results, _ = run_spmd(4, body)
        assert results == [3, 2, 1, 0]

    def test_nested_splits_do_not_crosstalk(self):
        def body(comm):
            half = comm.split(color=comm.rank // 2, key=comm.rank)
            pair_sum = half.allreduce_scalar(float(comm.rank))
            again = comm.split(color=comm.rank % 2, key=comm.rank)
            stripe_sum = again.allreduce_scalar(float(comm.rank))
            return (pair_sum, stripe_sum)

        results, _ = run_spmd(4, body)
        assert results[0] == (1.0, 2.0)  # {0,1} and {0,2}
        assert results[3] == (5.0, 4.0)  # {2,3} and {1,3}


class TestFailureHandling:
    def test_failing_rank_aborts_world(self):
        def body(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            # rank 0 would otherwise block forever
            comm.recv(1, tag=9)

        with pytest.raises(RuntimeError, match="rank 1"):
            run_spmd(2, body)

    def test_profiles_length_validation(self):
        with pytest.raises(ValueError):
            run_spmd(2, lambda comm: None, profiles=[RankProfile()])
